package splat

import (
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

// Options controls a render pass.
type Options struct {
	// Skip suppresses Gaussians by ID during preprocessing (selective
	// mapping for non-key frames).
	Skip []bool
	// LogContribution records, per Gaussian ID, how many evaluated pixels
	// saw alpha below ThreshAlpha (full mapping on key frames).
	LogContribution bool
	// ThreshAlpha is the contribution threshold (paper: 1/255).
	ThreshAlpha float64
	// Workers bounds render parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Result is the output of a forward render.
type Result struct {
	Color      *frame.Image
	Depth      *frame.DepthMap
	Silhouette []float64 // accumulated alpha per pixel in [0,1]
	FinalT     []float64 // final transmittance per pixel

	Splats []Splat
	Tiles  *Tiles

	// Contribution log (nil unless Options.LogContribution):
	NonContrib []int32 // per Gaussian ID: pixels with alpha < ThreshAlpha
	Touched    []int32 // per Gaussian ID: pixels where alpha was evaluated

	// Workload trace for the hardware simulator:
	PerPixelBlend []int32 // stage-2 blending operations per pixel
	PerPixelAlpha []int32 // stage-1 alpha evaluations per pixel
	AlphaOps      int64   // total alpha (stage-1) evaluations
	BlendOps      int64   // total color-blend (stage-2) operations
}

// Render runs the full forward pipeline (steps 1-3 of Fig. 2) for the cloud
// viewed through cam.
func Render(cloud *gauss.Cloud, cam camera.Camera, opts Options) *Result {
	splats := Preprocess(cloud, cam, opts.Skip)
	tiles := BuildTiles(splats, cam.Intr)
	return renderTiles(cloud, cam, splats, tiles, opts)
}

func renderTiles(cloud *gauss.Cloud, cam camera.Camera, splats []Splat, tiles *Tiles, opts Options) *Result {
	w, h := cam.Intr.W, cam.Intr.H
	res := &Result{
		Color:         frame.NewImage(w, h),
		Depth:         frame.NewDepthMap(w, h),
		Silhouette:    make([]float64, w*h),
		FinalT:        make([]float64, w*h),
		Splats:        splats,
		Tiles:         tiles,
		PerPixelBlend: make([]int32, w*h),
		PerPixelAlpha: make([]int32, w*h),
	}
	if opts.LogContribution {
		res.NonContrib = make([]int32, cloud.Len())
		res.Touched = make([]int32, cloud.Len())
	}
	// Static sharding: each worker owns a contiguous tile range and walks it
	// in ascending order. Pixel buffers are disjoint across tiles, and the
	// cross-tile reductions below are integers (exact under any association),
	// so the shards merged in fixed worker order produce byte-identical
	// Results for every Workers value.
	ranges := shardRanges(tiles.NumTiles(), opts.Workers)

	type workerAcc struct {
		nonContrib []int32
		touched    []int32
		alphaOps   int64
		blendOps   int64
	}
	accs := make([]workerAcc, len(ranges))

	var wg sync.WaitGroup
	for wi := range ranges {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			acc := &accs[wi]
			if opts.LogContribution {
				acc.nonContrib = make([]int32, cloud.Len())
				acc.touched = make([]int32, cloud.Len())
			}
			for tileIdx := ranges[wi][0]; tileIdx < ranges[wi][1]; tileIdx++ {
				renderOneTile(res, splats, tiles, tileIdx, w, h, opts, acc.nonContrib, acc.touched, &acc.alphaOps, &acc.blendOps)
			}
		}(wi)
	}
	wg.Wait()

	// Fixed-order merge (worker 0, 1, ...).
	for i := range accs {
		res.AlphaOps += accs[i].alphaOps
		res.BlendOps += accs[i].blendOps
		if opts.LogContribution {
			for id, v := range accs[i].nonContrib {
				res.NonContrib[id] += v
			}
			for id, v := range accs[i].touched {
				res.Touched[id] += v
			}
		}
	}
	return res
}

func renderOneTile(res *Result, splats []Splat, tiles *Tiles, tileIdx, w, h int, opts Options,
	nonContrib, touched []int32, alphaOps, blendOps *int64) {

	tx := tileIdx % tiles.TW
	ty := tileIdx / tiles.TW
	list := tiles.Lists[tileIdx]
	x0, y0 := tx*TileSize, ty*TileSize
	x1 := minInt(x0+TileSize, w)
	y1 := minInt(y0+TileSize, h)

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			px := float64(x) + 0.5
			py := float64(y) + 0.5
			t := 1.0
			var color vecmath.Vec3
			var depth, sil float64
			pix := y*w + x
			li := 0
			for ; li < len(list); li++ {
				s := &splats[list[li]]
				(*alphaOps)++
				res.PerPixelAlpha[pix]++
				alpha, _ := s.Alpha(px, py)
				if nonContrib != nil {
					touched[s.ID]++
					if alpha < opts.ThreshAlpha {
						nonContrib[s.ID]++
					}
				}
				if alpha < MinAlpha {
					continue
				}
				(*blendOps)++
				res.PerPixelBlend[pix]++
				wgt := t * alpha
				color = color.Add(s.Color.Scale(wgt))
				depth += wgt * s.Depth
				sil += wgt
				t *= 1 - alpha
				if t < TransmittanceEps {
					li++
					break
				}
			}
			if nonContrib != nil {
				// Table entries past the early-termination point were never
				// blended, so they contributed nothing to this pixel. The
				// hardware gets this information for free (the loop index at
				// termination); it is where the bulk of Fig. 5's
				// non-contributory Gaussians come from.
				for ; li < len(list); li++ {
					id := splats[list[li]].ID
					touched[id]++
					nonContrib[id]++
				}
			}
			res.Color.Pix[pix] = color
			res.Depth.D[pix] = depth
			res.Silhouette[pix] = sil
			res.FinalT[pix] = t
		}
	}
}

// TileIDLists converts the per-tile splat-index lists into stable
// Gaussian-ID lists (the paper's "Gaussian tables", which the hardware
// model's logging/skipping tables replay).
func (r *Result) TileIDLists() [][]int32 {
	out := make([][]int32, len(r.Tiles.Lists))
	for i, l := range r.Tiles.Lists {
		ids := make([]int32, len(l))
		for j, si := range l {
			ids[j] = int32(r.Splats[si].ID)
		}
		out[i] = ids
	}
	return out
}

// NormalizedDepth returns the rendered depth divided by the silhouette
// (expected depth rather than alpha-weighted depth); pixels with silhouette
// below 1e-6 stay zero (invalid).
func (r *Result) NormalizedDepth() *frame.DepthMap {
	out := frame.NewDepthMap(r.Depth.W, r.Depth.H)
	for i, d := range r.Depth.D {
		if s := r.Silhouette[i]; s > 1e-6 {
			out.D[i] = d / s
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
