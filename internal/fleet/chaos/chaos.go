// Package chaos injects deterministic transport faults into a fleet
// endpoint. It wraps a node's net.Listener so every accepted connection is
// counted and controlled: on an explicit write-indexed schedule the injector
// severs one connection mid-frame, or kills the whole endpoint — listener
// plus every live connection — also mid-frame. These are the unclean-death
// cases the fleet's checkpoint-replay recovery exists for, and the harness
// that drives the recovery tests and the perf-chaos experiment.
//
// # Determinism
//
// Faults fire on a write-count schedule, never a probability: the Nth write
// through the endpoint dies, so a request/response conversation fails at
// exactly the same message on every run. The only random source is an
// explicit splitmix64 state seeded from Config.Seed (the same PRNG
// discipline as the mapper's keyframe sampling) and it decides exactly one
// thing: how many bytes of the doomed frame make it out before the cut —
// so recovery is exercised against genuinely truncated frames (the wire
// reader's ErrTruncated/ErrChecksum paths), at a reproducible offset.
// Wrapping a node's listener counts only that node's writes (its replies),
// so "the Nth write" is "the Nth handled message" for a single-connection
// conversation.
package chaos

import (
	"fmt"
	"math/bits"
	"net"
	"sync"
)

// Config seeds an Injector and optionally schedules faults up front.
type Config struct {
	// Seed drives the splitmix64 stream that picks mid-frame truncation
	// offsets. Two injectors with the same seed and schedule cut the same
	// frames at the same byte.
	Seed uint64
	// KillAtWrite, when > 0, kills the endpoint (listener + every
	// connection) during its Nth write, 1-based, leaving that frame
	// truncated. ArmKill schedules the same thing relative to "now".
	KillAtWrite int
	// SeverAtWrite, when > 0, severs just the connection performing the
	// endpoint's Nth write, 1-based, mid-frame. The listener and other
	// connections live on. ArmSever is the relative form.
	SeverAtWrite int
}

// Stats counts what the injector has done.
type Stats struct {
	Writes      int // writes observed across all connections
	Kills       int // endpoint kills triggered
	Severs      int // single-connection severs triggered
	Truncations int // faulted frames that got a non-empty prefix out
}

// Injector owns one endpoint's fault schedule. Safe for concurrent use by
// the wrapped connections.
type Injector struct {
	mu      sync.Mutex
	rng     prng
	writes  int
	killAt  int
	severAt int
	killed  bool
	ln      net.Listener
	conns   map[*faultConn]struct{}
	stats   Stats
}

// New builds an injector with cfg's seed and schedule.
func New(cfg Config) *Injector {
	return &Injector{
		rng:     prng{state: cfg.Seed},
		killAt:  cfg.KillAtWrite,
		severAt: cfg.SeverAtWrite,
		conns:   make(map[*faultConn]struct{}),
	}
}

// Listen wraps a listener so every accepted connection routes its writes
// through the injector's schedule. Pass the result to Node.StartOn.
func (in *Injector) Listen(inner net.Listener) net.Listener {
	ln := &faultListener{in: in, Listener: inner}
	in.mu.Lock()
	in.ln = inner
	in.mu.Unlock()
	return ln
}

// ArmKill schedules an endpoint kill at the `after`th write from now
// (1 = the very next write).
func (in *Injector) ArmKill(after int) {
	in.mu.Lock()
	in.killAt = in.writes + after
	in.mu.Unlock()
}

// ArmSever schedules a single-connection sever at the `after`th write from
// now.
func (in *Injector) ArmSever(after int) {
	in.mu.Lock()
	in.severAt = in.writes + after
	in.mu.Unlock()
}

// Kill closes the listener and every live connection immediately — the
// unclean node death. Idempotent.
func (in *Injector) Kill() {
	in.mu.Lock()
	if in.killed {
		in.mu.Unlock()
		return
	}
	in.killed = true
	in.stats.Kills++
	ln := in.ln
	conns := make([]*faultConn, 0, len(in.conns))
	//ags:allow(maprange, order-independent: every collected conn is closed; no output depends on the iteration order)
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.conns = make(map[*faultConn]struct{})
	in.mu.Unlock()
	// Close outside the lock: conn Close re-enters unregister.
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Killed reports whether the endpoint has been killed.
func (in *Injector) Killed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func (in *Injector) register(c *faultConn) {
	in.mu.Lock()
	if in.killed {
		in.mu.Unlock()
		c.Conn.Close()
		return
	}
	in.conns[c] = struct{}{}
	in.mu.Unlock()
}

func (in *Injector) unregister(c *faultConn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// write actions.
const (
	actPass = iota
	actSever
	actKill
)

// onWrite advances the schedule for one write of n bytes and returns the
// action plus how many bytes to let through first (the seeded mid-frame
// truncation point).
func (in *Injector) onWrite(n int) (action, cut int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	in.stats.Writes++
	switch {
	case in.killAt > 0 && in.writes >= in.killAt && !in.killed:
		action = actKill
		in.killAt = 0
	case in.severAt > 0 && in.writes >= in.severAt:
		action = actSever
		in.severAt = 0
		in.stats.Severs++
	default:
		return actPass, n
	}
	if n > 1 {
		cut = 1 + in.rng.intn(n-1) // strictly inside the frame: 1..n-1
	}
	if cut > 0 {
		in.stats.Truncations++
	}
	return action, cut
}

// faultListener wraps Accept to route connections through the injector.
type faultListener struct {
	in *Injector
	net.Listener
}

func (ln *faultListener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := &faultConn{in: ln.in, Conn: c}
	ln.in.register(fc)
	return fc, nil
}

// faultConn counts writes and executes the injector's schedule on them.
type faultConn struct {
	in *Injector
	net.Conn
}

func (c *faultConn) Write(b []byte) (int, error) {
	action, cut := c.in.onWrite(len(b))
	switch action {
	case actSever:
		n, _ := c.Conn.Write(b[:cut])
		c.Conn.Close()
		c.in.unregister(c)
		return n, fmt.Errorf("chaos: connection severed mid-frame after %d/%d bytes", n, len(b))
	case actKill:
		n, _ := c.Conn.Write(b[:cut])
		c.in.Kill()
		return n, fmt.Errorf("chaos: endpoint killed mid-frame after %d/%d bytes", n, len(b))
	default:
		return c.Conn.Write(b)
	}
}

func (c *faultConn) Close() error {
	c.in.unregister(c)
	return c.Conn.Close()
}

// prng is the repo's splitmix64: one uint64 of explicit state, identical to
// the mapper's keyframe-sampling discipline. No global rand, no clock.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n) via Lemire's multiply-shift.
func (p *prng) intn(n int) int {
	hi, _ := bits.Mul64(p.next(), uint64(n))
	return int(hi)
}
