// Command ags-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ags-bench                  # run every experiment at the quick scale
//	ags-bench -exp fig15a      # run one experiment
//	ags-bench -list            # list experiment IDs
//	ags-bench -scale full      # larger frames/iterations (slower)
//	ags-bench -frames 32 -w 96 -h 72   # override individual knobs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ags/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		scale   = flag.String("scale", "quick", "quick | full")
		width   = flag.Int("w", 0, "override frame width")
		height  = flag.Int("h", 0, "override frame height")
		frames  = flag.Int("frames", 0, "override frames per sequence")
		workers = flag.Int("workers", 0, "render worker goroutines (0 = all cores; results are bit-identical for every value)")
		quiet   = flag.Bool("q", false, "suppress progress lines")

		codecWorkers = flag.Int("codec-workers", 0, "ME worker goroutines per frame (0 = serial)")
		pipelineME   = flag.Bool("pipeline-me", false, "prefetch next frame's ME concurrently with tracking/mapping")
		meEarlyTerm  = flag.Bool("me-early-term", false, "encoder early termination in ME SAD accumulation")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "full":
		cfg = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	if *width > 0 {
		cfg.Width = *width
	}
	if *height > 0 {
		cfg.Height = *height
	}
	if *frames > 0 {
		cfg.Frames = *frames
	}
	cfg.Workers = *workers
	cfg.CodecWorkers = *codecWorkers
	cfg.PipelineME = *pipelineME
	cfg.CodecEarlyTerm = *meEarlyTerm

	suite := bench.NewSuite(cfg, os.Stdout)
	suite.Verbose = !*quiet
	start := time.Now()

	var err error
	if *expID == "" {
		err = bench.RunAll(suite)
	} else {
		var e bench.Experiment
		e, err = bench.Find(*expID)
		if err == nil {
			err = e.Run(suite)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n# done in %s (scale=%s %dx%d, %d frames/sequence)\n",
		time.Since(start).Round(time.Millisecond), *scale, cfg.Width, cfg.Height, cfg.Frames)
}
