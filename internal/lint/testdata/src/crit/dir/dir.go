// Package dir is the directive-diagnostics golden corpus: malformed //ags:
// comments, unknown check names, suppressions that match nothing, and
// //ags:hotpath markers outside a function doc comment. The want markers sit
// in block comments BEFORE each directive so they are not swallowed into the
// directive text itself.
package dir

func touch(int) {}

// Malformed directives: not hotpath and not a well-formed allow(...).

/* want directive */ //ags:frobnicate

/* want directive */ //ags:allow(maprange)

/* want directive */ //ags:allow(, empty check name)

// Unknown check name.

/* want directive */ //ags:allow(speling, the check name has a typo)

// Stale: a well-formed allow whose target line produces no finding.

// Stale justifies nothing below — the loop it excused was fixed long ago.
/* want directive */ //ags:allow(maprange, this loop was rewritten to sort its keys)
func Stale() {
	touch(1)
}

// Misplaced reports //ags:hotpath outside a function doc comment.
func Misplaced() {
	/* want directive */ //ags:hotpath
	touch(2)
}
