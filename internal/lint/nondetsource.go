package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// timeNondet lists the package-level time functions that read the wall or
// monotonic clock. Constructors of values (time.Date, time.Unix) and pure
// arithmetic (Duration methods) are fine; what the check bans from critical
// packages is sampling "now".
var timeNondet = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the math/rand (and v2) package-level functions that
// build explicitly-seeded generators rather than drawing from the shared
// global source; they are the sanctioned path.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// checkNondetSource flags run-to-run nondeterministic value sources in
// critical packages: wall-clock reads, draws from the global math/rand
// source (seeded randomly at program start; rand.New(rand.NewSource(seed))
// and methods on the resulting *rand.Rand are fine — seeding is explicit by
// construction), and select statements with two or more communication cases,
// where the runtime picks uniformly among ready cases.
func checkNondetSource(p *pass) {
	info := p.pkg.Info
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				pkg, name := fn.Pkg().Path(), fn.Name()
				switch {
				case pkg == "time" && timeNondet[name]:
					p.reportAt(n.Pos(), CheckNondet,
						fmt.Sprintf("time.%s reads the clock — outputs must not depend on wall time (wrap and justify if this is operator-facing timing)", name))
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
					p.reportAt(n.Pos(), CheckNondet,
						fmt.Sprintf("%s.%s draws from the global random source — use rand.New(rand.NewSource(seed)) with a configured seed", pkgBase(pkg), name))
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.reportAt(n.Pos(), CheckNondet,
						fmt.Sprintf("select with %d communication cases — the runtime picks randomly among ready cases; restructure or justify that every winner yields identical output", comm))
				}
			}
			return true
		})
	}
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// reportAt is the common "finding at this position" helper.
func (p *pass) reportAt(pos token.Pos, check, msg string) {
	file, line, col := p.pkg.Position(pos)
	p.report(Finding{File: file, Line: line, Col: col, Check: check, Message: msg})
}
