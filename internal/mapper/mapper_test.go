package mapper

import (
	"testing"

	"ags/internal/camera"
	"ags/internal/metrics"
	"ags/internal/scene"
	"ags/internal/splat"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.MapIters = 8
	cfg.DensifyStride = 2
	cfg.Workers = 2
	return cfg
}

func TestDensifySeedsEmptyCloud(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 1, Seed: 1})
	m := New(smallCfg())
	added := m.Densify(seq.Frames[0], seq.Intr, seq.Frames[0].GTPose)
	// Stride 2 on 48x36 with full depth coverage: 24*18 gaussians.
	if added != 24*18 {
		t.Errorf("added %d gaussians, want %d", added, 24*18)
	}
	if m.Cloud().NumActive() != added {
		t.Errorf("active %d != added %d", m.Cloud().NumActive(), added)
	}
	if err := m.Cloud().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDensifySecondViewOnlyFillsGaps(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 10, Seed: 1})
	m := New(smallCfg())
	first := m.Densify(seq.Frames[0], seq.Intr, seq.Frames[0].GTPose)
	// Re-densifying the same view must add far less than a full seed (some
	// oblique-surface pixels exceed the depth-error criterion; that is the
	// densifier refining them, not a reseed).
	again := m.Densify(seq.Frames[0], seq.Intr, seq.Frames[0].GTPose)
	if again > first/2 {
		t.Errorf("re-densify added %d (first %d)", again, first)
	}
	// The adjacent view reveals a little new area; additions must stay well
	// below a full seed.
	later := m.Densify(seq.Frames[1], seq.Intr, seq.Frames[1].GTPose)
	if later >= first/2 {
		t.Errorf("adjacent viewpoint re-seeded: %d vs %d", later, first)
	}
}

func TestFullMappingImprovesPSNR(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 1, Seed: 1})
	f := seq.Frames[0]
	m := New(smallCfg())
	m.Densify(f, seq.Intr, f.GTPose)
	cam := camera.Camera{Intr: seq.Intr, Pose: f.GTPose}

	before := splat.Render(m.Cloud(), cam, splat.Options{})
	psnrBefore, err := metrics.PSNR(before.Color, f.Color)
	if err != nil {
		t.Fatal(err)
	}
	stats, logIDs := m.FullMapping(f, seq.Intr, f.GTPose)
	after := splat.Render(m.Cloud(), cam, splat.Options{})
	psnrAfter, err := metrics.PSNR(after.Color, f.Color)
	if err != nil {
		t.Fatal(err)
	}
	if psnrAfter <= psnrBefore {
		t.Errorf("mapping did not improve PSNR: %.2f -> %.2f", psnrBefore, psnrAfter)
	}
	if stats.Iters != 8 {
		t.Errorf("iters = %d", stats.Iters)
	}
	if logIDs == nil {
		t.Error("full mapping did not emit logging IDs")
	}
	if err := m.Cloud().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContributionRecordingAndSkipSet(t *testing.T) {
	// Two well-separated viewpoints: Gaussians seeded from the first view
	// that are occluded or irrelevant in the second become skippable there.
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 40, Seed: 1})
	f0, f := seq.Frames[0], seq.Frames[30]
	cfg := smallCfg()
	cfg.ThreshN = 5
	m := New(cfg)
	m.Densify(f0, seq.Intr, f0.GTPose)
	m.FullMapping(f0, seq.Intr, f0.GTPose)
	m.Densify(f, seq.Intr, f.GTPose)
	m.FullMapping(f, seq.Intr, f.GTPose)

	counts := m.NonContribCount()
	if len(counts) != m.Cloud().Len() {
		t.Fatalf("count len %d vs cloud %d", len(counts), m.Cloud().Len())
	}
	var any bool
	for _, c := range counts {
		if c > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Error("no non-contributory pixels recorded at all")
	}
	// Skip set must be consistent with counts and thresholds.
	skip := m.SkipSet()
	contrib := m.ContribCount()
	for id, s := range skip {
		want := int(contrib[id]) <= cfg.ContribPixMax && int(counts[id]) > cfg.ThreshN
		if s != want {
			t.Fatalf("skip[%d]=%v but contrib=%d noncontrib=%d", id, s, contrib[id], counts[id])
		}
	}
	if m.NumSkipped() == 0 {
		t.Error("nothing skipped — selective mapping would be a no-op")
	}
	pred := m.PredictedNonContrib()
	if len(pred) != m.NumSkipped() {
		t.Errorf("PredictedNonContrib %d != NumSkipped %d", len(pred), m.NumSkipped())
	}
}

func TestSelectiveMappingDoesLessWork(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 2, Seed: 1})
	f0, f1 := seq.Frames[0], seq.Frames[1]
	cfg := smallCfg()
	cfg.ThreshN = 3
	m := New(cfg)
	m.Densify(f0, seq.Intr, f0.GTPose)
	fullStats, _ := m.FullMapping(f0, seq.Intr, f0.GTPose)
	if m.NumSkipped() == 0 {
		t.Skip("no gaussians predicted non-contributory at this threshold")
	}
	selStats := m.SelectiveMapping(f1, seq.Intr, f1.GTPose)
	// Selective mapping preprocesses fewer Gaussians per iteration.
	fullPerIter := fullStats.Splats / int64(fullStats.Iters)
	selPerIter := selStats.Splats / int64(selStats.Iters)
	if selPerIter >= fullPerIter {
		t.Errorf("selective mapping did not reduce splat work: %d vs %d", selPerIter, fullPerIter)
	}
}

func TestSelectiveMappingPreservesQuality(t *testing.T) {
	// The paper's claim: skipping predicted non-contributory Gaussians
	// barely hurts rendering quality on a high-covisibility next frame.
	seq := scene.MustGenerate("Xyz", scene.Config{Width: 48, Height: 36, Frames: 2, Seed: 1})
	f0, f1 := seq.Frames[0], seq.Frames[1]
	cfg := smallCfg()
	cfg.MapIters = 10
	m := New(cfg)
	m.Densify(f0, seq.Intr, f0.GTPose)
	m.FullMapping(f0, seq.Intr, f0.GTPose)

	cam1 := camera.Camera{Intr: seq.Intr, Pose: f1.GTPose}
	full := splat.Render(m.Cloud(), cam1, splat.Options{})
	sel := splat.Render(m.Cloud(), cam1, splat.Options{Skip: m.SkipSet()})
	pFull, _ := metrics.PSNR(full.Color, f1.Color)
	pSel, _ := metrics.PSNR(sel.Color, f1.Color)
	if pFull-pSel > 1.5 {
		t.Errorf("selective render lost %.2f dB (%.2f -> %.2f)", pFull-pSel, pFull, pSel)
	}
}

func TestPrune(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 1, Seed: 1})
	f := seq.Frames[0]
	m := New(smallCfg())
	m.Densify(f, seq.Intr, f.GTPose)
	// Collapse a few opacities manually.
	for id := 0; id < 5; id++ {
		m.Cloud().At(id).SetOpacity(0.001)
	}
	n := m.Prune()
	if n != 5 {
		t.Errorf("pruned %d, want 5", n)
	}
	if m.Cloud().IsActive(0) {
		t.Error("pruned gaussian still active")
	}
}

func TestKeyframeWindowBounded(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 12, Seed: 1})
	cfg := smallCfg()
	cfg.KeyframeWindow = 4
	m := New(cfg)
	for _, f := range seq.Frames {
		m.AddKeyframe(f, f.GTPose)
	}
	if len(m.Keyframes()) != 4 {
		t.Errorf("keyframe window = %d", len(m.Keyframes()))
	}
	// Must retain the most recent ones.
	if m.Keyframes()[3].Frame.Index != 11 {
		t.Errorf("last keyframe index = %d", m.Keyframes()[3].Frame.Index)
	}
}
