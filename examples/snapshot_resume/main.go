// Snapshot/resume: bound a long-running stream's two open-ended resources.
//
// The demo turns pruning pressure up so the Gaussian map actually sheds
// slots, runs with periodic compaction (CompactEvery) so those slots are
// reclaimed instead of accumulating as dead entries, snapshots the session
// mid-stream into a byte buffer, restores it as a fresh session on a fresh
// server, and pushes the remaining frames. The restored run's Result digest
// must be bit-identical to an uninterrupted run of the same stream — both
// compaction and the snapshot/restore cycle are output-transparent. The
// process exits non-zero if any digest diverges.
//
//	go run -race ./examples/snapshot_resume
package main

import (
	"bytes"
	"fmt"
	"log"

	"ags/internal/scene"
	"ags/internal/slam"
)

const (
	width, height = 48, 36
	frames        = 12
	snapshotAt    = 6 // frames pushed before the snapshot is taken
)

func main() {
	seq, err := scene.Generate("Desk", scene.Config{
		Width: width, Height: height, Frames: frames, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggressive pruning plus periodic compaction: the map both shrinks
	// logically (pruned Gaussians) and physically (reclaimed slots).
	cfg := slam.AGSConfig(width, height)
	cfg.TrackIters = 20
	cfg.PipelineME = true
	cfg.Mapper.LRLogit = 0.2
	cfg.Mapper.PruneOpacity = 0.25
	cfg.PruneEvery = 2
	cfg.CompactEvery = 3

	// 1. The uninterrupted reference: one session, all frames.
	ref := runSession(cfg, seq, "reference")
	refDigest := ref.Digest()
	tot := ref.Trace.Totals()
	fmt.Printf("reference: %d frames, %d gaussians pruned, %d slots reclaimed (%.1f KB)\n",
		len(ref.Poses), tot.PrunedGaussians, tot.CompactedSlots, float64(tot.ReclaimedBytes)/1024)

	// 2. The interrupted run: push half the frames, snapshot, tear down.
	srv := slam.NewServer(slam.ServerConfig{ContextCapacity: 1})
	sess, err := srv.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		log.Fatal(err)
	}
	go drain(sess)
	for _, f := range seq.Frames[:snapshotAt] {
		if err := sess.Push(f); err != nil {
			log.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := sess.Snapshot(&snap); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot:  %d frames in, %d bytes (versioned, checksummed)\n",
		snapshotAt, snap.Len())

	// 3. Restore on a fresh server — a different process, for all the
	// snapshot knows — and push the frames the first run never saw.
	srv2 := slam.NewServer(slam.ServerConfig{ContextCapacity: 1})
	sess2, n, err := srv2.RestoreSession(seq.Name, &snap)
	if err != nil {
		log.Fatal(err)
	}
	if n != snapshotAt {
		log.Fatalf("restored session reports %d frames, want %d", n, snapshotAt)
	}
	go drain(sess2)
	for _, f := range seq.Frames[n:] {
		if err := sess2.Push(f); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess2.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		log.Fatal(err)
	}

	// 4. The contract: interrupted + resumed == uninterrupted, bit for bit.
	if res.Digest() != refDigest {
		log.Fatalf("digest mismatch: resumed %x != reference %x", res.Digest(), refDigest)
	}
	fmt.Printf("resumed:   frames %d..%d, digest %x == reference\n",
		n, frames-1, refDigest[:8])
}

// runSession streams the whole sequence through one server session and
// returns its final Result.
func runSession(cfg slam.Config, seq *scene.Sequence, name string) *slam.Result {
	srv := slam.NewServer(slam.ServerConfig{ContextCapacity: 1})
	sess, err := srv.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		log.Fatal(err)
	}
	go drain(sess)
	for _, f := range seq.Frames {
		if err := sess.Push(f); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	return res
}

// drain consumes a session's per-frame updates so Push never blocks on an
// unread Results channel.
func drain(sess *slam.Session) {
	for range sess.Results() {
	}
}
