package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/slam"
)

// Router is the client-side coordinator: it knows the fleet's nodes, polls
// their stats over per-node control connections, places each new stream with
// the consistent-hash-plus-load policy (see Candidates), and falls through
// the candidate order when a node bounces an open with ErrAdmission or
// ErrDraining. Each stream gets its own dedicated connection; the router is
// safe for concurrent Opens, while every Stream keeps slam's one-producer
// contract (Push/Close/migration from a single goroutine).
type Router struct {
	mu    sync.Mutex
	nodes []*routerNode

	// Placement accounting for the serving report: how many streams landed
	// on their first-choice candidate, how many migrated mid-stream, and how
	// many recovered from unclean node loss (with the frames replayed to do
	// it).
	placements     int
	primaryHits    int
	migrations     int
	recoveries     int
	replayedFrames int
}

// routerNode is the router's handle on one fleet node: its dial address and
// a long-lived control connection for stats and drain, serialized by mu
// (streams use their own connections).
type routerNode struct {
	name string
	addr string

	mu          sync.Mutex
	ctrl        *wire
	draining    bool
	unreachable bool // evicted from placement until CheckHealth re-admits it
}

// NewRouter returns an empty router; AddNode it onto the fleet.
func NewRouter() *Router { return &Router{} }

// AddNode dials a node's control connection and registers it under the name
// the node reports for itself.
func (r *Router) AddNode(addr string) error {
	ctrl, err := dialWire(addr)
	if err != nil {
		return err
	}
	st, err := statsOver(ctrl)
	if err != nil {
		ctrl.Close()
		return fmt.Errorf("fleet: add node %s: %w", addr, err)
	}
	n := &routerNode{name: st.Name, addr: addr, ctrl: ctrl, draining: st.Draining}
	r.mu.Lock()
	r.nodes = append(r.nodes, n)
	r.mu.Unlock()
	return nil
}

// Close tears down the control connections. Streams hold their own
// connections and must be closed by their producers first.
func (r *Router) Close() {
	r.mu.Lock()
	nodes := r.nodes
	r.nodes = nil
	r.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		if n.ctrl != nil {
			n.ctrl.Close()
			n.ctrl = nil
		}
		n.mu.Unlock()
	}
}

func dialWire(addr string) (*wire, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", addr, err)
	}
	return newWire(c), nil
}

// statsOver polls one stats report over an already-locked or exclusively
// owned wire.
func statsOver(w *wire) (NodeStats, error) {
	rv, payload, err := w.roundTrip(vStats, nil)
	if err != nil {
		return NodeStats{}, err
	}
	if rv != vStatsData {
		return NodeStats{}, fmt.Errorf("fleet: stats reply verb %s", rv)
	}
	return decodeStats(payload)
}

// pingOver sends one liveness probe over an exclusively owned wire.
func pingOver(w *wire) error {
	rv, _, err := w.roundTrip(vPing, nil)
	if err != nil {
		return err
	}
	if rv != vOK {
		return fmt.Errorf("fleet: ping reply verb %s", rv)
	}
	return nil
}

// stats polls one node's control connection. A transport failure evicts the
// node — the router stops trusting it for placement until a CheckHealth
// probe re-admits it — so one dead node can never wedge every caller that
// polls loads.
func (n *routerNode) stats() (NodeStats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.unreachable || n.ctrl == nil {
		return NodeStats{}, fmt.Errorf("fleet: node %q: evicted (unreachable)", n.name)
	}
	st, err := statsOver(n.ctrl)
	if err != nil {
		n.ctrl.Close()
		n.ctrl = nil
		n.unreachable = true
		return NodeStats{}, fmt.Errorf("fleet: node %q stats: %w", n.name, err)
	}
	n.draining = st.Draining
	return st, nil
}

// markUnreachable evicts the node from placement (its control connection is
// dropped so the next health probe redials from scratch).
func (n *routerNode) markUnreachable() {
	n.mu.Lock()
	if n.ctrl != nil {
		n.ctrl.Close()
		n.ctrl = nil
	}
	n.unreachable = true
	n.mu.Unlock()
}

// Stats polls every node's self-report, in registration order.
func (r *Router) Stats() ([]NodeStats, error) {
	r.mu.Lock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.Unlock()
	out := make([]NodeStats, 0, len(nodes))
	for _, n := range nodes {
		st, err := n.stats()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// RouterMetrics is the router's own placement accounting.
type RouterMetrics struct {
	// Placements counts successfully opened streams; PrimaryHits counts the
	// ones that landed on their first-choice candidate (the placement
	// hit-rate numerator). Migrations counts graceful mid-stream node moves.
	Placements  int
	PrimaryHits int
	Migrations  int
	// Recoveries counts checkpoint-replay recoveries after unclean node
	// loss; ReplayedFrames totals the frames replayed during them.
	Recoveries     int
	ReplayedFrames int
}

// Metrics snapshots the router's placement accounting.
func (r *Router) Metrics() RouterMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterMetrics{
		Placements:  r.placements,
		PrimaryHits: r.primaryHits,
		Migrations:  r.migrations,
		Recoveries:  r.recoveries, ReplayedFrames: r.replayedFrames,
	}
}

// Drain gracefully drains the named node: the node stops admitting streams,
// and every live stream routed there migrates — snapshot over the wire,
// restore on a peer — at its next Push (lazily, so each stream's producer
// goroutine keeps sole ownership of its session).
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	var target *routerNode
	for _, n := range r.nodes {
		if n.name == name {
			target = n
			break
		}
	}
	r.mu.Unlock()
	if target == nil {
		return fmt.Errorf("fleet: drain: unknown node %q", name)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if target.ctrl == nil {
		return fmt.Errorf("fleet: drain %q: control connection closed", name)
	}
	rv, _, err := target.ctrl.roundTrip(vDrain, nil)
	if err != nil {
		return fmt.Errorf("fleet: drain %q: %w", name, err)
	}
	if rv != vOK {
		return fmt.Errorf("fleet: drain %q: reply verb %s", name, rv)
	}
	target.draining = true
	return nil
}

// reachableLoads polls every non-evicted node and returns the reachable
// ones' placement views plus the node handles in matching order. A node
// whose poll fails is evicted from placement (re-admitted by CheckHealth)
// rather than failing the caller — a dead node must not take the whole
// fleet's placement machinery down with it. It errors only when no node is
// reachable at all.
func (r *Router) reachableLoads() ([]*routerNode, []NodeLoad, error) {
	r.mu.Lock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.Unlock()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("fleet: router has no nodes")
	}
	live := make([]*routerNode, 0, len(nodes))
	loads := make([]NodeLoad, 0, len(nodes))
	for _, n := range nodes {
		st, err := n.stats()
		if err != nil {
			continue // evicted by stats; a health probe can bring it back
		}
		live = append(live, n)
		loads = append(loads, loadOf(st))
	}
	if len(live) == 0 {
		return nil, nil, fmt.Errorf("fleet: no reachable nodes (all evicted)")
	}
	return live, loads, nil
}

// Open places a new stream with default options: no checkpoint-replay
// recovery, so an unclean node death surfaces as ErrNodeLost.
func (r *Router) Open(name string, cfg slam.Config, intr camera.Intrinsics) (*Stream, error) {
	return r.OpenWith(name, cfg, intr, StreamOptions{})
}

// OpenWith places a new stream: candidates in placement order, opened on the
// first node that admits it. The stream's size class is the intrinsics' W x H
// — the same key the node-side render-context pools bucket by. A non-zero
// opts.CheckpointEvery arms checkpoint-replay recovery (see StreamOptions).
func (r *Router) OpenWith(name string, cfg slam.Config, intr camera.Intrinsics, opts StreamOptions) (*Stream, error) {
	nodes, loads, err := r.reachableLoads()
	if err != nil {
		return nil, err
	}
	order := Candidates(intr.W, intr.H, loads)
	if len(order) == 0 {
		return nil, fmt.Errorf("fleet: open %q: no admitting nodes (all draining or down)", name)
	}
	var payload []byte
	payload = encodeOpen(payload, name,
		slam.AppendConfig(nil, &cfg), slam.AppendIntrinsics(nil, &intr))
	var lastErr error
	for rank, idx := range order {
		w, err := openOn(nodes[idx].addr, payload)
		if err != nil {
			if isPlacementBounce(err) {
				lastErr = err
				continue
			}
			if isNodeLoss(err) {
				// The node died between the load poll and the dial; evict it
				// and keep walking the candidate order.
				nodes[idx].markUnreachable()
				lastErr = err
				continue
			}
			return nil, fmt.Errorf("fleet: open %q on %q: %w", name, nodes[idx].name, err)
		}
		r.mu.Lock()
		r.placements++
		if rank == 0 {
			r.primaryHits++
		}
		r.mu.Unlock()
		return &Stream{
			r: r, name: name, w: w, node: nodes[idx],
			sizeW: intr.W, sizeH: intr.H,
			opts: opts, openPayload: payload,
		}, nil
	}
	return nil, fmt.Errorf("fleet: open %q: every candidate refused: %w", name, lastErr)
}

// openOn dials a fresh stream connection and opens a session over it.
func openOn(addr string, openPayload []byte) (*wire, error) {
	w, err := dialWire(addr)
	if err != nil {
		return nil, err
	}
	rv, _, err := w.roundTrip(vOpen, openPayload)
	if err != nil {
		w.Close()
		return nil, err
	}
	if rv != vOK {
		w.Close()
		return nil, fmt.Errorf("fleet: open reply verb %s", rv)
	}
	return w, nil
}

// isPlacementBounce reports whether an open failure means "try the next
// candidate" rather than a fault.
func isPlacementBounce(err error) bool {
	return errors.Is(err, ErrAdmission) || errors.Is(err, ErrDraining)
}

// Stream is one live camera stream routed across the fleet: the remote
// mirror of slam.Session's producer half. Push blocks while the serving
// session's queue is full (the reply is sent only after the node-side Push
// returns), and Close returns the digest-bearing summary. Like a Session,
// a Stream must be driven from a single goroutine.
type Stream struct {
	r    *Router
	name string

	w    *wire
	node *routerNode

	sizeW, sizeH int
	pushed       int // frames acknowledged by a serving node
	migrations   int

	frameBuf []byte // per-push encode scratch, reused across frames

	// Checkpoint-replay recovery state (see recover.go). Inert when
	// opts.CheckpointEvery == 0.
	opts             StreamOptions
	openPayload      []byte   // retained for fresh-open recovery before the first checkpoint
	checkpoint       []byte   // last AGSSNAP taken over the wire; nil before the first
	checkpointFrames int      // frames the checkpoint has processed
	replay           [][]byte // encoded frames acked since the checkpoint, push order
	recoveries       int
	replayed         int
	lost             error // sticky NodeLostError once the stream is lost for good
}

// Name returns the stream's label.
func (s *Stream) Name() string { return s.name }

// Node returns the name of the node currently serving the stream.
func (s *Stream) Node() string { return s.node.name }

// Migrations returns how many times the stream has moved nodes gracefully.
func (s *Stream) Migrations() int { return s.migrations }

// Recoveries returns how many times the stream recovered from unclean node
// loss; Replayed totals the frames re-pushed during those recoveries.
func (s *Stream) Recoveries() int { return s.recoveries }

// Replayed returns the total frames replayed across the stream's recoveries.
func (s *Stream) Replayed() int { return s.replayed }

// Push sends the next frame in stream order. If the serving node has been
// marked draining since the last push, the stream first migrates — snapshot,
// restore on a peer, verified frame count — and then pushes there. With
// recovery armed (StreamOptions.CheckpointEvery > 0), an unclean node death
// is survived transparently: the stream re-places itself, restores its last
// checkpoint, replays the frames pushed since — this one included — and the
// final digest is bit-identical to an undisturbed run.
//
//ags:hotpath
func (s *Stream) Push(f *frame.Frame) error {
	if s.w == nil {
		return s.closedErr("push")
	}
	if s.node.isDraining() {
		if err := s.migrate(); err != nil {
			if err = s.migrateFailed(err); err != nil {
				return err
			}
		}
	}
	s.frameBuf = slam.AppendFrame(s.frameBuf[:0], f)
	if s.opts.CheckpointEvery > 0 {
		s.bufferFrame(s.frameBuf)
	}
	rv, _, err := s.w.roundTrip(vPush, s.frameBuf)
	if err != nil {
		// recover replays every buffered frame — the failed one included —
		// so a nil return means this frame is acked on the new node.
		if err = s.pushFailed(err); err != nil {
			return err
		}
	} else if rv != vOK {
		return fmt.Errorf("fleet: stream %q: push reply verb %s", s.name, rv)
	}
	s.pushed++
	if s.opts.CheckpointEvery > 0 {
		return s.maybeCheckpoint()
	}
	return nil
}

// Close ends the stream and returns the node-side session's summary; its
// Digest is bit-identical to a sequential slam.Run over the same frames.
// If the serving node is lost at close time (or was lost earlier with
// recovery disabled), the error wraps ErrNodeLost and the summary is
// partial: only Frames — the acknowledged-frame count — is meaningful.
func (s *Stream) Close() (ResultSummary, error) {
	if s.w == nil {
		if s.lost != nil {
			return ResultSummary{Frames: s.pushed}, fmt.Errorf("fleet: stream %q: close: %w", s.name, s.lost)
		}
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: already closed", s.name)
	}
	node := s.node.name
	rv, payload, err := s.w.roundTrip(vClose, nil)
	if err != nil && isNodeLoss(err) && s.recoveryEnabled() {
		if rerr := s.recover(err); rerr != nil {
			err = rerr
		} else {
			node = s.node.name
			rv, payload, err = s.w.roundTrip(vClose, nil)
		}
	}
	if err != nil {
		s.teardown()
		if isNodeLoss(err) {
			s.lost = s.asNodeLost(err, node)
			return ResultSummary{Frames: s.pushed}, fmt.Errorf("fleet: stream %q: close: %w", s.name, s.lost)
		}
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: close: %w", s.name, err)
	}
	if rv != vResult {
		s.teardown()
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: close reply verb %s", s.name, rv)
	}
	sum, derr := decodeResult(payload)
	s.teardown()
	if derr != nil {
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: %w", s.name, derr)
	}
	return sum, nil
}

func (n *routerNode) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// NodeHealth is one node's outcome from Router.CheckHealth.
type NodeHealth struct {
	Name string
	Addr string
	// Reachable: the node answered this probe's PING (over the existing
	// control connection, or over a fresh redial).
	Reachable bool
	// Draining mirrors the node's drain state as last reported.
	Draining bool
	// Evicted: the node is out of the placement ring after this probe.
	Evicted bool
	// Readmitted: this probe brought a previously evicted node back.
	Readmitted bool
}

// CheckHealth probes every node with the PING verb, in registration order:
// an unresponsive node is evicted from the placement ring (streams it was
// serving recover via checkpoint-replay at their next push), and an evicted
// node that answers a fresh redial is re-admitted. Probing is caller-driven
// — the router runs no background goroutines and reads no clock — so health
// policy (when and how often to probe) stays with the caller and tests stay
// deterministic.
func (r *Router) CheckHealth() []NodeHealth {
	r.mu.Lock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.Unlock()
	out := make([]NodeHealth, len(nodes))
	for i, n := range nodes {
		out[i] = n.probe()
	}
	return out
}

// probe pings one node, redialing its control connection if it is missing
// (evicted earlier, or the live one just failed the ping).
func (n *routerNode) probe() NodeHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := NodeHealth{Name: n.name, Addr: n.addr}
	wasEvicted := n.unreachable
	if n.ctrl != nil {
		if err := pingOver(n.ctrl); err == nil {
			n.unreachable = false
			h.Reachable, h.Draining = true, n.draining
			return h
		}
		n.ctrl.Close()
		n.ctrl = nil
	}
	ctrl, err := dialWire(n.addr)
	if err == nil {
		// Ping end to end, then refresh identity and drain state: a node
		// that came back on the same address may be a different process.
		st, serr := statsOver(ctrl)
		if perr := pingOver(ctrl); perr != nil {
			serr = perr
		}
		if serr == nil {
			n.ctrl = ctrl
			n.unreachable = false
			n.name, n.draining = st.Name, st.Draining
			h.Name = st.Name
			h.Reachable, h.Draining = true, st.Draining
			h.Readmitted = wasEvicted
			return h
		}
		ctrl.Close()
	}
	n.unreachable = true
	h.Evicted = true
	return h
}
