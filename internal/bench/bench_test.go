package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg keeps bench tests fast; experiment correctness at scale is
// exercised by cmd/ags-bench and the repository-level benchmarks.
func tinyCfg() Config {
	return Config{
		Width: 40, Height: 32, Frames: 6,
		TrackIters: 8, IterT: 3, MapIters: 4,
		DensifyStride: 2, Workers: 4, Seed: 1,
	}
}

func TestRunCacheReuses(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	b1 := s.MustRun("Desk", VarBaseline, "", nil)
	b2 := s.MustRun("Desk", VarBaseline, "", nil)
	if b1 != b2 {
		t.Error("cache returned different bundles for same key")
	}
	b3 := s.MustRun("Desk", VarAGS, "", nil)
	if b3 == b1 {
		t.Error("different variants shared a bundle")
	}
}

func TestFindExperiment(t *testing.T) {
	if _, err := Find("fig15a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Experiments()) != 25 {
		t.Errorf("registry has %d experiments, want 25", len(Experiments()))
	}
}

func TestTable3RunsWithoutSlam(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	if err := s.Table3(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "FC Detection Engine", "GS Array", "7.", "14."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig22RunsOnSequencesOnly(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	if err := s.Fig22(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "High") {
		t.Errorf("fig22 output malformed:\n%s", buf.String())
	}
}

func TestSpeedupExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	// Restrict to one sequence by running the underlying pieces directly:
	// Fig. 15 needs all nine sequences, which is too slow here; instead
	// exercise Table 1, which needs three variants on Desk.
	if err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AGS (this work)", "SplaTAM-style baseline", "ATE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPerfMEExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	// PerfME verifies parallel/serial equivalence internally and errors on
	// divergence, so a clean return is the main assertion.
	if err := s.PerfME(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CODEC ME wall-time", "Parallel", "Pipelined ME"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-me output missing %q:\n%s", want, out)
		}
	}
}

func TestPerfRenderExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg(), &buf)
	// PerfRender asserts bitwise serial/sharded equivalence internally and
	// errors on divergence, so a clean return is the main assertion.
	if err := s.PerfRender(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"splat render+backward", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("T", "A", "LongColumn")
	tab.AddRow("x", 1.5)
	tab.AddRow("yyyy", "z")
	tab.AddNote("n=%d", 2)
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "1.50") || !strings.Contains(out, "note: n=2") {
		t.Errorf("bad table output:\n%s", out)
	}
	// Header and separator align.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}
