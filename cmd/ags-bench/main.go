// Command ags-bench regenerates the paper's tables and figures.
//
// Experiments declare the (sequence, variant) runs they need; the batch
// scheduler executes the deduplicated union across -jobs workers, then
// renders every selected experiment in paper order from the warmed cache.
// stdout carries only experiment text (byte-identical for every -jobs
// value); progress lines go to stderr.
//
// Usage:
//
//	ags-bench                  # run every experiment at the quick scale
//	ags-bench -exp fig15a      # run one experiment
//	ags-bench -exp fig3,fig5   # run a subset
//	ags-bench -list            # list experiment IDs
//	ags-bench -scale full      # larger frames/iterations (slower)
//	ags-bench -jobs 4          # bounded pipeline-execution concurrency
//	ags-bench -json bench.json # machine-readable per-run wall-time report
//	ags-bench -frames 32 -w 96 -h 72   # override individual knobs
//	ags-bench -exp perf-render -cpuprofile cpu.pprof -memprofile mem.pprof
//	ags-bench -grid 127.0.0.1:7070,127.0.0.1:7071   # distribute the warm
//	                           # phase over ags-fleet serve worker nodes
//
// With -grid, pipeline executions ship to the listed workers as grid jobs
// (see internal/grid): each worker regenerates the dataset deterministically,
// runs the pipeline, and returns a digest-verified snapshot. stdout stays
// byte-identical to local execution; per-run worker attribution and wire
// bytes land in the -json report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ags/internal/bench"
	"ags/internal/grid"
)

func main() {
	var (
		expIDs  = flag.String("exp", "", "comma-separated experiment IDs to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		scale   = flag.String("scale", "quick", "quick | full")
		width   = flag.Int("w", 0, "override frame width")
		height  = flag.Int("h", 0, "override frame height")
		frames  = flag.Int("frames", 0, "override frames per sequence")
		workers = flag.Int("workers", 0, "render worker goroutines (0 = all cores; results are bit-identical for every value)")
		jobs    = flag.Int("jobs", 0, "concurrent pipeline executions in the batch scheduler (0 = all cores; output is byte-identical for every value)")
		jsonOut = flag.String("json", "", "write a machine-readable report (per-run wall times) to this path")
		quiet   = flag.Bool("q", false, "suppress progress lines (stderr)")

		gridAddrs  = flag.String("grid", "", "comma-separated worker node addresses: distribute pipeline executions over the fleet (see ags-fleet serve)")
		gridWindow = flag.Int("grid-window", 0, "in-flight jobs per grid worker (0 = default)")
		gridSample = flag.Int("grid-sample", 0, "locally replay every Nth remote grid result (0 = default)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole batch to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the batch) to this path")

		codecWorkers = flag.Int("codec-workers", 0, "ME worker goroutines per frame (0 = serial)")
		pipelineME   = flag.Bool("pipeline-me", false, "prefetch next frame's ME concurrently with tracking/mapping")
		meEarlyTerm  = flag.Bool("me-early-term", false, "encoder early termination in ME SAD accumulation")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID(), e.Paper())
		}
		return
	}

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "full":
		cfg = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	if *width > 0 {
		cfg.Width = *width
	}
	if *height > 0 {
		cfg.Height = *height
	}
	if *frames > 0 {
		cfg.Frames = *frames
	}
	cfg.Workers = *workers
	cfg.CodecWorkers = *codecWorkers
	cfg.PipelineME = *pipelineME
	cfg.CodecEarlyTerm = *meEarlyTerm

	exps := bench.Experiments()
	if *expIDs != "" {
		exps = exps[:0]
		for _, id := range strings.Split(*expIDs, ",") {
			e, err := bench.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// stopCPUProfile is called explicitly on both the success and error
	// paths: os.Exit skips defers, and a failing batch is exactly the run
	// whose profile must not be left unflushed.
	stopCPUProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ags-bench: close cpu profile: %v\n", err)
			}
		}
	}

	suite := bench.NewSuite(cfg)
	if !*quiet {
		suite.Log = os.Stderr
	}
	start := time.Now()

	var exec bench.Executor
	if *gridAddrs != "" {
		var addrs []string
		for _, a := range strings.Split(*gridAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		sch, err := grid.New(grid.Config{Workers: addrs, Window: *gridWindow, SampleEvery: *gridSample})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
			os.Exit(1)
		}
		defer sch.Close()
		exec = sch
		if *jobs == 0 {
			// Local batches default to GOMAXPROCS; a grid batch's natural
			// parallelism is the grid's total in-flight window instead.
			*jobs = sch.Capacity()
		}
	}

	report, err := bench.RunBatchWith(suite, exps, *jobs, exec, os.Stdout)
	stopCPUProfile()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // materialize the live-heap picture pprof reports
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: write heap profile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: close heap profile: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		blob := struct {
			Scale      string       `json:"scale"`
			GoMaxProcs int          `json:"gomaxprocs"`
			Config     bench.Config `json:"config"`
			*bench.Report
		}{*scale, runtime.GOMAXPROCS(0), cfg, report}
		data, err := json.MarshalIndent(blob, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: encode report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ags-bench: write report: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Fprintf(os.Stderr, "\n# done in %s (scale=%s %dx%d, %d frames/sequence, jobs=%d, %d runs warmed in %.0fms)\n",
		time.Since(start).Round(time.Millisecond), *scale, cfg.Width, cfg.Height, cfg.Frames,
		report.Jobs, len(report.Runs), report.WarmMS)
}
