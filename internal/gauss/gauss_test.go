package gauss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ags/internal/vecmath"
)

func TestOpacityRoundTrip(t *testing.T) {
	var g Gaussian
	for _, o := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		g.SetOpacity(o)
		if math.Abs(g.Opacity()-o) > 1e-9 {
			t.Errorf("opacity roundtrip %v -> %v", o, g.Opacity())
		}
	}
	// Extremes clamp instead of producing infinities.
	g.SetOpacity(0)
	if math.IsInf(g.Logit, 0) || g.Opacity() <= 0 {
		t.Error("opacity 0 produced invalid logit")
	}
	g.SetOpacity(1)
	if math.IsInf(g.Logit, 0) || g.Opacity() >= 1 {
		t.Error("opacity 1 produced invalid logit")
	}
}

func TestScaleRoundTrip(t *testing.T) {
	var g Gaussian
	s := vecmath.Vec3{X: 0.02, Y: 0.5, Z: 3}
	g.SetScale(s)
	got := g.Scale()
	if got.Sub(s).Norm() > 1e-9 {
		t.Errorf("scale roundtrip %v -> %v", s, got)
	}
}

func TestCov3IsSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := Gaussian{
			Rot: vecmath.QuatFromAxisAngle(
				vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
				rng.Float64()*3),
		}
		g.SetScale(vecmath.Vec3{X: 0.1 + rng.Float64(), Y: 0.1 + rng.Float64(), Z: 0.1 + rng.Float64()})
		cov := g.Cov3()
		// Symmetry.
		if math.Abs(cov.At(0, 1)-cov.At(1, 0)) > 1e-12 ||
			math.Abs(cov.At(0, 2)-cov.At(2, 0)) > 1e-12 ||
			math.Abs(cov.At(1, 2)-cov.At(2, 1)) > 1e-12 {
			t.Fatal("covariance not symmetric")
		}
		// PSD via eigenvalues.
		vals, _ := vecmath.JacobiEigen3(cov)
		if vals.Z < -1e-9 {
			t.Fatalf("negative eigenvalue %v", vals.Z)
		}
		// Eigenvalues must equal squared scales (up to ordering).
		s := g.Scale()
		want := []float64{s.X * s.X, s.Y * s.Y, s.Z * s.Z}
		got := []float64{vals.X, vals.Y, vals.Z}
		sortDesc(want)
		if math.Abs(want[0]-got[0]) > 1e-6 || math.Abs(want[2]-got[2]) > 1e-6 {
			t.Fatalf("eigenvalues %v vs scales^2 %v", got, want)
		}
	}
}

func sortDesc(v []float64) {
	for i := 0; i < len(v); i++ {
		for j := i + 1; j < len(v); j++ {
			if v[j] > v[i] {
				v[i], v[j] = v[j], v[i]
			}
		}
	}
}

func TestMaxRadius(t *testing.T) {
	var g Gaussian
	g.SetScale(vecmath.Vec3{X: 0.1, Y: 0.3, Z: 0.2})
	if math.Abs(g.MaxRadius()-0.9) > 1e-9 {
		t.Errorf("MaxRadius = %v", g.MaxRadius())
	}
}

func TestCloudAddPrune(t *testing.T) {
	c := NewCloud(4)
	id0 := c.Add(Gaussian{Rot: vecmath.QuatIdentity()})
	id1 := c.Add(Gaussian{Rot: vecmath.QuatIdentity()})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d", id0, id1)
	}
	if c.NumActive() != 2 {
		t.Fatalf("NumActive = %d", c.NumActive())
	}
	c.Prune(id0)
	if c.IsActive(id0) || !c.IsActive(id1) {
		t.Error("prune toggled wrong gaussian")
	}
	if c.NumActive() != 1 || c.Len() != 2 {
		t.Errorf("NumActive=%d Len=%d", c.NumActive(), c.Len())
	}
	// IDs stay stable after pruning.
	if c.At(id1) == nil {
		t.Error("stable ID lookup failed")
	}
	// Out-of-range prune is a no-op.
	c.Prune(-1)
	c.Prune(99)
}

func TestCloudCloneIndependent(t *testing.T) {
	c := NewCloud(1)
	c.Add(Gaussian{Rot: vecmath.QuatIdentity(), Color: vecmath.Vec3{X: 1}})
	cp := c.Clone()
	cp.At(0).Color = vecmath.Vec3{Y: 1}
	cp.Prune(0)
	if c.At(0).Color.X != 1 || !c.IsActive(0) {
		t.Error("clone aliases original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := NewCloud(1)
	c.Add(Gaussian{Rot: vecmath.QuatIdentity()})
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cloud rejected: %v", err)
	}
	c.At(0).Mean.X = math.NaN()
	if err := c.Validate(); err == nil {
		t.Error("NaN mean accepted")
	}
	c.At(0).Mean.X = 0
	c.At(0).Rot = vecmath.Quat{W: 2}
	if err := c.Validate(); err == nil {
		t.Error("non-unit quaternion accepted")
	}
}

func TestSigmoidProperties(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 30) // bound the domain so 1-sigmoid stays representable
		s := Sigmoid(x)
		if s <= 0 || s >= 1 {
			return false
		}
		// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
		return math.Abs(Sigmoid(-x)-(1-s)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidGradNumeric(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{-4, -1, 0, 0.5, 2, 6} {
		num := (Sigmoid(x+h) - Sigmoid(x-h)) / (2 * h)
		ana := SigmoidGrad(Sigmoid(x))
		if math.Abs(num-ana) > 1e-6 {
			t.Errorf("grad at %v: num %v ana %v", x, num, ana)
		}
	}
}
