package tracker

import (
	"math"
	"testing"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/scene"
	"ags/internal/splat"
	"ags/internal/vecmath"
)

func TestSolve6KnownSystem(t *testing.T) {
	// Diagonal system.
	var h [36]float64
	var b [6]float64
	for i := 0; i < 6; i++ {
		h[i*6+i] = float64(i + 1)
		b[i] = float64(i+1) * 2
	}
	x, ok := solve6(h, b)
	if !ok {
		t.Fatal("solve failed")
	}
	for i := 0; i < 6; i++ {
		if math.Abs(x[i]-2) > 1e-12 {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}

func TestSolve6Singular(t *testing.T) {
	var h [36]float64
	var b [6]float64
	if _, ok := solve6(h, b); ok {
		t.Error("singular system solved")
	}
}

func TestSolve6RandomRoundTrip(t *testing.T) {
	// Build H = A^T A + I (SPD), pick x, compute b = Hx, solve.
	var h [36]float64
	seed := 1.0
	for i := range h {
		seed = math.Mod(seed*1.2345+0.678, 1)
		h[i] = seed
	}
	// Symmetrize and strengthen the diagonal.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			m := 0.5 * (h[i*6+j] + h[j*6+i])
			h[i*6+j], h[j*6+i] = m, m
		}
		h[i*6+i] += 6
	}
	want := [6]float64{1, -2, 0.5, 3, -1, 0.25}
	var b [6]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			b[i] += h[i*6+j] * want[j]
		}
	}
	x, ok := solve6(h, b)
	if !ok {
		t.Fatal("solve failed")
	}
	for i := 0; i < 6; i++ {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCoarseAlignerIdentityOnSameFrame(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 64, Height: 48, Frames: 1, Seed: 1})
	a := NewCoarseAligner()
	rel := a.EstimateRelative(seq.Frames[0], seq.Frames[0], seq.Intr, vecmath.PoseIdentity())
	if tw := vecmath.LogSE3(rel); tw.Norm() > 1e-4 {
		t.Errorf("self-alignment drifted: %v", tw.Norm())
	}
}

func TestCoarseAlignerRecoversInterFrameMotion(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 96, Height: 72, Frames: 12, Seed: 1})
	a := NewCoarseAligner()
	for i := 1; i < 3; i++ {
		prev, cur := seq.Frames[i-1], seq.Frames[i]
		// Ground-truth relative transform.
		gtRel := cur.GTPose.Compose(prev.GTPose.Inverse())
		rel := a.EstimateRelative(prev, cur, seq.Intr, vecmath.PoseIdentity())
		errT := rel.T.Sub(gtRel.T).Norm()
		errR := rel.R.AngleTo(gtRel.R)
		// Without alignment the error would be the full inter-frame motion.
		rawT := gtRel.T.Norm()
		if errT > 0.35*rawT+0.002 {
			t.Errorf("frame %d: translation error %v vs motion %v", i, errT, rawT)
		}
		if errR > 0.02 {
			t.Errorf("frame %d: rotation error %v rad", i, errR)
		}
	}
}

func TestCoarseAlignerPoseComposition(t *testing.T) {
	seq := scene.MustGenerate("Xyz", scene.Config{Width: 64, Height: 48, Frames: 2, Seed: 1})
	a := NewCoarseAligner()
	est := a.EstimatePose(seq.Frames[0], seq.Frames[1], seq.Intr, seq.Frames[0].GTPose, vecmath.PoseIdentity())
	gt := seq.Frames[1].GTPose
	if d := est.TranslationTo(gt); d > 0.01 {
		t.Errorf("composed pose error %v m", d)
	}
}

// buildCloudFromFrame back-projects a frame into an isotropic Gaussian per
// n-th pixel — a miniature of the mapper's densification, giving the refiner
// a usable scene.
func buildCloudFromFrame(f *frame.Frame, intr camera.Intrinsics, stride int) *gauss.Cloud {
	cloud := gauss.NewCloud(1024)
	inv := f.GTPose.Inverse()
	for y := 0; y < intr.H; y += stride {
		for x := 0; x < intr.W; x += stride {
			d := f.Depth.At(x, y)
			if d <= 0 {
				continue
			}
			pc := intr.Unproject(vecmath.Vec2{X: float64(x) + 0.5, Y: float64(y) + 0.5}, d)
			g := gauss.Gaussian{
				Mean:  inv.Apply(pc),
				Rot:   vecmath.QuatIdentity(),
				Color: f.Color.At(x, y),
			}
			s := 0.6 * d * float64(stride) / intr.Fx
			g.SetScale(vecmath.Vec3{X: s, Y: s, Z: s})
			// Near-opaque seeding: residual transmittance otherwise lets
			// far surfaces bleed into the blended depth.
			g.SetOpacity(0.999)
			cloud.Add(g)
		}
	}
	return cloud
}

func TestGSRefinerImprovesPerturbedPose(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 64, Height: 48, Frames: 1, Seed: 1})
	f := seq.Frames[0]
	cloud := buildCloudFromFrame(f, seq.Intr, 2)
	// Model-consistent target: the observation is the cloud's own rendering
	// from the ground-truth pose, so the GT pose is the true loss minimum.
	// (In the pipeline, mapping trains the cloud to fit the sensor frames
	// before tracking renders against it.)
	gtCam := camera.Camera{Intr: seq.Intr, Pose: f.GTPose}
	gtRes := splat.Render(cloud, gtCam, splat.Options{})
	target := &frame.Frame{Index: f.Index, Color: gtRes.Color, Depth: gtRes.NormalizedDepth(), GTPose: f.GTPose}

	perturbed := f.GTPose.Retract(vecmath.Twist{
		V: vecmath.Vec3{X: 0.02, Y: -0.015, Z: 0.01},
		W: vecmath.Vec3{Y: 0.015},
	})
	startErr := perturbed.TranslationTo(f.GTPose)
	r := NewGSRefiner()
	refined, stats := r.Refine(cloud, seq.Intr, target, perturbed, 40)
	endErr := refined.TranslationTo(f.GTPose)
	if endErr > startErr*0.6 {
		t.Errorf("refinement: %v -> %v", startErr, endErr)
	}
	if stats.Iters != 40 {
		t.Errorf("stats.Iters = %d", stats.Iters)
	}
	if stats.AlphaOps == 0 || stats.BlendOps == 0 || stats.BackwardOps == 0 {
		t.Error("workload counters empty")
	}
	if stats.RepPerPixelBlend == nil || stats.RepTileLists == nil {
		t.Error("representative workload missing")
	}
}

func TestGSRefinerZeroItersIsIdentity(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 1, Seed: 1})
	f := seq.Frames[0]
	cloud := buildCloudFromFrame(f, seq.Intr, 4)
	r := NewGSRefiner()
	pose, stats := r.Refine(cloud, seq.Intr, f, f.GTPose, 0)
	if pose.TranslationTo(f.GTPose) != 0 {
		t.Error("zero iterations changed the pose")
	}
	if stats.Iters != 0 {
		t.Error("zero iterations recorded work")
	}
}

func TestTileIDListsMapSplatsToGaussians(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 1, Seed: 1})
	f := seq.Frames[0]
	cloud := buildCloudFromFrame(f, seq.Intr, 4)
	cam := camera.Camera{Intr: seq.Intr, Pose: f.GTPose}
	res := splat.Render(cloud, cam, splat.Options{})
	lists := res.TileIDLists()
	if len(lists) != res.Tiles.NumTiles() {
		t.Fatalf("list count %d vs %d tiles", len(lists), res.Tiles.NumTiles())
	}
	for ti, l := range lists {
		for _, id := range l {
			if id < 0 || int(id) >= cloud.Len() {
				t.Fatalf("tile %d has invalid gaussian id %d", ti, id)
			}
		}
	}
}
