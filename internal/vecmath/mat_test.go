package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func mat3Near(a, b Mat3, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMat3MulIdentity(t *testing.T) {
	m := Mat3{1, 2, 3, 4, 5, 6, 7, 8, 10}
	if got := m.Mul(Identity3()); !mat3Near(got, m, eps) {
		t.Errorf("m*I = %v", got)
	}
	if got := Identity3().Mul(m); !mat3Near(got, m, eps) {
		t.Errorf("I*m = %v", got)
	}
}

func TestMat3Inverse(t *testing.T) {
	m := Mat3{2, 1, 0, 1, 3, 1, 0, 1, 2}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("matrix reported singular")
	}
	if got := m.Mul(inv); !mat3Near(got, Identity3(), 1e-12) {
		t.Errorf("m*m^-1 = %v", got)
	}
	if _, ok := (Mat3{}).Inverse(); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestMat3DetTransposeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		var m Mat3
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		if !near(m.Det(), m.Transpose().Det(), 1e-9) {
			t.Fatalf("det(m) != det(m^T) for %v", m)
		}
	}
}

func TestMat3MulVec(t *testing.T) {
	m := Mat3{1, 0, 0, 0, 2, 0, 0, 0, 3}
	if got := m.MulVec(Vec3{1, 1, 1}); !vecNear(got, Vec3{1, 2, 3}, eps) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestSkewMatchesCross(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		u := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecNear(Skew(v).MulVec(u), v.Cross(u), 1e-12) {
			t.Fatalf("skew(%v)*%v != cross", v, u)
		}
	}
}

func TestMat2Inverse(t *testing.T) {
	m := Mat2{3, 1, 2, 4}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("singular")
	}
	p := m.Mul(inv)
	if !near(p.M00, 1, eps) || !near(p.M11, 1, eps) || !near(p.M01, 0, eps) || !near(p.M10, 0, eps) {
		t.Errorf("m*inv = %+v", p)
	}
}

func TestMat2Eigenvalues(t *testing.T) {
	// Symmetric matrix with known eigenvalues 5 and 1.
	m := Mat2{3, 2, 2, 3}
	l1, l2 := m.Eigenvalues()
	if !near(l1, 5, eps) || !near(l2, 1, eps) {
		t.Errorf("eigenvalues = %v, %v", l1, l2)
	}
}

func TestJacobiEigen3Diagonal(t *testing.T) {
	m := Diag3(Vec3{3, 1, 2})
	vals, vecs := JacobiEigen3(m)
	if !vecNear(vals, Vec3{3, 2, 1}, 1e-9) {
		t.Errorf("eigenvalues = %v", vals)
	}
	// Eigenvector matrix must be orthogonal.
	prod := vecs.Transpose().Mul(vecs)
	if !mat3Near(prod, Identity3(), 1e-9) {
		t.Errorf("V^T V = %v", prod)
	}
}

func TestJacobiEigen3Reconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		// Random symmetric PSD matrix A = B B^T.
		var b Mat3
		for j := range b {
			b[j] = rng.NormFloat64()
		}
		a := b.Mul(b.Transpose())
		vals, v := JacobiEigen3(a)
		recon := v.Mul(Diag3(vals)).Mul(v.Transpose())
		if !mat3Near(recon, a, 1e-8) {
			t.Fatalf("reconstruction failed:\n a=%v\n recon=%v", a, recon)
		}
		if vals.X < vals.Y-1e-12 || vals.Y < vals.Z-1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
		if vals.Z < -1e-9 {
			t.Fatalf("PSD matrix produced negative eigenvalue: %v", vals)
		}
	}
}

func TestMat4MulPoint(t *testing.T) {
	m := Identity4()
	m[3], m[7], m[11] = 1, 2, 3 // translation column
	if got := m.MulPoint(Vec3{1, 1, 1}); !vecNear(got, Vec3{2, 3, 4}, eps) {
		t.Errorf("MulPoint = %v", got)
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var a, b, c Mat4
	for i := 0; i < 16; i++ {
		a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	}
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	for i := range left {
		if !near(left[i], right[i], 1e-9) {
			t.Fatalf("associativity violated at %d: %v vs %v", i, left[i], right[i])
		}
	}
}

func TestOuterProduct(t *testing.T) {
	m := OuterProduct(Vec3{1, 2, 3}, Vec3{4, 5, 6})
	want := Mat3{4, 5, 6, 8, 10, 12, 12, 15, 18}
	if !mat3Near(m, want, eps) {
		t.Errorf("outer = %v", m)
	}
}
