package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"ags/internal/fleet"
	"ags/internal/grid"
	"ags/internal/scene"
	"ags/internal/slam"
)

// fakeExp builds a cheap declarative experiment around real suite runs: it
// renders a deterministic line per declared pipeline bundle (frame count and
// ATE), so batch output comparisons exercise the real warm/render path
// without the full experiment cost.
func fakeExp(id string, specs ...RunSpec) Experiment {
	return expDef{
		id: id, paper: "test: " + id,
		needs: specs,
		render: func(s *Suite, w io.Writer) error {
			for _, spec := range specs {
				if spec.DatasetOnly() {
					fmt.Fprintf(w, "%s: %s frames=%d\n", id, spec.Seq, len(s.Sequence(spec.Seq).Frames))
					continue
				}
				b, err := s.Run(spec)
				if err != nil {
					return err
				}
				ate, err := b.Result.ATERMSECm()
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s: %s ate=%.6f\n", id, spec.ID(), ate)
			}
			return nil
		},
	}
}

func TestPlanSpecsDedup(t *testing.T) {
	a := fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline))
	b := fakeExp("b", Spec("Desk", VarBaseline), Spec("Desk", VarAGS))
	c := fakeExp("c", SeqSpec("Desk"), SeqSpec("Room"))
	plan := PlanSpecs([]Experiment{a, b, c})
	// Desk/baseline deduplicates across a and b; the dataset-only Desk spec
	// is dropped because pipeline runs already imply the dataset; Room stays.
	want := []string{"Desk/baseline/", "Desk2/baseline/", "Desk/ags/", "Room//"}
	if len(plan) != len(want) {
		t.Fatalf("plan has %d specs (%v), want %d", len(plan), ids(plan), len(want))
	}
	for i, spec := range plan {
		if spec.ID() != want[i] {
			t.Errorf("plan[%d] = %s, want %s", i, spec.ID(), want[i])
		}
	}
}

func ids(specs []RunSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID()
	}
	return out
}

// TestBatchDedupAcrossExperiments: experiments sharing bundles must execute
// the union once, whatever the worker count.
func TestBatchDedupAcrossExperiments(t *testing.T) {
	exps := []Experiment{
		fakeExp("a", Spec("Desk", VarBaseline)),
		fakeExp("b", Spec("Desk", VarBaseline)),
		fakeExp("c", Spec("Desk", VarBaseline), SeqSpec("Desk")),
	}
	s := NewSuite(tinyCfg())
	var buf bytes.Buffer
	rep, err := RunBatch(s, exps, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Timings()); n != 1 {
		t.Errorf("batch executed %d pipelines, want 1", n)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].ID != "Desk/baseline/" {
		t.Errorf("report runs = %+v, want one Desk/baseline/", rep.Runs)
	}
	if rep.Runs[0].WallMS <= 0 {
		t.Errorf("run wall time not recorded: %+v", rep.Runs[0])
	}
	if len(rep.Experiments) != 3 {
		t.Errorf("report has %d experiments, want 3", len(rep.Experiments))
	}
	if got := strings.Count(buf.String(), "ate="); got != 3 {
		t.Errorf("output has %d rendered lines, want 3:\n%s", got, buf.String())
	}
}

// TestBatchOutputIdenticalAcrossJobs: -jobs 1 (strictly serial plan order)
// and -jobs 4 must produce byte-identical experiment text.
func TestBatchOutputIdenticalAcrossJobs(t *testing.T) {
	mk := func() []Experiment {
		return []Experiment{
			fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline)),
			fakeExp("b", Spec("Desk", VarAGS), Spec("Desk", VarBaseline)),
			fakeExp("c", SeqSpec("Room")),
		}
	}
	var serial, parallel bytes.Buffer
	if _, err := RunBatch(NewSuite(tinyCfg()), mk(), 1, &serial); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatch(NewSuite(tinyCfg()), mk(), 4, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("jobs=1 and jobs=4 output diverged:\n--- jobs=1\n%s--- jobs=4\n%s",
			serial.String(), parallel.String())
	}
	if serial.Len() == 0 {
		t.Fatal("batch produced no output")
	}
}

// TestBatchErrorPropagation: a failing spec stops the batch before any
// rendering and surfaces the underlying error.
func TestBatchErrorPropagation(t *testing.T) {
	exps := []Experiment{
		fakeExp("ok", SeqSpec("Desk")),
		fakeExp("bad", Spec("NoSuchSeq", VarBaseline)),
	}
	var buf bytes.Buffer
	_, err := RunBatch(NewSuite(tinyCfg()), exps, 2, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown sequence") {
		t.Fatalf("batch error = %v, want unknown sequence", err)
	}
	if buf.Len() != 0 {
		t.Errorf("failing batch rendered output:\n%s", buf.String())
	}
}

// TestBatchRenderErrorPropagation: renderer failures carry the experiment id.
func TestBatchRenderErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{expDef{
		id: "exploding", paper: "test",
		render: func(*Suite, io.Writer) error { return boom },
	}}
	_, err := RunBatch(NewSuite(tinyCfg()), exps, 1, io.Discard)
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "exploding") {
		t.Fatalf("render error = %v, want wrapped boom with experiment id", err)
	}
}

// TestBatchMultiExperimentRace drives a real multi-experiment batch at
// jobs=4; under `go test -race` this is the scheduler's race gate.
func TestBatchMultiExperimentRace(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	exps := []Experiment{
		fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk", VarAGS)),
		fakeExp("b", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline)),
		fakeExp("c", Spec("Desk2", VarBaseline), Spec("Desk", VarAGS), SeqSpec("Room")),
	}
	s := NewSuite(tinyCfg())
	s.Log = io.Discard
	var buf bytes.Buffer
	rep, err := RunBatch(s, exps, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Timings()); n != 3 {
		t.Errorf("batch executed %d pipelines, want 3 unique", n)
	}
	if rep.Jobs != 4 || rep.Specs != 4 {
		t.Errorf("report jobs/specs = %d/%d, want 4/4", rep.Jobs, rep.Specs)
	}
}

// startGridWorkers boots n loopback worker nodes for grid batch tests.
func startGridWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		node := fleet.NewNode(fleet.NodeConfig{
			Name: fmt.Sprintf("wk-%c", 'a'+i),
			Jobs: grid.NewWorker(),
		})
		addr, err := node.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs[i] = addr
	}
	return addrs
}

// TestBatchOutputIdenticalGridVsLocal extends the byte-equality gate to the
// grid path: the same experiments rendered from a local warm and from a
// two-worker distributed warm must produce byte-identical text, with the
// report attributing every run to a named worker and accounting wire bytes.
func TestBatchOutputIdenticalGridVsLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	mk := func() []Experiment {
		return []Experiment{
			fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline)),
			fakeExp("b", Spec("Desk", VarAGS), Spec("Desk", VarBaseline)),
			fakeExp("c", SeqSpec("Room")),
		}
	}
	var local bytes.Buffer
	if _, err := RunBatch(NewSuite(tinyCfg()), mk(), 1, &local); err != nil {
		t.Fatal(err)
	}

	sch, err := grid.New(grid.Config{Workers: startGridWorkers(t, 2), Window: 1, SampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()
	suite := NewSuite(tinyCfg())
	var progress bytes.Buffer
	suite.Log = &progress
	var dist bytes.Buffer
	rep, err := RunBatchWith(suite, mk(), 1, sch, &dist)
	if err != nil {
		t.Fatal(err)
	}

	if local.String() != dist.String() {
		t.Errorf("local and grid output diverged:\n--- local\n%s--- grid\n%s",
			local.String(), dist.String())
	}
	byWorker := map[string]int{}
	for _, r := range rep.Runs {
		if r.Worker == "" || r.Worker == "local" {
			t.Errorf("grid run %s attributed to %q, want a worker node name", r.ID, r.Worker)
		}
		if r.WireBytes <= 0 {
			t.Errorf("grid run %s accounted no wire bytes", r.ID)
		}
		byWorker[r.Worker]++
	}
	for _, name := range []string{"wk-a", "wk-b"} {
		if byWorker[name] < 1 {
			t.Errorf("worker %s ran no spec (distribution %v)", name, byWorker)
		}
	}
	if rep.WireBytes <= 0 {
		t.Error("report total wire bytes not accounted")
	}
	// Progress lines carry worker attribution; experiment text (stdout) must
	// never mention workers, or byte-identity across venues would break.
	if !strings.Contains(progress.String(), "# [wk-") {
		t.Errorf("progress lines lack worker prefixes:\n%s", progress.String())
	}
	if strings.Contains(dist.String(), "wk-") {
		t.Errorf("experiment text leaked worker names:\n%s", dist.String())
	}
}

// failingExec is an Executor whose every job fails remotely — the stand-in
// for a worker that dies mid-run after the coordinator resolved the spec.
type failingExec struct{}

func (failingExec) ExecuteSpec(job grid.Job, _ *scene.Sequence) (*slam.Result, grid.ExecInfo, error) {
	return nil, grid.ExecInfo{}, fmt.Errorf("worker melted running %s", job.ID)
}

// TestBatchGridRemoteFailurePropagates: a remote mid-run failure must surface
// through RunBatchWith with the job's identity, stop the batch before
// rendering, and drain the pool instead of wedging it.
func TestBatchGridRemoteFailurePropagates(t *testing.T) {
	exps := []Experiment{
		fakeExp("a", Spec("Desk", VarBaseline)),
		fakeExp("b", Spec("Desk2", VarBaseline)),
	}
	var buf bytes.Buffer
	_, err := RunBatchWith(NewSuite(tinyCfg()), exps, 2, failingExec{}, &buf)
	if err == nil || !strings.Contains(err.Error(), "worker melted running Desk/baseline/") {
		t.Fatalf("batch error = %v, want the failing job named", err)
	}
	if buf.Len() != 0 {
		t.Errorf("failing grid batch rendered output:\n%s", buf.String())
	}
}

// TestBatchMarksCachedRuns: a second batch over the same suite reports its
// runs as cache hits.
func TestBatchMarksCachedRuns(t *testing.T) {
	s := NewSuite(tinyCfg())
	exps := []Experiment{fakeExp("a", Spec("Desk", VarBaseline))}
	if _, err := RunBatch(s, exps, 1, io.Discard); err != nil {
		t.Fatal(err)
	}
	rep, err := RunBatch(s, exps, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || !rep.Runs[0].Cached {
		t.Errorf("second batch runs = %+v, want cached", rep.Runs)
	}
}
