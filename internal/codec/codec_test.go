package codec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ags/internal/frame"
	"ags/internal/vecmath"
)

// noiseImage builds a reproducible random image (rich texture for ME).
func noiseImage(w, h int, seed int64) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	im := frame.NewImage(w, h)
	for i := range im.Pix {
		v := rng.Float64()
		im.Pix[i] = vecmath.Vec3{X: v, Y: v, Z: v}
	}
	return im
}

// shiftImage translates the image by (dx, dy), clamping at borders.
func shiftImage(src *frame.Image, dx, dy int) *frame.Image {
	out := frame.NewImage(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Set(x, y, src.At(x-dx, y-dy))
		}
	}
	return out
}

func TestIdenticalFramesZeroSAD(t *testing.T) {
	im := noiseImage(32, 32, 1)
	res, err := MotionEstimate(im, im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SumMinSAD() != 0 {
		t.Errorf("identical frames SAD = %d", res.SumMinSAD())
	}
	for _, mv := range res.MV {
		if mv.DX != 0 || mv.DY != 0 {
			t.Fatalf("identical frames produced motion vector %+v", mv)
		}
	}
}

func TestFullSearchRecoversGlobalShift(t *testing.T) {
	im := noiseImage(48, 48, 2)
	shifted := shiftImage(im, 3, -2)
	cfg := Config{BlockSize: 8, SearchRange: 6, ThreeStep: false}
	res, err := MotionEstimate(im, shifted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interior macro-blocks must find the exact displacement: the block
	// content moved by (3,-2), so the best reference offset is (-3, 2).
	interior := 0
	correct := 0
	for by := 1; by < res.MBH-1; by++ {
		for bx := 1; bx < res.MBW-1; bx++ {
			interior++
			mv := res.MV[by*res.MBW+bx]
			if mv.DX == -3 && mv.DY == 2 {
				correct++
			}
		}
	}
	if correct < interior {
		t.Errorf("full search: %d/%d interior blocks found the shift", correct, interior)
	}
}

// smoothImage builds a low-frequency image; three-step search assumes the
// SAD surface is smooth, which natural video (unlike white noise) satisfies.
func smoothImage(w, h int, seed int64) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	p0, p1, p2 := rng.Float64()*6, rng.Float64()*6, rng.Float64()*6
	im := frame.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 0.5 + 0.2*math.Sin(5*fx*math.Pi+p0) + 0.2*math.Cos(4*fy*math.Pi+p1) + 0.1*math.Sin(7*(fx+fy)*math.Pi+p2)
			im.Set(x, y, vecmath.Vec3{X: v, Y: v, Z: v})
		}
	}
	return im
}

func TestThreeStepApproximatesFullSearch(t *testing.T) {
	im := smoothImage(48, 48, 3)
	shifted := shiftImage(im, 2, 1)
	full, err := MotionEstimate(im, shifted, Config{BlockSize: 8, SearchRange: 8, ThreeStep: false})
	if err != nil {
		t.Fatal(err)
	}
	tss, err := MotionEstimate(im, shifted, Config{BlockSize: 8, SearchRange: 8, ThreeStep: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three-step is an approximation: allow some slack but not much on a
	// clean global shift of a smooth image.
	if tss.SumMinSAD() > full.SumMinSAD()*3/2+1000 {
		t.Errorf("three-step SAD %d much worse than full %d", tss.SumMinSAD(), full.SumMinSAD())
	}
	// And it must be far cheaper.
	if tss.SADOps >= full.SADOps/3 {
		t.Errorf("three-step ops %d not much cheaper than full %d", tss.SADOps, full.SADOps)
	}
}

func TestSADMonotoneInDifference(t *testing.T) {
	im := noiseImage(32, 32, 4)
	slightlyOff := im.Clone()
	veryOff := noiseImage(32, 32, 99)
	for i := range slightlyOff.Pix {
		if i%7 == 0 {
			slightlyOff.Pix[i] = vecmath.Vec3{X: 1, Y: 1, Z: 1}.Sub(slightlyOff.Pix[i])
		}
	}
	cfg := DefaultConfig()
	rSlight, _ := MotionEstimate(im, slightlyOff, cfg)
	rVery, _ := MotionEstimate(im, veryOff, cfg)
	if rSlight.SumMinSAD() >= rVery.SumMinSAD() {
		t.Errorf("SAD not monotone: slight %d >= unrelated %d", rSlight.SumMinSAD(), rVery.SumMinSAD())
	}
}

func TestMotionEstimateErrors(t *testing.T) {
	a := noiseImage(32, 32, 5)
	b := noiseImage(16, 16, 5)
	if _, err := MotionEstimate(a, b, DefaultConfig()); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MotionEstimate(a, a, Config{BlockSize: 0, SearchRange: 4}); err == nil {
		t.Error("zero block size accepted")
	}
	tiny := noiseImage(4, 4, 6)
	if _, err := MotionEstimate(tiny, tiny, DefaultConfig()); err == nil {
		t.Error("image smaller than block accepted")
	}
}

func TestEdgeBlocksCovered(t *testing.T) {
	// 30x22 is not divisible by the 8-pixel block: the grid must grow to
	// 4x3 with clamped partial blocks instead of dropping the remainder.
	im := noiseImage(30, 22, 8)
	res, err := MotionEstimate(im, im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MBW != 4 || res.MBH != 3 {
		t.Fatalf("grid %dx%d, want 4x3", res.MBW, res.MBH)
	}
	if res.Pixels != 30*22 {
		t.Errorf("covered pixels %d, want %d", res.Pixels, 30*22)
	}
	if res.SumMinSAD() != 0 {
		t.Errorf("identical frames SAD = %d", res.SumMinSAD())
	}
	// Worst-case frames: every covered pixel must contribute, including the
	// partial right/bottom blocks, so Sum == Max exactly.
	white := frame.NewImage(20, 12)
	black := frame.NewImage(20, 12)
	for i := range white.Pix {
		white.Pix[i] = vecmath.Vec3{X: 1, Y: 1, Z: 1}
	}
	wres, err := MotionEstimate(white, black, Config{BlockSize: 8, SearchRange: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(20 * 12 * 255); wres.SumMinSAD() != want || wres.MaxPossibleSAD() != want {
		t.Errorf("sum %d max %d, want both %d", wres.SumMinSAD(), wres.MaxPossibleSAD(), want)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The worker pool must be a pure performance change: byte-identical
	// MinSAD, MV and SADOps across block sizes, search ranges, both search
	// modes, early termination, and non-divisible frame sizes.
	sizes := []struct{ w, h int }{{32, 32}, {30, 22}, {48, 36}}
	for _, sz := range sizes {
		prev := smoothImage(sz.w, sz.h, int64(sz.w))
		cur := shiftImage(prev, 2, -1)
		for _, bs := range []int{4, 8} {
			for _, sr := range []int{2, 8} {
				for _, three := range []bool{false, true} {
					for _, et := range []bool{false, true} {
						cfg := Config{BlockSize: bs, SearchRange: sr, ThreeStep: three, EarlyTerm: et}
						serial, err := MotionEstimate(prev, cur, cfg)
						if err != nil {
							t.Fatal(err)
						}
						for _, wk := range []int{2, 3, 7} {
							pcfg := cfg
							pcfg.Workers = wk
							par, err := MotionEstimate(prev, cur, pcfg)
							if err != nil {
								t.Fatal(err)
							}
							id := fmt.Sprintf("%dx%d bs=%d sr=%d three=%v et=%v wk=%d", sz.w, sz.h, bs, sr, three, et, wk)
							if !reflect.DeepEqual(serial.MinSAD, par.MinSAD) {
								t.Errorf("%s: MinSAD differs", id)
							}
							if !reflect.DeepEqual(serial.MV, par.MV) {
								t.Errorf("%s: MV differs", id)
							}
							if serial.SADOps != par.SADOps {
								t.Errorf("%s: SADOps %d != %d", id, par.SADOps, serial.SADOps)
							}
						}
					}
				}
			}
		}
	}
}

func TestThreeStepDeduplicatesProbes(t *testing.T) {
	// With SearchRange 1 the coarse ring and the unit ring are the same set
	// of candidates; a real encoder scans them once. Identical frames make
	// every probe cost exactly bs^2 ops (no early termination), so the count
	// is closed-form: origin + 8 ring candidates = 9 probes per block.
	im := noiseImage(16, 16, 9)
	res, err := MotionEstimate(im, im, Config{BlockSize: 8, SearchRange: 1, ThreeStep: true})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 9 * 64) // 4 blocks x 9 unique probes x 64 pixels
	if res.SADOps != want {
		t.Errorf("SADOps = %d, want %d (duplicate probes charged?)", res.SADOps, want)
	}
}

func TestEarlyTerminationInvariant(t *testing.T) {
	// Early termination only cuts short candidates that cannot win, so the
	// SAD minima and motion vectors must match the exhaustive accumulation
	// exactly; only the charged op count may drop.
	prev := smoothImage(48, 36, 11)
	cur := shiftImage(prev, 3, 2)
	for _, three := range []bool{false, true} {
		cfg := Config{BlockSize: 8, SearchRange: 8, ThreeStep: three}
		plain, err := MotionEstimate(prev, cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.EarlyTerm = true
		et, err := MotionEstimate(prev, cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.MinSAD, et.MinSAD) || !reflect.DeepEqual(plain.MV, et.MV) {
			t.Errorf("three=%v: early termination changed the search result", three)
		}
		if et.SADOps > plain.SADOps {
			t.Errorf("three=%v: early termination raised ops %d > %d", three, et.SADOps, plain.SADOps)
		}
		if !three && et.SADOps >= plain.SADOps {
			t.Errorf("full search with early termination saved nothing (%d ops)", et.SADOps)
		}
	}
}

func TestMaxPossibleSAD(t *testing.T) {
	white := frame.NewImage(16, 16)
	black := frame.NewImage(16, 16)
	for i := range white.Pix {
		white.Pix[i] = vecmath.Vec3{X: 1, Y: 1, Z: 1}
	}
	res, err := MotionEstimate(white, black, Config{BlockSize: 8, SearchRange: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.SumMinSAD() != res.MaxPossibleSAD() {
		t.Errorf("black-vs-white SAD %d != max %d", res.SumMinSAD(), res.MaxPossibleSAD())
	}
}

func TestSADOpsCounted(t *testing.T) {
	im := noiseImage(32, 32, 7)
	res, err := MotionEstimate(im, im, Config{BlockSize: 8, SearchRange: 2, ThreeStep: false})
	if err != nil {
		t.Fatal(err)
	}
	// 16 blocks * 25 candidates * 64 pixels.
	want := int64(16 * 25 * 64)
	if res.SADOps != want {
		t.Errorf("SADOps = %d, want %d", res.SADOps, want)
	}
}
