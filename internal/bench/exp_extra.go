package bench

import (
	"fmt"
	"io"
	"math"

	"ags/internal/codec"
	"ags/internal/hw/dram"
	"ags/internal/hw/engines"
	"ags/internal/hw/platform"
	"ags/internal/metrics"
	"ags/internal/scene"
)

// Extra (non-paper) ablations for design choices DESIGN.md calls out.

func expAblCodec() Experiment {
	return expDef{
		id: "abl-codec", paper: "Extra: ME search ablation",
		needs:  []RunSpec{SeqSpec("Desk")},
		render: (*Suite).AblCodec,
	}
}

func expAblTables() Experiment {
	return expDef{
		id: "abl-tables", paper: "Extra: logging-buffer capacity sweep",
		needs:  []RunSpec{Spec("Desk", VarBaseline)},
		render: (*Suite).AblTables,
	}
}

func expAblOverlap() Experiment {
	return expDef{
		id: "abl-overlap", paper: "Extra: pipelining/scheduler split",
		needs:  specsFor(scene.TUMNames(), VarAGS),
		render: (*Suite).AblOverlap,
	}
}

// AblCodec compares the two motion-estimation searches: exhaustive full
// search (what a quality-oriented encoder does) vs the NTSS logarithmic
// search (what a real-time hardware encoder does), in both cost and the
// covisibility signal they produce.
func (s *Suite) AblCodec(w io.Writer) error {
	t := NewTable("Ablation: ME search strategy (Desk, adjacent frames)",
		"Search", "SAD ops/frame", "Sum min-SAD (mean)", "Covis corr. w/ full")
	seq := s.Sequence("Desk")
	type stats struct {
		ops    int64
		sumSAD float64
		scores []float64
	}
	collect := func(threeStep bool) (stats, error) {
		var st stats
		cfg := codec.DefaultConfig()
		cfg.ThreeStep = threeStep
		for i := 1; i < len(seq.Frames); i++ {
			res, err := codec.MotionEstimate(seq.Frames[i-1].Color, seq.Frames[i].Color, cfg)
			if err != nil {
				return st, err
			}
			st.ops += res.SADOps
			st.sumSAD += float64(res.SumMinSAD())
			st.scores = append(st.scores, float64(res.SumMinSAD())/float64(res.MaxPossibleSAD()))
		}
		n := int64(len(seq.Frames) - 1)
		st.ops /= n
		st.sumSAD /= float64(n)
		return st, nil
	}
	full, err := collect(false)
	if err != nil {
		return err
	}
	ntss, err := collect(true)
	if err != nil {
		return err
	}
	t.AddRow("Full search", full.ops, full.sumSAD, 1.0)
	t.AddRow("NTSS", ntss.ops, ntss.sumSAD, correlation(full.scores, ntss.scores))
	t.AddNote("NTSS must track full search's covisibility signal at a fraction of the ops")
	t.Write(w)
	return nil
}

// AblTables sweeps the GS logging buffer capacity, showing how much of the
// hot/cold optimization survives smaller on-chip tables.
func (s *Suite) AblTables(w io.Writer) error {
	b, err := s.Run(Spec("Desk", VarBaseline))
	if err != nil {
		return err
	}
	var tiles [][]int32
	for i := len(b.Result.Trace.Frames) - 1; i >= 0; i-- {
		if b.Result.Trace.Frames[i].LoggingIDs != nil {
			tiles = b.Result.Trace.Frames[i].LoggingIDs
			break
		}
	}
	if tiles == nil {
		return fmt.Errorf("bench: no logging stream in trace")
	}
	t := NewTable("Ablation: GS logging buffer capacity (Desk, last key frame)",
		"Buffer entries", "DRAM accesses", "vs naive (%)")
	spec := dram.LPDDR4()
	var naive int64
	for _, cap := range []int{0, 64, 256, 512, 1024, 4096} {
		p := engines.TableParams{HotEntries: cap, EntryBytes: 8, HotWindowTiles: 8}
		res := engines.SimulateLogging(tiles, p, spec)
		if naive == 0 {
			naive = res.NaiveAccesses
		}
		t.AddRow(cap, res.OptAccesses, 100*float64(res.OptAccesses)/float64(naive))
	}
	t.AddNote("paper sizes the logging table at 4KB (512 entries, Edge) / 8KB (1024, Server)")
	t.Write(w)
	return nil
}

// AblOverlap isolates the engine-level pipelining (Fig. 9) and GPE scheduler
// contributions on the AGS traces.
func (s *Suite) AblOverlap(w io.Writer) error {
	t := NewTable("Ablation: pipelining and GPE scheduler (AGS-Server, speedup vs both off)",
		"Sequence", "+pipelining", "+scheduler", "+both")
	var p1, p2, p3 []float64
	for _, name := range scene.TUMNames() {
		b, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		off := platform.RunTotal(platform.AGSServer().WithScheduler(false).WithPipelining(false), b.Result.Trace)
		pipe := platform.RunTotal(platform.AGSServer().WithScheduler(false), b.Result.Trace)
		sched := platform.RunTotal(platform.AGSServer().WithPipelining(false), b.Result.Trace)
		both := platform.RunTotal(platform.AGSServer(), b.Result.Trace)
		s1, s2, s3 := platform.Speedup(off, pipe), platform.Speedup(off, sched), platform.Speedup(off, both)
		p1, p2, p3 = append(p1, s1), append(p2, s2), append(p3, s3)
		t.AddRow(name, s1, s2, s3)
	}
	t.AddRow("GeoMean", metrics.GeoMean(p1), metrics.GeoMean(p2), metrics.GeoMean(p3))
	t.AddNote("pipelining dominates at this workload scale; scheduler gains grow with per-pixel skew")
	t.Write(w)
	return nil
}

// correlation returns the Pearson correlation of two equal-length series.
func correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}
