package grid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"ags/internal/scene"
	"ags/internal/slam"
)

// Job and job-result payloads ride inside fleet vJob/vJobResult frames, which
// already carry the magic/version/checksum armor — this codec only has to be
// unambiguous and reject trailing or overlong content, in the same
// length-prefixed little-endian style as the fleet and snapshot codecs.
//
// A job ships everything a worker needs to reproduce one bench run from
// nothing: the spec's cache identity (for logs and error context), the
// procedural dataset recipe (scene.Config — workers regenerate the sequence
// deterministically rather than shipping frames), and the fully resolved
// slam.Config. Resolution happens on the coordinator because RunSpec
// overrides are functions and cannot cross a wire; the resolved config
// crosses bit-exactly via the slam snapshot codec (slam.AppendConfig).

// Job names one resolved bench execution.
type Job struct {
	// ID is the RunSpec cache identity (sequence/variant/key), carried for
	// logs and error context only — the payload below is self-sufficient.
	ID string
	// Seq is the procedural sequence name (scene.Generate's first argument).
	Seq string
	// Scene is the dataset regeneration recipe.
	Scene scene.Config
	// Cfg is the fully resolved pipeline configuration, variant and override
	// already applied.
	Cfg slam.Config
}

// jobResult is a worker's reply: the finished system's snapshot (AGSSNAP
// bytes, themselves checksummed) plus the Result digest the worker computed
// before encoding. The coordinator restores the snapshot, finishes it, and
// recomputes the digest — a mismatch means the codec, not the run, diverged.
// Worker attribution is not in the payload: the scheduler already knows each
// connection's node from its stats handshake, the node's self-declared name.
type jobResult struct {
	Digest [32]byte
	Snap   []byte
}

type enc struct{ buf []byte }

func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// dec is the sticky-error cursor over a payload (mirroring fleet's wireDec).
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.fail("payload exhausted at offset %d (need %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) sliceLen() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("length %d exceeds remaining payload (%d bytes)", n, len(d.b)-d.off)
		return 0
	}
	return int(n)
}

func (d *dec) str() string   { return string(d.take(d.sliceLen())) }
func (d *dec) bytes() []byte { return d.take(d.sliceLen()) }

func (d *dec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("grid: %s payload: %w", what, d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("grid: %s payload: %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}

func encodeJob(buf []byte, job *Job) []byte {
	e := enc{buf: buf}
	e.str(job.ID)
	e.str(job.Seq)
	e.i64(int64(job.Scene.Width))
	e.i64(int64(job.Scene.Height))
	e.i64(int64(job.Scene.Frames))
	e.i64(job.Scene.Seed)
	e.f64(job.Scene.VFoV)
	e.bytes(slam.AppendConfig(nil, &job.Cfg))
	return e.buf
}

func decodeJob(b []byte) (Job, error) {
	d := &dec{b: b}
	var job Job
	job.ID = d.str()
	job.Seq = d.str()
	job.Scene.Width = int(d.i64())
	job.Scene.Height = int(d.i64())
	job.Scene.Frames = int(d.i64())
	job.Scene.Seed = d.i64()
	job.Scene.VFoV = d.f64()
	cfgBytes := d.bytes()
	if err := d.finish("job"); err != nil {
		return Job{}, err
	}
	cfg, err := slam.DecodeConfig(cfgBytes)
	if err != nil {
		return Job{}, fmt.Errorf("grid: job %s: %w", job.ID, err)
	}
	job.Cfg = cfg
	return job, nil
}

func encodeJobResult(buf []byte, r *jobResult) []byte {
	e := enc{buf: buf}
	e.buf = append(e.buf, r.Digest[:]...)
	e.bytes(r.Snap)
	return e.buf
}

func decodeJobResult(b []byte) (jobResult, error) {
	d := &dec{b: b}
	var r jobResult
	copy(r.Digest[:], d.take(sha256.Size))
	r.Snap = d.bytes()
	return r, d.finish("job-result")
}
