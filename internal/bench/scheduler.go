package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PlanSpecs returns the deduplicated union of the selected experiments'
// RunSpecs in first-appearance order. Dataset-only specs whose sequence is
// already implied by a pipeline spec are dropped (the run generates the
// dataset anyway), so the plan is exactly the set of distinct executions the
// warm phase performs.
func PlanSpecs(exps []Experiment) []RunSpec {
	var plan []RunSpec
	seen := make(map[string]bool)
	seqCovered := make(map[string]bool)
	for _, e := range exps {
		for _, spec := range e.Needs() {
			if seen[spec.ID()] {
				continue
			}
			seen[spec.ID()] = true
			if !spec.DatasetOnly() {
				seqCovered[spec.Seq] = true
			}
			plan = append(plan, spec)
		}
	}
	out := plan[:0]
	for _, spec := range plan {
		if spec.DatasetOnly() && seqCovered[spec.Seq] {
			continue
		}
		out = append(out, spec)
	}
	return out
}

// RunReport records one pipeline execution of the warm phase.
type RunReport struct {
	ID       string  `json:"id"`
	Sequence string  `json:"sequence"`
	Variant  string  `json:"variant,omitempty"`
	Key      string  `json:"key,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// Worker names the executing node: "local" for in-process runs, the
	// worker node's self-declared name for grid runs.
	Worker string `json:"worker"`
	// WireBytes counts bytes both directions for grid runs (0 for local).
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Verified marks grid runs additionally confirmed by a sampled local
	// replay on the coordinator.
	Verified bool `json:"verified,omitempty"`
	// Cached marks specs the suite had already executed before this batch
	// (their WallMS is the original execution's, not this batch's).
	Cached bool `json:"cached,omitempty"`
}

// ExperimentReport records one rendered experiment.
type ExperimentReport struct {
	ID       string  `json:"id"`
	Paper    string  `json:"paper"`
	RenderMS float64 `json:"render_ms"`
}

// Report is the machine-readable result of a batch: per-run and
// per-experiment wall times plus phase totals, so the suite's performance
// trajectory can be recorded across commits.
type Report struct {
	Jobs        int                `json:"jobs"`
	Specs       int                `json:"specs"`
	Runs        []RunReport        `json:"runs"`
	Experiments []ExperimentReport `json:"experiments"`
	WarmMS      float64            `json:"warm_ms"`
	RenderMS    float64            `json:"render_ms"`
	TotalMS     float64            `json:"total_ms"`
	// WireBytes totals bytes over the wire across this batch's grid runs
	// (0 for all-local batches).
	WireBytes int64 `json:"wire_bytes"`
}

// RunBatch materializes every spec the selected experiments need across a
// bounded pool of jobs workers (jobs <= 0 means GOMAXPROCS), then renders
// each experiment to out in the given order. Spec execution is deduplicated
// by the suite's singleflight cache; rendering is strictly sequential, so
// out receives byte-identical text for every jobs value. On a failing spec
// the batch stops before rendering and returns the plan-order-first error.
func RunBatch(s *Suite, exps []Experiment, jobs int, out io.Writer) (*Report, error) {
	return RunBatchWith(s, exps, jobs, nil, out)
}

// RunBatchWith is RunBatch with an execution venue: a nil Executor warms every
// spec in-process, a grid scheduler ships each one to a worker node. The plan,
// the dedup, the singleflight semantics and the rendered text are identical
// either way — only where pipelines execute changes — so out stays
// byte-identical across jobs counts and venues.
func RunBatchWith(s *Suite, exps []Experiment, jobs int, x Executor, out io.Writer) (*Report, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	plan := PlanSpecs(exps)
	pre := s.Timings()
	start := wallNow()

	errs := make([]error, len(plan))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for i, spec := range plan {
		sem <- struct{}{} // bounds concurrency; jobs=1 degenerates to serial plan order
		if failed.Load() {
			// A spec already failed: stop launching pipelines (each costs
			// seconds to minutes); in-flight ones drain below.
			<-sem
			break
		}
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			if errs[i] = s.warmVia(x, spec); errs[i] != nil {
				failed.Store(true)
			}
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	warm := wallSince(start)

	rep := &Report{Jobs: jobs, Specs: len(plan)}
	execs := s.execRecords()
	for _, spec := range plan {
		if spec.DatasetOnly() {
			continue
		}
		_, cached := pre[spec.ID()]
		rec := execs[spec.ID()]
		rep.Runs = append(rep.Runs, RunReport{
			ID:        spec.ID(),
			Sequence:  spec.Seq,
			Variant:   string(spec.Variant),
			Key:       spec.Key,
			WallMS:    ms(rec.dur),
			Worker:    rec.worker,
			WireBytes: rec.wire,
			Verified:  rec.verified,
			Cached:    cached,
		})
		rep.WireBytes += rec.wire
	}

	renderStart := wallNow()
	for _, e := range exps {
		estart := wallNow()
		if err := e.Render(s, out); err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID(), err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			ID: e.ID(), Paper: e.Paper(), RenderMS: ms(wallSince(estart)),
		})
	}
	rep.WarmMS = ms(warm)
	rep.RenderMS = ms(wallSince(renderStart))
	rep.TotalMS = ms(wallSince(start))
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
