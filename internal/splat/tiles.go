package splat

import (
	"slices"

	"ags/internal/camera"
)

// Tiles holds the per-tile Gaussian tables (step 2 of Fig. 2) in a flat
// CSR-style layout: Entries is one backing array of splat indices and
// Offsets[i]..Offsets[i+1] bounds tile i's table, sorted front-to-back by
// depth. These tables are exactly what the AGS mapping engine walks, so the
// hardware simulator consumes them unchanged; the flat layout is also what
// lets a RenderContext rebuild them every frame without allocating.
type Tiles struct {
	TW, TH  int     // tile grid size
	Offsets []int32 // len NumTiles()+1; tile i's table is Entries[Offsets[i]:Offsets[i+1]]
	Entries []int32 // concatenated splat-index tables, depth ascending per tile
}

// NumTiles returns the number of tiles in the grid.
func (t *Tiles) NumTiles() int { return t.TW * t.TH }

// List returns the Gaussian table of tile (tx, ty).
func (t *Tiles) List(tx, ty int) []int32 { return t.ListAt(ty*t.TW + tx) }

// ListAt returns the Gaussian table of the tile with flat index idx. The
// capacity is capped at the table's end: the tables share one backing array,
// and an uncapped append from a caller would silently overwrite the next
// tile's entries.
func (t *Tiles) ListAt(idx int) []int32 {
	lo, hi := t.Offsets[idx], t.Offsets[idx+1]
	return t.Entries[lo:hi:hi]
}

// TotalEntries returns the summed length of all Gaussian tables — the
// number of (Gaussian, tile) pairs the renderer will touch.
func (t *Tiles) TotalEntries() int { return len(t.Entries) }

// BuildTiles performs the tile intersection test and depth sort. A splat is
// assigned to every tile its 3-sigma bounding box overlaps (the reference
// 3DGS conservative test). One-shot variant of (*RenderContext).Render's
// internal build; see buildTilesInto.
func BuildTiles(splats []Splat, intr camera.Intrinsics) *Tiles {
	t := &Tiles{}
	var cursor []int32
	buildTilesInto(t, &cursor, splats, intr)
	return t
}

// tileRect returns the clamped tile-coordinate bounding box of the splat, or
// ok=false when its 3-sigma box misses the image entirely. Culling instead of
// clamping matters: a clamped off-screen splat would charge phantom table
// entries (and alpha evaluations) to the workload trace. Render's
// preprocessing already culls these, but BuildTiles must stand alone for
// direct callers.
//
//ags:hotpath
func tileRect(s *Splat, w, h, tw, th int) (x0, x1, y0, y1 int, ok bool) {
	if s.Mean2D.X+s.Radius < 0 || s.Mean2D.Y+s.Radius < 0 ||
		s.Mean2D.X-s.Radius >= float64(w) || s.Mean2D.Y-s.Radius >= float64(h) {
		return 0, 0, 0, 0, false
	}
	x0 = min(max(int((s.Mean2D.X-s.Radius)/TileSize), 0), tw-1)
	x1 = min(max(int((s.Mean2D.X+s.Radius)/TileSize), 0), tw-1)
	y0 = min(max(int((s.Mean2D.Y-s.Radius)/TileSize), 0), th-1)
	y1 = min(max(int((s.Mean2D.Y+s.Radius)/TileSize), 0), th-1)
	return x0, x1, y0, y1, true
}

// buildTilesInto rebuilds t's CSR tables in place with a two-pass counting
// build (count per tile, prefix-sum, fill), reusing t's backing arrays and
// the caller's cursor scratch. Entries are filled in ascending splat index
// per tile, then depth-sorted; ties break toward the lower splat index, so
// the table order is a pure function of the splat slice.
//
//ags:hotpath
func buildTilesInto(t *Tiles, cursor *[]int32, splats []Splat, intr camera.Intrinsics) {
	tw := (intr.W + TileSize - 1) / TileSize
	th := (intr.H + TileSize - 1) / TileSize
	nt := tw * th
	t.TW, t.TH = tw, th
	t.Offsets = zeroed(t.Offsets, nt+1)

	// Pass 1: count entries per tile (shifted by one so the prefix sum below
	// turns counts into offsets directly).
	for i := range splats {
		x0, x1, y0, y1, ok := tileRect(&splats[i], intr.W, intr.H, tw, th)
		if !ok {
			continue
		}
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				t.Offsets[ty*tw+tx+1]++
			}
		}
	}
	for i := 0; i < nt; i++ {
		t.Offsets[i+1] += t.Offsets[i]
	}
	total := int(t.Offsets[nt])
	if cap(t.Entries) < total {
		t.Entries = make([]int32, total)
	} else {
		t.Entries = t.Entries[:total]
	}

	// Pass 2: fill through a per-tile write cursor.
	cur := zeroed(*cursor, nt)
	copy(cur, t.Offsets[:nt])
	*cursor = cur
	for i := range splats {
		x0, x1, y0, y1, ok := tileRect(&splats[i], intr.W, intr.H, tw, th)
		if !ok {
			continue
		}
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				idx := ty*tw + tx
				t.Entries[cur[idx]] = int32(i)
				cur[idx]++
			}
		}
	}

	// Pass 3: per-tile front-to-back depth sort.
	for idx := 0; idx < nt; idx++ {
		sortTileByDepth(t.Entries[t.Offsets[idx]:t.Offsets[idx+1]], splats)
	}
}

// depthSortCutoff is the tile-table length up to which the allocation-free
// insertion sort is used; longer tables fall back to slices.SortFunc. Tile
// tables are short in the common case (tens of entries), where insertion
// sort beats the general algorithm and never allocates.
const depthSortCutoff = 32

// sortTileByDepth orders one tile's table front-to-back. The comparator is
// (depth, splat index): depth ties break toward the lower index, which both
// the insertion path and the SortFunc fallback implement identically, so the
// resulting order — and therefore the blend order and every downstream
// digest — does not depend on which path ran.
//
//ags:hotpath
func sortTileByDepth(list []int32, splats []Splat) {
	if len(list) <= depthSortCutoff {
		for i := 1; i < len(list); i++ {
			e := list[i]
			d := splats[e].Depth
			j := i - 1
			for j >= 0 && (splats[list[j]].Depth > d || (splats[list[j]].Depth == d && list[j] > e)) {
				list[j+1] = list[j]
				j--
			}
			list[j+1] = e
		}
		return
	}
	//ags:allow(hotalloc, comparator closure only on the rare long-table fallback; the common path is the allocation-free insertion sort above)
	slices.SortFunc(list, func(a, b int32) int {
		da, db := splats[a].Depth, splats[b].Depth
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
}
