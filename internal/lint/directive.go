package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// allowDirective is one parsed //ags:allow(check, reason) suppression.
type allowDirective struct {
	file   string // module-root-relative
	line   int    // the directive's own line
	target int    // the line it suppresses: its own, or the code line after its comment group
	col    int
	check  string
	reason string
	used   bool
}

// applyDirectives filters raw findings through the //ags:allow suppressions
// found in pkgs and appends directive findings: malformed //ags: comments,
// //ags:hotpath markers outside function doc comments, and — when every
// check ran (allChecks) — suppressions that matched nothing, so a fixed
// finding cannot leave its excuse behind.
func applyDirectives(pkgs []*Package, raw []Finding, allChecks bool) []Finding {
	var allows []*allowDirective
	var out []Finding
	known := make(map[string]bool)
	for _, c := range AllChecks() {
		known[c] = true
	}

	for _, pkg := range pkgs {
		hotpathDocs := funcDocComments(pkg)
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				_, groupEnd, _ := pkg.Position(cg.End())
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//ags:")
					if !ok {
						continue
					}
					fname, line, col := pkg.Position(c.Pos())
					if text == "hotpath" {
						if !hotpathDocs[c] {
							out = append(out, Finding{
								File: fname, Line: line, Col: col, Check: checkDirective,
								Message: "//ags:hotpath must appear in a function's doc comment",
							})
						}
						continue
					}
					check, reason, perr := parseAllow(text)
					if perr != "" {
						out = append(out, Finding{
							File: fname, Line: line, Col: col, Check: checkDirective,
							Message: perr,
						})
						continue
					}
					if !known[check] {
						out = append(out, Finding{
							File: fname, Line: line, Col: col, Check: checkDirective,
							Message: fmt.Sprintf("//ags:allow names unknown check %q (known: %s)", check, strings.Join(AllChecks(), ", ")),
						})
						continue
					}
					// A trailing comment suppresses its own line; a comment
					// block above a statement suppresses the line right after
					// the block, so stacked directives all reach it.
					allows = append(allows, &allowDirective{
						file: fname, line: line, target: groupEnd + 1,
						col: col, check: check, reason: reason,
					})
				}
			}
		}
	}

	for _, f := range raw {
		suppressed := false
		for _, a := range allows {
			if a.check == f.Check && a.file == f.File && (a.line == f.Line || a.target == f.Line) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}

	if allChecks {
		for _, a := range allows {
			if !a.used {
				out = append(out, Finding{
					File: a.file, Line: a.line, Col: a.col, Check: checkDirective,
					Message: fmt.Sprintf("//ags:allow(%s, ...) suppresses nothing here — remove the stale directive", a.check),
				})
			}
		}
	}
	return out
}

// parseAllow parses the text after "//ags:" for the allow form, returning a
// non-empty error message on malformed input. The reason may contain commas;
// only the first comma separates it from the check name.
func parseAllow(text string) (check, reason, errMsg string) {
	const malformed = "malformed //ags: directive — expected //ags:hotpath or //ags:allow(check, reason)"
	body, ok := strings.CutPrefix(text, "allow(")
	if !ok {
		return "", "", malformed
	}
	body, ok = strings.CutSuffix(strings.TrimRight(body, " \t"), ")")
	if !ok {
		return "", "", malformed
	}
	check, reason, ok = strings.Cut(body, ",")
	check = strings.TrimSpace(check)
	reason = strings.TrimSpace(reason)
	if !ok || check == "" || reason == "" {
		return "", "", "//ags:allow requires a check name and a non-empty reason: //ags:allow(check, reason)"
	}
	return check, reason, ""
}

// funcDocComments returns the set of comments that live inside a function
// declaration's doc comment — the only valid home for //ags:hotpath.
func funcDocComments(pkg *Package) map[*ast.Comment]bool {
	docs := make(map[*ast.Comment]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docs[c] = true
			}
		}
	}
	return docs
}

// isHotpath reports whether the function declaration opts into the hotalloc
// check via //ags:hotpath in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//ags:hotpath" {
			return true
		}
	}
	return false
}
