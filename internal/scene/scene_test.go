package scene

import (
	"math"
	"testing"

	"ags/internal/camera"
	"ags/internal/vecmath"
)

func TestBoxIntersectFrontFace(t *testing.T) {
	b := &Box{Min: v(-1, -1, 1), Max: v(1, 1, 2), Tex: Solid(v(1, 0, 0))}
	h, ok := b.Intersect(v(0, 0, 0), v(0, 0, 1), 1e-6, 100)
	if !ok {
		t.Fatal("ray missed box")
	}
	if math.Abs(h.T-1) > 1e-9 {
		t.Errorf("hit distance %v", h.T)
	}
	if h.Normal.Sub(v(0, 0, -1)).Norm() > 1e-9 {
		t.Errorf("normal %v", h.Normal)
	}
}

func TestBoxIntersectMiss(t *testing.T) {
	b := &Box{Min: v(-1, -1, 1), Max: v(1, 1, 2), Tex: Solid(v(1, 0, 0))}
	if _, ok := b.Intersect(v(0, 5, 0), v(0, 0, 1), 1e-6, 100); ok {
		t.Error("ray should miss")
	}
	// Ray pointing away.
	if _, ok := b.Intersect(v(0, 0, 0), v(0, 0, -1), 1e-6, 100); ok {
		t.Error("backward ray should miss")
	}
}

func TestBoxIntersectFromInside(t *testing.T) {
	b := &Box{Min: v(-1, -1, -1), Max: v(1, 1, 1), Tex: Solid(v(1, 0, 0))}
	h, ok := b.Intersect(v(0, 0, 0), v(0, 0, 1), 1e-6, 100)
	if !ok {
		t.Fatal("interior ray missed exit face")
	}
	if math.Abs(h.T-1) > 1e-9 {
		t.Errorf("exit distance %v", h.T)
	}
	// Normal flips toward the ray origin for exit hits.
	if h.Normal.Dot(v(0, 0, 1)) >= 0 {
		t.Errorf("exit normal %v not facing back", h.Normal)
	}
}

func TestSphereIntersect(t *testing.T) {
	s := &Sphere{Center: v(0, 0, 3), Radius: 1, Tex: Solid(v(0, 1, 0))}
	h, ok := s.Intersect(v(0, 0, 0), v(0, 0, 1), 1e-6, 100)
	if !ok {
		t.Fatal("missed sphere")
	}
	if math.Abs(h.T-2) > 1e-9 {
		t.Errorf("hit at %v", h.T)
	}
	if h.Normal.Sub(v(0, 0, -1)).Norm() > 1e-9 {
		t.Errorf("normal %v", h.Normal)
	}
	if _, ok := s.Intersect(v(0, 5, 0), v(0, 0, 1), 1e-6, 100); ok {
		t.Error("offset ray should miss")
	}
}

func TestRoomShellHitsFromInside(t *testing.T) {
	r := &RoomShell{Min: v(-2, 0, -2), Max: v(2, 3, 2), Tex: Solid(v(1, 1, 1))}
	h, ok := r.Intersect(v(0, 1, 0), v(1, 0, 0), 1e-6, 100)
	if !ok {
		t.Fatal("interior ray missed wall")
	}
	if math.Abs(h.T-2) > 1e-9 {
		t.Errorf("wall at %v", h.T)
	}
	if h.Normal.Sub(v(-1, 0, 0)).Norm() > 1e-9 {
		t.Errorf("inward normal %v", h.Normal)
	}
}

func TestLookAtForwardAndOrthonormal(t *testing.T) {
	eye := v(1, 2, 3)
	target := v(0, 1, 0)
	pose := LookAt(eye, target)
	// The target must land on the optical axis (x=y=0, z>0 in camera space).
	tc := pose.Apply(target)
	if math.Abs(tc.X) > 1e-9 || math.Abs(tc.Y) > 1e-9 || tc.Z <= 0 {
		t.Errorf("target in camera space: %v", tc)
	}
	// The eye maps to the origin.
	if pose.Apply(eye).Norm() > 1e-9 {
		t.Errorf("eye maps to %v", pose.Apply(eye))
	}
	// Rotation is unit quaternion.
	if math.Abs(pose.R.Norm()-1) > 1e-9 {
		t.Error("non-unit rotation")
	}
}

func TestLookAtDegenerateUp(t *testing.T) {
	pose := LookAt(v(0, 0, 0), v(0, 5, 0)) // looking straight up
	if math.Abs(pose.R.Norm()-1) > 1e-9 {
		t.Error("degenerate lookAt produced invalid rotation")
	}
}

func TestTrajectoryStats(t *testing.T) {
	script := MotionScript{
		Eye:    waypoints(v(0, 1, 0), v(1, 1, 0)),
		Target: fixed(v(0, 1, 5)),
	}
	traj := script.Build(11)
	meanT, meanR := traj.Stats()
	if math.Abs(meanT-0.1) > 1e-6 {
		t.Errorf("mean translation %v, want 0.1", meanT)
	}
	if meanR > 0.05 {
		t.Errorf("mean rotation %v for pure translation", meanR)
	}
}

func TestMotionScriptDeterministic(t *testing.T) {
	_, s1 := scripts()["Desk"](7)
	_, s2 := scripts()["Desk"](7)
	t1 := s1.Build(10)
	t2 := s2.Build(10)
	for i := range t1 {
		if t1[i].T.Sub(t2[i].T).Norm() > 0 {
			t.Fatal("same seed produced different trajectories")
		}
	}
	_, s3 := scripts()["Desk"](8)
	t3 := s3.Build(10)
	diff := false
	for i := range t1 {
		if t1[i].T.Sub(t3[i].T).Norm() > 0 {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical jitter")
	}
}

func TestGenerateUnknownSequence(t *testing.T) {
	if _, err := Generate("NotAScene", DefaultConfig()); err == nil {
		t.Error("unknown sequence accepted")
	}
	if _, err := Generate("Desk", Config{Width: 0, Height: 10, Frames: 5}); err == nil {
		t.Error("invalid size accepted")
	}
	if _, err := Generate("Desk", Config{Width: 10, Height: 10, Frames: 0}); err == nil {
		t.Error("invalid frame count accepted")
	}
}

func TestGenerateDeskSequence(t *testing.T) {
	cfg := Config{Width: 48, Height: 36, Frames: 5, Seed: 1}
	seq, err := Generate("Desk", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Frames) != 5 {
		t.Fatalf("frames = %d", len(seq.Frames))
	}
	for _, f := range seq.Frames {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		// A room scene must have near-total depth coverage and non-trivial
		// color variance.
		valid := 0
		var minD, maxD = math.Inf(1), 0.0
		for _, d := range f.Depth.D {
			if d > 0 {
				valid++
				minD = math.Min(minD, d)
				maxD = math.Max(maxD, d)
			}
		}
		if float64(valid) < 0.99*float64(len(f.Depth.D)) {
			t.Fatalf("frame %d: only %d/%d pixels have depth", f.Index, valid, len(f.Depth.D))
		}
		if maxD <= minD {
			t.Fatalf("frame %d: degenerate depth range", f.Index)
		}
	}
	// Consecutive frames must differ (the camera moves) but not completely.
	d01 := frameDiff(seq, 0, 1)
	if d01 == 0 {
		t.Error("consecutive frames identical")
	}
	if d01 > 0.5 {
		t.Errorf("consecutive frames differ too much: %v", d01)
	}
}

func frameDiff(seq *Sequence, i, j int) float64 {
	var sum float64
	a, b := seq.Frames[i].Color, seq.Frames[j].Color
	for k := range a.Pix {
		sum += a.Pix[k].Sub(b.Pix[k]).Abs().MaxComponent()
	}
	return sum / float64(len(a.Pix))
}

func TestAllSequencesGenerate(t *testing.T) {
	cfg := Config{Width: 32, Height: 24, Frames: 3, Seed: 1}
	for _, name := range Names() {
		seq, err := Generate(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(seq.Frames) != 3 {
			t.Fatalf("%s: %d frames", name, len(seq.Frames))
		}
	}
}

func TestXyzHasHigherCovisibilityMotionThanDesk2(t *testing.T) {
	// The sequence motion profiles drive every covisibility experiment:
	// Xyz must rotate much less per frame than Desk2.
	cfg := Config{Width: 32, Height: 24, Frames: 20, Seed: 1}
	xyz := MustGenerate("Xyz", cfg)
	desk2 := MustGenerate("Desk2", cfg)
	_, rotXyz := xyz.Traj.Stats()
	_, rotDesk2 := desk2.Traj.Stats()
	if rotXyz >= rotDesk2 {
		t.Errorf("rotation per frame: Xyz %v >= Desk2 %v", rotXyz, rotDesk2)
	}
}

func TestDepthMatchesRaycastGeometry(t *testing.T) {
	// Depth must be camera-space Z, not ray length: verify against a known
	// flat wall.
	w := &World{
		Objects:    []Object{&Box{Min: v(-10, -10, 5), Max: v(10, 10, 6), Tex: Solid(v(1, 1, 1))}},
		Lights:     defaultLights(),
		Ambient:    0.5,
		Background: v(0, 0, 0),
	}
	intr := camera.NewIntrinsics(32, 24, math.Pi/3)
	cam := camera.Camera{Intr: intr, Pose: vecmath.PoseIdentity()}
	_, depth := w.RenderFrame(cam)
	// Every pixel sees the wall plane at z=5 exactly (camera-space Z).
	for y := 0; y < 24; y += 7 {
		for x := 0; x < 32; x += 9 {
			if d := depth.At(x, y); math.Abs(d-5) > 1e-6 {
				t.Fatalf("depth(%d,%d) = %v, want 5", x, y, d)
			}
		}
	}
}
