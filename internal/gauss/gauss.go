// Package gauss defines the 3D Gaussian primitive and the growable cloud of
// Gaussians the SLAM map is made of. Parameters follow SplaTAM's convention:
// RGB color (no spherical harmonics), logit opacity, log scale and a unit
// quaternion rotation, so all optimizer updates are unconstrained.
package gauss

import (
	"fmt"
	"math"
	"unsafe"

	"ags/internal/vecmath"
)

// Gaussian is one anisotropic 3D Gaussian primitive.
type Gaussian struct {
	Mean     vecmath.Vec3 // world-space center
	LogScale vecmath.Vec3 // per-axis log standard deviation
	Rot      vecmath.Quat // orientation of the principal axes
	Color    vecmath.Vec3 // RGB in [0,1] (stored unclamped, clamped at render)
	Logit    float64      // opacity in logit space; Opacity() = sigmoid(Logit)
}

// SlotBytes is the resident size of one cloud slot (the Gaussian parameters
// plus its active flag) — the unit Compact's reclaimed-bytes accounting uses.
const SlotBytes = int(unsafe.Sizeof(Gaussian{})) + 1

// Opacity returns the Gaussian's opacity in (0,1).
func (g *Gaussian) Opacity() float64 { return Sigmoid(g.Logit) }

// SetOpacity stores o (clamped away from 0 and 1) in logit space.
func (g *Gaussian) SetOpacity(o float64) {
	o = vecmath.Clamp(o, 1e-6, 1-1e-6)
	g.Logit = math.Log(o / (1 - o))
}

// Scale returns the per-axis standard deviations exp(LogScale).
func (g *Gaussian) Scale() vecmath.Vec3 {
	return vecmath.Vec3{
		X: math.Exp(g.LogScale.X),
		Y: math.Exp(g.LogScale.Y),
		Z: math.Exp(g.LogScale.Z),
	}
}

// SetScale stores per-axis standard deviations in log space.
func (g *Gaussian) SetScale(s vecmath.Vec3) {
	g.LogScale = vecmath.Vec3{
		X: math.Log(math.Max(s.X, 1e-9)),
		Y: math.Log(math.Max(s.Y, 1e-9)),
		Z: math.Log(math.Max(s.Z, 1e-9)),
	}
}

// Cov3 returns the world-space 3x3 covariance R S S^T R^T.
func (g *Gaussian) Cov3() vecmath.Mat3 {
	r := g.Rot.Mat3()
	s := g.Scale()
	ss := vecmath.Diag3(vecmath.Vec3{X: s.X * s.X, Y: s.Y * s.Y, Z: s.Z * s.Z})
	return r.Mul(ss).Mul(r.Transpose())
}

// MaxRadius returns a conservative world-space radius (3 sigma of the largest
// axis) used for visibility culling.
func (g *Gaussian) MaxRadius() float64 {
	s := g.Scale()
	return 3 * s.MaxComponent()
}

// Cloud is the growable set of Gaussians representing the scene. IDs are
// positions in the backing slices. Pruning marks a slot inactive without
// moving anything, so recorded contribution tables stay valid frame to frame;
// Compact then re-packs the survivors into a dense prefix and returns the
// old→new ID permutation, through which callers rewrite every retained
// ID-keyed table (contribution counts, skip sets, optimizer moments, render
// traces). Between compactions IDs are stable; across a compaction they are
// stable up to that returned remap, and the survivors' relative order is
// preserved — which is what keeps projection, tile build and blending order
// (and therefore every rendered pixel) bit-identical before and after a
// compaction pass.
type Cloud struct {
	Gaussians []Gaussian
	Active    []bool

	// active counts the true entries of Active, maintained by Add/Prune/
	// Compact so NumActive is O(1) on the per-frame path. Callers that flip
	// Active flags directly (none in-tree) would invalidate it — Validate
	// checks the invariant.
	active int
}

// NewCloud returns an empty cloud with capacity hint n.
func NewCloud(n int) *Cloud {
	return &Cloud{
		Gaussians: make([]Gaussian, 0, n),
		Active:    make([]bool, 0, n),
	}
}

// Len returns the total number of slots (active and inactive).
func (c *Cloud) Len() int { return len(c.Gaussians) }

// NumActive returns the number of active Gaussians (O(1): the count is
// maintained by Add, Prune and Compact).
func (c *Cloud) NumActive() int { return c.active }

// NumInactive returns the number of dead slots awaiting compaction.
func (c *Cloud) NumInactive() int { return len(c.Gaussians) - c.active }

// Add appends a Gaussian and returns its stable ID.
func (c *Cloud) Add(g Gaussian) int {
	c.Gaussians = append(c.Gaussians, g)
	c.Active = append(c.Active, true)
	c.active++
	return len(c.Gaussians) - 1
}

// Prune deactivates the Gaussian with the given ID and reports whether this
// call deactivated it. Pruning an already-inactive (or out-of-range) ID is a
// no-op returning false, so repeated prunes of one ID cannot double-count
// against the active total.
func (c *Cloud) Prune(id int) bool {
	if id < 0 || id >= len(c.Active) || !c.Active[id] {
		return false
	}
	c.Active[id] = false
	c.active--
	return true
}

// Compact re-packs the active Gaussians into a dense prefix, truncating the
// dead tail. It returns the old→new ID permutation and the number of slots
// freed: survivors map to [0, NumActive) preserving their relative order, and
// dropped slots map to unique IDs in [NumActive, Len) (ascending by old ID),
// so retained traces that still mention a dead Gaussian keep a distinct,
// in-range ID after rewriting. freed is the number of slots reclaimed;
// freed*SlotBytes approximates the bytes returned to the allocator's reuse
// pool. A fully-active cloud compacts to itself (remap is the identity).
func (c *Cloud) Compact() (remap []int32, freed int) {
	n := len(c.Gaussians)
	remap = make([]int32, n)
	next := int32(0)
	for id := 0; id < n; id++ {
		if c.Active[id] {
			remap[id] = next
			c.Gaussians[next] = c.Gaussians[id]
			next++
		}
	}
	dead := next
	for id := 0; id < n; id++ {
		if !c.Active[id] {
			remap[id] = dead
			dead++
		}
	}
	freed = n - int(next)
	c.Gaussians = c.Gaussians[:next]
	c.Active = c.Active[:next]
	for i := range c.Active {
		c.Active[i] = true
	}
	c.active = int(next)
	return remap, freed
}

// At returns a pointer to the Gaussian with the given ID.
func (c *Cloud) At(id int) *Gaussian { return &c.Gaussians[id] }

// IsActive reports whether the Gaussian with the given ID is active.
func (c *Cloud) IsActive(id int) bool {
	return id >= 0 && id < len(c.Active) && c.Active[id]
}

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{
		Gaussians: make([]Gaussian, len(c.Gaussians)),
		Active:    make([]bool, len(c.Active)),
		active:    c.active,
	}
	copy(out.Gaussians, c.Gaussians)
	copy(out.Active, c.Active)
	return out
}

// SetAll replaces the cloud's contents (snapshot restore). gaussians and
// active must have equal length; the slices are adopted, not copied.
func (c *Cloud) SetAll(gaussians []Gaussian, active []bool) error {
	if len(gaussians) != len(active) {
		return fmt.Errorf("gauss: %d gaussians vs %d active flags", len(gaussians), len(active))
	}
	c.Gaussians = gaussians
	c.Active = active
	c.active = 0
	for _, a := range active {
		if a {
			c.active++
		}
	}
	return nil
}

// Validate checks structural invariants; it is used by tests and by the
// pipeline's debug mode.
func (c *Cloud) Validate() error {
	if len(c.Gaussians) != len(c.Active) {
		return fmt.Errorf("gauss: %d gaussians vs %d active flags", len(c.Gaussians), len(c.Active))
	}
	n := 0
	for _, a := range c.Active {
		if a {
			n++
		}
	}
	if n != c.active {
		return fmt.Errorf("gauss: active counter %d vs %d true flags", c.active, n)
	}
	for i := range c.Gaussians {
		g := &c.Gaussians[i]
		if !g.Mean.IsFinite() || !g.LogScale.IsFinite() || !g.Color.IsFinite() {
			return fmt.Errorf("gauss: non-finite parameters at id %d", i)
		}
		if math.IsNaN(g.Logit) || math.IsInf(g.Logit, 0) {
			return fmt.Errorf("gauss: non-finite logit at id %d", i)
		}
		if n := g.Rot.Norm(); math.Abs(n-1) > 1e-3 {
			return fmt.Errorf("gauss: rotation norm %g at id %d", n, i)
		}
	}
	return nil
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// SigmoidGrad returns d(sigmoid)/dx expressed via the output value s.
func SigmoidGrad(s float64) float64 { return s * (1 - s) }
