package splat

import (
	"math/rand"
	"testing"
)

// TestRenderInvariantUnderCompaction: rendering a sparse cloud (dead slots
// interleaved) and rendering its compacted clone must produce bit-identical
// images — survivors keep their relative order, so projection, tile build,
// depth sort and blending see the same splat sequence. This is the renderer
// half of the map-compaction bit-transparency contract (the dense fast path
// in preprocessInto must not change output, only skip dead-slot branching).
func TestRenderInvariantUnderCompaction(t *testing.T) {
	cam := testCam(48, 36)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		cloud := randomCloud(rng, 40+rng.Intn(40))
		for id := 0; id < cloud.Len(); id++ {
			if rng.Float64() < 0.3 {
				cloud.Prune(id)
			}
		}
		compacted := cloud.Clone()
		if _, freed := compacted.Compact(); freed == 0 {
			continue // all-active draw; nothing to compare
		}
		sparse := Render(cloud, cam, Options{Workers: 2})
		dense := Render(compacted, cam, Options{Workers: 2})
		if len(sparse.Color.Pix) != len(dense.Color.Pix) {
			t.Fatalf("trial %d: pixel count %d vs %d", trial, len(sparse.Color.Pix), len(dense.Color.Pix))
		}
		for i := range sparse.Color.Pix {
			if sparse.Color.Pix[i] != dense.Color.Pix[i] {
				t.Fatalf("trial %d: pixel %d differs: %v vs %v",
					trial, i, sparse.Color.Pix[i], dense.Color.Pix[i])
			}
		}
		for i := range sparse.Depth.D {
			if sparse.Depth.D[i] != dense.Depth.D[i] {
				t.Fatalf("trial %d: depth %d differs", trial, i)
			}
		}
		if len(sparse.Splats) != len(dense.Splats) {
			t.Fatalf("trial %d: %d vs %d splats survived projection",
				trial, len(sparse.Splats), len(dense.Splats))
		}
	}
}
