// Grid bench: distribute the bench warm phase over a 2-worker loopback grid
// and prove the distribution invisible: the experiment text rendered from a
// distributed warm is asserted byte-identical to a local -jobs run, every
// remote result is digest-verified, and a worker killed uncleanly mid-sweep
// (listener and connections torn down while its job's reply is in flight)
// only costs a retry on the survivor — same bytes, one eviction.
//
// Phase 1 runs table1 locally and on the grid and diffs the rendered text.
// Phase 2 re-runs the sweep serially against a fresh pair of workers, one of
// which is scheduled (fleet/chaos, write-indexed) to die mid job reply; the
// batch must complete via the scheduler's retry-on-node-loss re-placement and
// render, again, the identical bytes.
//
//	go run -race ./examples/grid_bench
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"ags/internal/bench"
	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/grid"
)

func benchCfg() bench.Config {
	return bench.Config{
		Width: 48, Height: 36, Frames: 8,
		TrackIters: 12, IterT: 4, MapIters: 6,
		DensifyStride: 2, Seed: 1,
	}
}

// startWorkers boots n worker nodes behind fault injectors and returns their
// addresses and injectors. killAt, if positive, arms the LAST worker to die
// uncleanly at its killAt-th wire write.
func startWorkers(n, killAt int) (addrs []string, injs []*chaos.Injector, close func()) {
	var nodes []*fleet.Node
	for i := 0; i < n; i++ {
		ccfg := chaos.Config{Seed: 0x62D1 + uint64(i)}
		if killAt > 0 && i == n-1 {
			ccfg.KillAtWrite = killAt
		}
		in := chaos.New(ccfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		node := fleet.NewNode(fleet.NodeConfig{
			Name: fmt.Sprintf("worker-%c", 'a'+i),
			Jobs: grid.NewWorker(),
		})
		addr, err := node.StartOn(in.Listen(ln))
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, addr)
		injs = append(injs, in)
		nodes = append(nodes, node)
	}
	return addrs, injs, func() {
		for i, node := range nodes {
			if !injs[i].Killed() {
				node.Close()
			}
		}
	}
}

func main() {
	exps := []bench.Experiment{mustFind("table1")}

	// 1. The local reference: a plain -jobs 2 batch.
	var local bytes.Buffer
	if _, err := bench.RunBatch(bench.NewSuite(benchCfg()), exps, 2, &local); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local batch rendered %d bytes\n", local.Len())

	// 2. The same batch, warm phase distributed over two workers.
	addrs, _, closeWorkers := startWorkers(2, 0)
	sch, err := grid.New(grid.Config{Workers: addrs, Window: 1, SampleEvery: 2})
	if err != nil {
		log.Fatal(err)
	}
	var dist bytes.Buffer
	rep, err := bench.RunBatchWith(bench.NewSuite(benchCfg()), exps, sch.Capacity(), sch, &dist)
	if err != nil {
		log.Fatal(err)
	}
	m := sch.Metrics()
	sch.Close()
	closeWorkers()

	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		log.Fatalf("FAIL: distributed warm diverged from local output\n--- local\n%s--- grid\n%s", &local, &dist)
	}
	fmt.Printf("grid batch (2 workers) byte-identical to local: %d bytes, %.1f KB over wire, %d/%d results replay-verified\n",
		dist.Len(), float64(m.WireBytes)/1024, m.Verified, m.Jobs)
	for _, pw := range m.PerWorker {
		if pw.Jobs < 1 {
			log.Fatalf("FAIL: worker %s ran no job; the sweep must spread", pw.Name)
		}
		fmt.Printf("  %s ran %d job(s)\n", pw.Name, pw.Jobs)
	}
	for _, r := range rep.Runs {
		fmt.Printf("  %-16s on %-9s %6.0f ms  %5.1f KB\n", r.ID, r.Worker, r.WallMS, float64(r.WireBytes)/1024)
	}

	// 3. Kill a worker mid-sweep: worker-b's 2nd wire write is its first job
	// reply (write 1 answered the dial's stats probe), so it dies with a
	// half-written result frame on the wire. Serial dispatch makes placement
	// deterministic: the batch must finish on worker-a via retry.
	addrs, _, closeWorkers = startWorkers(2, 2)
	sch, err = grid.New(grid.Config{Workers: addrs, Window: 1, SampleEvery: 2})
	if err != nil {
		log.Fatal(err)
	}
	var chaosOut bytes.Buffer
	if _, err := bench.RunBatchWith(bench.NewSuite(benchCfg()), exps, 1, sch, &chaosOut); err != nil {
		log.Fatalf("FAIL: sweep did not survive the worker kill: %v", err)
	}
	m = sch.Metrics()
	sch.Close()
	closeWorkers()

	if !bytes.Equal(local.Bytes(), chaosOut.Bytes()) {
		log.Fatal("FAIL: post-kill output diverged from local run")
	}
	if m.Retries < 1 || m.Evictions != 1 {
		log.Fatalf("FAIL: kill sweep metrics %+v, want >=1 retry and exactly 1 eviction", m)
	}
	fmt.Printf("kill mid-sweep: worker died mid job reply, %d retry(ies), %d eviction, output still byte-identical\n",
		m.Retries, m.Evictions)
	fmt.Println("ok: distributed and fault-injected warms render the same bytes as local execution")
}

func mustFind(id string) bench.Experiment {
	e, err := bench.Find(id)
	if err != nil {
		log.Fatal(err)
	}
	return e
}
