package platform

import (
	"ags/internal/hw/dram"
	"ags/internal/hw/engines"
	"ags/internal/hw/gpe"
	"ags/internal/hw/trace"
)

// AGS is the accelerator model (Fig. 10): FC detection engine, pose tracking
// engine (systolic array + light GS array) and mapping engine (GS array +
// logging/skipping tables), with tracking/mapping overlap (Fig. 9).
type AGS struct {
	Variant string
	// Compute resources (§6.1: AGS-Edge 16x(4x4) GPEs + 2x(32x32) systolic;
	// AGS-Server 32x(4x4) + 4x(32x32)).
	MapArrays   int
	LightArrays int
	SystolicPEs int // total systolic multipliers
	FreqMHz     float64
	Mem         dram.Spec
	Tables      engines.TableParams
	Scheduled   bool // GPE scheduler (Fig. 13) enabled
	Pipelined   bool // overlap tracking(t+1) with mapping(t)
	GPEParams   gpe.Params
	// PerIterOverheadCycles charges pipeline drain/refill, buffer loads and
	// engine control per training iteration.
	PerIterOverheadCycles int64
	DynEnergyPJop         float64 // dynamic energy per flop-equivalent
	DRAMEnergyPJB         float64 // DRAM energy per byte
	// SystemPowerW is the always-on accelerator + DRAM subsystem power used
	// for the energy model (calibration constant, see EXPERIMENTS.md).
	SystemPowerW float64
}

// AGSEdge returns the edge variant (LPDDR4, 16 mapping arrays).
func AGSEdge() *AGS {
	return &AGS{
		Variant:               "AGS-Edge",
		MapArrays:             16,
		LightArrays:           8,
		SystolicPEs:           2 * 32 * 32,
		FreqMHz:               500,
		Mem:                   dram.LPDDR4(),
		Tables:                engines.DefaultTableParams(false),
		Scheduled:             true,
		Pipelined:             true,
		GPEParams:             gpe.DefaultParams(16),
		PerIterOverheadCycles: 5000,
		DynEnergyPJop:         1.2,
		DRAMEnergyPJB:         40,
		SystemPowerW:          7,
	}
}

// AGSServer returns the server variant (HBM2, 32 mapping arrays).
func AGSServer() *AGS {
	return &AGS{
		Variant:               "AGS-Server",
		MapArrays:             32,
		LightArrays:           16,
		SystolicPEs:           4 * 32 * 32,
		FreqMHz:               500,
		Mem:                   dram.HBM2(),
		Tables:                engines.DefaultTableParams(true),
		Scheduled:             true,
		Pipelined:             true,
		GPEParams:             gpe.DefaultParams(32),
		PerIterOverheadCycles: 5000,
		DynEnergyPJop:         1.2,
		DRAMEnergyPJB:         15,
		SystemPowerW:          19,
	}
}

// WithScheduler returns a copy with the GPE scheduler toggled (ablation).
func (a *AGS) WithScheduler(on bool) *AGS {
	cp := *a
	cp.Scheduled = on
	if !on {
		cp.Variant += "-nosched"
	}
	return &cp
}

// WithPipelining returns a copy with tracking/mapping overlap toggled.
func (a *AGS) WithPipelining(on bool) *AGS {
	cp := *a
	cp.Pipelined = on
	if !on {
		cp.Variant += "-serial"
	}
	return &cp
}

// Name implements Platform.
func (a *AGS) Name() string { return a.Variant }

// cyclesToNs converts accelerator cycles to nanoseconds.
func (a *AGS) cyclesToNs(c int64) float64 { return float64(c) * 1e3 / a.FreqMHz }

// gsTaskNs returns the time of one splatting task on a GS array of the given
// width, replaying the representative per-pixel workload and scaling by the
// iteration count.
func (a *AGS) gsTaskNs(s *trace.RenderStats, arrays int) (float64, int64) {
	if s.Iters == 0 {
		return 0, 0
	}
	p := a.GPEParams
	p.Arrays = arrays
	var renderCycles int64
	if s.RepPerPixelAlpha != nil && s.RepPerPixelBlend != nil {
		per := gpe.FrameCycles(s.RepPerPixelAlpha, s.RepPerPixelBlend, s.Width, s.Height, p, a.Scheduled)
		renderCycles = per * int64(s.Iters)
	} else {
		// Fallback: throughput bound from aggregate counts.
		work := s.AlphaOps*int64(p.AlphaCycles) + s.BlendOps*int64(p.BlendCycles)
		renderCycles = work / int64(arrays*16)
	}
	// Backward pass: replays blending with gradient math; model as 2x the
	// blend-bound render time on the same arrays.
	backCycles := renderCycles * 2
	// Preprocess (projection units) and sorting (merge network) are
	// pipelined with rendering; charge their throughput bound.
	prepCycles := s.Splats * 2 / int64(arrays)
	sortCycles := s.TileEntries / int64(arrays)
	compute := renderCycles + backCycles + prepCycles + sortCycles +
		int64(s.Iters)*a.PerIterOverheadCycles
	// Memory: Gaussian features + target pixels per iteration.
	bytes := splatBytes(s)
	memNs := dram.StreamNs(a.Mem, bytes)
	ns := a.cyclesToNs(compute)
	if memNs > ns {
		ns = memNs
	}
	return ns, bytes
}

// Frame implements Platform.
func (a *AGS) Frame(f *trace.FrameTrace) Breakdown {
	var b Breakdown

	// FC detection engine: the CODEC computes SAD values anyway; the engine
	// only accumulates per-MB minima (8 adders + 2 comparators, Table 3).
	// Charge one cycle per 8 SAD values plus the DRAM read of the minima.
	fcCycles := f.CodecSADOps / (64 * 8) // one min-SAD per 64-pixel block, 8 adders
	b.CodecNs = a.cyclesToNs(fcCycles)

	// Pose tracking engine: systolic array for the backbone...
	coarseCycles := f.CoarseMACs / int64(a.SystolicPEs)
	b.CoarseNs = a.cyclesToNs(coarseCycles)
	// ...plus the light GS array for refinement iterations.
	trackNs, trackBytes := a.gsTaskNs(&f.Track, a.LightArrays)
	b.TrackNs = trackNs
	b.Bytes += trackBytes

	// Mapping engine.
	mapNs, mapBytes := a.gsTaskNs(&f.Map, a.MapArrays)
	if f.IsKeyFrame && f.LoggingIDs != nil {
		lg := engines.SimulateLogging(f.LoggingIDs, a.Tables, a.Mem)
		mapNs += lg.OptNs
		b.Bytes += lg.OptAccesses * int64(a.Tables.EntryBytes)
	} else if !f.IsKeyFrame && f.Map.RepTileLists != nil {
		sk := engines.SimulateSkipping(f.Map.RepTileLists, f.NumGaussians, a.Tables, a.Mem)
		mapNs += sk.OptNs
		b.Bytes += sk.StreamBytes
	}
	b.MapNs = mapNs
	b.Bytes += mapBytes

	trackSide := b.CodecNs + b.CoarseNs + b.TrackNs
	if a.Pipelined {
		// Fig. 9: the next frame's FC detection + tracking overlaps this
		// frame's mapping on independent engines.
		if trackSide > b.MapNs {
			b.TotalNs = trackSide
		} else {
			b.TotalNs = b.MapNs
		}
	} else {
		b.TotalNs = trackSide + b.MapNs
	}

	// Energy: dynamic ops + DRAM + static.
	ops := splatFlops(&f.Track) + splatFlops(&f.Map) + float64(f.CoarseMACs)*flopsMAC
	b.EnergyJ = ops*a.DynEnergyPJop*1e-12 +
		float64(b.Bytes)*a.DRAMEnergyPJB*1e-12 +
		a.SystemPowerW*b.TotalNs*1e-9
	return b
}
