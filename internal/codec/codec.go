// Package codec models the motion-estimation (ME) stage of a hardware video
// CODEC (paper §2.3): the current frame is divided into macro-blocks (MBs),
// each matched against a search window in the previous frame by minimizing
// the Sum of Absolute Differences (SAD). AGS repurposes the per-MB minimum
// SADs — accumulated over the frame — as a frame-covisibility metric, so this
// package exposes exactly that intermediate data, plus the motion vectors a
// real encoder would use, and the operation counts the hardware model charges.
//
// Concurrency: a hardware ME block processes many macro-blocks in parallel;
// Config.Workers models that by fanning macro-block rows across a goroutine
// pool. Each block's search is self-contained, rows write disjoint result
// ranges, and per-row operation counters are reduced in row order, so the
// parallel path is byte-identical to the serial one (Workers <= 1).
// Config.EarlyTerm adds the standard encoder early-termination trick: a
// candidate's SAD accumulation aborts once the partial sum exceeds the
// block's current best. Early termination never changes MinSAD or MV — only
// candidates that could not win are cut short — it only lowers SADOps.
package codec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ags/internal/frame"
)

// Config selects the ME parameters.
type Config struct {
	// BlockSize is the macro-block edge in pixels (paper example: 8x8).
	BlockSize int
	// SearchRange is the half-width of the search window in pixels.
	SearchRange int
	// ThreeStep selects the logarithmic three-step search a real-time
	// encoder uses instead of exhaustive full search.
	ThreeStep bool
	// Workers bounds the goroutine pool macro-block rows are fanned across.
	// 0 or 1 keeps the serial path; results are identical either way.
	Workers int
	// EarlyTerm aborts a candidate's SAD accumulation once the partial sum
	// exceeds the block's current best, as hardware encoders do. MinSAD and
	// MV are unchanged; only SADOps drops.
	EarlyTerm bool
}

// DefaultConfig matches the paper's description: 8x8 macro-blocks with a
// hardware-typical +-8 pixel three-step search, serial and without early
// termination so operation counts stay at their analytic worst case.
func DefaultConfig() Config {
	return Config{BlockSize: 8, SearchRange: 8, ThreeStep: true}
}

// MotionVector is the displacement of one macro-block between frames.
type MotionVector struct{ DX, DY int }

// Result holds the ME outputs for one frame pair.
type Result struct {
	Cfg      Config
	MBW, MBH int            // macro-block grid size (includes partial edge blocks)
	MinSAD   []uint32       // per-MB minimum SAD (the AGS covisibility input)
	MV       []MotionVector // per-MB best displacement
	// Pixels is the total pixel count covered by the macro-block grid. Edge
	// blocks are clamped to the frame, so this always equals W*H.
	Pixels int64
	// SADOps counts absolute-difference operations performed — the work the
	// CODEC IP does anyway for compression, which AGS gets for free.
	SADOps int64
}

// SumMinSAD returns the accumulated minimum SAD over all macro-blocks
// (Σ_i SAD_min^i in §4.1). Larger means less covisibility.
func (r *Result) SumMinSAD() uint64 {
	var s uint64
	for _, v := range r.MinSAD {
		s += uint64(v)
	}
	return s
}

// MaxPossibleSAD returns the worst-case accumulated SAD (every pixel differs
// by the full 8-bit range), used to normalize covisibility to [0,1]. Partial
// edge blocks contribute only the pixels they actually cover.
func (r *Result) MaxPossibleSAD() uint64 {
	return uint64(r.Pixels) * 255
}

// MotionEstimate runs ME of cur against prev (the reference frame).
// Both images must have identical dimensions. Frames whose size is not a
// multiple of BlockSize get clamped partial blocks along the right/bottom
// edges, so every pixel participates in the covisibility metric.
func MotionEstimate(prev, cur *frame.Image, cfg Config) (*Result, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("codec: frame size mismatch %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	if cfg.BlockSize <= 0 || cfg.SearchRange < 0 {
		return nil, fmt.Errorf("codec: invalid config %+v", cfg)
	}
	pl := prev.Luma8()
	cl := cur.Luma8()
	w, h := cur.W, cur.H
	bs := cfg.BlockSize
	if w < bs || h < bs {
		return nil, fmt.Errorf("codec: image %dx%d smaller than block %d", w, h, bs)
	}
	mbw := (w + bs - 1) / bs
	mbh := (h + bs - 1) / bs
	res := &Result{
		Cfg: cfg, MBW: mbw, MBH: mbh,
		MinSAD: make([]uint32, mbw*mbh),
		MV:     make([]MotionVector, mbw*mbh),
		Pixels: int64(w) * int64(h),
	}

	workers := cfg.Workers
	if workers > mbh {
		workers = mbh
	}
	if workers <= 1 {
		st := newBlockSearch(cl, pl, w, h, cfg)
		for by := 0; by < mbh; by++ {
			res.SADOps += meRow(res, st, by)
		}
		return res, nil
	}

	// Rows are handed out by an atomic ticket; each row writes a disjoint
	// slice of MinSAD/MV plus its own op count, reduced in row order below so
	// the total matches the serial sum exactly.
	rowOps := make([]int64, mbh)
	var next int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newBlockSearch(cl, pl, w, h, cfg)
			for {
				by := int(atomic.AddInt64(&next, 1)) - 1
				if by >= mbh {
					return
				}
				rowOps[by] = meRow(res, st, by)
			}
		}()
	}
	wg.Wait()
	for _, o := range rowOps {
		res.SADOps += o
	}
	return res, nil
}

// meRow searches every macro-block of row by and returns the SAD ops charged.
func meRow(res *Result, st *blockSearch, by int) int64 {
	bs := res.Cfg.BlockSize
	var ops int64
	st.ops = &ops
	for bx := 0; bx < res.MBW; bx++ {
		st.x0, st.y0 = bx*bs, by*bs
		st.bw = min(bs, st.w-st.x0)
		st.bh = min(bs, st.h-st.y0)
		var best uint32
		var bestMV MotionVector
		if res.Cfg.ThreeStep {
			best, bestMV = st.threeStep()
		} else {
			best, bestMV = st.fullSearch()
		}
		res.MinSAD[by*res.MBW+bx] = best
		res.MV[by*res.MBW+bx] = bestMV
	}
	return ops
}

// blockSearch carries the per-goroutine search state: the frame pair, the
// current block geometry, and the probe-dedup scratch reused across blocks.
type blockSearch struct {
	cur, ref       []uint8
	w, h           int
	sr             int
	earlyTerm      bool
	x0, y0, bw, bh int
	ops            *int64
	// seen marks (dx,dy) candidates already probed for the current block
	// (generation-stamped so it resets in O(1) per block). The three-step
	// passes overlap — the unit ring can coincide with the coarse ring and
	// the fast-path refinement revisits the origin's neighborhood — and a
	// real encoder IP computes each candidate once, so the op accounting
	// must too.
	seen []uint32
	gen  uint32
}

func newBlockSearch(cur, ref []uint8, w, h int, cfg Config) *blockSearch {
	side := 2*cfg.SearchRange + 1
	return &blockSearch{
		cur: cur, ref: ref, w: w, h: h,
		sr:        cfg.SearchRange,
		earlyTerm: cfg.EarlyTerm,
		seen:      make([]uint32, side*side),
	}
}

// sad computes the SAD between the current block and the reference block
// displaced by (dx,dy). Out-of-frame reference pixels are clamped to the
// border (encoder padding behavior). When early termination is enabled the
// row scan aborts once the accumulator exceeds cutoff — a candidate that can
// no longer win — and only the pixels actually visited are charged.
func (st *blockSearch) sad(dx, dy int, cutoff uint32) uint32 {
	var acc uint32
	var visited int64
	for y := 0; y < st.bh; y++ {
		cy := st.y0 + y
		ry := min(max(cy+dy, 0), st.h-1)
		rowC := cy * st.w
		rowR := ry * st.w
		for x := 0; x < st.bw; x++ {
			cx := st.x0 + x
			rx := min(max(cx+dx, 0), st.w-1)
			c := int32(st.cur[rowC+cx])
			r := int32(st.ref[rowR+rx])
			d := c - r
			if d < 0 {
				d = -d
			}
			acc += uint32(d)
		}
		visited += int64(st.bw)
		if acc > cutoff {
			break
		}
	}
	*st.ops += visited
	return acc
}

// cutoff returns the early-termination bound for the current best. Aborting
// only when the partial sum strictly exceeds best lets exact ties finish, so
// the tie-breaking (and therefore MV selection) matches the exhaustive path.
func (st *blockSearch) cutoff(best uint32) uint32 {
	if st.earlyTerm {
		return best
	}
	return ^uint32(0)
}

func (st *blockSearch) fullSearch() (uint32, MotionVector) {
	best := ^uint32(0)
	var mv MotionVector
	for dy := -st.sr; dy <= st.sr; dy++ {
		for dx := -st.sr; dx <= st.sr; dx++ {
			s := st.sad(dx, dy, st.cutoff(best))
			if s < best || (s == best && absInt(dx)+absInt(dy) < absInt(mv.DX)+absInt(mv.DY)) {
				best = s
				mv = MotionVector{dx, dy}
			}
		}
	}
	return best, mv
}

// probe evaluates candidate (dx,dy) unless this block already scanned it;
// repeats report fresh=false and charge nothing.
func (st *blockSearch) probe(dx, dy int, cutoff uint32) (s uint32, fresh bool) {
	side := 2*st.sr + 1
	idx := (dy+st.sr)*side + (dx + st.sr)
	if st.seen[idx] == st.gen {
		return 0, false
	}
	st.seen[idx] = st.gen
	return st.sad(dx, dy, cutoff), true
}

// threeStep is the New Three-Step Search (NTSS) used by real-time encoders:
// the classical logarithmic pattern, plus a unit-ring probe around the origin
// in the first pass. Streaming video — and SLAM capture in particular — is
// dominated by small motions, where plain TSS's large first step can jump
// into a false SAD basin; NTSS short-circuits to a fine search when the best
// first-pass candidate is adjacent to the origin. Candidates shared between
// passes (the unit ring when the coarse step reaches 1, the fast-path
// refinement around an origin neighbor) are probed and charged exactly once.
func (st *blockSearch) threeStep() (uint32, MotionVector) {
	st.gen++
	cx, cy := 0, 0
	best, _ := st.probe(0, 0, ^uint32(0))

	scanRing := func(centerX, centerY, step int) (int, int, bool) {
		bx, by := centerX, centerY
		improved := false
		for dy := -step; dy <= step; dy += step {
			for dx := -step; dx <= step; dx += step {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := centerX+dx, centerY+dy
				if absInt(nx) > st.sr || absInt(ny) > st.sr {
					continue
				}
				s, fresh := st.probe(nx, ny, st.cutoff(best))
				if fresh && s < best {
					best = s
					bx, by = nx, ny
					improved = true
				}
			}
		}
		return bx, by, improved
	}

	step := 1
	for step*2 <= st.sr {
		step *= 2
	}
	// First pass: coarse ring and unit ring around the origin.
	coarseX, coarseY, _ := scanRing(0, 0, step)
	fineX, fineY, fineImproved := scanRing(0, 0, 1)
	if fineImproved {
		// The unit ring beat every coarse candidate: small-motion fast path,
		// refine once more around the unit-ring winner and stop.
		cx, cy, _ = scanRing(fineX, fineY, 1)
		return best, MotionVector{cx, cy}
	}
	cx, cy = coarseX, coarseY
	step /= 2
	for step >= 1 {
		cx, cy, _ = scanRing(cx, cy, step)
		step /= 2
	}
	return best, MotionVector{cx, cy}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
