package slam

import (
	"sync"
	"testing"
)

// TestDefaultServerConcurrentInit hammers the lazily-initialized package
// server from many goroutines at once: every caller must observe the same
// fully-constructed instance (the sync.Once contract), and under -race this
// doubles as the audit that the lazy init publishes safely.
func TestDefaultServerConcurrentInit(t *testing.T) {
	const callers = 32
	servers := make([]*Server, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			servers[i] = DefaultServer()
		}(i)
	}
	wg.Wait()
	for i, s := range servers {
		if s == nil {
			t.Fatalf("caller %d got nil server", i)
		}
		if s != servers[0] {
			t.Fatalf("caller %d got a different server instance", i)
		}
		if s.ContextPool() == nil {
			t.Fatalf("caller %d observed a partially constructed server (nil pool)", i)
		}
	}
}

// TestSessionDroppedConcurrentAccess polls Dropped and drains Results while
// the session worker is streaming updates, then checks the final count is
// consistent with what the consumer actually received. Dropped is an atomic
// counter written by the worker goroutine and read from the producer side;
// under -race this test is the audit that the counter and the session
// lifecycle around it are race-free.
func TestSessionDroppedConcurrentAccess(t *testing.T) {
	seq := testSeq(t, "Desk", 6)
	srv := NewServer(ServerConfig{})
	sess, err := srv.Open("race-dropped", fastAGS(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}

	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sess.Results() {
			received++
			sess.Dropped() // interleave reads with the worker's writes
		}
	}()

	for _, f := range seq.Frames {
		if err := sess.Push(f); err != nil {
			t.Fatal(err)
		}
		sess.Dropped() // producer-side read concurrent with the worker
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	dropped := int(sess.Dropped())
	if received+dropped != len(seq.Frames) {
		t.Fatalf("received %d + dropped %d != %d frames", received, dropped, len(seq.Frames))
	}
}
