package vecmath

import "math"

// Quat is a unit quaternion (W + Xi + Yj + Zk) representing a 3D rotation.
type Quat struct{ W, X, Y, Z float64 }

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle returns the rotation of angle radians about axis.
// The axis need not be normalized; a zero axis yields the identity.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	n := axis.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	s := math.Sin(angle/2) / n
	return Quat{W: math.Cos(angle / 2), X: axis.X * s, Y: axis.Y * s, Z: axis.Z * s}
}

// Mul returns the Hamilton product q * p (apply p first, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion's length.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit length; a zero quaternion becomes the
// identity.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = v + 2*qv x (qv x v + w*v)
	qv := Vec3{q.X, q.Y, q.Z}
	t := qv.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(qv.Cross(t))
}

// Mat3 returns the rotation matrix equivalent to q.
func (q Quat) Mat3() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// QuatFromMat3 converts a rotation matrix to a unit quaternion using
// Shepperd's method.
func QuatFromMat3(m Mat3) Quat {
	tr := m[0] + m[4] + m[8]
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{W: s / 4, X: (m[7] - m[5]) / s, Y: (m[2] - m[6]) / s, Z: (m[3] - m[1]) / s}
	case m[0] > m[4] && m[0] > m[8]:
		s := math.Sqrt(1+m[0]-m[4]-m[8]) * 2
		q = Quat{W: (m[7] - m[5]) / s, X: s / 4, Y: (m[1] + m[3]) / s, Z: (m[2] + m[6]) / s}
	case m[4] > m[8]:
		s := math.Sqrt(1+m[4]-m[0]-m[8]) * 2
		q = Quat{W: (m[2] - m[6]) / s, X: (m[1] + m[3]) / s, Y: s / 4, Z: (m[5] + m[7]) / s}
	default:
		s := math.Sqrt(1+m[8]-m[0]-m[4]) * 2
		q = Quat{W: (m[3] - m[1]) / s, X: (m[2] + m[6]) / s, Y: (m[5] + m[7]) / s, Z: s / 4}
	}
	return q.Normalized()
}

// Slerp spherically interpolates from q (t=0) to p (t=1).
func (q Quat) Slerp(p Quat, t float64) Quat {
	dot := q.W*p.W + q.X*p.X + q.Y*p.Y + q.Z*p.Z
	if dot < 0 {
		p = Quat{-p.W, -p.X, -p.Y, -p.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: linear interpolation avoids division by ~0.
		return Quat{
			q.W + t*(p.W-q.W),
			q.X + t*(p.X-q.X),
			q.Y + t*(p.Y-q.Y),
			q.Z + t*(p.Z-q.Z),
		}.Normalized()
	}
	theta := math.Acos(dot)
	s := math.Sin(theta)
	a := math.Sin((1-t)*theta) / s
	b := math.Sin(t*theta) / s
	return Quat{
		a*q.W + b*p.W,
		a*q.X + b*p.X,
		a*q.Y + b*p.Y,
		a*q.Z + b*p.Z,
	}.Normalized()
}

// AngleTo returns the absolute rotation angle in radians between q and p.
func (q Quat) AngleTo(p Quat) float64 {
	d := q.Conj().Mul(p).Normalized()
	w := clamp(math.Abs(d.W), -1, 1)
	return 2 * math.Acos(w)
}
