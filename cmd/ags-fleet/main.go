// Command ags-fleet runs the distributed serving layer: a node (one
// slam.Server behind a TCP listener) or a router driving live streams across
// a fleet of nodes, with placement, admission control and mid-stream
// migration. Every node also answers grid job frames (digest-verified bench
// executions shipped by ags-bench -grid; see internal/grid).
//
// Usage:
//
//	ags-fleet serve -name node-a -addr 127.0.0.1:7701
//	ags-fleet serve -name node-b -addr 127.0.0.1:7702 -max-sessions 4
//	ags-fleet serve -name node-c -addr 127.0.0.1:7703 -chaos-seed 42 -chaos-kill-after 100
//	        # fault-injected node: dies uncleanly (listener + every conn) at
//	        # its 100th wire write, truncation offsets seeded by 42
//
//	ags-fleet route -nodes 127.0.0.1:7701,127.0.0.1:7702 -seq Desk,Xyz
//	ags-fleet route -nodes ... -seq Desk,Xyz -drain-at 12   # drain the first
//	        stream's node after 12 frames; its sessions migrate mid-stream
//	ags-fleet route -nodes ... -seq Desk,Xyz -checkpoint-every 4
//	        # checkpoint-replay recovery: snapshot each stream every 4 acked
//	        # frames; if its node dies the stream re-places, restores the
//	        # checkpoint and replays the buffered tail — same digest
//
//	ags-fleet stats -nodes 127.0.0.1:7701,127.0.0.1:7702
//	ags-fleet drain -nodes 127.0.0.1:7701 -node node-a
//
// Route verifies every stream against a local sequential run of the same
// sequence: the fleet's Result digests must be bit-identical, migrations
// included (disable with -verify=false to skip the local reference runs).
// With -checkpoint-every the same bit-identity holds across unclean node
// death mid-stream.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/grid"
	"ags/internal/scene"
	"ags/internal/slam"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "route":
		err = routeCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	case "drain":
		err = drainCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ags-fleet: unknown mode %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ags-fleet <serve|route|stats|drain> [flags]  (ags-fleet <mode> -h for mode flags)")
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		name        = fs.String("name", "node", "node name (its fleet-wide identity and placement key)")
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		maxSessions = fs.Int("max-sessions", 0, "admission cap on concurrent streams (0 = unlimited)")
		maxResident = fs.Int64("max-resident-bytes", 0, "reject new streams once the context pool holds this many resident bytes (0 = unlimited)")
		poolCap     = fs.Int("pool", 0, "render-context pool capacity (0 = 2 x GOMAXPROCS)")
		queueDepth  = fs.Int("queue", 0, "per-session frame queue depth (0 = default)")
		chaosSeed   = fs.Uint64("chaos-seed", 0, "fault-injection PRNG seed for mid-frame truncation offsets (0 = no injector unless -chaos-kill-after is set)")
		chaosKill   = fs.Int("chaos-kill-after", 0, "kill this node uncleanly — listener and every connection — at its Nth wire write (0 = never)")
	)
	fs.Parse(args)

	n := fleet.NewNode(fleet.NodeConfig{
		Name:             *name,
		Server:           slam.ServerConfig{ContextCapacity: *poolCap, QueueDepth: *queueDepth},
		MaxSessions:      *maxSessions,
		MaxResidentBytes: *maxResident,
		Jobs:             grid.NewWorker(),
	})
	var bound string
	var err error
	if *chaosSeed != 0 || *chaosKill > 0 {
		ln, lerr := net.Listen("tcp", *addr)
		if lerr != nil {
			return lerr
		}
		in := chaos.New(chaos.Config{Seed: *chaosSeed, KillAtWrite: *chaosKill})
		bound, err = n.StartOn(in.Listen(ln))
		if err == nil {
			fmt.Printf("fault injector armed: seed %d, kill at write %d\n", *chaosSeed, *chaosKill)
		}
	} else {
		bound, err = n.Start(*addr)
	}
	if err != nil {
		return err
	}
	fmt.Printf("node %q serving on %s (max-sessions %d, max-resident %d B)\n",
		*name, bound, *maxSessions, *maxResident)
	select {} // serve until killed
}

// dialRouter builds a router over the given comma-separated node addresses.
func dialRouter(nodes string) (*fleet.Router, error) {
	addrs := strings.Split(nodes, ",")
	r := fleet.NewRouter()
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if err := r.AddNode(a); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

func routeCmd(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	var (
		nodes   = fs.String("nodes", "", "comma-separated node addresses (required)")
		seqs    = fs.String("seq", "Desk,Xyz", "comma-separated sequence names, one stream each")
		width   = fs.Int("w", 64, "frame width")
		height  = fs.Int("h", 48, "frame height")
		frames  = fs.Int("frames", 24, "frames per sequence")
		algo    = fs.String("algo", "ags", "baseline | ags | mat | gcm")
		drainAt = fs.Int("drain-at", 0, "after this many frames, drain the node serving the first stream (0 = never)")
		ckEvery = fs.Int("checkpoint-every", 0, "checkpoint-replay recovery: snapshot each stream every N acked frames and survive node death (0 = recovery off)")
		verify  = fs.Bool("verify", true, "run each sequence locally too and assert the fleet digests match")
	)
	fs.Parse(args)
	if *nodes == "" {
		return fmt.Errorf("ags-fleet route: -nodes is required")
	}

	cfg := slam.DefaultConfig(*width, *height)
	switch *algo {
	case "baseline":
	case "ags":
		cfg.EnableMAT, cfg.EnableGCM = true, true
	case "mat":
		cfg.EnableMAT = true
	case "gcm":
		cfg.EnableGCM = true
	default:
		return fmt.Errorf("ags-fleet route: unknown algorithm %q", *algo)
	}

	names := strings.Split(*seqs, ",")
	sequences := make([]*scene.Sequence, len(names))
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		seq, err := scene.Generate(name, scene.Config{Width: *width, Height: *height, Frames: *frames, Seed: 1})
		if err != nil {
			return err
		}
		sequences[i] = seq
	}

	r, err := dialRouter(*nodes)
	if err != nil {
		return err
	}
	defer r.Close()

	streams := make([]*fleet.Stream, len(sequences))
	for i, seq := range sequences {
		st, err := r.OpenWith(seq.Name, cfg, seq.Intr, fleet.StreamOptions{CheckpointEvery: *ckEvery})
		if err != nil {
			return err
		}
		streams[i] = st
		fmt.Printf("stream %-8s placed on %s\n", seq.Name, st.Node())
	}

	// Round-robin pushes: streams interleave on the fleet while each keeps
	// its own frame order, and -drain-at lands at a well-defined point.
	start := time.Now()
	pushed := 0
	for f := 0; f < *frames; f++ {
		if *drainAt > 0 && f == *drainAt {
			target := streams[0].Node()
			fmt.Printf("draining %s at frame %d...\n", target, f)
			if err := r.Drain(target); err != nil {
				return err
			}
		}
		for i, seq := range sequences {
			if f >= len(seq.Frames) {
				continue
			}
			if err := streams[i].Push(seq.Frames[f]); err != nil {
				return err
			}
			pushed++
		}
	}
	sums := make([]fleet.ResultSummary, len(streams))
	for i, st := range streams {
		sum, err := st.Close()
		if err != nil {
			return fmt.Errorf("stream %s: %w", names[i], err)
		}
		sums[i] = sum
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d streams, %d frames in %s (%.2f frames/s)\n",
		len(streams), pushed, elapsed.Round(time.Millisecond), float64(pushed)/elapsed.Seconds())
	for i, sum := range sums {
		fmt.Printf("  %-8s on %-8s digest %x  frames %d  gaussians %d  migrations %d  recoveries %d (%d frame(s) replayed)\n",
			names[i], streams[i].Node(), sum.Digest[:8], sum.Frames, sum.NumGaussians,
			streams[i].Migrations(), streams[i].Recoveries(), streams[i].Replayed())
	}
	m := r.Metrics()
	fmt.Printf("placement: %d/%d on first choice, %d migration(s), %d recovery(ies) replaying %d frame(s)\n",
		m.PrimaryHits, m.Placements, m.Migrations, m.Recoveries, m.ReplayedFrames)

	if *verify {
		fmt.Printf("\nverifying against local sequential runs...\n")
		for i, seq := range sequences {
			res, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
			if err != nil {
				return err
			}
			if res.Digest() != sums[i].Digest {
				return fmt.Errorf("stream %s: fleet digest diverges from local sequential run", names[i])
			}
			fmt.Printf("  %-8s ok (digest %x)\n", names[i], sums[i].Digest[:8])
		}
		fmt.Printf("all %d fleet digests bit-identical to local runs\n", len(sums))
	}
	return nil
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated node addresses (required)")
	fs.Parse(args)
	if *nodes == "" {
		return fmt.Errorf("ags-fleet stats: -nodes is required")
	}
	r, err := dialRouter(*nodes)
	if err != nil {
		return err
	}
	defer r.Close()
	sts, err := r.Stats()
	if err != nil {
		return err
	}
	for _, st := range sts {
		state := "serving"
		if st.Draining {
			state = "draining"
		}
		fmt.Printf("%-12s %-8s sessions %d/%d  pool %d cap, %d idle, %d hits / %d misses, %.1f KB resident\n",
			st.Name, state, st.OpenSessions, st.MaxSessions,
			st.Pool.Capacity, st.Pool.Idle, st.Pool.Hits, st.Pool.Misses,
			float64(st.Pool.ResidentBytes)/1024)
	}
	return nil
}

func drainCmd(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	var (
		nodes = fs.String("nodes", "", "comma-separated node addresses (required)")
		node  = fs.String("node", "", "name of the node to drain (required)")
	)
	fs.Parse(args)
	if *nodes == "" || *node == "" {
		return fmt.Errorf("ags-fleet drain: -nodes and -node are required")
	}
	r, err := dialRouter(*nodes)
	if err != nil {
		return err
	}
	defer r.Close()
	if err := r.Drain(*node); err != nil {
		return err
	}
	fmt.Printf("node %q draining: no new streams admitted; routed streams migrate at their next push\n", *node)
	return nil
}
