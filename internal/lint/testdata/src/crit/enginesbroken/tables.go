// Package enginesbroken is the pre-fix hot-set ranking that once lived in
// internal/hw/engines.SimulateLogging: it admits candidates straight out of
// map iteration, so the simulated ATS hot set — and every digest downstream
// of it — depended on runtime map order. Reintroducing either shape in a
// critical package must trip the maprange check; this package is the golden
// proof.
package enginesbroken

// HotSet fills the hot set during iteration with a capacity guard that reads
// loop-written state: which ids win the last slots is order-dependent.
func HotSet(freq map[int32]int, capN int) map[int32]bool {
	hot := make(map[int32]bool, capN)
	for id, f := range freq { // want maprange
		if f < 2 {
			continue
		}
		if len(hot) >= capN {
			break
		}
		hot[id] = true
	}
	return hot
}

// HotSetUnsorted collects candidates but never imposes a total order — the
// exact bug the PR-3 fix removed (delete the slices.SortFunc call from the
// fixed shape and you get this, which must fail the build).
func HotSetUnsorted(freq map[int32]int) []int32 {
	cands := make([]int32, 0, len(freq))
	for id, f := range freq { // want maprange
		if f >= 2 {
			cands = append(cands, id)
		}
	}
	return cands
}
