module x

go 1.24
