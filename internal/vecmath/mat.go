package vecmath

import "math"

// Mat2 is a 2x2 matrix in row-major order.
type Mat2 struct{ M00, M01, M10, M11 float64 }

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [9]float64

// Mat4 is a 4x4 matrix in row-major order.
type Mat4 [16]float64

// Det returns the determinant of m.
func (m Mat2) Det() float64 { return m.M00*m.M11 - m.M01*m.M10 }

// Inverse returns the inverse of m and whether m was invertible.
func (m Mat2) Inverse() (Mat2, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Mat2{}, false
	}
	inv := 1 / d
	return Mat2{m.M11 * inv, -m.M01 * inv, -m.M10 * inv, m.M00 * inv}, true
}

// MulVec returns m * v.
func (m Mat2) MulVec(v Vec2) Vec2 {
	return Vec2{m.M00*v.X + m.M01*v.Y, m.M10*v.X + m.M11*v.Y}
}

// Add returns m + n.
func (m Mat2) Add(n Mat2) Mat2 {
	return Mat2{m.M00 + n.M00, m.M01 + n.M01, m.M10 + n.M10, m.M11 + n.M11}
}

// Mul returns the matrix product m * n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		m.M00*n.M00 + m.M01*n.M10, m.M00*n.M01 + m.M01*n.M11,
		m.M10*n.M00 + m.M11*n.M10, m.M10*n.M01 + m.M11*n.M11,
	}
}

// Trace returns the trace of m.
func (m Mat2) Trace() float64 { return m.M00 + m.M11 }

// Eigenvalues returns the two eigenvalues of a symmetric 2x2 matrix,
// largest first.
func (m Mat2) Eigenvalues() (float64, float64) {
	mid := 0.5 * (m.M00 + m.M11)
	det := m.Det()
	d := math.Sqrt(math.Max(mid*mid-det, 0))
	return mid + d, mid - d
}

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// At returns the element at row r, column c.
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// Set stores v at row r, column c.
func (m *Mat3) Set(r, c int, v float64) { m[3*r+c] = v }

// Mul returns the matrix product m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			out[3*r+c] = m[3*r]*n[c] + m[3*r+1]*n[3+c] + m[3*r+2]*n[6+c]
		}
	}
	return out
}

// MulVec returns m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns the transpose of m.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Scale returns m with every element multiplied by s.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i, v := range m {
		out[i] = v * s
	}
	return out
}

// Add returns m + n.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Inverse returns the inverse of m and whether m was invertible.
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Mat3{}, false
	}
	inv := 1 / d
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// Diag3 returns the diagonal matrix with the components of d on the diagonal.
func Diag3(d Vec3) Mat3 {
	return Mat3{d.X, 0, 0, 0, d.Y, 0, 0, 0, d.Z}
}

// OuterProduct returns the 3x3 matrix v * u^T.
func OuterProduct(v, u Vec3) Mat3 {
	return Mat3{
		v.X * u.X, v.X * u.Y, v.X * u.Z,
		v.Y * u.X, v.Y * u.Y, v.Y * u.Z,
		v.Z * u.X, v.Z * u.Y, v.Z * u.Z,
	}
}

// Skew returns the skew-symmetric cross-product matrix [v]_x such that
// Skew(v).MulVec(u) == v.Cross(u).
func Skew(v Vec3) Mat3 {
	return Mat3{
		0, -v.Z, v.Y,
		v.Z, 0, -v.X,
		-v.Y, v.X, 0,
	}
}

// Identity4 returns the 4x4 identity matrix.
func Identity4() Mat4 {
	return Mat4{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*r+c] = m[4*r]*n[c] + m[4*r+1]*n[4+c] + m[4*r+2]*n[8+c] + m[4*r+3]*n[12+c]
		}
	}
	return out
}

// MulPoint applies m to the homogeneous point (v, 1) and returns the first
// three components (assuming the last row is (0,0,0,1)).
func (m Mat4) MulPoint(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3],
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7],
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11],
	}
}

// JacobiEigen3 diagonalizes a symmetric 3x3 matrix using cyclic Jacobi
// rotations. It returns the eigenvalues (descending) and a matrix whose
// columns are the corresponding unit eigenvectors. Off-diagonal asymmetry in
// the input is ignored: only the upper triangle is read.
func JacobiEigen3(a Mat3) (Vec3, Mat3) {
	// Symmetrize from the upper triangle.
	a[3], a[6], a[7] = a[1], a[2], a[5]
	v := Identity3()
	for sweep := 0; sweep < 32; sweep++ {
		off := a[1]*a[1] + a[2]*a[2] + a[5]*a[5]
		if off < 1e-30 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-30 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Build rotation and apply: a = G^T a G; v = v G.
				var g Mat3 = Identity3()
				g.Set(p, p, c)
				g.Set(q, q, c)
				g.Set(p, q, s)
				g.Set(q, p, -s)
				a = g.Transpose().Mul(a).Mul(g)
				v = v.Mul(g)
			}
		}
	}
	vals := Vec3{a[0], a[4], a[8]}
	// Sort eigenvalues descending, permuting eigenvector columns alongside.
	idx := [3]int{0, 1, 2}
	ev := [3]float64{vals.X, vals.Y, vals.Z}
	for i := 0; i < 2; i++ {
		for j := i + 1; j < 3; j++ {
			if ev[idx[j]] > ev[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	var sorted Mat3
	for c := 0; c < 3; c++ {
		src := idx[c]
		for r := 0; r < 3; r++ {
			sorted.Set(r, c, v.At(r, src))
		}
	}
	return Vec3{ev[idx[0]], ev[idx[1]], ev[idx[2]]}, sorted
}
