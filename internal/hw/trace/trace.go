// Package trace defines the operation traces the SLAM run emits and every
// platform model consumes. This mirrors the paper's methodology (§6.1): the
// algorithm runs once, point traces are collected, and the AGS simulator, the
// GPU models and the GSCore model are all driven from the same trace so their
// speedups compare identical work.
package trace

// RenderStats aggregates the splatting work of one task (tracking or
// mapping) on one frame, across all its training iterations, plus one
// representative iteration's detailed workload for the cycle-level models.
type RenderStats struct {
	Iters       int   // training iterations executed
	AlphaOps    int64 // stage-1 alpha evaluations, summed over iterations (forward)
	BlendOps    int64 // stage-2 blend operations, summed over iterations (forward)
	BackwardOps int64 // gradient-pass operations, summed over iterations
	Splats      int64 // Gaussians preprocessed (projection work), summed
	TileEntries int64 // Gaussian-table entries built (sort work), summed
	Pixels      int64 // pixels rendered, summed

	// Representative iteration detail (the last iteration's forward pass):
	RepPerPixelBlend []int32   // stage-2 blend count per pixel
	RepPerPixelAlpha []int32   // stage-1 alpha count per pixel
	RepTileLists     [][]int32 // Gaussian IDs per tile, depth order
	Width, Height    int       // image size for the representative data
}

// Accumulate folds one forward+backward iteration's counts into the stats.
func (s *RenderStats) Accumulate(alphaOps, blendOps, backwardOps, splats, tileEntries, pixels int64) {
	s.Iters++
	s.AlphaOps += alphaOps
	s.BlendOps += blendOps
	s.BackwardOps += backwardOps
	s.Splats += splats
	s.TileEntries += tileEntries
	s.Pixels += pixels
}

// FrameTrace is the per-frame record of everything the pipeline did.
type FrameTrace struct {
	Index        int
	Covisibility float64 // FC score vs the reference frame in [0,1]
	IsKeyFrame   bool    // full mapping (vs selective)
	CoarseOnly   bool    // tracking skipped 3DGS refinement

	CodecSADOps int64 // ME absolute-difference ops (free on AGS, charged on GPU)
	CoarseMACs  int64 // backbone MACs for coarse pose estimation

	Track RenderStats // 3DGS tracking refinement work
	Map   RenderStats // mapping work

	NumGaussians     int // active Gaussians when the frame was processed
	SkippedGaussians int // Gaussians suppressed by selective mapping

	// Map-lifecycle accounting: opacity pruning and compaction both run at
	// the end of the frame (after the counts above were recorded).
	PrunedGaussians int   // slots deactivated by this frame's opacity prune
	CompactedSlots  int   // dead slots reclaimed by this frame's compaction
	ReclaimedBytes  int64 // CompactedSlots in bytes (slot parameter footprint)

	// LoggingIDs is the per-tile Gaussian ID sequence of one full-mapping
	// iteration (key frames only) — the access stream the GS logging table
	// hot/cold model replays.
	LoggingIDs [][]int32
}

// Run is a complete SLAM execution trace.
type Run struct {
	Sequence      string
	Width, Height int
	Frames        []FrameTrace
}

// Totals sums coarse counters across frames.
type Totals struct {
	Frames        int
	KeyFrames     int
	CoarseOnly    int
	TrackIters    int
	MapIters      int
	AlphaOps      int64
	BlendOps      int64
	BackwardOps   int64
	SADOps        int64
	CoarseMACs    int64
	TileEntries   int64
	SplatsTouched int64

	PrunedGaussians int
	CompactedSlots  int
	ReclaimedBytes  int64
}

// Totals aggregates the run.
func (r *Run) Totals() Totals {
	var t Totals
	t.Frames = len(r.Frames)
	for i := range r.Frames {
		f := &r.Frames[i]
		if f.IsKeyFrame {
			t.KeyFrames++
		}
		if f.CoarseOnly {
			t.CoarseOnly++
		}
		t.TrackIters += f.Track.Iters
		t.MapIters += f.Map.Iters
		t.AlphaOps += f.Track.AlphaOps + f.Map.AlphaOps
		t.BlendOps += f.Track.BlendOps + f.Map.BlendOps
		t.BackwardOps += f.Track.BackwardOps + f.Map.BackwardOps
		t.SADOps += f.CodecSADOps
		t.CoarseMACs += f.CoarseMACs
		t.TileEntries += f.Track.TileEntries + f.Map.TileEntries
		t.SplatsTouched += f.Track.Splats + f.Map.Splats
		t.PrunedGaussians += f.PrunedGaussians
		t.CompactedSlots += f.CompactedSlots
		t.ReclaimedBytes += f.ReclaimedBytes
	}
	return t
}
