package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Summary is the compact, JSON-friendly view of a run: per-frame scalar
// counters without the bulky representative workloads. It is what
// `ags-slam -trace` writes for consumption by external analysis tools.
type Summary struct {
	Sequence string         `json:"sequence"`
	Width    int            `json:"width"`
	Height   int            `json:"height"`
	Frames   []FrameSummary `json:"frames"`
	Totals   Totals         `json:"totals"`
}

// FrameSummary is one frame's scalar counters.
type FrameSummary struct {
	Index        int     `json:"index"`
	Covisibility float64 `json:"covisibility"`
	KeyFrame     bool    `json:"key_frame"`
	CoarseOnly   bool    `json:"coarse_only"`
	TrackIters   int     `json:"track_iters"`
	MapIters     int     `json:"map_iters"`
	AlphaOps     int64   `json:"alpha_ops"`
	BlendOps     int64   `json:"blend_ops"`
	BackwardOps  int64   `json:"backward_ops"`
	SADOps       int64   `json:"sad_ops"`
	CoarseMACs   int64   `json:"coarse_macs"`
	Gaussians    int     `json:"gaussians"`
	Skipped      int     `json:"skipped_gaussians"`
}

// Summarize converts a run into its compact form.
func (r *Run) Summarize() Summary {
	s := Summary{Sequence: r.Sequence, Width: r.Width, Height: r.Height, Totals: r.Totals()}
	for i := range r.Frames {
		f := &r.Frames[i]
		s.Frames = append(s.Frames, FrameSummary{
			Index:        f.Index,
			Covisibility: f.Covisibility,
			KeyFrame:     f.IsKeyFrame,
			CoarseOnly:   f.CoarseOnly,
			TrackIters:   f.Track.Iters,
			MapIters:     f.Map.Iters,
			AlphaOps:     f.Track.AlphaOps + f.Map.AlphaOps,
			BlendOps:     f.Track.BlendOps + f.Map.BlendOps,
			BackwardOps:  f.Track.BackwardOps + f.Map.BackwardOps,
			SADOps:       f.CodecSADOps,
			CoarseMACs:   f.CoarseMACs,
			Gaussians:    f.NumGaussians,
			Skipped:      f.SkippedGaussians,
		})
	}
	return s
}

// WriteJSON writes the run's summary as indented JSON.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Summarize()); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}
