// Package platform turns SLAM operation traces into per-frame execution time
// and energy on each evaluated platform: the AGS accelerator (Edge and Server
// variants, §5/§6.1), the A100 and Jetson AGX Xavier GPUs, and the GSCore
// render accelerator paired with a GPU. All platforms consume the same
// trace.Run, mirroring the paper's trace-driven methodology. Absolute times
// are analytic-model estimates; the experiments report ratios.
package platform

import (
	"ags/internal/hw/trace"
)

// Op-cost constants shared by all platforms (FLOPs or FLOP-equivalents per
// traced operation). These come from counting the arithmetic in the
// corresponding kernels of the Go renderer.
const (
	flopsAlpha     = 35  // 2x2 quadratic form + exp
	flopsBlend     = 12  // color/depth/silhouette MACs + transmittance
	flopsBackward  = 30  // suffix-sum gradient step
	flopsPreproc   = 120 // EWA projection, covariance, inversion
	flopsSortEntry = 8   // bitonic-merge compare/exchange equivalents
	flopsSAD       = 3   // abs-diff + accumulate + compare
	flopsMAC       = 2

	gaussFeatureBytes = 48 // 12 fp32: mean, scale, rotation-lite, color, opacity
	pixelBytes        = 16 // color+depth target read per pixel per iteration
)

// Breakdown is the per-frame cost split on one platform.
type Breakdown struct {
	CodecNs  float64 // frame-covisibility detection (ME + accumulate)
	CoarseNs float64 // coarse pose estimation (backbone)
	TrackNs  float64 // 3DGS tracking iterations
	MapNs    float64 // mapping iterations (+ table traffic)
	TotalNs  float64 // after the platform's overlap rules
	EnergyJ  float64
	Bytes    int64
}

// Platform models one execution target.
type Platform interface {
	Name() string
	Frame(f *trace.FrameTrace) Breakdown
}

// RunTotal sums a platform's cost over a whole trace.
func RunTotal(p Platform, run *trace.Run) Breakdown {
	var tot Breakdown
	for i := range run.Frames {
		b := p.Frame(&run.Frames[i])
		tot.CodecNs += b.CodecNs
		tot.CoarseNs += b.CoarseNs
		tot.TrackNs += b.TrackNs
		tot.MapNs += b.MapNs
		tot.TotalNs += b.TotalNs
		tot.EnergyJ += b.EnergyJ
		tot.Bytes += b.Bytes
	}
	return tot
}

// Speedup returns a.TotalNs / b.TotalNs — how much faster platform b is than
// platform a on the same (or corresponding) work.
func Speedup(base, fast Breakdown) float64 {
	if fast.TotalNs == 0 {
		return 0
	}
	return base.TotalNs / fast.TotalNs
}

// splatFlops returns the arithmetic of one task's splatting work.
func splatFlops(s *trace.RenderStats) float64 {
	return float64(s.AlphaOps)*flopsAlpha +
		float64(s.BlendOps)*flopsBlend +
		float64(s.BackwardOps)*flopsBackward +
		float64(s.Splats)*flopsPreproc +
		float64(s.TileEntries)*flopsSortEntry
}

// splatBytes returns the DRAM traffic of one task's splatting work.
func splatBytes(s *trace.RenderStats) int64 {
	return s.Splats*gaussFeatureBytes + s.Pixels*pixelBytes
}
