// Package dram is a simplified banked row-buffer DRAM timing model standing
// in for Ramulator (DESIGN.md substitution #6). It captures the two
// first-order effects AGS's evaluation depends on: sustained bandwidth
// differences between edge (LPDDR4-3200) and server (HBM2) memory, and the
// row-buffer hit/miss cost of the scattered accesses made by the GS
// logging/skipping tables.
package dram

// Spec describes one memory technology.
type Spec struct {
	Name string
	// BandwidthGBs is the peak sequential bandwidth in GB/s.
	BandwidthGBs float64
	// RowHitNs / RowMissNs are access latencies for row-buffer hits and
	// misses (activate+precharge included).
	RowHitNs  float64
	RowMissNs float64
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
}

// LPDDR4 returns the AGS-Edge memory spec (LPDDR4-3200, §6.1).
func LPDDR4() Spec {
	return Spec{
		Name:         "LPDDR4-3200",
		BandwidthGBs: 25.6,
		RowHitNs:     18,
		RowMissNs:    45,
		Banks:        8,
		RowBytes:     2048,
	}
}

// HBM2 returns the AGS-Server memory spec (§6.1).
func HBM2() Spec {
	return Spec{
		Name:         "HBM2",
		BandwidthGBs: 900,
		RowHitNs:     14,
		RowMissNs:    34,
		Banks:        64,
		RowBytes:     1024,
	}
}

// Model tracks per-bank open rows and accumulates access time.
type Model struct {
	Spec     Spec
	openRow  []int64
	accesses int64
	hits     int64
	busyNs   float64
	bytes    int64
}

// New returns a model with all rows closed.
func New(spec Spec) *Model {
	rows := make([]int64, spec.Banks)
	for i := range rows {
		rows[i] = -1
	}
	return &Model{Spec: spec, openRow: rows}
}

// Access simulates one random access of n bytes at the byte address addr and
// returns its latency in nanoseconds.
func (m *Model) Access(addr uint64, n int) float64 {
	row := int64(addr) / int64(m.Spec.RowBytes)
	bank := int(row) % m.Spec.Banks
	m.accesses++
	m.bytes += int64(n)
	var lat float64
	if m.openRow[bank] == row {
		m.hits++
		lat = m.Spec.RowHitNs
	} else {
		m.openRow[bank] = row
		lat = m.Spec.RowMissNs
	}
	// Transfer time on top of the access latency.
	lat += float64(n) / (m.Spec.BandwidthGBs)
	// Banks overlap: charge only 1/Banks of the latency to the shared
	// channel once the pipeline is warm. A fixed derating keeps the model
	// simple and monotone.
	eff := lat / float64(min(m.Spec.Banks, 4))
	m.busyNs += eff
	return lat
}

// StreamNs returns the time to transfer n sequential bytes at peak bandwidth
// (large contiguous reads: Gaussian feature fetches, frame buffers).
func StreamNs(spec Spec, n int64) float64 {
	return float64(n) / spec.BandwidthGBs
}

// Stream accounts a sequential bulk transfer.
func (m *Model) Stream(n int64) float64 {
	t := StreamNs(m.Spec, n)
	m.busyNs += t
	m.bytes += n
	return t
}

// Stats summarizes the accumulated traffic.
type Stats struct {
	Accesses int64
	Hits     int64
	Bytes    int64
	BusyNs   float64
}

// Stats returns the accumulated counters.
func (m *Model) Stats() Stats {
	return Stats{Accesses: m.accesses, Hits: m.hits, Bytes: m.bytes, BusyNs: m.busyNs}
}

// HitRate returns the row-buffer hit rate, or 0 with no accesses.
func (m *Model) HitRate() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.accesses)
}

// Reset clears counters and closes all rows.
func (m *Model) Reset() {
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	m.accesses, m.hits, m.bytes = 0, 0, 0
	m.busyNs = 0
}
