package slam

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/scene"
	"ags/internal/splat"
	"ags/internal/vecmath"
)

// DefaultQueueDepth is each session's default frame-queue length: deep enough
// to keep the CODEC prefetch one frame ahead, shallow enough that Push
// exerts backpressure as soon as a stream outruns its pipeline.
const DefaultQueueDepth = 2

// ServerConfig sizes a Server's shared resources.
type ServerConfig struct {
	// ContextCapacity bounds how many idle render contexts the server's
	// splat.ContextPool retains across sessions (0 = 2 x GOMAXPROCS). In-use
	// contexts are not counted: a frame-step always gets a context, a miss
	// just allocates a fresh one.
	ContextCapacity int
	// QueueDepth is each session's frame queue length; Push blocks once the
	// queue is full (0 = DefaultQueueDepth).
	QueueDepth int
}

// Server owns the per-host resources live SLAM streams share — today the
// bounded, size-keyed render-context pool — and opens Sessions over them.
// Sessions acquire a context per frame-step and return it between frames, so
// N concurrent streams peak at N resident contexts while idle streams pin
// none, and outputs stay digest-identical to single-session runs at every
// worker count and session interleaving (the pipeline shares no mutable
// state across sessions besides the pool, and pooled contexts carry nothing
// that affects outputs).
//
// A Server is safe for concurrent use.
type Server struct {
	cfg  ServerConfig
	pool *splat.ContextPool

	mu       sync.Mutex
	sessions []*Session // open sessions, in open order
	draining bool
	closed   bool
}

// ErrDraining is returned by Open and RestoreSession while the server is
// draining: existing sessions run to completion, but no new streams are
// admitted. A fleet frontend reacts by placing the stream on a peer host.
var ErrDraining = errors.New("slam: server draining")

// NewServer returns a server with its own context pool.
func NewServer(cfg ServerConfig) *Server {
	if cfg.ContextCapacity <= 0 {
		cfg.ContextCapacity = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	return &Server{cfg: cfg, pool: splat.NewContextPool(cfg.ContextCapacity)}
}

var (
	defaultServerOnce sync.Once
	defaultServer     *Server
)

// DefaultServer returns the process-wide server behind the package-level
// conveniences: Run opens its session here, New draws standalone systems'
// contexts from its pool, and EvaluatePSNR borrows evaluation contexts from
// it. Multi-tenant deployments that want their own bounds create a Server
// explicitly.
func DefaultServer() *Server {
	defaultServerOnce.Do(func() { defaultServer = NewServer(ServerConfig{}) })
	return defaultServer
}

// ContextPool exposes the server's render-context pool.
func (sv *Server) ContextPool() *splat.ContextPool { return sv.pool }

// PoolStats snapshots the context pool's counters.
func (sv *Server) PoolStats() splat.PoolStats { return sv.pool.Stats() }

// OpenSessions returns how many sessions are currently open.
func (sv *Server) OpenSessions() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return len(sv.sessions)
}

// Sessions enumerates the currently open sessions in open order — the hook a
// host-draining frontend uses to find the live streams it must migrate. The
// returned slice is a snapshot; the producer contract of each session still
// belongs to whoever opened it.
func (sv *Server) Sessions() []*Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]*Session, len(sv.sessions))
	copy(out, sv.sessions)
	return out
}

// Drain marks the server draining: Open and RestoreSession fail with
// ErrDraining while already-open sessions keep running. It is the host-local
// half of a fleet-level graceful drain — the router stops placing streams
// here and migrates the live ones to peers.
func (sv *Server) Drain() {
	sv.mu.Lock()
	sv.draining = true
	sv.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (sv *Server) Draining() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.draining
}

// Close marks the server closed so further Opens fail. It errors while
// sessions are still open — close them first.
func (sv *Server) Close() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if n := len(sv.sessions); n > 0 {
		return fmt.Errorf("slam: server has %d open session(s)", n)
	}
	sv.closed = true
	return nil
}

// Open starts a live session: one camera stream processed in frame order on
// a background goroutine, rendering through the server's context pool. The
// name labels the session's final Result (its Sequence field). It fails on a
// closed server and, with ErrDraining, on a draining one.
func (sv *Server) Open(name string, cfg Config, intr camera.Intrinsics) (*Session, error) {
	s := sv.newSession(name, newSystem(cfg, intr, sv.pool, true))
	if err := sv.register(s); err != nil {
		return nil, err
	}
	go s.loop()
	return s, nil
}

// RestoreSession opens a session whose system is rebuilt from a snapshot
// stream (see System.Snapshot). It returns the session and how many frames
// the snapshot had already processed — the index of the next frame the
// producer should Push. Pushing the remainder of the original stream yields a
// Close Result digest-identical to the uninterrupted session.
func (sv *Server) RestoreSession(name string, r io.Reader) (*Session, int, error) {
	sys, err := restoreSystem(r, sv.pool, true)
	if err != nil {
		return nil, 0, err
	}
	s := sv.newSession(name, sys)
	if err := sv.register(s); err != nil {
		sys.Close()
		return nil, 0, err
	}
	go s.loop()
	return s, sys.FrameCount(), nil
}

func (sv *Server) newSession(name string, sys *System) *Session {
	return &Session{
		name:    name,
		sv:      sv,
		sys:     sys,
		in:      make(chan *frame.Frame, sv.cfg.QueueDepth),
		snap:    make(chan snapReq),
		updates: make(chan FrameUpdate, updateBuffer),
		failed:  make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// register adds the session to the open set, re-checking the server state
// under the same lock so a session can never slip onto a server after Close
// or Drain succeeded.
func (sv *Server) register(s *Session) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return fmt.Errorf("slam: server is closed")
	}
	if sv.draining {
		return fmt.Errorf("slam: open %q: %w", s.name, ErrDraining)
	}
	sv.sessions = append(sv.sessions, s)
	return nil
}

func (sv *Server) sessionClosed(s *Session) {
	sv.mu.Lock()
	for i, open := range sv.sessions {
		if open == s {
			sv.sessions = append(sv.sessions[:i], sv.sessions[i+1:]...)
			break
		}
	}
	sv.mu.Unlock()
}

// Run streams a whole sequence through one session, named after it: the
// open → push-every-frame → close pattern as a single call, shared by the
// package-level Run, the serving CLIs, and the bench experiments. On a Push
// failure the session is closed and the push error returned.
func (sv *Server) Run(cfg Config, seq *scene.Sequence) (*Result, error) {
	sess, err := sv.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		return nil, err
	}
	for _, f := range seq.Frames {
		if err := sess.Push(f); err != nil {
			sess.Close()
			return nil, err
		}
	}
	return sess.Close()
}

// updateBuffer sizes the best-effort Results stream. A consumer that keeps
// up never drops; one that stalls loses updates (counted by Dropped) rather
// than stalling the pipeline.
const updateBuffer = 64

// FrameUpdate is one frame's streamed outcome: the estimated pose and the
// per-frame algorithm decisions, published right after the frame is
// processed.
type FrameUpdate struct {
	Index        int // 0-based position in the session's stream
	Pose         vecmath.Pose
	Info         FrameInfo
	NumGaussians int // active Gaussians after the frame
}

// Session is one live SLAM sequence on a Server. The producer side (Push,
// Close) must be driven from a single goroutine; processing happens on the
// session's own goroutine, and per-frame outcomes stream on Results. Close
// drains the queue and returns the final Result — the same value a
// single-tenant Run of the same frames produces, digest for digest.
type Session struct {
	name string
	sv   *Server
	sys  *System

	in      chan *frame.Frame
	snap    chan snapReq
	updates chan FrameUpdate
	failed  chan struct{} // closed when processing hits an error
	done    chan struct{} // closed when the worker goroutine exits

	closeOnce sync.Once
	closed    bool // set by Close before the queue channel closes
	dropped   atomic.Uint64

	// res and err are written by the worker before done closes and read
	// only after <-done (or <-failed for err), so access is race-free.
	res *Result
	err error
}

// Name returns the session's label.
func (s *Session) Name() string { return s.name }

// Push enqueues the next frame of the stream. It blocks while the session's
// queue is full — the backpressure that keeps a fast producer from
// outrunning the pipeline — and fails once the session has errored or been
// closed. Push and Close must come from the same goroutine (one producer per
// session).
func (s *Session) Push(f *frame.Frame) error {
	if s.closed {
		return fmt.Errorf("slam: session %q: push after Close", s.name)
	}
	select {
	case <-s.failed:
		return fmt.Errorf("session %q: %w", s.name, s.err) // s.err carries the slam: prefix
	default:
	}
	//ags:allow(nondetsource, both winners agree: once failed is closed the worker drains in without processing, so a frame that won the race to enqueue is discarded and this call's error return is the same either way)
	select {
	case s.in <- f:
		return nil
	case <-s.failed:
		return fmt.Errorf("session %q: %w", s.name, s.err)
	}
}

// Results returns the session's per-frame update stream. Delivery is
// best-effort: a consumer that falls more than updateBuffer frames behind
// loses the overflow (see Dropped); the authoritative output is Close's
// Result. The channel closes when the session finishes.
func (s *Session) Results() <-chan FrameUpdate { return s.updates }

// Dropped returns how many FrameUpdates were discarded because no consumer
// kept up with Results.
func (s *Session) Dropped() uint64 { return s.dropped.Load() }

// Close ends the stream: no more frames are accepted, the queued ones are
// processed, and the final Result is returned. It is idempotent — further
// calls return the same Result — and safe to call after a Push error.
func (s *Session) Close() (*Result, error) {
	s.closeOnce.Do(func() {
		s.closed = true
		close(s.in)
	})
	<-s.done
	return s.res, s.err
}

// snapReq asks the session worker to serialize its system between frames.
type snapReq struct {
	w    io.Writer
	done chan error
}

// Snapshot serializes the session's state at a well-defined point: every
// frame pushed before the call is processed first (the producer is blocked
// here, so the queue can only drain), the ME lookahead is flushed, and the
// system is written to w. A session restored from the stream and fed the
// remaining frames closes with a Result digest-identical to this session's.
// Snapshot shares the producer contract of Push and Close (one goroutine);
// it fails after Close or once the session has errored.
func (s *Session) Snapshot(w io.Writer) error {
	if s.closed {
		return fmt.Errorf("slam: session %q: snapshot after Close", s.name)
	}
	req := snapReq{w: w, done: make(chan error, 1)}
	s.snap <- req
	return <-req.done
}

// loop is the session's worker: frames in queue order, with the same
// CODEC-prefetch call sequence Run historically used under PipelineME —
// frame t's ME against t+1 launches as soon as t+1 arrives, right before t
// is processed, so the encode of the next frame overlaps the current frame's
// tracking/mapping. Snapshot requests interleave on a second channel and are
// serviced only after the already-queued frames, so the serialized state is
// the same whichever case the runtime fires first.
func (s *Session) loop() {
	defer close(s.done)
	defer s.sv.sessionClosed(s)
	defer close(s.updates)
	var pending *frame.Frame // one-frame lookahead under PipelineME
	for {
		//ags:allow(nondetsource, both winners converge: the snapshot branch drains every queued frame before serializing, and no frame can arrive while it runs (the producer is blocked in Snapshot), so the state written — and every later output — is identical whichever ready case fires)
		select {
		case f, ok := <-s.in:
			if !ok {
				if s.err == nil && pending != nil {
					s.process(pending) // the final frame has no successor to prefetch against
				}
				if s.err == nil {
					s.res = s.sys.Finish(s.name)
				}
				s.sys.Close()
				return
			}
			pending = s.ingest(f, pending)
		case req := <-s.snap:
			pending = s.serveSnapshot(req, pending)
		}
	}
}

// ingest advances the pipeline by one queued frame, returning the new ME
// lookahead frame (nil when pipelining is off or the session has errored).
func (s *Session) ingest(f *frame.Frame, pending *frame.Frame) *frame.Frame {
	if s.err != nil {
		return pending // drain so blocked producers unblock; error surfaces at Close
	}
	if s.sys.Cfg.PipelineME {
		if pending != nil {
			s.sys.Prefetch(pending, f)
			s.process(pending)
		}
		return f
	}
	s.process(f)
	return nil
}

// serveSnapshot brings the pipeline to a between-frames point and serializes
// it: first every frame queued before the request (the producer is blocked in
// Snapshot, so none can be added behind it), then the flushed ME lookahead —
// its prefetch never launched, and the restored system recomputes that
// frame's motion estimation synchronously, byte-identically.
func (s *Session) serveSnapshot(req snapReq, pending *frame.Frame) *frame.Frame {
	for {
		select {
		case f, ok := <-s.in:
			if !ok {
				// Unreachable under the producer contract (Close follows
				// Snapshot); fail the request rather than snapshot a closed
				// stream's partial state.
				req.done <- fmt.Errorf("slam: session %q: closed during snapshot", s.name)
				return pending
			}
			pending = s.ingest(f, pending)
			continue
		default:
		}
		break
	}
	if s.err == nil && pending != nil {
		s.process(pending)
		pending = nil
	}
	if s.err != nil {
		req.done <- fmt.Errorf("session %q: %w", s.name, s.err)
		return pending
	}
	req.done <- s.sys.Snapshot(req.w)
	return pending
}

// process runs one frame through the system and publishes its update.
func (s *Session) process(f *frame.Frame) {
	if err := s.sys.ProcessFrame(f); err != nil {
		s.err = err
		close(s.failed)
		return
	}
	n := s.sys.frameCount - 1
	upd := FrameUpdate{
		Index:        n,
		Pose:         s.sys.poses[n],
		Info:         s.sys.info[n],
		NumGaussians: s.sys.traceFrames[n].NumGaussians,
	}
	select {
	case s.updates <- upd:
	default:
		s.dropped.Add(1)
	}
}
