package bench

import (
	"fmt"

	"ags/internal/hw/platform"
	"ags/internal/slam"
)

// Fig19 reproduces Fig. 19: sensitivity of PSNR and speedup to Iter_T, the
// fine-grained refinement iteration count.
func (s *Suite) Fig19() error {
	// Desk2 moves fast enough that the covisibility gate actually triggers
	// refinement; on near-static sequences Iter_T is never consumed.
	t := NewTable("Fig. 19: Sensitivity to Iter_T (Desk2)",
		"Iter_T", "PSNR (dB)", "Speedup vs A100")
	base := s.MustRun("Desk2", VarBaseline, "", nil)
	gpuT := platform.RunTotal(platform.A100(), base.Result.Trace)
	sweep := []int{2, 3, 5, 8, 12}
	for _, iterT := range sweep {
		it := iterT
		b, err := s.Run("Desk2", VarAGS, fmt.Sprintf("iterT=%d", it), func(c *slam.Config) { c.IterT = it })
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		agsT := platform.RunTotal(platform.AGSServer(), b.Result.Trace)
		t.AddRow(it, psnr, platform.Speedup(gpuT, agsT))
	}
	t.AddNote("paper: larger Iter_T raises quality, lowers speedup; chosen Iter_T=20 of 200 (here scaled)")
	t.Write(s.Out)
	return nil
}

// theoreticalSaving is the fraction of in-view mapping Gaussian-processing
// work that selective mapping skipped (skipped Gaussians over skipped plus
// processed, per iteration).
func theoreticalSaving(b *Bundle) float64 {
	var processed, skipped float64
	for _, f := range b.Result.Trace.Frames {
		if f.Map.Iters == 0 {
			continue
		}
		processed += float64(f.Map.Splats) / float64(f.Map.Iters)
		skipped += float64(f.SkippedGaussians)
	}
	if processed+skipped == 0 {
		return 0
	}
	return 100 * skipped / (processed + skipped)
}

// Fig20 reproduces Fig. 20: sensitivity to Thresh_M, the key-frame
// covisibility threshold.
func (s *Suite) Fig20() error {
	t := NewTable("Fig. 20: Sensitivity to Thresh_M (Desk)",
		"Thresh_M (%)", "PSNR (dB)", "Theoretical saving (%)", "Non-key frames (%)")
	for _, tm := range []float64{0.65, 0.75, 0.80, 0.85, 0.90} {
		v := tm
		b, err := s.Run("Desk", VarAGS, fmt.Sprintf("threshM=%.2f", v), func(c *slam.Config) { c.ThreshM = v })
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		tot := b.Result.Trace.Totals()
		nonKey := 100 * float64(tot.Frames-tot.KeyFrames) / float64(tot.Frames)
		t.AddRow(int(v*100), psnr, theoreticalSaving(b), nonKey)
	}
	t.AddNote("paper sweeps 40-60%% around its chosen 50%%; our covisibility scale places the same operating range at 65-85%% (DESIGN.md)")
	t.Write(s.Out)
	return nil
}

// Fig21 reproduces Fig. 21: sensitivity to Thresh_N, the non-contributory
// pixel-count threshold (values scaled to this resolution like the default).
func (s *Suite) Fig21() error {
	def := slam.DefaultConfig(s.Cfg.Width, s.Cfg.Height).Mapper.ThreshN
	t := NewTable("Fig. 21: Sensitivity to Thresh_N (Desk)",
		"Thresh_N", "PSNR (dB)", "Theoretical saving (%)")
	// Our pixel-scale splats put non-contributory counts in the
	// hundreds-to-thousands range (1-4 tiles of 256 pixels), so the
	// informative sweep sits above the paper's 450 operating point.
	for _, mult := range []float64{1, 4, 8, 16, 32} {
		tn := int(float64(def) * mult)
		if tn < 1 {
			tn = 1
		}
		v := tn
		b, err := s.Run("Desk", VarAGS, fmt.Sprintf("threshN=%d", v), func(c *slam.Config) { c.Mapper.ThreshN = v })
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		t.AddRow(v, psnr, theoreticalSaving(b))
	}
	t.AddNote("paper: higher Thresh_N -> fewer skipped Gaussians -> less saving, better quality; chosen 450 at 640x480")
	t.Write(s.Out)
	return nil
}
