// Package nnlite is a small, dependency-free CNN inference library: tensors,
// 2D convolutions, activations and a convolutional GRU cell. The AGS pose
// tracking engine runs a Droid-SLAM-style backbone (feature CNN + ConvGRU) on
// its systolic array; this package provides that workload — real arithmetic
// with exact MAC counts — for the coarse pose estimation stage and for the
// hardware model's systolic-array timing (see DESIGN.md substitution #3).
package nnlite

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a CHW-ordered dense tensor.
type Tensor struct {
	C, H, W int
	Data    []float64
}

// NewTensor returns a zero tensor of the given shape.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns the element at (channel, y, x).
func (t *Tensor) At(c, y, x int) float64 { return t.Data[(c*t.H+y)*t.W+x] }

// Set stores v at (channel, y, x).
func (t *Tensor) Set(c, y, x int, v float64) { t.Data[(c*t.H+y)*t.W+x] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Conv2D is a dense 2D convolution layer.
type Conv2D struct {
	InC, OutC int
	K         int // square kernel size
	Stride    int
	Pad       int
	Weight    []float64 // [outC][inC][K][K]
	Bias      []float64
}

// NewConv2D returns a convolution with He-initialized weights drawn from the
// seeded generator, so every run (and the hardware trace) is deterministic.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: make([]float64, outC*inC*k*k),
		Bias:   make([]float64, outC),
	}
	std := math.Sqrt(2 / float64(inC*k*k))
	for i := range c.Weight {
		c.Weight[i] = rng.NormFloat64() * std
	}
	return c
}

// OutSize returns the output spatial size for an input of the given size.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// MACs returns the multiply-accumulate count for an input of the given size.
func (c *Conv2D) MACs(h, w int) int64 {
	oh, ow := c.OutSize(h, w)
	return int64(oh) * int64(ow) * int64(c.OutC) * int64(c.InC) * int64(c.K) * int64(c.K)
}

// Forward applies the convolution.
func (c *Conv2D) Forward(in *Tensor) (*Tensor, error) {
	if in.C != c.InC {
		return nil, fmt.Errorf("nnlite: conv expects %d channels, got %d", c.InC, in.C)
	}
	oh, ow := c.OutSize(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nnlite: input %dx%d too small for kernel %d", in.H, in.W, c.K)
	}
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := c.Bias[oc]
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= in.W {
								continue
							}
							wgt := c.Weight[((oc*c.InC+ic)*c.K+ky)*c.K+kx]
							acc += wgt * in.At(ic, iy, ix)
						}
					}
				}
				out.Set(oc, oy, ox, acc)
			}
		}
	}
	return out, nil
}

// ReLU applies max(0,x) in place and returns the tensor.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// sigmoid/tanh helpers for the GRU gates.
func sigmoidf(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ConvGRU is a convolutional gated recurrent unit: gates are 2D convolutions
// over the concatenation of the hidden state and the input, as in
// Droid-SLAM's update operator.
type ConvGRU struct {
	HiddenC, InputC     int
	K                   int
	convZ, convR, convQ *Conv2D
}

// NewConvGRU returns a ConvGRU with deterministic weights.
func NewConvGRU(hiddenC, inputC, k int, rng *rand.Rand) *ConvGRU {
	pad := k / 2
	return &ConvGRU{
		HiddenC: hiddenC, InputC: inputC, K: k,
		convZ: NewConv2D(hiddenC+inputC, hiddenC, k, 1, pad, rng),
		convR: NewConv2D(hiddenC+inputC, hiddenC, k, 1, pad, rng),
		convQ: NewConv2D(hiddenC+inputC, hiddenC, k, 1, pad, rng),
	}
}

// MACs returns the per-step multiply-accumulate count at the given spatial size.
func (g *ConvGRU) MACs(h, w int) int64 {
	return g.convZ.MACs(h, w) + g.convR.MACs(h, w) + g.convQ.MACs(h, w)
}

// concat stacks h then x along channels.
func concat(h, x *Tensor) *Tensor {
	out := NewTensor(h.C+x.C, h.H, h.W)
	copy(out.Data[:len(h.Data)], h.Data)
	copy(out.Data[len(h.Data):], x.Data)
	return out
}

// Step advances the GRU: h' = (1-z)*h + z*q.
func (g *ConvGRU) Step(h, x *Tensor) (*Tensor, error) {
	if h.C != g.HiddenC || x.C != g.InputC || h.H != x.H || h.W != x.W {
		return nil, fmt.Errorf("nnlite: GRU shape mismatch h=%dx%dx%d x=%dx%dx%d",
			h.C, h.H, h.W, x.C, x.H, x.W)
	}
	hx := concat(h, x)
	z, err := g.convZ.Forward(hx)
	if err != nil {
		return nil, err
	}
	r, err := g.convR.Forward(hx)
	if err != nil {
		return nil, err
	}
	for i := range z.Data {
		z.Data[i] = sigmoidf(z.Data[i])
		r.Data[i] = sigmoidf(r.Data[i])
	}
	rh := h.Clone()
	for i := range rh.Data {
		rh.Data[i] *= r.Data[i]
	}
	q, err := g.convQ.Forward(concat(rh, x))
	if err != nil {
		return nil, err
	}
	out := NewTensor(h.C, h.H, h.W)
	for i := range out.Data {
		qi := math.Tanh(q.Data[i])
		out.Data[i] = (1-z.Data[i])*h.Data[i] + z.Data[i]*qi
	}
	return out, nil
}

// GlobalAvgPool reduces a tensor to a per-channel mean vector.
func GlobalAvgPool(t *Tensor) []float64 {
	out := make([]float64, t.C)
	hw := float64(t.H * t.W)
	for c := 0; c < t.C; c++ {
		var sum float64
		for i := c * t.H * t.W; i < (c+1)*t.H*t.W; i++ {
			sum += t.Data[i]
		}
		out[c] = sum / hw
	}
	return out
}
