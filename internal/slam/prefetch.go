package slam

import (
	"fmt"

	"ags/internal/codec"
	"ags/internal/covis"
	"ags/internal/frame"
)

// mePrefetch is one in-flight CODEC motion-estimation job: ME of cur against
// prev, running on a background goroutine. The channel is buffered so an
// abandoned job's goroutine can finish and exit without a receiver.
type mePrefetch struct {
	prev, cur *frame.Image
	ch        chan prefetchOut
}

type prefetchOut struct {
	res *codec.Result
	err error
}

// maxPendingME bounds the in-flight job list. The Run pattern keeps at most
// two alive: the job for frame t+1 launched while frame t's job is still
// unconsumed at the top of ProcessFrame(t).
const maxPendingME = 2

// Prefetch launches motion estimation of next against cur on a background
// goroutine, modeling the CODEC encoding frame t+1 while the accelerator
// works on frame t. Call it with the frame about to be processed and its
// successor; ProcessFrame(next) then consumes the finished result instead of
// recomputing it. A prefetch that never matches a later frame is discarded,
// so speculative calls are safe.
func (s *System) Prefetch(cur, next *frame.Frame) {
	if cur == nil || next == nil {
		return
	}
	job := &mePrefetch{prev: cur.Color, cur: next.Color, ch: make(chan prefetchOut, 1)}
	cfg := s.detector.Cfg
	go func() {
		res, err := codec.MotionEstimate(job.prev, job.cur, cfg)
		job.ch <- prefetchOut{res: res, err: err}
	}()
	s.pending = append(s.pending, job)
	if len(s.pending) > maxPendingME {
		s.pending = s.pending[len(s.pending)-maxPendingME:]
	}
}

// compareME returns the covisibility of cur against prev, consuming a
// matching prefetched ME result when one is in flight and falling back to
// the synchronous detector otherwise. Matched and older jobs are retired;
// the result is identical to Detector.Compare either way.
func (s *System) compareME(prev, cur *frame.Image) (covis.Score, error) {
	for i, job := range s.pending {
		if job.prev != prev || job.cur != cur {
			continue
		}
		// Retire this job and everything launched before it.
		s.pending = append(s.pending[:0], s.pending[i+1:]...)
		out := <-job.ch
		if out.err != nil {
			return 0, fmt.Errorf("slam: prefetched ME: %w", out.err)
		}
		s.detector.LastResult = out.res
		return s.detector.ScoreOf(out.res), nil
	}
	return s.detector.Compare(prev, cur)
}
