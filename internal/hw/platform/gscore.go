package platform

import (
	"ags/internal/hw/trace"
)

// GSCore models the paper's comparison accelerator (§6.1): GSCore speeds up
// the forward rendering of 3DGS (shape-aware intersection, hierarchical
// sorting, sub-tile skipping) but offers no support for training, so its
// inference path is combined with the remaining training work on the host
// GPU ("we combine the accelerated inference process of GSCore with the rest
// training process ... on the GPUs").
type GSCore struct {
	Label string
	Host  *GPU
	// RenderGPEs is the accelerator's blending throughput (ops/cycle).
	RenderGPEs int
	FreqMHz    float64
	// CullFactor is the fraction of alpha work its intersection test and
	// sub-tile skipping remove.
	CullFactor float64
	PowerW     float64
}

// GSCoreServer pairs GSCore with the A100 host.
func GSCoreServer() *GSCore {
	return &GSCore{Label: "GSCore-Server", Host: A100(), RenderGPEs: 256, FreqMHz: 1000, CullFactor: 0.35, PowerW: 2}
}

// GSCoreEdge pairs GSCore with the Xavier host.
func GSCoreEdge() *GSCore {
	return &GSCore{Label: "GSCore-Edge", Host: Xavier(), RenderGPEs: 128, FreqMHz: 1000, CullFactor: 0.35, PowerW: 1}
}

// Name implements Platform.
func (g *GSCore) Name() string { return g.Label }

// renderNs is GSCore's time for the forward-render portion of a task.
func (g *GSCore) renderNs(s *trace.RenderStats) float64 {
	if s.Iters == 0 {
		return 0
	}
	alpha := float64(s.AlphaOps) * (1 - g.CullFactor)
	cycles := (alpha + float64(s.BlendOps)) / float64(g.RenderGPEs)
	cycles += float64(s.Splats*2+s.TileEntries) / float64(g.RenderGPEs)
	return cycles * 1e3 / g.FreqMHz
}

// hostBackwardNs is the GPU time for everything GSCore cannot run: the
// backward pass, the loss, and the optimizer step (about half the kernels).
func (g *GSCore) hostBackwardNs(s *trace.RenderStats) (float64, int64) {
	if s.Iters == 0 {
		return 0, 0
	}
	flops := float64(s.BackwardOps) * flopsBackward
	bytes := splatBytes(s)
	compute := flops / (g.Host.PeakGFLOPS * g.Host.Efficiency)
	mem := float64(bytes) / g.Host.BWGBs
	t := compute
	if mem > t {
		t = mem
	}
	t += float64(s.Iters*(g.Host.KernelsPerIter-2)) * g.Host.KernelOverheadUs * 1e3
	// Handing each iteration's render back and forth costs a sync.
	t += float64(s.Iters) * g.Host.KernelOverheadUs * 1e3
	return t, bytes
}

// Frame implements Platform.
func (g *GSCore) Frame(f *trace.FrameTrace) Breakdown {
	var b Breakdown
	tr, trB := g.hostBackwardNs(&f.Track)
	b.TrackNs = g.renderNs(&f.Track) + tr
	mp, mpB := g.hostBackwardNs(&f.Map)
	b.MapNs = g.renderNs(&f.Map) + mp
	b.Bytes = trB + mpB
	b.TotalNs = b.TrackNs + b.MapNs
	b.EnergyJ = (g.Host.BusyPowerW + g.PowerW) * b.TotalNs * 1e-9
	return b
}
