// Package optim implements the first-order optimizers used for 3DGS training:
// Adam (the default for both pose tracking and Gaussian mapping, matching
// SplaTAM) and plain SGD. Optimizers operate over flat float64 parameter
// slices so callers can expose any view of their state.
package optim

import (
	"maps"
	"math"
	"slices"
)

// Optimizer updates a parameter vector in place given its gradient.
type Optimizer interface {
	// Step applies one update. params and grads must have the same length,
	// which must not change across calls.
	Step(params, grads []float64)
	// Reset clears accumulated state (moments, step counter).
	Reset()
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []float64
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step applies one SGD update.
func (s *SGD) Step(params, grads []float64) {
	if len(s.velocity) != len(params) {
		s.velocity = make([]float64, len(params))
	}
	for i := range params {
		s.velocity[i] = s.Momentum*s.velocity[i] - s.LR*grads[i]
		params[i] += s.velocity[i]
	}
}

// Reset clears the velocity buffer.
func (s *SGD) Reset() { s.velocity = nil }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	m, v    []float64
	stepNum int
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (a *Adam) Step(params, grads []float64) {
	if len(a.m) != len(params) {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
		a.stepNum = 0
	}
	a.stepNum++
	b1t := 1 - math.Pow(a.Beta1, float64(a.stepNum))
	b2t := 1 - math.Pow(a.Beta2, float64(a.stepNum))
	for i := range params {
		g := grads[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / b1t
		vHat := a.v[i] / b2t
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

// Reset clears moments and the step counter.
func (a *Adam) Reset() {
	a.m, a.v = nil, nil
	a.stepNum = 0
}

// Remap rebuilds the first and second moments through an ID permutation: the
// parameter vector is treated as n blocks of stride elements, and block old
// moves to block remap[old] when remap[old] < newN (blocks mapping at or
// beyond newN are dropped). The step counter is preserved — a remapped
// optimizer continues the surviving blocks' moment streams exactly, which is
// what keeps map compaction bit-transparent: without it, the next Step would
// see a changed length and silently reinitialize. A never-stepped optimizer
// remaps to itself.
func (a *Adam) Remap(stride int, remap []int32, newN int) {
	if a.m == nil {
		return
	}
	if len(a.m) != stride*len(remap) {
		// Stale moments (the parameter vector grew since the last Step): the
		// next Step would reinitialize in the un-remapped timeline too, so
		// mirror that instead of manufacturing a length that would dodge it.
		a.Reset()
		return
	}
	m := make([]float64, stride*newN)
	v := make([]float64, stride*newN)
	for old, nw := range remap {
		if int(nw) >= newN {
			continue
		}
		copy(m[int(nw)*stride:(int(nw)+1)*stride], a.m[old*stride:(old+1)*stride])
		copy(v[int(nw)*stride:(int(nw)+1)*stride], a.v[old*stride:(old+1)*stride])
	}
	a.m, a.v = m, v
}

// State returns the optimizer's moments and step counter (shared slices —
// callers serialize, they don't mutate).
func (a *Adam) State() (m, v []float64, step int) { return a.m, a.v, a.stepNum }

// SetState restores moments and the step counter (snapshot restore). The
// slices are adopted, not copied; m and v must have equal length.
func (a *Adam) SetState(m, v []float64, step int) {
	a.m, a.v = m, v
	a.stepNum = step
}

// GroupAdam runs independent Adam state per named parameter group with its
// own learning rate; 3DGS training uses different rates for means, colors,
// opacities, scales and rotations.
type GroupAdam struct {
	groups map[string]*Adam
	rates  map[string]float64
}

// NewGroupAdam returns a GroupAdam with the given per-group learning rates
// (copied, so later caller mutations don't leak in).
func NewGroupAdam(rates map[string]float64) *GroupAdam {
	return &GroupAdam{groups: make(map[string]*Adam), rates: maps.Clone(rates)}
}

// Step updates one group. Unknown group names fall back to learning rate 1e-3.
func (g *GroupAdam) Step(group string, params, grads []float64) {
	opt, ok := g.groups[group]
	if !ok {
		lr, has := g.rates[group]
		if !has {
			lr = 1e-3
		}
		opt = NewAdam(lr)
		g.groups[group] = opt
	}
	opt.Step(params, grads)
}

// RemapGroup rebuilds one group's moment state through an ID permutation
// (see Adam.Remap). A group that has never stepped is left untouched.
func (g *GroupAdam) RemapGroup(group string, stride int, remap []int32, newN int) {
	if opt, ok := g.groups[group]; ok {
		opt.Remap(stride, remap, newN)
	}
}

// GroupNames returns the names of every group that has stepped at least once,
// sorted so serialization order is deterministic.
func (g *GroupAdam) GroupNames() []string {
	names := make([]string, 0, len(g.groups))
	for name := range g.groups {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// GroupState returns one group's moments and step counter; ok is false for
// groups that have never stepped.
func (g *GroupAdam) GroupState(group string) (m, v []float64, step int, ok bool) {
	opt, exists := g.groups[group]
	if !exists {
		return nil, nil, 0, false
	}
	m, v, step = opt.State()
	return m, v, step, true
}

// SetGroupState restores one group's moments and step counter (snapshot
// restore), creating the group with its configured learning rate if needed.
func (g *GroupAdam) SetGroupState(group string, m, v []float64, step int) {
	opt, ok := g.groups[group]
	if !ok {
		lr, has := g.rates[group]
		if !has {
			lr = 1e-3
		}
		opt = NewAdam(lr)
		g.groups[group] = opt
	}
	opt.SetState(m, v, step)
}

// Reset clears every group's state.
func (g *GroupAdam) Reset() {
	//ags:allow(maprange, Adam.Reset zeroes each group's own state and reads nothing shared, so visit order cannot matter)
	for _, opt := range g.groups {
		opt.Reset()
	}
}

// ClipGradNorm scales grads in place so the global L2 norm is at most max.
// It returns the pre-clip norm.
func ClipGradNorm(grads []float64, max float64) float64 {
	var sq float64
	for _, g := range grads {
		sq += g * g
	}
	norm := math.Sqrt(sq)
	if norm > max && norm > 0 {
		s := max / norm
		for i := range grads {
			grads[i] *= s
		}
	}
	return norm
}
