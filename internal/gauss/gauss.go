// Package gauss defines the 3D Gaussian primitive and the growable cloud of
// Gaussians the SLAM map is made of. Parameters follow SplaTAM's convention:
// RGB color (no spherical harmonics), logit opacity, log scale and a unit
// quaternion rotation, so all optimizer updates are unconstrained.
package gauss

import (
	"fmt"
	"math"

	"ags/internal/vecmath"
)

// Gaussian is one anisotropic 3D Gaussian primitive.
type Gaussian struct {
	Mean     vecmath.Vec3 // world-space center
	LogScale vecmath.Vec3 // per-axis log standard deviation
	Rot      vecmath.Quat // orientation of the principal axes
	Color    vecmath.Vec3 // RGB in [0,1] (stored unclamped, clamped at render)
	Logit    float64      // opacity in logit space; Opacity() = sigmoid(Logit)
}

// Opacity returns the Gaussian's opacity in (0,1).
func (g *Gaussian) Opacity() float64 { return Sigmoid(g.Logit) }

// SetOpacity stores o (clamped away from 0 and 1) in logit space.
func (g *Gaussian) SetOpacity(o float64) {
	o = vecmath.Clamp(o, 1e-6, 1-1e-6)
	g.Logit = math.Log(o / (1 - o))
}

// Scale returns the per-axis standard deviations exp(LogScale).
func (g *Gaussian) Scale() vecmath.Vec3 {
	return vecmath.Vec3{
		X: math.Exp(g.LogScale.X),
		Y: math.Exp(g.LogScale.Y),
		Z: math.Exp(g.LogScale.Z),
	}
}

// SetScale stores per-axis standard deviations in log space.
func (g *Gaussian) SetScale(s vecmath.Vec3) {
	g.LogScale = vecmath.Vec3{
		X: math.Log(math.Max(s.X, 1e-9)),
		Y: math.Log(math.Max(s.Y, 1e-9)),
		Z: math.Log(math.Max(s.Z, 1e-9)),
	}
}

// Cov3 returns the world-space 3x3 covariance R S S^T R^T.
func (g *Gaussian) Cov3() vecmath.Mat3 {
	r := g.Rot.Mat3()
	s := g.Scale()
	ss := vecmath.Diag3(vecmath.Vec3{X: s.X * s.X, Y: s.Y * s.Y, Z: s.Z * s.Z})
	return r.Mul(ss).Mul(r.Transpose())
}

// MaxRadius returns a conservative world-space radius (3 sigma of the largest
// axis) used for visibility culling.
func (g *Gaussian) MaxRadius() float64 {
	s := g.Scale()
	return 3 * s.MaxComponent()
}

// Cloud is the growable set of Gaussians representing the scene. Index
// positions are stable: pruning marks Gaussians inactive rather than
// compacting, so recorded contribution tables stay valid across frames
// (the GS logging / skipping tables key on these IDs).
type Cloud struct {
	Gaussians []Gaussian
	Active    []bool
}

// NewCloud returns an empty cloud with capacity hint n.
func NewCloud(n int) *Cloud {
	return &Cloud{
		Gaussians: make([]Gaussian, 0, n),
		Active:    make([]bool, 0, n),
	}
}

// Len returns the total number of slots (active and inactive).
func (c *Cloud) Len() int { return len(c.Gaussians) }

// NumActive returns the number of active Gaussians.
func (c *Cloud) NumActive() int {
	n := 0
	for _, a := range c.Active {
		if a {
			n++
		}
	}
	return n
}

// Add appends a Gaussian and returns its stable ID.
func (c *Cloud) Add(g Gaussian) int {
	c.Gaussians = append(c.Gaussians, g)
	c.Active = append(c.Active, true)
	return len(c.Gaussians) - 1
}

// Prune deactivates the Gaussian with the given ID.
func (c *Cloud) Prune(id int) {
	if id >= 0 && id < len(c.Active) {
		c.Active[id] = false
	}
}

// At returns a pointer to the Gaussian with the given ID.
func (c *Cloud) At(id int) *Gaussian { return &c.Gaussians[id] }

// IsActive reports whether the Gaussian with the given ID is active.
func (c *Cloud) IsActive(id int) bool {
	return id >= 0 && id < len(c.Active) && c.Active[id]
}

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{
		Gaussians: make([]Gaussian, len(c.Gaussians)),
		Active:    make([]bool, len(c.Active)),
	}
	copy(out.Gaussians, c.Gaussians)
	copy(out.Active, c.Active)
	return out
}

// Validate checks structural invariants; it is used by tests and by the
// pipeline's debug mode.
func (c *Cloud) Validate() error {
	if len(c.Gaussians) != len(c.Active) {
		return fmt.Errorf("gauss: %d gaussians vs %d active flags", len(c.Gaussians), len(c.Active))
	}
	for i := range c.Gaussians {
		g := &c.Gaussians[i]
		if !g.Mean.IsFinite() || !g.LogScale.IsFinite() || !g.Color.IsFinite() {
			return fmt.Errorf("gauss: non-finite parameters at id %d", i)
		}
		if math.IsNaN(g.Logit) || math.IsInf(g.Logit, 0) {
			return fmt.Errorf("gauss: non-finite logit at id %d", i)
		}
		if n := g.Rot.Norm(); math.Abs(n-1) > 1e-3 {
			return fmt.Errorf("gauss: rotation norm %g at id %d", n, i)
		}
	}
	return nil
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// SigmoidGrad returns d(sigmoid)/dx expressed via the output value s.
func SigmoidGrad(s float64) float64 { return s * (1 - s) }
