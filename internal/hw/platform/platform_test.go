package platform

import (
	"sync"
	"testing"

	"ags/internal/hw/trace"
	"ags/internal/scene"
	"ags/internal/slam"
)

// Traces are expensive to produce; build them once for all platform tests.
var (
	traceOnce sync.Once
	baseRun   *trace.Run
	agsRun    *trace.Run
)

func runs(t *testing.T) (*trace.Run, *trace.Run) {
	t.Helper()
	traceOnce.Do(func() {
		seq := scene.MustGenerate("Xyz", scene.Config{Width: 48, Height: 36, Frames: 8, Seed: 1})
		cfg := slam.DefaultConfig(48, 36)
		cfg.TrackIters = 16
		cfg.IterT = 4
		cfg.Mapper.MapIters = 6
		cfg.Mapper.DensifyStride = 2
		cfg.Workers = 4
		base, err := slam.Run(cfg, seq)
		if err != nil {
			panic(err)
		}
		baseRun = base.Trace
		acfg := cfg
		acfg.EnableMAT = true
		acfg.EnableGCM = true
		ags, err := slam.Run(acfg, seq)
		if err != nil {
			panic(err)
		}
		agsRun = ags.Trace
	})
	return baseRun, agsRun
}

func TestAGSFasterThanGPUOnSameWork(t *testing.T) {
	base, ags := runs(t)
	gpuBase := RunTotal(A100(), base)
	agsSrv := RunTotal(AGSServer(), ags)
	sp := Speedup(gpuBase, agsSrv)
	if sp < 2 {
		t.Errorf("AGS-Server speedup over A100 = %.2fx", sp)
	}
	gpuEdge := RunTotal(Xavier(), base)
	agsEdge := RunTotal(AGSEdge(), ags)
	spE := Speedup(gpuEdge, agsEdge)
	if spE < 3 {
		t.Errorf("AGS-Edge speedup over Xavier = %.2fx", spE)
	}
	// Paper Fig. 15: the edge speedup exceeds the server speedup.
	if spE <= sp {
		t.Errorf("edge speedup %.2f not larger than server %.2f", spE, sp)
	}
}

func TestGPUAGSGainsLittle(t *testing.T) {
	// Fig. 18: running the AGS algorithm on the GPU helps only ~1.1x —
	// serial ME, backbone launches and table scatter eat the savings.
	base, ags := runs(t)
	gpuBase := RunTotal(A100(), base)
	gpuAGS := RunTotal(A100().WithAGSAlgorithm(), ags)
	sp := Speedup(gpuBase, gpuAGS)
	if sp < 0.8 || sp > 2.2 {
		t.Errorf("GPU-AGS speedup = %.2fx, expected modest (~1.1x)", sp)
	}
	// And it must be far below what the AGS hardware extracts.
	agsFull := RunTotal(AGSServer(), ags)
	if Speedup(gpuBase, agsFull) < 1.5*sp {
		t.Errorf("hardware advantage missing: GPU-AGS %.2fx vs AGS %.2fx",
			sp, Speedup(gpuBase, agsFull))
	}
}

func TestPipeliningHelps(t *testing.T) {
	_, ags := runs(t)
	full := RunTotal(AGSServer(), ags)
	serial := RunTotal(AGSServer().WithPipelining(false), ags)
	if full.TotalNs >= serial.TotalNs {
		t.Errorf("pipelining does not help: %.0f vs %.0f ns", full.TotalNs, serial.TotalNs)
	}
	// On the small, locally-balanced test workload the scheduler may gain
	// little, but it must never cost more than its bookkeeping overhead.
	nosched := RunTotal(AGSServer().WithScheduler(false), ags)
	if full.TotalNs > nosched.TotalNs*1.05 {
		t.Errorf("scheduler overhead too high: %.0f vs %.0f ns", full.TotalNs, nosched.TotalNs)
	}
}

// skewedTrace builds a frame whose per-pixel workload is heavily imbalanced
// (what deep Gaussian tables with early termination and selective skipping
// produce), to exercise the scheduler at the platform level.
func skewedTrace() *trace.Run {
	w, h := 64, 48
	alpha := make([]int32, w*h)
	blend := make([]int32, w*h)
	var alphaOps, blendOps int64
	for i := range alpha {
		if i%16 == 0 {
			alpha[i], blend[i] = 400, 60
		} else {
			alpha[i], blend[i] = 12, 4
		}
		alphaOps += int64(alpha[i])
		blendOps += int64(blend[i])
	}
	f := trace.FrameTrace{Index: 0, IsKeyFrame: true, NumGaussians: 3000}
	f.Map.Iters = 10
	f.Map.AlphaOps = alphaOps * 10
	f.Map.BlendOps = blendOps * 10
	f.Map.BackwardOps = blendOps * 20
	f.Map.Splats = 3000 * 10
	f.Map.TileEntries = 9000 * 10
	f.Map.Pixels = int64(w*h) * 10
	f.Map.RepPerPixelAlpha = alpha
	f.Map.RepPerPixelBlend = blend
	f.Map.Width, f.Map.Height = w, h
	return &trace.Run{Sequence: "synthetic", Width: w, Height: h, Frames: []trace.FrameTrace{f}}
}

func TestSchedulerHelpsOnSkewedWorkload(t *testing.T) {
	run := skewedTrace()
	sched := RunTotal(AGSServer(), run)
	nosched := RunTotal(AGSServer().WithScheduler(false), run)
	gain := nosched.TotalNs / sched.TotalNs
	if gain < 1.3 {
		t.Errorf("scheduler gain on skewed workload = %.2fx", gain)
	}
}

func TestGSCoreBetweenGPUAndAGS(t *testing.T) {
	base, ags := runs(t)
	gpu := RunTotal(A100(), base)
	gsc := RunTotal(GSCoreServer(), base)
	agsSrv := RunTotal(AGSServer(), ags)
	if gsc.TotalNs >= gpu.TotalNs {
		t.Errorf("GSCore (%.0f) not faster than GPU (%.0f)", gsc.TotalNs, gpu.TotalNs)
	}
	if agsSrv.TotalNs >= gsc.TotalNs {
		t.Errorf("AGS (%.0f) not faster than GSCore (%.0f)", agsSrv.TotalNs, gsc.TotalNs)
	}
}

func TestEnergyEfficiency(t *testing.T) {
	base, ags := runs(t)
	gpu := RunTotal(A100(), base)
	agsSrv := RunTotal(AGSServer(), ags)
	if agsSrv.EnergyJ >= gpu.EnergyJ {
		t.Errorf("AGS energy %.4f J not below GPU %.4f J", agsSrv.EnergyJ, gpu.EnergyJ)
	}
	ratio := gpu.EnergyJ / agsSrv.EnergyJ
	if ratio < 5 {
		t.Errorf("energy efficiency only %.1fx", ratio)
	}
}

func TestBreakdownComponentsPopulated(t *testing.T) {
	_, ags := runs(t)
	agsSrv := RunTotal(AGSServer(), ags)
	if agsSrv.MapNs == 0 || agsSrv.CoarseNs == 0 {
		t.Errorf("breakdown missing components: %+v", agsSrv)
	}
	if agsSrv.Bytes == 0 {
		t.Error("no DRAM traffic recorded")
	}
	// Empty frame costs nothing.
	var empty trace.FrameTrace
	b := AGSServer().Frame(&empty)
	if b.TotalNs != 0 {
		t.Errorf("empty frame cost %v ns", b.TotalNs)
	}
}

func TestTrackingDominatesBaselineGPU(t *testing.T) {
	// Fig. 3: tracking consumes most of the baseline time (N_T >> N_M).
	base, _ := runs(t)
	gpu := RunTotal(A100(), base)
	if gpu.TrackNs <= gpu.MapNs {
		t.Errorf("tracking (%.0f) does not dominate mapping (%.0f)", gpu.TrackNs, gpu.MapNs)
	}
}
