// Package grid distributes the bench warm phase over the fleet wire
// protocol: the coordinator side (Scheduler) plugs into bench.RunBatch as an
// alternative executor and fans resolved RunSpecs out to worker nodes as
// vJob frames, while the worker side (Worker) rides on fleet.Node's job seam,
// regenerates each job's procedural dataset deterministically from its
// scene.Config recipe, drives the pipeline, and ships back the finished
// system's snapshot plus its Result digest.
//
// The gate is the repo's usual one: a distributed warm must render
// byte-identical reports to local -jobs execution. Three checks enforce it —
// the fleet frame checksum (transport), a digest recomputation on every
// restored result (codec), and a sampled local replay of remote runs
// (execution) — so a worker that diverges for any reason fails the batch
// loudly instead of poisoning a table.
package grid

import (
	"bytes"
	"fmt"
	"sync"

	"ags/internal/scene"
	"ags/internal/slam"
)

// Worker executes grid jobs on a fleet node: plug one into
// fleet.NodeConfig.Jobs and the node answers vJob frames. Safe for concurrent
// use (the node runs one handler goroutine per connection); per-recipe
// dataset generation is singleflighted and cached across jobs, mirroring the
// bench suite's own dataset cache.
type Worker struct {
	mu   sync.Mutex
	seqs map[string]*seqFlight
	jobs int
}

type seqFlight struct {
	done chan struct{}
	seq  *scene.Sequence
	err  error
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{seqs: make(map[string]*seqFlight)}
}

// Jobs returns how many jobs this worker has completed successfully.
func (w *Worker) Jobs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs
}

// sequence returns (generating on first use) the dataset for one recipe.
// Concurrent jobs wanting the same recipe share a single generation.
func (w *Worker) sequence(name string, cfg scene.Config) (*scene.Sequence, error) {
	key := fmt.Sprintf("%s/%dx%d/%d/%d/%x", name, cfg.Width, cfg.Height, cfg.Frames, cfg.Seed, cfg.VFoV)
	w.mu.Lock()
	f, ok := w.seqs[key]
	if ok {
		w.mu.Unlock()
		<-f.done
		return f.seq, f.err
	}
	f = &seqFlight{done: make(chan struct{})}
	w.seqs[key] = f
	w.mu.Unlock()

	f.seq, f.err = scene.Generate(name, cfg)
	w.mu.Lock()
	if f.err != nil {
		delete(w.seqs, key) // forget failures so later jobs can retry
	}
	w.mu.Unlock()
	close(f.done)
	return f.seq, f.err
}

// RunJob decodes one job, regenerates its dataset, drives a slam.System over
// every frame, and replies with the finished system's snapshot plus the
// Result digest computed on this side of the wire. Driving the system
// directly is byte-identical to slam.Run (the session is a thin wrapper over
// the same per-frame call order), and the snapshot codec is the determinism
// contract, so the coordinator's restored Result reproduces this digest bit
// for bit — or the batch fails.
func (w *Worker) RunJob(payload []byte) ([]byte, error) {
	job, err := decodeJob(payload)
	if err != nil {
		return nil, err
	}
	seq, err := w.sequence(job.Seq, job.Scene)
	if err != nil {
		return nil, fmt.Errorf("grid: job %s: %w", job.ID, err)
	}
	sys := slam.New(job.Cfg, seq.Intr)
	defer sys.Close()
	for i, f := range seq.Frames {
		if err := sys.ProcessFrame(f); err != nil {
			return nil, fmt.Errorf("grid: job %s: frame %d: %w", job.ID, i, err)
		}
	}
	var snap bytes.Buffer
	if err := sys.Snapshot(&snap); err != nil {
		return nil, fmt.Errorf("grid: job %s: snapshot: %w", job.ID, err)
	}
	res := sys.Finish(job.Seq)
	w.mu.Lock()
	w.jobs++
	w.mu.Unlock()
	return encodeJobResult(nil, &jobResult{
		Digest: res.Digest(),
		Snap:   snap.Bytes(),
	}), nil
}
