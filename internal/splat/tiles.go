package splat

import (
	"sort"

	"ags/internal/camera"
)

// Tiles holds the per-tile Gaussian tables (step 2 of Fig. 2): for every
// image tile, the indices into the splat slice of the Gaussians intersecting
// it, sorted front-to-back by depth. These tables are exactly what the AGS
// mapping engine walks, so the hardware simulator consumes them unchanged.
type Tiles struct {
	TW, TH int       // tile grid size
	Lists  [][]int32 // Lists[ty*TW+tx] = splat indices, depth ascending
}

// NumTiles returns the number of tiles in the grid.
func (t *Tiles) NumTiles() int { return t.TW * t.TH }

// List returns the Gaussian table of tile (tx, ty).
func (t *Tiles) List(tx, ty int) []int32 { return t.Lists[ty*t.TW+tx] }

// TotalEntries returns the summed length of all Gaussian tables — the
// number of (Gaussian, tile) pairs the renderer will touch.
func (t *Tiles) TotalEntries() int {
	n := 0
	for _, l := range t.Lists {
		n += len(l)
	}
	return n
}

// BuildTiles performs the tile intersection test and depth sort. A splat is
// assigned to every tile its 3-sigma bounding box overlaps (the reference
// 3DGS conservative test).
func BuildTiles(splats []Splat, intr camera.Intrinsics) *Tiles {
	tw := (intr.W + TileSize - 1) / TileSize
	th := (intr.H + TileSize - 1) / TileSize
	t := &Tiles{TW: tw, TH: th, Lists: make([][]int32, tw*th)}
	for i := range splats {
		s := &splats[i]
		// A splat whose 3-sigma box misses the image entirely is culled:
		// clamping it into border tiles would charge phantom table entries
		// (and alpha evaluations) to the workload trace. Render's
		// preprocessing already culls these, but BuildTiles must stand alone
		// for direct callers.
		if s.Mean2D.X+s.Radius < 0 || s.Mean2D.Y+s.Radius < 0 ||
			s.Mean2D.X-s.Radius >= float64(intr.W) || s.Mean2D.Y-s.Radius >= float64(intr.H) {
			continue
		}
		x0 := clampInt(int((s.Mean2D.X-s.Radius)/TileSize), 0, tw-1)
		x1 := clampInt(int((s.Mean2D.X+s.Radius)/TileSize), 0, tw-1)
		y0 := clampInt(int((s.Mean2D.Y-s.Radius)/TileSize), 0, th-1)
		y1 := clampInt(int((s.Mean2D.Y+s.Radius)/TileSize), 0, th-1)
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				idx := ty*tw + tx
				t.Lists[idx] = append(t.Lists[idx], int32(i))
			}
		}
	}
	for idx := range t.Lists {
		l := t.Lists[idx]
		sort.Slice(l, func(a, b int) bool { return splats[l[a]].Depth < splats[l[b]].Depth })
	}
	return t
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
