package bench

import (
	"fmt"
	"io"
	"slices"
)

// Experiment is one regenerable paper artifact, declared as a value: its
// identity, the RunSpecs it consumes, and a renderer over the warmed cache.
type Experiment interface {
	// ID is the stable short name used by ags-bench -exp.
	ID() string
	// Paper names the table/figure the experiment reproduces.
	Paper() string
	// Needs declares every (sequence, variant, key, override) bundle Render
	// will consume, so the batch scheduler can execute the union across
	// experiments before any rendering starts. Dataset-only specs declare
	// sequences an experiment reads without running the pipeline.
	Needs() []RunSpec
	// Render writes the experiment's text artifact to w. All bundle access
	// goes through Suite.Run with the same specs Needs declared, so in batch
	// mode it only ever hits the warmed cache.
	Render(s *Suite, w io.Writer) error
}

// def is the declarative experiment value behind the registry: two strings,
// a spec list, and a render function. Each exp_*.go file builds its
// experiments with it next to their render methods.
type expDef struct {
	id     string
	paper  string
	needs  []RunSpec
	render func(*Suite, io.Writer) error
}

func (d expDef) ID() string                         { return d.id }
func (d expDef) Paper() string                      { return d.paper }
func (d expDef) Needs() []RunSpec                   { return append([]RunSpec(nil), d.needs...) }
func (d expDef) Render(s *Suite, w io.Writer) error { return d.render(s, w) }

// specsFor is the cross product sequences x variants with empty keys — the
// shape of most experiments' needs.
func specsFor(seqs []string, variants ...Variant) []RunSpec {
	out := make([]RunSpec, 0, len(seqs)*len(variants))
	for _, v := range variants {
		for _, name := range seqs {
			out = append(out, Spec(name, v))
		}
	}
	return out
}

// seqSpecs declares dataset-only needs for experiments that read frames
// without running the pipeline.
func seqSpecs(seqs []string) []RunSpec {
	out := make([]RunSpec, 0, len(seqs))
	for _, name := range seqs {
		out = append(out, SeqSpec(name))
	}
	return out
}

// Experiments returns the registry of all reproducible tables and figures in
// the order the paper presents them.
func Experiments() []Experiment {
	return []Experiment{
		expTable1(),
		expFig3(),
		expFig4(),
		expFig5(),
		expFig6(),
		expTable2(),
		expFig14(),
		expFPRate(),
		expFig15a(),
		expFig15b(),
		expTable3(),
		expFig16(),
		expFig17(),
		expFig18(),
		expTable4(),
		expFig19(),
		expFig20(),
		expFig21(),
		expFig22(),
		expFig23(),
		expAblCodec(),
		expAblTables(),
		expAblOverlap(),
		expPerfME(),
		expPerfRender(),
		expPerfServe(),
		expPerfCompact(),
		expPerfFleet(),
		expPerfChaos(),
		expPerfGrid(),
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID() == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID())
	}
	slices.Sort(ids)
	return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ids)
}
