package scene

import (
	"math"

	"ags/internal/vecmath"
)

// v is shorthand for composite Vec3 literals in scene construction.
func v(x, y, z float64) vecmath.Vec3 { return vecmath.Vec3{X: x, Y: y, Z: z} }

// deskWorld is a 6x3x6 m room with a desk and tabletop objects — the
// stand-in for TUM-RGBD's fr1 desk-style scenes.
func deskWorld() *World {
	wallTex := Mix(Checker(v(0.85, 0.82, 0.75), v(0.7, 0.68, 0.62), 0.8), Noise(v(1, 1, 1), 6, 0.3))
	floorTex := Mix(Stripes(v(0.55, 0.4, 0.3), v(0.45, 0.32, 0.24), 0.4, 0), Noise(v(1, 1, 1), 9, 0.25))
	deskTex := Mix(Noise(v(0.5, 0.33, 0.2), 14, 0.45), Stripes(v(1, 1, 1), v(0.85, 0.85, 0.85), 0.12, 2))
	return &World{
		Objects: []Object{
			&RoomShell{Min: v(-3, 0, -3), Max: v(3, 3, 3), Tex: Mix(wallTex, floorTex)},
			&Box{Min: v(-0.8, 0, -0.5), Max: v(0.8, 0.72, 0.5), Tex: deskTex},                                               // desk
			&Box{Min: v(-0.6, 0.72, -0.3), Max: v(-0.3, 0.95, -0.05), Tex: Noise(v(0.2, 0.3, 0.8), 20, 0.4)},                // book stack
			&Box{Min: v(0.25, 0.72, 0.05), Max: v(0.6, 1.0, 0.3), Tex: Checker(v(0.8, 0.2, 0.15), v(0.6, 0.12, 0.1), 0.07)}, // monitor-ish
			&Sphere{Center: v(0, 0.84, -0.15), Radius: 0.12, Tex: Noise(v(0.9, 0.75, 0.2), 18, 0.5)},                        // mug/ball
			&Sphere{Center: v(-0.15, 0.78, 0.25), Radius: 0.06, Tex: Solid(v(0.15, 0.7, 0.3))},
			&Box{Min: v(1.6, 0, -2.6), Max: v(2.4, 1.4, -1.8), Tex: Noise(v(0.4, 0.42, 0.5), 10, 0.35)}, // cabinet
		},
		Background: v(0.05, 0.05, 0.08),
		Lights:     defaultLights(),
		Ambient:    0.5,
	}
}

// roomWorld is a larger, sparsely furnished room for sweep trajectories.
func roomWorld() *World {
	return &World{
		Objects: []Object{
			&RoomShell{Min: v(-4, 0, -4), Max: v(4, 3, 4), Tex: Mix(Checker(v(0.8, 0.78, 0.7), v(0.62, 0.6, 0.55), 1.1), Noise(v(1, 1, 1), 5, 0.35))},
			&Box{Min: v(-2.5, 0, -3.5), Max: v(-1.2, 0.8, -2.5), Tex: Noise(v(0.6, 0.3, 0.25), 12, 0.4)},                 // sofa
			&Box{Min: v(1.5, 0, 1.8), Max: v(3.2, 0.5, 3.2), Tex: Stripes(v(0.3, 0.45, 0.6), v(0.2, 0.3, 0.45), 0.3, 0)}, // low table
			&Sphere{Center: v(0, 1.1, 0), Radius: 0.35, Tex: Checker(v(0.85, 0.6, 0.2), v(0.6, 0.4, 0.1), 0.12)},         // sculpture
			&Box{Min: v(-3.8, 0, 2.2), Max: v(-2.8, 2.1, 3.6), Tex: Noise(v(0.35, 0.5, 0.4), 8, 0.4)},                    // shelf
		},
		Background: v(0.04, 0.04, 0.06),
		Lights:     defaultLights(),
		Ambient:    0.5,
	}
}

// houseWorld is a two-room scene with a partition wall and doorway,
// exercising occlusion changes along walkthroughs.
func houseWorld() *World {
	wall := Mix(Noise(v(0.82, 0.8, 0.74), 7, 0.35), Checker(v(1, 1, 1), v(0.88, 0.88, 0.88), 0.9))
	return &World{
		Objects: []Object{
			&RoomShell{Min: v(-5, 0, -4), Max: v(5, 3, 4), Tex: wall},
			// Partition with a doorway gap between z=-0.4..0.6.
			&Box{Min: v(-0.1, 0, -4), Max: v(0.1, 3, -0.4), Tex: Stripes(v(0.75, 0.7, 0.6), v(0.6, 0.56, 0.48), 0.35, 1)},
			&Box{Min: v(-0.1, 0, 0.6), Max: v(0.1, 3, 4), Tex: Stripes(v(0.75, 0.7, 0.6), v(0.6, 0.56, 0.48), 0.35, 1)},
			// Left room furniture.
			&Box{Min: v(-4.2, 0, -1), Max: v(-2.8, 0.9, 0.4), Tex: Noise(v(0.55, 0.35, 0.22), 11, 0.4)},
			&Sphere{Center: v(-2, 0.5, 2), Radius: 0.5, Tex: Checker(v(0.25, 0.55, 0.75), v(0.15, 0.4, 0.6), 0.15)},
			// Right room furniture.
			&Box{Min: v(2, 0, -2.5), Max: v(3.4, 1.2, -1.2), Tex: Noise(v(0.3, 0.45, 0.3), 13, 0.45)},
			&Box{Min: v(1.5, 0, 1.5), Max: v(2.3, 0.75, 2.6), Tex: Checker(v(0.8, 0.5, 0.2), v(0.65, 0.38, 0.12), 0.1)},
		},
		Background: v(0.05, 0.05, 0.07),
		Lights:     defaultLights(),
		Ambient:    0.5,
	}
}

// officeWorld is a tidy synthetic office (the Replica-style stand-in).
func officeWorld() *World {
	return &World{
		Objects: []Object{
			&RoomShell{Min: v(-3.5, 0, -3.5), Max: v(3.5, 2.8, 3.5), Tex: Mix(Noise(v(0.86, 0.86, 0.84), 4, 0.25), Stripes(v(1, 1, 1), v(0.92, 0.92, 0.92), 0.6, 0))},
			&Box{Min: v(-2.6, 0, -1.2), Max: v(-1.2, 0.74, 1.2), Tex: Noise(v(0.45, 0.3, 0.2), 12, 0.35)}, // desk 1
			&Box{Min: v(1.2, 0, -1.2), Max: v(2.6, 0.74, 1.2), Tex: Noise(v(0.45, 0.3, 0.2), 12, 0.35)},   // desk 2
			&Box{Min: v(-1.9, 0.74, -0.4), Max: v(-1.5, 1.1, 0.4), Tex: Solid(v(0.12, 0.12, 0.15))},       // monitor 1
			&Box{Min: v(1.5, 0.74, -0.4), Max: v(1.9, 1.1, 0.4), Tex: Solid(v(0.12, 0.12, 0.15))},         // monitor 2
			&Sphere{Center: v(0, 0.35, 2.4), Radius: 0.35, Tex: Checker(v(0.7, 0.25, 0.2), v(0.5, 0.18, 0.15), 0.1)},
			&Box{Min: v(-0.5, 0, -3.2), Max: v(0.5, 1.8, -2.7), Tex: Checker(v(0.3, 0.4, 0.55), v(0.22, 0.3, 0.42), 0.25)}, // bookcase
		},
		Background: v(0.06, 0.06, 0.08),
		Lights:     defaultLights(),
		Ambient:    0.55,
	}
}

// scanWorld is a cluttered apartment-style scene (the ScanNet++ stand-in).
func scanWorld() *World {
	return &World{
		Objects: []Object{
			&RoomShell{Min: v(-4.5, 0, -3), Max: v(4.5, 2.7, 3), Tex: Mix(Checker(v(0.78, 0.74, 0.68), v(0.64, 0.6, 0.55), 0.7), Noise(v(1, 1, 1), 8, 0.4))},
			&Box{Min: v(-4.2, 0, -2.8), Max: v(-2.6, 1.0, -1.4), Tex: Noise(v(0.5, 0.26, 0.2), 15, 0.5)},
			&Box{Min: v(-1.5, 0, 1.2), Max: v(0.2, 0.45, 2.6), Tex: Stripes(v(0.35, 0.5, 0.35), v(0.25, 0.38, 0.25), 0.22, 0)},
			&Sphere{Center: v(1.4, 0.4, -1.2), Radius: 0.4, Tex: Noise(v(0.75, 0.65, 0.3), 16, 0.45)},
			&Box{Min: v(2.6, 0, 0.8), Max: v(4.1, 1.6, 2.4), Tex: Checker(v(0.4, 0.34, 0.5), v(0.3, 0.24, 0.4), 0.2)},
			&Sphere{Center: v(-2.6, 1.6, 1.8), Radius: 0.25, Tex: Solid(v(0.85, 0.3, 0.35))},
			&Box{Min: v(0.8, 0, -2.9), Max: v(2.0, 0.8, -2.1), Tex: Noise(v(0.3, 0.42, 0.55), 10, 0.4)},
		},
		Background: v(0.05, 0.05, 0.06),
		Lights:     defaultLights(),
		Ambient:    0.5,
	}
}

// scripts maps each named sequence to its world and motion script. Motion
// profiles mirror the character of the originals: Xyz is slow translation
// with almost no rotation (high covisibility), Desk2 and Room rotate fast
// (low covisibility), Replica-style sequences are smooth, ScanNet-style are
// rotation-heavy walkthroughs.
func scripts() map[string]func(seed int64) (*World, MotionScript) {
	deskEye := orbit(v(0, 0.4, 0), 2.0, 0.9, -math.Pi/2, 1.3)
	return map[string]func(seed int64) (*World, MotionScript){
		"Desk": func(seed int64) (*World, MotionScript) {
			return deskWorld(), MotionScript{
				Eye:         deskEye,
				Target:      fixed(v(0, 0.65, 0)),
				JitterTrans: 0.004, JitterAngle: 0.003, Seed: seed,
			}
		},
		"Desk2": func(seed int64) (*World, MotionScript) {
			return deskWorld(), MotionScript{
				Eye:         orbit(v(0, 0.4, 0), 1.9, 1.0, math.Pi/3, 2.6),
				Target:      waypoints(v(0, 0.7, 0), v(-0.5, 0.6, -0.3), v(0.4, 0.8, 0.3), v(0, 0.6, 0)),
				JitterTrans: 0.008, JitterAngle: 0.008, Seed: seed,
			}
		},
		"Room": func(seed int64) (*World, MotionScript) {
			return roomWorld(), MotionScript{
				Eye:         waypoints(v(-2.5, 1.4, -2.5), v(-1, 1.3, 0), v(1.5, 1.5, 1), v(2.5, 1.3, -1.5)),
				Target:      waypoints(v(0, 1, 0), v(2, 1, 2), v(-2, 1.2, 2), v(0, 0.8, 0)),
				JitterTrans: 0.010, JitterAngle: 0.010, Seed: seed,
			}
		},
		"Xyz": func(seed int64) (*World, MotionScript) {
			return deskWorld(), MotionScript{
				Eye: func(u float64) vecmath.Vec3 {
					// Gentle axis-aligned oscillations, like TUM fr1/xyz.
					return v(0.25*math.Sin(2*math.Pi*u), 0.95+0.1*math.Sin(4*math.Pi*u), -1.8+0.15*math.Cos(2*math.Pi*u))
				},
				Target:      fixed(v(0, 0.7, 0)),
				JitterTrans: 0.002, JitterAngle: 0.0015, Seed: seed,
			}
		},
		"House": func(seed int64) (*World, MotionScript) {
			return houseWorld(), MotionScript{
				Eye:         waypoints(v(-3.5, 1.4, -2), v(-1.5, 1.4, 0.1), v(0, 1.4, 0.1), v(2, 1.4, -0.5), v(3, 1.3, 1.5)),
				Target:      waypoints(v(-1, 1, 1), v(0.5, 1, 0.1), v(2, 1, 0), v(4, 1, 1), v(4, 1, 3)),
				JitterTrans: 0.007, JitterAngle: 0.006, Seed: seed,
			}
		},
		"Room0": func(seed int64) (*World, MotionScript) {
			return roomWorld(), MotionScript{
				Eye:         orbit(v(0, 0.8, 0), 2.6, 0.8, 0, 1.1),
				Target:      fixed(v(0, 0.9, 0)),
				JitterTrans: 0.0015, JitterAngle: 0.001, Seed: seed,
			}
		},
		"Office0": func(seed int64) (*World, MotionScript) {
			return officeWorld(), MotionScript{
				Eye:         orbit(v(0, 0.6, 0), 2.4, 1.0, math.Pi/4, 1.2),
				Target:      fixed(v(0, 0.7, 0)),
				JitterTrans: 0.0015, JitterAngle: 0.001, Seed: seed,
			}
		},
		"S1": func(seed int64) (*World, MotionScript) {
			return scanWorld(), MotionScript{
				Eye:         waypoints(v(-3.5, 1.5, -1.5), v(-1, 1.5, 0.5), v(1.5, 1.4, 0.5), v(3.5, 1.5, -1)),
				Target:      waypoints(v(0, 0.8, 0), v(1, 0.7, 2), v(3, 0.8, 2), v(4, 0.8, 2.5)),
				JitterTrans: 0.008, JitterAngle: 0.009, Seed: seed,
			}
		},
		"S2": func(seed int64) (*World, MotionScript) {
			return scanWorld(), MotionScript{
				Eye:         orbit(v(0, 0.7, 0), 2.8, 1.1, math.Pi, 2.2),
				Target:      waypoints(v(0, 0.8, 0), v(-1.5, 0.6, 1), v(1, 0.9, -1), v(0, 0.7, 0)),
				JitterTrans: 0.009, JitterAngle: 0.008, Seed: seed,
			}
		},
	}
}

// Names lists the available sequences in the order the paper's figures use.
func Names() []string {
	return []string{"Desk", "Desk2", "Room", "Xyz", "House", "Room0", "Office0", "S1", "S2"}
}

// TUMNames lists the TUM-RGBD-style subset used by the motivational and
// ablation experiments.
func TUMNames() []string { return []string{"Desk", "Desk2", "Room", "Xyz", "House"} }
