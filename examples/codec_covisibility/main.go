// CODEC covisibility: a close-up of the paper's key hardware insight — the
// video CODEC's motion-estimation block already measures how similar
// consecutive frames are. This example runs the ME model over two sequences
// with very different motion profiles, prints per-frame covisibility with the
// decisions AGS would take (skip refinement? key frame?), and shows the
// motion vectors for one frame pair.
//
//	go run ./examples/codec_covisibility
package main

import (
	"fmt"
	"log"

	"ags/internal/codec"
	"ags/internal/covis"
	"ags/internal/scene"
)

func main() {
	const w, h, frames = 64, 48, 12
	det := covis.NewDetector()

	for _, name := range []string{"Xyz", "Room"} {
		seq, err := scene.Generate(name, scene.Config{Width: w, Height: h, Frames: frames, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sequence %s:\n", name)
		fmt.Println("  frame  covisibility  band    tracking decision   mapping decision")
		for i := 1; i < len(seq.Frames); i++ {
			sc, err := det.Compare(seq.Frames[i-1].Color, seq.Frames[i].Color)
			if err != nil {
				log.Fatal(err)
			}
			track := "refine (Iter_T iters)"
			if float64(sc) > 0.90 {
				track = "coarse pose only"
			}
			mapping := "key frame (full)"
			if float64(sc) > 0.50 {
				mapping = "non-key (selective)"
			}
			fmt.Printf("  %5d  %12.3f  %-6s  %-18s  %s\n",
				i, float64(sc), covis.Band(sc), track, mapping)
		}
		fmt.Println()
	}

	// Peek inside the CODEC: motion vectors between two adjacent frames.
	seq, err := scene.Generate("Desk", scene.Config{Width: w, Height: h, Frames: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := codec.MotionEstimate(seq.Frames[0].Color, seq.Frames[1].Color, codec.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motion field Desk frame 0->1 (%dx%d macro-blocks, Sum min-SAD %d):\n", res.MBW, res.MBH, res.SumMinSAD())
	for by := 0; by < res.MBH; by++ {
		for bx := 0; bx < res.MBW; bx++ {
			mv := res.MV[by*res.MBW+bx]
			fmt.Printf("(%+d,%+d) ", mv.DX, mv.DY)
		}
		fmt.Println()
	}
}
