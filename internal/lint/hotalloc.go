package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// slice-origin classes for hotalloc's append rule.
const (
	originDerived = iota // param, field, deref, index, call result: capacity is owned elsewhere
	originNil            // declared nil locally: growing it allocates every call
	originAlloc          // make/composite locally: the allocation is reported at its own site
)

// checkHotAlloc enforces the zero-steady-state-allocation contract on every
// function marked //ags:hotpath, in any package. It flags the constructs
// that allocate per call:
//
//   - make and new, UNLESS inside the body of an `if cap(buf) < n` guard —
//     the repo's lazy-grow idiom, which allocates only until buffers reach
//     their high-water mark and is exactly what the perf-render allocation
//     gate measures as free;
//   - slice and map composite literals (struct values and arrays live on
//     the stack and are fine);
//   - &T{...} — conservatively treated as escaping;
//   - function literals — a closure capture allocates;
//   - append that grows a local slice declared nil, which re-allocates its
//     backing array on every call. Appends into parameters, fields, or
//     slices derived from them (buf[:0], *scratch) reuse caller-owned
//     capacity and are the sanctioned pattern.
//
// The check is intraprocedural: calls out of the function are trusted (the
// callee is either annotated itself or deliberately out of contract).
func checkHotAlloc(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			analyzeHotFunc(p, fd)
		}
	}
}

func analyzeHotFunc(p *pass, fd *ast.FuncDecl) {
	info := p.pkg.Info
	guards := capGuardRanges(info, fd.Body)
	guarded := func(pos token.Pos) bool {
		for _, g := range guards {
			if g[0] <= pos && pos < g[1] {
				return true
			}
		}
		return false
	}
	origins := sliceOrigins(info, fd.Body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.reportAt(n.Pos(), CheckHotAlloc,
				"function literal allocates a closure on the hot path — hoist it or justify with //ags:allow(hotalloc, reason)")
			return false // the closure body is its own (cold) world
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "make":
				if !guarded(n.Pos()) {
					p.reportAt(n.Pos(), CheckHotAlloc,
						"make allocates on the hot path — reuse a context-owned buffer, or grow under an `if cap(buf) < n` guard so steady state is allocation-free")
				}
			case "new":
				if !guarded(n.Pos()) {
					p.reportAt(n.Pos(), CheckHotAlloc, "new allocates on the hot path")
				}
			case "append":
				if len(n.Args) > 0 {
					if id := rootIdent(n.Args[0]); id != nil {
						if o := info.Uses[id]; o != nil && origins[o] == originNil {
							p.reportAt(n.Pos(), CheckHotAlloc,
								"append grows "+id.Name+", a local slice that starts nil, re-allocating its backing array every call — append into a reused buffer instead")
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil && !guarded(n.Pos()) {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.reportAt(n.Pos(), CheckHotAlloc, "slice literal allocates on the hot path")
				case *types.Map:
					p.reportAt(n.Pos(), CheckHotAlloc, "map literal allocates on the hot path")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok && !guarded(n.Pos()) {
					p.reportAt(n.Pos(), CheckHotAlloc,
						"&composite-literal on the hot path is conservatively treated as a heap allocation")
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// capGuardRanges returns the position ranges of if-bodies whose condition
// reads cap(...) — the lazy-grow idiom's amortized-allocation zones.
func capGuardRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		usesCap := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && builtinName(info, call) == "cap" {
				usesCap = true
			}
			return !usesCap
		})
		if usesCap {
			ranges = append(ranges, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return ranges
}

// sliceOrigins classifies every locally declared slice/map variable by where
// its backing storage comes from (see the origin* constants). Function
// literals are skipped — their locals are theirs.
func sliceOrigins(info *types.Info, body *ast.BlockStmt) map[types.Object]int {
	origins := make(map[types.Object]int)
	classify := func(id *ast.Ident, rhs ast.Expr) {
		o := info.Defs[id]
		if o == nil {
			return
		}
		switch u := o.Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			_ = u
		default:
			return
		}
		if rhs == nil {
			origins[o] = originNil // var buf []T
			return
		}
		switch r := rhs.(type) {
		case *ast.CallExpr:
			if builtinName(info, r) == "make" {
				origins[o] = originAlloc
			} else {
				origins[o] = originDerived
			}
		case *ast.CompositeLit:
			origins[o] = originAlloc
		case *ast.Ident:
			if r.Name == "nil" {
				origins[o] = originNil
			} else {
				origins[o] = originDerived
			}
		default:
			origins[o] = originDerived
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						classify(id, n.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					classify(name, rhs)
				}
			}
		}
		return true
	})
	return origins
}

// builtinName returns the predeclared builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}
