package slam

import (
	"strings"
	"sync"
	"testing"

	"ags/internal/scene"
)

// directRun drives a standalone System over the sequence (the pre-session
// call pattern, including the PipelineME prefetch order) and closes it.
func directRun(t *testing.T, cfg Config, seq *scene.Sequence) *Result {
	t.Helper()
	sys := New(cfg, seq.Intr)
	defer sys.Close()
	for i, f := range seq.Frames {
		if cfg.PipelineME && i+1 < len(seq.Frames) {
			sys.Prefetch(f, seq.Frames[i+1])
		}
		if err := sys.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return sys.Finish(seq.Name)
}

// sessionRun streams the sequence through one session of srv.
func sessionRun(t *testing.T, srv *Server, cfg Config, seq *scene.Sequence) *Result {
	t.Helper()
	sess, err := srv.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range seq.Frames {
		if err := sess.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSessionMatchesDirectSystem(t *testing.T) {
	seq := testSeq(t, "Desk", 6)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"serial", func(*Config) {}},
		{"pipelined", func(cfg *Config) { cfg.PipelineME = true; cfg.CodecWorkers = 3 }},
		{"no-render-ctx", func(cfg *Config) { cfg.NoRenderCtx = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastAGS(tw, th)
			tc.mut(&cfg)
			want := directRun(t, cfg, seq)
			srv := NewServer(ServerConfig{})
			got := sessionRun(t, srv, cfg, seq)
			assertSameRun(t, want, got)
			if want.Digest() != got.Digest() {
				t.Error("session digest diverged from direct System run")
			}
		})
	}
}

// TestConcurrentSessionsMatchSequential is the cross-session determinism
// regression: N live sessions interleaving on one server — with a context
// pool deliberately smaller than the session count, so contexts recycle
// across streams mid-sequence — must produce per-sequence Results bitwise
// identical to N sequential runs.
func TestConcurrentSessionsMatchSequential(t *testing.T) {
	names := []string{"Desk", "Xyz", "Room"}
	cfg := fastAGS(tw, th)
	cfg.PipelineME = true
	cfg.CodecWorkers = 2

	want := make(map[string][32]byte)
	for _, name := range names {
		seq := testSeq(t, name, 6)
		res, err := Run(cfg, seq)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Digest()
	}

	srv := NewServer(ServerConfig{ContextCapacity: 1}) // force cross-session recycling
	var wg sync.WaitGroup
	got := make([][32]byte, len(names))
	errs := make([]error, len(names))
	for i, name := range names {
		seq := testSeq(t, name, 6)
		wg.Add(1)
		go func(i int, seq *scene.Sequence) {
			defer wg.Done()
			res, err := srv.Run(cfg, seq)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Digest()
		}(i, seq)
	}
	wg.Wait()
	for i, name := range names {
		if errs[i] != nil {
			t.Fatalf("session %s: %v", name, errs[i])
		}
		if got[i] != want[name] {
			t.Errorf("session %s: concurrent digest diverged from sequential run", name)
		}
	}
	st := srv.PoolStats()
	if st.Idle > st.Capacity {
		t.Errorf("pool idle %d exceeds capacity %d", st.Idle, st.Capacity)
	}
	if st.Hits == 0 {
		t.Error("no pool hits across three sessions — per-step recycling broken")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionResultsStream(t *testing.T) {
	seq := testSeq(t, "Desk", 5)
	srv := NewServer(ServerConfig{})
	sess, err := srv.Open(seq.Name, fastAGS(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	var updates []FrameUpdate
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for upd := range sess.Results() {
			updates = append(updates, upd)
		}
	}()
	for _, f := range seq.Frames {
		if err := sess.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if sess.Dropped() != 0 {
		t.Fatalf("%d updates dropped with a live consumer", sess.Dropped())
	}
	if len(updates) != len(seq.Frames) {
		t.Fatalf("got %d updates, want %d", len(updates), len(seq.Frames))
	}
	for i, upd := range updates {
		if upd.Index != i {
			t.Errorf("update %d has index %d", i, upd.Index)
		}
		if upd.Pose != res.Poses[i] {
			t.Errorf("update %d pose diverges from final result", i)
		}
		if upd.Info != res.Info[i] {
			t.Errorf("update %d info diverges from final result", i)
		}
	}
	if !updates[0].Info.IsKeyFrame {
		t.Error("bootstrap frame not flagged as key frame in its update")
	}
}

func TestSessionErrorSurfacesOnPushAndClose(t *testing.T) {
	seq := testSeq(t, "Desk", 2)
	wrong := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 2, Seed: 1})
	srv := NewServer(ServerConfig{})
	sess, err := srv.Open(seq.Name, fastAGS(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(wrong.Frames[0]); err != nil {
		t.Fatalf("push itself failed: %v", err) // the queue accepts; processing rejects
	}
	// The worker fails the frame; subsequent pushes must surface the error
	// (possibly after a few queue-buffered accepts).
	var pushErr error
	for i := 0; i < 10 && pushErr == nil; i++ {
		pushErr = sess.Push(seq.Frames[0])
	}
	if pushErr == nil {
		t.Error("pushes kept succeeding after a processing failure")
	}
	res, err := sess.Close()
	if err == nil || !strings.Contains(err.Error(), "does not match camera") {
		t.Errorf("Close error = %v, want frame-size mismatch", err)
	}
	if res != nil {
		t.Error("failed session returned a Result")
	}
}

func TestSessionPushAfterCloseFails(t *testing.T) {
	seq := testSeq(t, "Desk", 2)
	srv := NewServer(ServerConfig{})
	sess, err := srv.Open(seq.Name, fastAGS(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(seq.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(seq.Frames[1]); err == nil {
		t.Error("push after Close succeeded")
	}
	// Close is idempotent: the second call returns the same result.
	res, err := sess.Close()
	if err != nil || res == nil {
		t.Errorf("second Close = (%v, %v)", res, err)
	}
}

func TestSystemCloseReleasesContextToPool(t *testing.T) {
	seq := testSeq(t, "Desk", 2)
	srv := NewServer(ServerConfig{ContextCapacity: 4})
	sys := newSystem(fastAGS(tw, th), seq.Intr, srv.ContextPool(), false)
	for _, f := range seq.Frames {
		if err := sys.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.PoolStats(); st.Idle != 0 {
		t.Fatalf("pinned context counted idle (%d)", st.Idle)
	}
	sys.Close()
	if st := srv.PoolStats(); st.Idle != 1 {
		t.Fatalf("idle=%d after Close, want 1", st.Idle)
	}
	sys.Close() // idempotent
	if st := srv.PoolStats(); st.Idle != 1 {
		t.Fatalf("idle=%d after double Close, want 1", st.Idle)
	}
	// The system is still usable: the next frame re-acquires (a pool hit).
	// Frame 0 re-processed out of order is fine here; the pipeline accepts
	// any validated frame.
	if err := sys.ProcessFrame(seq.Frames[0]); err != nil {
		t.Fatalf("ProcessFrame after Close: %v", err)
	}
	if st := srv.PoolStats(); st.Hits == 0 {
		t.Error("re-acquire after Close did not hit the pool")
	}
	sys.Close()
}

func TestServerLifecycle(t *testing.T) {
	seq := testSeq(t, "Desk", 1)
	srv := NewServer(ServerConfig{})
	sess, err := srv.Open(seq.Name, fastCfg(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.OpenSessions(); n != 1 {
		t.Errorf("open sessions = %d, want 1", n)
	}
	if err := srv.Close(); err == nil {
		t.Error("server Close succeeded with an open session")
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if n := srv.OpenSessions(); n != 0 {
		t.Errorf("open sessions = %d after close, want 0", n)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(seq.Name, fastCfg(tw, th), seq.Intr); err == nil {
		t.Error("Open succeeded on a closed server")
	}
}

func TestResultDigestDistinguishesRuns(t *testing.T) {
	seq := testSeq(t, "Desk", 4)
	a, err := Run(fastAGS(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastAGS(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("identical runs digest differently")
	}
	c, err := Run(fastCfg(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Error("AGS and baseline runs digest identically")
	}
}
