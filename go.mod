module ags

go 1.24
