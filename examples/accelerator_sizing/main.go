// Accelerator sizing: use the hardware models as a design-space explorer.
// Sweeps the number of GPE arrays in the mapping engine and reports modeled
// frame time, area and energy for each design point — the kind of study
// Table 3 and Fig. 15/16 of the paper summarize at two points (Edge, Server).
//
//	go run ./examples/accelerator_sizing
package main

import (
	"fmt"
	"log"

	"ags/internal/hw/area"
	"ags/internal/hw/gpe"
	"ags/internal/hw/platform"
	"ags/internal/scene"
	"ags/internal/slam"
)

func main() {
	const w, h = 64, 48
	seq, err := scene.Generate("Desk", scene.Config{Width: w, Height: h, Frames: 12, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := slam.AGSConfig(w, h)
	cfg.TrackIters = 24
	res, err := slam.Run(cfg, seq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("design point sweep (AGS mapping engine, HBM2, scheduler on):")
	fmt.Println("  arrays  ms/frame   mm^2 (GS array)   mJ/frame")
	frames := float64(len(res.Poses))
	for _, arrays := range []int{4, 8, 16, 32, 64} {
		pl := platform.AGSServer()
		pl.MapArrays = arrays
		pl.GPEParams = gpe.DefaultParams(arrays)
		tot := platform.RunTotal(pl, res.Trace)
		cfgArea := area.Server()
		cfgArea.GSArrays = arrays
		fmt.Printf("  %6d  %8.3f   %15.2f   %8.3f\n",
			arrays,
			tot.TotalNs/frames*1e-6,
			area.Total(cfgArea),
			tot.EnergyJ/frames*1e3)
	}

	fmt.Println("\nscheduler ablation at 32 arrays:")
	for _, sched := range []bool{false, true} {
		pl := platform.AGSServer().WithScheduler(sched)
		tot := platform.RunTotal(pl, res.Trace)
		fmt.Printf("  scheduled=%-5v  %.3f ms/frame\n", sched, tot.TotalNs/frames*1e-6)
	}
}
