package fleet

import (
	"ags/internal/splat"
)

// NodeStats is one node's self-report: the placement inputs (open sessions,
// pool counters) plus the admission budgets, polled by routers over the
// control connection before every placement decision and surfaced by the
// ags-fleet CLI and the perf-fleet experiment.
type NodeStats struct {
	// Name is the node's configured identity (its consistent-hash key).
	Name string
	// OpenSessions counts the fleet-admitted live streams on the node.
	OpenSessions int
	// Draining reports whether the node has been asked to drain.
	Draining bool
	// MaxSessions and MaxResidentBytes echo the node's admission budgets
	// (0 = unlimited).
	MaxSessions      int
	MaxResidentBytes int64
	// Pool snapshots the underlying slam.Server's render-context pool — the
	// warmth and residency signal placement and admission run on.
	Pool splat.PoolStats
}

func encodeStats(buf []byte, st *NodeStats) []byte {
	e := wireEnc{buf: buf}
	e.str(st.Name)
	e.i64(int64(st.OpenSessions))
	e.boolv(st.Draining)
	e.i64(int64(st.MaxSessions))
	e.i64(st.MaxResidentBytes)
	e.i64(int64(st.Pool.Capacity))
	e.i64(int64(st.Pool.Idle))
	e.u64(st.Pool.Hits)
	e.u64(st.Pool.Misses)
	e.u64(st.Pool.Evictions)
	e.i64(st.Pool.ResidentBytes)
	return e.buf
}

func decodeStats(b []byte) (NodeStats, error) {
	d := &wireDec{b: b}
	var st NodeStats
	st.Name = d.str()
	st.OpenSessions = int(d.i64())
	st.Draining = d.boolv()
	st.MaxSessions = int(d.i64())
	st.MaxResidentBytes = d.i64()
	st.Pool.Capacity = int(d.i64())
	st.Pool.Idle = int(d.i64())
	st.Pool.Hits = d.u64()
	st.Pool.Misses = d.u64()
	st.Pool.Evictions = d.u64()
	st.Pool.ResidentBytes = d.i64()
	return st, d.finish("stats")
}

// ResultSummary is the close reply: the full Result stays on the node (maps
// are large), what crosses the wire is the digest — the complete determinism
// contract in 32 bytes, bit-comparable against a local slam.Run — plus the
// summary scalars the serving layer reports.
type ResultSummary struct {
	// Digest is slam's Result.Digest of the finished session: trajectories,
	// per-frame decisions, the full Gaussian map, trace workload scalars.
	Digest [32]byte
	// Frames is how many frames the session processed.
	Frames int
	// NumGaussians is the active map size at close.
	NumGaussians int
	// ATECm is the trajectory error in centimeters (NaN when the sequence
	// carries no ground truth to compare against).
	ATECm float64
	// PrunedGaussians / CompactedSlots / ReclaimedBytes total the map
	// lifecycle accounting over the whole session.
	PrunedGaussians int
	CompactedSlots  int
	ReclaimedBytes  int64
	// DroppedUpdates counts per-frame updates discarded because nothing
	// consumed the node-side Results stream (informational; the Result
	// itself is complete regardless).
	DroppedUpdates uint64
}

func encodeResult(buf []byte, r *ResultSummary) []byte {
	e := wireEnc{buf: buf}
	e.buf = append(e.buf, r.Digest[:]...)
	e.i64(int64(r.Frames))
	e.i64(int64(r.NumGaussians))
	e.f64(r.ATECm)
	e.i64(int64(r.PrunedGaussians))
	e.i64(int64(r.CompactedSlots))
	e.i64(r.ReclaimedBytes)
	e.u64(r.DroppedUpdates)
	return e.buf
}

func decodeResult(b []byte) (ResultSummary, error) {
	d := &wireDec{b: b}
	var r ResultSummary
	copy(r.Digest[:], d.take(len(r.Digest)))
	r.Frames = int(d.i64())
	r.NumGaussians = int(d.i64())
	r.ATECm = d.f64()
	r.PrunedGaussians = int(d.i64())
	r.CompactedSlots = int(d.i64())
	r.ReclaimedBytes = d.i64()
	r.DroppedUpdates = d.u64()
	return r, d.finish("result")
}
