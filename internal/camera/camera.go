// Package camera models the pinhole RGB-D camera used by the SLAM pipeline:
// intrinsics, perspective projection with its Jacobian (needed for EWA
// splatting and pose gradients), and back-projection of depth pixels.
package camera

import (
	"fmt"
	"math"

	"ags/internal/vecmath"
)

// Intrinsics is a pinhole camera calibration.
type Intrinsics struct {
	Fx, Fy float64 // focal lengths in pixels
	Cx, Cy float64 // principal point in pixels
	W, H   int     // image size in pixels
}

// NewIntrinsics returns intrinsics for a w x h sensor with the given vertical
// field of view (radians) and the principal point at the image center.
func NewIntrinsics(w, h int, vfov float64) Intrinsics {
	f := float64(h) / (2 * math.Tan(vfov/2))
	return Intrinsics{
		Fx: f, Fy: f,
		Cx: float64(w) / 2, Cy: float64(h) / 2,
		W: w, H: h,
	}
}

// Scaled returns the intrinsics for an image downsampled by factor s
// (s=2 halves the resolution). Useful for coarse-to-fine alignment pyramids.
func (in Intrinsics) Scaled(s int) Intrinsics {
	fs := float64(s)
	return Intrinsics{
		Fx: in.Fx / fs, Fy: in.Fy / fs,
		Cx: in.Cx / fs, Cy: in.Cy / fs,
		W: in.W / s, H: in.H / s,
	}
}

// Validate reports whether the intrinsics describe a usable camera.
func (in Intrinsics) Validate() error {
	if in.W <= 0 || in.H <= 0 {
		return fmt.Errorf("camera: non-positive image size %dx%d", in.W, in.H)
	}
	if in.Fx <= 0 || in.Fy <= 0 {
		return fmt.Errorf("camera: non-positive focal length (%g, %g)", in.Fx, in.Fy)
	}
	return nil
}

// Project maps a point in camera coordinates (+Z forward) to pixel
// coordinates. ok is false when the point is at or behind the camera plane.
func (in Intrinsics) Project(p vecmath.Vec3) (px vecmath.Vec2, ok bool) {
	if p.Z <= 1e-8 {
		return vecmath.Vec2{}, false
	}
	return vecmath.Vec2{
		X: in.Fx*p.X/p.Z + in.Cx,
		Y: in.Fy*p.Y/p.Z + in.Cy,
	}, true
}

// Unproject maps a pixel and metric depth to a point in camera coordinates.
func (in Intrinsics) Unproject(px vecmath.Vec2, depth float64) vecmath.Vec3 {
	return vecmath.Vec3{
		X: (px.X - in.Cx) / in.Fx * depth,
		Y: (px.Y - in.Cy) / in.Fy * depth,
		Z: depth,
	}
}

// ProjectionJacobian returns the 2x3 Jacobian d(pixel)/d(camera point) at p,
// laid out as two row vectors (du/dp, dv/dp). Valid only for p.Z > 0.
func (in Intrinsics) ProjectionJacobian(p vecmath.Vec3) (du, dv vecmath.Vec3) {
	iz := 1 / p.Z
	iz2 := iz * iz
	du = vecmath.Vec3{X: in.Fx * iz, Y: 0, Z: -in.Fx * p.X * iz2}
	dv = vecmath.Vec3{X: 0, Y: in.Fy * iz, Z: -in.Fy * p.Y * iz2}
	return du, dv
}

// InImage reports whether the pixel lies inside the image bounds.
func (in Intrinsics) InImage(px vecmath.Vec2) bool {
	return px.X >= 0 && px.Y >= 0 && px.X < float64(in.W) && px.Y < float64(in.H)
}

// Camera bundles intrinsics with a world-to-camera pose.
type Camera struct {
	Intr Intrinsics
	Pose vecmath.Pose // world -> camera
}

// ProjectWorld maps a world point to pixel coordinates and camera-space depth.
func (c Camera) ProjectWorld(p vecmath.Vec3) (px vecmath.Vec2, depth float64, ok bool) {
	pc := c.Pose.Apply(p)
	px, ok = c.Intr.Project(pc)
	return px, pc.Z, ok
}

// UnprojectToWorld maps a pixel with depth to world coordinates.
func (c Camera) UnprojectToWorld(px vecmath.Vec2, depth float64) vecmath.Vec3 {
	return c.Pose.Inverse().Apply(c.Intr.Unproject(px, depth))
}

// Ray returns the origin (camera center) and unit direction in world
// coordinates of the viewing ray through pixel (x+0.5, y+0.5).
func (c Camera) Ray(x, y int) (origin, dir vecmath.Vec3) {
	origin = c.Pose.Center()
	pc := c.Intr.Unproject(vecmath.Vec2{X: float64(x) + 0.5, Y: float64(y) + 0.5}, 1)
	world := c.Pose.Inverse().Apply(pc)
	return origin, world.Sub(origin).Normalized()
}
