package slam

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"ags/internal/hw/trace"
	"ags/internal/vecmath"
)

// Digest returns a SHA-256 over everything a run's determinism contract
// covers: the estimated and ground-truth trajectories, every per-frame
// algorithm decision, the live Gaussian map, and the per-frame workload
// scalars of the trace. Two runs of the same frames are equivalent exactly
// when their digests match, so the cross-session regression tests,
// perf-serve, and ags-slam -sessions compare digests instead of walking the
// structures.
//
// The map hash is remap-aware: it covers the active Gaussians in packed
// (ascending-ID) order and skips dead slots, so it is invariant under
// compaction — a run with Config.CompactEvery > 0, a snapshot/restore
// mid-stream, and the never-compacted run of the same frames all digest
// identically. Dead slots only exist between a prune and the next
// compaction, never differ between equivalent runs in what matters (they are
// invisible to rendering), and their parameters keep drifting under Adam
// momentum decay — hashing them would make the digest depend on exactly the
// bookkeeping compaction exists to discard.
func (r *Result) Digest() [32]byte {
	h := sha256.New()
	hashU64(h, uint64(len(r.Sequence))) // length-prefix every variable-length field
	h.Write([]byte(r.Sequence))
	hashPoses(h, r.Poses)
	hashPoses(h, r.GT)
	hashU64(h, uint64(len(r.Info)))
	for _, inf := range r.Info {
		hashF64(h, float64(inf.Covisibility))
		hashF64(h, float64(inf.KeyCovisibility))
		hashBool(h, inf.IsKeyFrame)
		hashBool(h, inf.CoarseOnly)
		hashU64(h, uint64(inf.RefineIters))
		hashF64(h, inf.FPRate)
		hashBool(h, inf.FPValid)
	}
	hashU64(h, uint64(r.Cloud.NumActive()))
	for id := 0; id < r.Cloud.Len(); id++ {
		if !r.Cloud.IsActive(id) {
			continue
		}
		g := r.Cloud.At(id)
		hashVec3(h, g.Mean)
		hashVec3(h, g.LogScale)
		hashF64(h, g.Rot.W)
		hashVec3(h, vecmath.Vec3{X: g.Rot.X, Y: g.Rot.Y, Z: g.Rot.Z})
		hashVec3(h, g.Color)
		hashF64(h, g.Logit)
	}
	hashU64(h, uint64(len(r.Trace.Frames)))
	for i := range r.Trace.Frames {
		ft := &r.Trace.Frames[i]
		hashF64(h, ft.Covisibility)
		hashBool(h, ft.IsKeyFrame)
		hashBool(h, ft.CoarseOnly)
		hashU64(h, uint64(ft.CodecSADOps))
		hashU64(h, uint64(ft.CoarseMACs))
		hashU64(h, uint64(ft.NumGaussians))
		hashU64(h, uint64(ft.SkippedGaussians))
		hashStats(h, &ft.Track)
		hashStats(h, &ft.Map)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func hashStats(h hash.Hash, s *trace.RenderStats) {
	hashU64(h, uint64(s.Iters))
	hashU64(h, uint64(s.AlphaOps))
	hashU64(h, uint64(s.BlendOps))
	hashU64(h, uint64(s.BackwardOps))
	hashU64(h, uint64(s.Splats))
	hashU64(h, uint64(s.TileEntries))
	hashU64(h, uint64(s.Pixels))
}

func hashPoses(h hash.Hash, poses []vecmath.Pose) {
	hashU64(h, uint64(len(poses)))
	for _, p := range poses {
		hashF64(h, p.R.W)
		hashVec3(h, vecmath.Vec3{X: p.R.X, Y: p.R.Y, Z: p.R.Z})
		hashVec3(h, p.T)
	}
}

func hashVec3(h hash.Hash, v vecmath.Vec3) {
	hashF64(h, v.X)
	hashF64(h, v.Y)
	hashF64(h, v.Z)
}

func hashF64(h hash.Hash, v float64) {
	hashU64(h, math.Float64bits(v))
}

func hashBool(h hash.Hash, b bool) {
	if b {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}

func hashU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}
