package bench

import (
	"fmt"
	"io"

	"ags/internal/camera"
	"ags/internal/gauss"
	"ags/internal/slam"
	"ags/internal/splat"
)

// compactSeqs are the sequences perf-compact measures.
func compactSeqs() []string { return []string{"Desk", "Xyz"} }

// compactPruneOverride turns pruning up far enough to deactivate slots within
// the suite's short runs (the default PruneOpacity never fires against
// opacities seeded at 0.999), with compaction off — the unbounded-growth
// baseline.
func compactPruneOverride(cfg *slam.Config) {
	cfg.Mapper.LRLogit = 0.2
	cfg.Mapper.PruneOpacity = 0.25
	cfg.PruneEvery = 2
	cfg.CompactEvery = 0
	cfg.CompactInactiveFrac = 0
}

// compactOnOverride is the same pruning pressure with periodic compaction.
func compactOnOverride(cfg *slam.Config) {
	compactPruneOverride(cfg)
	cfg.CompactEvery = 4
	cfg.CompactInactiveFrac = 0.25
}

func compactSpecs() []RunSpec {
	var out []RunSpec
	for _, name := range compactSeqs() {
		out = append(out,
			RunSpec{Seq: name, Variant: VarAGS, Key: "prune", Override: compactPruneOverride},
			RunSpec{Seq: name, Variant: VarAGS, Key: "prune+compact", Override: compactOnOverride},
		)
	}
	return out
}

func expPerfCompact() Experiment {
	return expDef{
		id: "perf-compact", paper: "Perf: map compaction — resident slots, reclaimed bytes and render cost, digest-invariant",
		needs:  compactSpecs(),
		render: (*Suite).PerfCompact,
	}
}

// PerfCompact measures what bounding the map buys: under identical pruning
// pressure it compares a never-compacted run against a periodically-compacted
// one, reporting resident slots, the reclaimed slot/byte totals from the
// trace accounting, and the warm projection+render cost over each run's final
// cloud (the dead-slot walk the compacted map avoids). The two runs' Result
// digests are asserted bitwise identical first — compaction must be a pure
// resource optimization.
func (s *Suite) PerfCompact(w io.Writer) error {
	const renderReps = 10
	t := NewTable(fmt.Sprintf("Perf: Gaussian-map compaction (%dx%d, %d frames)",
		s.Cfg.Width, s.Cfg.Height, s.Cfg.Frames),
		"Seq", "Variant", "Slots", "Active", "Dead", "Pruned", "Reclaimed", "Reclaimed KB", "Render ms")
	for _, name := range compactSeqs() {
		sparse, err := s.Run(RunSpec{Seq: name, Variant: VarAGS, Key: "prune", Override: compactPruneOverride})
		if err != nil {
			return err
		}
		dense, err := s.Run(RunSpec{Seq: name, Variant: VarAGS, Key: "prune+compact", Override: compactOnOverride})
		if err != nil {
			return err
		}
		if sparse.Result.Digest() != dense.Result.Digest() {
			return fmt.Errorf("bench: perf-compact: %s: compaction changed the Result digest", name)
		}
		st := dense.Result.Trace.Totals()
		if st.PrunedGaussians == 0 {
			return fmt.Errorf("bench: perf-compact: %s: pruning pressure never fired; nothing measured", name)
		}
		if st.CompactedSlots == 0 {
			return fmt.Errorf("bench: perf-compact: %s: compaction never reclaimed a slot", name)
		}
		for _, row := range []struct {
			variant string
			b       *Bundle
		}{{"prune", sparse}, {"prune+compact", dense}} {
			cloud := row.b.Result.Cloud
			tot := row.b.Result.Trace.Totals()
			ms := renderWallMS(row.b, renderReps)
			t.AddRow(name, row.variant,
				cloud.Len(), cloud.NumActive(), cloud.NumInactive(),
				tot.PrunedGaussians, tot.CompactedSlots,
				fmt.Sprintf("%.1f", float64(tot.ReclaimedBytes)/1024),
				fmt.Sprintf("%.2f", ms))
		}
	}
	t.AddNote("prune and prune+compact Result digests asserted bitwise identical (compaction is output-transparent)")
	t.AddNote("Render ms: %d warm renders of the final cloud from the last pose; the compacted map skips the dead-slot walk", renderReps)
	t.AddNote("Reclaimed KB = reclaimed slots x %d B (Gaussian parameters + active flag)", gauss.SlotBytes)
	t.Write(w)
	return nil
}

// renderWallMS times reps warm renders of the bundle's final cloud from its
// last estimated pose through one reused context, returning milliseconds per
// render.
func renderWallMS(b *Bundle, reps int) float64 {
	cam := camera.Camera{Intr: b.Seq.Intr, Pose: b.Result.Poses[len(b.Result.Poses)-1]}
	pool := slam.DefaultServer().ContextPool()
	ctx := pool.Acquire(b.Seq.Intr.W, b.Seq.Intr.H)
	defer pool.Release(ctx)
	ctx.Render(b.Result.Cloud, cam, splat.Options{}) // warm the context's buffers
	start := wallNow()
	for i := 0; i < reps; i++ {
		ctx.Render(b.Result.Cloud, cam, splat.Options{})
	}
	return float64(wallSince(start).Nanoseconds()) / 1e6 / float64(reps)
}
