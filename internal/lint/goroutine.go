package lint

import (
	"fmt"
	"go/ast"
)

// checkGoroutineSite flags `go` statements in critical packages whose
// enclosing function is not on the approved launch-site allowlist
// (Config.GoroutineSites). The repo's concurrency is deliberately confined
// to a handful of reviewed worker pools whose reductions run in a fixed
// order; a goroutine launched anywhere else is presumed to bypass that
// design until it is either added to the list or justified with
// //ags:allow(goroutine-site, reason).
func checkGoroutineSite(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := p.pkg.Path + "." + funcKey(fd)
			if p.cfg.GoroutineSites[key] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.reportAt(g.Pos(), CheckGoroutine,
						fmt.Sprintf("go statement in %s, which is not an approved worker-pool launch site — add it to the allowlist (with its ordered-reduction design reviewed) or justify with //ags:allow(goroutine-site, reason)", key))
				}
				return true
			})
		}
	}
}

// funcKey renders a declaration the way the allowlist spells it: Name for
// functions, (*T).Name / (T).Name for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}
