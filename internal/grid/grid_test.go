package grid

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/scene"
	"ags/internal/slam"
)

func tinySceneCfg() scene.Config {
	return scene.Config{Width: 40, Height: 32, Frames: 6, Seed: 1}
}

func tinySlamCfg() slam.Config {
	cfg := slam.DefaultConfig(40, 32)
	cfg.TrackIters = 8
	cfg.IterT = 3
	cfg.Mapper.MapIters = 4
	cfg.Mapper.DensifyStride = 2
	cfg.EnableMAT, cfg.EnableGCM = true, true
	return cfg
}

func tinyJob(id, seq string) Job {
	return Job{ID: id, Seq: seq, Scene: tinySceneCfg(), Cfg: tinySlamCfg()}
}

// startNode boots one worker node behind a chaos injector (so tests can kill
// it uncleanly) and returns its address and injector.
func startNode(t *testing.T, name string, jobs fleet.JobRunner) (string, *chaos.Injector) {
	t.Helper()
	in := chaos.New(chaos.Config{Seed: 0x6D1D})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := fleet.NewNode(fleet.NodeConfig{Name: name, Jobs: jobs})
	addr, err := n.StartOn(in.Listen(ln))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !in.Killed() {
			n.Close()
		}
	})
	return addr, in
}

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSchedulerMatchesLocalRun is the subsystem gate at test scale: two specs
// over two workers must reproduce the local slam.Run digests bit for bit,
// spread across both workers, with at least one sampled replay confirmation.
func TestSchedulerMatchesLocalRun(t *testing.T) {
	addrA, _ := startNode(t, "wk-a", NewWorker())
	addrB, _ := startNode(t, "wk-b", NewWorker())
	sch := newTestScheduler(t, Config{Workers: []string{addrA, addrB}, Window: 1, SampleEvery: 2})

	for _, name := range []string{"Desk", "Xyz"} {
		seq, err := scene.Generate(name, tinySceneCfg())
		if err != nil {
			t.Fatal(err)
		}
		local, err := slam.Run(tinySlamCfg(), seq)
		if err != nil {
			t.Fatal(err)
		}
		res, info, err := sch.ExecuteSpec(tinyJob(name+"/ags/", name), seq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Digest() != local.Digest() {
			t.Fatalf("%s on %s: remote digest diverges from local run", name, info.Worker)
		}
		if info.WireBytes <= 0 {
			t.Fatalf("%s: no wire bytes attributed", name)
		}
	}

	m := sch.Metrics()
	if m.Jobs != 2 || m.Retries != 0 || m.Evictions != 0 {
		t.Fatalf("metrics %+v: want 2 jobs, no retries, no evictions", m)
	}
	if m.Verified < 1 {
		t.Fatal("no job confirmed by sampled local replay")
	}
	for _, pw := range m.PerWorker {
		if pw.Jobs != 1 {
			t.Fatalf("worker %s ran %d jobs; serial dispatch must round-robin", pw.Name, pw.Jobs)
		}
	}
	if m.WireBytes <= 0 {
		t.Fatal("no bytes accounted over the wire")
	}
}

// TestSchedulerRetriesOverKilledWorker kills the idle worker mid-sweep: its
// job must re-place on the survivor after exactly one eviction, and the
// result must still match the local digest.
func TestSchedulerRetriesOverKilledWorker(t *testing.T) {
	addrA, _ := startNode(t, "wk-a", NewWorker())
	addrB, injB := startNode(t, "wk-b", NewWorker())
	sch := newTestScheduler(t, Config{Workers: []string{addrA, addrB}, Window: 1})

	seq, err := scene.Generate("Desk", tinySceneCfg())
	if err != nil {
		t.Fatal(err)
	}
	local, err := slam.Run(tinySlamCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 lands on wk-a (declaration order). Kill wk-b — job 2's natural
	// least-loaded target — before dispatching it.
	if _, _, err := sch.ExecuteSpec(tinyJob("Desk/ags/1", "Desk"), seq); err != nil {
		t.Fatal(err)
	}
	injB.Kill()
	res, info, err := sch.ExecuteSpec(tinyJob("Desk/ags/2", "Desk"), seq)
	if err != nil {
		t.Fatalf("sweep did not survive the kill: %v", err)
	}
	if info.Worker != "wk-a" {
		t.Fatalf("retried job ran on %q, want the survivor wk-a", info.Worker)
	}
	if res.Digest() != local.Digest() {
		t.Fatal("retried job's digest diverges from local run")
	}
	m := sch.Metrics()
	if m.Retries < 1 {
		t.Fatalf("metrics %+v: kill produced no retry", m)
	}
	if m.Evictions != 1 {
		t.Fatalf("metrics %+v: want exactly 1 eviction", m)
	}
}

// badRunner replies with bytes that are not a job-result payload.
type badRunner struct{}

func (badRunner) RunJob([]byte) ([]byte, error) { return []byte("not a job result"), nil }

// TestMalformedReplySurfacesWithoutWedging pins the live-worker failure path:
// a decodable-frame/undecodable-payload reply must surface ErrBadResult — not
// retry, not hang — and the scheduler must stay dispatchable afterwards.
func TestMalformedReplySurfacesWithoutWedging(t *testing.T) {
	addr, _ := startNode(t, "wk-bad", badRunner{})
	sch := newTestScheduler(t, Config{Workers: []string{addr}, Window: 1})
	seq, err := scene.Generate("Desk", tinySceneCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // twice: a wedged window would hang the second call
		done := make(chan error, 1)
		//ags:allow(goroutine-site, test watchdog: bounds a call that must not block)
		go func() {
			_, _, err := sch.ExecuteSpec(tinyJob("Desk/ags/", "Desk"), seq)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrBadResult) {
				t.Fatalf("call %d: err = %v, want ErrBadResult", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("call %d wedged: in-flight window slot not released", i)
		}
	}
	if m := sch.Metrics(); m.Retries != 0 || m.Evictions != 0 {
		t.Fatalf("metrics %+v: malformed result from a live worker must not retry or evict", m)
	}
}

// TestRemoteRunFailureCarriesJobID pins mid-run worker failures: the error
// reaches the coordinator with the job's identity attached, classified as a
// live-worker failure (no retry — the same job would fail identically
// elsewhere).
func TestRemoteRunFailureCarriesJobID(t *testing.T) {
	addr, _ := startNode(t, "wk-a", NewWorker())
	sch := newTestScheduler(t, Config{Workers: []string{addr}})
	job := tinyJob("NoSuchSeq/ags/", "NoSuchSeq") // unknown sequence fails remotely
	_, _, err := sch.ExecuteSpec(job, nil)
	if err == nil {
		t.Fatal("job for an unknown sequence succeeded")
	}
	if !strings.Contains(err.Error(), job.ID) {
		t.Fatalf("error does not name the job: %v", err)
	}
	if m := sch.Metrics(); m.Retries != 0 || m.Jobs != 0 {
		t.Fatalf("metrics %+v: remote run failure must not retry or count as done", m)
	}
}

// TestDigestMismatchSurfaces routes a real worker's reply through a mutator
// that flips one digest bit: the coordinator's recomputation must catch it.
func TestDigestMismatchSurfaces(t *testing.T) {
	real := NewWorker()
	tamper := runnerFunc(func(payload []byte) ([]byte, error) {
		reply, err := real.RunJob(payload)
		if err != nil {
			return nil, err
		}
		r, err := decodeJobResult(reply)
		if err != nil {
			return nil, err
		}
		r.Digest[0] ^= 0x01
		return encodeJobResult(nil, &r), nil
	})
	addr, _ := startNode(t, "wk-tamper", tamper)
	sch := newTestScheduler(t, Config{Workers: []string{addr}})
	seq, err := scene.Generate("Desk", tinySceneCfg())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sch.ExecuteSpec(tinyJob("Desk/ags/", "Desk"), seq)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
}

type runnerFunc func([]byte) ([]byte, error)

func (f runnerFunc) RunJob(p []byte) ([]byte, error) { return f(p) }

// TestAllWorkersDown pins the terminal case: when every worker is gone and a
// redial pass recovers none, ExecuteSpec reports ErrNoWorkers instead of
// spinning.
func TestAllWorkersDown(t *testing.T) {
	addr, inj := startNode(t, "wk-a", NewWorker())
	sch := newTestScheduler(t, Config{Workers: []string{addr}, Attempts: 2})
	inj.Kill()
	seq, err := scene.Generate("Desk", tinySceneCfg())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sch.ExecuteSpec(tinyJob("Desk/ags/", "Desk"), seq)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestNewFailsFastOnUnreachableWorker: a misspelled address must fail
// construction, not silently shrink the grid.
func TestNewFailsFastOnUnreachableWorker(t *testing.T) {
	addr, _ := startNode(t, "wk-a", NewWorker())
	_, err := New(Config{Workers: []string{addr, "127.0.0.1:1"}})
	if err == nil {
		t.Fatal("New accepted an unreachable worker")
	}
	if !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("error does not name the dead worker: %v", err)
	}
}

// TestWorkerSequenceCacheSingleflights: two jobs sharing a recipe must share
// one dataset generation on the worker.
func TestWorkerSequenceCache(t *testing.T) {
	w := NewWorker()
	job := tinyJob("Desk/ags/", "Desk")
	payload := encodeJob(nil, &job)
	if _, err := w.RunJob(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunJob(payload); err != nil {
		t.Fatal(err)
	}
	if w.Jobs() != 2 {
		t.Fatalf("worker counted %d jobs, want 2", w.Jobs())
	}
	w.mu.Lock()
	cached := len(w.seqs)
	w.mu.Unlock()
	if cached != 1 {
		t.Fatalf("worker cached %d sequences, want 1 shared entry", cached)
	}
}

// TestWorkerRejectsGarbageJob: an undecodable job payload errors cleanly.
func TestWorkerRejectsGarbageJob(t *testing.T) {
	if _, err := NewWorker().RunJob([]byte("garbage")); err == nil {
		t.Fatal("worker accepted a garbage job payload")
	}
}
