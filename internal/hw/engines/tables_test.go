package engines

import (
	"math/rand"
	"testing"

	"ags/internal/hw/dram"
)

// syntheticTiles builds tile lists where hotIDs appear in every tile and the
// rest are unique per tile.
func syntheticTiles(nTiles, hotPerTile, coldPerTile int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	hot := make([]int32, hotPerTile)
	for i := range hot {
		hot[i] = int32(i)
	}
	next := int32(hotPerTile)
	tiles := make([][]int32, nTiles)
	for t := range tiles {
		list := append([]int32(nil), hot...)
		for c := 0; c < coldPerTile; c++ {
			list = append(list, next)
			next++
		}
		rng.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
		tiles[t] = list
	}
	return tiles
}

func TestLoggingHotColdSavesTraffic(t *testing.T) {
	tiles := syntheticTiles(16, 20, 10, 1)
	p := DefaultTableParams(false)
	res := SimulateLogging(tiles, p, dram.LPDDR4())
	if res.OptAccesses >= res.NaiveAccesses {
		t.Errorf("optimization saved nothing: %d vs %d", res.OptAccesses, res.NaiveAccesses)
	}
	if res.OptNs >= res.NaiveNs {
		t.Errorf("optimization not faster: %v vs %v", res.OptNs, res.NaiveNs)
	}
	if res.HotHits == 0 {
		t.Error("no hot hits despite repeated gaussians")
	}
	// Expected naive: 16 tiles * 30 unique entries * 2 accesses.
	if res.NaiveAccesses != 16*30*2 {
		t.Errorf("naive accesses = %d", res.NaiveAccesses)
	}
}

func TestLoggingAllColdNoSavings(t *testing.T) {
	// Every Gaussian appears in exactly one tile: nothing is hot.
	tiles := syntheticTiles(8, 0, 16, 2)
	p := DefaultTableParams(false)
	res := SimulateLogging(tiles, p, dram.LPDDR4())
	if res.HotHits != 0 {
		t.Errorf("hot hits on all-unique workload: %d", res.HotHits)
	}
	if res.OptAccesses != res.NaiveAccesses {
		t.Errorf("all-cold workload should match naive: %d vs %d", res.OptAccesses, res.NaiveAccesses)
	}
}

func TestLoggingBufferCapacityBounds(t *testing.T) {
	// More hot gaussians than buffer entries: savings bounded by capacity.
	tiles := syntheticTiles(4, 3000, 0, 3)
	p := TableParams{HotEntries: 64, EntryBytes: 8, HotWindowTiles: 4}
	res := SimulateLogging(tiles, p, dram.LPDDR4())
	// Only 64 of 3000 hot candidates fit; the rest go the cold path.
	if res.HotHits > 64*4 {
		t.Errorf("hot hits %d exceed buffer capacity bound", res.HotHits)
	}
	if res.OptAccesses >= res.NaiveAccesses {
		t.Error("no savings at all despite some buffered entries")
	}
}

// TestLoggingDeterministicUnderCapacityPressure: when more Gaussians qualify
// as hot than fit, the selection and flush order must be a pure function of
// the trace — map iteration order used to leak into OptAccesses/OptNs and
// made every speedup table differ between identical invocations.
func TestLoggingDeterministicUnderCapacityPressure(t *testing.T) {
	tiles := syntheticTiles(8, 500, 3, 5)
	p := TableParams{HotEntries: 64, EntryBytes: 8, HotWindowTiles: 4}
	ref := SimulateLogging(tiles, p, dram.LPDDR4())
	for i := 0; i < 10; i++ {
		got := SimulateLogging(tiles, p, dram.LPDDR4())
		if got != ref {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, ref)
		}
	}
}

func TestSkippingStreamBeatsPerTileFetch(t *testing.T) {
	tiles := syntheticTiles(16, 30, 5, 4)
	p := DefaultTableParams(false)
	res := SimulateSkipping(tiles, 4000, p, dram.LPDDR4())
	if res.OptNs >= res.NaiveNs {
		t.Errorf("streaming not faster: %v vs %v", res.OptNs, res.NaiveNs)
	}
	if res.StreamBytes != 4000*8 {
		t.Errorf("stream bytes = %d", res.StreamBytes)
	}
}

func TestDefaultTableParams(t *testing.T) {
	e := DefaultTableParams(false)
	s := DefaultTableParams(true)
	if s.HotEntries != 2*e.HotEntries {
		t.Errorf("server table not double: %d vs %d", s.HotEntries, e.HotEntries)
	}
}
