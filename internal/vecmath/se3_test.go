package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func randomPose(rng *rand.Rand) Pose {
	axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	return Pose{
		R: QuatFromAxisAngle(axis, rng.Float64()*2.5),
		T: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
	}
}

func poseNear(a, b Pose, tol float64) bool {
	return a.AngleBetween(b) < tol && a.T.Sub(b.T).Norm() < tol
}

// AngleBetween is a test helper comparing rotations only.
func (p Pose) AngleBetween(q Pose) float64 { return p.R.AngleTo(q.R) }

func TestQuatRotateMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		q := QuatFromAxisAngle(Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}, rng.Float64()*3)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecNear(q.Rotate(v), q.Mat3().MulVec(v), 1e-10) {
			t.Fatalf("quat rotate != matrix rotate")
		}
	}
}

func TestQuatMat3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		q := QuatFromAxisAngle(Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}, rng.Float64()*3)
		q2 := QuatFromMat3(q.Mat3())
		if q.AngleTo(q2) > 1e-8 {
			t.Fatalf("roundtrip angle error %v", q.AngleTo(q2))
		}
	}
}

func TestQuatRotationPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 60; i++ {
		q := QuatFromAxisAngle(Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}, rng.Float64()*3)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !near(q.Rotate(v).Norm(), v.Norm(), 1e-10) {
			t.Fatal("rotation changed vector length")
		}
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	a := QuatFromAxisAngle(Vec3{0, 0, 1}, 0.3)
	b := QuatFromAxisAngle(Vec3{0, 1, 0}, 1.2)
	if a.Slerp(b, 0).AngleTo(a) > 1e-9 {
		t.Error("slerp(0) != a")
	}
	if a.Slerp(b, 1).AngleTo(b) > 1e-9 {
		t.Error("slerp(1) != b")
	}
	// Midpoint should be equidistant.
	mid := a.Slerp(b, 0.5)
	if math.Abs(mid.AngleTo(a)-mid.AngleTo(b)) > 1e-9 {
		t.Error("slerp midpoint not equidistant")
	}
}

func TestPoseComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		p := randomPose(rng)
		q := randomPose(rng)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		// Compose semantics.
		if !vecNear(p.Compose(q).Apply(v), p.Apply(q.Apply(v)), 1e-9) {
			t.Fatal("compose semantics broken")
		}
		// Inverse.
		if !vecNear(p.Inverse().Apply(p.Apply(v)), v, 1e-9) {
			t.Fatal("inverse broken")
		}
	}
}

func TestPoseMat4Agrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		p := randomPose(rng)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecNear(p.Mat4().MulPoint(v), p.Apply(v), 1e-10) {
			t.Fatal("Mat4 disagrees with Apply")
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 80; i++ {
		tw := Twist{
			V: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			W: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.8),
		}
		back := LogSE3(ExpSE3(tw))
		if !vecNear(back.V, tw.V, 1e-7) || !vecNear(back.W, tw.W, 1e-7) {
			t.Fatalf("exp/log roundtrip: got %+v want %+v", back, tw)
		}
	}
}

func TestExpZeroIsIdentity(t *testing.T) {
	p := ExpSE3(Twist{})
	if !poseNear(p, PoseIdentity(), 1e-12) {
		t.Errorf("exp(0) = %+v", p)
	}
}

func TestLogIdentityIsZero(t *testing.T) {
	tw := LogSE3(PoseIdentity())
	if tw.Norm() > 1e-12 {
		t.Errorf("log(I) = %+v", tw)
	}
}

func TestRetractSmallStep(t *testing.T) {
	// Retracting by a small twist should move the pose by about the twist
	// magnitude and stay on the manifold (unit quaternion).
	p := randomPose(rand.New(rand.NewSource(12)))
	small := Twist{V: Vec3{1e-3, 0, 0}}
	q := p.Retract(small)
	if !near(q.R.Norm(), 1, 1e-9) {
		t.Error("retract broke quaternion normalization")
	}
	if d := q.T.Sub(p.T).Norm(); d > 2e-3 || d == 0 {
		t.Errorf("retract moved translation by %v", d)
	}
}

func TestPoseCenter(t *testing.T) {
	// A camera looking from (0,0,-5) toward the origin: center must be the
	// world-space camera position regardless of orientation.
	world := Vec3{0, 0, -5}
	view := Pose{R: QuatFromAxisAngle(Vec3{0, 1, 0}, 0.4)}
	view.T = view.R.Rotate(world).Neg()
	if !vecNear(view.Center(), world, 1e-9) {
		t.Errorf("center = %v, want %v", view.Center(), world)
	}
}

func TestTranslationTo(t *testing.T) {
	a := Pose{R: QuatIdentity(), T: Vec3{0, 0, 0}}
	b := Pose{R: QuatIdentity(), T: Vec3{3, 4, 0}}
	// For identity rotations, center = -T.
	if !near(a.TranslationTo(b), 5, 1e-9) {
		t.Errorf("TranslationTo = %v", a.TranslationTo(b))
	}
}
