// Package plain lives outside the critical prefixes: the determinism checks
// (maprange, nondetsource, goroutine-site) do not apply here, so constructs
// that would be findings in x/crit stay clean.
package plain

import "time"

// KeysUnsorted leaks map order — a maprange finding in a critical package,
// silent here.
func KeysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Launch spawns from an unregistered site — silent outside x/crit.
func Launch(done chan struct{}) {
	go close(done)
}

// Stamp reads the wall clock — silent outside x/crit.
func Stamp() time.Time {
	return time.Now()
}
