package slam

import (
	"fmt"

	"ags/internal/camera"
	"ags/internal/frame"
)

// Binary transport helpers for the fleet layer (internal/fleet): the wire
// protocol ships configurations, camera intrinsics and RGB-D frames between
// hosts, and these wrappers expose the snapshot codec's encoders for those
// pieces so the field lists live in exactly one place (snapshot.go). The
// encoding is the snapshot payload encoding — little-endian, length-prefixed
// slices, float64 bit patterns preserved exactly — so a frame pushed through
// the wire is byte-identical to one pushed in process, and Result digests
// cannot diverge across the network boundary. Framing, versioning and
// checksumming are the transport's job (see fleet's message format), not
// these helpers'.

// AppendConfig appends the binary encoding of c to buf and returns the
// extended slice.
func AppendConfig(buf []byte, c *Config) []byte {
	e := snapEnc{buf: buf}
	encodeConfig(&e, c)
	return e.buf
}

// DecodeConfig decodes a configuration produced by AppendConfig. The whole
// input must be consumed.
func DecodeConfig(b []byte) (Config, error) {
	d := &snapDec{b: b}
	var c Config
	decodeConfig(d, &c)
	return c, d.finish("config")
}

// AppendIntrinsics appends the binary encoding of in to buf.
func AppendIntrinsics(buf []byte, in *camera.Intrinsics) []byte {
	e := snapEnc{buf: buf}
	encodeIntrinsics(&e, in)
	return e.buf
}

// DecodeIntrinsics decodes intrinsics produced by AppendIntrinsics.
func DecodeIntrinsics(b []byte) (camera.Intrinsics, error) {
	d := &snapDec{b: b}
	var in camera.Intrinsics
	decodeIntrinsics(d, &in)
	return in, d.finish("intrinsics")
}

// AppendFrame appends the binary encoding of one RGB-D frame to buf. A
// steadily pushing producer reuses its buffer (buf[:0]), so the per-frame
// encode allocates only until the buffer reaches its high-water mark.
func AppendFrame(buf []byte, f *frame.Frame) []byte {
	e := snapEnc{buf: buf}
	encodeFrame(&e, f)
	return e.buf
}

// DecodeFrame decodes a frame produced by AppendFrame into freshly allocated
// storage (the pipeline retains frames, so they must not alias transport
// buffers). The whole input must be consumed.
func DecodeFrame(b []byte) (*frame.Frame, error) {
	d := &snapDec{b: b}
	f := decodeFrame(d)
	if err := d.finish("frame"); err != nil {
		return nil, err
	}
	return f, nil
}

// finish closes out a wire decode: the sticky error wins, and unconsumed
// trailing bytes are an encoder/decoder mismatch rather than silence.
func (d *snapDec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("slam: %s decode: %w", what, d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("slam: %s decode: %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}
