package platform

import (
	"ags/internal/hw/trace"
)

// GPU is a roofline-plus-launch-overhead model of a CUDA GPU running the
// SplaTAM-style pipeline. Two effects dominate at SLAM frame sizes: per-kernel
// launch overhead (hundreds of small kernels per frame) and low achieved
// efficiency of the irregular splatting kernels.
type GPU struct {
	Model            string
	PeakGFLOPS       float64
	BWGBs            float64
	Efficiency       float64 // achieved fraction of peak on splatting kernels
	KernelOverheadUs float64 // per kernel launch + sync
	KernelsPerIter   int     // preprocess/sort/render/backward/loss/step
	BusyPowerW       float64

	// RunsAGSAlgorithm marks the GPU-AGS configuration of Fig. 18: the AGS
	// algorithm executed on the GPU, which must run ME serially and pay for
	// the contribution-table scatter/gather in global memory.
	RunsAGSAlgorithm bool
}

// A100 returns the server GPU model (§6.1).
func A100() *GPU {
	return &GPU{
		Model:            "A100",
		PeakGFLOPS:       19500,
		BWGBs:            1555,
		Efficiency:       0.06,
		KernelOverheadUs: 10,
		KernelsPerIter:   7,
		BusyPowerW:       60, // utilization-scaled draw of small-kernel SLAM, not TDP
	}
}

// Xavier returns the edge GPU model (Jetson AGX Xavier, §6.1).
func Xavier() *GPU {
	return &GPU{
		Model:            "AGX-Xavier",
		PeakGFLOPS:       1410,
		BWGBs:            137,
		Efficiency:       0.045,
		KernelOverheadUs: 22,
		KernelsPerIter:   7,
		BusyPowerW:       18, // utilization-scaled module power
	}
}

// WithAGSAlgorithm returns a copy configured as the GPU-AGS ablation point.
func (g *GPU) WithAGSAlgorithm() *GPU {
	cp := *g
	cp.RunsAGSAlgorithm = true
	cp.Model += "-AGS"
	return &cp
}

// Name implements Platform.
func (g *GPU) Name() string { return g.Model }

// taskNs is the roofline time of one splatting task plus launch overheads.
func (g *GPU) taskNs(s *trace.RenderStats) (float64, int64) {
	if s.Iters == 0 {
		return 0, 0
	}
	flops := splatFlops(s)
	bytes := splatBytes(s)
	compute := flops / (g.PeakGFLOPS * g.Efficiency) // ns (GFLOPS = flop/ns)
	mem := float64(bytes) / g.BWGBs
	t := compute
	if mem > t {
		t = mem
	}
	t += float64(s.Iters*g.KernelsPerIter) * g.KernelOverheadUs * 1e3
	return t, bytes
}

// Frame implements Platform.
func (g *GPU) Frame(f *trace.FrameTrace) Breakdown {
	var b Breakdown
	if g.RunsAGSAlgorithm {
		// Serial ME on the GPU: the SAD search vectorizes poorly (short
		// dependent loops per block); model at 1% of peak plus a dedicated
		// kernel launch per frame pair.
		if f.CodecSADOps > 0 {
			b.CodecNs = float64(f.CodecSADOps)*flopsSAD/(g.PeakGFLOPS*0.01) +
				2*g.KernelOverheadUs*1e3
		}
		// Coarse backbone (Droid-SLAM-style CNN+ConvGRU): at SLAM frame sizes
		// and batch 1 the small conv layers and sequential GRU steps achieve
		// only a few percent of peak, with a launch per layer per GRU step.
		// This is the main reason Fig. 18's GPU-AGS gains so little.
		if f.CoarseMACs > 0 {
			b.CoarseNs = float64(f.CoarseMACs)*flopsMAC/(g.PeakGFLOPS*0.02) +
				float64(30)*g.KernelOverheadUs*1e3
		}
	}
	trackNs, trackBytes := g.taskNs(&f.Track)
	b.TrackNs = trackNs
	b.Bytes += trackBytes
	mapNs, mapBytes := g.taskNs(&f.Map)
	b.Bytes += mapBytes
	if g.RunsAGSAlgorithm {
		// Contribution-table maintenance in global memory: scattered atomic
		// read-modify-writes achieve a few percent of peak bandwidth.
		tableBytes := int64(0)
		if f.IsKeyFrame && f.LoggingIDs != nil {
			for _, l := range f.LoggingIDs {
				tableBytes += int64(len(l)) * 16 // RMW of an 8-byte record
			}
		} else if f.Map.RepTileLists != nil {
			for _, l := range f.Map.RepTileLists {
				tableBytes += int64(len(l)) * 8
			}
		}
		mapNs += float64(tableBytes) / (g.BWGBs * 0.04)
		b.Bytes += tableBytes
	}
	b.MapNs = mapNs
	// GPUs execute the pipeline serially (§6.3: "GPUs ... execute tracking
	// and mapping sequentially").
	b.TotalNs = b.CodecNs + b.CoarseNs + b.TrackNs + b.MapNs
	b.EnergyJ = g.BusyPowerW * b.TotalNs * 1e-9
	return b
}
