package fleet

import (
	"errors"
	"net"
	"testing"
	"time"

	"ags/internal/fleet/chaos"
	"ags/internal/scene"
	"ags/internal/slam"
)

// startChaosFleet boots n in-process nodes over loopback, each behind its
// own fault injector, plus a router over all of them.
func startChaosFleet(t *testing.T, cfgs []NodeConfig) (*Router, []*Node, map[string]*chaos.Injector) {
	t.Helper()
	nodes := make([]*Node, len(cfgs))
	injs := make(map[string]*chaos.Injector, len(cfgs))
	r := NewRouter()
	for i, nc := range cfgs {
		in := chaos.New(chaos.Config{Seed: 0xA65 + uint64(i)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNode(nc)
		addr, err := n.StartOn(in.Listen(ln))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		injs[nc.Name] = in
		if err := r.AddNode(addr); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.Close()
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				t.Errorf("node close: %v", err)
			}
		}
	})
	return r, nodes, injs
}

func sequentialDigest(t *testing.T, cfg slam.Config, seq *scene.Sequence) [32]byte {
	t.Helper()
	res, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest()
}

// TestRecoverKillDuringPush is the tentpole gate: the serving node is killed
// uncleanly mid push-reply (truncating the frame at a seeded offset), the
// stream restores its last checkpoint on the peer, replays the buffered
// frames, and finishes with a digest bit-identical to an undisturbed
// sequential run — with at least one checkpoint restore and one replayed
// frame on the books.
func TestRecoverKillDuringPush(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 8)
	ref := sequentialDigest(t, cfg, seq)

	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	st, err := r.OpenWith(seq.Name, cfg, seq.Intr, StreamOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	home := st.Node()
	for i, f := range seq.Frames {
		if i == 5 {
			// The serving node's next write is this push's reply: it dies
			// mid-frame, taking the whole node (listener + conns) with it.
			injs[st.Node()].ArmKill(1)
		}
		if err := st.Push(f); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node() == home {
		t.Errorf("stream still on killed node %q", home)
	}
	if st.Recoveries() != 1 {
		t.Errorf("recoveries = %d, want 1 (checkpoint restore)", st.Recoveries())
	}
	// Checkpoint at frame 4, kill on frame 5's ack: frames 4 and 5 replay.
	if st.Replayed() != 2 {
		t.Errorf("replayed = %d, want 2", st.Replayed())
	}
	if sum.Digest != ref {
		t.Error("recovered stream digest diverges from sequential run")
	}
	if sum.Frames != len(seq.Frames) {
		t.Errorf("frames = %d, want %d", sum.Frames, len(seq.Frames))
	}
	m := r.Metrics()
	if m.Recoveries != 1 || m.ReplayedFrames != st.Replayed() {
		t.Errorf("router metrics %+v, want 1 recovery / %d replayed", m, st.Replayed())
	}
	if kills := injs[home].Stats().Kills; kills != 1 {
		t.Errorf("injector kills = %d, want 1", kills)
	}
	// The corpse is out of the ring.
	for _, h := range r.CheckHealth() {
		if h.Name == home && (!h.Evicted || h.Reachable) {
			t.Errorf("killed node %q not evicted: %+v", home, h)
		}
	}
}

// TestRecoverKillDuringSnapshot kills the node while it streams the very
// first checkpoint's snapshot back, so recovery has no checkpoint at all and
// must fall back to a fresh open plus a full replay from frame zero.
func TestRecoverKillDuringSnapshot(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 6)
	ref := sequentialDigest(t, cfg, seq)

	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	st, err := r.OpenWith(seq.Name, cfg, seq.Intr, StreamOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(seq.Frames[0]); err != nil {
		t.Fatal(err)
	}
	// Next two node writes: frame 1's push reply, then the first checkpoint's
	// snap-data reply — the kill truncates the snapshot mid-frame.
	injs[st.Node()].ArmKill(2)
	for i, f := range seq.Frames[1:] {
		if err := st.Push(f); err != nil {
			t.Fatalf("push %d: %v", i+1, err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recoveries() != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries())
	}
	// No checkpoint existed yet: frames 0 and 1 replay through a fresh open.
	if st.Replayed() != 2 {
		t.Errorf("replayed = %d, want 2 (full replay from frame zero)", st.Replayed())
	}
	if sum.Digest != ref {
		t.Error("snapshot-killed stream digest diverges from sequential run")
	}
}

// TestHealthCheckEvictsAndReadmits kills a node under a live stream: a
// health probe evicts it, the stream recovers onto a peer with the digest
// intact, and when a replacement node comes back on the same address the
// next probe re-admits it.
func TestHealthCheckEvictsAndReadmits(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 6)
	ref := sequentialDigest(t, cfg, seq)

	r, nodes, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}, {Name: "c"}})
	st, err := r.OpenWith(seq.Name, cfg, seq.Intr, StreamOptions{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	home := st.Node()
	var homeAddr string
	for _, n := range nodes {
		if n.Stats().Name == home {
			homeAddr = n.Addr()
		}
	}
	for i, f := range seq.Frames {
		if i == 3 {
			// Quiet unclean death between pushes; the next push discovers it.
			injs[home].Kill()
			evicted := 0
			for _, h := range r.CheckHealth() {
				if h.Evicted {
					evicted++
					if h.Name != home {
						t.Errorf("evicted %q, want %q", h.Name, home)
					}
				} else if !h.Reachable {
					t.Errorf("live node %q reported unreachable", h.Name)
				}
			}
			if evicted != 1 {
				t.Fatalf("evicted = %d nodes, want 1", evicted)
			}
		}
		if err := st.Push(f); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Digest != ref {
		t.Error("digest diverges from sequential run after kill + health eviction")
	}
	if st.Recoveries() != 1 || st.Replayed() < 1 {
		t.Errorf("recoveries = %d, replayed = %d; want 1 and >= 1", st.Recoveries(), st.Replayed())
	}

	// A replacement node on the same address: the next probe re-admits it.
	repl := NewNode(NodeConfig{Name: home})
	if _, err := repl.Start(homeAddr); err != nil {
		t.Fatalf("replacement node on %s: %v", homeAddr, err)
	}
	defer func() {
		if err := repl.Close(); err != nil {
			t.Errorf("replacement close: %v", err)
		}
	}()
	readmitted := false
	for _, h := range r.CheckHealth() {
		if h.Name == home {
			if !h.Reachable || h.Evicted || !h.Readmitted {
				t.Errorf("replacement probe: %+v, want reachable + readmitted", h)
			}
			readmitted = h.Readmitted
		}
	}
	if !readmitted {
		t.Fatal("replacement node never re-admitted")
	}
	// Back in the ring for real: the strict stats poll reaches all three.
	sts, err := r.Stats()
	if err != nil {
		t.Fatalf("stats after re-admission: %v", err)
	}
	if len(sts) != 3 {
		t.Fatalf("stats count = %d, want 3", len(sts))
	}
}

// TestNodeLostWithoutRecovery pins the satellite contract: with recovery
// disabled, node death surfaces as ErrNodeLost carrying the node's name and
// the acknowledged frame count, and Close returns the partial summary.
func TestNodeLostWithoutRecovery(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 4)
	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	st, err := r.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	home := st.Node()
	for i := 0; i < 2; i++ {
		if err := st.Push(seq.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	injs[home].Kill()
	err = st.Push(seq.Frames[2])
	if !errors.Is(err, ErrNodeLost) {
		t.Fatalf("push on killed node: %v, want ErrNodeLost", err)
	}
	var nl *NodeLostError
	if !errors.As(err, &nl) {
		t.Fatalf("push error carries no *NodeLostError: %v", err)
	}
	if nl.Node != home || nl.Acked != 2 {
		t.Errorf("NodeLostError = {Node: %q, Acked: %d}, want {%q, 2}", nl.Node, nl.Acked, home)
	}
	partial, cerr := st.Close()
	if !errors.Is(cerr, ErrNodeLost) {
		t.Fatalf("close after loss: %v, want ErrNodeLost", cerr)
	}
	if partial.Frames != 2 {
		t.Errorf("partial summary frames = %d, want 2", partial.Frames)
	}
	if partial.Digest != ([32]byte{}) {
		t.Error("partial summary carries a digest; it must be zero (unknowable)")
	}
}

// TestNodeLostAtClose covers loss discovered by Close itself rather than a
// push.
func TestNodeLostAtClose(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 2)
	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}})
	st, err := r.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range seq.Frames {
		if err := st.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	injs["a"].Kill()
	partial, cerr := st.Close()
	if !errors.Is(cerr, ErrNodeLost) {
		t.Fatalf("close on killed node: %v, want ErrNodeLost", cerr)
	}
	var nl *NodeLostError
	if !errors.As(cerr, &nl) || nl.Acked != len(seq.Frames) {
		t.Fatalf("close error: %v, want *NodeLostError with Acked=%d", cerr, len(seq.Frames))
	}
	if partial.Frames != len(seq.Frames) {
		t.Errorf("partial frames = %d, want %d", partial.Frames, len(seq.Frames))
	}
}

// TestRecoveryExhaustionBackoff kills the whole fleet: recovery must walk
// its bounded attempts with the deterministic doubling backoff schedule and
// surface ErrRecoveryExhausted (still an ErrNodeLost, still carrying the
// acked count).
func TestRecoveryExhaustionBackoff(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 4)
	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	var delays []time.Duration
	st, err := r.OpenWith(seq.Name, cfg, seq.Intr, StreamOptions{
		CheckpointEvery: 2,
		RecoverAttempts: 3,
		BackoffBase:     7 * time.Millisecond,
		Sleep:           func(d time.Duration) { delays = append(delays, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Push(seq.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, in := range injs {
		in.Kill()
	}
	err = st.Push(seq.Frames[2])
	for _, want := range []error{ErrNodeLost, ErrRecoveryExhausted, ErrNoPeer} {
		if !errors.Is(err, want) {
			t.Errorf("exhausted push error %v does not wrap %v", err, want)
		}
	}
	var nl *NodeLostError
	if !errors.As(err, &nl) || nl.Acked != 2 {
		t.Fatalf("exhausted error: %v, want *NodeLostError with Acked=2", err)
	}
	// Attempt 0 runs immediately; attempts 1 and 2 back off 7ms then 14ms.
	if len(delays) != 2 || delays[0] != 7*time.Millisecond || delays[1] != 14*time.Millisecond {
		t.Errorf("backoff schedule = %v, want [7ms 14ms]", delays)
	}
	if _, cerr := st.Close(); !errors.Is(cerr, ErrNodeLost) {
		t.Errorf("close after exhaustion: %v, want ErrNodeLost", cerr)
	}
}

// TestSeverOnlyConnRecoversInPlace severs just the stream's connection: the
// node itself stays healthy, so recovery may land right back on it — and the
// digest must still be exact. No eviction should happen.
func TestSeverOnlyConnRecoversInPlace(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 6)
	ref := sequentialDigest(t, cfg, seq)

	r, _, injs := startChaosFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	st, err := r.OpenWith(seq.Name, cfg, seq.Intr, StreamOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range seq.Frames {
		if i == 3 {
			injs[st.Node()].ArmSever(1)
		}
		if err := st.Push(f); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Digest != ref {
		t.Error("severed stream digest diverges from sequential run")
	}
	if st.Recoveries() != 1 || st.Replayed() < 1 {
		t.Errorf("recoveries = %d, replayed = %d; want 1 and >= 1", st.Recoveries(), st.Replayed())
	}
	for _, h := range r.CheckHealth() {
		if h.Evicted {
			t.Errorf("node %q evicted after a single-conn sever", h.Name)
		}
	}
}
