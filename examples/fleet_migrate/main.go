// Fleet migrate: serve live streams across a 2-node fleet over loopback TCP
// and drain one node mid-stream — its sessions snapshot over the wire,
// restore on the peer, and finish there without moving a single output bit.
//
// The demo boots two in-process fleet.Nodes (each one slam.Server behind a
// real listener), routes three streams across them (consistent-hash
// placement keyed by frame size class, least-loaded tie-break), then drains
// the node serving the first stream halfway through. Every stream's final
// digest is asserted bit-identical to a sequential in-process slam.Run of
// the same frames — the fleet's determinism contract, migration included.
//
//	go run ./examples/fleet_migrate
package main

import (
	"fmt"
	"log"

	"ags/internal/fleet"
	"ags/internal/scene"
	"ags/internal/slam"
)

const (
	width, height = 48, 36
	frames        = 6
)

func main() {
	cfg := slam.AGSConfig(width, height)
	cfg.TrackIters = 12 // scaled-down N_T for a quick demo
	cfg.IterT = 4
	cfg.Mapper.MapIters = 6
	cfg.Mapper.DensifyStride = 2

	// 1. Sequential references: the digests the fleet must reproduce.
	names := []string{"Desk", "Xyz", "Room"}
	seqs := make([]*scene.Sequence, len(names))
	refs := make([][32]byte, len(names))
	for i, name := range names {
		seq, err := scene.Generate(name, scene.Config{
			Width: width, Height: height, Frames: frames, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs[i] = seq
		res, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
		if err != nil {
			log.Fatal(err)
		}
		refs[i] = res.Digest()
	}

	// 2. Two nodes over loopback, a router over both.
	router := fleet.NewRouter()
	nodes := make([]*fleet.Node, 2)
	for i, name := range []string{"node-a", "node-b"} {
		n := fleet.NewNode(fleet.NodeConfig{Name: name})
		addr, err := n.Start("")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s listening on %s\n", name, addr)
		nodes[i] = n
		if err := router.AddNode(addr); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Open the streams; placement spreads them across the nodes.
	streams := make([]*fleet.Stream, len(seqs))
	for i, seq := range seqs {
		st, err := router.Open(seq.Name, cfg, seq.Intr)
		if err != nil {
			log.Fatal(err)
		}
		streams[i] = st
		fmt.Printf("stream %-5s placed on %s\n", seq.Name, st.Node())
	}

	// 4. Push round-robin; halfway through, drain the first stream's node.
	// Its streams migrate lazily at their next push: snapshot on the
	// draining node, restore on the peer, frame count verified.
	for f := 0; f < frames; f++ {
		if f == frames/2 {
			target := streams[0].Node()
			fmt.Printf("draining %s at frame %d\n", target, f)
			if err := router.Drain(target); err != nil {
				log.Fatal(err)
			}
		}
		for i, seq := range seqs {
			if err := streams[i].Push(seq.Frames[f]); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 5. Close and verify: digests must match the sequential runs exactly.
	migrations := 0
	for i, st := range streams {
		sum, err := st.Close()
		if err != nil {
			log.Fatal(err)
		}
		migrations += st.Migrations()
		status := "identical to sequential run"
		if sum.Digest != refs[i] {
			log.Fatalf("stream %s: digest diverged after serving over the fleet", names[i])
		}
		fmt.Printf("stream %-5s finished on %-6s after %d migration(s): digest %x %s\n",
			names[i], st.Node(), st.Migrations(), sum.Digest[:8], status)
	}
	if migrations == 0 {
		log.Fatal("expected at least one mid-stream migration")
	}

	m := router.Metrics()
	fmt.Printf("placement: %d/%d streams on first choice, %d migration(s) — all digests bit-identical\n",
		m.PrimaryHits, m.Placements, m.Migrations)

	router.Close()
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
