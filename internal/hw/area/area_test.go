package area

import (
	"math"
	"testing"
)

func TestTotalsMatchPaperTable3(t *testing.T) {
	// Paper: AGS-Edge 7.25 mm^2, AGS-Server 14.38 mm^2. The unit-area
	// constants are derived from the same table, so totals must land within
	// a few percent.
	edge := Total(Edge())
	server := Total(Server())
	if math.Abs(edge-7.25)/7.25 > 0.10 {
		t.Errorf("edge area = %.2f mm^2, paper 7.25", edge)
	}
	if math.Abs(server-14.38)/14.38 > 0.10 {
		t.Errorf("server area = %.2f mm^2, paper 14.38", server)
	}
}

func TestServerLargerThanEdge(t *testing.T) {
	if Total(Server()) <= Total(Edge()) {
		t.Error("server variant not larger than edge")
	}
}

func TestEnginesDominateArea(t *testing.T) {
	// Paper: "The pose tracking engine and the mapping engine ... occupy
	// more than 90% of the chip area."
	for _, cfg := range []Config{Edge(), Server()} {
		var engines, total float64
		for _, m := range Breakdown(cfg) {
			total += m.AreaMM2
			if m.Engine != "FC Detection Engine" {
				engines += m.AreaMM2
			}
		}
		if engines/total < 0.9 {
			t.Errorf("%s: engines are only %.1f%% of area", cfg.Name, 100*engines/total)
		}
	}
}

func TestBreakdownHasTwelveRows(t *testing.T) {
	if n := len(Breakdown(Edge())); n != 12 {
		t.Errorf("breakdown rows = %d", n)
	}
	for _, m := range Breakdown(Edge()) {
		if m.AreaMM2 <= 0 {
			t.Errorf("module %s/%s has non-positive area", m.Engine, m.Component)
		}
	}
}
