package splat

import "ags/internal/vecmath"

// backwardArena holds Backward's per-call partial-reduction buffers: the
// per-tile loss/pose partials and (for Gaussian gradients) the flat
// per-tile-entry gradient slots addressed through the CSR tile offsets.
// Deterministic sharding sizes these O(TotalEntries) per call, which
// dominates the mapping loop's allocation rate at experiment scale, so every
// RenderContext embeds one arena and recycles it across calls (the one-shot
// Backward wrapper recycles whole contexts through the package pool, unless
// BackwardOptions.NoPool opts out). Buffers are re-zeroed on every prepare,
// never lazily — the merge order is what guarantees bitwise determinism, and
// a dirty buffer would break it silently.
type backwardArena struct {
	lossByTile []float64
	poseByTile []vecmath.Twist
	mean       []vecmath.Vec3
	color      []vecmath.Vec3
	logit      []float64
	logScale   []float64
}

// zeroed returns s resized to n with every element cleared, reusing its
// capacity when possible.
//
//ags:hotpath
func zeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resized returns s resized to n without clearing it: for buffers every
// element of which is overwritten before being read (the assigned-not-
// accumulated pixel planes).
//
//ags:hotpath
func resized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// prepare zeroes the arena for nt tiles and entries total Gaussian-table
// slots (gradient slots only when gaussian is set), reusing capacity.
func (a *backwardArena) prepare(nt, entries int, gaussian bool) {
	a.lossByTile = zeroed(a.lossByTile, nt)
	a.poseByTile = zeroed(a.poseByTile, nt)
	if gaussian {
		a.mean = zeroed(a.mean, entries)
		a.color = zeroed(a.color, entries)
		a.logit = zeroed(a.logit, entries)
		a.logScale = zeroed(a.logScale, entries)
	}
}

// reset drops the arena's buffers entirely (RenderContext.Reset).
func (a *backwardArena) reset() {
	*a = backwardArena{}
}
