package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/slam"
)

// Router is the client-side coordinator: it knows the fleet's nodes, polls
// their stats over per-node control connections, places each new stream with
// the consistent-hash-plus-load policy (see Candidates), and falls through
// the candidate order when a node bounces an open with ErrAdmission or
// ErrDraining. Each stream gets its own dedicated connection; the router is
// safe for concurrent Opens, while every Stream keeps slam's one-producer
// contract (Push/Close/migration from a single goroutine).
type Router struct {
	mu    sync.Mutex
	nodes []*routerNode

	// Placement accounting for the serving report: how many streams landed
	// on their first-choice candidate, and how many migrated mid-stream.
	placements  int
	primaryHits int
	migrations  int
}

// routerNode is the router's handle on one fleet node: its dial address and
// a long-lived control connection for stats and drain, serialized by mu
// (streams use their own connections).
type routerNode struct {
	name string
	addr string

	mu       sync.Mutex
	ctrl     *wire
	draining bool
}

// NewRouter returns an empty router; AddNode it onto the fleet.
func NewRouter() *Router { return &Router{} }

// AddNode dials a node's control connection and registers it under the name
// the node reports for itself.
func (r *Router) AddNode(addr string) error {
	ctrl, err := dialWire(addr)
	if err != nil {
		return err
	}
	st, err := statsOver(ctrl)
	if err != nil {
		ctrl.Close()
		return fmt.Errorf("fleet: add node %s: %w", addr, err)
	}
	n := &routerNode{name: st.Name, addr: addr, ctrl: ctrl, draining: st.Draining}
	r.mu.Lock()
	r.nodes = append(r.nodes, n)
	r.mu.Unlock()
	return nil
}

// Close tears down the control connections. Streams hold their own
// connections and must be closed by their producers first.
func (r *Router) Close() {
	r.mu.Lock()
	nodes := r.nodes
	r.nodes = nil
	r.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		if n.ctrl != nil {
			n.ctrl.Close()
			n.ctrl = nil
		}
		n.mu.Unlock()
	}
}

func dialWire(addr string) (*wire, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", addr, err)
	}
	return newWire(c), nil
}

// statsOver polls one stats report over an already-locked or exclusively
// owned wire.
func statsOver(w *wire) (NodeStats, error) {
	rv, payload, err := w.roundTrip(vStats, nil)
	if err != nil {
		return NodeStats{}, err
	}
	if rv != vStatsData {
		return NodeStats{}, fmt.Errorf("fleet: stats reply verb %s", rv)
	}
	return decodeStats(payload)
}

// stats polls one node's control connection.
func (n *routerNode) stats() (NodeStats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ctrl == nil {
		return NodeStats{}, fmt.Errorf("fleet: node %q: control connection closed", n.name)
	}
	st, err := statsOver(n.ctrl)
	if err != nil {
		return NodeStats{}, fmt.Errorf("fleet: node %q stats: %w", n.name, err)
	}
	n.draining = st.Draining
	return st, nil
}

// Stats polls every node's self-report, in registration order.
func (r *Router) Stats() ([]NodeStats, error) {
	r.mu.Lock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.Unlock()
	out := make([]NodeStats, 0, len(nodes))
	for _, n := range nodes {
		st, err := n.stats()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// RouterMetrics is the router's own placement accounting.
type RouterMetrics struct {
	// Placements counts successfully opened streams; PrimaryHits counts the
	// ones that landed on their first-choice candidate (the placement
	// hit-rate numerator). Migrations counts mid-stream node moves.
	Placements  int
	PrimaryHits int
	Migrations  int
}

// Metrics snapshots the router's placement accounting.
func (r *Router) Metrics() RouterMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterMetrics{Placements: r.placements, PrimaryHits: r.primaryHits, Migrations: r.migrations}
}

// Drain gracefully drains the named node: the node stops admitting streams,
// and every live stream routed there migrates — snapshot over the wire,
// restore on a peer — at its next Push (lazily, so each stream's producer
// goroutine keeps sole ownership of its session).
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	var target *routerNode
	for _, n := range r.nodes {
		if n.name == name {
			target = n
			break
		}
	}
	r.mu.Unlock()
	if target == nil {
		return fmt.Errorf("fleet: drain: unknown node %q", name)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if target.ctrl == nil {
		return fmt.Errorf("fleet: drain %q: control connection closed", name)
	}
	rv, _, err := target.ctrl.roundTrip(vDrain, nil)
	if err != nil {
		return fmt.Errorf("fleet: drain %q: %w", name, err)
	}
	if rv != vOK {
		return fmt.Errorf("fleet: drain %q: reply verb %s", name, rv)
	}
	target.draining = true
	return nil
}

// snapshotLoads polls all nodes and returns their placement views plus the
// node handles in matching order.
func (r *Router) snapshotLoads() ([]*routerNode, []NodeLoad, error) {
	r.mu.Lock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.Unlock()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("fleet: router has no nodes")
	}
	loads := make([]NodeLoad, len(nodes))
	for i, n := range nodes {
		st, err := n.stats()
		if err != nil {
			return nil, nil, err
		}
		loads[i] = loadOf(st)
	}
	return nodes, loads, nil
}

// Open places a new stream: candidates in placement order, opened on the
// first node that admits it. The stream's size class is the intrinsics' W x H
// — the same key the node-side render-context pools bucket by.
func (r *Router) Open(name string, cfg slam.Config, intr camera.Intrinsics) (*Stream, error) {
	nodes, loads, err := r.snapshotLoads()
	if err != nil {
		return nil, err
	}
	order := Candidates(intr.W, intr.H, loads)
	if len(order) == 0 {
		return nil, fmt.Errorf("fleet: open %q: no admitting nodes (all draining or down)", name)
	}
	var payload []byte
	payload = encodeOpen(payload, name,
		slam.AppendConfig(nil, &cfg), slam.AppendIntrinsics(nil, &intr))
	var lastErr error
	for rank, idx := range order {
		w, err := openOn(nodes[idx].addr, payload)
		if err != nil {
			if isPlacementBounce(err) {
				lastErr = err
				continue
			}
			return nil, fmt.Errorf("fleet: open %q on %q: %w", name, nodes[idx].name, err)
		}
		r.mu.Lock()
		r.placements++
		if rank == 0 {
			r.primaryHits++
		}
		r.mu.Unlock()
		return &Stream{r: r, name: name, w: w, node: nodes[idx], sizeW: intr.W, sizeH: intr.H}, nil
	}
	return nil, fmt.Errorf("fleet: open %q: every candidate refused: %w", name, lastErr)
}

// openOn dials a fresh stream connection and opens a session over it.
func openOn(addr string, openPayload []byte) (*wire, error) {
	w, err := dialWire(addr)
	if err != nil {
		return nil, err
	}
	rv, _, err := w.roundTrip(vOpen, openPayload)
	if err != nil {
		w.Close()
		return nil, err
	}
	if rv != vOK {
		w.Close()
		return nil, fmt.Errorf("fleet: open reply verb %s", rv)
	}
	return w, nil
}

// isPlacementBounce reports whether an open failure means "try the next
// candidate" rather than a fault.
func isPlacementBounce(err error) bool {
	return errors.Is(err, ErrAdmission) || errors.Is(err, ErrDraining)
}

// Stream is one live camera stream routed across the fleet: the remote
// mirror of slam.Session's producer half. Push blocks while the serving
// session's queue is full (the reply is sent only after the node-side Push
// returns), and Close returns the digest-bearing summary. Like a Session,
// a Stream must be driven from a single goroutine.
type Stream struct {
	r    *Router
	name string

	w    *wire
	node *routerNode

	sizeW, sizeH int
	pushed       int
	migrations   int

	frameBuf []byte // per-push encode scratch, reused across frames
}

// Name returns the stream's label.
func (s *Stream) Name() string { return s.name }

// Node returns the name of the node currently serving the stream.
func (s *Stream) Node() string { return s.node.name }

// Migrations returns how many times the stream has moved nodes.
func (s *Stream) Migrations() int { return s.migrations }

// Push sends the next frame in stream order. If the serving node has been
// marked draining since the last push, the stream first migrates — snapshot,
// restore on a peer, verified frame count — and then pushes there.
//
//ags:hotpath
func (s *Stream) Push(f *frame.Frame) error {
	if s.w == nil {
		return fmt.Errorf("fleet: stream %q: push after Close", s.name)
	}
	if s.node.isDraining() {
		if err := s.migrate(); err != nil {
			return fmt.Errorf("fleet: stream %q: migrate off %q: %w", s.name, s.node.name, err)
		}
	}
	s.frameBuf = slam.AppendFrame(s.frameBuf[:0], f)
	rv, _, err := s.w.roundTrip(vPush, s.frameBuf)
	if err != nil {
		return fmt.Errorf("fleet: stream %q: push: %w", s.name, err)
	}
	if rv != vOK {
		return fmt.Errorf("fleet: stream %q: push reply verb %s", s.name, rv)
	}
	s.pushed++
	return nil
}

// Close ends the stream and returns the node-side session's summary; its
// Digest is bit-identical to a sequential slam.Run over the same frames.
func (s *Stream) Close() (ResultSummary, error) {
	if s.w == nil {
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: already closed", s.name)
	}
	w := s.w
	s.w = nil
	defer w.Close()
	rv, payload, err := w.roundTrip(vClose, nil)
	if err != nil {
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: close: %w", s.name, err)
	}
	if rv != vResult {
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: close reply verb %s", s.name, rv)
	}
	sum, err := decodeResult(payload)
	if err != nil {
		return ResultSummary{}, fmt.Errorf("fleet: stream %q: %w", s.name, err)
	}
	return sum, nil
}

func (n *routerNode) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}
