package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapRange flags `range` over a map in determinism-critical packages
// unless the loop body provably accumulates order-insensitively. Go
// randomizes map iteration order per run, so any loop whose effect depends
// on visit order — last-writer-wins assignments, order-dependent admission
// guards, unsorted collection, early exit — produces run-to-run divergent
// output. The proof is syntactic and conservative (see mrLoop.stmt); loops
// that are order-insensitive for deeper reasons carry an
// //ags:allow(maprange, reason).
func checkMapRange(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				mapRangeWalk(p, fd.Body)
			}
		}
	}
}

// mapRangeWalk visits every map-range statement under body, treating body as
// the enclosing scope for the sorted-after-loop rule. Function literals
// start a fresh scope: a sort inside a closure does not order a slice
// appended outside it.
func mapRangeWalk(p *pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			mapRangeWalk(p, n.Body)
			return false
		case *ast.RangeStmt:
			if t := p.pkg.Info.Types[n.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if reason := analyzeMapRange(p, n, body); reason != "" {
						file, line, col := p.pkg.Position(n.Pos())
						p.report(Finding{
							File: file, Line: line, Col: col, Check: CheckMapRange,
							Message: fmt.Sprintf("range over map %s: %s (iteration order is randomized; sort collected keys, restructure, or justify with //ags:allow(maprange, reason))",
								types.ExprString(n.X), reason),
						})
					}
				}
			}
		}
		return true
	})
}

// mrLoop carries the per-loop analysis state.
type mrLoop struct {
	p       *pass
	rs      *ast.RangeStmt
	owner   *ast.BlockStmt        // enclosing function body (sorted-after rule)
	locals  map[types.Object]bool // objects declared inside the loop (incl. key/value)
	written map[types.Object]bool // OUTER objects the loop writes
	keyObjs map[types.Object]bool // the range key/value variables
}

// analyzeMapRange returns "" when the loop body is provably
// order-insensitive, else a human-readable reason it is not.
func analyzeMapRange(p *pass, rs *ast.RangeStmt, owner *ast.BlockStmt) string {
	a := &mrLoop{
		p: p, rs: rs, owner: owner,
		locals:  make(map[types.Object]bool),
		written: make(map[types.Object]bool),
		keyObjs: make(map[types.Object]bool),
	}
	// Only the range KEY is guaranteed unique per iteration — an index
	// keyed by the range value can collide across iterations (duplicate
	// values) and then the last visit wins, which is order-dependent.
	if id, ok := rs.Key.(*ast.Ident); ok {
		if o := a.obj(id); o != nil {
			a.keyObjs[o] = true
		}
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if o := a.obj(id); o != nil {
				a.locals[o] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if o := p.pkg.Info.Defs[n]; o != nil {
				a.locals[o] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				a.markWritten(lhs)
			}
		case *ast.IncDecStmt:
			a.markWritten(n.X)
		}
		return true
	})
	for _, s := range rs.Body.List {
		if reason := a.stmt(s, 0); reason != "" {
			return reason
		}
	}
	return ""
}

func (a *mrLoop) obj(id *ast.Ident) types.Object {
	if o := a.p.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return a.p.pkg.Info.Uses[id]
}

// markWritten records the root variable behind an lvalue, if it lives
// outside the loop. (Locals are collected separately via Defs, so a root
// that is also a local is filtered at query time.)
func (a *mrLoop) markWritten(lhs ast.Expr) {
	if id := rootIdent(lhs); id != nil {
		if o := a.obj(id); o != nil {
			a.written[o] = true
		}
	}
}

// rootIdent unwraps index/selector/star/paren chains to the base identifier:
// the variable whose contents the lvalue mutates.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// writesOuter reports whether obj is an outer variable the loop writes.
func (a *mrLoop) writesOuter(o types.Object) bool {
	return o != nil && a.written[o] && !a.locals[o]
}

// stmt classifies one statement. depth counts enclosing loops *inside* the
// map range: break is order-dependent at depth 0 (it ends the map iteration
// after an order-dependent prefix) but fine inside a nested loop.
func (a *mrLoop) stmt(s ast.Stmt, depth int) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return a.assign(s)
	case *ast.IncDecStmt:
		return a.incDec(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return "unsupported declaration inside the loop"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if r := a.assignRHS(v); r != "" {
						return r
					}
				}
			}
		}
		return ""
	case *ast.ExprStmt:
		return a.callStmt(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			if r := a.stmt(s.Init, depth); r != "" {
				return r
			}
		}
		if r := a.cond(s.Cond); r != "" {
			return r
		}
		for _, b := range s.Body.List {
			if r := a.stmt(b, depth); r != "" {
				return r
			}
		}
		if s.Else != nil {
			return a.stmt(s.Else, depth)
		}
		return ""
	case *ast.BlockStmt:
		for _, b := range s.List {
			if r := a.stmt(b, depth); r != "" {
				return r
			}
		}
		return ""
	case *ast.ForStmt:
		if s.Init != nil {
			if r := a.stmt(s.Init, depth+1); r != "" {
				return r
			}
		}
		if s.Cond != nil {
			if r := a.cond(s.Cond); r != "" {
				return r
			}
		}
		if s.Post != nil {
			if r := a.stmt(s.Post, depth+1); r != "" {
				return r
			}
		}
		for _, b := range s.Body.List {
			if r := a.stmt(b, depth+1); r != "" {
				return r
			}
		}
		return ""
	case *ast.RangeStmt:
		if r := a.cond(s.X); r != "" {
			return r
		}
		for _, b := range s.Body.List {
			if r := a.stmt(b, depth+1); r != "" {
				return r
			}
		}
		return ""
	case *ast.SwitchStmt:
		if s.Init != nil {
			if r := a.stmt(s.Init, depth); r != "" {
				return r
			}
		}
		if s.Tag != nil {
			if r := a.cond(s.Tag); r != "" {
				return r
			}
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				if r := a.cond(e); r != "" {
					return r
				}
			}
			for _, b := range clause.Body {
				if r := a.stmt(b, depth); r != "" {
					return r
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			if s.Label != nil {
				return "labeled continue may skip levels order-dependently"
			}
			return ""
		case token.BREAK:
			if s.Label == nil && depth > 0 {
				return "" // ends a nested loop only; the map iteration continues
			}
			return "break ends the map iteration after an order-dependent prefix"
		case token.FALLTHROUGH:
			return ""
		default:
			return "goto inside the loop"
		}
	case *ast.ReturnStmt:
		return "return from inside the loop makes the result depend on which keys were visited first"
	case *ast.EmptyStmt:
		return ""
	default:
		return fmt.Sprintf("%T inside the loop is not provably order-insensitive", s)
	}
}

// assign admits the order-insensitive write forms:
//
//   - declarations and writes whose target lives inside the loop;
//   - commutative integer accumulation into an outer variable (+=, -=, |=,
//     &=, ^=); floating-point accumulation is rejected — float addition is
//     not associative, so the sum's low bits depend on visit order;
//   - x = append(x, ...) into an outer slice, provided a sort of x follows
//     the loop in the enclosing function (collect-then-sort idiom);
//   - writes through an outer map/slice index keyed by the range key: each
//     iteration touches its own element, so order cannot matter, as long as
//     the stored value reads nothing the loop wrote elsewhere.
func (a *mrLoop) assign(s *ast.AssignStmt) string {
	for _, rhs := range s.Rhs {
		if r := a.assignRHS(rhs); r != "" {
			return r
		}
	}
	if s.Tok == token.DEFINE {
		return "" // all targets are loop-local by construction
	}
	for i, lhs := range s.Lhs {
		root := rootIdent(lhs)
		if root == nil {
			return fmt.Sprintf("write through %s is not provably order-insensitive", types.ExprString(lhs))
		}
		o := a.obj(root)
		if o == nil || a.locals[o] {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if s.Tok == token.ASSIGN {
				if i < len(s.Rhs) && a.isSortedAppend(l, s.Rhs[i]) {
					continue
				}
				return fmt.Sprintf("plain assignment to outer variable %s is last-writer-wins", l.Name)
			}
			if r := a.commutativeOp(s.Tok, o); r != "" {
				return r
			}
		case *ast.IndexExpr:
			if !a.referencesKey(l.Index) {
				return fmt.Sprintf("write to %s is not keyed by the range variable, so iterations can collide order-dependently", types.ExprString(lhs))
			}
			if r := a.cond(l.Index); r != "" {
				return r
			}
		default:
			return fmt.Sprintf("write through %s is not provably order-insensitive", types.ExprString(lhs))
		}
	}
	return ""
}

// assignRHS vets the value side of an admitted write: no calls beyond the
// pure builtins, and no reads of other outer variables the loop writes
// (reading loop-written state makes this iteration's value depend on which
// iterations already ran).
func (a *mrLoop) assignRHS(rhs ast.Expr) string {
	if call, ok := rhs.(*ast.CallExpr); ok && a.isBuiltin(call, "append") {
		for _, arg := range call.Args[1:] {
			if r := a.cond(arg); r != "" {
				return r
			}
		}
		return ""
	}
	return a.cond(rhs)
}

// isSortedAppend recognizes `x = append(x, ...)` into an outer slice where a
// sort of the same expression follows the map-range loop in the enclosing
// function — the canonical deterministic way to consume a map.
func (a *mrLoop) isSortedAppend(lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !a.isBuiltin(call, "append") || len(call.Args) == 0 {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || base.Name != lhs.Name {
		return false
	}
	return a.sortedAfterLoop(lhs.Name)
}

// sortedAfterLoop reports whether a sort.* / slices.Sort* call whose first
// argument prints as name (or wraps it in a conversion) appears after the
// range loop inside the enclosing function body.
func (a *mrLoop) sortedAfterLoop(name string) bool {
	found := false
	ast.Inspect(a.owner, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < a.rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := a.p.pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg, fname := fn.Pkg().Path(), fn.Name()
		isSort := (pkg == "sort" && (fname == "Slice" || fname == "SliceStable" || fname == "Sort" ||
			fname == "Stable" || fname == "Strings" || fname == "Ints" || fname == "Float64s")) ||
			(pkg == "slices" && (fname == "Sort" || fname == "SortFunc" || fname == "SortStableFunc"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		// Unwrap a sort.Interface conversion like byFoo(x).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, ok2 := a.p.pkg.Info.Types[conv.Fun]; ok2 && tv.IsType() {
				arg = conv.Args[0]
			}
		}
		if id, ok := arg.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// commutativeOp admits the operator-assigns whose repetition is
// order-insensitive on the target's type.
func (a *mrLoop) commutativeOp(tok token.Token, o types.Object) string {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return fmt.Sprintf("%s on outer variable %s is not a commutative accumulation", tok, o.Name())
	}
	if b, ok := o.Type().Underlying().(*types.Basic); ok {
		if b.Info()&types.IsInteger != 0 {
			return ""
		}
		if b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			return fmt.Sprintf("floating-point accumulation into %s is order-sensitive (addition is not associative)", o.Name())
		}
	}
	if tok == token.ADD_ASSIGN {
		// String concatenation and other non-numeric += are order-dependent.
		return fmt.Sprintf("+= on non-integer outer variable %s is order-sensitive", o.Name())
	}
	return ""
}

func (a *mrLoop) incDec(s *ast.IncDecStmt) string {
	switch x := s.X.(type) {
	case *ast.Ident:
		o := a.obj(x)
		if o == nil || a.locals[o] {
			return ""
		}
		if b, ok := o.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return ""
		}
		return fmt.Sprintf("++/-- on non-integer outer variable %s", x.Name)
	case *ast.IndexExpr:
		if root := rootIdent(x.X); root != nil && a.referencesKey(x.Index) {
			return a.cond(x.Index)
		}
		return fmt.Sprintf("++/-- on %s is not keyed by the range variable", types.ExprString(s.X))
	default:
		return fmt.Sprintf("++/-- through %s is not provably order-insensitive", types.ExprString(s.X))
	}
}

// callStmt admits delete(m, k) keyed by the range variable (Go specifies
// deleting during iteration is safe, and distinct keys cannot collide);
// every other call could observe iteration order and is rejected.
func (a *mrLoop) callStmt(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return fmt.Sprintf("expression %s inside the loop is not provably order-insensitive", types.ExprString(e))
	}
	if a.isBuiltin(call, "delete") && len(call.Args) == 2 && a.referencesKey(call.Args[1]) {
		return ""
	}
	return fmt.Sprintf("call to %s inside the loop — the callee can observe iteration order", types.ExprString(call.Fun))
}

// cond rejects expressions that read outer variables the loop itself writes
// (an admission guard like `len(seen) < cap` makes each iteration's outcome
// depend on which iterations ran before it) or that call anything beyond
// len/cap/min/max.
func (a *mrLoop) cond(e ast.Expr) string {
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if o := a.obj(n); a.writesOuter(o) {
				reason = fmt.Sprintf("reads %s, which the loop writes — the value seen depends on which iterations already ran", n.Name)
			}
		case *ast.CallExpr:
			if a.isBuiltin(n, "len") || a.isBuiltin(n, "cap") || a.isBuiltin(n, "min") || a.isBuiltin(n, "max") {
				return true
			}
			if tv, ok := a.p.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // type conversion
			}
			reason = fmt.Sprintf("call to %s inside the loop — the callee can observe iteration order", types.ExprString(n.Fun))
		case *ast.FuncLit:
			reason = "closure inside the loop is not provably order-insensitive"
		}
		return reason == ""
	})
	return reason
}

// referencesKey reports whether the expression mentions one of the range
// key/value variables — the test that a per-iteration index is unique.
func (a *mrLoop) referencesKey(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := a.obj(id); o != nil && a.keyObjs[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltin reports whether the call invokes the named predeclared builtin.
func (a *mrLoop) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = a.p.pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
