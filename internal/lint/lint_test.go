package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// corpusConfig analyzes the golden corpus under testdata/src with the same
// shape of configuration the real tree uses: a critical-prefix scope and a
// goroutine-site allowlist.
func corpusConfig(t *testing.T) Config {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dir:              dir,
		CriticalPrefixes: []string{"x/crit/"},
		GoroutineSites: map[string]bool{
			"x/crit/gr.ApprovedLaunch":              true,
			"x/crit/gridsched.(*Scheduler).dialAll": true,
		},
	}
}

// mark is one expected finding: a "want <check...>" marker in a corpus file.
type mark struct {
	file  string // corpus-root-relative, forward slashes
	line  int
	check string
}

func (m mark) String() string { return fmt.Sprintf("%s:%d [%s]", m.file, m.line, m.check) }

// wantMarks parses every corpus file and collects its want markers. A marker
// is any comment whose text starts with "want " followed by space-separated
// check names; it expects those findings on its own line. Block-comment
// markers (/* want directive */) let directive-diagnostic lines carry a
// marker without the marker text being swallowed into the directive.
func wantMarks(t *testing.T, root string) []mark {
	t.Helper()
	var marks []mark
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "/*"), "//"), "*/"))
				checks, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, check := range strings.Fields(checks) {
					marks = append(marks, mark{file: rel, line: line, check: check})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return marks
}

// TestGoldenCorpus runs every check over the corpus and diffs the findings
// against the want markers in both directions: a finding without a marker is
// a false positive, a marker without a finding is a false negative. The
// x/crit/enginesbroken package is the acceptance golden: it reproduces the
// pre-fix SimulateLogging hot-set ranking, so deleting the sorted-ranking
// fix from the real tree recreates a shape this test proves ags-vet flags.
func TestGoldenCorpus(t *testing.T) {
	cfg := corpusConfig(t)
	findings, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[mark]bool)
	for _, f := range findings {
		got[mark{file: f.File, line: f.Line, check: f.Check}] = true
	}
	want := make(map[mark]bool)
	for _, m := range wantMarks(t, cfg.Dir) {
		want[m] = true
	}

	var missing, extra []string
	for m := range want {
		if !got[m] {
			missing = append(missing, m.String())
		}
	}
	for m := range got {
		if !want[m] {
			extra = append(extra, m.String())
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, m := range missing {
		t.Errorf("expected finding not reported: %s", m)
	}
	for _, m := range extra {
		t.Errorf("unexpected finding: %s", m)
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("reported: %s", f)
		}
	}
}

// TestBrokenHotSetIsCaught pins the ISSUE acceptance criterion explicitly:
// the pre-fix SimulateLogging shapes (order-dependent admission, and
// collect-without-sort — i.e. the fixed shape with its slices.SortFunc call
// deleted) must each produce a maprange finding, while the repaired shape in
// x/crit/enginesfixed stays clean with no suppression.
func TestBrokenHotSetIsCaught(t *testing.T) {
	findings, err := Run(corpusConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	broken := 0
	for _, f := range findings {
		switch {
		case strings.HasPrefix(f.File, "crit/enginesfixed/"):
			t.Errorf("fixed hot-set ranking flagged: %s", f)
		case strings.HasPrefix(f.File, "crit/enginesbroken/") && f.Check == CheckMapRange:
			broken++
		}
	}
	if broken != 2 {
		t.Errorf("want 2 maprange findings in crit/enginesbroken, got %d", broken)
	}
}

// TestChecksFilter verifies -checks style filtering: a maprange-only run
// reports maprange findings and malformed-directive diagnostics (those are
// unconditional) but no other checks and no stale-suppression findings — a
// suppression for a disabled check legitimately matches nothing.
func TestChecksFilter(t *testing.T) {
	cfg := corpusConfig(t)
	cfg.Checks = []string{CheckMapRange}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawMapRange := false
	for _, f := range findings {
		switch f.Check {
		case CheckMapRange:
			sawMapRange = true
		case checkDirective:
			if strings.Contains(f.Message, "suppresses nothing") {
				t.Errorf("filtered run reported a stale suppression: %s", f)
			}
		default:
			t.Errorf("filtered run leaked check %q: %s", f.Check, f)
		}
	}
	if !sawMapRange {
		t.Fatal("maprange-only run reported no maprange findings; corpus has positives")
	}
}

// TestUnknownCheckRejected verifies check-name validation.
func TestUnknownCheckRejected(t *testing.T) {
	cfg := corpusConfig(t)
	cfg.Checks = []string{"speling"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown check name accepted")
	}
}

// TestFindingString pins the file:line:col: [check] message format the CLI,
// CI log matchers and editors rely on.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/splat/render.go", Line: 42, Col: 7, Check: CheckHotAlloc, Message: "make allocates"}
	want := "internal/splat/render.go:42:7: [hotalloc] make allocates"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestRepoIsClean is the self-test: ags-vet over this repository must report
// nothing. Every real finding has been fixed or carries a written
// //ags:allow justification, and stale suppressions are findings themselves,
// so this test failing means a contract regression (or a leftover excuse)
// snuck into the tree.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found: %v", err)
	}
	findings, err := Run(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not vet-clean: %s", f)
	}
}
