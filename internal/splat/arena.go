package splat

import (
	"sync"

	"ags/internal/vecmath"
)

// backwardArena holds Backward's per-call partial-reduction buffers: the
// tile-table offsets, per-tile loss/pose partials, and (for Gaussian
// gradients) the flat per-tile-entry gradient slots. Deterministic sharding
// sizes these O(TotalEntries) per call, which dominates the mapping loop's
// allocation rate at experiment scale (ROADMAP), so calls recycle arenas
// through a sync.Pool. Buffers are re-zeroed on acquisition, never lazily —
// the merge order is what guarantees bitwise determinism, and a dirty
// buffer would break it silently.
type backwardArena struct {
	offsets    []int
	lossByTile []float64
	poseByTile []vecmath.Twist
	mean       []vecmath.Vec3
	color      []vecmath.Vec3
	logit      []float64
	logScale   []float64
}

var backwardArenas = sync.Pool{New: func() any { return &backwardArena{} }}

// zeroed returns s resized to n with every element cleared, reusing its
// capacity when possible.
func zeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// acquireBackwardArena returns an arena with zeroed buffers for nt tiles and
// entries total Gaussian-table slots (gradient slots only when gaussian is
// set). noPool bypasses the pool, allocating fresh — the escape hatch the
// perf-render experiment uses to A/B allocation counts.
func acquireBackwardArena(nt, entries int, gaussian, noPool bool) *backwardArena {
	var a *backwardArena
	if noPool {
		a = &backwardArena{}
	} else {
		a = backwardArenas.Get().(*backwardArena)
	}
	a.offsets = zeroed(a.offsets, nt+1)
	a.lossByTile = zeroed(a.lossByTile, nt)
	a.poseByTile = zeroed(a.poseByTile, nt)
	if gaussian {
		a.mean = zeroed(a.mean, entries)
		a.color = zeroed(a.color, entries)
		a.logit = zeroed(a.logit, entries)
		a.logScale = zeroed(a.logScale, entries)
	}
	return a
}

// release returns the arena to the pool. Callers must not retain any of its
// slices past this point.
func (a *backwardArena) release(noPool bool) {
	if !noPool {
		backwardArenas.Put(a)
	}
}
