package splat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

// randomCloud builds a cloud of n random Gaussians in front of the camera.
func randomCloud(rng *rand.Rand, n int) *gauss.Cloud {
	cloud := gauss.NewCloud(n)
	for i := 0; i < n; i++ {
		g := gauss.Gaussian{
			Mean: vecmath.Vec3{
				X: rng.NormFloat64() * 0.6,
				Y: rng.NormFloat64() * 0.4,
				Z: 0.8 + rng.Float64()*3,
			},
			Rot: vecmath.QuatFromAxisAngle(
				vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
				rng.Float64()*3),
			Color: vecmath.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()},
		}
		g.SetScale(vecmath.Vec3{
			X: 0.02 + rng.Float64()*0.3,
			Y: 0.02 + rng.Float64()*0.3,
			Z: 0.02 + rng.Float64()*0.3,
		})
		g.SetOpacity(0.05 + 0.9*rng.Float64())
		cloud.Add(g)
	}
	return cloud
}

// TestPropertyRenderInvariants checks physical invariants of alpha blending
// over randomized scenes: transmittance and silhouette stay in [0,1], their
// sum is 1 up to early-termination truncation, colors and depths are bounded
// by the inputs, and all outputs are finite.
func TestPropertyRenderInvariants(t *testing.T) {
	cam := testCam(32, 24)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cloud := randomCloud(rng, 3+rng.Intn(25))
		res := Render(cloud, cam, Options{Workers: 1})
		var maxDepth float64
		for _, s := range res.Splats {
			maxDepth = math.Max(maxDepth, s.Depth)
		}
		for pix := range res.FinalT {
			tr := res.FinalT[pix]
			sil := res.Silhouette[pix]
			if tr < 0 || tr > 1 || sil < 0 || sil > 1 {
				return false
			}
			// Conservation: accumulated alpha + remaining transmittance = 1
			// exactly when the pixel did not terminate early.
			if tr >= TransmittanceEps && math.Abs(sil+tr-1) > 1e-9 {
				return false
			}
			c := res.Color.Pix[pix]
			if !c.IsFinite() || c.X < 0 || c.Y < 0 || c.Z < 0 {
				return false
			}
			// Blended color can never exceed the brightest input color.
			if c.X > 1 || c.Y > 1 || c.Z > 1 {
				return false
			}
			d := res.Depth.D[pix]
			if d < 0 || d > maxDepth+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyOpsConsistency checks the workload counters: blend ops never
// exceed alpha ops, and per-pixel counters sum to the totals.
func TestPropertyOpsConsistency(t *testing.T) {
	cam := testCam(32, 24)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cloud := randomCloud(rng, 3+rng.Intn(25))
		res := Render(cloud, cam, Options{Workers: 1})
		if res.BlendOps > res.AlphaOps {
			return false
		}
		var alphaSum, blendSum int64
		for i := range res.PerPixelAlpha {
			alphaSum += int64(res.PerPixelAlpha[i])
			blendSum += int64(res.PerPixelBlend[i])
			if res.PerPixelBlend[i] > res.PerPixelAlpha[i] {
				return false
			}
		}
		return alphaSum == res.AlphaOps && blendSum == res.BlendOps
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyContributionAccounting checks NonContrib <= Touched and that
// every active, visible Gaussian's touched count matches its tile footprint.
func TestPropertyContributionAccounting(t *testing.T) {
	cam := testCam(32, 24)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cloud := randomCloud(rng, 3+rng.Intn(25))
		res := Render(cloud, cam, Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255})
		for id := range res.Touched {
			if res.NonContrib[id] > res.Touched[id] || res.NonContrib[id] < 0 {
				return false
			}
		}
		// With early-termination counting, every pixel of every tile a splat
		// belongs to is accounted: sum of Touched equals the total tile-list
		// coverage in pixels.
		var touchedSum int64
		for _, v := range res.Touched {
			touchedSum += int64(v)
		}
		var coverage int64
		for ti := 0; ti < res.Tiles.NumTiles(); ti++ {
			tx, ty := ti%res.Tiles.TW, ti/res.Tiles.TW
			w := min(TileSize, cam.Intr.W-tx*TileSize)
			h := min(TileSize, cam.Intr.H-ty*TileSize)
			coverage += int64(len(res.Tiles.ListAt(ti))) * int64(w*h)
		}
		return touchedSum == coverage
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyShardMergeMatchesSingleShard: for randomized clouds — including
// clouds with no splats at all (every tile list empty) and clouds whose
// footprint spans a single tile — the per-tile gradient shards merged by a
// multi-worker Backward are bitwise equal to the single-shard Workers=1
// reference, and the multi-worker Render digest matches too.
func TestPropertyShardMergeMatchesSingleShard(t *testing.T) {
	cam := testCam(48, 32) // 3x2 tile grid
	lc := DefaultMappingLoss()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cloud *gauss.Cloud
		switch rng.Intn(5) {
		case 0:
			// Degenerate: nothing to shard, every tile list is empty.
			cloud = gauss.NewCloud(0)
		case 1:
			// One tiny splat confined to a single interior tile.
			cloud = gauss.NewCloud(1)
			g := gauss.Gaussian{
				Mean:  vecmath.Vec3{X: 0.02, Y: 0.38, Z: 2},
				Rot:   vecmath.QuatIdentity(),
				Color: vecmath.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()},
			}
			g.SetScale(vecmath.Vec3{X: 0.02, Y: 0.02, Z: 0.02})
			g.SetOpacity(0.3 + 0.6*rng.Float64())
			cloud.Add(g)
		default:
			cloud = randomCloud(rng, 1+rng.Intn(28))
		}
		tgtRes := Render(randomCloud(rng, 3), cam, Options{Workers: 1})
		target := &frame.Frame{Color: tgtRes.Color, Depth: tgtRes.NormalizedDepth()}

		opts := Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255}
		refRes := Render(cloud, cam, opts)
		refG := Backward(cloud, cam, refRes, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1})

		workers := 2 + rng.Intn(6)
		opts.Workers = workers
		res := Render(cloud, cam, opts)
		g := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: workers})
		return res.Digest() == refRes.Digest() && g.Digest() == refG.Digest()
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertySkipMonotone: skipping Gaussians can only reduce work.
func TestPropertySkipMonotone(t *testing.T) {
	cam := testCam(32, 24)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cloud := randomCloud(rng, 5+rng.Intn(20))
		full := Render(cloud, cam, Options{Workers: 1})
		skip := make([]bool, cloud.Len())
		for i := range skip {
			skip[i] = rng.Intn(3) == 0
		}
		sel := Render(cloud, cam, Options{Workers: 1, Skip: skip})
		return sel.AlphaOps <= full.AlphaOps &&
			sel.BlendOps <= full.BlendOps &&
			len(sel.Splats) <= len(full.Splats)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
