package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ags/internal/camera"
	"ags/internal/splat"
)

func expPerfRender() Experiment {
	return expDef{
		id: "perf-render", paper: "Perf: serial vs deterministically sharded splat render+backward",
		needs:  []RunSpec{Spec("Desk", VarBaseline)},
		render: (*Suite).PerfRender,
	}
}

// PerfRender is the perf experiment behind deterministic tile-sharded
// rendering: it times the forward and backward splat passes serial vs sharded
// on a mapped cloud and asserts that every worker count reproduces the serial
// output bit for bit (images, workload counters, contribution log, and all
// gradient buffers) — the property that lets every A/B experiment in the
// suite run fully parallel. It also reports the backward pass's allocations
// per call with and without the pooled gradient arena.
func (s *Suite) PerfRender(w io.Writer) error {
	b, err := s.Run(Spec("Desk", VarBaseline))
	if err != nil {
		return err
	}
	cloud := b.Result.Cloud
	mid := len(b.Result.Poses) / 2
	cam := camera.Camera{Intr: b.Seq.Intr, Pose: b.Result.Poses[mid]}
	target := b.Seq.Frames[mid]
	lc := splat.DefaultMappingLoss()
	const reps = 4

	type sample struct {
		workers        int
		renderT, backT time.Duration
		res            *splat.Result
		grads          *splat.Grads
	}
	run := func(workers int) sample {
		sm := sample{workers: workers}
		opts := splat.Options{Workers: workers, LogContribution: true, ThreshAlpha: 1.0 / 255}
		bopts := splat.BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: workers}
		// Untimed warm-up so first-touch costs are not attributed to the
		// first configuration measured.
		sm.res = splat.Render(cloud, cam, opts)
		sm.grads = splat.Backward(cloud, cam, sm.res, target, lc, bopts)
		start := time.Now()
		for r := 0; r < reps; r++ {
			sm.res = splat.Render(cloud, cam, opts)
		}
		sm.renderT = time.Since(start) / reps
		start = time.Now()
		for r := 0; r < reps; r++ {
			sm.grads = splat.Backward(cloud, cam, sm.res, target, lc, bopts)
		}
		sm.backT = time.Since(start) / reps
		return sm
	}

	cores := runtime.GOMAXPROCS(0)
	serial := run(1)
	refRes, refGrads := serial.res.Digest(), serial.grads.Digest()
	samples := []sample{serial}
	for _, wkr := range []int{2, cores} {
		if wkr <= 1 || (wkr == cores && len(samples) > 1 && samples[len(samples)-1].workers == cores) {
			continue
		}
		sm := run(wkr)
		if sm.res.Digest() != refRes {
			return fmt.Errorf("bench: sharded render (workers=%d) diverged from serial output", wkr)
		}
		if sm.grads.Digest() != refGrads {
			return fmt.Errorf("bench: sharded backward (workers=%d) diverged from serial gradients", wkr)
		}
		samples = append(samples, sm)
	}

	t := NewTable(fmt.Sprintf("Perf: splat render+backward wall-time (%dx%d, %d gaussians, %d cores)",
		b.Seq.Intr.W, b.Seq.Intr.H, cloud.NumActive(), cores),
		"Workers", "Render ms", "Backward ms", "Speedup")
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }
	serialTotal := serial.renderT + serial.backT
	for _, sm := range samples {
		total := sm.renderT + sm.backT
		t.AddRow(sm.workers, ms(sm.renderT), ms(sm.backT), float64(serialTotal)/float64(total))
	}
	t.AddNote("all worker counts verified byte-identical to serial (images, counters, gradients)")

	// Gradient-arena A/B: the pooled partial buffers must change allocation
	// count only, never the gradients (ROADMAP: mapping-loop GC pressure).
	res := splat.Render(cloud, cam, splat.Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255})
	allocs := func(noPool bool) (float64, [32]byte, error) {
		bopts := splat.BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1, NoPool: noPool}
		g := splat.Backward(cloud, cam, res, target, lc, bopts) // warm-up / pool prime
		digest := g.Digest()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for r := 0; r < reps; r++ {
			g = splat.Backward(cloud, cam, res, target, lc, bopts)
		}
		runtime.ReadMemStats(&m1)
		if g.Digest() != digest {
			return 0, digest, fmt.Errorf("bench: backward gradients (noPool=%v) changed across repeats", noPool)
		}
		return float64(m1.Mallocs-m0.Mallocs) / reps, digest, nil
	}
	pooledAllocs, pooledDigest, err := allocs(false)
	if err != nil {
		return err
	}
	rawAllocs, rawDigest, err := allocs(true)
	if err != nil {
		return err
	}
	if pooledDigest != rawDigest {
		return fmt.Errorf("bench: pooled backward diverged from unpooled gradients")
	}
	t.AddNote("backward allocs/op (workers=1): %.0f pooled arena vs %.0f unpooled — gradients verified bitwise identical", pooledAllocs, rawAllocs)
	t.Write(w)
	return nil
}
