// Package mapper implements the map-side of 3DGS-SLAM: densification
// (seeding Gaussians from RGB-D observations), full mapping (N_M training
// iterations that also record per-Gaussian contribution information), and
// AGS's Gaussian contribution-aware selective mapping that skips Gaussians
// predicted non-contributory from the last key frame (paper §4.3, Fig. 8).
package mapper

import (
	"slices"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/hw/trace"
	"ags/internal/optim"
	"ags/internal/splat"
	"ags/internal/vecmath"
)

// Config controls mapping behavior.
type Config struct {
	// MapIters is N_M, the training iterations per frame.
	MapIters int
	// ThreshAlpha marks a Gaussian non-contributory for a pixel when its
	// alpha is below this (paper: 1/255).
	ThreshAlpha float64
	// ThreshN marks a Gaussian non-contributory for following non-key frames
	// when its non-contributory pixel count exceeds this (paper: 450 at
	// 640x480; scale with resolution).
	ThreshN int
	// ContribPixMax is the largest number of contributing pixels (alpha >=
	// ThreshAlpha) a Gaussian may have and still be skipped. The paper's
	// count-only criterion assumes trained-3DGS splat statistics; with
	// SplaTAM-style pixel-scale Gaussians every contributor also has a large
	// weak-tail footprint, so we additionally require (near-)zero
	// contributing pixels — matching Fig. 5's "no impact on pixel color"
	// definition and the paper's FP metric (see DESIGN.md).
	ContribPixMax int
	// DensifyStride seeds one Gaussian per stride x stride pixel block.
	DensifyStride int
	// SilThreshold: pixels with rendered silhouette below this are
	// considered unobserved and get new Gaussians during densification.
	SilThreshold float64
	// DepthErrThresh: observed pixels whose depth error exceeds this
	// fraction of the measurement get new Gaussians too.
	DepthErrThresh float64
	// PruneOpacity deactivates Gaussians whose opacity falls below this.
	//
	// The default (0.005) is a safety valve, not an active policy: new
	// Gaussians are seeded at opacity 0.999 and the default LRLogit moves
	// logits far too slowly for any to collapse below it within this
	// reproduction's sequence lengths, so pruning never fires unless the
	// threshold is raised (or LRLogit turned up) explicitly. Runs that want
	// real prune pressure must override it — see ags-slam's -prune-opacity
	// flag and the perf-compact experiment's override (PruneOpacity 0.25
	// with LRLogit 0.2).
	PruneOpacity float64
	// Learning rates per parameter group.
	LRMean, LRColor, LRLogit, LRScale float64
	// KeyframeWindow is how many past keyframes mapping samples from.
	KeyframeWindow int
	Workers        int
	Seed           int64
}

// DefaultConfig returns mapping settings tuned for the reproduction's frame
// sizes; ThreshN is resolution-scaled by the caller (see slam.DefaultConfig).
func DefaultConfig() Config {
	return Config{
		MapIters:       15,
		ThreshAlpha:    1.0 / 255,
		ThreshN:        10,
		ContribPixMax:  1,
		DensifyStride:  1,
		SilThreshold:   0.5,
		DepthErrThresh: 0.05,
		PruneOpacity:   0.005,
		LRMean:         1e-3,
		LRColor:        5e-3,
		LRLogit:        2e-2,
		LRScale:        1e-3,
		KeyframeWindow: 8,
		Seed:           1,
	}
}

// Keyframe is a stored reference view used by the multi-view mapping loss.
type Keyframe struct {
	Frame *frame.Frame
	Pose  vecmath.Pose
}

// Mapper owns the Gaussian cloud and its optimizer state.
type Mapper struct {
	Cfg Config
	// Ctx, when non-nil, is the reusable render context the mapping loop,
	// densification and FP-rate evaluation render through, making the
	// MapIters hot path allocation-free (nil falls back to one-shot renders;
	// outputs are bit-identical either way). Not safe for concurrent use —
	// a pipeline shares one context across its tracker and mapper because
	// they run sequentially. slam threads it per frame-step from its
	// server's splat.ContextPool, so the field may change identity between
	// frames.
	Ctx *splat.RenderContext

	cloud *gauss.Cloud
	opt   *optim.GroupAdam
	rng   *prng

	// Contribution info recorded at the last key frame (per Gaussian ID).
	nonContrib []int32
	contrib    []int32 // pixels with alpha >= ThreshAlpha
	// skipSet flags Gaussians predicted non-contributory for non-key frames.
	skipSet []bool
	// keyframes retained for the multi-view loss.
	keyframes []Keyframe

	// applyGrads's flattened parameter/gradient views, grown to the cloud
	// size once and reused across mapping iterations so the optimizer step
	// allocates nothing in steady state.
	pMean, gMean   []float64
	pColor, gColor []float64
	pLogit, gLogit []float64
	pScale, gScale []float64
}

// New returns an empty mapper.
func New(cfg Config) *Mapper {
	return &Mapper{
		Cfg:   cfg,
		cloud: gauss.NewCloud(4096),
		opt:   newOpt(cfg),
		rng:   newPRNG(cfg.Seed),
	}
}

func newOpt(cfg Config) *optim.GroupAdam {
	return optim.NewGroupAdam(map[string]float64{
		"mean":  cfg.LRMean,
		"color": cfg.LRColor,
		"logit": cfg.LRLogit,
		"scale": cfg.LRScale,
	})
}

// Cloud exposes the map.
func (m *Mapper) Cloud() *gauss.Cloud { return m.cloud }

// SkipSet returns the current per-ID skip flags (shared, do not mutate).
func (m *Mapper) SkipSet() []bool { return m.skipSet }

// NumSkipped returns how many active Gaussians the skip set suppresses.
func (m *Mapper) NumSkipped() int {
	n := 0
	for id, s := range m.skipSet {
		if s && m.cloud.IsActive(id) {
			n++
		}
	}
	return n
}

// PredictedNonContrib returns the IDs the skip set marks, for FP-rate
// evaluation against ground truth (§6.2).
func (m *Mapper) PredictedNonContrib() map[int]bool {
	out := make(map[int]bool)
	for id, s := range m.skipSet {
		if s && m.cloud.IsActive(id) {
			out[id] = true
		}
	}
	return out
}

// AddKeyframe retains a reference view for the multi-view mapping loss.
func (m *Mapper) AddKeyframe(f *frame.Frame, pose vecmath.Pose) {
	m.keyframes = append(m.keyframes, Keyframe{Frame: f, Pose: pose})
	if len(m.keyframes) > m.Cfg.KeyframeWindow {
		m.keyframes = m.keyframes[len(m.keyframes)-m.Cfg.KeyframeWindow:]
	}
}

// Keyframes returns the retained reference views.
func (m *Mapper) Keyframes() []Keyframe { return m.keyframes }

// Densify adds Gaussians for unobserved or badly-explained pixels of the
// frame (SplaTAM's silhouette-driven densification). On an empty cloud it
// seeds every stride-th pixel. It returns how many Gaussians were added.
func (m *Mapper) Densify(f *frame.Frame, intr camera.Intrinsics, pose vecmath.Pose) int {
	stride := m.Cfg.DensifyStride
	if stride < 1 {
		stride = 1
	}
	cam := camera.Camera{Intr: intr, Pose: pose}
	var res *splat.Result
	if m.cloud.NumActive() > 0 {
		res = m.Ctx.Render(m.cloud, cam, splat.Options{Workers: m.Cfg.Workers})
	}
	inv := pose.Inverse()
	added := 0
	for y := 0; y < intr.H; y += stride {
		for x := 0; x < intr.W; x += stride {
			d := f.Depth.At(x, y)
			if d <= 0 {
				continue
			}
			if res != nil {
				pix := y*intr.W + x
				sil := res.Silhouette[pix]
				need := sil < m.Cfg.SilThreshold
				if !need && sil > 1e-6 {
					rendered := res.Depth.D[pix] / sil
					if absf(rendered-d) > m.Cfg.DepthErrThresh*d {
						need = true
					}
				}
				if !need {
					continue
				}
			}
			pc := intr.Unproject(vecmath.Vec2{X: float64(x) + 0.5, Y: float64(y) + 0.5}, d)
			g := gauss.Gaussian{
				Mean:  inv.Apply(pc),
				Rot:   vecmath.QuatIdentity(),
				Color: f.Color.At(x, y),
			}
			s := 0.6 * d * float64(stride) / intr.Fx
			g.SetScale(vecmath.Vec3{X: s, Y: s, Z: s})
			g.SetOpacity(0.999)
			id := m.cloud.Add(g)
			added++
			_ = id
		}
	}
	if added > 0 {
		// Optimizer moments are invalidated by the size change; GroupAdam
		// reinitializes automatically on the next step. The skip set grows
		// with new Gaussians defaulting to "not skipped".
		m.growSkipSet()
	}
	return added
}

func (m *Mapper) growSkipSet() {
	for len(m.skipSet) < m.cloud.Len() {
		m.skipSet = append(m.skipSet, false)
	}
	for len(m.nonContrib) < m.cloud.Len() {
		m.nonContrib = append(m.nonContrib, 0)
	}
	for len(m.contrib) < m.cloud.Len() {
		m.contrib = append(m.contrib, 0)
	}
}

// Prune deactivates Gaussians whose opacity collapsed; it returns how many
// this call actually deactivated (Cloud.Prune reports the transition, so an
// ID that is already dead can never be counted twice).
func (m *Mapper) Prune() int {
	n := 0
	for id := range m.cloud.Gaussians {
		if !m.cloud.IsActive(id) {
			continue
		}
		if m.cloud.At(id).Opacity() < m.Cfg.PruneOpacity {
			if m.cloud.Prune(id) {
				n++
			}
		}
	}
	return n
}

// Compact re-packs the cloud's surviving Gaussians into a dense prefix (see
// gauss.Cloud.Compact) and rewrites every ID-keyed table the mapper retains —
// contribution counts, the skip set, and the per-group Adam moments — through
// the returned old→new permutation, so mapping after a compaction continues
// bit-identically to the never-compacted timeline. It returns the permutation
// (for callers that retain their own ID-keyed state, e.g. render traces) and
// the number of slots freed.
func (m *Mapper) Compact() (remap []int32, freed int) {
	m.growSkipSet()
	remap, freed = m.cloud.Compact()
	if freed == 0 {
		return remap, 0
	}
	n := m.cloud.Len()
	nonContrib := make([]int32, n)
	contrib := make([]int32, n)
	skip := make([]bool, n)
	for old, nw := range remap {
		if int(nw) >= n {
			continue
		}
		nonContrib[nw] = m.nonContrib[old]
		contrib[nw] = m.contrib[old]
		skip[nw] = m.skipSet[old]
	}
	m.nonContrib, m.contrib, m.skipSet = nonContrib, contrib, skip
	m.opt.RemapGroup("mean", 3, remap, n)
	m.opt.RemapGroup("color", 3, remap, n)
	m.opt.RemapGroup("logit", 1, remap, n)
	m.opt.RemapGroup("scale", 1, remap, n)
	return remap, freed
}

// FullMapping runs N_M training iterations with every active Gaussian (key
// frames, path C of Fig. 7), recording contribution information on the last
// iteration and refreshing the skip set for subsequent non-key frames.
// It returns the workload stats and the Gaussian-table access stream for the
// hardware model's GS logging table.
func (m *Mapper) FullMapping(f *frame.Frame, intr camera.Intrinsics, pose vecmath.Pose) (trace.RenderStats, [][]int32) {
	stats, logIDs := m.optimize(f, intr, pose, nil, true)
	return stats, logIDs
}

// SelectiveMapping runs N_M training iterations with the predicted
// non-contributory Gaussians skipped (non-key frames, path D of Fig. 7).
func (m *Mapper) SelectiveMapping(f *frame.Frame, intr camera.Intrinsics, pose vecmath.Pose) trace.RenderStats {
	stats, _ := m.optimize(f, intr, pose, m.skipSet, false)
	return stats
}

// optimize is the shared mapping loop.
//
//ags:hotpath
func (m *Mapper) optimize(f *frame.Frame, intr camera.Intrinsics, pose vecmath.Pose, skip []bool, logContrib bool) (trace.RenderStats, [][]int32) {
	var stats trace.RenderStats
	var logIDs [][]int32
	loss := splat.DefaultMappingLoss()
	for i := 0; i < m.Cfg.MapIters; i++ {
		// Mapping uses the current frame plus previous keyframes
		// (paper §2.2: "mapping utilizes not only the current pose ... but
		// also other poses and images from previous frames").
		tf, tp := f, pose
		if i%3 == 2 && len(m.keyframes) > 0 {
			kf := m.keyframes[m.rng.Intn(len(m.keyframes))]
			tf, tp = kf.Frame, kf.Pose
		}
		cam := camera.Camera{Intr: intr, Pose: tp}
		last := i == m.Cfg.MapIters-1
		opts := splat.Options{Skip: skip, Workers: m.Cfg.Workers}
		if logContrib && last {
			opts.LogContribution = true
			opts.ThreshAlpha = m.Cfg.ThreshAlpha
		}
		res := m.Ctx.Render(m.cloud, cam, opts)
		grads := m.Ctx.Backward(m.cloud, cam, res, tf, loss, splat.BackwardOptions{GaussianGrads: true, Workers: m.Cfg.Workers})
		m.applyGrads(grads)

		stats.Accumulate(res.AlphaOps, res.BlendOps, 2*res.BlendOps,
			int64(len(res.Splats)), int64(res.Tiles.TotalEntries()), int64(intr.W*intr.H))
		if last {
			// The trace snapshot outlives the mapping loop, while a contexted
			// res is only valid until the next render — copy, don't alias.
			stats.RepPerPixelBlend = slices.Clone(res.PerPixelBlend)
			stats.RepPerPixelAlpha = slices.Clone(res.PerPixelAlpha)
			stats.RepTileLists = res.TileIDLists()
			stats.Width, stats.Height = intr.W, intr.H
			if logContrib {
				m.recordContribution(res)
				logIDs = stats.RepTileLists
			}
		}
	}
	return stats, logIDs
}

// recordContribution updates the stored contribution info and skip set from
// a logged render (the GS logging table write path, Fig. 11).
func (m *Mapper) recordContribution(res *splat.Result) {
	m.growSkipSet()
	for id := range m.nonContrib {
		if id < len(res.NonContrib) {
			m.nonContrib[id] = res.NonContrib[id]
			m.contrib[id] = res.Touched[id] - res.NonContrib[id]
		} else {
			m.nonContrib[id] = 0
			m.contrib[id] = 0
		}
	}
	// Refresh the skip set (the GS skipping table + comparison unit,
	// Fig. 12): skip when the Gaussian contributed (almost) nowhere and its
	// wasted pixel count exceeds ThreshN.
	for id := range m.skipSet {
		m.skipSet[id] = int(m.contrib[id]) <= m.Cfg.ContribPixMax &&
			int(m.nonContrib[id]) > m.Cfg.ThreshN
	}
}

// NonContribCount returns the recorded non-contributory pixel count per
// Gaussian ID (zero-extended to the cloud's size).
func (m *Mapper) NonContribCount() []int32 {
	m.growSkipSet()
	out := make([]int32, len(m.nonContrib))
	copy(out, m.nonContrib)
	return out
}

// ContribCount returns the recorded contributing pixel count per Gaussian ID.
func (m *Mapper) ContribCount() []int32 {
	m.growSkipSet()
	out := make([]int32, len(m.contrib))
	copy(out, m.contrib)
	return out
}

// applyGrads steps the per-group Adam optimizers over the flattened
// parameters of the active Gaussians. The flattened views live on the
// Mapper and are fully rewritten below before the optimizer reads them, so
// reusing them across iterations changes no output.
//
//ags:hotpath
func (m *Mapper) applyGrads(grads *splat.Grads) {
	n := m.cloud.Len()
	means := grown(&m.pMean, 3*n)
	meanG := grown(&m.gMean, 3*n)
	colors := grown(&m.pColor, 3*n)
	colorG := grown(&m.gColor, 3*n)
	logits := grown(&m.pLogit, n)
	logitG := grown(&m.gLogit, n)
	scales := grown(&m.pScale, n)
	scaleG := grown(&m.gScale, n)
	for id := 0; id < n; id++ {
		g := m.cloud.At(id)
		means[3*id], means[3*id+1], means[3*id+2] = g.Mean.X, g.Mean.Y, g.Mean.Z
		colors[3*id], colors[3*id+1], colors[3*id+2] = g.Color.X, g.Color.Y, g.Color.Z
		logits[id] = g.Logit
		scales[id] = g.LogScale.X // isotropic
		meanG[3*id], meanG[3*id+1], meanG[3*id+2] = grads.Mean[id].X, grads.Mean[id].Y, grads.Mean[id].Z
		colorG[3*id], colorG[3*id+1], colorG[3*id+2] = grads.Color[id].X, grads.Color[id].Y, grads.Color[id].Z
		logitG[id] = grads.Logit[id]
		scaleG[id] = grads.LogScale[id]
	}
	m.opt.Step("mean", means, meanG)
	m.opt.Step("color", colors, colorG)
	m.opt.Step("logit", logits, logitG)
	m.opt.Step("scale", scales, scaleG)
	for id := 0; id < n; id++ {
		g := m.cloud.At(id)
		g.Mean = vecmath.Vec3{X: means[3*id], Y: means[3*id+1], Z: means[3*id+2]}
		g.Color = vecmath.Vec3{X: colors[3*id], Y: colors[3*id+1], Z: colors[3*id+2]}.Clamp(0, 1)
		g.Logit = logits[id]
		g.LogScale = vecmath.Vec3{X: scales[id], Y: scales[id], Z: scales[id]}
	}
}

// grown resizes *buf to n reusing its capacity (no clearing — callers
// overwrite every element before reading), returning the resized view.
//
//ags:hotpath
func grown(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
