package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"

	"ags/internal/slam"
)

// NodeConfig sizes one fleet node: the slam.Server it wraps plus the
// admission budgets routers are told about and bounce off.
type NodeConfig struct {
	// Name is the node's fleet-wide identity and its consistent-hash key.
	Name string
	// Server configures the wrapped slam.Server (pool capacity, queue depth).
	Server slam.ServerConfig
	// MaxSessions caps concurrently admitted fleet streams (0 = unlimited).
	// Opens beyond the cap are rejected with ErrAdmission and the router
	// falls through to the next placement candidate.
	MaxSessions int
	// MaxResidentBytes rejects new streams while the render-context pool's
	// resident bytes meet or exceed this budget (0 = unlimited).
	MaxResidentBytes int64
	// Jobs, if non-nil, lets this node execute grid bench jobs (vJob
	// requests) alongside live streams — see internal/grid. Nil nodes answer
	// jobs with a protocol error.
	Jobs JobRunner
}

// Node is the serving side of the fleet: one slam.Server made
// network-facing. Each accepted connection is handled by its own goroutine
// and speaks the strict request/response protocol; a connection is either a
// control channel (stats, drain) or bound to exactly one session by
// open/restore, so every session's frames arrive in push order down a single
// connection — the property that keeps fleet results digest-identical to
// local runs.
type Node struct {
	cfg NodeConfig
	srv *slam.Server

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]*connState
	streams int // fleet-admitted live sessions (reserved before Open)
	closed  bool

	wg sync.WaitGroup
}

// NewNode builds a node with its own slam.Server. Call Start to listen.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Name == "" {
		cfg.Name = "node"
	}
	return &Node{
		cfg:   cfg,
		srv:   slam.NewServer(cfg.Server),
		conns: make(map[net.Conn]*connState),
	}
}

// Server exposes the wrapped slam.Server (tests and the CLI reach through
// for pool stats; sessions are owned by their remote producers).
func (n *Node) Server() *slam.Server { return n.srv }

// Start listens on addr ("" = loopback with an ephemeral port) and serves
// connections until Close. It returns the bound address for routers to dial.
func (n *Node) Start(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: node %q listen: %w", n.cfg.Name, err)
	}
	return n.StartOn(ln)
}

// StartOn serves connections from an already-built listener until Close —
// the seam the chaos fault injector wraps (chaos.Injector.Listen) so a node
// can be served through a deterministic fault schedule without the node
// knowing. It returns the listener's address for routers to dial.
func (n *Node) StartOn(ln net.Listener) (string, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("fleet: node %q is closed", n.cfg.Name)
	}
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.Serve()
	return ln.Addr().String(), nil
}

// Serve is the accept loop: one goroutine per connection, each owning its
// wire endpoint exclusively. It returns when the listener closes.
func (n *Node) Serve() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		cs := &connState{w: newWire(c)}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.conns[c] = cs
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(c, cs)
	}
}

// Addr returns the listening address, or "" before Start.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Drain stops admitting new streams (local equivalent of the drain verb).
// Live sessions keep running until their producers close or migrate them.
func (n *Node) Drain() { n.srv.Drain() }

// Stats assembles the node's self-report.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	streams := n.streams
	n.mu.Unlock()
	return NodeStats{
		Name:             n.cfg.Name,
		OpenSessions:     streams,
		Draining:         n.srv.Draining(),
		MaxSessions:      n.cfg.MaxSessions,
		MaxResidentBytes: n.cfg.MaxResidentBytes,
		Pool:             n.srv.PoolStats(),
	}
}

// Close stops the listener, then shuts connections down gracefully instead
// of racing their handlers: an idle connection (handler blocked in recv) is
// closed outright, while a handler mid-dispatch finishes its one in-flight
// request — sending the reply the remote producer is already blocked on —
// and then exits. The wait is bounded because each handler processes at most
// the single request it already started; no new requests begin once the
// closing flag is set. Abandoned sessions lose their partial results.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return nil
	}
	n.closed = true
	ln := n.ln
	states := make([]*connState, 0, len(n.conns))
	//ags:allow(maprange, order-independent: every collected conn is asked to close; no output depends on the iteration order)
	for _, cs := range n.conns {
		states = append(states, cs)
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cs := range states {
		if cs.beginClose() {
			// Idle: the handler is blocked in recv; closing the conn unblocks
			// it. Busy handlers see the closing flag after their dispatch and
			// close themselves.
			cs.w.Close()
		}
	}
	n.wg.Wait()
	return n.srv.Close()
}

// admit reserves one admission slot, or explains why not. The reservation
// happens before the server Open so concurrent connections cannot
// oversubscribe the budget between check and open.
func (n *Node) admit() error {
	if n.srv.Draining() {
		return fmt.Errorf("%w: node %q", ErrDraining, n.cfg.Name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("fleet: node %q is closed", n.cfg.Name)
	}
	if n.cfg.MaxSessions > 0 && n.streams >= n.cfg.MaxSessions {
		return fmt.Errorf("%w: node %q at %d/%d sessions", ErrAdmission, n.cfg.Name, n.streams, n.cfg.MaxSessions)
	}
	if n.cfg.MaxResidentBytes > 0 {
		if rb := n.srv.PoolStats().ResidentBytes; rb >= n.cfg.MaxResidentBytes {
			return fmt.Errorf("%w: node %q pool resident %d B >= budget %d B", ErrAdmission, n.cfg.Name, rb, n.cfg.MaxResidentBytes)
		}
	}
	n.streams++
	return nil
}

func (n *Node) releaseAdmission() {
	n.mu.Lock()
	n.streams--
	n.mu.Unlock()
}

// connState is the per-connection session binding plus the tiny handshake
// Node.Close uses to stop the handler without racing an in-flight dispatch.
type connState struct {
	w        *wire
	sess     *slam.Session
	admitted bool
	replyBuf []byte // reply payload scratch, reused across messages

	mu      sync.Mutex
	busy    bool // a dispatch is running on the handler goroutine
	closing bool // Node.Close asked the handler to exit
}

// begin claims the connection for one dispatch; false means the node is
// closing and the handler must exit without starting the request.
func (cs *connState) begin() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closing {
		return false
	}
	cs.busy = true
	return true
}

// end releases the dispatch claim and reports whether Node.Close asked the
// connection to shut down while the dispatch ran.
func (cs *connState) end() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.busy = false
	return cs.closing
}

// beginClose marks the connection closing and reports whether the caller
// must close the conn itself: true for an idle handler (blocked in recv,
// needs the close to unblock), false for a busy one (it finishes its
// in-flight request, replies, then exits on the closing flag).
func (cs *connState) beginClose() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.closing = true
	return !cs.busy
}

// serveConn runs one connection's request/response loop until the peer
// disconnects, a send fails, or the node closes. A torn-down connection with
// a live session closes the session (its result is lost with its producer)
// and returns the admission slot.
func (n *Node) serveConn(c net.Conn, cs *connState) {
	defer n.wg.Done()
	defer func() {
		if cs.sess != nil {
			cs.sess.Close()
		}
		if cs.admitted {
			n.releaseAdmission()
		}
		cs.w.Close()
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
	}()
	for {
		v, payload, err := cs.w.recv()
		if err != nil {
			return // clean EOF or damage; either way the conversation is over
		}
		if !cs.begin() {
			return // node closing; drop the request unhandled
		}
		ok := n.dispatch(cs, v, payload)
		if closing := cs.end(); !ok || closing {
			return
		}
	}
}

// dispatch handles one request and sends its reply; false means the
// connection is unusable (reply send failed).
func (n *Node) dispatch(cs *connState, v verb, payload []byte) bool {
	switch v {
	case vOpen:
		return n.handleOpen(cs, payload)
	case vPush:
		return n.handlePush(cs, payload)
	case vClose:
		return n.handleClose(cs)
	case vSnapshot:
		return n.handleSnapshot(cs)
	case vRestore:
		return n.handleRestore(cs, payload)
	case vDrain:
		n.srv.Drain()
		return n.replyOK(cs, 0)
	case vPing:
		// Liveness probe: answers on any connection (control or
		// session-bound) without touching session state, so a router health
		// check never perturbs a live stream.
		return n.replyOK(cs, 0)
	case vStats:
		st := n.Stats()
		cs.replyBuf = encodeStats(cs.replyBuf[:0], &st)
		return cs.w.send(vStatsData, cs.replyBuf) == nil
	case vJob:
		return n.handleJob(cs, payload)
	default:
		// Response verbs arriving as requests are protocol misuse, not damage.
		return n.replyErr(cs, codeProto, fmt.Sprintf("unexpected request verb %s", v))
	}
}

func (n *Node) replyOK(cs *connState, frames int) bool {
	cs.replyBuf = encodeOK(cs.replyBuf[:0], frames)
	return cs.w.send(vOK, cs.replyBuf) == nil
}

func (n *Node) replyErr(cs *connState, code byte, msg string) bool {
	cs.replyBuf = encodeErrReply(cs.replyBuf[:0], code, msg)
	return cs.w.send(vErrReply, cs.replyBuf) == nil
}

// replyAdmissionErr maps an admit/Open failure to its wire code so routers
// can tell "try the next node" from a real fault.
func (n *Node) replyAdmissionErr(cs *connState, err error) bool {
	code := codeInternal
	switch {
	case errors.Is(err, ErrAdmission):
		code = codeAdmission
	case errors.Is(err, ErrDraining), errors.Is(err, slam.ErrDraining):
		code = codeDraining
	}
	return n.replyErr(cs, code, err.Error())
}

func (n *Node) handleOpen(cs *connState, payload []byte) bool {
	if cs.sess != nil {
		return n.replyErr(cs, codeProto, "connection already bound to a session")
	}
	name, cfgBytes, intrBytes, err := decodeOpen(payload)
	if err != nil {
		return n.replyErr(cs, codeProto, err.Error())
	}
	cfg, err := slam.DecodeConfig(cfgBytes)
	if err != nil {
		return n.replyErr(cs, codeProto, err.Error())
	}
	intr, err := slam.DecodeIntrinsics(intrBytes)
	if err != nil {
		return n.replyErr(cs, codeProto, err.Error())
	}
	if err := n.admit(); err != nil {
		return n.replyAdmissionErr(cs, err)
	}
	sess, err := n.srv.Open(name, cfg, intr)
	if err != nil {
		n.releaseAdmission()
		return n.replyAdmissionErr(cs, err)
	}
	cs.sess, cs.admitted = sess, true
	return n.replyOK(cs, 0)
}

// handleRestore is the migration target's half: rebuild a session from the
// shipped snapshot and report how many frames it has already processed — the
// index of the next frame the producer must push.
func (n *Node) handleRestore(cs *connState, payload []byte) bool {
	if cs.sess != nil {
		return n.replyErr(cs, codeProto, "connection already bound to a session")
	}
	name, snap, err := decodeRestore(payload)
	if err != nil {
		return n.replyErr(cs, codeProto, err.Error())
	}
	if err := n.admit(); err != nil {
		return n.replyAdmissionErr(cs, err)
	}
	sess, frames, err := n.srv.RestoreSession(name, bytes.NewReader(snap))
	if err != nil {
		n.releaseAdmission()
		return n.replyAdmissionErr(cs, err)
	}
	cs.sess, cs.admitted = sess, true
	return n.replyOK(cs, frames)
}

// handlePush decodes one frame and pushes it into the bound session. The
// reply is sent only after Push returns, so the session's queue-full
// backpressure blocks the remote producer exactly as it would a local one.
//
//ags:hotpath
func (n *Node) handlePush(cs *connState, payload []byte) bool {
	if cs.sess == nil {
		return n.replyErr(cs, codeProto, "push before open")
	}
	f, err := slam.DecodeFrame(payload)
	if err != nil {
		return n.replyErr(cs, codeProto, err.Error())
	}
	if err := cs.sess.Push(f); err != nil {
		return n.replyErr(cs, codeInternal, err.Error())
	}
	return n.replyOK(cs, 0)
}

func (n *Node) handleClose(cs *connState) bool {
	if cs.sess == nil {
		return n.replyErr(cs, codeProto, "close before open")
	}
	dropped := cs.sess.Dropped()
	res, err := cs.sess.Close()
	cs.sess = nil
	if cs.admitted {
		cs.admitted = false
		n.releaseAdmission()
	}
	if err != nil {
		return n.replyErr(cs, codeInternal, err.Error())
	}
	sum := summarize(res, dropped)
	cs.replyBuf = encodeResult(cs.replyBuf[:0], &sum)
	return cs.w.send(vResult, cs.replyBuf) == nil
}

// handleSnapshot serializes the bound session between frames (every pushed
// frame is processed first; see slam.Session.Snapshot) and ships the AGSSNAP
// bytes back. The session stays open — the router follows up with close
// (discarding the partial result) once the snapshot is safely restored on a
// peer.
func (n *Node) handleSnapshot(cs *connState) bool {
	if cs.sess == nil {
		return n.replyErr(cs, codeProto, "snapshot before open")
	}
	var buf bytes.Buffer
	if err := cs.sess.Snapshot(&buf); err != nil {
		return n.replyErr(cs, codeInternal, err.Error())
	}
	return cs.w.send(vSnapData, buf.Bytes()) == nil
}

// summarize distills a finished session's Result into the close reply.
func summarize(res *slam.Result, dropped uint64) ResultSummary {
	tot := res.Trace.Totals()
	s := ResultSummary{
		Digest:          res.Digest(),
		Frames:          len(res.Poses),
		NumGaussians:    res.Cloud.NumActive(),
		PrunedGaussians: tot.PrunedGaussians,
		CompactedSlots:  tot.CompactedSlots,
		ReclaimedBytes:  tot.ReclaimedBytes,
		DroppedUpdates:  dropped,
	}
	if ate, err := res.ATERMSECm(); err == nil {
		s.ATECm = ate
	} else {
		s.ATECm = math.NaN()
	}
	return s
}
