package slam

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ags/internal/camera"
	"ags/internal/covis"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/hw/trace"
	"ags/internal/mapper"
	"ags/internal/splat"
	"ags/internal/vecmath"
)

// Snapshot format: an 8-byte magic, a version word, the length-prefixed
// little-endian payload, and a trailing SHA-256 over everything before it.
// The checksum is verified before any field is decoded, so a truncated or
// bit-flipped snapshot fails loudly instead of restoring a subtly wrong
// session. The format is versioned, not self-describing: any change to the
// encoded fields bumps SnapshotVersion, and Restore rejects versions it does
// not speak.
const (
	snapshotMagic = "AGSSNAP\x00"
	// SnapshotVersion is the binary format revision Snapshot writes and
	// Restore accepts.
	SnapshotVersion = 1
)

// Snapshot serializes the system's complete inter-frame state — configuration,
// camera, pose track, keyframe set, the (compacted) Gaussian map, optimizer
// moments, the mapper's RNG, and the retained per-frame traces — so that a
// system restored from it and fed the remaining frames produces a Result
// digest-identical to the uninterrupted run. Call it between ProcessFrame
// calls (it reads the same state ProcessFrame writes). In-flight ME prefetch
// jobs are deliberately not captured: the prefetch contract makes the
// synchronous recompute byte-identical, so a restored system simply computes
// the next frame's covisibility inline.
func (s *System) Snapshot(w io.Writer) error {
	e := &snapEnc{}
	e.raw([]byte(snapshotMagic))
	e.u32(SnapshotVersion)
	encodeSystem(e, s)
	sum := sha256.Sum256(e.buf)
	e.raw(sum[:])
	_, err := w.Write(e.buf)
	if err != nil {
		return fmt.Errorf("slam: snapshot write: %w", err)
	}
	return nil
}

// Restore rebuilds a standalone System from a snapshot stream. The system
// draws its render context from DefaultServer's pool, exactly like New;
// FrameCount tells the caller which frame to push next. Multi-tenant hosts
// restore into a session via (*Server).RestoreSession instead.
func Restore(r io.Reader) (*System, error) {
	return restoreSystem(r, DefaultServer().ContextPool(), false)
}

// restoreSystem decodes a snapshot over the given context pool. perStep
// selects session mode, as in newSystem.
func restoreSystem(r io.Reader, pool *splat.ContextPool, perStep bool) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("slam: snapshot read: %w", err)
	}
	hdr := len(snapshotMagic) + 4
	if len(data) < hdr+sha256.Size {
		return nil, fmt.Errorf("slam: snapshot truncated: %d bytes", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("slam: not a snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint32(data[len(snapshotMagic):hdr])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("slam: snapshot version %d, this build reads %d", version, SnapshotVersion)
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return nil, fmt.Errorf("slam: snapshot checksum mismatch (truncated or corrupted)")
	}
	d := &snapDec{b: body[hdr:]}
	sys := decodeSystem(d, pool, perStep)
	if d.err != nil {
		return nil, fmt.Errorf("slam: snapshot decode: %w", d.err)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("slam: snapshot decode: %d trailing bytes", len(d.b)-d.off)
	}
	return sys, nil
}

// encodeSystem writes every field a restored system needs. The tracker
// (refiner, aligner), covisibility detector and pose backbone carry no
// cross-frame state that outputs depend on — they are rebuilt from the config.
func encodeSystem(e *snapEnc, s *System) {
	encodeConfig(e, &s.Cfg)
	encodeIntrinsics(e, &s.Intr)
	e.i64(int64(s.frameCount))
	e.pose(s.prevPose)
	e.pose(s.prevRel)
	e.pose(s.keyPose)

	// Frame table: the retained frames, deduplicated by identity — the
	// previous frame, the key frame and the mapper's keyframe window may
	// alias, and the restored system must alias them the same way.
	st := s.mapper.ExportState()
	frames, index := collectFrames(s, st)
	e.u64(uint64(len(frames)))
	for _, f := range frames {
		encodeFrame(e, f)
	}
	e.i64(frameRef(index, s.prevFrame))
	e.i64(frameRef(index, s.keyFrame))

	e.poses(s.poses)
	e.poses(s.gt)
	e.u64(uint64(len(s.info)))
	for i := range s.info {
		encodeInfo(e, &s.info[i])
	}
	e.u64(uint64(len(s.traceFrames)))
	for i := range s.traceFrames {
		encodeTrace(e, &s.traceFrames[i])
	}

	// Mapper state: cloud, contribution tables, keyframe window (as frame
	// table references), RNG and optimizer moments.
	encodeCloud(e, st.Cloud)
	e.i32s(st.NonContrib)
	e.i32s(st.Contrib)
	e.bools(st.SkipSet)
	e.u64(uint64(len(st.Keyframes)))
	for _, kf := range st.Keyframes {
		e.i64(frameRef(index, kf.Frame))
		e.pose(kf.Pose)
	}
	e.u64(st.RNG)
	e.u64(uint64(len(st.Opt)))
	for _, g := range st.Opt {
		e.str(g.Name)
		e.i64(int64(g.Step))
		e.f64s(g.M)
		e.f64s(g.V)
	}
}

func decodeSystem(d *snapDec, pool *splat.ContextPool, perStep bool) *System {
	var cfg Config
	decodeConfig(d, &cfg)
	var intr camera.Intrinsics
	decodeIntrinsics(d, &intr)
	if d.err != nil {
		return nil
	}
	sys := newSystem(cfg, intr, pool, perStep)
	sys.frameCount = int(d.i64())
	sys.prevPose = d.pose()
	sys.prevRel = d.pose()
	sys.keyPose = d.pose()

	frames := make([]*frame.Frame, d.sliceLen(1))
	for i := range frames {
		frames[i] = decodeFrame(d)
	}
	sys.prevFrame = deref(d, frames, d.i64())
	sys.keyFrame = deref(d, frames, d.i64())

	sys.poses = d.poses()
	sys.gt = d.poses()
	sys.info = make([]FrameInfo, d.sliceLen(8))
	for i := range sys.info {
		decodeInfo(d, &sys.info[i])
	}
	sys.traceFrames = make([]trace.FrameTrace, d.sliceLen(8))
	for i := range sys.traceFrames {
		decodeTrace(d, &sys.traceFrames[i])
	}

	var st mapper.State
	st.Cloud = decodeCloud(d)
	st.NonContrib = d.i32s()
	st.Contrib = d.i32s()
	st.SkipSet = d.bools()
	st.Keyframes = make([]mapper.Keyframe, d.sliceLen(8))
	for i := range st.Keyframes {
		st.Keyframes[i].Frame = deref(d, frames, d.i64())
		st.Keyframes[i].Pose = d.pose()
	}
	st.RNG = d.u64()
	st.Opt = make([]mapper.OptGroupState, d.sliceLen(8))
	for i := range st.Opt {
		st.Opt[i].Name = d.str()
		st.Opt[i].Step = int(d.i64())
		st.Opt[i].M = d.f64s()
		st.Opt[i].V = d.f64s()
	}
	if d.err != nil {
		return nil
	}
	if err := sys.mapper.ImportState(st); err != nil {
		d.fail("mapper state: %v", err)
		return nil
	}
	return sys
}

// collectFrames gathers the retained frames in a deterministic order:
// mapper keyframes first (stream order), then the previous and key frames if
// distinct.
func collectFrames(s *System, st mapper.State) ([]*frame.Frame, map[*frame.Frame]int) {
	index := make(map[*frame.Frame]int)
	var frames []*frame.Frame
	add := func(f *frame.Frame) {
		if f == nil {
			return
		}
		if _, ok := index[f]; !ok {
			index[f] = len(frames)
			frames = append(frames, f)
		}
	}
	for _, kf := range st.Keyframes {
		add(kf.Frame)
	}
	add(s.prevFrame)
	add(s.keyFrame)
	return frames, index
}

func frameRef(index map[*frame.Frame]int, f *frame.Frame) int64 {
	if f == nil {
		return -1
	}
	return int64(index[f])
}

func deref(d *snapDec, frames []*frame.Frame, ref int64) *frame.Frame {
	if ref == -1 {
		return nil
	}
	if ref < 0 || ref >= int64(len(frames)) {
		d.fail("frame reference %d out of range (table has %d)", ref, len(frames))
		return nil
	}
	return frames[ref]
}

func encodeConfig(e *snapEnc, c *Config) {
	e.boolv(c.EnableMAT)
	e.boolv(c.EnableGCM)
	e.boolv(c.ForceCoarseOnly)
	e.i64(int64(c.TrackIters))
	e.i64(int64(c.IterT))
	e.f64(c.ThreshT)
	e.f64(c.ThreshM)
	e.i64(int64(c.Backbone))
	encodeMapperConfig(e, &c.Mapper)
	e.f64(c.TrackLR)
	e.i64(int64(c.KeyframeEvery))
	e.i64(int64(c.PruneEvery))
	e.i64(int64(c.CompactEvery))
	e.f64(c.CompactInactiveFrac)
	e.i64(int64(c.Workers))
	e.boolv(c.NoRenderCtx)
	e.boolv(c.EvalFPRate)
	e.boolv(c.PipelineME)
	e.i64(int64(c.CodecWorkers))
	e.boolv(c.CodecEarlyTerm)
}

func decodeConfig(d *snapDec, c *Config) {
	c.EnableMAT = d.boolv()
	c.EnableGCM = d.boolv()
	c.ForceCoarseOnly = d.boolv()
	c.TrackIters = int(d.i64())
	c.IterT = int(d.i64())
	c.ThreshT = d.f64()
	c.ThreshM = d.f64()
	c.Backbone = Backbone(d.i64())
	decodeMapperConfig(d, &c.Mapper)
	c.TrackLR = d.f64()
	c.KeyframeEvery = int(d.i64())
	c.PruneEvery = int(d.i64())
	c.CompactEvery = int(d.i64())
	c.CompactInactiveFrac = d.f64()
	c.Workers = int(d.i64())
	c.NoRenderCtx = d.boolv()
	c.EvalFPRate = d.boolv()
	c.PipelineME = d.boolv()
	c.CodecWorkers = int(d.i64())
	c.CodecEarlyTerm = d.boolv()
}

func encodeMapperConfig(e *snapEnc, c *mapper.Config) {
	e.i64(int64(c.MapIters))
	e.f64(c.ThreshAlpha)
	e.i64(int64(c.ThreshN))
	e.i64(int64(c.ContribPixMax))
	e.i64(int64(c.DensifyStride))
	e.f64(c.SilThreshold)
	e.f64(c.DepthErrThresh)
	e.f64(c.PruneOpacity)
	e.f64(c.LRMean)
	e.f64(c.LRColor)
	e.f64(c.LRLogit)
	e.f64(c.LRScale)
	e.i64(int64(c.KeyframeWindow))
	e.i64(int64(c.Workers))
	e.i64(c.Seed)
}

func decodeMapperConfig(d *snapDec, c *mapper.Config) {
	c.MapIters = int(d.i64())
	c.ThreshAlpha = d.f64()
	c.ThreshN = int(d.i64())
	c.ContribPixMax = int(d.i64())
	c.DensifyStride = int(d.i64())
	c.SilThreshold = d.f64()
	c.DepthErrThresh = d.f64()
	c.PruneOpacity = d.f64()
	c.LRMean = d.f64()
	c.LRColor = d.f64()
	c.LRLogit = d.f64()
	c.LRScale = d.f64()
	c.KeyframeWindow = int(d.i64())
	c.Workers = int(d.i64())
	c.Seed = d.i64()
}

func encodeIntrinsics(e *snapEnc, in *camera.Intrinsics) {
	e.f64(in.Fx)
	e.f64(in.Fy)
	e.f64(in.Cx)
	e.f64(in.Cy)
	e.i64(int64(in.W))
	e.i64(int64(in.H))
}

func decodeIntrinsics(d *snapDec, in *camera.Intrinsics) {
	in.Fx = d.f64()
	in.Fy = d.f64()
	in.Cx = d.f64()
	in.Cy = d.f64()
	in.W = int(d.i64())
	in.H = int(d.i64())
}

func encodeFrame(e *snapEnc, f *frame.Frame) {
	e.i64(int64(f.Index))
	e.pose(f.GTPose)
	e.i64(int64(f.Color.W))
	e.i64(int64(f.Color.H))
	for _, p := range f.Color.Pix {
		e.vec3(p)
	}
	e.f64s(f.Depth.D)
}

func decodeFrame(d *snapDec) *frame.Frame {
	f := &frame.Frame{}
	f.Index = int(d.i64())
	f.GTPose = d.pose()
	w, h := int(d.i64()), int(d.i64())
	if d.err != nil {
		return f
	}
	if w < 0 || h < 0 || w*h > d.remaining()/24 {
		d.fail("frame size %dx%d exceeds snapshot payload", w, h)
		return f
	}
	img := &frame.Image{W: w, H: h, Pix: make([]vecmath.Vec3, w*h)}
	for i := range img.Pix {
		img.Pix[i] = d.vec3()
	}
	f.Color = img
	f.Depth = &frame.DepthMap{W: w, H: h, D: d.f64s()}
	return f
}

func encodeInfo(e *snapEnc, in *FrameInfo) {
	e.f64(float64(in.Covisibility))
	e.f64(float64(in.KeyCovisibility))
	e.boolv(in.IsKeyFrame)
	e.boolv(in.CoarseOnly)
	e.i64(int64(in.RefineIters))
	e.f64(in.FPRate)
	e.boolv(in.FPValid)
}

func decodeInfo(d *snapDec, in *FrameInfo) {
	in.Covisibility = covis.Score(d.f64())
	in.KeyCovisibility = covis.Score(d.f64())
	in.IsKeyFrame = d.boolv()
	in.CoarseOnly = d.boolv()
	in.RefineIters = int(d.i64())
	in.FPRate = d.f64()
	in.FPValid = d.boolv()
}

func encodeTrace(e *snapEnc, ft *trace.FrameTrace) {
	e.i64(int64(ft.Index))
	e.f64(ft.Covisibility)
	e.boolv(ft.IsKeyFrame)
	e.boolv(ft.CoarseOnly)
	e.i64(ft.CodecSADOps)
	e.i64(ft.CoarseMACs)
	encodeStats(e, &ft.Track)
	encodeStats(e, &ft.Map)
	e.i64(int64(ft.NumGaussians))
	e.i64(int64(ft.SkippedGaussians))
	e.i64(int64(ft.PrunedGaussians))
	e.i64(int64(ft.CompactedSlots))
	e.i64(ft.ReclaimedBytes)
	// LoggingIDs aliases Map.RepTileLists on key frames; preserve the aliasing
	// so a restored trace compacts (remaps) exactly like the original.
	aliased := len(ft.LoggingIDs) > 0 && len(ft.Map.RepTileLists) > 0 &&
		&ft.LoggingIDs[0] == &ft.Map.RepTileLists[0]
	e.boolv(aliased)
	if !aliased {
		e.idLists(ft.LoggingIDs)
	}
}

func decodeTrace(d *snapDec, ft *trace.FrameTrace) {
	ft.Index = int(d.i64())
	ft.Covisibility = d.f64()
	ft.IsKeyFrame = d.boolv()
	ft.CoarseOnly = d.boolv()
	ft.CodecSADOps = d.i64()
	ft.CoarseMACs = d.i64()
	decodeStats(d, &ft.Track)
	decodeStats(d, &ft.Map)
	ft.NumGaussians = int(d.i64())
	ft.SkippedGaussians = int(d.i64())
	ft.PrunedGaussians = int(d.i64())
	ft.CompactedSlots = int(d.i64())
	ft.ReclaimedBytes = d.i64()
	if d.boolv() {
		ft.LoggingIDs = ft.Map.RepTileLists
	} else {
		ft.LoggingIDs = d.idLists()
	}
}

func encodeStats(e *snapEnc, s *trace.RenderStats) {
	e.i64(int64(s.Iters))
	e.i64(s.AlphaOps)
	e.i64(s.BlendOps)
	e.i64(s.BackwardOps)
	e.i64(s.Splats)
	e.i64(s.TileEntries)
	e.i64(s.Pixels)
	e.i32s(s.RepPerPixelBlend)
	e.i32s(s.RepPerPixelAlpha)
	e.idLists(s.RepTileLists)
	e.i64(int64(s.Width))
	e.i64(int64(s.Height))
}

func decodeStats(d *snapDec, s *trace.RenderStats) {
	s.Iters = int(d.i64())
	s.AlphaOps = d.i64()
	s.BlendOps = d.i64()
	s.BackwardOps = d.i64()
	s.Splats = d.i64()
	s.TileEntries = d.i64()
	s.Pixels = d.i64()
	s.RepPerPixelBlend = d.i32s()
	s.RepPerPixelAlpha = d.i32s()
	s.RepTileLists = d.idLists()
	s.Width = int(d.i64())
	s.Height = int(d.i64())
}

func encodeCloud(e *snapEnc, c *gauss.Cloud) {
	e.u64(uint64(len(c.Gaussians)))
	for i := range c.Gaussians {
		g := &c.Gaussians[i]
		e.vec3(g.Mean)
		e.vec3(g.LogScale)
		e.f64(g.Rot.W)
		e.f64(g.Rot.X)
		e.f64(g.Rot.Y)
		e.f64(g.Rot.Z)
		e.vec3(g.Color)
		e.f64(g.Logit)
	}
	e.bools(c.Active)
}

func decodeCloud(d *snapDec) *gauss.Cloud {
	n := d.sliceLen(14 * 8)
	gaussians := make([]gauss.Gaussian, n)
	for i := range gaussians {
		g := &gaussians[i]
		g.Mean = d.vec3()
		g.LogScale = d.vec3()
		g.Rot.W = d.f64()
		g.Rot.X = d.f64()
		g.Rot.Y = d.f64()
		g.Rot.Z = d.f64()
		g.Color = d.vec3()
		g.Logit = d.f64()
	}
	active := d.bools()
	c := &gauss.Cloud{}
	if err := c.SetAll(gaussians, active); err != nil {
		d.fail("cloud: %v", err)
	}
	return c
}

// snapEnc accumulates the little-endian payload in memory (the trailing
// checksum needs the whole byte stream anyway).
type snapEnc struct {
	buf []byte
}

func (e *snapEnc) raw(b []byte) { e.buf = append(e.buf, b...) }

func (e *snapEnc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *snapEnc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *snapEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *snapEnc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *snapEnc) boolv(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *snapEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.raw([]byte(s))
}

func (e *snapEnc) f64s(s []float64) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.f64(v)
	}
}

func (e *snapEnc) i32s(s []int32) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}

func (e *snapEnc) bools(s []bool) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.boolv(v)
	}
}

func (e *snapEnc) idLists(lists [][]int32) {
	e.u64(uint64(len(lists)))
	for _, l := range lists {
		e.i32s(l)
	}
}

func (e *snapEnc) vec3(v vecmath.Vec3) {
	e.f64(v.X)
	e.f64(v.Y)
	e.f64(v.Z)
}

func (e *snapEnc) pose(p vecmath.Pose) {
	e.f64(p.R.W)
	e.f64(p.R.X)
	e.f64(p.R.Y)
	e.f64(p.R.Z)
	e.vec3(p.T)
}

func (e *snapEnc) poses(ps []vecmath.Pose) {
	e.u64(uint64(len(ps)))
	for _, p := range ps {
		e.pose(p)
	}
}

// snapDec is the sticky-error cursor over a checksum-verified payload. Every
// read bounds-checks; the first failure latches and subsequent reads return
// zero values, so decode call sites stay linear.
type snapDec struct {
	b   []byte
	off int
	err error
}

func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *snapDec) remaining() int { return len(d.b) - d.off }

func (d *snapDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.fail("payload exhausted at offset %d (need %d bytes, have %d)", d.off, n, d.remaining())
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *snapDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *snapDec) i64() int64   { return int64(d.u64()) }
func (d *snapDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *snapDec) boolv() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// sliceLen reads a length prefix and sanity-checks it against the remaining
// payload (unit = minimum encoded bytes per element), so a logic mismatch
// between encoder and decoder fails with an error instead of a huge make.
func (d *snapDec) sliceLen(unit int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if unit < 1 {
		unit = 1
	}
	if n > uint64(d.remaining()/unit) {
		d.fail("length %d exceeds remaining payload (%d bytes)", n, d.remaining())
		return 0
	}
	return int(n)
}

func (d *snapDec) str() string {
	n := d.sliceLen(1)
	return string(d.take(n))
}

func (d *snapDec) f64s() []float64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *snapDec) i32s() []int32 {
	n := d.sliceLen(4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func (d *snapDec) bools() []bool {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.boolv()
	}
	return out
}

func (d *snapDec) idLists() [][]int32 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([][]int32, n)
	for i := range out {
		out[i] = d.i32s()
	}
	return out
}

func (d *snapDec) vec3() vecmath.Vec3 {
	return vecmath.Vec3{X: d.f64(), Y: d.f64(), Z: d.f64()}
}

func (d *snapDec) pose() vecmath.Pose {
	var p vecmath.Pose
	p.R.W = d.f64()
	p.R.X = d.f64()
	p.R.Y = d.f64()
	p.R.Z = d.f64()
	p.T = d.vec3()
	return p
}

func (d *snapDec) poses() []vecmath.Pose {
	n := d.sliceLen(7 * 8)
	if n == 0 {
		return nil
	}
	out := make([]vecmath.Pose, n)
	for i := range out {
		out[i] = d.pose()
	}
	return out
}
