// Package nd is the nondetsource golden corpus: wall-clock reads, the
// global (unseeded) math/rand state, and multi-way selects are flagged;
// seeded generators, duration constants, and single-case or defaulted
// selects are not.
package nd

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want nondetsource
}

// Elapsed reads the wall clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want nondetsource
}

// GlobalDraw consumes the process-global, randomly seeded source.
func GlobalDraw() int {
	return rand.Intn(10) // want nondetsource
}

// SeededDraw builds an explicitly seeded generator; constructors and methods
// on the resulting *rand.Rand are reproducible and stay clean.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Racy races two receives; which case fires depends on scheduling.
func Racy(a, b chan int) int {
	select { // want nondetsource
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Polite has one comm case plus default: no scheduling race to flag.
func Polite(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// Justified races two drains whose winner is observationally equivalent.
func Justified(a, b chan int) {
	//ags:allow(nondetsource, both cases drain to the same sink and the winner never reaches an output)
	select {
	case <-a:
	case <-b:
	}
}

// Patience uses time only for arithmetic on durations, never the clock.
func Patience(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
