package fleet

import (
	"errors"
	"fmt"
	"time"
)

// Checkpoint-replay recovery: surviving *unclean* node death without moving
// a single output bit. Graceful drain (migrate.go) can ask the dying node
// for a snapshot; an uncleanly killed node cannot be asked for anything, so
// the stream keeps its own insurance on the router side:
//
//   - a checkpoint: the last AGSSNAP snapshot taken over the wire (the same
//     snapshot verb migration uses) every CheckpointEvery acknowledged
//     pushes, and
//   - a replay buffer: every encoded frame acknowledged since that
//     checkpoint, in push order — bounded by CheckpointEvery frames (plus
//     the one in flight), because the buffer is cleared each time a
//     checkpoint lands.
//
// When a push, snapshot, or close fails, the error is classified first
// (isNodeLoss): placement bounces and remote application errors are not
// node loss and are never retried elsewhere — replaying the same
// conversation to another node would fail identically. A transport failure
// is node loss: the stream re-places itself through the same consistent-hash
// candidate order as Open, restores the checkpoint on the chosen peer
// (frame-count checked, exactly like migration), replays the buffered frames
// in order, and continues as if nothing happened. Because the snapshot codec
// is the determinism contract, the recovered stream's Close digest is
// bit-identical to an undisturbed sequential run — asserted under -race by
// the recovery tests and gated continuously by the perf-chaos experiment.
//
// Transient placement failures (every reachable peer bounced the restore, or
// no peer is reachable yet) are retried with a bounded, deterministic
// backoff: the delay is a pure function of the attempt index — no clock is
// read — so the retry schedule is identical on every run.

// Recovery failure modes, distinct and testable.
var (
	// ErrNodeLost: the connection to the stream's serving node failed and
	// the stream could not (or was not configured to) recover. Errors
	// wrapping it carry a *NodeLostError with the node's name and the
	// last-acknowledged frame count.
	ErrNodeLost = errors.New("fleet: serving node lost")
	// ErrNoPeer: a recovery attempt found no peer that would take the
	// stream (none reachable, or every candidate bounced). Transient: the
	// recovery loop retries it with deterministic backoff.
	ErrNoPeer = errors.New("fleet: no admitting peer for recovery")
	// ErrRecoveryExhausted: every bounded recovery attempt failed.
	ErrRecoveryExhausted = errors.New("fleet: recovery attempts exhausted")
)

// errRecoveryFatal marks recovery failures no other candidate can fix (for
// example a restore continuity mismatch): the attempt loop stops
// immediately instead of walking the remaining candidates.
var errRecoveryFatal = errors.New("fleet: recovery cannot proceed")

// NodeLostError reports which node died under a stream and how many frames
// it had acknowledged — the resume point a caller with its own frame source
// could replay from. errors.Is(err, ErrNodeLost) matches it.
type NodeLostError struct {
	Node  string // name of the lost node
	Acked int    // frames acknowledged before the loss
	Cause error  // the underlying transport failure
}

func (e *NodeLostError) Error() string {
	return fmt.Sprintf("fleet: node %q lost after %d acked frame(s): %v", e.Node, e.Acked, e.Cause)
}

func (e *NodeLostError) Is(target error) bool { return target == ErrNodeLost }

func (e *NodeLostError) Unwrap() error { return e.Cause }

// StreamOptions arms and tunes a stream's fault tolerance. The zero value
// disables recovery entirely (Open's default): node loss then surfaces as
// ErrNodeLost with a partial summary.
type StreamOptions struct {
	// CheckpointEvery > 0 enables checkpoint-replay recovery: the stream
	// snapshots its session over the wire every CheckpointEvery
	// acknowledged pushes and keeps the frames since in a replay buffer
	// (bounded by the same number). Smaller values bound replay work and
	// buffer memory tighter; larger values take fewer snapshots.
	CheckpointEvery int
	// RecoverAttempts bounds the re-placement attempts per failure
	// (default 4).
	RecoverAttempts int
	// BackoffBase is the delay before the second attempt, doubling each
	// attempt after that — a pure function of the attempt index, so the
	// schedule is deterministic (default 5ms).
	BackoffBase time.Duration
	// Sleep, if non-nil, replaces time.Sleep for the backoff delays (tests
	// inject a counter to assert the schedule without waiting it out).
	Sleep func(time.Duration)
}

const (
	defaultRecoverAttempts = 4
	defaultBackoffBase     = 5 * time.Millisecond
)

// isNodeLoss classifies a request failure: true means the transport to the
// node failed (died mid-conversation, refused the dial, truncated or
// corrupted a frame) — the cases checkpoint-replay recovery exists for.
// False means the node is alive and answered: placement bounces
// (ErrAdmission, ErrDraining) and remote application errors (remoteError)
// must never trigger a re-place, because the same request would fail the
// same way anywhere.
func isNodeLoss(err error) bool {
	if err == nil {
		return false
	}
	var re *remoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, ErrAdmission) && !errors.Is(err, ErrDraining)
}

func (s *Stream) recoveryEnabled() bool { return s.opts.CheckpointEvery > 0 }

// closedErr explains an operation on a detached stream: "after Close" for a
// clean close, the sticky loss otherwise.
func (s *Stream) closedErr(op string) error {
	if s.lost != nil {
		return fmt.Errorf("fleet: stream %q: %s: %w", s.name, op, s.lost)
	}
	return fmt.Errorf("fleet: stream %q: %s after Close", s.name, op)
}

// asNodeLost wraps a transport failure as a NodeLostError unless it already
// is one (recovery exhaustion wraps the original loss itself).
func (s *Stream) asNodeLost(err error, node string) error {
	if errors.Is(err, ErrNodeLost) {
		return err
	}
	return &NodeLostError{Node: node, Acked: s.pushed, Cause: err}
}

// bufferFrame retains one encoded frame for replay. Deliberately outside the
// Push hot path proper: the copy allocates until the buffer's slots reach
// their high-water marks, which is the price of recovery, paid only when it
// is armed.
func (s *Stream) bufferFrame(b []byte) {
	if n := len(s.replay); cap(s.replay) > n {
		// Reuse a cleared slot's backing array before growing anything.
		slot := s.replay[:n+1][n]
		s.replay = append(s.replay, append(slot[:0], b...))
		return
	}
	s.replay = append(s.replay, append([]byte(nil), b...))
}

// dropLastBuffered removes the in-flight frame from the replay buffer after
// a push the node rejected without dying — the frame was never acknowledged
// and must not be replayed later.
func (s *Stream) dropLastBuffered() {
	if n := len(s.replay); n > 0 {
		s.replay = s.replay[:n-1]
	}
}

// setCheckpoint adopts snapshot bytes taken at `frames` processed frames and
// clears the replay buffer they supersede.
func (s *Stream) setCheckpoint(snap []byte, frames int) {
	s.checkpoint = append(s.checkpoint[:0], snap...)
	s.checkpointFrames = frames
	s.replay = s.replay[:0]
}

// pushFailed handles a failed push round trip; nil means recovery replayed
// the frame onto a new node and the push counts as acknowledged.
func (s *Stream) pushFailed(err error) error {
	if !isNodeLoss(err) {
		if s.recoveryEnabled() {
			s.dropLastBuffered()
		}
		return fmt.Errorf("fleet: stream %q: push: %w", s.name, err)
	}
	node := s.node.name
	if !s.recoveryEnabled() {
		s.teardown()
		s.lost = s.asNodeLost(err, node)
		return fmt.Errorf("fleet: stream %q: push: %w", s.name, s.lost)
	}
	if rerr := s.recover(err); rerr != nil {
		return fmt.Errorf("fleet: stream %q: push: %w", s.name, rerr)
	}
	return nil
}

// migrateFailed handles a failed graceful migration; nil means recovery
// rebuilt the stream from its checkpoint instead.
func (s *Stream) migrateFailed(err error) error {
	node := s.node.name
	if isNodeLoss(err) && s.recoveryEnabled() {
		if rerr := s.recover(err); rerr != nil {
			return fmt.Errorf("fleet: stream %q: migrate off %q: %w", s.name, node, rerr)
		}
		return nil
	}
	if isNodeLoss(err) {
		s.lost = s.asNodeLost(err, node)
		return fmt.Errorf("fleet: stream %q: migrate off %q: %w", s.name, node, s.lost)
	}
	return fmt.Errorf("fleet: stream %q: migrate off %q: %w", s.name, node, err)
}

// maybeCheckpoint snapshots the session over the wire once enough pushes
// have been acknowledged since the last checkpoint. The replay buffer is
// cleared only after the snapshot bytes are safely in hand, so a node death
// *during* the snapshot loses nothing: recovery falls back to the previous
// checkpoint (or a fresh open) plus the intact buffer.
func (s *Stream) maybeCheckpoint() error {
	if s.pushed-s.checkpointFrames < s.opts.CheckpointEvery {
		return nil
	}
	rv, payload, err := s.w.roundTrip(vSnapshot, nil)
	if err != nil {
		if !isNodeLoss(err) {
			return fmt.Errorf("fleet: stream %q: checkpoint: %w", s.name, err)
		}
		if rerr := s.recover(err); rerr != nil {
			return fmt.Errorf("fleet: stream %q: checkpoint: %w", s.name, rerr)
		}
		rv, payload, err = s.w.roundTrip(vSnapshot, nil)
		if err != nil {
			return fmt.Errorf("fleet: stream %q: checkpoint after recovery: %w", s.name, err)
		}
	}
	if rv != vSnapData {
		return fmt.Errorf("fleet: stream %q: checkpoint reply verb %s", s.name, rv)
	}
	s.setCheckpoint(payload, s.pushed)
	return nil
}

// recover re-places the stream after node loss: bounded attempts, each one
// walking the placement candidate order (restore checkpoint or open fresh,
// then replay), with deterministic backoff between attempts for transient
// no-peer failures. On success the stream is attached to its new node with
// every buffered frame acknowledged there; on failure the stream is lost
// for good and the sticky error is set.
func (s *Stream) recover(cause error) error {
	lost := s.node.name
	s.teardown()
	attempts := s.opts.RecoverAttempts
	if attempts <= 0 {
		attempts = defaultRecoverAttempts
	}
	base := s.opts.BackoffBase
	if base <= 0 {
		base = defaultBackoffBase
	}
	sleep := s.opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	last := cause
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep(base << (attempt - 1))
		}
		err := s.tryRecover()
		if err == nil {
			s.recoveries++
			s.replayed += len(s.replay)
			s.r.mu.Lock()
			s.r.recoveries++
			s.r.replayedFrames += len(s.replay)
			s.r.mu.Unlock()
			return nil
		}
		last = err
		if !errors.Is(err, ErrNoPeer) {
			// Fatal: no amount of retrying fixes a continuity mismatch or a
			// remote application error.
			s.lost = s.asNodeLost(err, lost)
			return s.lost
		}
	}
	s.lost = &NodeLostError{
		Node: lost, Acked: s.pushed,
		Cause: fmt.Errorf("%w after %d attempt(s): %w", ErrRecoveryExhausted, attempts, last),
	}
	return s.lost
}

// tryRecover is one re-placement attempt: poll reachable loads, walk the
// candidate order, attach to the first peer that takes the stream.
func (s *Stream) tryRecover() error {
	nodes, loads, err := s.r.reachableLoads()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoPeer, err)
	}
	order := Candidates(s.sizeW, s.sizeH, loads)
	if len(order) == 0 {
		return fmt.Errorf("%w: every reachable node is draining", ErrNoPeer)
	}
	var lastErr error
	for _, idx := range order {
		w, err := s.attachTo(nodes[idx].addr)
		if err == nil {
			s.w, s.node = w, nodes[idx]
			return nil
		}
		switch {
		case isPlacementBounce(err):
			lastErr = err
		case errors.Is(err, errRecoveryFatal):
			return err
		case isNodeLoss(err):
			nodes[idx].markUnreachable()
			lastErr = err
		default:
			return err // remote application error: identical anywhere
		}
	}
	return fmt.Errorf("%w: every candidate refused or was unreachable: %w", ErrNoPeer, lastErr)
}

// attachTo rebuilds the stream's session on one candidate node: restore the
// checkpoint (or open fresh when none exists yet), verify frame-count
// continuity, then replay the buffered frames in push order. Any failure
// leaves no connection behind.
func (s *Stream) attachTo(addr string) (*wire, error) {
	var w *wire
	if s.checkpoint != nil {
		var frames int
		var err error
		w, frames, err = restoreOn(addr, encodeRestore(nil, s.name, s.checkpoint))
		if err != nil {
			return nil, err
		}
		if frames != s.checkpointFrames {
			// The restored system disagrees about where the checkpoint
			// stands; replaying from here would corrupt the output.
			w.roundTrip(vClose, nil)
			w.Close()
			return nil, fmt.Errorf("%w: restore continuity check failed on %s: node at frame %d, checkpoint at %d",
				errRecoveryFatal, addr, frames, s.checkpointFrames)
		}
	} else {
		var err error
		w, err = openOn(addr, s.openPayload)
		if err != nil {
			return nil, err
		}
	}
	for i, fb := range s.replay {
		rv, _, err := w.roundTrip(vPush, fb)
		if err == nil && rv != vOK {
			err = fmt.Errorf("reply verb %s", rv)
		}
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("replay frame %d/%d: %w", i+1, len(s.replay), err)
		}
	}
	return w, nil
}
