package bench

import (
	"fmt"
	"io"

	"ags/internal/hw/platform"
	"ags/internal/metrics"
	"ags/internal/scene"
	"ags/internal/slam"
)

func expTable1() Experiment {
	return expDef{
		id: "table1", paper: "Table 1 (category comparison)",
		needs:  specsFor([]string{"Desk"}, VarBaseline, VarAGS, VarDroid),
		render: (*Suite).Table1,
	}
}

func expTable2() Experiment {
	return expDef{
		id: "table2", paper: "Table 2 (ATE RMSE)",
		needs:  specsFor(scene.TUMNames(), VarBaseline, VarAGS, VarDroid),
		render: (*Suite).Table2,
	}
}

func expFig14() Experiment {
	return expDef{
		id: "fig14", paper: "Fig. 14 (PSNR)",
		needs:  specsFor(scene.Names(), VarBaseline, VarAGS),
		render: (*Suite).Fig14,
	}
}

func expTable4() Experiment {
	return expDef{
		id: "table4", paper: "Table 4 (Droid+SplaTAM)",
		needs:  specsFor(scene.TUMNames(), VarAGS, VarDroid),
		render: (*Suite).Table4,
	}
}

// fpSpec is the FPRate run for one sequence: the AGS pipeline with
// false-positive evaluation enabled, keyed apart from the plain AGS runs.
func fpSpec(seq string) RunSpec {
	return RunSpec{
		Seq: seq, Variant: VarAGS, Key: "fp",
		Override: func(c *slam.Config) { c.EvalFPRate = true },
	}
}

func expFPRate() Experiment {
	specs := make([]RunSpec, 0, len(scene.TUMNames()))
	for _, name := range scene.TUMNames() {
		specs = append(specs, fpSpec(name))
	}
	return expDef{
		id: "fp", paper: "§6.2 (false-positive rate)",
		needs:  specs,
		render: (*Suite).FPRate,
	}
}

// Table1 reproduces the paper's Table 1: SLAM category comparison on Desk.
// The 3DGS-SLAM rows are measured; the traditional-SLAM row uses the
// coarse-only geometric tracker (our stand-in for classical odometry); the
// NeRF band is reported from the paper since no NeRF substrate exists here.
func (s *Suite) Table1(w io.Writer) error {
	t := NewTable("Table 1: SLAM algorithm categories (Desk)",
		"Category", "Algorithm", "ATE(cm)", "PSNR(dB)", "Latency(s/frame, modeled)")

	base := s.MustRun(Spec("Desk", VarBaseline))
	ags := s.MustRun(Spec("Desk", VarAGS))
	droid := s.MustRun(Spec("Desk", VarDroid))

	addRow := func(cat, name string, b *Bundle, pl platform.Platform) error {
		ate, err := b.Result.ATERMSECm()
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		tot := platform.RunTotal(pl, b.Result.Trace)
		perFrame := tot.TotalNs / float64(len(b.Result.Poses)) * 1e-9
		t.AddRow(cat, name, ate, psnr, fmt.Sprintf("%.4f", perFrame))
		return nil
	}
	if err := addRow("3DGS-SLAM", "SplaTAM-style baseline", base, platform.A100()); err != nil {
		return err
	}
	if err := addRow("3DGS-SLAM", "AGS (this work)", ags, platform.AGSServer()); err != nil {
		return err
	}
	if err := addRow("Trad-SLAM", "geometric odometry (coarse-only)", droid, platform.A100()); err != nil {
		return err
	}
	t.AddNote("paper bands: 3DGS-SLAM high ATE/high PSNR/slow; Trad-SLAM low ATE/low PSNR/fast")
	t.AddNote("NeRF-SLAM row omitted: no NeRF substrate in this reproduction")
	t.Write(w)
	return nil
}

// Table2 reproduces Table 2: tracking accuracy (ATE RMSE, cm) on the
// TUM-style sequences for the baseline, AGS, and the classical tracker.
func (s *Suite) Table2(w io.Writer) error {
	t := NewTable("Table 2: Tracking Accuracy (ATE RMSE, cm, lower is better)",
		append([]string{"Algorithm"}, append(scene.TUMNames(), "GeoMean")...)...)
	rows := []struct {
		label string
		v     Variant
	}{
		{"SplaTAM-style (3DGS)", VarBaseline},
		{"AGS (3DGS)", VarAGS},
		{"Geometric odometry (Trad)", VarDroid},
	}
	for _, r := range rows {
		vals := map[string]float64{}
		for _, name := range scene.TUMNames() {
			b, err := s.Run(Spec(name, r.v))
			if err != nil {
				return err
			}
			ate, err := b.Result.ATERMSECm()
			if err != nil {
				return err
			}
			vals[name] = ate
		}
		cells := []interface{}{r.label}
		for _, v := range geoMeanOf(vals, scene.TUMNames()) {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: SplaTAM 5.54 geomean, AGS 2.81 (1.97x better), Orb-SLAM2 1.98")
	t.Write(w)
	return nil
}

// Fig14 reproduces Fig. 14: PSNR of the baseline vs AGS on all sequences.
func (s *Suite) Fig14(w io.Writer) error {
	t := NewTable("Fig. 14: PSNR (dB, higher is better)",
		append([]string{"Algorithm"}, append(scene.Names(), "GeoMean")...)...)
	for _, r := range []struct {
		label string
		v     Variant
	}{{"Baseline", VarBaseline}, {"AGS", VarAGS}} {
		vals := map[string]float64{}
		for _, name := range scene.Names() {
			b, err := s.Run(Spec(name, r.v))
			if err != nil {
				return err
			}
			p, err := b.PSNR()
			if err != nil {
				return err
			}
			vals[name] = p
		}
		cells := []interface{}{r.label}
		for _, v := range geoMeanOf(vals, scene.Names()) {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: AGS loses 2.36%% PSNR on average vs the baseline")
	t.Write(w)
	return nil
}

// Table4 reproduces Table 4: PSNR of AGS vs directly integrating the coarse
// tracker with SplaTAM (no fine-grained refinement).
func (s *Suite) Table4(w io.Writer) error {
	t := NewTable("Table 4: PSNR vs direct Droid+SplaTAM integration (dB)",
		append([]string{"Benchmark"}, append(scene.TUMNames(), "GeoMean")...)...)
	for _, r := range []struct {
		label string
		v     Variant
	}{{"AGS", VarAGS}, {"Droid+SplaTAM (coarse only)", VarDroid}} {
		vals := map[string]float64{}
		for _, name := range scene.TUMNames() {
			b, err := s.Run(Spec(name, r.v))
			if err != nil {
				return err
			}
			p, err := b.PSNR()
			if err != nil {
				return err
			}
			vals[name] = p
		}
		cells := []interface{}{r.label}
		for _, v := range geoMeanOf(vals, scene.TUMNames()) {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: 21.55 vs 20.87 dB — refinement preserves mapping quality")
	t.Write(w)
	return nil
}

// FPRate reproduces the §6.2 false-positive analysis of the contribution
// prediction.
func (s *Suite) FPRate(w io.Writer) error {
	t := NewTable("§6.2: False-positive rate of non-contributory prediction (%)",
		"Sequence", "Mean FP rate", "Non-key frames")
	var all []float64
	for _, name := range scene.TUMNames() {
		b, err := s.Run(fpSpec(name))
		if err != nil {
			return err
		}
		var sum float64
		n := 0
		for _, inf := range b.Result.Info {
			if inf.FPValid {
				sum += inf.FPRate
				n++
			}
		}
		rate := 0.0
		if n > 0 {
			rate = 100 * sum / float64(n)
		}
		all = append(all, rate)
		t.AddRow(name, rate, n)
	}
	var mean float64
	for _, v := range all {
		mean += v
	}
	if len(all) > 0 {
		mean /= float64(len(all))
	}
	t.AddRow("Average", mean, "")
	t.AddNote("paper: 5.7%% average FP rate")
	t.Write(w)
	return nil
}

// ensure metrics stays imported even if geomean helpers change.
var _ = metrics.GeoMean
