GO ?= go

.PHONY: build test race vet fmt lint bench verify determinism bench-batch profile serve-demo compact-demo fleet-demo chaos-demo grid-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that own goroutines (codec worker pool, slam ME
# prefetch, splat render workers ride along via slam).
race:
	$(GO) test -race ./internal/codec ./internal/slam

vet:
	$(GO) vet ./...

# Repo-specific static analysis: ags-vet enforces the determinism contract
# (no map-iteration-order leaks, no wall-clock/global-rand reads, no rogue
# goroutine launch sites in internal packages) and the zero-alloc contract
# (//ags:hotpath functions must not allocate). Suppressions live next to the
# code as //ags:allow(check, reason); there is no baseline file.
lint:
	$(GO) run ./cmd/ags-vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x .

# Tier-1 gate: formatting, static checks (vet + ags-vet), and the full test
# suite under the race detector so new concurrency is always race-checked.
verify: fmt vet lint
	$(GO) test -race ./...

# Determinism gate: run the splat sharding equivalence tests twice so a
# scheduling-dependent regression fails loudly instead of hiding behind one
# lucky interleaving (CI runs this alongside verify).
determinism:
	$(GO) test -count=2 -run Determinism ./internal/splat/...

# Batch-scheduler smoke: perf-me, perf-render (which also gates the
# contexted-vs-one-shot digests and allocation ratio), perf-serve (which
# gates cross-session digest equality and the context-pool capacity bound),
# perf-compact (which gates the compacted-vs-uncompacted digest equality and
# the reclaimed-slot accounting), perf-chaos (which gates checkpoint-replay
# recovery under injected faults: digests bit-identical to sequential runs
# after an unclean node kill and a mid-frame sever) and a pipeline experiment
# through the warm/render scheduler at two jobs, emitting the
# machine-readable report (CI uploads bench.json so the perf trajectory is
# recorded). table1 rides along because perf-me alone is dataset-only and
# would leave the report's per-run wall-time section empty. perf-grid boots
# its own 2-worker loopback grid and gates digest-verified distributed
# execution plus retry over a killed worker.
bench-batch:
	$(GO) run ./cmd/ags-bench -exp perf-me,perf-render,perf-serve,perf-compact,perf-fleet,perf-chaos,perf-grid,table1 -jobs 2 -json bench.json -q

# Streaming-server demo: two concurrent camera streams through one
# slam.Server under the race detector — the quickest end-to-end check that
# the multi-session surface is race-clean.
serve-demo:
	$(GO) run -race ./examples/multistream

# Compaction + snapshot/resume demo: prune hard, compact periodically,
# snapshot a session mid-stream, restore it on a fresh server and finish —
# asserting (exit non-zero otherwise) that the resumed run's Result digest
# is bit-identical to an uninterrupted run. Runs under the race detector
# because Session.Snapshot synchronizes with the session's pipeline loop.
compact-demo:
	$(GO) run -race ./examples/snapshot_resume

# Fleet migration demo: three streams across two loopback fleet nodes, one
# node drained mid-stream so its sessions snapshot over the wire and restore
# on the peer — asserting (exit non-zero otherwise) that every stream's
# digest is bit-identical to a sequential in-process run. Runs under the
# race detector: it exercises the node's connection handlers, the router's
# placement path and the migration hand-off concurrently.
fleet-demo:
	$(GO) run -race ./examples/fleet_migrate

# Fault-tolerance demo: three streams across three loopback fleet nodes, each
# behind a deterministic fault injector; one node is killed uncleanly
# mid-stream (listener + every connection, no drain). Streams recover via
# checkpoint restore + replay and every digest is asserted bit-identical to a
# sequential run; the router's health check evicts the corpse and re-admits a
# replacement. Runs under the race detector: recovery re-dials and replays
# while the node's connection handlers unwind.
chaos-demo:
	$(GO) run -race ./examples/fleet_recover

# Distributed-bench demo: table1's warm phase over a 2-worker loopback grid,
# coordinator and workers in one race-checked process. Asserts (exit non-zero
# otherwise) that the distributed batch renders byte-identical text to a
# local -jobs run, that every worker ran at least one digest-verified job,
# and that a worker killed uncleanly mid job reply only costs a retry on the
# survivor — same bytes, exactly one eviction.
grid-demo:
	$(GO) run -race ./examples/grid_bench

# Profile the splat hot path: runs the perf-render experiment under pprof so
# perf PRs can attach flame-graph evidence instead of eyeballing wall times.
# Inspect with: go tool pprof cpu.pprof (or mem.pprof).
profile:
	$(GO) run ./cmd/ags-bench -exp perf-render -q -cpuprofile cpu.pprof -memprofile mem.pprof
