package scene

import (
	"fmt"
	"math"
	"slices"

	"ags/internal/camera"
	"ags/internal/frame"
)

// Config controls dataset generation.
type Config struct {
	Width, Height int
	Frames        int
	Seed          int64
	VFoV          float64 // vertical field of view in radians; 0 = 60 degrees
}

// DefaultConfig is the resolution/length used throughout the experiments:
// small enough that the full 9-sequence suite runs in minutes on a CPU,
// large enough that tile-level and covisibility-level effects appear.
func DefaultConfig() Config {
	return Config{Width: 96, Height: 72, Frames: 40, Seed: 1}
}

// Sequence is a generated RGB-D dataset with ground-truth poses.
type Sequence struct {
	Name   string
	Intr   camera.Intrinsics
	Frames []*frame.Frame
	Traj   Trajectory
	World  *World
}

// Generate builds the named sequence. Known names are those in Names().
func Generate(name string, cfg Config) (*Sequence, error) {
	builder, ok := scripts()[name]
	if !ok {
		known := Names()
		slices.Sort(known)
		return nil, fmt.Errorf("scene: unknown sequence %q (known: %v)", name, known)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("scene: invalid size %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("scene: invalid frame count %d", cfg.Frames)
	}
	vfov := cfg.VFoV
	if vfov == 0 {
		vfov = math.Pi / 3
	}
	world, script := builder(cfg.Seed)
	if cfg.Frames < RefFrames {
		// Short sequences cover a prefix of the path at full-length
		// per-frame motion, instead of sweeping the whole path faster than
		// any real camera would.
		script.Span = float64(cfg.Frames) / RefFrames
	}
	traj := script.Build(cfg.Frames)
	intr := camera.NewIntrinsics(cfg.Width, cfg.Height, vfov)
	seq := &Sequence{Name: name, Intr: intr, Traj: traj, World: world}
	for i, pose := range traj {
		cam := camera.Camera{Intr: intr, Pose: pose}
		img, depth := world.RenderFrame(cam)
		seq.Frames = append(seq.Frames, &frame.Frame{
			Index:  i,
			Color:  img,
			Depth:  depth,
			GTPose: pose,
		})
	}
	return seq, nil
}

// MustGenerate is Generate but panics on error; for tests and examples where
// the name is a compile-time constant.
func MustGenerate(name string, cfg Config) *Sequence {
	seq, err := Generate(name, cfg)
	if err != nil {
		panic(err)
	}
	return seq
}
