package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// The injector's one random choice — where inside a doomed frame the cut
// lands — must be a pure function of the seed.
func TestSeededCutsAreReproducible(t *testing.T) {
	cuts := func(seed uint64) []int {
		in := New(Config{Seed: seed})
		out := make([]int, 0, 8)
		for i := 0; i < 8; i++ {
			in.ArmSever(1)
			action, cut := in.onWrite(1000)
			if action != actSever {
				t.Fatalf("write %d: action %d, want sever", i, action)
			}
			if cut < 1 || cut > 999 {
				t.Fatalf("write %d: cut %d outside (0, 1000)", i, cut)
			}
			out = append(out, cut)
		}
		return out
	}
	a, b := cuts(7), cuts(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at cut %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := cuts(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical cut schedules")
	}
}

func TestOneByteFramesCannotTruncate(t *testing.T) {
	in := New(Config{Seed: 3, SeverAtWrite: 1})
	action, cut := in.onWrite(1)
	if action != actSever || cut != 0 {
		t.Fatalf("1-byte sever: action %d cut %d, want sever with 0 bytes out", action, cut)
	}
	if st := in.Stats(); st.Truncations != 0 {
		t.Fatalf("truncations %d, want 0 for an empty prefix", st.Truncations)
	}
}

// A sever kills exactly one connection mid-frame; the listener and the
// endpoint live on.
func TestSeverCutsMidFrame(t *testing.T) {
	in := New(Config{Seed: 1, SeverAtWrite: 2})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listen(inner)
	defer in.Kill()
	accepted := make(chan net.Conn, 2)
	//ags:allow(goroutine-site, test fan-out: accept loop feeding loopback conns to the test body)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	msg := bytes.Repeat([]byte("x"), 256)
	if _, err := srv.Write(msg); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	n, err := srv.Write(msg)
	if err == nil {
		t.Fatal("write 2 should be severed")
	}
	if n < 1 || n >= len(msg) {
		t.Fatalf("severed write let %d/%d bytes out, want a strict mid-frame cut", n, len(msg))
	}
	got, _ := io.ReadAll(client)
	if len(got) != len(msg)+n {
		t.Fatalf("client saw %d bytes, want %d (one full frame + the cut prefix)", len(got), len(msg)+n)
	}
	if st := in.Stats(); st.Writes != 2 || st.Severs != 1 || st.Truncations != 1 || st.Kills != 0 {
		t.Fatalf("stats after sever: %+v", st)
	}
	// The endpoint survives a sever: new connections still land.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("listener died with the severed conn: %v", err)
	}
	c2.Close()
}

// Kill takes down the listener and every live connection at once, and is
// idempotent.
func TestKillClosesListenerAndConns(t *testing.T) {
	in := New(Config{Seed: 2})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listen(inner)
	accepted := make(chan net.Conn, 2)
	//ags:allow(goroutine-site, test fan-out: accept loop feeding loopback conns to the test body)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	<-accepted
	in.Kill()
	if !in.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	buf := make([]byte, 1)
	if _, err := c1.Read(buf); err != io.EOF {
		t.Fatalf("conn 1 read after kill: %v, want EOF", err)
	}
	if _, err := c2.Read(buf); err != io.EOF {
		t.Fatalf("conn 2 read after kill: %v, want EOF", err)
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept succeeded after kill")
	}
	in.Kill() // idempotent
	if st := in.Stats(); st.Kills != 1 {
		t.Fatalf("kills %d after double Kill, want 1", st.Kills)
	}
}

// KillAtWrite from Config (the CLI's -chaos-kill-after path) fires without
// any Arm call.
func TestConfigScheduledKill(t *testing.T) {
	in := New(Config{Seed: 5, KillAtWrite: 1})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listen(inner)
	accepted := make(chan net.Conn, 1)
	//ags:allow(goroutine-site, test fan-out: single accept for a loopback conn)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv := <-accepted
	if _, err := srv.Write(bytes.Repeat([]byte("y"), 64)); err == nil {
		t.Fatal("first write should trigger the scheduled kill")
	}
	if !in.Killed() {
		t.Fatal("endpoint not killed by KillAtWrite")
	}
}
