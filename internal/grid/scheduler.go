package grid

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"ags/internal/fleet"
	"ags/internal/scene"
	"ags/internal/slam"
)

// Sentinel failures the scheduler surfaces distinctly. None of them are
// retried on another worker: each means a live worker (or this coordinator)
// produced a wrong answer, so the same job would fail identically elsewhere
// and the batch must stop loudly instead of shipping a poisoned table.
var (
	// ErrNoWorkers means every configured worker is unreachable, even after a
	// redial pass.
	ErrNoWorkers = errors.New("grid: no reachable workers")
	// ErrBadResult means a worker's reply payload did not decode or restore.
	ErrBadResult = errors.New("grid: malformed worker result")
	// ErrDigestMismatch means the coordinator's restored result hashed
	// differently from the digest the worker computed before encoding.
	ErrDigestMismatch = errors.New("grid: worker digest mismatch")
	// ErrReplayMismatch means a sampled local re-execution of the job
	// disagreed with the remote digest.
	ErrReplayMismatch = errors.New("grid: local replay mismatch")
)

const (
	defaultWindow      = 2
	defaultSampleEvery = 4
	defaultAttempts    = 4
	defaultBackoffBase = 5 * time.Millisecond
)

// Config shapes a Scheduler.
type Config struct {
	// Workers lists worker node addresses. At least one is required and every
	// one must be reachable at New time (a misspelled address should fail the
	// batch immediately, not silently shrink the grid).
	Workers []string
	// Window bounds in-flight jobs per worker (default 2). Dispatch blocks
	// when every reachable worker is at its window.
	Window int
	// SampleEvery locally replays every Nth completed remote job (default 4;
	// the first completion is always sampled). Replay is the execution-layer
	// check: the frame checksum guards the transport and the digest
	// recomputation guards the codec, but only re-running the job catches a
	// worker whose pipeline itself diverges.
	SampleEvery int
	// Attempts bounds placements per job under node loss (default 4).
	Attempts int
	// BackoffBase is the deterministic backoff unit between placement
	// attempts: attempt k sleeps base<<(k-1) (default 5ms).
	BackoffBase time.Duration
	// Sleep replaces time.Sleep between attempts (tests pass a recorder).
	Sleep func(time.Duration)
}

// ExecInfo describes how one spec was executed, for bench report attribution.
type ExecInfo struct {
	// Worker is the executing node's self-declared name ("local" for
	// in-process execution; the bench layer fills that case in).
	Worker string
	// WireBytes counts bytes moved both directions for this job, including
	// the dial handshake when the job opened a fresh connection.
	WireBytes int64
	// Verified reports whether this job's remote result was additionally
	// confirmed by a sampled local replay.
	Verified bool
}

// WorkerLoad is one worker's slice of a Metrics snapshot.
type WorkerLoad struct {
	Name string
	Jobs int
}

// Metrics is a point-in-time snapshot of scheduler counters.
type Metrics struct {
	Jobs      int   // completed jobs
	Retries   int   // re-placements after node loss
	Evictions int   // workers marked down
	Verified  int   // jobs confirmed by local replay
	WireBytes int64 // total bytes over the wire, both directions
	PerWorker []WorkerLoad
}

type workerState struct {
	addr     string
	name     string
	idle     []*fleet.JobConn
	inflight int
	jobs     int
	down     bool
}

// Scheduler fans resolved bench jobs out to worker nodes with least-loaded
// placement, a bounded in-flight window per worker, and retry-on-node-loss
// re-placement using the fleet recovery layer's failure classification. It is
// safe for concurrent ExecuteSpec calls (bench.RunBatch's worker pool drives
// it directly).
type Scheduler struct {
	cfg   Config
	sleep func(time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond
	workers []*workerState
	closed  bool

	jobs      int
	retries   int
	evictions int
	verified  int
	wire      int64
	completed int // sampling counter, distinct from jobs for clarity at call sites
}

// New dials every configured worker concurrently, learns each node's
// self-declared name, and returns a ready scheduler. Any unreachable worker
// fails construction.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Workers) == 0 {
		return nil, ErrNoWorkers
	}
	if cfg.Window <= 0 {
		cfg.Window = defaultWindow
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = defaultSampleEvery
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = defaultAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = defaultBackoffBase
	}
	s := &Scheduler{cfg: cfg, sleep: cfg.Sleep}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	s.cond = sync.NewCond(&s.mu)
	conns, err := s.dialAll(cfg.Workers)
	if err != nil {
		return nil, err
	}
	s.workers = make([]*workerState, len(cfg.Workers))
	for i, addr := range cfg.Workers {
		c := conns[i]
		s.workers[i] = &workerState{addr: addr, name: c.Name(), idle: []*fleet.JobConn{c}}
		s.wire += c.WireBytes()
	}
	return s, nil
}

// dialAll opens the initial connection to every worker concurrently and joins
// before returning; on any failure it closes the connections that did come up
// and reports the first error in worker order.
func (s *Scheduler) dialAll(addrs []string) ([]*fleet.JobConn, error) {
	conns := make([]*fleet.JobConn, len(addrs))
	dialErrs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			conns[i], dialErrs[i] = fleet.DialJob(addr)
		}(i, addr)
	}
	wg.Wait()
	for i, err := range dialErrs {
		if err == nil {
			continue
		}
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, fmt.Errorf("grid: worker %s: %w", addrs[i], err)
	}
	return conns, nil
}

// Capacity returns the scheduler's total in-flight window — the natural batch
// parallelism when the caller does not pick one.
func (s *Scheduler) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers) * s.cfg.Window
}

// Metrics snapshots the scheduler counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Jobs:      s.jobs,
		Retries:   s.retries,
		Evictions: s.evictions,
		Verified:  s.verified,
		WireBytes: s.wire,
	}
	for _, ws := range s.workers {
		m.PerWorker = append(m.PerWorker, WorkerLoad{Name: ws.name, Jobs: ws.jobs})
	}
	return m
}

// Close tears down every pooled connection. In-flight jobs on checked-out
// connections finish their round trip; subsequent ExecuteSpec calls fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	var conns []*fleet.JobConn
	for _, ws := range s.workers {
		conns = append(conns, ws.idle...)
		ws.idle = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// ExecuteSpec runs one resolved job on the grid and returns the restored
// result. seq is the coordinator's own copy of the job's dataset, used only
// for the sampled local replay. Every remote result's digest is recomputed
// from the restored snapshot; transport failures re-place the job on a
// surviving worker with deterministic backoff, while live-worker errors and
// verification failures surface immediately.
func (s *Scheduler) ExecuteSpec(job Job, seq *scene.Sequence) (*slam.Result, ExecInfo, error) {
	payload := encodeJob(nil, &job)
	var last error
	for attempt := 0; attempt < s.cfg.Attempts; attempt++ {
		if attempt > 0 {
			s.sleep(s.cfg.BackoffBase << (attempt - 1))
			s.redialDown()
		}
		ws, conn, base, err := s.acquire()
		if err != nil {
			if last != nil {
				return nil, ExecInfo{}, fmt.Errorf("%w (job %s gave up after %v)", err, job.ID, last)
			}
			return nil, ExecInfo{}, fmt.Errorf("job %s: %w", job.ID, err)
		}
		if conn == nil {
			conn, err = fleet.DialJob(ws.addr)
			if err != nil {
				s.evict(ws, nil)
				last = err
				continue
			}
			base = 0 // fresh conn: charge the dial handshake to this job
		}
		reply, err := conn.Run(payload)
		if err != nil {
			if fleet.IsNodeLoss(err) {
				s.evict(ws, conn)
				last = err
				continue
			}
			s.release(ws, conn, true)
			return nil, ExecInfo{}, fmt.Errorf("job %s on %s: %w", job.ID, ws.name, err)
		}
		res, info, err := s.verify(job, seq, reply)
		delta := conn.WireBytes() - base
		if err != nil {
			s.release(ws, conn, true)
			return nil, ExecInfo{}, fmt.Errorf("job %s on %s: %w", job.ID, ws.name, err)
		}
		info.Worker = ws.name
		info.WireBytes = delta
		s.finish(ws, conn, delta, info.Verified)
		return res, info, nil
	}
	return nil, ExecInfo{}, fmt.Errorf("grid: job %s: %d placements lost: %w", job.ID, s.cfg.Attempts, last)
}

// verify turns a raw reply into a restored result, recomputing the digest on
// this side of the wire and — for sampled jobs — re-executing the job locally.
func (s *Scheduler) verify(job Job, seq *scene.Sequence, reply []byte) (*slam.Result, ExecInfo, error) {
	r, err := decodeJobResult(reply)
	if err != nil {
		return nil, ExecInfo{}, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	sys, err := slam.Restore(bytes.NewReader(r.Snap))
	if err != nil {
		return nil, ExecInfo{}, fmt.Errorf("%w: restore: %v", ErrBadResult, err)
	}
	res := sys.Finish(job.Seq)
	sys.Close()
	if res.Digest() != r.Digest {
		return nil, ExecInfo{}, ErrDigestMismatch
	}
	s.mu.Lock()
	n := s.completed
	s.completed++
	s.mu.Unlock()
	info := ExecInfo{}
	if n%s.cfg.SampleEvery == 0 {
		local, err := slam.Run(job.Cfg, seq)
		if err != nil {
			return nil, ExecInfo{}, fmt.Errorf("%w: replay failed: %v", ErrReplayMismatch, err)
		}
		if local.Digest() != r.Digest {
			return nil, ExecInfo{}, ErrReplayMismatch
		}
		info.Verified = true
	}
	return res, info, nil
}

// acquire reserves one in-flight slot on the least-loaded reachable worker
// (ties broken by fewest completed jobs, then declaration order, so serial
// dispatch round-robins deterministically). It blocks while every reachable
// worker is at its window, and attempts one redial pass before reporting
// ErrNoWorkers when none is reachable. The returned base is the connection's
// wire count before this job (0 when the caller must dial fresh).
func (s *Scheduler) acquire() (ws *workerState, conn *fleet.JobConn, base int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	redialed := false
	for {
		if s.closed {
			return nil, nil, 0, errors.New("grid: scheduler closed")
		}
		var best *workerState
		anyUp := false
		for _, w := range s.workers {
			if w.down {
				continue
			}
			anyUp = true
			if w.inflight >= s.cfg.Window {
				continue
			}
			if best == nil || w.inflight < best.inflight ||
				(w.inflight == best.inflight && w.jobs < best.jobs) {
				best = w
			}
		}
		if best != nil {
			best.inflight++
			if n := len(best.idle); n > 0 {
				conn = best.idle[n-1]
				best.idle = best.idle[:n-1]
				return best, conn, conn.WireBytes(), nil
			}
			return best, nil, 0, nil
		}
		if !anyUp {
			if redialed {
				return nil, nil, 0, ErrNoWorkers
			}
			redialed = true
			s.mu.Unlock()
			s.redialDown()
			s.mu.Lock()
			continue
		}
		s.cond.Wait()
	}
}

// redialDown gives every down worker one chance to come back. A successful
// redial clears the down mark and seeds the idle pool; failures leave the
// worker down.
func (s *Scheduler) redialDown() {
	s.mu.Lock()
	var down []*workerState
	for _, ws := range s.workers {
		if ws.down {
			down = append(down, ws)
		}
	}
	s.mu.Unlock()
	for _, ws := range down {
		c, err := fleet.DialJob(ws.addr)
		if err != nil {
			continue
		}
		s.mu.Lock()
		if ws.down && !s.closed {
			ws.down = false
			ws.name = c.Name()
			ws.idle = append(ws.idle, c)
			s.wire += c.WireBytes()
			c = nil
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		if c != nil {
			c.Close()
		}
	}
}

// evict marks a worker down after node loss, dropping its pooled connections;
// the failed job's slot is released so blocked dispatchers re-place.
func (s *Scheduler) evict(ws *workerState, conn *fleet.JobConn) {
	s.mu.Lock()
	ws.inflight--
	if !ws.down {
		ws.down = true
		s.evictions++
	}
	s.retries++
	idle := ws.idle
	ws.idle = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, c := range idle {
		c.Close()
	}
}

// release returns a slot (and, when the worker is still healthy, its
// connection) without recording a completion — the error path for live-worker
// failures, which must not wedge dispatchers waiting on the window.
func (s *Scheduler) release(ws *workerState, conn *fleet.JobConn, healthy bool) {
	s.mu.Lock()
	ws.inflight--
	if healthy && conn != nil && !ws.down && !s.closed {
		ws.idle = append(ws.idle, conn)
		conn = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// finish records a successful job and returns the slot and connection.
func (s *Scheduler) finish(ws *workerState, conn *fleet.JobConn, delta int64, verified bool) {
	s.mu.Lock()
	ws.inflight--
	ws.jobs++
	s.jobs++
	s.wire += delta
	if verified {
		s.verified++
	}
	if !ws.down && !s.closed {
		ws.idle = append(ws.idle, conn)
		conn = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}
