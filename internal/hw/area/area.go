// Package area reproduces the AGS area model of Table 3: per-module areas of
// the FC detection engine, pose tracking engine and mapping engine for the
// Edge and Server variants, seeded from the paper's synthesis results (28 nm,
// 500 MHz; SRAM via CACTI scaled by DeepScaleTool — substitution #5 in
// DESIGN.md).
package area

import "fmt"

// Module is one row of Table 3.
type Module struct {
	Engine    string
	Component string
	Remark    string
	AreaMM2   float64
}

// Config describes one AGS variant's resource counts.
type Config struct {
	Name           string
	FCAdders       int
	FCComparators  int
	SystolicArrays int // 32x32 each
	NNBufferKB     int
	LightGSArrays  int // 4x4 GPEs each
	LightBufferKB  int
	LogTableKB     int
	UpdateUnits    int
	SkipTableKB    int
	CompareUnits   int
	GSArrays       int
	GaussBufferKB  int
}

// Edge returns the AGS-Edge configuration (Table 3, left values).
func Edge() Config {
	return Config{
		Name: "AGS-Edge", FCAdders: 8, FCComparators: 2,
		SystolicArrays: 2, NNBufferKB: 32,
		LightGSArrays: 8, LightBufferKB: 32,
		LogTableKB: 4, UpdateUnits: 16,
		SkipTableKB: 4, CompareUnits: 16,
		GSArrays: 16, GaussBufferKB: 64,
	}
}

// Server returns the AGS-Server configuration (Table 3, right values).
func Server() Config {
	return Config{
		Name: "AGS-Server", FCAdders: 8, FCComparators: 2,
		SystolicArrays: 4, NNBufferKB: 64,
		LightGSArrays: 16, LightBufferKB: 64,
		LogTableKB: 8, UpdateUnits: 32,
		SkipTableKB: 8, CompareUnits: 32,
		GSArrays: 32, GaussBufferKB: 128,
	}
}

// Unit area constants (mm^2) at 28 nm, derived from the paper's Table 3 by
// dividing each module's area by its resource count.
const (
	adderMM2         = 0.00125 // 8 adders + 2 comparators = 0.01 each row
	comparatorMM2    = 0.005
	systolic32MM2    = 0.48    // one 32x32 array: 1.92/4
	sramPerKBMM2     = 0.00525 // buffers: ~0.13mm2 per 64KB with overhead
	gpeArrayMM2      = 0.2206  // one 4x4 GPE array: 7.06/32
	updateUnitMM2    = 0.0078  // 0.25/32
	compareUnitMM2   = 0.0003  // ~0.01/32
	tablePerKBMM2    = 0.005   // logging/skipping tables: 0.04/8KB
	bufferPerKBMM2   = 0.00725 // gauss buffers: 0.93/128KB
	nnBufferPerKBMM2 = 0.002   // NN buffer: 0.13/64KB
)

// Breakdown returns Table 3's rows for a configuration.
func Breakdown(c Config) []Module {
	return []Module{
		{"FC Detection Engine", "Adders", fmt.Sprintf("%d Units", c.FCAdders), float64(c.FCAdders) * adderMM2},
		{"FC Detection Engine", "Comparators", fmt.Sprintf("%d Units", c.FCComparators), float64(c.FCComparators) * comparatorMM2},
		{"Pose Tracking Engine", "Systolic Array", fmt.Sprintf("%dx(32x32)", c.SystolicArrays), float64(c.SystolicArrays) * systolic32MM2},
		{"Pose Tracking Engine", "NN Buffer", fmt.Sprintf("%dKB", c.NNBufferKB), float64(c.NNBufferKB) * nnBufferPerKBMM2},
		{"Pose Tracking Engine", "GS Array (Light)", fmt.Sprintf("%dx(4x4)", c.LightGSArrays), float64(c.LightGSArrays) * gpeArrayMM2},
		{"Pose Tracking Engine", "Gauss Buffer (Light)", fmt.Sprintf("%dKB", c.LightBufferKB), float64(c.LightBufferKB) * bufferPerKBMM2},
		{"Mapping Engine", "GS Logging Table", fmt.Sprintf("%dKB", c.LogTableKB), float64(c.LogTableKB) * tablePerKBMM2},
		{"Mapping Engine", "Update Unit", fmt.Sprintf("%d Units", c.UpdateUnits), float64(c.UpdateUnits) * updateUnitMM2},
		{"Mapping Engine", "GS Skipping Table", fmt.Sprintf("%dKB", c.SkipTableKB), float64(c.SkipTableKB) * tablePerKBMM2},
		{"Mapping Engine", "Comparison Unit", fmt.Sprintf("%d Units", c.CompareUnits), float64(c.CompareUnits) * compareUnitMM2},
		{"Mapping Engine", "GS Array", fmt.Sprintf("%dx(4x4)", c.GSArrays), float64(c.GSArrays) * gpeArrayMM2},
		{"Mapping Engine", "Gauss Buffer", fmt.Sprintf("%dKB", c.GaussBufferKB), float64(c.GaussBufferKB) * bufferPerKBMM2},
	}
}

// Total returns the summed area in mm^2.
func Total(c Config) float64 {
	var sum float64
	for _, m := range Breakdown(c) {
		sum += m.AreaMM2
	}
	return sum
}
