package slam

import (
	"bytes"
	"strings"
	"testing"
)

// compactCfg is fastAGS with pruning aggressive enough to actually deactivate
// slots in a short run (the default PruneOpacity of 0.005 never fires against
// opacities seeded at 0.999 — the logit learning rate bounds how far opacity
// can fall in a few frames), plus a short compaction cadence.
func compactCfg(w, h int) Config {
	cfg := fastAGS(w, h)
	cfg.Mapper.LRLogit = 0.2
	cfg.PruneEvery = 2
	cfg.Mapper.PruneOpacity = 0.25
	cfg.CompactEvery = 3
	cfg.CompactInactiveFrac = 0
	return cfg
}

func runDigest(t *testing.T, cfg Config, name string, frames int) (*Result, [32]byte) {
	t.Helper()
	res, err := Run(cfg, testSeq(t, name, frames))
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Digest()
}

// TestCompactionDigestInvariant is the tentpole contract: a run that
// periodically compacts the map produces a Result digest-identical to the
// never-compacted run — compaction reclaims slots without perturbing a single
// output bit — while actually reclaiming storage.
func TestCompactionDigestInvariant(t *testing.T) {
	cfg := compactCfg(tw, th)
	plain := cfg
	plain.CompactEvery = 0

	resC, digC := runDigest(t, cfg, "Desk", 12)
	resP, digP := runDigest(t, plain, "Desk", 12)

	if digC != digP {
		t.Fatalf("compaction changed the digest: %x vs %x", digC, digP)
	}
	tot := resC.Trace.Totals()
	if tot.PrunedGaussians == 0 {
		t.Fatal("prune config never fired; the test exercises nothing")
	}
	if tot.CompactedSlots == 0 {
		t.Fatal("compaction never reclaimed a slot")
	}
	if tot.ReclaimedBytes == 0 {
		t.Fatal("reclaimed bytes not accounted")
	}
	if resC.Cloud.Len() >= resP.Cloud.Len() {
		t.Fatalf("compacted run retains %d slots, never-compacted %d",
			resC.Cloud.Len(), resP.Cloud.Len())
	}
	if resC.Cloud.NumInactive() != 0 && resC.Trace.Frames[len(resC.Trace.Frames)-1].CompactedSlots > 0 {
		t.Fatal("final compaction left dead slots")
	}
}

// TestCompactionInactiveFracTrigger: the dead-slot-fraction trigger compacts
// without a cadence, and stays digest-invariant too.
func TestCompactionInactiveFracTrigger(t *testing.T) {
	cfg := compactCfg(tw, th)
	cfg.CompactEvery = 0
	cfg.CompactInactiveFrac = 0.02
	plain := cfg
	plain.CompactInactiveFrac = 0

	resC, digC := runDigest(t, cfg, "Desk", 12)
	_, digP := runDigest(t, plain, "Desk", 12)
	if digC != digP {
		t.Fatalf("frac-triggered compaction changed the digest: %x vs %x", digC, digP)
	}
	if resC.Trace.Totals().CompactedSlots == 0 {
		t.Fatal("inactive-fraction trigger never compacted")
	}
}

// TestSnapshotRoundTripSystem: snapshot a system mid-stream, restore it, push
// the remaining frames, and the Result digest must equal the uninterrupted
// run's — at the first frame, mid-stream, and at the last frame, on two
// scenes, with pruning and compaction active so the snapshot carries a
// recently-compacted map.
func TestSnapshotRoundTripSystem(t *testing.T) {
	const frames = 10
	cfg := compactCfg(tw, th)
	for _, scene := range []string{"Desk", "Xyz"} {
		seq := testSeq(t, scene, frames)

		ref := New(cfg, seq.Intr)
		for _, f := range seq.Frames {
			if err := ref.ProcessFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		want := ref.Finish(seq.Name).Digest()
		ref.Close()

		for _, k := range []int{1, frames / 2, frames - 1} {
			sys := New(cfg, seq.Intr)
			for _, f := range seq.Frames[:k] {
				if err := sys.ProcessFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := sys.Snapshot(&buf); err != nil {
				t.Fatalf("%s split %d: snapshot: %v", scene, k, err)
			}
			sys.Close()

			restored, err := Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s split %d: restore: %v", scene, k, err)
			}
			if restored.FrameCount() != k {
				t.Fatalf("%s split %d: restored FrameCount = %d", scene, k, restored.FrameCount())
			}
			for _, f := range seq.Frames[k:] {
				if err := restored.ProcessFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			got := restored.Finish(seq.Name).Digest()
			restored.Close()
			if got != want {
				t.Errorf("%s split %d: restored digest %x != uninterrupted %x", scene, k, got, want)
			}
		}
	}
}

// TestSessionSnapshotRestore drives the serving path: a session snapshotted
// mid-stream keeps running unperturbed, and a second session restored from
// the snapshot and fed the remainder closes with the identical digest. The
// config pipelines ME so the snapshot has to flush the one-frame lookahead.
func TestSessionSnapshotRestore(t *testing.T) {
	const frames = 10
	cfg := compactCfg(tw, th)
	cfg.PipelineME = true
	seq := testSeq(t, "Desk", frames)

	_, want := runDigest(t, cfg, "Desk", frames)

	sv := NewServer(ServerConfig{})
	sess, err := sv.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	const k = frames / 2
	for _, f := range seq.Frames[:k] {
		if err := sess.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range seq.Frames[k:] {
		if err := sess.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Digest(); got != want {
		t.Errorf("snapshotted session digest %x != uninterrupted %x", got, want)
	}

	restored, n, err := sv.RestoreSession(seq.Name, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != k {
		t.Fatalf("RestoreSession processed-frame count = %d, want %d (Snapshot drains the queue)", n, k)
	}
	for _, f := range seq.Frames[n:] {
		if err := restored.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := restored.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Digest(); got != want {
		t.Errorf("restored session digest %x != uninterrupted %x", got, want)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionSnapshotAfterClose: the producer contract rejects snapshots of a
// closed session instead of deadlocking.
func TestSessionSnapshotAfterClose(t *testing.T) {
	seq := testSeq(t, "Desk", 2)
	sess, err := DefaultServer().Open(seq.Name, fastCfg(tw, th), seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(seq.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err == nil {
		t.Fatal("snapshot after Close succeeded")
	}
}

// snapshotBytes returns a small valid snapshot to corrupt.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	seq := testSeq(t, "Desk", 3)
	sys := New(fastCfg(tw, th), seq.Intr)
	defer sys.Close()
	for _, f := range seq.Frames {
		if err := sys.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRestoreRejectsDamage(t *testing.T) {
	data := snapshotBytes(t)
	if _, err := Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-17] }, "checksum"},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}, "checksum"},
		{"flipped checksum byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x01
			return c
		}, "checksum"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, "magic"},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8] = 0xFF // version word follows the 8-byte magic
			return c
		}, "version"},
	}
	for _, tc := range cases {
		_, err := Restore(bytes.NewReader(tc.mangle(data)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}
