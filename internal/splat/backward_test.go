package splat

import (
	"math"
	"math/rand"
	"testing"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/optim"
	"ags/internal/vecmath"
)

func signOf(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// lossOf renders the cloud and evaluates the loss against target without
// computing any gradients.
func lossOf(cloud *gauss.Cloud, cam camera.Camera, target *frame.Frame, lc LossConfig) float64 {
	res := Render(cloud, cam, Options{Workers: 1})
	g := Backward(cloud, cam, res, target, lc, BackwardOptions{Workers: 1})
	return g.Loss
}

// testScene builds a small cloud and a target frame rendered from a slightly
// different cloud, so the loss is non-zero and L1 signs are stable.
func testScene(t *testing.T) (*gauss.Cloud, camera.Camera, *frame.Frame) {
	t.Helper()
	cam := testCam(32, 24)
	rng := rand.New(rand.NewSource(42))
	build := func(perturb float64) *gauss.Cloud {
		r := rand.New(rand.NewSource(7))
		cloud := gauss.NewCloud(6)
		for i := 0; i < 6; i++ {
			g := gauss.Gaussian{
				Mean: vecmath.Vec3{
					X: r.NormFloat64()*0.4 + perturb*rng.NormFloat64()*0.05,
					Y: r.NormFloat64() * 0.3,
					Z: 1.5 + r.Float64(),
				},
				Rot:   vecmath.QuatIdentity(),
				Color: vecmath.Vec3{X: 0.2 + 0.6*r.Float64(), Y: 0.2 + 0.6*r.Float64(), Z: 0.2 + 0.6*r.Float64()},
			}
			g.SetScale(vecmath.Vec3{X: 0.15, Y: 0.15, Z: 0.15})
			g.SetOpacity(0.6 + 0.3*r.Float64())
			cloud.Add(g)
		}
		return cloud
	}
	gtCloud := build(1)
	gtRes := Render(gtCloud, cam, Options{Workers: 1})
	target := &frame.Frame{Color: gtRes.Color, Depth: gtRes.NormalizedDepth()}
	return build(0), cam, target
}

func TestBackwardColorGradientNumeric(t *testing.T) {
	cloud, cam, target := testScene(t)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	grads := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, Workers: 1})
	const h = 1e-5
	for id := 0; id < cloud.Len(); id++ {
		orig := cloud.At(id).Color.X
		cloud.At(id).Color = vecmath.Vec3{X: orig + h, Y: cloud.At(id).Color.Y, Z: cloud.At(id).Color.Z}
		lp := lossOf(cloud, cam, target, lc)
		cloud.At(id).Color = vecmath.Vec3{X: orig - h, Y: cloud.At(id).Color.Y, Z: cloud.At(id).Color.Z}
		lm := lossOf(cloud, cam, target, lc)
		cloud.At(id).Color = vecmath.Vec3{X: orig, Y: cloud.At(id).Color.Y, Z: cloud.At(id).Color.Z}
		num := (lp - lm) / (2 * h)
		ana := grads.Color[id].X
		if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("gaussian %d color grad: num %v ana %v", id, num, ana)
		}
	}
}

func TestBackwardLogitGradientNumeric(t *testing.T) {
	cloud, cam, target := testScene(t)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	grads := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, Workers: 1})
	const h = 1e-5
	for id := 0; id < cloud.Len(); id++ {
		orig := cloud.At(id).Logit
		cloud.At(id).Logit = orig + h
		lp := lossOf(cloud, cam, target, lc)
		cloud.At(id).Logit = orig - h
		lm := lossOf(cloud, cam, target, lc)
		cloud.At(id).Logit = orig
		num := (lp - lm) / (2 * h)
		ana := grads.Logit[id]
		// L1 kinks and the MinAlpha cutoff make this slightly noisy.
		if math.Abs(num-ana) > 2e-3*(1+math.Abs(num)) {
			t.Errorf("gaussian %d logit grad: num %v ana %v", id, num, ana)
		}
	}
}

func TestBackwardMeanGradientDirection(t *testing.T) {
	cloud, cam, target := testScene(t)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	grads := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, Workers: 1})
	const h = 1e-4
	var dotSum, numNorm, anaNorm float64
	for id := 0; id < cloud.Len(); id++ {
		var num vecmath.Vec3
		for axis := 0; axis < 3; axis++ {
			delta := vecmath.Vec3{}
			switch axis {
			case 0:
				delta.X = h
			case 1:
				delta.Y = h
			case 2:
				delta.Z = h
			}
			mean := cloud.At(id).Mean
			cloud.At(id).Mean = mean.Add(delta)
			lp := lossOf(cloud, cam, target, lc)
			cloud.At(id).Mean = mean.Sub(delta)
			lm := lossOf(cloud, cam, target, lc)
			cloud.At(id).Mean = mean
			d := (lp - lm) / (2 * h)
			switch axis {
			case 0:
				num.X = d
			case 1:
				num.Y = d
			case 2:
				num.Z = d
			}
		}
		dotSum += num.Dot(grads.Mean[id])
		numNorm += num.NormSq()
		anaNorm += grads.Mean[id].NormSq()
	}
	// The analytic mean gradient ignores the covariance's dependence on the
	// mean (standard splatting approximation), so we require strong
	// directional agreement rather than exact equality.
	cos := dotSum / (math.Sqrt(numNorm*anaNorm) + 1e-30)
	if cos < 0.95 {
		t.Errorf("mean gradient cosine similarity %v", cos)
	}
}

func TestBackwardPoseGradientDirection(t *testing.T) {
	cloud, cam, target := testScene(t)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	grads := Backward(cloud, cam, res, target, lc, BackwardOptions{PoseGrads: true, Workers: 1})
	const h = 1e-5
	num := make([]float64, 6)
	for axis := 0; axis < 6; axis++ {
		tw := vecmath.Twist{}
		switch axis {
		case 0:
			tw.V.X = h
		case 1:
			tw.V.Y = h
		case 2:
			tw.V.Z = h
		case 3:
			tw.W.X = h
		case 4:
			tw.W.Y = h
		case 5:
			tw.W.Z = h
		}
		camP := cam
		camP.Pose = cam.Pose.Retract(tw)
		lp := lossOf(cloud, camP, target, lc)
		camM := cam
		camM.Pose = cam.Pose.Retract(tw.Scale(-1))
		lm := lossOf(cloud, camM, target, lc)
		num[axis] = (lp - lm) / (2 * h)
	}
	ana := []float64{grads.Pose.V.X, grads.Pose.V.Y, grads.Pose.V.Z, grads.Pose.W.X, grads.Pose.W.Y, grads.Pose.W.Z}
	var dot, nn, na float64
	for i := 0; i < 6; i++ {
		dot += num[i] * ana[i]
		nn += num[i] * num[i]
		na += ana[i] * ana[i]
	}
	cos := dot / (math.Sqrt(nn*na) + 1e-30)
	if cos < 0.9 {
		t.Errorf("pose gradient cosine similarity %v (num %v ana %v)", cos, num, ana)
	}
}

func TestBackwardScaleGradientDescends(t *testing.T) {
	// Gradient descent on the isotropic scale must reduce the loss when the
	// cloud's scales are wrong.
	cam := testCam(32, 24)
	gt := gauss.NewCloud(1)
	gt.Add(centeredGaussian(2, 0.25, 0.9, vecmath.Vec3{X: 0.7, Y: 0.4, Z: 0.2}))
	gtRes := Render(gt, cam, Options{Workers: 1})
	target := &frame.Frame{Color: gtRes.Color, Depth: gtRes.NormalizedDepth()}

	cloud := gauss.NewCloud(1)
	cloud.Add(centeredGaussian(2, 0.12, 0.9, vecmath.Vec3{X: 0.7, Y: 0.4, Z: 0.2})) // too small
	lc := DefaultMappingLoss()
	before := lossOf(cloud, cam, target, lc)
	for iter := 0; iter < 60; iter++ {
		res := Render(cloud, cam, Options{Workers: 1})
		grads := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, Workers: 1})
		g := cloud.At(0)
		// Sign-based descent on the single parameter: robust to the L1
		// loss's gradient-magnitude discontinuities.
		step := 0.01 * signOf(grads.LogScale[0])
		g.LogScale = g.LogScale.Sub(vecmath.Vec3{X: step, Y: step, Z: step})
	}
	after := lossOf(cloud, cam, target, lc)
	if after >= before {
		t.Errorf("scale descent did not reduce loss: %v -> %v", before, after)
	}
	// The scale should have grown toward the target.
	if cloud.At(0).Scale().X <= 0.12 {
		t.Errorf("scale did not grow: %v", cloud.At(0).Scale())
	}
}

func TestBackwardSilhouetteMask(t *testing.T) {
	cloud, cam, target := testScene(t)
	res := Render(cloud, cam, Options{Workers: 1})
	masked := Backward(cloud, cam, res, target, DefaultTrackingLoss(), BackwardOptions{Workers: 1})
	unmasked := Backward(cloud, cam, res, target, DefaultMappingLoss(), BackwardOptions{Workers: 1})
	if masked.Pixels >= unmasked.Pixels {
		t.Errorf("mask did not reduce pixels: %d vs %d", masked.Pixels, unmasked.Pixels)
	}
	if unmasked.Pixels != cam.Intr.W*cam.Intr.H {
		t.Errorf("unmasked pixels = %d", unmasked.Pixels)
	}
}

func TestBackwardDeterministicAcrossWorkers(t *testing.T) {
	cloud, cam, target := testScene(t)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	g1 := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1})
	g8 := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 8})
	if math.Abs(g1.Loss-g8.Loss) > 1e-12 {
		t.Errorf("loss differs across workers: %v vs %v", g1.Loss, g8.Loss)
	}
	for id := range g1.Color {
		if g1.Color[id].Sub(g8.Color[id]).Norm() > 1e-9 {
			t.Fatalf("color grad differs at %d", id)
		}
	}
	if g1.Pose.V.Sub(g8.Pose.V).Norm() > 1e-9 {
		t.Error("pose grad differs across workers")
	}
}

func TestBackwardEmptySceneIsZero(t *testing.T) {
	cam := testCam(16, 16)
	cloud := gauss.NewCloud(0)
	res := Render(cloud, cam, Options{})
	target := &frame.Frame{Color: frame.NewImage(16, 16), Depth: frame.NewDepthMap(16, 16)}
	g := Backward(cloud, cam, res, target, DefaultMappingLoss(), BackwardOptions{GaussianGrads: true, PoseGrads: true})
	if g.Loss != 0 {
		t.Errorf("empty scene loss = %v", g.Loss)
	}
	if g.Pose.Norm() != 0 {
		t.Error("empty scene produced pose gradient")
	}
}

func TestTrackingConvergesOnSmallOffset(t *testing.T) {
	// End-to-end sanity: gradient descent on the pose recovers a small
	// perturbation. This is the core of 3DGS-SLAM tracking.
	cam := testCam(32, 24)
	cloud := gauss.NewCloud(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		g := gauss.Gaussian{
			Mean:  vecmath.Vec3{X: rng.NormFloat64() * 0.5, Y: rng.NormFloat64() * 0.4, Z: 1.5 + rng.Float64()*1.5},
			Rot:   vecmath.QuatIdentity(),
			Color: vecmath.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()},
		}
		g.SetScale(vecmath.Vec3{X: 0.2, Y: 0.2, Z: 0.2})
		g.SetOpacity(0.95)
		cloud.Add(g)
	}
	gtRes := Render(cloud, cam, Options{Workers: 1})
	target := &frame.Frame{Color: gtRes.Color, Depth: gtRes.NormalizedDepth()}

	est := cam
	est.Pose = cam.Pose.Retract(vecmath.Twist{V: vecmath.Vec3{X: 0.03, Y: -0.02}, W: vecmath.Vec3{Z: 0.02}})
	startErr := est.Pose.TranslationTo(cam.Pose)

	lc := LossConfig{ColorWeight: 0.5, DepthWeight: 1.0, NormalizeDepth: true}
	adam := optim.NewAdam(2e-3)
	params := make([]float64, 6)
	for iter := 0; iter < 150; iter++ {
		res := Render(cloud, est, Options{Workers: 1})
		grads := Backward(cloud, est, res, target, lc, BackwardOptions{PoseGrads: true, Workers: 1})
		g := []float64{grads.Pose.V.X, grads.Pose.V.Y, grads.Pose.V.Z, grads.Pose.W.X, grads.Pose.W.Y, grads.Pose.W.Z}
		prev := make([]float64, 6)
		copy(prev, params)
		adam.Step(params, g)
		step := vecmath.Twist{
			V: vecmath.Vec3{X: params[0] - prev[0], Y: params[1] - prev[1], Z: params[2] - prev[2]},
			W: vecmath.Vec3{X: params[3] - prev[3], Y: params[4] - prev[4], Z: params[5] - prev[5]},
		}
		est.Pose = est.Pose.Retract(step)
	}
	endErr := est.Pose.TranslationTo(cam.Pose)
	if endErr > startErr*0.5 {
		t.Errorf("tracking did not converge: %v -> %v", startErr, endErr)
	}
}
