// Package slam assembles the full 3DGS-SLAM pipeline: the SplaTAM-style
// baseline (N_T tracking iterations + full mapping on every frame) and the
// AGS algorithm (CODEC-based frame covisibility detection, movement-adaptive
// tracking, Gaussian contribution-aware mapping), streaming frames exactly as
// the paper's Fig. 9 walk-through describes. The two AGS features are
// individually switchable so the ablation of Fig. 18 and the Droid+SplaTAM
// comparison of Table 4 come from the same pipeline.
//
// Serving: the public surface is streaming and multi-tenant. A Server owns
// the per-host resources (a bounded, size-keyed splat.ContextPool) and opens
// Sessions — one live sequence each, driven by Push (with backpressure),
// observed on Results, finalized by Close. System remains the synchronous
// single-stream engine underneath, and Run is a thin wrapper that streams a
// whole scene.Sequence through one session on DefaultServer. Concurrent
// sessions produce Results digest-identical to sequential runs at every
// worker count and interleaving (Result.Digest asserts it cheaply).
//
// Concurrency: the paper's timing model has the CODEC encode (and therefore
// motion-estimate) frame t+1 while the accelerator tracks and maps frame t,
// making the SAD byproduct free by the time it is needed. Config.PipelineME
// reproduces that overlap — Run (or a streaming caller via Prefetch) launches
// ME for the next frame on a background goroutine and ProcessFrame consumes
// the finished result instead of recomputing it. Config.CodecWorkers and
// Config.CodecEarlyTerm tune the ME stage itself (see package codec).
// Trajectories and covisibility scores are byte-identical to the serial path
// under all three knobs; PipelineME and CodecWorkers also leave the modeled
// operation counts untouched, while CodecEarlyTerm deliberately lowers the
// traced SADOps (that is the optimization it models). The serial path
// remains the default for A/B comparison. Config.Workers parallelizes the
// splat renderer itself; its tile sharding is deterministic, so the render
// worker count never changes results either — full-parallel runs are exact
// A/B comparable.
package slam

import (
	"fmt"

	"ags/internal/camera"
	"ags/internal/covis"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/hw/trace"
	"ags/internal/mapper"
	"ags/internal/metrics"
	"ags/internal/nnlite"
	"ags/internal/scene"
	"ags/internal/splat"
	"ags/internal/tracker"
	"ags/internal/vecmath"
)

// Backbone selects the 3DGS-SLAM algorithm AGS runs on top of (§6.6,
// "Generality of AGS").
type Backbone int

const (
	// BackboneSplaTAM is the primary evaluation target.
	BackboneSplaTAM Backbone = iota
	// BackboneGaussianSLAM emulates Gaussian-SLAM's heavier per-frame
	// mapping with sub-map style keyframe handling (Fig. 23).
	BackboneGaussianSLAM
)

// Config parameterizes one SLAM run.
type Config struct {
	// EnableMAT turns on movement-adaptive tracking (coarse pose estimation
	// + covisibility-gated refinement). Off = baseline N_T-iteration
	// tracking.
	EnableMAT bool
	// EnableGCM turns on Gaussian contribution-aware mapping (key/non-key
	// frames + selective mapping). Off = full mapping on every frame.
	EnableGCM bool
	// ForceCoarseOnly disables the fine-grained refinement entirely — the
	// "directly integrating SplaTAM with Droid-SLAM" comparison of Table 4.
	ForceCoarseOnly bool

	// TrackIters is N_T, the baseline tracking iterations per frame.
	TrackIters int
	// IterT is the refinement iteration count for low-covisibility frames.
	IterT int
	// ThreshT is the covisibility above which refinement is skipped (0.90).
	ThreshT float64
	// ThreshM is the covisibility (vs the last key frame) above which a
	// frame is a non-key frame. The paper uses 50% of its SAD scale; on this
	// reproduction's covisibility scale the equivalent operating point is
	// 0.75 (see DESIGN.md: threshold mapping).
	ThreshM float64

	Backbone Backbone
	Mapper   mapper.Config
	TrackLR  float64
	// KeyframeEvery adds every k-th frame to the multi-view mapping window.
	KeyframeEvery int
	// PruneEvery runs opacity pruning every k frames (0 = never).
	PruneEvery int
	// CompactEvery re-packs the Gaussian map every k frames (0 = never):
	// pruned slots are reclaimed and every retained ID-keyed table (mapper
	// contribution state, optimizer moments, render traces) is rewritten
	// through the old→new remap. Compaction is bit-transparent — a run with
	// CompactEvery > 0 produces the same Result.Digest as the never-compacted
	// run — so it is purely a resource bound, not an accuracy knob.
	CompactEvery int
	// CompactInactiveFrac additionally triggers a compaction whenever the
	// dead-slot fraction of the map exceeds it (0 = cadence only). It bounds
	// the wasted resident bytes between cadence ticks under heavy pruning.
	CompactInactiveFrac float64
	// Workers bounds splat render/backward parallelism (0 = all cores). The
	// splat pipeline shards tiles deterministically, so every value produces
	// bit-identical trajectories, maps and traces (see package splat).
	Workers int
	// NoRenderCtx disables the system's frame-persistent render context, so
	// every render/backward in the tracker and mapper allocates one-shot
	// buffers instead of reusing the context's. Outputs are bit-identical
	// either way; the knob exists for allocation A/B runs (perf-render,
	// ags-slam -no-render-ctx).
	NoRenderCtx bool
	// EvalFPRate runs an extra contribution-logged render on every non-key
	// frame to measure the false-positive rate of the skip prediction.
	EvalFPRate bool

	// PipelineME overlaps CODEC motion estimation of frame t+1 with
	// tracking/mapping of frame t (the paper's CODEC-runs-ahead timing,
	// Fig. 9). Run drives the prefetch itself; streaming callers use
	// System.Prefetch. Off = fully serial frontend.
	PipelineME bool
	// CodecWorkers bounds the ME worker pool inside the covisibility
	// detector (0 or 1 = serial). Parallel ME is byte-identical to serial.
	CodecWorkers int
	// CodecEarlyTerm enables encoder early termination in the ME SAD
	// accumulation; it lowers the modeled SADOps without changing SAD
	// minima or motion vectors.
	CodecEarlyTerm bool
}

// DefaultConfig returns the paper's hyper-parameters scaled to the given
// frame size (see DESIGN.md): N_T 200→60, N_M 30→15, Iter_T 20→6,
// Thresh_T 90%, Thresh_M 50%, Thresh_alpha 1/255, Thresh_N 450
// (resolution-independent; see scaleThreshN).
func DefaultConfig(w, h int) Config {
	mc := mapper.DefaultConfig()
	mc.ThreshN = scaleThreshN(450) // paper value; see scaleThreshN
	return Config{
		TrackIters:          60,
		IterT:               6,
		ThreshT:             0.90,
		ThreshM:             0.75,
		Mapper:              mc,
		TrackLR:             5e-3,
		KeyframeEvery:       4,
		PruneEvery:          8,
		CompactEvery:        32,
		CompactInactiveFrac: 0.25,
	}
}

// AGSConfig is DefaultConfig with both AGS features enabled.
func AGSConfig(w, h int) Config {
	cfg := DefaultConfig(w, h)
	cfg.EnableMAT = true
	cfg.EnableGCM = true
	return cfg
}

// scaleThreshN maps the paper's Thresh_N to this reproduction. The
// non-contributory count of a Gaussian is bounded by its tile footprint
// (tiles x 256 pixels), which does not scale with image size, so the paper's
// value carries over directly; only a floor is applied for tiny test frames.
// It deliberately takes no frame dimensions: the threshold is
// resolution-independent.
func scaleThreshN(paperVal int) int {
	if paperVal < 2 {
		return 2
	}
	return paperVal
}

// FrameInfo records per-frame algorithm decisions for analysis.
type FrameInfo struct {
	Covisibility    covis.Score // vs previous frame
	KeyCovisibility covis.Score // vs last key frame
	IsKeyFrame      bool
	CoarseOnly      bool
	RefineIters     int
	FPRate          float64 // only when EvalFPRate and non-key
	FPValid         bool
}

// Result is the output of a SLAM run.
type Result struct {
	Sequence string
	Poses    []vecmath.Pose
	GT       []vecmath.Pose
	Cloud    *gauss.Cloud
	Mapper   *mapper.Mapper
	Info     []FrameInfo
	Trace    *trace.Run
}

// ATERMSECm returns the trajectory error in centimeters (Table 2's unit).
func (r *Result) ATERMSECm() (float64, error) {
	ate, err := metrics.ATERMSE(r.Poses, r.GT)
	return ate * 100, err
}

// System is a synchronous single-stream 3DGS-SLAM instance: the engine a
// Session drives, also usable directly when the caller owns the frame loop.
// Call Close when done so the system's render context returns to its pool.
type System struct {
	Cfg  Config
	Intr camera.Intrinsics

	mapper   *mapper.Mapper
	refiner  *tracker.GSRefiner
	aligner  *tracker.CoarseAligner
	detector *covis.Detector
	backbone *nnlite.PoseBackbone
	// pool supplies the render context ProcessFrame attaches; nil under
	// Config.NoRenderCtx (every render then falls back to the one-shot
	// path). Standalone systems draw from DefaultServer's pool; sessions
	// share their server's.
	pool *splat.ContextPool
	// perStep makes ProcessFrame release the context back to the pool after
	// every frame instead of pinning it between frames — the multi-tenant
	// mode sessions run in, so idle streams hold no render state.
	perStep bool
	// renderCtx is the currently attached splat render context, shared by
	// the tracker and mapper (they run sequentially within ProcessFrame) and
	// sized lazily from the intrinsics on first render. Acquired from pool
	// on demand; nil when detached or under Config.NoRenderCtx.
	renderCtx *splat.RenderContext

	prevFrame   *frame.Frame
	prevPose    vecmath.Pose
	prevRel     vecmath.Pose // last inter-frame relative motion (velocity model)
	keyFrame    *frame.Frame // last key frame (for Thresh_M comparisons)
	keyPose     vecmath.Pose // estimated pose of the last key frame
	frameCount  int
	poses       []vecmath.Pose
	gt          []vecmath.Pose
	info        []FrameInfo
	traceFrames []trace.FrameTrace
	pending     []*mePrefetch // in-flight CODEC ME jobs (see prefetch.go)
}

// New returns a standalone system for the given camera, drawing its render
// context from DefaultServer's pool. The context is pinned across frames
// (frame-persistent hot path); call Close to return it. Multi-stream callers
// should open Sessions on a Server instead.
func New(cfg Config, intr camera.Intrinsics) *System {
	return newSystem(cfg, intr, DefaultServer().ContextPool(), false)
}

// newSystem builds a system over the given context pool. perStep selects the
// session mode: acquire/release the context around every frame-step rather
// than pinning it for the system's lifetime.
func newSystem(cfg Config, intr camera.Intrinsics, pool *splat.ContextPool, perStep bool) *System {
	mcfg := cfg.Mapper
	mcfg.Workers = cfg.Workers
	if cfg.Backbone == BackboneGaussianSLAM {
		// Gaussian-SLAM optimizes sub-maps with more iterations per frame
		// and a shorter keyframe window.
		mcfg.MapIters = mcfg.MapIters * 2
		mcfg.KeyframeWindow = 4
	}
	refiner := tracker.NewGSRefiner()
	refiner.LR = cfg.TrackLR
	refiner.Workers = cfg.Workers
	detector := covis.NewDetector()
	detector.Cfg.Workers = cfg.CodecWorkers
	detector.Cfg.EarlyTerm = cfg.CodecEarlyTerm
	m := mapper.New(mcfg)
	if cfg.NoRenderCtx {
		pool = nil
	}
	return &System{
		Cfg:      cfg,
		Intr:     intr,
		mapper:   m,
		refiner:  refiner,
		aligner:  tracker.NewCoarseAligner(),
		detector: detector,
		backbone: nnlite.NewPoseBackbone(7),
		pool:     pool,
		perStep:  perStep,
		prevRel:  vecmath.PoseIdentity(),
	}
}

// Mapper exposes the mapping state (for experiments).
func (s *System) Mapper() *mapper.Mapper { return s.mapper }

// attachCtx acquires a render context from the pool (sized for the system's
// camera) and threads it through the tracker and mapper. A no-op when one is
// already attached or the system runs context-free (Config.NoRenderCtx).
func (s *System) attachCtx() {
	if s.pool == nil || s.renderCtx != nil {
		return
	}
	ctx := s.pool.Acquire(s.Intr.W, s.Intr.H)
	s.renderCtx = ctx
	s.refiner.Ctx = ctx
	s.mapper.Ctx = ctx
}

// detachCtx unthreads the attached context and releases it to the pool.
func (s *System) detachCtx() {
	if s.renderCtx == nil {
		return
	}
	s.refiner.Ctx = nil
	s.mapper.Ctx = nil
	s.pool.Release(s.renderCtx)
	s.renderCtx = nil
}

// Close releases the system's render context back to its pool. It is
// idempotent, and the system remains usable — the next ProcessFrame
// re-acquires a context — but callers should treat Close as the end of the
// stream: Run, sessions, and the CLIs all close their systems so contexts
// are reclaimed instead of leaking one per run.
func (s *System) Close() {
	s.detachCtx()
}

// ProcessFrame ingests the next frame of the stream.
func (s *System) ProcessFrame(f *frame.Frame) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("slam: %w", err)
	}
	if f.Color.W != s.Intr.W || f.Color.H != s.Intr.H {
		return fmt.Errorf("slam: frame %dx%d does not match camera %dx%d",
			f.Color.W, f.Color.H, s.Intr.W, s.Intr.H)
	}
	s.attachCtx()
	ft := trace.FrameTrace{Index: s.frameCount}
	var info FrameInfo

	if s.frameCount == 0 {
		s.bootstrap(f, &ft, &info)
	} else {
		s.step(f, &ft, &info)
	}

	ft.NumGaussians = s.mapper.Cloud().NumActive()
	s.info = append(s.info, info)
	s.gt = append(s.gt, f.GTPose)
	s.prevFrame = f
	s.frameCount++
	if s.Cfg.PruneEvery > 0 && s.frameCount%s.Cfg.PruneEvery == 0 {
		ft.PrunedGaussians = s.mapper.Prune()
	}
	s.maybeCompact(&ft)
	s.traceFrames = append(s.traceFrames, ft)
	if s.perStep {
		// Session mode: hand the context back between frames so an idle
		// stream pins no render state and the pool can serve other sessions.
		s.detachCtx()
	}
	return nil
}

// FrameCount returns how many frames the system has processed — after a
// Restore, the index of the next frame to push.
func (s *System) FrameCount() int { return s.frameCount }

// maybeCompact runs the end-of-frame map compaction pass when the cadence
// (Config.CompactEvery) or the inactive-fraction trigger
// (Config.CompactInactiveFrac) fires and there is anything to reclaim. The
// mapper re-packs the cloud and rewrites its own ID-keyed tables; the system
// then rewrites the Gaussian-ID streams of every retained FrameTrace through
// the same permutation and records the reclaimed slots/bytes in the current
// frame's trace. Because survivors keep their relative order (and the
// optimizer moments ride along), subsequent frames render and train
// bit-identically to the never-compacted timeline.
func (s *System) maybeCompact(cur *trace.FrameTrace) {
	cloud := s.mapper.Cloud()
	dead := cloud.NumInactive()
	if dead == 0 {
		return
	}
	due := s.Cfg.CompactEvery > 0 && s.frameCount%s.Cfg.CompactEvery == 0
	if !due && s.Cfg.CompactInactiveFrac > 0 {
		due = float64(dead) > s.Cfg.CompactInactiveFrac*float64(cloud.Len())
	}
	if !due {
		return
	}
	remap, freed := s.mapper.Compact()
	if freed == 0 {
		return
	}
	cur.CompactedSlots = freed
	cur.ReclaimedBytes = int64(freed) * int64(gauss.SlotBytes)
	remapTrace(cur, remap)
	for i := range s.traceFrames {
		remapTrace(&s.traceFrames[i], remap)
	}
}

// remapTrace rewrites the Gaussian-ID streams a FrameTrace retains (the
// tracker's and mapper's per-tile logging lists) through the compaction
// permutation, keeping each frame's lists consistent with the live map's IDs.
// LoggingIDs aliases Map.RepTileLists on key frames, so it is only walked
// when it is a distinct set of lists. IDs at or beyond the permutation's
// range — dead-slot sentinels from an earlier compaction of a then-larger
// cloud — are left as they are; each frame's lists stay internally
// consistent, which is all the per-frame hardware-table models consume.
func remapTrace(ft *trace.FrameTrace, remap []int32) {
	aliased := len(ft.LoggingIDs) > 0 && len(ft.Map.RepTileLists) > 0 &&
		&ft.LoggingIDs[0] == &ft.Map.RepTileLists[0]
	remapIDLists(ft.Track.RepTileLists, remap)
	remapIDLists(ft.Map.RepTileLists, remap)
	if !aliased {
		remapIDLists(ft.LoggingIDs, remap)
	}
}

// remapIDLists applies the permutation in place to every list.
func remapIDLists(lists [][]int32, remap []int32) {
	for _, l := range lists {
		for i, id := range l {
			if int(id) < len(remap) {
				l[i] = remap[id]
			}
		}
	}
}

// bootstrap anchors the first frame at its ground-truth pose (the SLAM
// convention: the first camera defines the world frame) and builds the
// initial map.
func (s *System) bootstrap(f *frame.Frame, ft *trace.FrameTrace, info *FrameInfo) {
	pose := f.GTPose
	s.mapper.Densify(f, s.Intr, pose)
	mapStats, logIDs := s.mapper.FullMapping(f, s.Intr, pose)
	s.mapper.AddKeyframe(f, pose)
	ft.Map = mapStats
	ft.LoggingIDs = logIDs
	ft.IsKeyFrame = true
	info.IsKeyFrame = true
	info.Covisibility = 1
	info.KeyCovisibility = 1
	s.keyFrame = f
	s.keyPose = pose
	s.prevPose = pose
	s.poses = append(s.poses, pose)
}

func (s *System) step(f *frame.Frame, ft *trace.FrameTrace, info *FrameInfo) {
	// --- Frame covisibility detection (CODEC + FC detection engine). ---
	// The previous-frame comparison is the one the pipelined frontend can
	// have computed ahead of time; the key-frame comparison below depends on
	// which frame is the current anchor, so it always runs synchronously.
	fc, err := s.compareME(s.prevFrame.Color, f.Color)
	if err != nil {
		fc = 0
	}
	if s.detector.LastResult != nil {
		ft.CodecSADOps += s.detector.LastResult.SADOps
	}
	info.Covisibility = fc
	ft.Covisibility = float64(fc)
	// Covisibility against the last key frame drives the key-frame decision
	// and selects the coarse-alignment anchor.
	keyFC, err := s.detector.Compare(s.keyFrame.Color, f.Color)
	if err != nil {
		keyFC = 0
	}
	if s.detector.LastResult != nil {
		ft.CodecSADOps += s.detector.LastResult.SADOps
	}
	info.KeyCovisibility = keyFC

	// --- Tracking. ---
	var pose vecmath.Pose
	useMAT := s.Cfg.EnableMAT || s.Cfg.ForceCoarseOnly
	if useMAT {
		// Coarse-grained pose estimation (systolic-array workload charged
		// from the backbone model; functional estimate from the aligner).
		// While the last key frame remains well covisible the alignment
		// anchors to it rather than to the previous frame: frame-to-frame
		// odometry accumulates drift, and key-frame anchoring resets it —
		// the role Droid-SLAM's local frame graph plays in the paper.
		ft.CoarseMACs = s.backbone.Workload(s.Intr.W, s.Intr.H)
		var coarse vecmath.Pose
		if float64(keyFC) > s.Cfg.ThreshM {
			// Constant-velocity extrapolation on top of the key-frame anchor.
			initRel := s.prevRel.Compose(s.prevPose.Compose(s.keyPose.Inverse()))
			coarse = s.aligner.EstimatePose(s.keyFrame, f, s.Intr, s.keyPose, initRel)
		} else {
			coarse = s.aligner.EstimatePose(s.prevFrame, f, s.Intr, s.prevPose, s.prevRel)
		}
		switch {
		case s.Cfg.ForceCoarseOnly, float64(fc) > s.Cfg.ThreshT:
			pose = coarse
			info.CoarseOnly = true
			ft.CoarseOnly = true
		default:
			refined, stats := s.refiner.Refine(s.mapper.Cloud(), s.Intr, f, coarse, s.Cfg.IterT)
			pose = refined
			ft.Track = stats
			info.RefineIters = s.Cfg.IterT
		}
	} else {
		// Baseline: constant-velocity initialization (with the previous pose
		// as fallback for motion reversals) + N_T iterations.
		inits := []vecmath.Pose{s.prevRel.Compose(s.prevPose), s.prevPose}
		refined, stats := s.refiner.RefineBest(s.mapper.Cloud(), s.Intr, f, inits, s.Cfg.TrackIters)
		pose = refined
		ft.Track = stats
		info.RefineIters = s.Cfg.TrackIters
	}
	s.prevRel = pose.Compose(s.prevPose.Inverse())

	// --- Mapping. ---
	if s.Cfg.EnableGCM {
		if float64(keyFC) > s.Cfg.ThreshM {
			// Non-key frame: selective mapping with the recorded skip set.
			if s.Cfg.EvalFPRate {
				info.FPRate = s.measureFPRate(f, pose)
				info.FPValid = true
			}
			ft.SkippedGaussians = s.mapper.NumSkipped()
			ft.Map = s.mapper.SelectiveMapping(f, s.Intr, pose)
		} else {
			// New key frame: densify, full mapping, refresh contribution.
			s.mapper.Densify(f, s.Intr, pose)
			mapStats, logIDs := s.mapper.FullMapping(f, s.Intr, pose)
			s.mapper.AddKeyframe(f, pose)
			ft.Map = mapStats
			ft.LoggingIDs = logIDs
			ft.IsKeyFrame = true
			info.IsKeyFrame = true
			s.keyFrame = f
			s.keyPose = pose
		}
	} else {
		// Baseline mapping: densify + full mapping every frame.
		s.mapper.Densify(f, s.Intr, pose)
		mapStats, logIDs := s.mapper.FullMapping(f, s.Intr, pose)
		ft.Map = mapStats
		ft.LoggingIDs = logIDs
		ft.IsKeyFrame = true
		info.IsKeyFrame = true
		if s.frameCount%s.Cfg.KeyframeEvery == 0 {
			s.mapper.AddKeyframe(f, pose)
		}
		// The anchor key frame advances whenever covisibility with the old
		// one decays, keeping coarse-only variants drift-bounded too.
		if float64(keyFC) <= s.Cfg.ThreshM {
			s.keyFrame = f
			s.keyPose = pose
		}
	}

	s.prevPose = pose
	s.poses = append(s.poses, pose)
}

// measureFPRate compares the skip prediction against the ground-truth
// non-contributory set at this frame (one extra logged render; §6.2).
func (s *System) measureFPRate(f *frame.Frame, pose vecmath.Pose) float64 {
	cam := camera.Camera{Intr: s.Intr, Pose: pose}
	res := s.renderCtx.Render(s.mapper.Cloud(), cam, splat.Options{
		LogContribution: true,
		ThreshAlpha:     s.mapper.Cfg.ThreshAlpha,
		Workers:         s.Cfg.Workers,
	})
	truth := make(map[int]bool)
	for id := range res.Touched {
		if res.Touched[id] > 0 && res.Touched[id]-res.NonContrib[id] <= int32(s.mapper.Cfg.ContribPixMax) {
			truth[id] = true
		}
	}
	return metrics.FalsePositiveRate(s.mapper.PredictedNonContrib(), truth)
}

// Finish returns the run's result.
func (s *System) Finish(sequence string) *Result {
	return &Result{
		Sequence: sequence,
		Poses:    s.poses,
		GT:       s.gt,
		Cloud:    s.mapper.Cloud(),
		Mapper:   s.mapper,
		Info:     s.info,
		Trace: &trace.Run{
			Sequence: sequence,
			Width:    s.Intr.W,
			Height:   s.Intr.H,
			Frames:   s.traceFrames,
		},
	}
}

// Run executes the pipeline over a whole sequence: a thin wrapper that opens
// one Session on DefaultServer, pushes every frame, and closes it. With
// cfg.PipelineME the session launches the next frame's motion estimation
// before each frame is processed, so the CODEC stage overlaps the
// tracking/mapping work exactly as the paper's frame walk-through times it —
// the same call order the pre-session Run produced, byte for byte.
func Run(cfg Config, seq *scene.Sequence) (*Result, error) {
	return DefaultServer().Run(cfg, seq)
}

// EvaluatePSNR renders every stride-th frame from its estimated pose and
// returns the mean PSNR against the observed images (Fig. 14's metric). The
// render context comes from DefaultServer's pool (reused across frames; PSNR
// reads each render before the next), so evaluation allocates no private
// context per call.
func EvaluatePSNR(res *Result, seq *scene.Sequence, stride int) (float64, error) {
	if stride < 1 {
		stride = 1
	}
	var sum float64
	var n int
	pool := DefaultServer().ContextPool()
	ctx := pool.Acquire(seq.Intr.W, seq.Intr.H)
	defer pool.Release(ctx)
	for i := 0; i < len(seq.Frames); i += stride {
		cam := camera.Camera{Intr: seq.Intr, Pose: res.Poses[i]}
		r := ctx.Render(res.Cloud, cam, splat.Options{})
		p, err := metrics.PSNR(r.Color, seq.Frames[i].Color)
		if err != nil {
			return 0, err
		}
		sum += p
		n++
	}
	return sum / float64(n), nil
}
