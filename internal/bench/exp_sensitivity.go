package bench

import (
	"fmt"
	"io"

	"ags/internal/hw/platform"
	"ags/internal/slam"
)

// Sweep tables shared by Needs and Render, so the specs an experiment
// declares are exactly the bundles its renderer fetches.
var (
	fig19IterTs   = []int{2, 3, 5, 8, 12}
	fig20ThreshMs = []float64{0.65, 0.75, 0.80, 0.85, 0.90}
	fig21Mults    = []float64{1, 4, 8, 16, 32}
)

func fig19Spec(iterT int) RunSpec {
	return RunSpec{
		Seq: "Desk2", Variant: VarAGS, Key: fmt.Sprintf("iterT=%d", iterT),
		Override: func(c *slam.Config) { c.IterT = iterT },
	}
}

func fig20Spec(threshM float64) RunSpec {
	return RunSpec{
		Seq: "Desk", Variant: VarAGS, Key: fmt.Sprintf("threshM=%.2f", threshM),
		Override: func(c *slam.Config) { c.ThreshM = threshM },
	}
}

// threshNAt scales the default Thresh_N by the sweep multiplier with the
// same floor the config applies.
func threshNAt(def int, mult float64) int {
	tn := int(float64(def) * mult)
	if tn < 1 {
		tn = 1
	}
	return tn
}

// fig21Spec keys the Thresh_N sweep by multiplier rather than the resolved
// value so Needs does not have to know the suite's resolution; the override
// scales whatever default the derived config carries.
func fig21Spec(mult float64) RunSpec {
	return RunSpec{
		Seq: "Desk", Variant: VarAGS, Key: fmt.Sprintf("threshN=x%g", mult),
		Override: func(c *slam.Config) { c.Mapper.ThreshN = threshNAt(c.Mapper.ThreshN, mult) },
	}
}

func expFig19() Experiment {
	specs := []RunSpec{Spec("Desk2", VarBaseline)}
	for _, it := range fig19IterTs {
		specs = append(specs, fig19Spec(it))
	}
	return expDef{
		id: "fig19", paper: "Fig. 19 (Iter_T sensitivity)",
		needs:  specs,
		render: (*Suite).Fig19,
	}
}

func expFig20() Experiment {
	var specs []RunSpec
	for _, tm := range fig20ThreshMs {
		specs = append(specs, fig20Spec(tm))
	}
	return expDef{
		id: "fig20", paper: "Fig. 20 (Thresh_M sensitivity)",
		needs:  specs,
		render: (*Suite).Fig20,
	}
}

func expFig21() Experiment {
	var specs []RunSpec
	for _, mult := range fig21Mults {
		specs = append(specs, fig21Spec(mult))
	}
	return expDef{
		id: "fig21", paper: "Fig. 21 (Thresh_N sensitivity)",
		needs:  specs,
		render: (*Suite).Fig21,
	}
}

// Fig19 reproduces Fig. 19: sensitivity of PSNR and speedup to Iter_T, the
// fine-grained refinement iteration count.
func (s *Suite) Fig19(w io.Writer) error {
	// Desk2 moves fast enough that the covisibility gate actually triggers
	// refinement; on near-static sequences Iter_T is never consumed.
	t := NewTable("Fig. 19: Sensitivity to Iter_T (Desk2)",
		"Iter_T", "PSNR (dB)", "Speedup vs A100")
	base := s.MustRun(Spec("Desk2", VarBaseline))
	gpuT := platform.RunTotal(platform.A100(), base.Result.Trace)
	for _, iterT := range fig19IterTs {
		b, err := s.Run(fig19Spec(iterT))
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		agsT := platform.RunTotal(platform.AGSServer(), b.Result.Trace)
		t.AddRow(iterT, psnr, platform.Speedup(gpuT, agsT))
	}
	t.AddNote("paper: larger Iter_T raises quality, lowers speedup; chosen Iter_T=20 of 200 (here scaled)")
	t.Write(w)
	return nil
}

// theoreticalSaving is the fraction of in-view mapping Gaussian-processing
// work that selective mapping skipped (skipped Gaussians over skipped plus
// processed, per iteration).
func theoreticalSaving(b *Bundle) float64 {
	var processed, skipped float64
	for _, f := range b.Result.Trace.Frames {
		if f.Map.Iters == 0 {
			continue
		}
		processed += float64(f.Map.Splats) / float64(f.Map.Iters)
		skipped += float64(f.SkippedGaussians)
	}
	if processed+skipped == 0 {
		return 0
	}
	return 100 * skipped / (processed + skipped)
}

// Fig20 reproduces Fig. 20: sensitivity to Thresh_M, the key-frame
// covisibility threshold.
func (s *Suite) Fig20(w io.Writer) error {
	t := NewTable("Fig. 20: Sensitivity to Thresh_M (Desk)",
		"Thresh_M (%)", "PSNR (dB)", "Theoretical saving (%)", "Non-key frames (%)")
	for _, tm := range fig20ThreshMs {
		b, err := s.Run(fig20Spec(tm))
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		tot := b.Result.Trace.Totals()
		nonKey := 100 * float64(tot.Frames-tot.KeyFrames) / float64(tot.Frames)
		t.AddRow(int(tm*100), psnr, theoreticalSaving(b), nonKey)
	}
	t.AddNote("paper sweeps 40-60%% around its chosen 50%%; our covisibility scale places the same operating range at 65-85%% (DESIGN.md)")
	t.Write(w)
	return nil
}

// Fig21 reproduces Fig. 21: sensitivity to Thresh_N, the non-contributory
// pixel-count threshold (values scaled to this resolution like the default).
func (s *Suite) Fig21(w io.Writer) error {
	def := slam.DefaultConfig(s.Cfg.Width, s.Cfg.Height).Mapper.ThreshN
	t := NewTable("Fig. 21: Sensitivity to Thresh_N (Desk)",
		"Thresh_N", "PSNR (dB)", "Theoretical saving (%)")
	// Our pixel-scale splats put non-contributory counts in the
	// hundreds-to-thousands range (1-4 tiles of 256 pixels), so the
	// informative sweep sits above the paper's 450 operating point.
	for _, mult := range fig21Mults {
		b, err := s.Run(fig21Spec(mult))
		if err != nil {
			return err
		}
		psnr, err := b.PSNR()
		if err != nil {
			return err
		}
		t.AddRow(threshNAt(def, mult), psnr, theoreticalSaving(b))
	}
	t.AddNote("paper: higher Thresh_N -> fewer skipped Gaussians -> less saving, better quality; chosen 450 at 640x480")
	t.Write(w)
	return nil
}
