package frame

import (
	"math"
	"testing"

	"ags/internal/vecmath"
)

func TestImageSetAtRoundTrip(t *testing.T) {
	im := NewImage(8, 6)
	c := vecmath.Vec3{X: 0.1, Y: 0.5, Z: 0.9}
	im.Set(3, 2, c)
	if got := im.At(3, 2); got != c {
		t.Errorf("At = %v", got)
	}
	// Out of bounds set must be a no-op; At must clamp.
	im.Set(-1, 0, c)
	im.Set(8, 0, c)
	if got := im.At(-5, -5); got != im.At(0, 0) {
		t.Error("At did not clamp")
	}
}

func TestImageClone(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 1, vecmath.Vec3{X: 1})
	cp := im.Clone()
	cp.Set(1, 1, vecmath.Vec3{Y: 1})
	if im.At(1, 1).Y != 0 {
		t.Error("clone aliases original")
	}
}

func TestLumaWeights(t *testing.T) {
	im := NewImage(1, 1)
	im.Set(0, 0, vecmath.Vec3{X: 1, Y: 1, Z: 1})
	if l := im.Luma()[0]; math.Abs(l-1) > 1e-9 {
		t.Errorf("white luma = %v", l)
	}
	im.Set(0, 0, vecmath.Vec3{Y: 1})
	if l := im.Luma()[0]; math.Abs(l-0.587) > 1e-9 {
		t.Errorf("green luma = %v", l)
	}
}

func TestLuma8Range(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, vecmath.Vec3{X: 2, Y: 2, Z: 2})    // over-range clamps to 255
	im.Set(1, 0, vecmath.Vec3{X: -1, Y: -1, Z: -1}) // under-range clamps to 0
	l := im.Luma8()
	if l[0] != 255 || l[1] != 0 {
		t.Errorf("Luma8 = %v", l)
	}
}

func TestDownsampleAveraging(t *testing.T) {
	im := NewImage(4, 2)
	for x := 0; x < 4; x++ {
		for y := 0; y < 2; y++ {
			im.Set(x, y, vecmath.Vec3{X: float64(x % 2)})
		}
	}
	ds := im.Downsample()
	if ds.W != 2 || ds.H != 1 {
		t.Fatalf("downsample size %dx%d", ds.W, ds.H)
	}
	if math.Abs(ds.At(0, 0).X-0.5) > 1e-9 {
		t.Errorf("box average = %v", ds.At(0, 0).X)
	}
}

func TestBilinearCorners(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, vecmath.Vec3{X: 1})
	im.Set(1, 0, vecmath.Vec3{Y: 1})
	if got := im.Bilinear(0, 0); got.X != 1 {
		t.Errorf("corner sample = %v", got)
	}
	mid := im.Bilinear(0.5, 0)
	if math.Abs(mid.X-0.5) > 1e-9 || math.Abs(mid.Y-0.5) > 1e-9 {
		t.Errorf("midpoint sample = %v", mid)
	}
}

func TestDepthDownsampleIgnoresInvalid(t *testing.T) {
	dm := NewDepthMap(2, 2)
	dm.Set(0, 0, 2.0)
	// Remaining three pixels invalid (0). Average must use the valid one only.
	ds := dm.Downsample()
	if math.Abs(ds.At(0, 0)-2.0) > 1e-9 {
		t.Errorf("depth downsample = %v", ds.At(0, 0))
	}
	empty := NewDepthMap(2, 2).Downsample()
	if empty.At(0, 0) != 0 {
		t.Error("all-invalid block should stay invalid")
	}
}

func TestFrameValidate(t *testing.T) {
	f := &Frame{Index: 1, Color: NewImage(4, 4), Depth: NewDepthMap(4, 4)}
	if err := f.Validate(); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	bad := &Frame{Index: 2, Color: NewImage(4, 4), Depth: NewDepthMap(3, 4)}
	if err := bad.Validate(); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := (&Frame{Index: 3}).Validate(); err == nil {
		t.Error("nil buffers accepted")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	if d := MeanAbsDiff(a, b); d != 0 {
		t.Errorf("identical images diff = %v", d)
	}
	b.Set(0, 0, vecmath.Vec3{X: 1, Y: 1, Z: 1})
	want := 3.0 / 12.0
	if d := MeanAbsDiff(a, b); math.Abs(d-want) > 1e-12 {
		t.Errorf("diff = %v want %v", d, want)
	}
	c := NewImage(3, 2)
	if !math.IsInf(MeanAbsDiff(a, c), 1) {
		t.Error("size mismatch should be +Inf")
	}
}
