// Package tracker implements both halves of AGS's movement-adaptive tracking
// (paper §4.2): the lightweight coarse pose estimator run for every frame,
// and the fine-grained 3DGS refinement run only when frame covisibility is
// low. It also provides the baseline SplaTAM-style tracker (N_T full 3DGS
// iterations per frame) the paper compares against.
package tracker

import (
	"math"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/vecmath"
)

// CoarseAligner estimates the relative pose between consecutive RGB-D frames
// with coarse-to-fine Gauss-Newton dense alignment (photometric + depth
// residuals). It plays the role of Droid-SLAM's feature+ConvGRU tracker in
// the AGS algorithm: a fast pose that never touches the Gaussians, good
// enough on its own when covisibility is high (see DESIGN.md substitution #3;
// the matching systolic-array workload is modeled by nnlite.PoseBackbone).
type CoarseAligner struct {
	// Levels is the number of pyramid levels (coarsest first at /2^(L-1)).
	Levels int
	// ItersPerLevel bounds Gauss-Newton iterations at each level.
	ItersPerLevel int
	// DepthWeight balances the geometric vs photometric residual.
	DepthWeight float64
	// HuberDelta is the robust-loss threshold on residuals.
	HuberDelta float64
	// Stride subsamples source pixels for speed (1 = dense).
	Stride int
}

// NewCoarseAligner returns an aligner tuned for the reproduction's frame sizes.
func NewCoarseAligner() *CoarseAligner {
	return &CoarseAligner{Levels: 3, ItersPerLevel: 12, DepthWeight: 0.7, HuberDelta: 0.1, Stride: 1}
}

// pyramidLevel holds the downsampled data for one level.
type pyramidLevel struct {
	intr      camera.Intrinsics
	prevLuma  []float64
	prevDepth *frame.DepthMap
	curLuma   []float64
	curDepth  *frame.DepthMap
	w, h      int
}

// EstimateRelative returns the transform mapping previous-camera coordinates
// to current-camera coordinates (T_rel with p_cur = T_rel * p_prev),
// starting the optimization from init.
func (a *CoarseAligner) EstimateRelative(prev, cur *frame.Frame, intr camera.Intrinsics, init vecmath.Pose) vecmath.Pose {
	levels := a.buildPyramid(prev, cur, intr)
	t := init
	for li := len(levels) - 1; li >= 0; li-- {
		t = a.solveLevel(&levels[li], t)
	}
	return t
}

// EstimatePose composes the relative estimate onto the previous frame's pose
// estimate, returning a world-to-camera pose for the current frame.
func (a *CoarseAligner) EstimatePose(prev, cur *frame.Frame, intr camera.Intrinsics, prevPose vecmath.Pose, initRel vecmath.Pose) vecmath.Pose {
	rel := a.EstimateRelative(prev, cur, intr, initRel)
	return rel.Compose(prevPose)
}

func (a *CoarseAligner) buildPyramid(prev, cur *frame.Frame, intr camera.Intrinsics) []pyramidLevel {
	levels := make([]pyramidLevel, a.Levels)
	pc, cc := prev.Color, cur.Color
	pd, cd := prev.Depth, cur.Depth
	in := intr
	for i := 0; i < a.Levels; i++ {
		levels[i] = pyramidLevel{
			intr:     in,
			prevLuma: pc.Luma(), prevDepth: pd,
			curLuma: cc.Luma(), curDepth: cd,
			w: in.W, h: in.H,
		}
		if i+1 < a.Levels {
			pc, cc = pc.Downsample(), cc.Downsample()
			pd, cd = pd.Downsample(), cd.Downsample()
			in = in.Scaled(2)
		}
	}
	return levels
}

// bilinearScalar samples a flat scalar field bilinearly with border clamp.
func bilinearScalar(data []float64, w, h int, x, y float64) float64 {
	x = vecmath.Clamp(x, 0, float64(w-1))
	y = vecmath.Clamp(y, 0, float64(h-1))
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 >= w {
		x1 = w - 1
	}
	if y1 >= h {
		y1 = h - 1
	}
	fx, fy := x-float64(x0), y-float64(y0)
	top := data[y0*w+x0]*(1-fx) + data[y0*w+x1]*fx
	bot := data[y1*w+x0]*(1-fx) + data[y1*w+x1]*fx
	return top*(1-fy) + bot*fy
}

// gradScalar returns central-difference gradients of a flat field at (x, y).
func gradScalar(data []float64, w, h int, x, y float64) (gx, gy float64) {
	gx = 0.5 * (bilinearScalar(data, w, h, x+1, y) - bilinearScalar(data, w, h, x-1, y))
	gy = 0.5 * (bilinearScalar(data, w, h, x, y+1) - bilinearScalar(data, w, h, x, y-1))
	return gx, gy
}

func huberWeight(r, delta float64) float64 {
	ar := math.Abs(r)
	if ar <= delta {
		return 1
	}
	return delta / ar
}

func (a *CoarseAligner) solveLevel(lv *pyramidLevel, t vecmath.Pose) vecmath.Pose {
	stride := a.Stride
	if stride < 1 {
		stride = 1
	}
	lambda := 1e-4
	prevErr := math.Inf(1)
	for iter := 0; iter < a.ItersPerLevel; iter++ {
		var h [36]float64
		var b [6]float64
		var errSum float64
		var count int
		for y := 0; y < lv.h; y += stride {
			for x := 0; x < lv.w; x += stride {
				d := lv.prevDepth.At(x, y)
				if d <= 0 {
					continue
				}
				pPrev := lv.intr.Unproject(vecmath.Vec2{X: float64(x) + 0.5, Y: float64(y) + 0.5}, d)
				pCur := t.Apply(pPrev)
				px, ok := lv.intr.Project(pCur)
				if !ok || !lv.intr.InImage(px) {
					continue
				}
				du, dv := lv.intr.ProjectionJacobian(pCur)

				// Photometric residual.
				ic := bilinearScalar(lv.curLuma, lv.w, lv.h, px.X-0.5, px.Y-0.5)
				ip := lv.prevLuma[y*lv.w+x]
				rI := ic - ip
				// ESM-style gradient: average the current image's gradient at
				// the warped position with the reference image's gradient at
				// the source pixel — better convergence basin on large motion
				// than the forward-compositional gradient alone.
				gxC, gyC := gradScalar(lv.curLuma, lv.w, lv.h, px.X-0.5, px.Y-0.5)
				gxP, gyP := gradScalar(lv.prevLuma, lv.w, lv.h, float64(x), float64(y))
				gx, gy := 0.5*(gxC+gxP), 0.5*(gyC+gyP)
				// d(residual)/d(pCur) = gI . J
				jI := du.Scale(gx).Add(dv.Scale(gy))

				// Depth residual against the measured current depth.
				dMeas := lv.curDepth.At(int(px.X), int(px.Y))
				var rD float64
				var jD vecmath.Vec3
				haveDepth := dMeas > 0
				if haveDepth {
					rD = (pCur.Z - dMeas) * a.DepthWeight
					jD = vecmath.Vec3{Z: a.DepthWeight}
				}

				// Stack into the 6-dof system: dp/dxi = [I | -[p]x].
				addResidual := func(r float64, jp vecmath.Vec3, wgt float64) {
					// Left-perturbation: p' = p + dv + dw x p, so the
					// rotational part of dr/dxi is p x jp.
					j := [6]float64{
						jp.X, jp.Y, jp.Z,
						pCur.Y*jp.Z - pCur.Z*jp.Y,
						pCur.Z*jp.X - pCur.X*jp.Z,
						pCur.X*jp.Y - pCur.Y*jp.X,
					}
					for r2 := 0; r2 < 6; r2++ {
						b[r2] += wgt * j[r2] * r
						for c2 := 0; c2 < 6; c2++ {
							h[r2*6+c2] += wgt * j[r2] * j[c2]
						}
					}
					errSum += wgt * r * r
				}
				wI := huberWeight(rI, a.HuberDelta)
				addResidual(rI, jI, wI)
				if haveDepth {
					wD := huberWeight(rD, a.HuberDelta)
					addResidual(rD, jD, wD)
				}
				count++
			}
		}
		if count < 12 {
			break
		}
		// Levenberg damping and solve for the step.
		for i := 0; i < 6; i++ {
			h[i*6+i] += lambda * (1 + h[i*6+i])
		}
		step, ok := solve6(h, b)
		if !ok {
			break
		}
		tw := vecmath.Twist{
			V: vecmath.Vec3{X: -step[0], Y: -step[1], Z: -step[2]},
			W: vecmath.Vec3{X: -step[3], Y: -step[4], Z: -step[5]},
		}
		if tw.Norm() < 1e-9 {
			break
		}
		t = t.Retract(tw)
		if errSum > prevErr*0.9999 {
			lambda *= 4
		} else {
			lambda = math.Max(lambda*0.5, 1e-6)
		}
		prevErr = errSum
	}
	return t
}

// solve6 solves the 6x6 linear system H x = b by Gaussian elimination with
// partial pivoting. ok is false for (near-)singular systems.
func solve6(h [36]float64, b [6]float64) ([6]float64, bool) {
	var aug [6][7]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			aug[i][j] = h[i*6+j]
		}
		aug[i][6] = b[i]
	}
	for col := 0; col < 6; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 6; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[piv][col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv][col]) < 1e-12 {
			return [6]float64{}, false
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for j := col; j < 7; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < 6; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < 7; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var x [6]float64
	for i := 0; i < 6; i++ {
		x[i] = aug[i][6]
	}
	return x, true
}
