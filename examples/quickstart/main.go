// Quickstart: run the AGS-accelerated 3DGS-SLAM pipeline on a synthetic desk
// scan and print tracking accuracy, map quality, and how much work frame
// covisibility saved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ags/internal/scene"
	"ags/internal/slam"
)

func main() {
	// 1. Generate an RGB-D sequence (stand-in for a TUM-RGBD recording).
	seq, err := scene.Generate("Desk", scene.Config{
		Width: 64, Height: 48, Frames: 16, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure the AGS pipeline: movement-adaptive tracking and
	// Gaussian contribution-aware mapping, with the paper's thresholds.
	cfg := slam.AGSConfig(64, 48)
	cfg.TrackIters = 30 // scaled-down N_T for a quick demo

	// 3. Stream the frames.
	sys := slam.New(cfg, seq.Intr)
	for _, f := range seq.Frames {
		if err := sys.ProcessFrame(f); err != nil {
			log.Fatal(err)
		}
	}
	res := sys.Finish(seq.Name)
	sys.Close() // return the render context to the pool; PSNR below reuses it

	// 4. Evaluate.
	ate, err := res.ATERMSECm()
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := slam.EvaluatePSNR(res, seq, 2)
	if err != nil {
		log.Fatal(err)
	}
	tot := res.Trace.Totals()
	fmt.Printf("sequence        %s (%d frames)\n", seq.Name, tot.Frames)
	fmt.Printf("ATE RMSE        %.2f cm\n", ate)
	fmt.Printf("PSNR            %.2f dB\n", psnr)
	fmt.Printf("map size        %d Gaussians\n", res.Cloud.NumActive())
	fmt.Printf("key frames      %d (full mapping)\n", tot.KeyFrames)
	fmt.Printf("coarse-only     %d frames skipped 3DGS refinement\n", tot.CoarseOnly)
	fmt.Printf("track iters     %d total (baseline would use %d)\n",
		tot.TrackIters, cfg.TrackIters*(tot.Frames-1))
}
