// Package engines models the memory-side units of the AGS mapping engine:
// the GS logging table with its hot/cold buffer+cache split (Fig. 11) that
// batches contribution-info updates for frequently-appearing Gaussians, and
// the GS skipping table (Fig. 12) that streams the recorded contribution info
// once per non-key frame instead of refetching it per tile. Both are replayed
// against the real per-tile Gaussian-ID streams collected by the SLAM run.
package engines

import (
	"slices"

	"ags/internal/hw/dram"
)

// TableParams sizes the on-chip structures.
type TableParams struct {
	// HotEntries is the GS logging/skipping buffer capacity (entries kept
	// on-chip across tiles).
	HotEntries int
	// EntryBytes is the DRAM footprint of one Gaussian's contribution record.
	EntryBytes int
	// HotWindowTiles is how many upcoming Gaussian tables the frequency
	// evaluation scans when classifying hot vs cold Gaussians.
	HotWindowTiles int
}

// DefaultTableParams returns the paper's table configuration: 4 KB (edge) or
// 8 KB (server) logging tables with 8-byte entries.
func DefaultTableParams(server bool) TableParams {
	entries := 4 * 1024 / 8
	if server {
		entries = 8 * 1024 / 8
	}
	return TableParams{HotEntries: entries, EntryBytes: 8, HotWindowTiles: 8}
}

// LoggingResult summarizes one frame's logging-table traffic.
type LoggingResult struct {
	NaiveAccesses int64 // read-modify-write per (tile, Gaussian) entry
	OptAccesses   int64 // with the hot/cold split
	NaiveNs       float64
	OptNs         float64
	HotHits       int64 // updates absorbed by the on-chip buffer
}

// SimulateLogging replays the per-tile Gaussian tables of one full-mapping
// iteration through the GS logging table model.
//
// Naive baseline: after each tile, every touched Gaussian's contribution
// record is read from DRAM, incremented, and written back (2 accesses).
//
// Optimized (Fig. 11b): a sliding window of upcoming tiles classifies
// Gaussians appearing in more than one table as hot; hot records live in the
// GS logging buffer and are written back once, while cold records take the
// read-modify-write path through the GS logging cache.
func SimulateLogging(tiles [][]int32, p TableParams, spec dram.Spec) LoggingResult {
	var res LoggingResult
	naive := dram.New(spec)
	opt := dram.New(spec)

	// Classify hot Gaussians per window by cross-tile frequency.
	for start := 0; start < len(tiles); start += p.HotWindowTiles {
		end := start + p.HotWindowTiles
		if end > len(tiles) {
			end = len(tiles)
		}
		freq := make(map[int32]int)
		for ti := start; ti < end; ti++ {
			for _, id := range tiles[ti] {
				freq[id]++
			}
		}
		// When more Gaussians qualify than fit, keep the most frequent
		// (ties broken by id). The ordering is total, so the model — which
		// feeds the platform timing of every speedup table — is a pure
		// function of the trace rather than of map iteration order.
		cands := make([]int32, 0, len(freq))
		for id, f := range freq {
			if f >= 2 {
				cands = append(cands, id)
			}
		}
		slices.SortFunc(cands, func(a, b int32) int {
			if freq[a] != freq[b] {
				return freq[b] - freq[a] // frequency descending
			}
			return int(a - b) // id ascending
		})
		if len(cands) > p.HotEntries {
			cands = cands[:p.HotEntries]
		}
		hot := make(map[int32]bool, len(cands))
		for _, id := range cands {
			hot[id] = true
		}
		for ti := start; ti < end; ti++ {
			seen := make(map[int32]bool)
			for _, id := range tiles[ti] {
				if seen[id] {
					continue
				}
				seen[id] = true
				addr := uint64(id) * uint64(p.EntryBytes)
				// Naive: RMW to DRAM for every entry of every tile.
				res.NaiveNs += naive.Access(addr, p.EntryBytes)
				res.NaiveNs += naive.Access(addr, p.EntryBytes)
				res.NaiveAccesses += 2
				if hot[id] {
					res.HotHits++
					continue
				}
				// Cold path: RMW through the logging cache.
				res.OptNs += opt.Access(addr, p.EntryBytes)
				res.OptNs += opt.Access(addr, p.EntryBytes)
				res.OptAccesses += 2
			}
		}
		// Hot records are flushed once per window, in ascending id (address)
		// order: the DRAM model's row-buffer hits depend on access order, so
		// the flush sequence must be deterministic too.
		slices.Sort(cands)
		for _, id := range cands {
			addr := uint64(id) * uint64(p.EntryBytes)
			res.OptNs += opt.Access(addr, p.EntryBytes)
			res.OptAccesses++
		}
	}
	return res
}

// SkippingResult summarizes one non-key frame's skipping-table traffic.
type SkippingResult struct {
	NaiveNs     float64
	OptNs       float64
	NaiveBytes  int64
	StreamBytes int64
}

// SimulateSkipping models reading the contribution records for selective
// mapping. Naive: each tile's Gaussian table refetches its records from DRAM.
// Optimized: the skipping table streams the whole record array once per
// frame and serves tiles from the buffer/cache.
func SimulateSkipping(tiles [][]int32, numGaussians int, p TableParams, spec dram.Spec) SkippingResult {
	var res SkippingResult
	naive := dram.New(spec)
	for _, list := range tiles {
		for _, id := range list {
			addr := uint64(id) * uint64(p.EntryBytes)
			res.NaiveNs += naive.Access(addr, p.EntryBytes)
			res.NaiveBytes += int64(p.EntryBytes)
		}
	}
	res.StreamBytes = int64(numGaussians) * int64(p.EntryBytes)
	res.OptNs = dram.StreamNs(spec, res.StreamBytes)
	return res
}
