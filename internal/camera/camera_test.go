package camera

import (
	"math"
	"math/rand"
	"testing"

	"ags/internal/vecmath"
)

func testIntr() Intrinsics { return NewIntrinsics(64, 48, math.Pi/3) }

func TestNewIntrinsicsCenter(t *testing.T) {
	in := testIntr()
	if in.Cx != 32 || in.Cy != 24 {
		t.Errorf("principal point = (%v,%v)", in.Cx, in.Cy)
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBadIntrinsics(t *testing.T) {
	if err := (Intrinsics{W: 0, H: 10, Fx: 1, Fy: 1}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := (Intrinsics{W: 10, H: 10, Fx: -1, Fy: 1}).Validate(); err == nil {
		t.Error("negative focal accepted")
	}
}

func TestProjectUnprojectRoundTrip(t *testing.T) {
	in := testIntr()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := vecmath.Vec3{
			X: rng.NormFloat64(),
			Y: rng.NormFloat64(),
			Z: 0.5 + rng.Float64()*5,
		}
		px, ok := in.Project(p)
		if !ok {
			t.Fatal("projection of forward point failed")
		}
		back := in.Unproject(px, p.Z)
		if back.Sub(p).Norm() > 1e-9 {
			t.Fatalf("roundtrip error: %v vs %v", back, p)
		}
	}
}

func TestProjectBehindCamera(t *testing.T) {
	in := testIntr()
	if _, ok := in.Project(vecmath.Vec3{X: 0, Y: 0, Z: -1}); ok {
		t.Error("point behind camera projected")
	}
	if _, ok := in.Project(vecmath.Vec3{X: 0, Y: 0, Z: 0}); ok {
		t.Error("point on camera plane projected")
	}
}

func TestCenterProjectsToPrincipalPoint(t *testing.T) {
	in := testIntr()
	px, ok := in.Project(vecmath.Vec3{Z: 2})
	if !ok || math.Abs(px.X-in.Cx) > 1e-12 || math.Abs(px.Y-in.Cy) > 1e-12 {
		t.Errorf("optical axis projects to %v", px)
	}
}

func TestProjectionJacobianNumeric(t *testing.T) {
	in := testIntr()
	rng := rand.New(rand.NewSource(2))
	const h = 1e-6
	for i := 0; i < 50; i++ {
		p := vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: 1 + rng.Float64()*4}
		du, dv := in.ProjectionJacobian(p)
		for axis := 0; axis < 3; axis++ {
			delta := vecmath.Vec3{}
			switch axis {
			case 0:
				delta.X = h
			case 1:
				delta.Y = h
			case 2:
				delta.Z = h
			}
			p1, _ := in.Project(p.Add(delta))
			p0, _ := in.Project(p.Sub(delta))
			numU := (p1.X - p0.X) / (2 * h)
			numV := (p1.Y - p0.Y) / (2 * h)
			var anaU, anaV float64
			switch axis {
			case 0:
				anaU, anaV = du.X, dv.X
			case 1:
				anaU, anaV = du.Y, dv.Y
			case 2:
				anaU, anaV = du.Z, dv.Z
			}
			if math.Abs(numU-anaU) > 1e-4*(1+math.Abs(numU)) ||
				math.Abs(numV-anaV) > 1e-4*(1+math.Abs(numV)) {
				t.Fatalf("jacobian mismatch axis %d: num (%v,%v) ana (%v,%v)", axis, numU, numV, anaU, anaV)
			}
		}
	}
}

func TestScaledPreservesRays(t *testing.T) {
	in := testIntr()
	half := in.Scaled(2)
	if half.W != in.W/2 || half.H != in.H/2 {
		t.Fatalf("scaled size = %dx%d", half.W, half.H)
	}
	// The same ray direction should come out of corresponding pixels.
	p := in.Unproject(vecmath.Vec2{X: 10, Y: 8}, 1)
	q := half.Unproject(vecmath.Vec2{X: 5, Y: 4}, 1)
	if p.Sub(q).Norm() > 1e-9 {
		t.Errorf("scaled unproject mismatch: %v vs %v", p, q)
	}
}

func TestCameraWorldRoundTrip(t *testing.T) {
	in := testIntr()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		cam := Camera{
			Intr: in,
			Pose: vecmath.Pose{
				R: vecmath.QuatFromAxisAngle(vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}, rng.Float64()),
				T: vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
			},
		}
		// Pick a world point guaranteed in front of the camera.
		local := vecmath.Vec3{X: rng.NormFloat64() * 0.3, Y: rng.NormFloat64() * 0.3, Z: 1 + rng.Float64()*3}
		world := cam.Pose.Inverse().Apply(local)
		px, depth, ok := cam.ProjectWorld(world)
		if !ok {
			t.Fatal("projection failed")
		}
		back := cam.UnprojectToWorld(px, depth)
		if back.Sub(world).Norm() > 1e-8 {
			t.Fatalf("world roundtrip error %v", back.Sub(world).Norm())
		}
	}
}

func TestRayThroughPixelHitsUnprojection(t *testing.T) {
	in := testIntr()
	cam := Camera{Intr: in, Pose: vecmath.Pose{
		R: vecmath.QuatFromAxisAngle(vecmath.Vec3{Y: 1}, 0.3),
		T: vecmath.Vec3{X: 0.5, Y: -0.2, Z: 1},
	}}
	origin, dir := cam.Ray(10, 20)
	// Marching 2.5 units along the ray must agree with unprojecting depth
	// equal to the camera-space Z of that point.
	pWorld := origin.Add(dir.Scale(2.5))
	pCam := cam.Pose.Apply(pWorld)
	px, _ := cam.Intr.Project(pCam)
	if math.Abs(px.X-10.5) > 1e-6 || math.Abs(px.Y-20.5) > 1e-6 {
		t.Errorf("ray does not pass through pixel center: %v", px)
	}
}

func TestInImage(t *testing.T) {
	in := testIntr()
	cases := []struct {
		px   vecmath.Vec2
		want bool
	}{
		{vecmath.Vec2{X: 0, Y: 0}, true},
		{vecmath.Vec2{X: 63.9, Y: 47.9}, true},
		{vecmath.Vec2{X: 64, Y: 0}, false},
		{vecmath.Vec2{X: -0.1, Y: 5}, false},
		{vecmath.Vec2{X: 5, Y: 48}, false},
	}
	for _, c := range cases {
		if got := in.InImage(c.px); got != c.want {
			t.Errorf("InImage(%v) = %v", c.px, got)
		}
	}
}
