package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"ags/internal/codec"
	"ags/internal/frame"
	"ags/internal/slam"
	"ags/internal/vecmath"
)

func expPerfME() Experiment {
	return expDef{
		id: "perf-me", paper: "Perf: serial vs parallel vs pipelined CODEC ME",
		// Dataset-only: the experiment times deliberately uncached SLAM runs,
		// so it declares the sequence but no pipeline bundle.
		needs:  []RunSpec{SeqSpec("Desk")},
		render: (*Suite).PerfME,
	}
}

// mePerfImage builds a textured low-frequency image pair (global shift plus
// per-pixel detail) at a CODEC-realistic size, independent of the suite's
// SLAM resolution so the ME timing is not dominated by goroutine overhead.
func mePerfImage(w, h int, seed int64) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	p0, p1 := rng.Float64()*6, rng.Float64()*6
	im := frame.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 0.5 + 0.25*math.Sin(6*fx*math.Pi+p0) + 0.2*math.Cos(5*fy*math.Pi+p1) + 0.05*rng.Float64()
			im.Set(x, y, vecmath.Vec3{X: v, Y: v, Z: v})
		}
	}
	return im
}

func shiftPerfImage(src *frame.Image, dx, dy int) *frame.Image {
	out := frame.NewImage(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Set(x, y, src.At(x-dx, y-dy))
		}
	}
	return out
}

// PerfME is the perf experiment behind the concurrent CODEC frontend: it
// times serial vs row-parallel vs early-terminating motion estimation on a
// CODEC-scale frame, verifies the parallel output is byte-identical, and
// then compares the serial against the pipelined (ME-prefetching) SLAM
// frontend wall-clock on a short sequence.
func (s *Suite) PerfME(out io.Writer) error {
	const w, h = 320, 240
	const reps = 4
	prev := mePerfImage(w, h, 21)
	cur := shiftPerfImage(prev, 3, -2)

	timeME := func(cfg codec.Config) (time.Duration, *codec.Result, error) {
		var res *codec.Result
		var err error
		// One untimed warm-up so the first configuration measured does not
		// also pay the image pages' first touch.
		if _, err = codec.MotionEstimate(prev, cur, cfg); err != nil {
			return 0, nil, err
		}
		start := wallNow()
		for r := 0; r < reps; r++ {
			res, err = codec.MotionEstimate(prev, cur, cfg)
			if err != nil {
				return 0, nil, err
			}
		}
		return wallSince(start) / reps, res, nil
	}

	cores := runtime.GOMAXPROCS(0)
	base := codec.DefaultConfig()
	serialT, serialRes, err := timeME(base)
	if err != nil {
		return err
	}
	pcfg := base
	pcfg.Workers = cores
	parT, parRes, err := timeME(pcfg)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(serialRes.MinSAD, parRes.MinSAD) || !reflect.DeepEqual(serialRes.MV, parRes.MV) ||
		serialRes.SADOps != parRes.SADOps {
		return fmt.Errorf("bench: parallel ME diverged from serial output")
	}
	ecfg := pcfg
	ecfg.EarlyTerm = true
	etT, etRes, err := timeME(ecfg)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(serialRes.MinSAD, etRes.MinSAD) || !reflect.DeepEqual(serialRes.MV, etRes.MV) {
		return fmt.Errorf("bench: early-terminating ME changed the search result")
	}

	t := NewTable(fmt.Sprintf("Perf: CODEC ME wall-time (%dx%d frame, %d cores)", w, h, cores),
		"Configuration", "ms/frame", "Speedup", "SAD ops")
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }
	t.AddRow("Serial", ms(serialT), 1.0, serialRes.SADOps)
	t.AddRow(fmt.Sprintf("Parallel (%d workers)", cores), ms(parT), float64(serialT)/float64(parT), parRes.SADOps)
	t.AddRow("Parallel + early term", ms(etT), float64(serialT)/float64(etT), etRes.SADOps)
	t.AddNote("parallel output verified byte-identical to serial; expect >=2x on >=4 cores")
	t.Write(out)

	// Frontend comparison: the pipelined prefetch must never lose to the
	// serial frontend (it overlaps ME with tracking/mapping; worst case the
	// overlap is zero). Runs are uncached so the timing is honest.
	seq := s.Sequence("Desk")
	// The splat renderer shards tiles deterministically, so the exact
	// trajectory check below holds with both runs fully parallel — no
	// Workers=1 pin required.
	serialCfg := s.slamConfig(VarAGS, nil)
	serialCfg.PipelineME = false
	serialCfg.CodecWorkers = 0
	pipeCfg := serialCfg
	pipeCfg.PipelineME = true
	pipeCfg.CodecWorkers = cores

	startS := wallNow()
	serialRun, err := slam.Run(serialCfg, seq)
	if err != nil {
		return err
	}
	serialWall := wallSince(startS)
	startP := wallNow()
	pipeRun, err := slam.Run(pipeCfg, seq)
	if err != nil {
		return err
	}
	pipeWall := wallSince(startP)
	for i := range serialRun.Poses {
		if serialRun.Poses[i] != pipeRun.Poses[i] {
			return fmt.Errorf("bench: pipelined frontend diverged from serial at frame %d", i)
		}
	}

	ft := NewTable(fmt.Sprintf("Perf: SLAM frontend wall-time (Desk, %d frames)", len(seq.Frames)),
		"Frontend", "Total", "ms/frame", "Speedup")
	perFrame := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6/float64(len(seq.Frames)))
	}
	ft.AddRow("Serial", serialWall.Round(time.Millisecond).String(), perFrame(serialWall), 1.0)
	ft.AddRow("Pipelined ME", pipeWall.Round(time.Millisecond).String(), perFrame(pipeWall),
		float64(serialWall)/float64(pipeWall))
	ft.AddNote("trajectories verified identical; ME cost is a small slice of the Go-side frame time, so gains are modest here — the paper's Fig. 9 overlap matters on the accelerator timing model")
	ft.Write(out)
	return nil
}
