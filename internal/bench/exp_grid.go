package bench

import (
	"fmt"
	"io"
	"net"
	"time"

	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/grid"
	"ags/internal/scene"
)

func expPerfGrid() Experiment {
	return expDef{
		id: "perf-grid", paper: "Perf: distributed bench execution — digest-verified grid sweep, retry over a killed worker",
		needs:  specsFor(serveSeqs(), VarAGS),
		render: (*Suite).PerfGrid,
	}
}

// PerfGrid is the grid subsystem's gate: the same specs the suite already ran
// locally are re-executed on a two-worker loopback grid and every remote
// result must hash bitwise identical to the cached local run. Row one is the
// undisturbed sweep with least-loaded placement (each worker must run at
// least one job, and a sampled subset must be confirmed by local replay);
// row two hard-kills the idle worker mid-sweep — listener and connections
// torn down via the chaos injector — and the sweep must complete on the
// survivor through the scheduler's retry-on-node-loss re-placement, evicting
// exactly one worker.
func (s *Suite) PerfGrid(w io.Writer) error {
	names := serveSeqs()
	type ref struct {
		seq    *scene.Sequence
		digest [32]byte
	}
	refs := make([]ref, len(names))
	for i, name := range names {
		b, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		refs[i] = ref{seq: b.Seq, digest: b.Result.Digest()}
	}
	cfg := s.slamConfig(VarAGS, nil)

	t := NewTable(fmt.Sprintf("Distributed bench: 2-worker grid (%dx%d, %d specs, window 1, sample every 2)",
		s.Cfg.Width, s.Cfg.Height, len(names)),
		"Scenario", "Wall ms", "Jobs", "Retries", "Evicted", "Verified", "KB wire")

	scenario := func(label, mode string) error {
		type member struct {
			node *fleet.Node
			inj  *chaos.Injector
			name string
		}
		members := make([]member, 0, 2)
		addrs := make([]string, 0, 2)
		for i, name := range []string{"grid-a", "grid-b"} {
			in := chaos.New(chaos.Config{Seed: 0x62D1 + uint64(i)})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("bench: perf-grid: %w", err)
			}
			n := fleet.NewNode(fleet.NodeConfig{Name: name, Jobs: grid.NewWorker()})
			addr, err := n.StartOn(in.Listen(ln))
			if err != nil {
				return fmt.Errorf("bench: perf-grid: %w", err)
			}
			members = append(members, member{node: n, inj: in, name: name})
			addrs = append(addrs, addr)
		}
		sch, err := grid.New(grid.Config{
			Workers:     addrs,
			Window:      1,
			SampleEvery: 2,
			Sleep:       func(time.Duration) {}, // deterministic backoff, no real wait
		})
		if err != nil {
			return fmt.Errorf("bench: perf-grid: %w", err)
		}

		// Serial dispatch: with equal in-flight counts, placement falls back
		// to fewest-jobs-then-declaration-order, so spec 0 lands on grid-a
		// and spec 1's natural target is grid-b — which the kill row tears
		// down right before dispatching it.
		start := wallNow()
		for i, rf := range refs {
			if mode == "kill" && i == 1 {
				for _, pw := range sch.Metrics().PerWorker {
					if pw.Jobs != 0 {
						continue
					}
					for _, m := range members {
						if m.name == pw.Name {
							m.inj.Kill()
						}
					}
				}
			}
			job := grid.Job{
				ID:    Spec(rf.seq.Name, VarAGS).ID(),
				Seq:   rf.seq.Name,
				Scene: s.sceneConfig(),
				Cfg:   cfg,
			}
			res, info, err := sch.ExecuteSpec(job, rf.seq)
			if err != nil {
				return fmt.Errorf("bench: perf-grid: job %s (%s): %w", job.ID, label, err)
			}
			if res.Digest() != rf.digest {
				return fmt.Errorf("bench: perf-grid: job %s (%s) on %s diverged from local run", job.ID, label, info.Worker)
			}
		}
		wall := wallSince(start)

		m := sch.Metrics()
		if m.Jobs != len(refs) {
			return fmt.Errorf("bench: perf-grid: %d jobs completed, want %d", m.Jobs, len(refs))
		}
		if m.WireBytes <= 0 {
			return fmt.Errorf("bench: perf-grid: no bytes accounted over the wire")
		}
		switch mode {
		case "steady":
			for _, pw := range m.PerWorker {
				if pw.Jobs < 1 {
					return fmt.Errorf("bench: perf-grid: worker %s ran no job; placement must spread the sweep", pw.Name)
				}
			}
			if m.Retries != 0 || m.Evictions != 0 {
				return fmt.Errorf("bench: perf-grid: steady row saw %d retries, %d evictions", m.Retries, m.Evictions)
			}
			if m.Verified < 1 {
				return fmt.Errorf("bench: perf-grid: no job confirmed by local replay")
			}
		case "kill":
			if m.Retries < 1 {
				return fmt.Errorf("bench: perf-grid: kill row recorded no retry")
			}
			if m.Evictions != 1 {
				return fmt.Errorf("bench: perf-grid: kill row evicted %d worker(s), want exactly 1", m.Evictions)
			}
		}

		sch.Close()
		for _, mb := range members {
			if mb.inj.Killed() {
				continue // the killed node's listener and conns are already gone
			}
			if err := mb.node.Close(); err != nil {
				return fmt.Errorf("bench: perf-grid: node close: %w", err)
			}
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
			m.Jobs,
			m.Retries,
			m.Evictions,
			m.Verified,
			fmt.Sprintf("%.1f", float64(m.WireBytes)/1024))
		return nil
	}

	if err := scenario("grid sweep, 2 workers", "steady"); err != nil {
		return err
	}
	if err := scenario("kill idle worker mid-sweep", "kill"); err != nil {
		return err
	}

	t.AddNote("every remote digest asserted bitwise identical to the cached local slam.Run; workers regenerate datasets from the shipped recipe")
	t.AddNote("steady row gates >=1 job on every worker and >=1 sampled local-replay confirmation")
	t.AddNote("kill row tears the idle worker down (listener + conns) before its job dispatches; the sweep must finish on the survivor with exactly one eviction")
	t.Write(w)
	return nil
}
