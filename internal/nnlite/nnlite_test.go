package nnlite

import (
	"math"
	"math/rand"
	"testing"

	"ags/internal/frame"
	"ags/internal/vecmath"
)

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 conv with weight 1 must reproduce the input.
	c := &Conv2D{InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
		Weight: []float64{1}, Bias: []float64{0}}
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv changed data at %d", i)
		}
	}
}

func TestConvBoxFilter(t *testing.T) {
	// 3x3 all-ones kernel on a constant image: interior outputs = 9, corner
	// outputs (with zero padding) = 4.
	c := &Conv2D{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 1,
		Weight: make([]float64, 9), Bias: []float64{0}}
	for i := range c.Weight {
		c.Weight[i] = 1
	}
	in := NewTensor(1, 5, 5)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 2, 2) != 9 {
		t.Errorf("interior = %v", out.At(0, 2, 2))
	}
	if out.At(0, 0, 0) != 4 {
		t.Errorf("corner = %v", out.At(0, 0, 0))
	}
}

func TestConvStrideOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(3, 8, 3, 2, 1, rng)
	oh, ow := c.OutSize(64, 96)
	if oh != 32 || ow != 48 {
		t.Errorf("OutSize = %dx%d", oh, ow)
	}
	in := NewTensor(3, 64, 96)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 8 || out.H != 32 || out.W != 48 {
		t.Errorf("forward shape %dx%dx%d", out.C, out.H, out.W)
	}
}

func TestConvMACCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(2, 4, 3, 1, 1, rng)
	// 4 out channels * 2 in channels * 9 kernel * 8*8 outputs.
	if got := c.MACs(8, 8); got != 4*2*9*64 {
		t.Errorf("MACs = %d", got)
	}
}

func TestConvChannelMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(3, 4, 3, 1, 1, rng)
	if _, err := c.Forward(NewTensor(2, 8, 8)); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestReLU(t *testing.T) {
	in := NewTensor(1, 1, 3)
	in.Data = []float64{-1, 0, 2}
	ReLU(in)
	if in.Data[0] != 0 || in.Data[1] != 0 || in.Data[2] != 2 {
		t.Errorf("ReLU = %v", in.Data)
	}
}

func TestGRUStatePersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewConvGRU(4, 4, 3, rng)
	h := NewTensor(4, 6, 6)
	x := NewTensor(4, 6, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	h1, err := g.Step(h, x)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := g.Step(h1, x)
	if err != nil {
		t.Fatal(err)
	}
	// The state must stay bounded (tanh candidate) and evolve.
	var diff, maxAbs float64
	for i := range h1.Data {
		diff += math.Abs(h2.Data[i] - h1.Data[i])
		maxAbs = math.Max(maxAbs, math.Abs(h2.Data[i]))
	}
	if diff == 0 {
		t.Error("GRU state did not evolve")
	}
	if maxAbs > 1.0001 {
		t.Errorf("GRU state escaped tanh bound: %v", maxAbs)
	}
}

func TestGRUShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewConvGRU(4, 4, 3, rng)
	if _, err := g.Step(NewTensor(4, 6, 6), NewTensor(4, 5, 6)); err == nil {
		t.Error("spatial mismatch accepted")
	}
	if _, err := g.Step(NewTensor(3, 6, 6), NewTensor(4, 6, 6)); err == nil {
		t.Error("hidden channel mismatch accepted")
	}
}

func TestGRUConvergesOnConstantInput(t *testing.T) {
	// With a fixed input, repeated GRU steps should approach a fixed point:
	// step-to-step change must shrink.
	rng := rand.New(rand.NewSource(4))
	g := NewConvGRU(3, 3, 3, rng)
	h := NewTensor(3, 4, 4)
	x := NewTensor(3, 4, 4)
	for i := range x.Data {
		x.Data[i] = 0.5
	}
	var first, last float64
	prev := h
	for i := 0; i < 30; i++ {
		next, err := g.Step(prev, x)
		if err != nil {
			t.Fatal(err)
		}
		var d float64
		for j := range next.Data {
			d += math.Abs(next.Data[j] - prev.Data[j])
		}
		if i == 0 {
			first = d
		}
		last = d
		prev = next
	}
	if last >= first {
		t.Errorf("GRU updates not contracting: first %v last %v", first, last)
	}
}

func TestBackboneWorkloadAndEmbed(t *testing.T) {
	b := NewPoseBackbone(1)
	macs := b.Workload(96, 72)
	if macs <= 0 {
		t.Fatal("non-positive workload")
	}
	// Workload scales superlinearly in pixels but linearly per conv layer;
	// double resolution => ~4x MACs.
	macs2 := b.Workload(192, 144)
	ratio := float64(macs2) / float64(macs)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("workload scaling ratio = %v, want ~4", ratio)
	}

	im := frame.NewImage(32, 24)
	for i := range im.Pix {
		im.Pix[i] = vecmath.Vec3{X: float64(i%7) / 7, Y: 0.4, Z: 0.6}
	}
	emb, err := b.Embed(im, im)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != 96 {
		t.Errorf("embedding size %d", len(emb))
	}
	for _, v := range emb {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
}

func TestBackboneDeterministic(t *testing.T) {
	im := frame.NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = vecmath.Vec3{X: float64(i) / 256}
	}
	e1, err := NewPoseBackbone(5).Embed(im, im)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewPoseBackbone(5).Embed(im, im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}
