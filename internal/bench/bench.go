// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation (§3 motivation profiles and §6), each
// printing the same rows/series the paper reports. SLAM runs are cached and
// shared across experiments, mirroring the paper's methodology of collecting
// traces once and evaluating every platform on them.
package bench

import (
	"fmt"
	"io"
	"sync"

	"ags/internal/camera"
	"ags/internal/mapper"
	"ags/internal/metrics"
	"ags/internal/scene"
	"ags/internal/slam"
	"ags/internal/splat"
)

// Config scales the whole experiment suite.
type Config struct {
	Width, Height int
	Frames        int
	TrackIters    int // baseline N_T
	IterT         int // AGS refinement iterations
	MapIters      int // N_M
	DensifyStride int
	Workers       int
	Seed          int64
	// CodecWorkers, PipelineME and CodecEarlyTerm select the concurrent
	// CODEC frontend for every SLAM run in the suite (see package slam).
	// None of them changes trajectories or covisibility scores, but
	// CodecEarlyTerm lowers the traced SADOps, so op-count tables are only
	// comparable across runs that agree on it.
	CodecWorkers   int
	PipelineME     bool
	CodecEarlyTerm bool
}

// Quick returns the configuration used by default: small enough that the
// full suite completes in minutes on a laptop CPU, large enough that every
// effect the paper reports is visible.
func Quick() Config {
	return Config{
		Width: 64, Height: 48, Frames: 16,
		TrackIters: 24, IterT: 5, MapIters: 8,
		DensifyStride: 2, Seed: 1,
	}
}

// Full returns the larger configuration (closer to the paper's per-frame
// workload shape; several times slower).
func Full() Config {
	return Config{
		Width: 96, Height: 72, Frames: 40,
		TrackIters: 60, IterT: 6, MapIters: 15,
		DensifyStride: 2, Seed: 1,
	}
}

// Variant names a pipeline configuration.
type Variant string

// Pipeline variants shared by the experiments.
const (
	VarBaseline  Variant = "baseline"   // SplaTAM-style
	VarAGS       Variant = "ags"        // MAT + GCM
	VarMATOnly   Variant = "mat"        // movement-adaptive tracking only
	VarGCMOnly   Variant = "gcm"        // contribution-aware mapping only
	VarDroid     Variant = "droid"      // coarse-only tracking (Table 4)
	VarGSLAMBase Variant = "gslam-base" // Gaussian-SLAM backbone, baseline
	VarGSLAMAGS  Variant = "gslam-ags"  // Gaussian-SLAM backbone + AGS
)

// Bundle is one cached SLAM run plus its dataset.
type Bundle struct {
	Seq    *scene.Sequence
	Result *slam.Result

	psnrOnce sync.Once
	psnr     float64
	psnrErr  error
}

// PSNR lazily evaluates (and caches) the run's mean rendering quality.
func (b *Bundle) PSNR() (float64, error) {
	b.psnrOnce.Do(func() {
		b.psnr, b.psnrErr = slam.EvaluatePSNR(b.Result, b.Seq, 2)
	})
	return b.psnr, b.psnrErr
}

// Suite owns the run cache and output stream.
type Suite struct {
	Cfg Config
	Out io.Writer

	mu      sync.Mutex
	seqs    map[string]*scene.Sequence
	bundles map[string]*Bundle
	// Verbose logs each cache miss (runs take seconds to minutes).
	Verbose bool
}

// NewSuite returns an empty suite writing to out.
func NewSuite(cfg Config, out io.Writer) *Suite {
	return &Suite{
		Cfg:     cfg,
		Out:     out,
		seqs:    make(map[string]*scene.Sequence),
		bundles: make(map[string]*Bundle),
	}
}

// Sequence returns (generating on first use) the named dataset.
func (s *Suite) Sequence(name string) *scene.Sequence {
	s.mu.Lock()
	seq, ok := s.seqs[name]
	s.mu.Unlock()
	if ok {
		return seq
	}
	seq = scene.MustGenerate(name, scene.Config{
		Width: s.Cfg.Width, Height: s.Cfg.Height, Frames: s.Cfg.Frames, Seed: s.Cfg.Seed,
	})
	s.mu.Lock()
	s.seqs[name] = seq
	s.mu.Unlock()
	return seq
}

// slamConfig builds the pipeline configuration for a variant. overrides, if
// non-nil, may further mutate the config (parameter sweeps).
func (s *Suite) slamConfig(v Variant, override func(*slam.Config)) slam.Config {
	cfg := slam.DefaultConfig(s.Cfg.Width, s.Cfg.Height)
	cfg.TrackIters = s.Cfg.TrackIters
	cfg.IterT = s.Cfg.IterT
	cfg.Mapper.MapIters = s.Cfg.MapIters
	cfg.Mapper.DensifyStride = s.Cfg.DensifyStride
	cfg.Workers = s.Cfg.Workers
	cfg.CodecWorkers = s.Cfg.CodecWorkers
	cfg.PipelineME = s.Cfg.PipelineME
	cfg.CodecEarlyTerm = s.Cfg.CodecEarlyTerm
	switch v {
	case VarBaseline:
	case VarAGS:
		cfg.EnableMAT, cfg.EnableGCM = true, true
	case VarMATOnly:
		cfg.EnableMAT = true
	case VarGCMOnly:
		cfg.EnableGCM = true
	case VarDroid:
		cfg.ForceCoarseOnly = true
	case VarGSLAMBase:
		cfg.Backbone = slam.BackboneGaussianSLAM
	case VarGSLAMAGS:
		cfg.Backbone = slam.BackboneGaussianSLAM
		cfg.EnableGCM = true
	}
	if override != nil {
		override(&cfg)
	}
	return cfg
}

// Run returns the cached bundle for (sequence, variant), executing the
// pipeline on first use. key distinguishes parameter sweeps.
func (s *Suite) Run(seqName string, v Variant, key string, override func(*slam.Config)) (*Bundle, error) {
	id := seqName + "/" + string(v) + "/" + key
	s.mu.Lock()
	b, ok := s.bundles[id]
	s.mu.Unlock()
	if ok {
		return b, nil
	}
	seq := s.Sequence(seqName)
	if s.Verbose {
		fmt.Fprintf(s.Out, "# running %s ...\n", id)
	}
	res, err := slam.Run(s.slamConfig(v, override), seq)
	if err != nil {
		return nil, fmt.Errorf("bench: run %s: %w", id, err)
	}
	b = &Bundle{Seq: seq, Result: res}
	s.mu.Lock()
	s.bundles[id] = b
	s.mu.Unlock()
	return b, nil
}

// MustRun is Run for experiment code where errors are fatal to the harness.
func (s *Suite) MustRun(seqName string, v Variant, key string, override func(*slam.Config)) *Bundle {
	b, err := s.Run(seqName, v, key, override)
	if err != nil {
		panic(err)
	}
	return b
}

// contributionStats renders frame fi of the bundle at its estimated pose
// with contribution logging and returns (nonContributory, total) Gaussian
// counts under the mapper's thresholds.
func contributionStats(b *Bundle, fi int, mcfg mapper.Config) (nonContrib, total int, ids map[int]bool) {
	cam := camera.Camera{Intr: b.Seq.Intr, Pose: b.Result.Poses[fi]}
	res := splat.Render(b.Result.Cloud, cam, splat.Options{
		LogContribution: true,
		ThreshAlpha:     mcfg.ThreshAlpha,
	})
	ids = make(map[int]bool)
	for id := range res.Touched {
		if res.Touched[id] == 0 {
			continue // culled before the Gaussian tables; not in any table
		}
		total++
		if res.Touched[id]-res.NonContrib[id] <= int32(mcfg.ContribPixMax) {
			nonContrib++
			ids[id] = true
		}
	}
	return nonContrib, total, ids
}

// geoMeanOf orders a named float per sequence and appends its GeoMean.
func geoMeanOf(vals map[string]float64, order []string) []float64 {
	out := make([]float64, 0, len(order)+1)
	var list []float64
	for _, name := range order {
		out = append(out, vals[name])
		list = append(list, vals[name])
	}
	out = append(out, metrics.GeoMean(list))
	return out
}
