package nnlite

import (
	"math/rand"

	"ags/internal/frame"
)

// PoseBackbone is the Droid-SLAM-style network the AGS pose tracking engine
// executes on its systolic array: a downsampling feature CNN followed by
// ConvGRU update iterations. The functional coarse pose in this reproduction
// comes from the classical aligner (internal/tracker); the backbone supplies
// the matching compute workload — layer shapes, MAC counts and a real forward
// pass — that the hardware model times (DESIGN.md substitution #3).
type PoseBackbone struct {
	Convs    []*Conv2D
	GRU      *ConvGRU
	GRUIters int
}

// NewPoseBackbone builds the default backbone: 3->32/2, 32->64/2, 64->96/2
// feature pyramid and a 96-channel 3x3 ConvGRU run for 8 iterations —
// Droid-SLAM's update operator scaled to this reproduction's frame sizes.
func NewPoseBackbone(seed int64) *PoseBackbone {
	rng := rand.New(rand.NewSource(seed))
	return &PoseBackbone{
		Convs: []*Conv2D{
			NewConv2D(3, 32, 3, 2, 1, rng),
			NewConv2D(32, 64, 3, 2, 1, rng),
			NewConv2D(64, 96, 3, 2, 1, rng),
		},
		GRU:      NewConvGRU(96, 96, 3, rng),
		GRUIters: 8,
	}
}

// Workload returns the MAC count of one coarse pose estimation at the given
// input resolution: feature extraction on both frames plus GRU iterations.
func (b *PoseBackbone) Workload(w, h int) int64 {
	var macs int64
	fh, fw := h, w
	for _, c := range b.Convs {
		macs += c.MACs(fh, fw) * 2 // features for previous and current frame
		fh, fw = c.OutSize(fh, fw)
	}
	macs += b.GRU.MACs(fh, fw) * int64(b.GRUIters)
	return macs
}

// imageToTensor converts an RGB image into a 3xHxW tensor.
func imageToTensor(im *frame.Image) *Tensor {
	t := NewTensor(3, im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			t.Set(0, y, x, p.X)
			t.Set(1, y, x, p.Y)
			t.Set(2, y, x, p.Z)
		}
	}
	return t
}

// Features runs the CNN feature extractor on an image.
func (b *PoseBackbone) Features(im *frame.Image) (*Tensor, error) {
	t := imageToTensor(im)
	var err error
	for _, c := range b.Convs {
		t, err = c.Forward(t)
		if err != nil {
			return nil, err
		}
		ReLU(t)
	}
	return t, nil
}

// Embed runs feature extraction on both frames, iterates the ConvGRU with
// the current frame's features as input, and returns a pooled embedding.
// The embedding itself is not used for pose (the classical aligner is), but
// running it end-to-end keeps the simulated workload honest and testable.
func (b *PoseBackbone) Embed(prev, cur *frame.Image) ([]float64, error) {
	fp, err := b.Features(prev)
	if err != nil {
		return nil, err
	}
	fc, err := b.Features(cur)
	if err != nil {
		return nil, err
	}
	h := fp
	for i := 0; i < b.GRUIters; i++ {
		h, err = b.GRU.Step(h, fc)
		if err != nil {
			return nil, err
		}
	}
	return GlobalAvgPool(h), nil
}
