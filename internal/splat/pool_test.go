package splat

import (
	"math/rand"
	"sync"
	"testing"
)

// useContext runs one render through ctx so its buffers are sized for a
// w x h frame (giving it a non-trivial footprint and a size class).
func useContext(t *testing.T, ctx *RenderContext, w, h int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(w*1000 + h)))
	cloud := randomCloud(rng, 9)
	ctx.Render(cloud, testCam(w, h), Options{Workers: 1})
}

func TestContextPoolHitMissAccounting(t *testing.T) {
	p := NewContextPool(4)
	a := p.Acquire(64, 48) // empty pool: miss
	useContext(t, a, 64, 48)
	p.Release(a)
	if got := p.Acquire(64, 48); got != a { // same size class: hit, same context
		t.Error("acquire of released size class returned a different context")
	}
	if p.Acquire(32, 24) == nil { // different class: miss, fresh context
		t.Error("miss returned nil")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats hits=%d misses=%d, want 1/2", st.Hits, st.Misses)
	}
	if st.Idle != 0 {
		t.Errorf("idle=%d after draining, want 0", st.Idle)
	}
	if hr := st.HitRate(); hr <= 0.33 || hr >= 0.34 {
		t.Errorf("hit rate %.3f, want 1/3", hr)
	}
}

func TestContextPoolBoundedWithLRUEviction(t *testing.T) {
	p := NewContextPool(2)
	sizes := []struct{ w, h int }{{64, 48}, {32, 24}, {48, 36}}
	ctxs := make([]*RenderContext, len(sizes))
	for i, sz := range sizes {
		ctxs[i] = p.Acquire(sz.w, sz.h)
		useContext(t, ctxs[i], sz.w, sz.h)
	}
	// Release in order: the third release exceeds capacity and must evict the
	// least-recently-used idle context — the first released (64x48).
	for _, ctx := range ctxs {
		p.Release(ctx)
	}
	st := p.Stats()
	if st.Idle != 2 {
		t.Fatalf("idle=%d, want capacity 2", st.Idle)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	if st.ResidentBytes <= 0 {
		t.Errorf("resident bytes %d, want > 0 with retained contexts", st.ResidentBytes)
	}
	preMisses := st.Misses
	if p.Acquire(64, 48) == ctxs[0] {
		t.Error("evicted context came back from the pool")
	}
	if got := p.Stats().Misses; got != preMisses+1 {
		t.Errorf("acquire of evicted class: misses=%d, want %d", got, preMisses+1)
	}
	// The two younger classes survived.
	if p.Acquire(32, 24) != ctxs[1] || p.Acquire(48, 36) != ctxs[2] {
		t.Error("surviving size classes did not return their contexts")
	}
	if st := p.Stats(); st.Idle != 0 || st.ResidentBytes != 0 {
		t.Errorf("drained pool: idle=%d resident=%d, want 0/0", st.Idle, st.ResidentBytes)
	}
}

func TestContextPoolClassStacksAreLIFO(t *testing.T) {
	p := NewContextPool(4)
	a := p.Acquire(64, 48)
	b := p.Acquire(64, 48)
	useContext(t, a, 64, 48)
	useContext(t, b, 64, 48)
	p.Release(a)
	p.Release(b)
	// Within a class the most recently released (warmest) comes back first.
	if p.Acquire(64, 48) != b || p.Acquire(64, 48) != a {
		t.Error("class stack is not LIFO")
	}
}

// TestContextPoolConcurrentAcquire exercises the pool from N goroutines under
// -race: mixed size classes, live renders through the acquired contexts, and
// a final accounting check (every acquire was a hit or a miss, the idle set
// never exceeds capacity).
func TestContextPoolConcurrentAcquire(t *testing.T) {
	const (
		workers = 8
		iters   = 20
		capN    = 3
	)
	p := NewContextPool(capN)
	cloud, _ := determinismScene()
	sizes := []struct{ w, h int }{{64, 48}, {32, 24}, {48, 36}, {96, 64}}
	ref := make([][32]byte, len(sizes))
	for i, sz := range sizes {
		ref[i] = Render(cloud, testCam(sz.w, sz.h), Options{Workers: 1, NoPool: true}).Digest()
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (wi + it) % len(sizes)
				ctx := p.Acquire(sizes[i].w, sizes[i].h)
				res := ctx.Render(cloud, testCam(sizes[i].w, sizes[i].h), Options{Workers: 1})
				if res.Digest() != ref[i] {
					t.Errorf("worker %d iter %d: pooled context render diverged", wi, it)
				}
				p.Release(ctx)
			}
		}(wi)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Errorf("hits+misses = %d, want %d acquires", st.Hits+st.Misses, workers*iters)
	}
	if st.Idle > capN {
		t.Errorf("idle=%d exceeds capacity %d", st.Idle, capN)
	}
}

// TestContextPoolReuseIsContentIndependent re-acquires a context that was
// last used at a different size and by different options, and asserts its
// output is bitwise identical to a fresh unpooled render — the property that
// lets sessions of different streams share one pool.
func TestContextPoolReuseIsContentIndependent(t *testing.T) {
	p := NewContextPool(2)
	cloud, _ := determinismScene()

	ctx := p.Acquire(96, 64)
	ctx.Render(cloud, testCam(96, 64), Options{Workers: 2, LogContribution: true, ThreshAlpha: 1.0 / 255})
	p.Release(ctx)

	// Acquire for a different class: miss, then release the dirty context's
	// class and re-acquire it for a new stream.
	got := p.Acquire(96, 64)
	if got != ctx {
		t.Fatal("expected the pooled context back")
	}
	opts := Options{Workers: 1}
	res := got.Render(cloud, testCam(48, 36), opts)
	fresh := opts
	fresh.NoPool = true
	if want := Render(cloud, testCam(48, 36), fresh); res.Digest() != want.Digest() {
		t.Error("re-acquired context output diverged from a fresh render")
	}
}

func TestFootprintBytes(t *testing.T) {
	ctx := NewRenderContext()
	if got := ctx.FootprintBytes(); got != 0 {
		t.Errorf("fresh context footprint %d, want 0", got)
	}
	useContext(t, ctx, 64, 48)
	used := ctx.FootprintBytes()
	// At least the four pixel planes must be resident.
	if min := int64(64 * 48 * (24 + 8 + 8 + 8)); used < min {
		t.Errorf("used context footprint %d, want >= %d", used, min)
	}
	ctx.Reset()
	if got := ctx.FootprintBytes(); got != 0 {
		t.Errorf("reset context footprint %d, want 0", got)
	}
	if (*RenderContext)(nil).FootprintBytes() != 0 {
		t.Error("nil context footprint not 0")
	}
}

// TestContextPoolEvictionOrderIsMapOrderIndependent backs the
// //ags:allow(maprange) on evictLRULocked: the eviction scan ranges over the
// idle-class map, which is only sound because it is a min-reduction over
// globally unique release sequence numbers. Rebuild the same overflow
// situation many times — different runs randomize Go's map iteration order —
// and require the identical eviction sequence every time.
func TestContextPoolEvictionOrderIsMapOrderIndependent(t *testing.T) {
	sizes := []struct{ w, h int }{{64, 48}, {32, 24}, {48, 36}, {16, 12}, {80, 60}}
	survivors := func() [2][2]int {
		p := NewContextPool(2)
		ctxs := make([]*RenderContext, len(sizes))
		for i, sz := range sizes {
			ctxs[i] = p.Acquire(sz.w, sz.h)
			useContext(t, ctxs[i], sz.w, sz.h)
		}
		for _, ctx := range ctxs {
			p.Release(ctx) // three of these five releases must evict, oldest-first
		}
		if got := p.Stats().Evictions; got != 3 {
			t.Fatalf("evictions=%d, want 3", got)
		}
		// LRU means exactly the two most recently released classes survive.
		var out [2][2]int
		for i, sz := range sizes[len(sizes)-2:] {
			if p.Acquire(sz.w, sz.h) == ctxs[len(sizes)-2+i] {
				out[i] = [2]int{sz.w, sz.h}
			}
		}
		return out
	}
	want := survivors()
	for run := 1; run < 20; run++ {
		if got := survivors(); got != want {
			t.Fatalf("run %d evicted differently: survivors %v, want %v", run, got, want)
		}
	}
}
