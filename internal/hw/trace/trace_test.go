package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestAccumulate(t *testing.T) {
	var s RenderStats
	s.Accumulate(10, 5, 10, 100, 200, 1000)
	s.Accumulate(10, 5, 10, 100, 200, 1000)
	if s.Iters != 2 {
		t.Errorf("iters = %d", s.Iters)
	}
	if s.AlphaOps != 20 || s.BlendOps != 10 || s.BackwardOps != 20 {
		t.Errorf("ops = %d/%d/%d", s.AlphaOps, s.BlendOps, s.BackwardOps)
	}
	if s.Splats != 200 || s.TileEntries != 400 || s.Pixels != 2000 {
		t.Errorf("aux = %d/%d/%d", s.Splats, s.TileEntries, s.Pixels)
	}
}

func TestRunTotals(t *testing.T) {
	run := &Run{Sequence: "x", Width: 8, Height: 8}
	f0 := FrameTrace{Index: 0, IsKeyFrame: true, CodecSADOps: 100, CoarseMACs: 50}
	f0.Map.Accumulate(1, 2, 3, 4, 5, 6)
	f1 := FrameTrace{Index: 1, CoarseOnly: true, CodecSADOps: 100}
	f1.Track.Accumulate(10, 20, 30, 40, 50, 60)
	run.Frames = []FrameTrace{f0, f1}

	tot := run.Totals()
	if tot.Frames != 2 || tot.KeyFrames != 1 || tot.CoarseOnly != 1 {
		t.Errorf("counts: %+v", tot)
	}
	if tot.SADOps != 200 || tot.CoarseMACs != 50 {
		t.Errorf("codec/coarse: %+v", tot)
	}
	if tot.TrackIters != 1 || tot.MapIters != 1 {
		t.Errorf("iters: %+v", tot)
	}
	if tot.AlphaOps != 11 || tot.BlendOps != 22 || tot.BackwardOps != 33 {
		t.Errorf("ops: %+v", tot)
	}
	if tot.SplatsTouched != 44 || tot.TileEntries != 55 {
		t.Errorf("aux: %+v", tot)
	}
}

func TestEmptyRunTotals(t *testing.T) {
	tot := (&Run{}).Totals()
	if tot.Frames != 0 || tot.AlphaOps != 0 {
		t.Errorf("empty totals: %+v", tot)
	}
}

func TestSummarizeAndJSON(t *testing.T) {
	run := &Run{Sequence: "s", Width: 4, Height: 4}
	f := FrameTrace{Index: 0, IsKeyFrame: true, NumGaussians: 10, SkippedGaussians: 3, Covisibility: 0.8}
	f.Track.Accumulate(5, 4, 8, 2, 3, 16)
	f.Map.Accumulate(7, 6, 12, 4, 5, 16)
	run.Frames = []FrameTrace{f}

	sum := run.Summarize()
	if len(sum.Frames) != 1 {
		t.Fatalf("frames = %d", len(sum.Frames))
	}
	fs := sum.Frames[0]
	if fs.AlphaOps != 12 || fs.BlendOps != 10 || fs.BackwardOps != 20 {
		t.Errorf("ops: %+v", fs)
	}
	if !fs.KeyFrame || fs.Gaussians != 10 || fs.Skipped != 3 {
		t.Errorf("flags: %+v", fs)
	}
	if sum.Totals.Frames != 1 {
		t.Errorf("totals: %+v", sum.Totals)
	}

	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Sequence != "s" || back.Frames[0].CoarseMACs != 0 {
		t.Errorf("roundtrip: %+v", back)
	}
}
