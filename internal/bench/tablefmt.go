package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table matching the paper's row/column shape.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Columns: cols}
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
