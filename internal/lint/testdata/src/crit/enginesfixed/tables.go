// Package enginesfixed mirrors the repaired hot-set ranking in
// internal/hw/engines.SimulateLogging: candidates are collected from the
// frequency map, then a total order (frequency descending, id ascending) is
// imposed before truncation. The checker accepts this shape with no
// suppression because the appended slice is sorted after the loop.
package enginesfixed

import "slices"

// HotSet ranks ids seen at least twice and keeps the top capN.
func HotSet(freq map[int32]int, capN int) []int32 {
	cands := make([]int32, 0, len(freq))
	for id, f := range freq {
		if f >= 2 {
			cands = append(cands, id)
		}
	}
	slices.SortFunc(cands, func(a, b int32) int {
		if freq[a] != freq[b] {
			return freq[b] - freq[a]
		}
		return int(a) - int(b)
	})
	if len(cands) > capN {
		cands = cands[:capN]
	}
	return cands
}
