// Package covis turns the CODEC's accumulated minimum-SAD values into the
// frame-covisibility (FC) metric that drives AGS (paper §4.1): a normalized
// score in [0,1] where 1 means identical frames, plus the 5-level
// quantization used by the contribution-similarity analysis (Fig. 6/22).
package covis

import (
	"fmt"

	"ags/internal/codec"
	"ags/internal/frame"
)

// Score is a frame-covisibility value in [0,1]; higher means more shared
// content between the two frames.
type Score float64

// Level is the 5-way quantization of covisibility used in Fig. 6 and
// Fig. 22; level 5 is the highest covisibility.
type Level int

// Detector computes covisibility using the CODEC ME model. It corresponds to
// the FC detection engine reading SAD values the CODEC already produced.
// Cfg.Workers and Cfg.EarlyTerm tune the underlying ME; both are pure
// performance knobs (see package codec), so the score is unaffected.
type Detector struct {
	Cfg codec.Config
	// Sensitivity scales the normalized SAD before conversion to a score.
	// Natural video rarely approaches the worst-case SAD (all pixels
	// saturating the 8-bit range) and motion compensation absorbs most of
	// the inter-frame difference, so raw normalized SAD would compress all
	// frames into the top few percent of the scale. The default of 20 maps
	// typical SLAM frame-to-frame differences across the full [0,1] range at
	// this reproduction's resolutions (see DESIGN.md: threshold mapping).
	Sensitivity float64

	// LastResult is the most recent ME output (exposed so the hardware model
	// can charge the CODEC's work and so experiments can inspect MVs).
	LastResult *codec.Result
}

// NewDetector returns a Detector with the paper's ME configuration.
func NewDetector() *Detector {
	return &Detector{Cfg: codec.DefaultConfig(), Sensitivity: 20}
}

// Compare returns the covisibility between two frames.
func (d *Detector) Compare(prev, cur *frame.Image) (Score, error) {
	res, err := codec.MotionEstimate(prev, cur, d.Cfg)
	if err != nil {
		return 0, fmt.Errorf("covis: %w", err)
	}
	d.LastResult = res
	return d.ScoreOf(res), nil
}

// ScoreOf converts a raw ME result into the covisibility score. It is the
// same mapping Compare applies, exposed so a pipelined frontend that ran
// codec.MotionEstimate itself (e.g. the slam prefetch stage) scores the
// prefetched result identically.
func (d *Detector) ScoreOf(res *codec.Result) Score {
	norm := float64(res.SumMinSAD()) / float64(res.MaxPossibleSAD())
	s := 1 - d.Sensitivity*norm
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return Score(s)
}

// LevelOf quantizes a covisibility score into 5 levels (1 = lowest
// covisibility, 5 = highest), with uniform bins over [0,1].
func LevelOf(s Score) Level {
	switch {
	case s >= 0.8:
		return 5
	case s >= 0.6:
		return 4
	case s >= 0.4:
		return 3
	case s >= 0.2:
		return 2
	default:
		return 1
	}
}

// Band classifies a score into the High/Medium/Low buckets of Fig. 22.
func Band(s Score) string {
	switch {
	case s >= 0.75:
		return "High"
	case s >= 0.45:
		return "Medium"
	default:
		return "Low"
	}
}
