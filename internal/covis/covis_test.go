package covis

import (
	"testing"

	"ags/internal/codec"
	"ags/internal/scene"
)

func TestScoreOfMatchesCompare(t *testing.T) {
	// A prefetch stage runs MotionEstimate itself and scores the result via
	// ScoreOf; that must be indistinguishable from Compare.
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 3, Seed: 1})
	d := NewDetector()
	want, err := d.Compare(seq.Frames[0].Color, seq.Frames[1].Color)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codec.MotionEstimate(seq.Frames[0].Color, seq.Frames[1].Color, d.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ScoreOf(res); got != want {
		t.Errorf("ScoreOf = %v, Compare = %v", got, want)
	}
	if res.SADOps != d.LastResult.SADOps {
		t.Errorf("SADOps %d != Compare's %d", res.SADOps, d.LastResult.SADOps)
	}
}

func TestIdenticalFramesFullCovisibility(t *testing.T) {
	seq := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 2, Seed: 1})
	d := NewDetector()
	s, err := d.Compare(seq.Frames[0].Color, seq.Frames[0].Color)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("self-covisibility = %v", s)
	}
	if d.LastResult == nil {
		t.Error("LastResult not recorded")
	}
}

func TestAdjacentFramesHigherThanDistant(t *testing.T) {
	seq := scene.MustGenerate("Desk2", scene.Config{Width: 64, Height: 48, Frames: 12, Seed: 1})
	d := NewDetector()
	adj, err := d.Compare(seq.Frames[0].Color, seq.Frames[1].Color)
	if err != nil {
		t.Fatal(err)
	}
	far, err := d.Compare(seq.Frames[0].Color, seq.Frames[11].Color)
	if err != nil {
		t.Fatal(err)
	}
	if adj <= far {
		t.Errorf("adjacent covisibility %v <= distant %v", adj, far)
	}
}

func TestXyzMoreCovisibleThanRoom(t *testing.T) {
	// The slow-translation sequence must show higher adjacent-frame
	// covisibility than the fast-rotation sweep — the premise of the paper's
	// movement-adaptive tracking.
	cfg := scene.Config{Width: 64, Height: 48, Frames: 8, Seed: 1}
	xyz := scene.MustGenerate("Xyz", cfg)
	room := scene.MustGenerate("Room", cfg)
	d := NewDetector()
	mean := func(s *scene.Sequence) float64 {
		var sum float64
		for i := 1; i < len(s.Frames); i++ {
			sc, err := d.Compare(s.Frames[i-1].Color, s.Frames[i].Color)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(sc)
		}
		return sum / float64(len(s.Frames)-1)
	}
	mx, mr := mean(xyz), mean(room)
	if mx <= mr {
		t.Errorf("mean covisibility: Xyz %v <= Room %v", mx, mr)
	}
}

func TestLevelOfBoundaries(t *testing.T) {
	cases := []struct {
		s    Score
		want Level
	}{
		{0.0, 1}, {0.19, 1}, {0.2, 2}, {0.45, 3}, {0.65, 4}, {0.8, 5}, {1.0, 5},
	}
	for _, c := range cases {
		if got := LevelOf(c.s); got != c.want {
			t.Errorf("LevelOf(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestBandBoundaries(t *testing.T) {
	cases := []struct {
		s    Score
		want string
	}{
		{0.9, "High"}, {0.75, "High"}, {0.6, "Medium"}, {0.45, "Medium"}, {0.3, "Low"},
	}
	for _, c := range cases {
		if got := Band(c.s); got != c.want {
			t.Errorf("Band(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestScoreClampedToUnitInterval(t *testing.T) {
	// With high sensitivity, very different frames must clamp to 0 rather
	// than go negative.
	seq1 := scene.MustGenerate("Desk", scene.Config{Width: 48, Height: 36, Frames: 1, Seed: 1})
	seq2 := scene.MustGenerate("Room", scene.Config{Width: 48, Height: 36, Frames: 1, Seed: 2})
	d := NewDetector()
	d.Sensitivity = 500
	s, err := d.Compare(seq1.Frames[0].Color, seq2.Frames[0].Color)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s > 1 {
		t.Errorf("score %v outside [0,1]", s)
	}
}
