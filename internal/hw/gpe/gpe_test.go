package gpe

import (
	"math/rand"
	"testing"
)

func TestBlockCyclesNaiveIsMaxPixel(t *testing.T) {
	p := DefaultParams(1)
	alpha := make([]int32, 16)
	blend := make([]int32, 16)
	alpha[3], blend[3] = 10, 5 // one busy pixel
	want := int64(10*p.AlphaCycles + 5*p.BlendCycles)
	if got := BlockCycles(alpha, blend, p, false); got != want {
		t.Errorf("naive = %d, want %d", got, want)
	}
}

func TestScheduledNeverSlowerThanNaive(t *testing.T) {
	p := DefaultParams(1)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		alpha := make([]int32, 16)
		blend := make([]int32, 16)
		for i := range alpha {
			alpha[i] = int32(rng.Intn(60))
			blend[i] = int32(rng.Intn(int(alpha[i]) + 1))
		}
		n := BlockCycles(alpha, blend, p, false)
		s := BlockCycles(alpha, blend, p, true)
		// Allow the scheduler-overhead percentage.
		if float64(s) > float64(n)*1.06+1 {
			t.Fatalf("scheduled %d slower than naive %d", s, n)
		}
	}
}

func TestScheduledHelpsOnImbalance(t *testing.T) {
	p := DefaultParams(1)
	alpha := make([]int32, 16)
	blend := make([]int32, 16)
	// One pixel does all the work (Fig. 13's GPE2 case).
	alpha[0], blend[0] = 160, 4
	n := BlockCycles(alpha, blend, p, false)
	s := BlockCycles(alpha, blend, p, true)
	if float64(s) > 0.25*float64(n) {
		t.Errorf("scheduler gained too little: naive %d scheduled %d", n, s)
	}
}

func TestScheduledNoGainOnBalanced(t *testing.T) {
	p := DefaultParams(1)
	alpha := make([]int32, 16)
	blend := make([]int32, 16)
	for i := range alpha {
		alpha[i], blend[i] = 20, 10
	}
	n := BlockCycles(alpha, blend, p, false)
	s := BlockCycles(alpha, blend, p, true)
	// Balanced work: scheduling only adds its overhead.
	if s < n {
		t.Errorf("scheduled %d beat perfectly balanced naive %d", s, n)
	}
}

func TestBlendChainBoundsSchedule(t *testing.T) {
	p := DefaultParams(1)
	alpha := make([]int32, 16)
	blend := make([]int32, 16)
	blend[7] = 100 // long dependent blend chain, no alpha work
	s := BlockCycles(alpha, blend, p, true)
	if s < int64(100*p.BlendCycles) {
		t.Errorf("schedule %d violates the blend dependency bound", s)
	}
}

func TestFrameCyclesScalesWithArrays(t *testing.T) {
	w, h := 32, 32
	alpha := make([]int32, w*h)
	blend := make([]int32, w*h)
	rng := rand.New(rand.NewSource(2))
	for i := range alpha {
		alpha[i] = int32(rng.Intn(40))
		blend[i] = alpha[i] / 2
	}
	one := FrameCycles(alpha, blend, w, h, DefaultParams(1), true)
	four := FrameCycles(alpha, blend, w, h, DefaultParams(4), true)
	ratio := float64(one) / float64(four)
	if ratio < 3 || ratio > 4.5 {
		t.Errorf("4 arrays gave %vx speedup", ratio)
	}
}

func TestFrameCyclesSizeMismatch(t *testing.T) {
	if got := FrameCycles(make([]int32, 10), make([]int32, 10), 4, 4, DefaultParams(1), true); got != 0 {
		t.Errorf("mismatched sizes returned %d", got)
	}
}

func TestUtilizationImprovedByScheduler(t *testing.T) {
	w, h := 16, 16
	alpha := make([]int32, w*h)
	blend := make([]int32, w*h)
	rng := rand.New(rand.NewSource(3))
	// Skewed workload: a few pixels extremely busy (early termination and
	// selective mapping make real workloads look like this).
	for i := range alpha {
		if rng.Intn(8) == 0 {
			alpha[i] = 120
			blend[i] = 30
		} else {
			alpha[i] = 5
			blend[i] = 2
		}
	}
	p := DefaultParams(2)
	un := Utilization(alpha, blend, w, h, p, false)
	us := Utilization(alpha, blend, w, h, p, true)
	if us <= un {
		t.Errorf("scheduler did not raise utilization: %v -> %v", un, us)
	}
	if un < 0 || un > 1 || us < 0 || us > 1 {
		t.Errorf("utilization out of range: %v %v", un, us)
	}
}
