package fleet

import (
	"crypto/sha256"
	"fmt"
)

// Grid job transport: the fleet side of internal/grid's distributed bench
// execution. The fleet owns only the carriage — a vJob request ferries an
// opaque payload to the node's registered JobRunner and the reply comes back
// as vJobResult — while the payload encoding and the execution semantics live
// in internal/grid. That keeps the layering honest: fleet is transport +
// serving, grid is bench-job meaning.

// JobRunner executes one grid job payload on a node and returns the reply
// payload. internal/grid's Worker is the one real implementation; nodes built
// without a runner answer vJob with a protocol error (the node serves streams
// only). An error return is reported to the coordinator as a remote
// application error — the node is alive and answered, so the scheduler must
// not retry the job elsewhere.
type JobRunner interface {
	RunJob(payload []byte) ([]byte, error)
}

// handleJob ferries one grid job through the node's registered runner. The
// reply is sent only after the run finishes, so the strict request/response
// discipline holds: one outstanding job per connection, windowed by the
// coordinator through its connection count.
func (n *Node) handleJob(cs *connState, payload []byte) bool {
	if n.cfg.Jobs == nil {
		return n.replyErr(cs, codeProto, fmt.Sprintf("node %q serves no grid jobs", n.cfg.Name))
	}
	reply, err := n.cfg.Jobs.RunJob(payload)
	if err != nil {
		return n.replyErr(cs, codeInternal, err.Error())
	}
	return cs.w.send(vJobResult, reply) == nil
}

// IsNodeLoss reports whether a request failure means the transport to the
// node died (dial refused, connection severed, frame truncated or corrupted)
// rather than the node answering with an error. Exported for internal/grid,
// whose retry-on-node-loss placement reuses the recovery layer's
// classification: remote application errors and placement bounces must never
// be retried on another worker, because the same job would fail identically.
func IsNodeLoss(err error) bool { return isNodeLoss(err) }

// JobConn is one grid job channel to a worker node: a dedicated connection
// carrying strict request/response job round trips. A coordinator opens up to
// its in-flight window's worth of JobConns per worker; each conn is owned by
// one goroutine at a time and provides no internal locking.
type JobConn struct {
	w    *wire
	name string
	wire int64 // cumulative bytes over the wire, both directions
}

// DialJob connects to a worker node and learns its name from a stats round
// trip, so attribution in bench reports uses the node's self-declared
// identity rather than its address.
func DialJob(addr string) (*JobConn, error) {
	w, err := dialWire(addr)
	if err != nil {
		return nil, err
	}
	c := &JobConn{w: w}
	st, err := statsOver(w)
	if err != nil {
		w.Close()
		return nil, fmt.Errorf("fleet: job dial %s: %w", addr, err)
	}
	c.name = st.Name
	c.account(len(w.wbuf), 0) // stats reply size is unknown post-hoc; counted below
	c.account(0, headerSize+len(w.rbuf))
	return c, nil
}

// Name returns the worker node's self-reported name.
func (c *JobConn) Name() string { return c.name }

// WireBytes returns the cumulative bytes this connection moved in both
// directions (requests, replies, checksums, the dial handshake). The grid
// scheduler differences it around each run for per-job accounting.
func (c *JobConn) WireBytes() int64 { return c.wire }

func (c *JobConn) account(sent, recvd int) { c.wire += int64(sent) + int64(recvd) }

// Run ships one job payload and blocks until the worker's reply. The returned
// reply is a copy (the wire scratch is reused), so callers may hold it across
// subsequent round trips. Transport failures classify as node loss
// (IsNodeLoss); error replies from a live worker come back as remote errors.
func (c *JobConn) Run(payload []byte) ([]byte, error) {
	rv, reply, err := c.w.roundTrip(vJob, payload)
	c.account(len(c.w.wbuf), 0)
	if err != nil {
		return nil, err
	}
	c.account(0, headerSize+len(reply)+sha256.Size)
	if rv != vJobResult {
		return nil, fmt.Errorf("fleet: job reply verb %s", rv)
	}
	return append([]byte(nil), reply...), nil
}

// Close tears the connection down.
func (c *JobConn) Close() error { return c.w.Close() }
