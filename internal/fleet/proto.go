// Package fleet is the multi-host serving layer over the slam.Server
// boundary: a hand-rolled, stdlib-only wire protocol plus the two roles that
// speak it. A Node wraps one slam.Server behind a TCP listener — the per-host
// resource owner made network-facing — and a Router places live camera
// streams across N nodes, keyed by frame size class so streams land next to
// warm render-context pools, with per-node admission control and graceful
// drain (a draining node's sessions are snapshotted over the wire and
// restored onto peers mid-stream).
//
// # Wire format
//
// Every message is one length-prefixed binary frame, mirroring the AGSSNAP
// snapshot discipline — versioned, checksummed, rejected loudly on damage:
//
//	magic "AGSF" (4) | version (1) | verb (1) | payload length (8, LE)
//	| payload | SHA-256 over everything before it (32)
//
// A reader validates in a fixed order with a distinct error per failure
// mode: magic (ErrBadMagic), version (ErrVersionSkew), length prefix
// (ErrOversized), body completeness (ErrTruncated), checksum (ErrChecksum),
// verb (ErrUnknownVerb). Payload encodings reuse the slam snapshot codec
// (slam.AppendFrame and friends), so frames, configurations and session
// snapshots cross the network bit-identically — which is what makes the
// fleet falsifiable: a fleet of nodes serving N interleaved streams,
// including streams migrated between hosts mid-flight, must produce
// Result.Digest values bit-identical to N sequential slam.Run calls.
//
// # Conversation shape
//
// The protocol is strict request/response, in order, one outstanding request
// per connection. A connection is either a control connection (stats, drain)
// or becomes bound to one session by open/restore; push replies are sent
// only after the node-side slam.Session.Push returns, so the session
// queue-full backpressure propagates end-to-end to the remote producer.
// Determinism needs no special pleading: there is no multi-way select and no
// clock anywhere in the package, and each session's frames flow down a
// single connection in push order.
package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
)

// ProtocolVersion is the wire format revision this build speaks. Peers with
// a different version are rejected with ErrVersionSkew before any payload is
// examined.
const ProtocolVersion = 1

const (
	protoMagic = "AGSF"
	headerSize = 4 + 1 + 1 + 8 // magic, version, verb, payload length
	// MaxPayload bounds a message's declared payload length. A corrupt or
	// hostile length prefix is rejected (ErrOversized) before any allocation
	// is sized from it.
	MaxPayload = 1 << 28
)

// Damage and skew are distinct, testable failure modes (the fleet mirror of
// the snapshot damage contract).
var (
	// ErrBadMagic: the stream does not start with a fleet message.
	ErrBadMagic = errors.New("fleet: not a fleet message (bad magic)")
	// ErrVersionSkew: the peer speaks a different protocol revision.
	ErrVersionSkew = errors.New("fleet: protocol version skew")
	// ErrOversized: the length prefix exceeds MaxPayload.
	ErrOversized = errors.New("fleet: message length exceeds limit")
	// ErrTruncated: the connection ended mid-message.
	ErrTruncated = errors.New("fleet: message truncated")
	// ErrChecksum: the trailing SHA-256 does not match the message bytes.
	ErrChecksum = errors.New("fleet: message checksum mismatch")
	// ErrUnknownVerb: the (checksum-verified) verb byte is not one this
	// build dispatches.
	ErrUnknownVerb = errors.New("fleet: unknown verb")
	// ErrAdmission: the node rejected a new stream — its session count or
	// resident-byte budget is exhausted. Routers fall through to the next
	// placement candidate.
	ErrAdmission = errors.New("fleet: admission rejected")
	// ErrDraining: the node is draining and admits no new streams.
	ErrDraining = errors.New("fleet: node draining")
)

// verb identifies a message's meaning. Requests: open, push, close,
// snapshot, restore, drain, stats, ping, job. Responses: ok, result,
// snapData, statsData, errReply, jobResult. New verbs are appended before
// verbEnd (never inserted mid-list: the byte values are the wire contract).
type verb byte

const (
	vOpen verb = 1 + iota
	vPush
	vClose
	vSnapshot
	vRestore
	vDrain
	vStats
	vPing
	vOK
	vResult
	vSnapData
	vStatsData
	vErrReply
	vJob
	vJobResult

	verbEnd // one past the last valid verb
)

// verbNames is the central verb registry: every valid verb has an entry, and
// proto_test iterates registeredVerbs (1..verbEnd-1) so a newly appended verb
// automatically gets per-damage-mode sentinel coverage, fuzz seeds, and a
// name-completeness check.
var verbNames = [...]string{
	vOpen: "open", vPush: "push", vClose: "close", vSnapshot: "snapshot",
	vRestore: "restore", vDrain: "drain", vStats: "stats", vPing: "ping",
	vOK: "ok", vResult: "result", vSnapData: "snap-data",
	vStatsData: "stats-data", vErrReply: "err",
	vJob: "job", vJobResult: "job-result",
}

// registeredVerbs returns every valid wire verb in declaration order — the
// registry the damage tables and fuzz seeds range over.
func registeredVerbs() []verb {
	vs := make([]verb, 0, int(verbEnd)-1)
	for v := verb(1); v < verbEnd; v++ {
		vs = append(vs, v)
	}
	return vs
}

func (v verb) String() string {
	if int(v) < len(verbNames) && verbNames[v] != "" {
		return verbNames[v]
	}
	return fmt.Sprintf("verb(0x%02x)", byte(v))
}

// appendMessage frames one message into buf (header, payload, trailing
// SHA-256 over both) and returns the extended slice. Callers reuse their
// scratch buffer across sends, so the per-frame push path allocates only
// until the buffer reaches its high-water mark.
//
//ags:hotpath
func appendMessage(buf []byte, v verb, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, protoMagic...)
	buf = append(buf, ProtocolVersion, byte(v))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf[start:])
	buf = append(buf, sum[:]...)
	return buf
}

// wire is one endpoint of a fleet connection: buffered reads, reusable
// read/write scratch. It is owned by exactly one goroutine at a time (the
// conn handler on the node, the stream or control owner on the router); it
// provides no internal locking.
type wire struct {
	c    net.Conn
	r    *bufio.Reader
	rbuf []byte // payload scratch; recv results alias it until the next recv
	wbuf []byte // send scratch
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, r: bufio.NewReader(c)}
}

func (w *wire) Close() error { return w.c.Close() }

// send frames and writes one message.
func (w *wire) send(v verb, payload []byte) error {
	w.wbuf = appendMessage(w.wbuf[:0], v, payload)
	if _, err := w.c.Write(w.wbuf); err != nil {
		return fmt.Errorf("fleet: send %s: %w", v, err)
	}
	return nil
}

// recv reads and validates one message. The returned payload aliases the
// wire's scratch buffer and is valid only until the next recv — it grows
// under a cap guard, so the steady-state per-frame receive path is
// allocation-free. A clean close at a message boundary returns io.EOF; every
// damage mode returns its distinct error (see the package doc for the
// validation order).
//
//ags:hotpath
func (w *wire) recv() (verb, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(w.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: connection ended inside the header", ErrTruncated)
		}
		return 0, nil, err
	}
	if string(hdr[:4]) != protoMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != ProtocolVersion {
		return 0, nil, fmt.Errorf("%w: peer speaks v%d, this build v%d", ErrVersionSkew, hdr[4], ProtocolVersion)
	}
	v := verb(hdr[5])
	n := binary.LittleEndian.Uint64(hdr[6:14])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: length prefix %d (max %d)", ErrOversized, n, MaxPayload)
	}
	need := int(n) + sha256.Size
	if cap(w.rbuf) < need {
		w.rbuf = make([]byte, need)
	}
	w.rbuf = w.rbuf[:need]
	if _, err := io.ReadFull(w.r, w.rbuf); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: connection ended inside the body (%d byte payload declared)", ErrTruncated, n)
		}
		return 0, nil, err
	}
	h := sha256.New()
	h.Write(hdr[:])
	payload := w.rbuf[:n]
	h.Write(payload)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	if !bytes.Equal(sum[:], w.rbuf[n:]) {
		return 0, nil, ErrChecksum
	}
	if v == 0 || v >= verbEnd {
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrUnknownVerb, byte(v))
	}
	return v, payload, nil
}

// roundTrip sends a request and reads the single reply, decoding an error
// reply into the error it carries. Reply payloads alias the wire scratch.
func (w *wire) roundTrip(v verb, payload []byte) (verb, []byte, error) {
	if err := w.send(v, payload); err != nil {
		return 0, nil, err
	}
	rv, rp, err := w.recv()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("fleet: %s: connection closed before reply", v)
		}
		return 0, nil, err
	}
	if rv == vErrReply {
		return 0, nil, decodeErrReply(rp)
	}
	return rv, rp, nil
}

// --- payload encodings -------------------------------------------------
//
// The same length-prefixed little-endian style as the snapshot payload;
// wireEnc/wireDec mirror slam's snapEnc/snapDec for the fleet-owned
// structures (anything slam owns goes through slam.Append*/Decode*).

type wireEnc struct{ buf []byte }

func (e *wireEnc) u8(v byte) { e.buf = append(e.buf, v) }

func (e *wireEnc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *wireEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *wireEnc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *wireEnc) boolv(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *wireEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *wireEnc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// wireDec is the sticky-error cursor over a checksum-verified payload.
type wireDec struct {
	b   []byte
	off int
	err error
}

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *wireDec) remaining() int { return len(d.b) - d.off }

func (d *wireDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.fail("payload exhausted at offset %d (need %d bytes, have %d)", d.off, n, d.remaining())
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wireDec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireDec) i64() int64   { return int64(d.u64()) }
func (d *wireDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *wireDec) boolv() bool { return d.u8() != 0 }

func (d *wireDec) sliceLen() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining()) {
		d.fail("length %d exceeds remaining payload (%d bytes)", n, d.remaining())
		return 0
	}
	return int(n)
}

func (d *wireDec) str() string { return string(d.take(d.sliceLen())) }

func (d *wireDec) bytes() []byte { return d.take(d.sliceLen()) }

func (d *wireDec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("fleet: %s payload: %w", what, d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("fleet: %s payload: %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}

// --- error replies ------------------------------------------------------

// Error-reply codes: the machine-readable half of a vErrReply, so routers
// can distinguish "try the next node" (admission, draining) from real
// failures without parsing message text.
const (
	codeInternal byte = iota + 1
	codeProto
	codeAdmission
	codeDraining
)

func encodeErrReply(buf []byte, code byte, msg string) []byte {
	e := wireEnc{buf: buf}
	e.u8(code)
	e.str(msg)
	return e.buf
}

func decodeErrReply(b []byte) error {
	d := &wireDec{b: b}
	code := d.u8()
	msg := d.str()
	if err := d.finish("err"); err != nil {
		return err
	}
	switch code {
	case codeAdmission:
		return fmt.Errorf("%w: %s", ErrAdmission, msg)
	case codeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return &remoteError{code: code, msg: msg}
	}
}

// remoteError is a decoded vErrReply that is not a placement bounce: the
// remote is alive and answered — the failure is in the request, not the
// transport. Recovery classification (isNodeLoss) keys on this type: a
// remoteError must never trigger a checkpoint-replay re-place, because
// replaying the same conversation to another node would fail identically.
type remoteError struct {
	code byte
	msg  string
}

func (e *remoteError) Error() string {
	if e.code == codeProto {
		return "fleet: protocol misuse: " + e.msg
	}
	return "fleet: remote error: " + e.msg
}

// --- open / restore payloads -------------------------------------------

// openPayload carries everything a node needs to start a session: the
// stream's name, its pipeline configuration, and the camera intrinsics the
// frames will match.
func encodeOpen(buf []byte, name string, cfgBytes, intrBytes []byte) []byte {
	e := wireEnc{buf: buf}
	e.str(name)
	e.bytes(cfgBytes)
	e.bytes(intrBytes)
	return e.buf
}

func decodeOpen(b []byte) (name string, cfgBytes, intrBytes []byte, err error) {
	d := &wireDec{b: b}
	name = d.str()
	cfgBytes = d.bytes()
	intrBytes = d.bytes()
	return name, cfgBytes, intrBytes, d.finish("open")
}

// restorePayload carries a stream's name and a complete slam session
// snapshot (AGSSNAP bytes, themselves checksummed) — the migration message a
// router sends to the peer taking over a drained node's stream.
func encodeRestore(buf []byte, name string, snap []byte) []byte {
	e := wireEnc{buf: buf}
	e.str(name)
	e.bytes(snap)
	return e.buf
}

func decodeRestore(b []byte) (name string, snap []byte, err error) {
	d := &wireDec{b: b}
	name = d.str()
	snap = d.bytes()
	return name, snap, d.finish("restore")
}

// okPayload is a single counter: zero for plain acknowledgements, the
// restored system's processed-frame count for restore replies (the index of
// the next frame the producer must push).
func encodeOK(buf []byte, frames int) []byte {
	e := wireEnc{buf: buf}
	e.u64(uint64(frames))
	return e.buf
}

func decodeOK(b []byte) (int, error) {
	d := &wireDec{b: b}
	n := d.u64()
	return int(n), d.finish("ok")
}
