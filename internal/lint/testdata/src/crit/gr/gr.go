// Package gr is the goroutine-site golden corpus: the harness allowlists
// x/crit/gr.ApprovedLaunch, so its go statement is clean, while the same
// statement elsewhere needs an //ags:allow or trips the check.
package gr

import "sync"

// ApprovedLaunch is on the test allowlist: a registered concurrency site.
func ApprovedLaunch(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// RogueLaunch spawns from an unregistered site.
func RogueLaunch(done chan struct{}) {
	go close(done) // want goroutine-site
}

// JustifiedLaunch spawns from an unregistered site with a written reason.
func JustifiedLaunch(done chan struct{}) {
	//ags:allow(goroutine-site, fire-and-forget close; nothing downstream observes scheduling)
	go close(done)
}
