package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
)

// recvWire wraps raw bytes as the read side of a wire, no conn needed.
func recvWire(data []byte) *wire {
	return &wire{r: bufio.NewReader(bytes.NewReader(data))}
}

func TestMessageRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello fleet"),
		nil,
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	verbs := []verb{vOpen, vStats, vPush}
	var stream []byte
	for i, p := range payloads {
		stream = appendMessage(stream, verbs[i], p)
	}
	w := recvWire(stream)
	for i, want := range payloads {
		v, got, err := w.recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if v != verbs[i] {
			t.Errorf("message %d: verb %s, want %s", i, v, verbs[i])
		}
		if !bytes.Equal(got, want) {
			t.Errorf("message %d: payload %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, _, err := w.recv(); err != io.EOF {
		t.Errorf("after last message: err = %v, want io.EOF", err)
	}
}

// reframe recomputes the trailing checksum after a deliberate header or
// payload mutation, so the test reaches the validation step it aims at
// instead of tripping the checksum first.
func reframe(msg []byte) []byte {
	body := msg[:len(msg)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}

// TestRecvDamage drives every damage mode through its own distinct error —
// the fleet mirror of the snapshot damage contract.
func TestRecvDamage(t *testing.T) {
	base := appendMessage(nil, vPush, []byte("frame bytes go here"))
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"bad magic", func(m []byte) []byte {
			m[0] = 'X'
			return m
		}, ErrBadMagic},
		{"version skew", func(m []byte) []byte {
			m[4] = ProtocolVersion + 1
			return reframe(m) // valid checksum: version is rejected on its own
		}, ErrVersionSkew},
		{"oversized length prefix", func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[6:14], MaxPayload+1)
			return m
		}, ErrOversized},
		{"truncated header", func(m []byte) []byte {
			return m[:headerSize-3]
		}, ErrTruncated},
		{"truncated body", func(m []byte) []byte {
			return m[:len(m)-5]
		}, ErrTruncated},
		{"payload corruption", func(m []byte) []byte {
			m[headerSize+2] ^= 0x40
			return m
		}, ErrChecksum},
		{"checksum corruption", func(m []byte) []byte {
			m[len(m)-1] ^= 0x01
			return m
		}, ErrChecksum},
		{"unknown verb", func(m []byte) []byte {
			m[5] = 0x7F
			return reframe(m) // checksum-valid frame carrying a verb we don't speak
		}, ErrUnknownVerb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := tc.mut(append([]byte(nil), base...))
			_, _, err := recvWire(msg).recv()
			if !errors.Is(err, tc.want) {
				t.Fatalf("recv = %v, want %v", err, tc.want)
			}
			// Each failure mode must keep its distinct identity: no other
			// sentinel may match.
			for _, other := range []error{ErrBadMagic, ErrVersionSkew, ErrOversized, ErrTruncated, ErrChecksum, ErrUnknownVerb} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error %v also matches %v", err, other)
				}
			}
		})
	}
}

// TestRecvDamagePing mirrors TestRecvDamage for the ping verb: every
// corruption of a (payload-less) ping frame must land on exactly one
// sentinel, so a health probe can never mistake damage for liveness.
func TestRecvDamagePing(t *testing.T) {
	base := appendMessage(nil, vPing, nil)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"bad magic", func(m []byte) []byte {
			m[0] = 'X'
			return m
		}, ErrBadMagic},
		{"version skew", func(m []byte) []byte {
			m[4] = ProtocolVersion + 1
			return reframe(m)
		}, ErrVersionSkew},
		{"oversized length prefix", func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[6:14], MaxPayload+1)
			return m
		}, ErrOversized},
		{"truncated header", func(m []byte) []byte {
			return m[:headerSize-3]
		}, ErrTruncated},
		{"truncated checksum", func(m []byte) []byte {
			return m[:len(m)-5]
		}, ErrTruncated},
		{"checksum corruption", func(m []byte) []byte {
			m[len(m)-1] ^= 0x01
			return m
		}, ErrChecksum},
		{"verb corruption", func(m []byte) []byte {
			m[5] = 0x7F
			return reframe(m)
		}, ErrUnknownVerb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := tc.mut(append([]byte(nil), base...))
			_, _, err := recvWire(msg).recv()
			if !errors.Is(err, tc.want) {
				t.Fatalf("recv = %v, want %v", err, tc.want)
			}
			for _, other := range []error{ErrBadMagic, ErrVersionSkew, ErrOversized, ErrTruncated, ErrChecksum, ErrUnknownVerb} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error %v also matches %v", err, other)
				}
			}
		})
	}
	// The undamaged frame decodes to exactly a ping.
	if v, p, err := recvWire(base).recv(); err != nil || v != vPing || len(p) != 0 {
		t.Fatalf("clean ping frame: verb %s payload %d err %v", v, len(p), err)
	}
}

// TestErrorClassification pins the recovery layer's transport/application
// split: a reply from a live node (remote error, placement bounce) must
// never be classified as node loss, and genuine transport damage must be.
func TestErrorClassification(t *testing.T) {
	alive := []error{
		decodeErrReply(encodeErrReply(nil, codeInternal, "boom")),
		decodeErrReply(encodeErrReply(nil, codeProto, "bad request")),
		decodeErrReply(encodeErrReply(nil, codeAdmission, "full")),
		decodeErrReply(encodeErrReply(nil, codeDraining, "draining")),
	}
	for _, err := range alive {
		if isNodeLoss(err) {
			t.Errorf("reply from a live node classified as node loss: %v", err)
		}
	}
	dead := []error{
		io.EOF,
		ErrTruncated,
		ErrChecksum,
		fmt.Errorf("write tcp 127.0.0.1: broken pipe"),
	}
	for _, err := range dead {
		if !isNodeLoss(err) {
			t.Errorf("transport failure not classified as node loss: %v", err)
		}
	}
}

func TestRecvCleanEOF(t *testing.T) {
	if _, _, err := recvWire(nil).recv(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// FuzzRecv feeds arbitrary bytes to the frame reader: it must never panic
// and never return a valid message unless the checksum genuinely holds.
func FuzzRecv(f *testing.F) {
	f.Add(appendMessage(nil, vOpen, []byte("seed")))
	f.Add(appendMessage(nil, vStats, nil))
	f.Add(appendMessage(nil, vPing, nil))
	f.Add([]byte("AGSF garbage that is not a frame"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, payload, err := recvWire(data).recv()
		if err != nil {
			return
		}
		// recv accepted the frame: re-encoding its content must reproduce a
		// prefix of the input bit for bit.
		re := appendMessage(nil, v, payload)
		if len(data) < len(re) || !bytes.Equal(data[:len(re)], re) {
			t.Fatalf("accepted frame does not round-trip: verb %s, %d byte payload", v, len(payload))
		}
	})
}

func TestErrReplyCodes(t *testing.T) {
	cases := []struct {
		code byte
		want error
	}{
		{codeAdmission, ErrAdmission},
		{codeDraining, ErrDraining},
	}
	for _, tc := range cases {
		err := decodeErrReply(encodeErrReply(nil, tc.code, "node x is busy"))
		if !errors.Is(err, tc.want) {
			t.Errorf("code %d: decoded %v, want %v", tc.code, err, tc.want)
		}
	}
	if err := decodeErrReply(encodeErrReply(nil, codeInternal, "boom")); err == nil {
		t.Error("internal code decoded to nil error")
	}
}

func TestPayloadDecodeRejectsTrailingBytes(t *testing.T) {
	p := encodeOpen(nil, "desk", []byte{1, 2}, []byte{3})
	p = append(p, 0xFF) // one stray byte
	if _, _, _, err := decodeOpen(p); err == nil {
		t.Fatal("decodeOpen accepted trailing bytes")
	}
}

func TestPayloadDecodeRejectsOverlongSlice(t *testing.T) {
	var e wireEnc
	e.u64(1 << 40) // declared slice length far beyond the payload
	if _, _, _, err := decodeOpen(e.buf); err == nil {
		t.Fatal("decodeOpen accepted slice length beyond payload")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := NodeStats{Name: "node-a", OpenSessions: 3, Draining: true, MaxSessions: 8, MaxResidentBytes: 1 << 20}
	in.Pool.Capacity = 4
	in.Pool.Hits = 17
	in.Pool.ResidentBytes = 12345
	out, err := decodeStats(encodeStats(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round-trip: got %+v, want %+v", out, in)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := ResultSummary{Frames: 16, NumGaussians: 900, ATECm: 3.25, PrunedGaussians: 4, CompactedSlots: 2, ReclaimedBytes: 512, DroppedUpdates: 1}
	for i := range in.Digest {
		in.Digest[i] = byte(i * 7)
	}
	out, err := decodeResult(encodeResult(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("result round-trip: got %+v, want %+v", out, in)
	}
}
