package vecmath

import "math"

// Pose is a rigid-body transform (element of SE(3)) mapping world coordinates
// into the frame of the pose: p_local = R * p_world + T. For camera poses this
// is the world-to-camera ("view") convention used throughout the renderer.
type Pose struct {
	R Quat
	T Vec3
}

// PoseIdentity returns the identity transform.
func PoseIdentity() Pose { return Pose{R: QuatIdentity()} }

// Apply maps a world point into the pose's local frame.
func (p Pose) Apply(v Vec3) Vec3 { return p.R.Rotate(v).Add(p.T) }

// Compose returns the transform that applies q first, then p
// (result.Apply(x) == p.Apply(q.Apply(x))).
func (p Pose) Compose(q Pose) Pose {
	return Pose{R: p.R.Mul(q.R).Normalized(), T: p.R.Rotate(q.T).Add(p.T)}
}

// Inverse returns the inverse transform.
func (p Pose) Inverse() Pose {
	ri := p.R.Conj()
	return Pose{R: ri, T: ri.Rotate(p.T).Neg()}
}

// Mat4 returns the homogeneous 4x4 matrix of the transform.
func (p Pose) Mat4() Mat4 {
	r := p.R.Mat3()
	return Mat4{
		r[0], r[1], r[2], p.T.X,
		r[3], r[4], r[5], p.T.Y,
		r[6], r[7], r[8], p.T.Z,
		0, 0, 0, 1,
	}
}

// Twist is an element of se(3): V is the translational velocity and W the
// rotational velocity (axis-angle). It is the tangent-space parameterization
// the tracking optimizer works in.
type Twist struct {
	V Vec3
	W Vec3
}

// Add returns the component-wise sum t + u.
func (t Twist) Add(u Twist) Twist { return Twist{t.V.Add(u.V), t.W.Add(u.W)} }

// Scale returns t with both components scaled by s.
func (t Twist) Scale(s float64) Twist { return Twist{t.V.Scale(s), t.W.Scale(s)} }

// Norm returns the Euclidean norm of the stacked 6-vector.
func (t Twist) Norm() float64 { return math.Sqrt(t.V.NormSq() + t.W.NormSq()) }

// ExpSE3 maps a twist to a rigid transform via the matrix exponential.
func ExpSE3(t Twist) Pose {
	theta := t.W.Norm()
	r := QuatFromAxisAngle(t.W, theta)
	var vmat Mat3
	if theta < 1e-9 {
		vmat = Identity3()
	} else {
		k := Skew(t.W.Scale(1 / theta))
		a := (1 - math.Cos(theta)) / theta
		b := (theta - math.Sin(theta)) / theta
		vmat = Identity3().Add(k.Scale(a)).Add(k.Mul(k).Scale(b))
	}
	return Pose{R: r, T: vmat.MulVec(t.V)}
}

// LogSE3 maps a rigid transform to its twist (inverse of ExpSE3).
func LogSE3(p Pose) Twist {
	q := p.R.Normalized()
	w := clamp(q.W, -1, 1)
	theta := 2 * math.Acos(math.Abs(w))
	var axis Vec3
	s := math.Sqrt(1 - w*w)
	if s > 1e-9 {
		axis = Vec3{q.X, q.Y, q.Z}.Scale(1 / s)
		if q.W < 0 {
			axis = axis.Neg()
		}
	}
	wvec := axis.Scale(theta)
	var vinv Mat3
	if theta < 1e-9 {
		vinv = Identity3()
	} else {
		k := Skew(axis)
		half := theta / 2
		cot := half / math.Tan(half)
		vinv = Identity3().Add(k.Scale(-half)).Add(k.Mul(k).Scale(1 - cot))
	}
	return Twist{V: vinv.MulVec(p.T), W: wvec}
}

// Retract perturbs the pose by the twist on the left: exp(t) * p. This is the
// update rule used by the pose optimizers.
func (p Pose) Retract(t Twist) Pose {
	return ExpSE3(t).Compose(p)
}

// TranslationTo returns the Euclidean distance between the camera centers of
// p and q (the centers are -R^T T in the world frame).
func (p Pose) TranslationTo(q Pose) float64 {
	cp := p.Inverse().T
	cq := q.Inverse().T
	return cp.Sub(cq).Norm()
}

// Center returns the camera center (origin of the local frame) expressed in
// world coordinates.
func (p Pose) Center() Vec3 { return p.Inverse().T }
