package splat

import "runtime"

// shardRanges partitions the half-open tile range [0, n) into at most
// workers contiguous, ascending spans (workers <= 0 means GOMAXPROCS), sized
// as evenly as possible. The partition is a pure function of (n, workers):
// the same inputs always yield the same tile->shard assignment, which is what
// makes the render and backward reductions scheduling-independent. Returned
// spans are [start, end) pairs; at least one span is always returned (it is
// empty when n == 0).
func shardRanges(n, workers int) [][2]int {
	return shardRangesInto(nil, n, workers)
}

// shardRangesInto is shardRanges appending into dst (reusing its capacity —
// the RenderContext's per-call path).
func shardRangesInto(dst [][2]int, n, workers int) [][2]int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	base, rem := n/workers, n%workers
	start := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		dst = append(dst, [2]int{start, start + size})
		start += size
	}
	return dst
}
