package splat

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

// workerCounts is the table the determinism suite sweeps: the serial
// reference, a couple of shard layouts that split tiles unevenly, a count
// that rarely divides the tile grid, and whatever the host actually has.
func workerCounts() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
}

// determinismScene spreads Gaussians across the whole tile grid with heavy
// overlap so every cross-tile reduction (contribution log, op counters,
// shared-Gaussian gradients) is exercised.
func determinismScene() (*gauss.Cloud, camera.Camera) {
	cam := testCam(96, 64) // 6x4 tile grid
	cloud := gauss.NewCloud(60)
	for i := 0; i < 60; i++ {
		fi := float64(i)
		g := gauss.Gaussian{
			Mean: vecmath.Vec3{
				X: 0.7 * math.Sin(fi*0.7),
				Y: 0.5 * math.Cos(fi*1.1),
				Z: 1.2 + 0.05*fi,
			},
			Rot:   vecmath.QuatFromAxisAngle(vecmath.Vec3{X: 1, Y: 0.3, Z: 0.2}, fi*0.4),
			Color: vecmath.Vec3{X: 0.2 + 0.6*math.Abs(math.Sin(fi)), Y: 0.4, Z: 0.2 + fi/120},
		}
		g.SetScale(vecmath.Vec3{X: 0.08 + 0.01*math.Mod(fi, 7), Y: 0.1, Z: 0.09})
		g.SetOpacity(0.15 + 0.7*math.Abs(math.Cos(fi*0.9)))
		cloud.Add(g)
	}
	return cloud, cam
}

// determinismTarget renders a perturbed copy of the scene so backward losses
// and gradients are non-zero.
func determinismTarget(cloud *gauss.Cloud, cam camera.Camera) *frame.Frame {
	gt := gauss.NewCloud(cloud.Len())
	for id := 0; id < cloud.Len(); id++ {
		g := *cloud.At(id)
		g.Mean.X += 0.02 * math.Sin(float64(id))
		g.Mean.Y -= 0.015 * math.Cos(float64(id)*2)
		gt.Add(g)
	}
	res := Render(gt, cam, Options{Workers: 1})
	return &frame.Frame{Color: res.Color, Depth: res.NormalizedDepth()}
}

// TestRenderDeterminismAcrossWorkerCounts asserts the forward contract:
// identical SHA-256 over every output buffer and identical AlphaOps/BlendOps
// at every worker count.
func TestRenderDeterminismAcrossWorkerCounts(t *testing.T) {
	cloud, cam := determinismScene()
	opts := Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255}
	ref := Render(cloud, cam, opts)
	want := ref.Digest()
	for _, wkr := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", wkr), func(t *testing.T) {
			o := opts
			o.Workers = wkr
			got := Render(cloud, cam, o)
			if got.AlphaOps != ref.AlphaOps || got.BlendOps != ref.BlendOps {
				t.Errorf("op counters differ: alpha %d/%d blend %d/%d",
					got.AlphaOps, ref.AlphaOps, got.BlendOps, ref.BlendOps)
			}
			if got.Digest() != want {
				t.Errorf("render digest differs from Workers=1 reference")
			}
		})
	}
}

// TestBackwardDeterminismAcrossWorkerCounts asserts the backward contract:
// the full render+backward composition at any worker count is byte-identical
// to the serial reference (gradients, pose twist, loss, pixel count).
func TestBackwardDeterminismAcrossWorkerCounts(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	for _, lc := range []LossConfig{DefaultMappingLoss(), DefaultTrackingLoss()} {
		refRes := Render(cloud, cam, Options{Workers: 1})
		refG := Backward(cloud, cam, refRes, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1})
		wantRes, wantG := refRes.Digest(), refG.Digest()
		for _, wkr := range workerCounts() {
			name := fmt.Sprintf("masked=%v/workers=%d", lc.UseSilhouetteMask, wkr)
			t.Run(name, func(t *testing.T) {
				res := Render(cloud, cam, Options{Workers: wkr})
				if res.Digest() != wantRes {
					t.Fatalf("render digest differs from Workers=1 reference")
				}
				g := Backward(cloud, cam, res, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: wkr})
				if math.Float64bits(g.Loss) != math.Float64bits(refG.Loss) {
					t.Errorf("loss not bit-identical: %v vs %v", g.Loss, refG.Loss)
				}
				if g.Digest() != wantG {
					t.Errorf("gradient digest differs from Workers=1 reference")
				}
			})
		}
	}
}

// TestBackwardArenaDeterminism asserts the gradient-arena contract: pooled
// partial buffers (including deliberately dirtied, size-mismatched reuses)
// produce gradients bitwise identical to fresh allocations, across worker
// counts and repeated calls.
func TestBackwardArenaDeterminism(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	ref := Backward(cloud, cam, res, target, lc,
		BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1, NoPool: true})
	want := ref.Digest()

	// A smaller companion scene dirties the pool with buffers of a different
	// tile/entry footprint between reference calls.
	smallCam := testCam(32, 32)
	smallRes := Render(cloud, smallCam, Options{Workers: 1})
	smallTarget := &frame.Frame{Color: smallRes.Color, Depth: smallRes.NormalizedDepth()}

	for _, wkr := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", wkr), func(t *testing.T) {
			for rep := 0; rep < 4; rep++ {
				Backward(cloud, smallCam, smallRes, smallTarget, lc,
					BackwardOptions{GaussianGrads: true, Workers: wkr})
				g := Backward(cloud, cam, res, target, lc,
					BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: wkr})
				if g.Digest() != want {
					t.Fatalf("rep %d: pooled gradients diverged from unpooled reference", rep)
				}
			}
		})
	}
}

// TestBackwardArenaReducesAllocs pins the point of the pool: repeated
// backward passes allocate measurably less than the unpooled path.
func TestBackwardArenaReducesAllocs(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	lc := DefaultMappingLoss()
	res := Render(cloud, cam, Options{Workers: 1})
	measure := func(noPool bool) float64 {
		opts := BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1, NoPool: noPool}
		// Settle the heap and re-prime the pool: a GC inside the measured
		// window drains sync.Pool and would otherwise flake the margin.
		runtime.GC()
		Backward(cloud, cam, res, target, lc, opts)
		return testing.AllocsPerRun(10, func() {
			Backward(cloud, cam, res, target, lc, opts)
		})
	}
	pooled := measure(false)
	raw := measure(true)
	// The arena removes the offsets/loss/pose partials and all four gradient
	// slot buffers (7 allocations) from the steady state; the margin leaves
	// room for an occasional GC-drained pool refill.
	if pooled > raw-3 {
		t.Errorf("arena saves too little: %.0f allocs/op pooled vs %.0f unpooled", pooled, raw)
	}
}

// TestShardRangesCoverAndOrder pins the shard partition itself: spans are
// contiguous, ascending, cover [0, n) exactly, and sizes differ by at most 1.
func TestShardRangesCoverAndOrder(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {24, 3}, {24, 7}, {24, 24}, {24, 100}, {17, 0},
	} {
		ranges := shardRanges(tc.n, tc.workers)
		if len(ranges) == 0 {
			t.Fatalf("n=%d workers=%d: no ranges", tc.n, tc.workers)
		}
		next := 0
		minSz, maxSz := tc.n+1, -1
		for _, rg := range ranges {
			if rg[0] != next || rg[1] < rg[0] {
				t.Fatalf("n=%d workers=%d: bad span %v (want start %d)", tc.n, tc.workers, rg, next)
			}
			sz := rg[1] - rg[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = rg[1]
		}
		if next != tc.n {
			t.Errorf("n=%d workers=%d: spans end at %d", tc.n, tc.workers, next)
		}
		if tc.n > 0 && maxSz-minSz > 1 {
			t.Errorf("n=%d workers=%d: uneven spans (min %d max %d)", tc.n, tc.workers, minSz, maxSz)
		}
	}
}
