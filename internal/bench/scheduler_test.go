package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// fakeExp builds a cheap declarative experiment around real suite runs: it
// renders a deterministic line per declared pipeline bundle (frame count and
// ATE), so batch output comparisons exercise the real warm/render path
// without the full experiment cost.
func fakeExp(id string, specs ...RunSpec) Experiment {
	return expDef{
		id: id, paper: "test: " + id,
		needs: specs,
		render: func(s *Suite, w io.Writer) error {
			for _, spec := range specs {
				if spec.DatasetOnly() {
					fmt.Fprintf(w, "%s: %s frames=%d\n", id, spec.Seq, len(s.Sequence(spec.Seq).Frames))
					continue
				}
				b, err := s.Run(spec)
				if err != nil {
					return err
				}
				ate, err := b.Result.ATERMSECm()
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s: %s ate=%.6f\n", id, spec.ID(), ate)
			}
			return nil
		},
	}
}

func TestPlanSpecsDedup(t *testing.T) {
	a := fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline))
	b := fakeExp("b", Spec("Desk", VarBaseline), Spec("Desk", VarAGS))
	c := fakeExp("c", SeqSpec("Desk"), SeqSpec("Room"))
	plan := PlanSpecs([]Experiment{a, b, c})
	// Desk/baseline deduplicates across a and b; the dataset-only Desk spec
	// is dropped because pipeline runs already imply the dataset; Room stays.
	want := []string{"Desk/baseline/", "Desk2/baseline/", "Desk/ags/", "Room//"}
	if len(plan) != len(want) {
		t.Fatalf("plan has %d specs (%v), want %d", len(plan), ids(plan), len(want))
	}
	for i, spec := range plan {
		if spec.ID() != want[i] {
			t.Errorf("plan[%d] = %s, want %s", i, spec.ID(), want[i])
		}
	}
}

func ids(specs []RunSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID()
	}
	return out
}

// TestBatchDedupAcrossExperiments: experiments sharing bundles must execute
// the union once, whatever the worker count.
func TestBatchDedupAcrossExperiments(t *testing.T) {
	exps := []Experiment{
		fakeExp("a", Spec("Desk", VarBaseline)),
		fakeExp("b", Spec("Desk", VarBaseline)),
		fakeExp("c", Spec("Desk", VarBaseline), SeqSpec("Desk")),
	}
	s := NewSuite(tinyCfg())
	var buf bytes.Buffer
	rep, err := RunBatch(s, exps, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Timings()); n != 1 {
		t.Errorf("batch executed %d pipelines, want 1", n)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].ID != "Desk/baseline/" {
		t.Errorf("report runs = %+v, want one Desk/baseline/", rep.Runs)
	}
	if rep.Runs[0].WallMS <= 0 {
		t.Errorf("run wall time not recorded: %+v", rep.Runs[0])
	}
	if len(rep.Experiments) != 3 {
		t.Errorf("report has %d experiments, want 3", len(rep.Experiments))
	}
	if got := strings.Count(buf.String(), "ate="); got != 3 {
		t.Errorf("output has %d rendered lines, want 3:\n%s", got, buf.String())
	}
}

// TestBatchOutputIdenticalAcrossJobs: -jobs 1 (strictly serial plan order)
// and -jobs 4 must produce byte-identical experiment text.
func TestBatchOutputIdenticalAcrossJobs(t *testing.T) {
	mk := func() []Experiment {
		return []Experiment{
			fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline)),
			fakeExp("b", Spec("Desk", VarAGS), Spec("Desk", VarBaseline)),
			fakeExp("c", SeqSpec("Room")),
		}
	}
	var serial, parallel bytes.Buffer
	if _, err := RunBatch(NewSuite(tinyCfg()), mk(), 1, &serial); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatch(NewSuite(tinyCfg()), mk(), 4, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("jobs=1 and jobs=4 output diverged:\n--- jobs=1\n%s--- jobs=4\n%s",
			serial.String(), parallel.String())
	}
	if serial.Len() == 0 {
		t.Fatal("batch produced no output")
	}
}

// TestBatchErrorPropagation: a failing spec stops the batch before any
// rendering and surfaces the underlying error.
func TestBatchErrorPropagation(t *testing.T) {
	exps := []Experiment{
		fakeExp("ok", SeqSpec("Desk")),
		fakeExp("bad", Spec("NoSuchSeq", VarBaseline)),
	}
	var buf bytes.Buffer
	_, err := RunBatch(NewSuite(tinyCfg()), exps, 2, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown sequence") {
		t.Fatalf("batch error = %v, want unknown sequence", err)
	}
	if buf.Len() != 0 {
		t.Errorf("failing batch rendered output:\n%s", buf.String())
	}
}

// TestBatchRenderErrorPropagation: renderer failures carry the experiment id.
func TestBatchRenderErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{expDef{
		id: "exploding", paper: "test",
		render: func(*Suite, io.Writer) error { return boom },
	}}
	_, err := RunBatch(NewSuite(tinyCfg()), exps, 1, io.Discard)
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "exploding") {
		t.Fatalf("render error = %v, want wrapped boom with experiment id", err)
	}
}

// TestBatchMultiExperimentRace drives a real multi-experiment batch at
// jobs=4; under `go test -race` this is the scheduler's race gate.
func TestBatchMultiExperimentRace(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	exps := []Experiment{
		fakeExp("a", Spec("Desk", VarBaseline), Spec("Desk", VarAGS)),
		fakeExp("b", Spec("Desk", VarBaseline), Spec("Desk2", VarBaseline)),
		fakeExp("c", Spec("Desk2", VarBaseline), Spec("Desk", VarAGS), SeqSpec("Room")),
	}
	s := NewSuite(tinyCfg())
	s.Log = io.Discard
	var buf bytes.Buffer
	rep, err := RunBatch(s, exps, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Timings()); n != 3 {
		t.Errorf("batch executed %d pipelines, want 3 unique", n)
	}
	if rep.Jobs != 4 || rep.Specs != 4 {
		t.Errorf("report jobs/specs = %d/%d, want 4/4", rep.Jobs, rep.Specs)
	}
}

// TestBatchMarksCachedRuns: a second batch over the same suite reports its
// runs as cache hits.
func TestBatchMarksCachedRuns(t *testing.T) {
	s := NewSuite(tinyCfg())
	exps := []Experiment{fakeExp("a", Spec("Desk", VarBaseline))}
	if _, err := RunBatch(s, exps, 1, io.Discard); err != nil {
		t.Fatal(err)
	}
	rep, err := RunBatch(s, exps, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || !rep.Runs[0].Cached {
		t.Errorf("second batch runs = %+v, want cached", rep.Runs)
	}
}
