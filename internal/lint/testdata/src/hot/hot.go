// Package hot is the hotalloc golden corpus. It deliberately lives OUTSIDE
// the critical prefixes: hotalloc follows //ags:hotpath annotations, not
// package paths, so annotated functions here are checked while unannotated
// ones (and determinism checks) are not.
package hot

type point struct{ x, y float64 }

// Ctx mimics a render context that owns reusable buffers.
type Ctx struct {
	buf []float64
}

// Fill is the good citizen: amortized growth under a cap guard, appends into
// a buffer derived from the context, and stack-only values.
//
//ags:hotpath
func (c *Ctx) Fill(xs []float64) float64 {
	if cap(c.buf) < len(xs) {
		c.buf = make([]float64, len(xs))
	}
	c.buf = c.buf[:0]
	out := c.buf
	for _, x := range xs {
		out = append(out, 2*x)
	}
	var acc [4]float64
	p := point{1, 2}
	s := p.x * 0
	for _, v := range out {
		s += v
	}
	return s + acc[0]
}

// Grow allocates every way the check knows how to flag.
//
//ags:hotpath
func Grow(n int) []float64 {
	m := map[int]int{} // want hotalloc
	_ = m
	s := make([]float64, n) // want hotalloc
	lit := []int{1, 2, 3}   // want hotalloc
	_ = lit
	p := &point{1, 2} // want hotalloc
	_ = p
	q := new(point) // want hotalloc
	_ = q
	f := func() int { return n } // want hotalloc
	_ = f()
	var acc []float64
	for i := 0; i < n; i++ {
		acc = append(acc, float64(i)) // want hotalloc
	}
	_ = acc
	return s
}

// Cold is unannotated: the same constructs are fine off the hot path.
func Cold(n int) []float64 {
	out := make([]float64, n)
	return append(out, float64(n))
}

// Fallback justifies a closure on a rare path, mirroring the sort-fallback
// pattern in the splat tile sorter.
//
//ags:hotpath
func Fallback(xs []int) {
	if len(xs) > 32 {
		//ags:allow(hotalloc, comparator closure only on the rare long-input fallback; the common path allocates nothing)
		sortFunc(xs, func(a, b int) int { return a - b })
	}
}

func sortFunc(xs []int, cmp func(a, b int) int) {
	_ = cmp
	_ = xs
}
