package gauss

import (
	"testing"

	"ags/internal/vecmath"
)

func numberedGaussian(i int) Gaussian {
	g := Gaussian{
		Mean:  vecmath.Vec3{X: float64(i), Y: 1, Z: 2},
		Rot:   vecmath.QuatIdentity(),
		Color: vecmath.Vec3{X: 0.5, Y: 0.5, Z: 0.5},
	}
	g.SetScale(vecmath.Vec3{X: 0.1, Y: 0.1, Z: 0.1})
	g.SetOpacity(0.9)
	return g
}

func TestCompactPacksSurvivorsInOrder(t *testing.T) {
	c := NewCloud(8)
	for i := 0; i < 6; i++ {
		c.Add(numberedGaussian(i))
	}
	c.Prune(1)
	c.Prune(4)
	remap, freed := c.Compact()
	if freed != 2 {
		t.Fatalf("freed = %d, want 2", freed)
	}
	if c.Len() != 4 || c.NumActive() != 4 || c.NumInactive() != 0 {
		t.Fatalf("len %d active %d inactive %d after compaction", c.Len(), c.NumActive(), c.NumInactive())
	}
	// Survivors keep their relative order; dead slots get unique in-range IDs
	// past the survivor prefix, ascending by old ID.
	want := []int32{0, 4, 1, 2, 5, 3}
	for old, nw := range remap {
		if nw != want[old] {
			t.Fatalf("remap = %v, want %v", remap, want)
		}
	}
	for nw, old := range []int{0, 2, 3, 5} {
		if got := c.At(nw).Mean.X; got != float64(old) {
			t.Errorf("slot %d holds Gaussian %v, want %d", nw, got, old)
		}
		if !c.IsActive(nw) {
			t.Errorf("slot %d inactive after compaction", nw)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactDenseCloudIsIdentity(t *testing.T) {
	c := NewCloud(4)
	for i := 0; i < 4; i++ {
		c.Add(numberedGaussian(i))
	}
	remap, freed := c.Compact()
	if freed != 0 {
		t.Fatalf("freed = %d on a dense cloud", freed)
	}
	for old, nw := range remap {
		if int(nw) != old {
			t.Fatalf("remap = %v, want identity", remap)
		}
	}
	if c.Len() != 4 || c.NumActive() != 4 {
		t.Fatalf("dense compaction changed the cloud: len %d active %d", c.Len(), c.NumActive())
	}
}

// TestPruneRepeatedNoDoubleCount is the regression test for the prune
// double-decrement bug: pruning an already-dead ID must not count again (the
// active total would drift below the truth and, being the digest's map-size
// prefix, poison cross-run comparisons).
func TestPruneRepeatedNoDoubleCount(t *testing.T) {
	c := NewCloud(4)
	for i := 0; i < 3; i++ {
		c.Add(numberedGaussian(i))
	}
	if !c.Prune(1) {
		t.Fatal("first prune of a live ID reported no transition")
	}
	if c.Prune(1) {
		t.Fatal("second prune of the same ID reported a transition")
	}
	if c.Prune(-1) || c.Prune(3) {
		t.Fatal("out-of-range prune reported a transition")
	}
	if c.NumActive() != 2 {
		t.Fatalf("NumActive = %d after repeated prunes, want 2", c.NumActive())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAllRecountsActive(t *testing.T) {
	c := NewCloud(0)
	gs := []Gaussian{numberedGaussian(0), numberedGaussian(1), numberedGaussian(2)}
	if err := c.SetAll(gs, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	if c.NumActive() != 2 || c.NumInactive() != 1 {
		t.Fatalf("active %d inactive %d, want 2/1", c.NumActive(), c.NumInactive())
	}
	if err := c.SetAll(gs, []bool{true}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
