package bench

import (
	"fmt"
	"io"

	"ags/internal/hw/area"
	"ags/internal/hw/platform"
	"ags/internal/metrics"
	"ags/internal/scene"
)

func expFig15a() Experiment {
	return expDef{
		id: "fig15a", paper: "Fig. 15a (server speedup)",
		needs:  specsFor(scene.Names(), VarBaseline, VarAGS),
		render: func(s *Suite, w io.Writer) error { return s.Fig15(w, true) },
	}
}

func expFig15b() Experiment {
	return expDef{
		id: "fig15b", paper: "Fig. 15b (edge speedup)",
		needs:  specsFor(scene.Names(), VarBaseline, VarAGS),
		render: func(s *Suite, w io.Writer) error { return s.Fig15(w, false) },
	}
}

func expTable3() Experiment {
	return expDef{
		id: "table3", paper: "Table 3 (area)",
		render: (*Suite).Table3,
	}
}

func expFig16() Experiment {
	return expDef{
		id: "fig16", paper: "Fig. 16 (energy efficiency)",
		needs:  specsFor(scene.Names(), VarBaseline, VarAGS),
		render: (*Suite).Fig16,
	}
}

func expFig17() Experiment {
	return expDef{
		id: "fig17", paper: "Fig. 17 (per-task speedup)",
		needs:  specsFor(scene.TUMNames(), VarBaseline, VarAGS),
		render: (*Suite).Fig17,
	}
}

func expFig18() Experiment {
	return expDef{
		id: "fig18", paper: "Fig. 18 (contribution ladder)",
		needs:  specsFor(scene.TUMNames(), VarBaseline, VarMATOnly, VarAGS),
		render: (*Suite).Fig18,
	}
}

func expFig23() Experiment {
	return expDef{
		id: "fig23", paper: "Fig. 23 (Gaussian-SLAM generality)",
		needs:  specsFor(scene.TUMNames(), VarGSLAMBase, VarGSLAMAGS),
		render: (*Suite).Fig23,
	}
}

// Fig15 reproduces Fig. 15: end-to-end speedup of AGS over the GPUs and
// GSCore. server=true gives Fig. 15(a) (A100 class), false gives Fig. 15(b)
// (Xavier class). Results are normalized to the GPU, as in the paper.
func (s *Suite) Fig15(w io.Writer, server bool) error {
	var gpu platform.Platform
	var gsc platform.Platform
	var agsHW platform.Platform
	var title string
	if server {
		gpu, gsc, agsHW = platform.A100(), platform.GSCoreServer(), platform.AGSServer()
		title = "Fig. 15a: Speedup over A100 (normalized to GPU-Server)"
	} else {
		gpu, gsc, agsHW = platform.Xavier(), platform.GSCoreEdge(), platform.AGSEdge()
		title = "Fig. 15b: Speedup over AGX Xavier (normalized to GPU-Edge)"
	}
	t := NewTable(title, "Sequence", "GPU", "GSCore", "AGS")
	var gscAll, agsAll []float64
	for _, name := range scene.Names() {
		base, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		ags, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		gpuT := platform.RunTotal(gpu, base.Result.Trace)
		gscT := platform.RunTotal(gsc, base.Result.Trace)
		agsT := platform.RunTotal(agsHW, ags.Result.Trace)
		spGsc := platform.Speedup(gpuT, gscT)
		spAgs := platform.Speedup(gpuT, agsT)
		gscAll = append(gscAll, spGsc)
		agsAll = append(agsAll, spAgs)
		t.AddRow(name, 1.0, spGsc, spAgs)
	}
	t.AddRow("GeoMean", 1.0, metrics.GeoMean(gscAll), metrics.GeoMean(agsAll))
	if server {
		t.AddNote("paper geomeans: AGS-Server 6.71x over A100, 5.41x over GSCore-Server")
	} else {
		t.AddNote("paper geomeans: AGS-Edge 17.12x over Xavier, 14.63x over GSCore-Edge")
	}
	t.Write(w)
	return nil
}

// Table3 reproduces Table 3: the AGS area breakdown.
func (s *Suite) Table3(w io.Writer) error {
	t := NewTable("Table 3: Area of AGS (mm^2, 28nm)",
		"Engine", "Component", "Edge", "Server")
	edge := area.Breakdown(area.Edge())
	server := area.Breakdown(area.Server())
	for i := range edge {
		t.AddRow(edge[i].Engine, edge[i].Component+" ("+edge[i].Remark+"/"+server[i].Remark+")",
			fmt.Sprintf("%.3f", edge[i].AreaMM2), fmt.Sprintf("%.3f", server[i].AreaMM2))
	}
	t.AddRow("Total", "", fmt.Sprintf("%.2f", area.Total(area.Edge())), fmt.Sprintf("%.2f", area.Total(area.Server())))
	t.AddNote("paper totals: 7.25 (Edge) / 14.38 (Server) mm^2")
	t.Write(w)
	return nil
}

// Fig16 reproduces Fig. 16: energy efficiency of AGS relative to the GPUs.
func (s *Suite) Fig16(w io.Writer) error {
	t := NewTable("Fig. 16: Energy efficiency (GPU energy / AGS energy)",
		"Sequence", "AGS-Server vs A100", "AGS-Edge vs Xavier")
	var srv, edg []float64
	for _, name := range scene.Names() {
		base, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		ags, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		a100 := platform.RunTotal(platform.A100(), base.Result.Trace)
		xav := platform.RunTotal(platform.Xavier(), base.Result.Trace)
		srvE := platform.RunTotal(platform.AGSServer(), ags.Result.Trace)
		edgE := platform.RunTotal(platform.AGSEdge(), ags.Result.Trace)
		rs := a100.EnergyJ / srvE.EnergyJ
		re := xav.EnergyJ / edgE.EnergyJ
		srv = append(srv, rs)
		edg = append(edg, re)
		t.AddRow(name, rs, re)
	}
	t.AddRow("GeoMean", metrics.GeoMean(srv), metrics.GeoMean(edg))
	t.AddNote("paper: 22.58x (Server vs A100), 42.28x (Edge vs Xavier)")
	t.Write(w)
	return nil
}

// Fig17 reproduces Fig. 17: per-task speedup of AGS over the GPU for
// tracking and mapping separately.
func (s *Suite) Fig17(w io.Writer) error {
	t := NewTable("Fig. 17: Per-task speedup of AGS over GPU",
		"Sequence", "Tracking (Server)", "Tracking (Edge)", "Mapping (Server)", "Mapping (Edge)")
	var tS, tE, mS, mE []float64
	for _, name := range scene.TUMNames() {
		base, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		ags, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		a100 := platform.RunTotal(platform.A100(), base.Result.Trace)
		xav := platform.RunTotal(platform.Xavier(), base.Result.Trace)
		srv := platform.RunTotal(platform.AGSServer(), ags.Result.Trace)
		edg := platform.RunTotal(platform.AGSEdge(), ags.Result.Trace)
		// Tracking on AGS includes the coarse estimator + refinement.
		trkSrv := a100.TrackNs / (srv.TrackNs + srv.CoarseNs + srv.CodecNs)
		trkEdg := xav.TrackNs / (edg.TrackNs + edg.CoarseNs + edg.CodecNs)
		mapSrv := a100.MapNs / srv.MapNs
		mapEdg := xav.MapNs / edg.MapNs
		tS, tE = append(tS, trkSrv), append(tE, trkEdg)
		mS, mE = append(mS, mapSrv), append(mE, mapEdg)
		t.AddRow(name, trkSrv, trkEdg, mapSrv, mapEdg)
	}
	t.AddRow("GeoMean", metrics.GeoMean(tS), metrics.GeoMean(tE), metrics.GeoMean(mS), metrics.GeoMean(mE))
	t.AddNote("paper: tracking speedup exceeds mapping speedup; edge exceeds server")
	t.Write(w)
	return nil
}

// Fig18 reproduces Fig. 18: the algorithm/architecture contribution ladder —
// GPU-Base, GPU-AGS, AGS-MAT, AGS-MAT+GCM, AGS-Full (normalized to GPU-Base).
func (s *Suite) Fig18(w io.Writer) error {
	t := NewTable("Fig. 18: Contribution analysis (speedup over GPU-Base, A100 class)",
		"Sequence", "GPU-Base", "GPU-AGS", "AGS-MAT", "AGS-MAT+GCM", "AGS-Full")
	var c1, c2, c3, c4 []float64
	for _, name := range scene.TUMNames() {
		base, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		mat, err := s.Run(Spec(name, VarMATOnly))
		if err != nil {
			return err
		}
		full, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		gpuBase := platform.RunTotal(platform.A100(), base.Result.Trace)
		gpuAGS := platform.RunTotal(platform.A100().WithAGSAlgorithm(), full.Result.Trace)
		// AGS hardware without the GPE scheduler and without pipelining for
		// the intermediate points, per the paper's incremental ladder.
		hwBase := platform.AGSServer().WithScheduler(false).WithPipelining(false)
		agsMAT := platform.RunTotal(hwBase, mat.Result.Trace)
		agsMATGCM := platform.RunTotal(hwBase, full.Result.Trace)
		agsFull := platform.RunTotal(platform.AGSServer(), full.Result.Trace)
		s1 := platform.Speedup(gpuBase, gpuAGS)
		s2 := platform.Speedup(gpuBase, agsMAT)
		s3 := platform.Speedup(gpuBase, agsMATGCM)
		s4 := platform.Speedup(gpuBase, agsFull)
		c1, c2, c3, c4 = append(c1, s1), append(c2, s2), append(c3, s3), append(c4, s4)
		t.AddRow(name, 1.0, s1, s2, s3, s4)
	}
	t.AddRow("GeoMean", 1.0, metrics.GeoMean(c1), metrics.GeoMean(c2), metrics.GeoMean(c3), metrics.GeoMean(c4))
	t.AddNote("paper ladder: 1.0 -> 1.12 -> 2.81 -> 3.99 -> 7.14 (geomean, multiplicative steps 1.12/2.51/1.42/1.79)")
	t.Write(w)
	return nil
}

// Fig23 reproduces Fig. 23: AGS generality on the Gaussian-SLAM backbone.
func (s *Suite) Fig23(w io.Writer) error {
	t := NewTable("Fig. 23: AGS on the Gaussian-SLAM backbone (speedup over GPU-Server)",
		"Sequence", "GPU-Server", "AGS-Server")
	var sp []float64
	for _, name := range scene.TUMNames() {
		base, err := s.Run(Spec(name, VarGSLAMBase))
		if err != nil {
			return err
		}
		ags, err := s.Run(Spec(name, VarGSLAMAGS))
		if err != nil {
			return err
		}
		gpuT := platform.RunTotal(platform.A100(), base.Result.Trace)
		agsT := platform.RunTotal(platform.AGSServer(), ags.Result.Trace)
		v := platform.Speedup(gpuT, agsT)
		sp = append(sp, v)
		t.AddRow(name, 1.0, v)
	}
	t.AddRow("GeoMean", 1.0, metrics.GeoMean(sp))
	t.AddNote("paper: 5.11x geomean speedup on Gaussian-SLAM")
	t.Write(w)
	return nil
}
