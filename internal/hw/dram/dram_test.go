package dram

import (
	"testing"
)

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	m := New(LPDDR4())
	first := m.Access(0, 8) // cold miss
	hit := m.Access(8, 8)   // same row
	if hit >= first {
		t.Errorf("row hit %v not faster than miss %v", hit, first)
	}
	if m.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", m.HitRate())
	}
}

func TestSequentialVsRandomHitRate(t *testing.T) {
	seq := New(LPDDR4())
	for i := 0; i < 1024; i++ {
		seq.Access(uint64(i*8), 8)
	}
	rnd := New(LPDDR4())
	for i := 0; i < 1024; i++ {
		// Stride past the row size so every access opens a new row.
		rnd.Access(uint64(i*4096*7), 8)
	}
	if seq.HitRate() < 0.9 {
		t.Errorf("sequential hit rate = %v", seq.HitRate())
	}
	if rnd.HitRate() > 0.2 {
		t.Errorf("random hit rate = %v", rnd.HitRate())
	}
	if rnd.Stats().BusyNs <= seq.Stats().BusyNs {
		t.Error("random traffic not slower than sequential")
	}
}

func TestHBM2FasterThanLPDDR4(t *testing.T) {
	const n = 1 << 20
	if StreamNs(HBM2(), n) >= StreamNs(LPDDR4(), n) {
		t.Error("HBM2 stream not faster than LPDDR4")
	}
}

func TestStreamAccounting(t *testing.T) {
	m := New(HBM2())
	ns := m.Stream(900) // 900 bytes at 900 GB/s = 1 ns
	if ns < 0.99 || ns > 1.01 {
		t.Errorf("stream time = %v ns", ns)
	}
	if m.Stats().Bytes != 900 {
		t.Errorf("bytes = %d", m.Stats().Bytes)
	}
}

func TestReset(t *testing.T) {
	m := New(LPDDR4())
	m.Access(0, 8)
	m.Reset()
	s := m.Stats()
	if s.Accesses != 0 || s.Bytes != 0 || s.BusyNs != 0 {
		t.Errorf("reset left state: %+v", s)
	}
	// After reset the first access is a miss again.
	first := m.Access(0, 8)
	if first <= m.Spec.RowHitNs {
		t.Error("reset did not close rows")
	}
}

func TestBanksInterleave(t *testing.T) {
	// Two alternating rows in different banks both stay open.
	m := New(LPDDR4())
	rowA := uint64(0)
	rowB := uint64(m.Spec.RowBytes) // next row -> next bank
	m.Access(rowA, 8)
	m.Access(rowB, 8)
	a2 := m.Access(rowA, 8)
	b2 := m.Access(rowB, 8)
	if a2 > m.Spec.RowHitNs+1 || b2 > m.Spec.RowHitNs+1 {
		t.Error("bank interleaving broken: alternating rows should both hit")
	}
}
