package optim

import (
	"math"
	"testing"
)

// quadratic is f(x) = sum (x_i - c_i)^2 with gradient 2*(x-c).
func quadGrad(x, c []float64) []float64 {
	g := make([]float64, len(x))
	for i := range x {
		g[i] = 2 * (x[i] - c[i])
	}
	return g
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	x := []float64{5, -3}
	c := []float64{1, 2}
	opt := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		opt.Step(x, quadGrad(x, c))
	}
	for i := range x {
		if math.Abs(x[i]-c[i]) > 1e-6 {
			t.Fatalf("SGD did not converge: x=%v", x)
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		x := []float64{10}
		c := []float64{0}
		opt := NewSGD(0.02, momentum)
		for i := 0; i < 60; i++ {
			opt.Step(x, quadGrad(x, c))
		}
		return math.Abs(x[0])
	}
	if run(0.9) >= run(0) {
		t.Error("momentum did not speed up convergence on smooth quadratic")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	x := []float64{5, -3, 0.5}
	c := []float64{1, 2, -1}
	opt := NewAdam(0.1)
	for i := 0; i < 1500; i++ {
		opt.Step(x, quadGrad(x, c))
	}
	for i := range x {
		if math.Abs(x[i]-c[i]) > 1e-3 {
			t.Fatalf("Adam did not converge: x=%v", x)
		}
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ~LR
	// regardless of gradient scale.
	for _, scale := range []float64{1e-4, 1, 1e4} {
		x := []float64{0}
		opt := NewAdam(0.01)
		opt.Step(x, []float64{scale})
		if math.Abs(math.Abs(x[0])-0.01) > 1e-4 {
			t.Errorf("first step with grad %v moved %v", scale, x[0])
		}
	}
}

func TestAdamReset(t *testing.T) {
	x := []float64{0}
	opt := NewAdam(0.01)
	opt.Step(x, []float64{1})
	opt.Reset()
	y := []float64{0}
	opt.Step(y, []float64{1})
	if math.Abs(x[0]-y[0]) > 1e-12 {
		t.Error("reset did not restore initial state")
	}
}

func TestAdamHandlesParamSizeChange(t *testing.T) {
	opt := NewAdam(0.01)
	opt.Step([]float64{0, 0}, []float64{1, 1})
	// Growing the parameter vector (densification adds Gaussians) must not
	// panic; state is reinitialized.
	opt.Step([]float64{0, 0, 0}, []float64{1, 1, 1})
}

func TestGroupAdamIndependentGroups(t *testing.T) {
	g := NewGroupAdam(map[string]float64{"fast": 0.1, "slow": 0.001})
	fast := []float64{0}
	slow := []float64{0}
	for i := 0; i < 10; i++ {
		g.Step("fast", fast, []float64{1})
		g.Step("slow", slow, []float64{1})
	}
	if math.Abs(fast[0]) <= math.Abs(slow[0]) {
		t.Errorf("fast group (%v) should move more than slow group (%v)", fast[0], slow[0])
	}
	// Unknown group uses the fallback rate without panicking.
	g.Step("unknown", []float64{0}, []float64{1})
}

func TestClipGradNorm(t *testing.T) {
	g := []float64{3, 4}
	norm := ClipGradNorm(g, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	var after float64
	for _, v := range g {
		after += v * v
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-12 {
		t.Errorf("post-clip norm = %v", math.Sqrt(after))
	}
	// Below-threshold gradients are untouched.
	h := []float64{0.1, 0.1}
	ClipGradNorm(h, 10)
	if h[0] != 0.1 {
		t.Error("clip modified small gradient")
	}
}

func TestNewGroupAdamCopiesRates(t *testing.T) {
	rates := map[string]float64{"mean": 0.5}
	g := NewGroupAdam(rates)
	rates["mean"] = 0 // caller mutation after construction must not leak in

	withRate := []float64{0}
	g.Step("mean", withRate, []float64{1})
	if withRate[0] == 0 {
		t.Error("Step with rate 0.5 moved nothing — NewGroupAdam aliased the caller's rates map")
	}
}
