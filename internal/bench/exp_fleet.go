package bench

import (
	"fmt"
	"io"
	"sync"

	"ags/internal/fleet"
	"ags/internal/scene"
)

func expPerfFleet() Experiment {
	return expDef{
		id: "perf-fleet", paper: "Perf: distributed serving fleet — loopback nodes, placement hit rate + mid-stream migration",
		needs:  specsFor(serveSeqs(), VarAGS),
		render: (*Suite).PerfFleet,
	}
}

// PerfFleet measures the fleet layer end-to-end: two in-process nodes behind
// real loopback TCP listeners, a router placing the suite's sequences as
// remote streams, every frame crossing the wire. Row one is steady-state
// serving (concurrent producers); row two drains one node mid-stream, forcing
// at least one session to snapshot over the wire and restore on the peer.
// Both rows assert, stream by stream, that the fleet's Result digests are
// bitwise identical to the cached sequential slam.Run of the same (sequence,
// variant) — the distributed layer's falsifiability gate: neither the
// transport encode/decode, nor multi-tenant interleaving on the nodes, nor a
// mid-stream host migration may move a single output bit.
func (s *Suite) PerfFleet(w io.Writer) error {
	names := serveSeqs()
	type ref struct {
		seq    *scene.Sequence
		digest [32]byte
	}
	refs := make([]ref, len(names))
	frames := 0
	for i, name := range names {
		b, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		refs[i] = ref{seq: b.Seq, digest: b.Result.Digest()}
		frames += len(b.Seq.Frames)
	}
	cfg := s.slamConfig(VarAGS, nil)

	t := NewTable(fmt.Sprintf("Perf: fleet serving over loopback (%dx%d, %d frames x %d streams, 2 nodes)",
		s.Cfg.Width, s.Cfg.Height, s.Cfg.Frames, len(names)),
		"Scenario", "Wall ms", "Frames/s", "Placed@1st", "Migrations", "Pool hit rate")

	scenario := func(label string, drainMidStream bool) error {
		nodes := []*fleet.Node{
			fleet.NewNode(fleet.NodeConfig{Name: "node-a"}),
			fleet.NewNode(fleet.NodeConfig{Name: "node-b"}),
		}
		r := fleet.NewRouter()
		for _, n := range nodes {
			addr, err := n.Start("")
			if err != nil {
				return fmt.Errorf("bench: perf-fleet: %w", err)
			}
			if err := r.AddNode(addr); err != nil {
				return fmt.Errorf("bench: perf-fleet: %w", err)
			}
		}

		sums := make([]fleet.ResultSummary, len(refs))
		start := wallNow()
		if drainMidStream {
			// One goroutine, round-robin pushes: a deterministic interleave
			// that lets the drain land at a known frame index. The drained
			// node's streams migrate lazily at their next push.
			streams := make([]*fleet.Stream, len(refs))
			for i, rf := range refs {
				st, err := r.Open(rf.seq.Name, cfg, rf.seq.Intr)
				if err != nil {
					return fmt.Errorf("bench: perf-fleet: open %s: %w", rf.seq.Name, err)
				}
				streams[i] = st
			}
			half := s.Cfg.Frames / 2
			for f := 0; f < s.Cfg.Frames; f++ {
				if f == half {
					if err := r.Drain(streams[0].Node()); err != nil {
						return fmt.Errorf("bench: perf-fleet: drain: %w", err)
					}
				}
				for i, rf := range refs {
					if f >= len(rf.seq.Frames) {
						continue
					}
					if err := streams[i].Push(rf.seq.Frames[f]); err != nil {
						return fmt.Errorf("bench: perf-fleet: push %s: %w", rf.seq.Name, err)
					}
				}
			}
			for i, st := range streams {
				sum, err := st.Close()
				if err != nil {
					return fmt.Errorf("bench: perf-fleet: close %s: %w", refs[i].seq.Name, err)
				}
				sums[i] = sum
			}
		} else {
			errs := make([]error, len(refs))
			var wg sync.WaitGroup
			for i, rf := range refs {
				st, err := r.Open(rf.seq.Name, cfg, rf.seq.Intr)
				if err != nil {
					return fmt.Errorf("bench: perf-fleet: open %s: %w", rf.seq.Name, err)
				}
				wg.Add(1)
				//ags:allow(goroutine-site, measurement fan-out: one producer per stream writing only its own sums/errs slot, every digest checked against the sequential reference below)
				go func(i int, seq *scene.Sequence, st *fleet.Stream) {
					defer wg.Done()
					for _, f := range seq.Frames {
						if err := st.Push(f); err != nil {
							errs[i] = err
							return
						}
					}
					sums[i], errs[i] = st.Close()
				}(i, rf.seq, st)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					return fmt.Errorf("bench: perf-fleet: stream %s: %w", refs[i].seq.Name, err)
				}
			}
		}
		wall := wallSince(start)

		for i, rf := range refs {
			if sums[i].Digest != rf.digest {
				return fmt.Errorf("bench: perf-fleet: stream %s (%s) diverged from sequential run", rf.seq.Name, label)
			}
			if sums[i].Frames != len(rf.seq.Frames) {
				return fmt.Errorf("bench: perf-fleet: stream %s: %d frames, want %d", rf.seq.Name, sums[i].Frames, len(rf.seq.Frames))
			}
		}
		m := r.Metrics()
		if drainMidStream && m.Migrations < 1 {
			return fmt.Errorf("bench: perf-fleet: drain scenario recorded no migration")
		}
		sts, err := r.Stats()
		if err != nil {
			return fmt.Errorf("bench: perf-fleet: %w", err)
		}
		var hits, misses uint64
		for _, st := range sts {
			hits += st.Pool.Hits
			misses += st.Pool.Misses
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}

		r.Close()
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				return fmt.Errorf("bench: perf-fleet: node close: %w", err)
			}
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
			fmt.Sprintf("%.2f", float64(frames)/wall.Seconds()),
			fmt.Sprintf("%d/%d", m.PrimaryHits, m.Placements),
			m.Migrations,
			fmt.Sprintf("%.2f", hitRate))
		return nil
	}

	if err := scenario("steady", false); err != nil {
		return err
	}
	if err := scenario("drain mid-stream", true); err != nil {
		return err
	}

	t.AddNote("every stream's digest asserted bitwise identical to the cached sequential slam.Run — transport, interleaving and migration move no output bit")
	t.AddNote("drain row snapshots the drained node's live session(s) over the wire and restores them on the peer at the next push")
	t.AddNote("Placed@1st counts streams landing on their first-choice placement candidate (consistent hash + least-loaded tie-break)")
	t.Write(w)
	return nil
}
