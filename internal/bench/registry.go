package bench

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Paper string
	Run   func(*Suite) error
}

// Experiments returns the registry of all reproducible tables and figures in
// the order the paper presents them.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1 (category comparison)", (*Suite).Table1},
		{"fig3", "Fig. 3 (tracking vs mapping time)", (*Suite).Fig3},
		{"fig4", "Fig. 4 (accuracy vs iterations by FC)", (*Suite).Fig4},
		{"fig5", "Fig. 5 (non-contributory Gaussians)", (*Suite).Fig5},
		{"fig6", "Fig. 6 (contribution similarity by FC level)", (*Suite).Fig6},
		{"table2", "Table 2 (ATE RMSE)", (*Suite).Table2},
		{"fig14", "Fig. 14 (PSNR)", (*Suite).Fig14},
		{"fp", "§6.2 (false-positive rate)", (*Suite).FPRate},
		{"fig15a", "Fig. 15a (server speedup)", func(s *Suite) error { return s.Fig15(true) }},
		{"fig15b", "Fig. 15b (edge speedup)", func(s *Suite) error { return s.Fig15(false) }},
		{"table3", "Table 3 (area)", (*Suite).Table3},
		{"fig16", "Fig. 16 (energy efficiency)", (*Suite).Fig16},
		{"fig17", "Fig. 17 (per-task speedup)", (*Suite).Fig17},
		{"fig18", "Fig. 18 (contribution ladder)", (*Suite).Fig18},
		{"table4", "Table 4 (Droid+SplaTAM)", (*Suite).Table4},
		{"fig19", "Fig. 19 (Iter_T sensitivity)", (*Suite).Fig19},
		{"fig20", "Fig. 20 (Thresh_M sensitivity)", (*Suite).Fig20},
		{"fig21", "Fig. 21 (Thresh_N sensitivity)", (*Suite).Fig21},
		{"fig22", "Fig. 22 (FC distribution)", (*Suite).Fig22},
		{"fig23", "Fig. 23 (Gaussian-SLAM generality)", (*Suite).Fig23},
		{"abl-codec", "Extra: ME search ablation", (*Suite).AblCodec},
		{"abl-tables", "Extra: logging-buffer capacity sweep", (*Suite).AblTables},
		{"abl-overlap", "Extra: pipelining/scheduler split", (*Suite).AblOverlap},
		{"perf-me", "Perf: serial vs parallel vs pipelined CODEC ME", (*Suite).PerfME},
		{"perf-render", "Perf: serial vs deterministically sharded splat render+backward", (*Suite).PerfRender},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ids)
}

// RunAll executes every experiment in paper order.
func RunAll(s *Suite) error {
	for _, e := range Experiments() {
		if err := e.Run(s); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
