package fleet

import (
	"errors"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"ags/internal/scene"
	"ags/internal/slam"
)

const tw, th = 48, 36

// fastCfg mirrors slam's test configuration: full AGS pipeline, iteration
// counts shrunk so the end-to-end tests stay quick.
func fastCfg() slam.Config {
	cfg := slam.DefaultConfig(tw, th)
	cfg.TrackIters = 12
	cfg.IterT = 4
	cfg.Mapper.MapIters = 6
	cfg.Mapper.DensifyStride = 2
	cfg.Workers = 4
	cfg.EnableMAT = true
	cfg.EnableGCM = true
	return cfg
}

func testSeq(t *testing.T, name string, frames int) *scene.Sequence {
	t.Helper()
	return scene.MustGenerate(name, scene.Config{Width: tw, Height: th, Frames: frames, Seed: 1})
}

// startFleet boots n in-process nodes over loopback and a router over all of
// them, with cleanup registered.
func startFleet(t *testing.T, cfgs []NodeConfig) (*Router, []*Node) {
	t.Helper()
	nodes := make([]*Node, len(cfgs))
	r := NewRouter()
	for i, nc := range cfgs {
		n := NewNode(nc)
		addr, err := n.Start("")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		if err := r.AddNode(addr); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.Close()
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				t.Errorf("node close: %v", err)
			}
		}
	})
	return r, nodes
}

// TestFleetDigestsMatchSequential is the falsifiability gate: a 2-node fleet
// serving interleaved streams over loopback must produce Result digests
// bit-identical to sequential in-process runs of the same sequences.
func TestFleetDigestsMatchSequential(t *testing.T) {
	cfg := fastCfg()
	seqs := []*scene.Sequence{
		testSeq(t, "Desk", 6),
		testSeq(t, "Xyz", 6),
		testSeq(t, "Room", 6),
	}

	// Sequential references, one isolated server each.
	want := make(map[string][32]byte)
	for _, seq := range seqs {
		res, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
		if err != nil {
			t.Fatal(err)
		}
		want[seq.Name] = res.Digest()
	}

	r, _ := startFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})

	// One producer goroutine per stream: pushes from concurrent streams
	// interleave on the nodes while each stream keeps its own frame order.
	var wg sync.WaitGroup
	sums := make([]ResultSummary, len(seqs))
	errs := make([]error, len(seqs))
	for i, seq := range seqs {
		st, err := r.Open(seq.Name, cfg, seq.Intr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		//ags:allow(goroutine-site, test fan-out: one producer per stream, joined by wg.Wait below)
		go func(i int, seq *scene.Sequence, st *Stream) {
			defer wg.Done()
			for _, f := range seq.Frames {
				if err := st.Push(f); err != nil {
					errs[i] = err
					return
				}
			}
			sums[i], errs[i] = st.Close()
		}(i, seq, st)
	}
	wg.Wait()
	for i, seq := range seqs {
		if errs[i] != nil {
			t.Fatalf("stream %q: %v", seq.Name, errs[i])
		}
		if sums[i].Digest != want[seq.Name] {
			t.Errorf("stream %q: fleet digest diverges from sequential run", seq.Name)
		}
		if sums[i].Frames != len(seq.Frames) {
			t.Errorf("stream %q: %d frames, want %d", seq.Name, sums[i].Frames, len(seq.Frames))
		}
	}
	m := r.Metrics()
	if m.Placements != len(seqs) {
		t.Errorf("placements = %d, want %d", m.Placements, len(seqs))
	}
	if m.Migrations != 0 {
		t.Errorf("migrations = %d, want 0", m.Migrations)
	}
}

// TestFleetMigrationKeepsDigest drains a live stream's node mid-stream: the
// session snapshots over the wire, restores on the peer, the remaining
// frames push there, and the final digest still matches the uninterrupted
// sequential run.
func TestFleetMigrationKeepsDigest(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 6)
	ref, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}

	r, _ := startFleet(t, []NodeConfig{{Name: "a"}, {Name: "b"}})
	st, err := r.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	home := st.Node()
	for i, f := range seq.Frames {
		if i == len(seq.Frames)/2 {
			if err := r.Drain(home); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", st.Migrations())
	}
	if st.Node() == home {
		t.Errorf("stream still on drained node %q", home)
	}
	if sum.Digest != ref.Digest() {
		t.Error("migrated stream digest diverges from sequential run")
	}
	if sum.Frames != len(seq.Frames) {
		t.Errorf("frames = %d, want %d", sum.Frames, len(seq.Frames))
	}
	if r.Metrics().Migrations != 1 {
		t.Errorf("router migrations = %d, want 1", r.Metrics().Migrations)
	}
}

// TestAdmissionFallthrough fills the fleet one budgeted slot at a time: the
// second stream must bounce off the first-choice node onto the peer, and a
// third must surface the admission rejection end-to-end.
func TestAdmissionFallthrough(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 2)
	r, _ := startFleet(t, []NodeConfig{
		{Name: "a", MaxSessions: 1},
		{Name: "b", MaxSessions: 1},
	})

	st1, err := r.Open("s1", cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r.Open("s2", cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Node() == st2.Node() {
		t.Errorf("both streams on %q despite MaxSessions=1", st1.Node())
	}
	if _, err := r.Open("s3", cfg, seq.Intr); !errors.Is(err, ErrAdmission) {
		t.Errorf("third open: err = %v, want ErrAdmission", err)
	}
	for _, st := range []*Stream{st1, st2} {
		for _, f := range seq.Frames {
			if err := st.Push(f); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Slots freed: a new stream is admitted again.
	st4, err := r.Open("s4", cfg, seq.Intr)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if _, err := st4.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRejectsNewStreams verifies the drain half of admission: a fully
// draining fleet admits nothing, with ErrDraining surfacing through Open.
func TestDrainRejectsNewStreams(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 2)
	r, _ := startFleet(t, []NodeConfig{{Name: "a"}})
	if err := r.Drain("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("s", cfg, seq.Intr); err == nil {
		t.Fatal("open on fully draining fleet succeeded")
	}
	sts, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || !sts[0].Draining || sts[0].Name != "a" {
		t.Errorf("stats = %+v", sts)
	}
}

// TestStatsReflectLoad checks the self-report the placement policy runs on.
func TestStatsReflectLoad(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 2)
	r, nodes := startFleet(t, []NodeConfig{{Name: "a", MaxSessions: 4, MaxResidentBytes: 1 << 30}})
	st, err := r.Open("s", cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	got := nodes[0].Stats()
	if got.OpenSessions != 1 {
		t.Errorf("OpenSessions = %d, want 1", got.OpenSessions)
	}
	if got.MaxSessions != 4 || got.MaxResidentBytes != 1<<30 {
		t.Errorf("budgets not echoed: %+v", got)
	}
	over, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != 1 || over[0].OpenSessions != 1 {
		t.Errorf("wire stats = %+v", over)
	}
	for _, f := range seq.Frames {
		if err := st.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Frames != len(seq.Frames) {
		t.Errorf("frames = %d, want %d", sum.Frames, len(seq.Frames))
	}
	if got := nodes[0].Stats(); got.OpenSessions != 0 {
		t.Errorf("OpenSessions after close = %d, want 0", got.OpenSessions)
	}
}

// TestNodeCloseMidPushNoGoroutineLeak closes a node while a producer is
// mid-stream: Close must stop accepting, let the in-flight handler finish
// its one request, and join every goroutine — nothing may leak and nothing
// may race (the suite runs under -race via make verify).
func TestNodeCloseMidPushNoGoroutineLeak(t *testing.T) {
	cfg := fastCfg()
	seq := testSeq(t, "Desk", 30)
	before := runtime.NumGoroutine()

	n := NewNode(NodeConfig{Name: "a"})
	addr, err := n.Start("")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter()
	if err := r.AddNode(addr); err != nil {
		t.Fatal(err)
	}
	st, err := r.Open(seq.Name, cfg, seq.Intr)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	//ags:allow(goroutine-site, test fan-out: one producer pushing against the closing node, joined via done)
	go func() {
		for i, f := range seq.Frames {
			if i == 1 {
				close(started) // at least one push acked; the rest race Close
			}
			if err := st.Push(f); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	<-started
	if err := n.Close(); err != nil {
		t.Fatalf("node close: %v", err)
	}
	if perr := <-done; perr == nil {
		t.Fatal("all 30 pushes succeeded despite the node closing mid-stream")
	} else if !errors.Is(perr, ErrNodeLost) {
		t.Fatalf("push against closing node: %v, want ErrNodeLost", perr)
	}
	r.Close()

	// Every node goroutine (accept loop, conn handlers, session workers)
	// must be joined; give the runtime a moment to retire them.
	leaked := 0
	for i := 0; i < 100; i++ {
		if leaked = runtime.NumGoroutine() - before; leaked <= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 0 {
		t.Errorf("%d goroutine(s) leaked after Node.Close (%d before, %d after)",
			leaked, before, runtime.NumGoroutine())
	}
}

// TestWireCodecsMatchSnapshotEncoding pins the transport encodings to the
// snapshot codec: a config and frame round-tripped through the slam wire
// helpers come back bit-identical, which is what the digest equivalence
// ultimately rests on.
func TestWireCodecsMatchSnapshotEncoding(t *testing.T) {
	cfg := fastCfg()
	got, err := slam.DecodeConfig(slam.AppendConfig(nil, &cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatal("config wire round-trip changed fields")
	}
	seq := testSeq(t, "Desk", 1)
	in, err := slam.DecodeIntrinsics(slam.AppendIntrinsics(nil, &seq.Intr))
	if err != nil {
		t.Fatal(err)
	}
	if in != seq.Intr {
		t.Fatal("intrinsics wire round-trip changed fields")
	}
	f := seq.Frames[0]
	rt, err := slam.DecodeFrame(slam.AppendFrame(nil, f))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Index != f.Index || rt.GTPose != f.GTPose ||
		rt.Color.W != f.Color.W || rt.Color.H != f.Color.H ||
		!slices.Equal(rt.Color.Pix, f.Color.Pix) ||
		!slices.Equal(rt.Depth.D, f.Depth.D) {
		t.Fatal("frame wire round-trip changed fields")
	}
}
