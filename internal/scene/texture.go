// Package scene generates the synthetic RGB-D sequences that stand in for
// the paper's TUM-RGBD, Replica and ScanNet++ recordings (see DESIGN.md,
// substitution #2). A small ray tracer renders procedurally textured worlds
// along scripted camera trajectories whose motion statistics mimic each named
// sequence, producing ground-truth color, depth and poses for the SLAM
// pipeline and its evaluation.
package scene

import (
	"math"

	"ags/internal/vecmath"
)

// Texture maps a surface point to an RGB albedo.
type Texture func(p vecmath.Vec3) vecmath.Vec3

// Solid returns a constant-color texture.
func Solid(c vecmath.Vec3) Texture {
	return func(vecmath.Vec3) vecmath.Vec3 { return c }
}

// Checker returns a two-color checkerboard with the given cell size.
func Checker(a, b vecmath.Vec3, cell float64) Texture {
	return func(p vecmath.Vec3) vecmath.Vec3 {
		ix := int(math.Floor(p.X/cell)) + int(math.Floor(p.Y/cell)) + int(math.Floor(p.Z/cell))
		if ix&1 == 0 {
			return a
		}
		return b
	}
}

// Stripes returns stripes of the two colors along the given axis (0=X,1=Y,2=Z).
func Stripes(a, b vecmath.Vec3, width float64, axis int) Texture {
	return func(p vecmath.Vec3) vecmath.Vec3 {
		var v float64
		switch axis {
		case 0:
			v = p.X
		case 1:
			v = p.Y
		default:
			v = p.Z
		}
		if int(math.Floor(v/width))&1 == 0 {
			return a
		}
		return b
	}
}

// hash3 is a deterministic integer-lattice hash to [0,1).
func hash3(x, y, z int64) float64 {
	h := uint64(x)*0x9E3779B185EBCA87 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(z)*0x165667B19E3779F9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h%1<<20) / (1 << 20)
}

// valueNoise is trilinear value noise on an integer lattice, in [0,1).
func valueNoise(p vecmath.Vec3) float64 {
	x0 := math.Floor(p.X)
	y0 := math.Floor(p.Y)
	z0 := math.Floor(p.Z)
	fx, fy, fz := p.X-x0, p.Y-y0, p.Z-z0
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	sz := fz * fz * (3 - 2*fz)
	ix, iy, iz := int64(x0), int64(y0), int64(z0)
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	c00 := lerp(hash3(ix, iy, iz), hash3(ix+1, iy, iz), sx)
	c10 := lerp(hash3(ix, iy+1, iz), hash3(ix+1, iy+1, iz), sx)
	c01 := lerp(hash3(ix, iy, iz+1), hash3(ix+1, iy, iz+1), sx)
	c11 := lerp(hash3(ix, iy+1, iz+1), hash3(ix+1, iy+1, iz+1), sx)
	return lerp(lerp(c00, c10, sy), lerp(c01, c11, sy), sz)
}

// Noise returns a texture that modulates base color by value noise at the
// given spatial frequency; amount in [0,1] controls modulation depth. The
// detail is what gives the photometric aligner and the CODEC's SAD search
// gradients to lock onto.
func Noise(base vecmath.Vec3, freq, amount float64) Texture {
	return func(p vecmath.Vec3) vecmath.Vec3 {
		n := valueNoise(p.Scale(freq))
		s := 1 - amount + amount*n
		return base.Scale(s)
	}
}

// Mix multiplies two textures component-wise.
func Mix(a, b Texture) Texture {
	return func(p vecmath.Vec3) vecmath.Vec3 { return a(p).Mul(b(p)) }
}
