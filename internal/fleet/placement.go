package fleet

import (
	"fmt"
	"slices"
)

// Placement policy: streams are keyed by their frame size class (W x H) —
// the same key the slam render-context pools are bucketed by — and mapped
// onto nodes with a consistent-hash ring, so streams of one size class
// gravitate to the same host and find warm, right-sized contexts there
// (Splatonic's observation: the render hot path dominates wall clock, so
// placement is a cache-warmth problem before it is a balancing problem).
// Pure hashing ignores load, so the ring order gets one correction: when the
// ring-primary node is strictly busier than the runner-up — by open-session
// count, then by pool resident bytes — the two swap. Everything is a pure
// function of the reported NodeLoads, so placement is deterministic given
// the same fleet view, and the router's fallback walk (admission rejections
// skip to the next candidate) is just the returned order.

// ringReplicas is how many virtual points each node contributes to the hash
// ring. More points smooth the class→node distribution; 16 is plenty for
// single-digit fleets.
const ringReplicas = 16

// NodeLoad is the placement-relevant view of one node, distilled from its
// reported NodeStats.
type NodeLoad struct {
	Name          string
	OpenSessions  int
	ResidentBytes int64
	Draining      bool
}

// loadOf distills the placement inputs from a stats report.
func loadOf(st NodeStats) NodeLoad {
	return NodeLoad{
		Name:          st.Name,
		OpenSessions:  st.OpenSessions,
		ResidentBytes: st.Pool.ResidentBytes,
		Draining:      st.Draining,
	}
}

// sizeClassKey is the ring lookup key for a frame size class.
func sizeClassKey(w, h int) string { return fmt.Sprintf("%dx%d", w, h) }

// fnv1a is the 64-bit FNV-1a hash — stdlib's hash/fnv without the
// hash.Hash allocation, since the ring rebuilds per placement decision.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Candidates returns indices into loads in placement-preference order for a
// stream of the given frame size class: the consistent-hash ring walk from
// the class key, with the least-loaded tie-break applied to the first two
// candidates, and draining nodes excluded entirely. An empty result means no
// node can take the stream.
func Candidates(w, h int, loads []NodeLoad) []int {
	type point struct {
		hash uint64
		idx  int
	}
	var ring []point
	for i, l := range loads {
		if l.Draining {
			continue
		}
		for r := 0; r < ringReplicas; r++ {
			ring = append(ring, point{hash: fnv1a(fmt.Sprintf("%s#%d", l.Name, r)), idx: i})
		}
	}
	if len(ring) == 0 {
		return nil
	}
	slices.SortFunc(ring, func(a, b point) int {
		if a.hash != b.hash {
			if a.hash < b.hash {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})

	// Walk clockwise from the key's position, collecting each node the
	// first time one of its points appears.
	key := fnv1a(sizeClassKey(w, h))
	start, _ := slices.BinarySearchFunc(ring, key, func(p point, k uint64) int {
		if p.hash < k {
			return -1
		}
		if p.hash > k {
			return 1
		}
		return 0
	})
	seen := make(map[int]bool, len(loads))
	var order []int
	for i := 0; i < len(ring); i++ {
		p := ring[(start+i)%len(ring)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}

	// Least-loaded tie-break between the primary and the runner-up: hashing
	// concentrates a size class on one host, which is the point (warm
	// pools) — until that host is measurably busier than the next one.
	if len(order) >= 2 && lessLoaded(loads[order[1]], loads[order[0]]) {
		order[0], order[1] = order[1], order[0]
	}
	return order
}

// lessLoaded reports whether a is strictly less loaded than b: fewer open
// sessions first, then fewer pool-resident bytes. Equal load is not "less",
// so ring order wins ties.
func lessLoaded(a, b NodeLoad) bool {
	if a.OpenSessions != b.OpenSessions {
		return a.OpenSessions < b.OpenSessions
	}
	return a.ResidentBytes < b.ResidentBytes
}
