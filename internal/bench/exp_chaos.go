package bench

import (
	"fmt"
	"io"
	"net"

	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/scene"
)

func expPerfChaos() Experiment {
	return expDef{
		id: "perf-chaos", paper: "Robustness: fault-injected fleet — unclean node kill + mid-frame sever, checkpoint-replay recovery, digest equality",
		needs:  specsFor(serveSeqs(), VarAGS),
		render: (*Suite).PerfChaos,
	}
}

// PerfChaos is the fleet's robustness gate: the same loopback fleet as
// perf-fleet, but served through deterministic fault injectors
// (fleet/chaos). Row one is the undisturbed baseline; row two severs one
// stream's connection mid-frame at a seeded truncation offset; row three
// kills a whole node — listener and every connection — mid push-reply.
// Streams run with checkpoint-replay recovery armed, and every row asserts,
// stream by stream, that the Result digest is bitwise identical to the
// cached sequential slam.Run — recovery from unclean death may not move a
// single output bit. The fault rows additionally gate that at least one
// recovery with at least one replayed frame actually happened (so the gate
// cannot rot into vacuity), and that a kill evicts exactly one node from the
// router's ring while a sever evicts none. Time-to-recover is the wall time
// of the push that absorbed the recovery (re-place, restore, replay).
func (s *Suite) PerfChaos(w io.Writer) error {
	names := serveSeqs()
	type ref struct {
		seq    *scene.Sequence
		digest [32]byte
	}
	refs := make([]ref, len(names))
	frames := 0
	for i, name := range names {
		b, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		refs[i] = ref{seq: b.Seq, digest: b.Result.Digest()}
		frames += len(b.Seq.Frames)
	}
	cfg := s.slamConfig(VarAGS, nil)
	const checkpointEvery = 2

	t := NewTable(fmt.Sprintf("Robustness: fleet under injected faults (%dx%d, %d frames x %d streams, 2 nodes, checkpoint every %d)",
		s.Cfg.Width, s.Cfg.Height, s.Cfg.Frames, len(names), checkpointEvery),
		"Scenario", "Wall ms", "Frames/s", "Recoveries", "Replayed", "Evicted", "Recover ms")

	scenario := func(label, mode string) error {
		type member struct {
			node *fleet.Node
			inj  *chaos.Injector
			name string
		}
		members := make([]member, 0, 2)
		r := fleet.NewRouter()
		for i, name := range []string{"node-a", "node-b"} {
			in := chaos.New(chaos.Config{Seed: 0xC4A05 + uint64(i)})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("bench: perf-chaos: %w", err)
			}
			n := fleet.NewNode(fleet.NodeConfig{Name: name})
			addr, err := n.StartOn(in.Listen(ln))
			if err != nil {
				return fmt.Errorf("bench: perf-chaos: %w", err)
			}
			members = append(members, member{node: n, inj: in, name: name})
			if err := r.AddNode(addr); err != nil {
				return fmt.Errorf("bench: perf-chaos: %w", err)
			}
		}
		injOf := func(nodeName string) *chaos.Injector {
			for _, m := range members {
				if m.name == nodeName {
					return m.inj
				}
			}
			return nil
		}

		// One goroutine, round-robin pushes: a deterministic interleave that
		// makes "the node's next write" a known reply, so the armed fault
		// lands on the same message every run.
		streams := make([]*fleet.Stream, len(refs))
		for i, rf := range refs {
			st, err := r.OpenWith(rf.seq.Name, cfg, rf.seq.Intr,
				fleet.StreamOptions{CheckpointEvery: checkpointEvery})
			if err != nil {
				return fmt.Errorf("bench: perf-chaos: open %s: %w", rf.seq.Name, err)
			}
			streams[i] = st
		}
		half := s.Cfg.Frames / 2
		recoverMS := 0.0
		start := wallNow()
		for f := 0; f < s.Cfg.Frames; f++ {
			if f == half {
				switch mode {
				case "sever":
					injOf(streams[0].Node()).ArmSever(1)
				case "kill":
					injOf(streams[0].Node()).ArmKill(1)
				}
			}
			for i, rf := range refs {
				if f >= len(rf.seq.Frames) {
					continue
				}
				recBefore := streams[i].Recoveries()
				pushStart := wallNow()
				if err := streams[i].Push(rf.seq.Frames[f]); err != nil {
					return fmt.Errorf("bench: perf-chaos: push %s: %w", rf.seq.Name, err)
				}
				if streams[i].Recoveries() > recBefore {
					if ms := float64(wallSince(pushStart).Nanoseconds()) / 1e6; ms > recoverMS {
						recoverMS = ms
					}
				}
			}
		}
		sums := make([]fleet.ResultSummary, len(refs))
		for i, st := range streams {
			sum, err := st.Close()
			if err != nil {
				return fmt.Errorf("bench: perf-chaos: close %s: %w", refs[i].seq.Name, err)
			}
			sums[i] = sum
		}
		wall := wallSince(start)

		for i, rf := range refs {
			if sums[i].Digest != rf.digest {
				return fmt.Errorf("bench: perf-chaos: stream %s (%s) diverged from sequential run", rf.seq.Name, label)
			}
			if sums[i].Frames != len(rf.seq.Frames) {
				return fmt.Errorf("bench: perf-chaos: stream %s: %d frames, want %d", rf.seq.Name, sums[i].Frames, len(rf.seq.Frames))
			}
		}
		m := r.Metrics()
		evicted := 0
		for _, h := range r.CheckHealth() {
			if h.Evicted {
				evicted++
			}
		}
		switch mode {
		case "steady":
			if m.Recoveries != 0 || evicted != 0 {
				return fmt.Errorf("bench: perf-chaos: steady row saw %d recoveries, %d evictions", m.Recoveries, evicted)
			}
		case "sever":
			if m.Recoveries < 1 || m.ReplayedFrames < 1 {
				return fmt.Errorf("bench: perf-chaos: sever row recorded no recovery (%d) or no replayed frame (%d)", m.Recoveries, m.ReplayedFrames)
			}
			if evicted != 0 {
				return fmt.Errorf("bench: perf-chaos: sever row evicted %d node(s); a single-conn sever must evict none", evicted)
			}
		case "kill":
			if m.Recoveries < 1 || m.ReplayedFrames < 1 {
				return fmt.Errorf("bench: perf-chaos: kill row recorded no recovery (%d) or no replayed frame (%d)", m.Recoveries, m.ReplayedFrames)
			}
			if evicted != 1 {
				return fmt.Errorf("bench: perf-chaos: kill row evicted %d node(s), want exactly 1", evicted)
			}
		}

		r.Close()
		for _, mb := range members {
			if err := mb.node.Close(); err != nil {
				return fmt.Errorf("bench: perf-chaos: node close: %w", err)
			}
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
			fmt.Sprintf("%.2f", float64(frames)/wall.Seconds()),
			m.Recoveries,
			m.ReplayedFrames,
			evicted,
			fmt.Sprintf("%.1f", recoverMS))
		return nil
	}

	if err := scenario("steady (injector pass-through)", "steady"); err != nil {
		return err
	}
	if err := scenario("sever conn mid-frame", "sever"); err != nil {
		return err
	}
	if err := scenario("kill node mid-stream", "kill"); err != nil {
		return err
	}

	t.AddNote("every stream's digest asserted bitwise identical to the cached sequential slam.Run — recovery from unclean node death moves no output bit")
	t.AddNote("faults are write-indexed and seeded (splitmix64 truncation offsets): the same message dies at the same byte every run")
	t.AddNote("fault rows additionally gate >=1 recovery with >=1 replayed frame; kill must evict exactly one node from the ring, sever none")
	t.Write(w)
	return nil
}
