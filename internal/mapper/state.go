package mapper

import (
	"math/bits"

	"ags/internal/gauss"
)

// prng is the mapper's keyframe-sampling random source: splitmix64 with
// Lemire's multiply-shift range reduction. Its entire state is one uint64, so
// session snapshots serialize it exactly and a restored mapper draws the same
// keyframe sequence the uninterrupted run would have — something the stdlib
// sources cannot offer without reflection. Statistical quality far exceeds
// what sampling one keyframe index per third mapping iteration needs.
type prng struct{ state uint64 }

// newPRNG returns a generator seeded deterministically from seed.
func newPRNG(seed int64) *prng { return &prng{state: uint64(seed)} }

// next advances the splitmix64 state and returns the next 64-bit output.
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n) for n >= 1.
func (p *prng) Intn(n int) int {
	hi, _ := bits.Mul64(p.next(), uint64(n))
	return int(hi)
}

// OptGroupState is one Adam group's serialized moment state.
type OptGroupState struct {
	Name string
	Step int
	M, V []float64
}

// State is everything a Mapper carries between frames, exposed with exported
// fields so package slam can serialize it into a session snapshot. Slices are
// shared with the mapper on export and adopted on import — snapshot code
// encodes or decodes them immediately and never aliases them afterwards.
type State struct {
	Cloud      *gauss.Cloud
	NonContrib []int32
	Contrib    []int32
	SkipSet    []bool
	Keyframes  []Keyframe
	RNG        uint64
	Opt        []OptGroupState // sorted by group name
}

// ExportState captures the mapper's inter-frame state for a snapshot.
func (m *Mapper) ExportState() State {
	st := State{
		Cloud:      m.cloud,
		NonContrib: m.nonContrib,
		Contrib:    m.contrib,
		SkipSet:    m.skipSet,
		Keyframes:  m.keyframes,
		RNG:        m.rng.state,
	}
	for _, name := range m.opt.GroupNames() {
		mm, vv, step, ok := m.opt.GroupState(name)
		if !ok {
			continue
		}
		st.Opt = append(st.Opt, OptGroupState{Name: name, Step: step, M: mm, V: vv})
	}
	return st
}

// ImportState restores a snapshot: the inverse of ExportState, over a mapper
// freshly built with the same Config. The optimizer is rebuilt from the
// config's learning rates with the snapshot's moments and step counters, so
// the first post-restore mapping iteration steps exactly as the uninterrupted
// run's would have.
func (m *Mapper) ImportState(st State) error {
	if err := st.Cloud.Validate(); err != nil {
		return err
	}
	m.cloud = st.Cloud
	m.nonContrib = st.NonContrib
	m.contrib = st.Contrib
	m.skipSet = st.SkipSet
	m.keyframes = st.Keyframes
	m.rng = &prng{state: st.RNG}
	m.opt = newOpt(m.Cfg)
	for _, g := range st.Opt {
		m.opt.SetGroupState(g.Name, g.M, g.V, g.Step)
	}
	return nil
}
