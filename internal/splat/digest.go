package splat

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"ags/internal/vecmath"
)

// Digest returns a SHA-256 over every output buffer the determinism contract
// covers: color, depth, silhouette, transmittance, per-pixel workload
// counters, the contribution log, and the AlphaOps/BlendOps totals. Two
// Results are byte-identical exactly when their digests are equal, so tests
// and benches compare digests instead of walking buffers.
func (r *Result) Digest() [32]byte {
	h := sha256.New()
	hashInt(h, r.Color.W)
	hashInt(h, r.Color.H)
	hashVec3s(h, r.Color.Pix)
	hashF64s(h, r.Depth.D)
	hashF64s(h, r.Silhouette)
	hashF64s(h, r.FinalT)
	hashI32s(h, r.PerPixelAlpha)
	hashI32s(h, r.PerPixelBlend)
	hashI32s(h, r.NonContrib)
	hashI32s(h, r.Touched)
	hashInt(h, int(r.AlphaOps))
	hashInt(h, int(r.BlendOps))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Digest returns a SHA-256 over the backward pass's outputs: all gradient
// buffers, the pose twist, the loss, and the masked pixel count.
func (g *Grads) Digest() [32]byte {
	h := sha256.New()
	hashVec3s(h, g.Mean)
	hashVec3s(h, g.Color)
	hashF64s(h, g.Logit)
	hashF64s(h, g.LogScale)
	hashF64(h, g.Pose.V.X)
	hashF64(h, g.Pose.V.Y)
	hashF64(h, g.Pose.V.Z)
	hashF64(h, g.Pose.W.X)
	hashF64(h, g.Pose.W.Y)
	hashF64(h, g.Pose.W.Z)
	hashF64(h, g.Loss)
	hashInt(h, g.Pixels)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func hashInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashF64(h hash.Hash, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func hashF64s(h hash.Hash, v []float64) {
	hashInt(h, len(v))
	for _, x := range v {
		hashF64(h, x)
	}
}

func hashVec3s(h hash.Hash, v []vecmath.Vec3) {
	hashInt(h, len(v))
	for i := range v {
		hashF64(h, v[i].X)
		hashF64(h, v[i].Y)
		hashF64(h, v[i].Z)
	}
}

func hashI32s(h hash.Hash, v []int32) {
	hashInt(h, len(v))
	var b [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		h.Write(b[:])
	}
}
