package splat

import (
	"math"
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

// LossConfig selects the training objective (SplaTAM-style weighted L1 on
// color and depth, optionally restricted to well-observed pixels).
type LossConfig struct {
	ColorWeight float64
	DepthWeight float64
	// UseSilhouetteMask restricts the loss to pixels whose rendered
	// silhouette exceeds SilThreshold — SplaTAM's tracking mask, which keeps
	// unmapped regions from dragging the pose.
	UseSilhouetteMask bool
	SilThreshold      float64
	// NormalizeDepth divides the rendered depth by the silhouette before the
	// depth loss. Raw alpha-weighted depth is biased low wherever the
	// accumulated alpha is below 1, which systematically drags tracking
	// backward; normalization removes the bias.
	NormalizeDepth bool
}

// DefaultMappingLoss returns the loss used for map optimization.
func DefaultMappingLoss() LossConfig {
	return LossConfig{ColorWeight: 0.5, DepthWeight: 1.0, NormalizeDepth: true}
}

// DefaultTrackingLoss returns the silhouette-masked loss used for tracking.
func DefaultTrackingLoss() LossConfig {
	return LossConfig{ColorWeight: 0.5, DepthWeight: 1.0, UseSilhouetteMask: true, SilThreshold: 0.99, NormalizeDepth: true}
}

// Grads holds the backward-pass outputs. Gaussian-parameter slices are
// indexed by stable Gaussian ID.
type Grads struct {
	Mean     []vecmath.Vec3
	Color    []vecmath.Vec3
	Logit    []float64
	LogScale []float64 // isotropic: apply to all three LogScale axes
	Pose     vecmath.Twist

	Loss   float64 // total weighted L1 loss over masked pixels
	Pixels int     // number of pixels contributing to the loss
}

// BackwardOptions selects which gradients the pass computes.
type BackwardOptions struct {
	GaussianGrads bool // color/opacity/mean/scale (mapping)
	PoseGrads     bool // camera twist (tracking)
	Workers       int
	// NoPool makes the one-shot Backward allocate its scratch context
	// (which embeds the partial-reduction arena) fresh instead of drawing
	// it from the package pool. Gradients are bitwise identical either way;
	// the bench perf-render experiment uses it to report allocs/op with vs
	// without pooling. Ignored by (*RenderContext).Backward.
	NoPool bool
}

// contribution is one blending step recorded during the per-pixel forward
// replay, consumed in reverse order for the suffix-sum alpha gradients.
type contribution struct {
	si    int32 // index into res.Splats
	li    int32 // position in the tile's Gaussian table (per-tile grad slot)
	alpha float64
	g     float64
	t     float64 // transmittance *before* this Gaussian
}

// Backward computes the loss and its gradients for the rendered result res
// against the target frame (step 4 of Fig. 2). It replays each pixel's
// blending sequence front-to-back, then walks it back-to-front to form the
// suffix terms of d(pixel)/d(alpha_i). One-shot entry point: the returned
// Grads owns its buffers; hot loops should call (*RenderContext).Backward.
func Backward(cloud *gauss.Cloud, cam camera.Camera, res *Result, target *frame.Frame, loss LossConfig, opts BackwardOptions) *Grads {
	ctx := acquireContext(opts.NoPool)
	ctx.Backward(cloud, cam, res, target, loss, opts)
	g := ctx.detachGrads()
	releaseContext(ctx, opts.NoPool)
	return g
}

// Backward computes loss and gradients into the context's buffers. res may
// be any Result (from this context, another, or a one-shot Render); it is
// only read, never written — even a Result aliasing this same context stays
// valid, per the package aliasing rules. The returned Grads aliases the
// context and is valid until its next Backward or Reset call. A nil context
// falls back to the one-shot package function.
//
//ags:hotpath
func (ctx *RenderContext) Backward(cloud *gauss.Cloud, cam camera.Camera, res *Result, target *frame.Frame, loss LossConfig, opts BackwardOptions) *Grads {
	if ctx == nil {
		return Backward(cloud, cam, res, target, loss, opts)
	}
	w, h := cam.Intr.W, cam.Intr.H
	grads := &ctx.grads
	if opts.GaussianGrads {
		grads.Mean = zeroed(grads.Mean, cloud.Len())
		grads.Color = zeroed(grads.Color, cloud.Len())
		grads.Logit = zeroed(grads.Logit, cloud.Len())
		grads.LogScale = zeroed(grads.LogScale, cloud.Len())
	} else {
		grads.Mean, grads.Color, grads.Logit, grads.LogScale = nil, nil, nil, nil
	}
	grads.Pose = vecmath.Twist{}
	grads.Loss = 0

	// Count masked pixels first so gradients are mean- rather than
	// sum-normalized (stable learning rates across resolutions).
	masked := 0
	for pix := 0; pix < w*h; pix++ {
		if !loss.UseSilhouetteMask || res.Silhouette[pix] > loss.SilThreshold {
			masked++
		}
	}
	grads.Pixels = masked
	if masked == 0 {
		return grads
	}
	norm := 1 / float64(masked)

	// Every float reduction that crosses a tile boundary (loss, pose twist,
	// per-Gaussian gradients) is accumulated into per-tile partials and
	// merged serially in ascending tile order below. The reduction tree is
	// therefore fixed — raster order within a tile, tile order across tiles —
	// and independent of how tiles are sharded across workers, so the
	// gradients are byte-identical for every Workers value.
	tiles := res.Tiles
	nt := tiles.NumTiles()
	ctx.ranges = shardRangesInto(ctx.ranges[:0], nt, opts.Workers)
	ranges := ctx.ranges

	// Per-tile gradient slots live in the arena's flat buffers indexed by
	// the tile's CSR offset: entry j of tile t is at Offsets[t]+j. A tile
	// only ever touches Gaussians in its own table, so this is the sparse
	// footprint of the tile's gradient contribution. The arena is embedded
	// in the context, reusing one allocation across mapping iterations.
	ar := &ctx.arena
	ar.prepare(nt, tiles.TotalEntries(), opts.GaussianGrads)

	if cap(ctx.bwScratch) < len(ranges) {
		ctx.bwScratch = append(ctx.bwScratch[:cap(ctx.bwScratch)],
			make([][]contribution, len(ranges)-cap(ctx.bwScratch))...)
	}
	ctx.bwScratch = ctx.bwScratch[:len(ranges)]

	if len(ranges) == 1 {
		ctx.backwardShard(cloud, cam, res, target, loss, opts, ranges[0], norm, 0)
	} else {
		var wg sync.WaitGroup
		for wi := range ranges {
			wg.Add(1)
			//ags:allow(hotalloc, worker closures exist only on the multi-worker path; the Workers=1 path above is the one the perf-render allocation gate measures allocation-free)
			go func(wi int) {
				defer wg.Done()
				ctx.backwardShard(cloud, cam, res, target, loss, opts, ranges[wi], norm, wi)
			}(wi)
		}
		wg.Wait()
	}

	// Ordered merge: tile 0, 1, ... regardless of which worker produced each
	// partial. Within a tile, entries are added in table order.
	for tileIdx := 0; tileIdx < nt; tileIdx++ {
		grads.Loss += ar.lossByTile[tileIdx]
		grads.Pose = grads.Pose.Add(ar.poseByTile[tileIdx])
		if opts.GaussianGrads {
			base := int(tiles.Offsets[tileIdx])
			for j, si := range tiles.ListAt(tileIdx) {
				id := res.Splats[si].ID
				grads.Mean[id] = grads.Mean[id].Add(ar.mean[base+j])
				grads.Color[id] = grads.Color[id].Add(ar.color[base+j])
				grads.Logit[id] += ar.logit[base+j]
				grads.LogScale[id] += ar.logScale[base+j]
			}
		}
	}
	return grads
}

// backwardShard walks one worker's contiguous tile span in ascending order,
// accumulating per-tile partials into the context's arena.
//
//ags:hotpath
func (ctx *RenderContext) backwardShard(cloud *gauss.Cloud, cam camera.Camera, res *Result, target *frame.Frame,
	loss LossConfig, opts BackwardOptions, span [2]int, norm float64, wi int) {

	ar := &ctx.arena
	tiles := res.Tiles
	// The replay scratch header is copied to a local and stored back once:
	// workers' headers in ctx.bwScratch are adjacent, and rewriting them per
	// pixel through the pointer would false-share cache lines.
	scratch := ctx.bwScratch[wi]
	for tileIdx := span[0]; tileIdx < span[1]; tileIdx++ {
		var tMean, tColor []vecmath.Vec3
		var tLogit, tLogScale []float64
		if opts.GaussianGrads {
			lo, hi := tiles.Offsets[tileIdx], tiles.Offsets[tileIdx+1]
			tMean, tColor = ar.mean[lo:hi], ar.color[lo:hi]
			tLogit, tLogScale = ar.logit[lo:hi], ar.logScale[lo:hi]
		}
		backwardOneTile(cloud, cam, res, target, loss, opts, tileIdx, norm,
			tMean, tColor, tLogit, tLogScale,
			&ar.poseByTile[tileIdx], &ar.lossByTile[tileIdx], &scratch)
	}
	ctx.bwScratch[wi] = scratch
}

// backwardOneTile accumulates one tile's partial reductions. The Gaussian
// gradient slices are per-tile slots indexed by position in the tile's
// Gaussian table (NOT by Gaussian ID); Backward folds them into the per-ID
// output buffers in fixed tile order.
//
//ags:hotpath
func backwardOneTile(cloud *gauss.Cloud, cam camera.Camera, res *Result, target *frame.Frame,
	loss LossConfig, opts BackwardOptions, tileIdx int, norm float64,
	gMean, gColor []vecmath.Vec3, gLogit, gLogScale []float64,
	gPose *vecmath.Twist, lossAcc *float64, scratch *[]contribution) {

	w, h := cam.Intr.W, cam.Intr.H
	tiles := res.Tiles
	splats := res.Splats
	tx := tileIdx % tiles.TW
	ty := tileIdx / tiles.TW
	list := tiles.ListAt(tileIdx)
	x0, y0 := tx*TileSize, ty*TileSize
	x1 := min(x0+TileSize, w)
	y1 := min(y0+TileSize, h)
	viewRT := cam.Pose.R.Mat3().Transpose()

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			pix := y*w + x
			if loss.UseSilhouetteMask && res.Silhouette[pix] <= loss.SilThreshold {
				continue
			}
			px := float64(x) + 0.5
			py := float64(y) + 0.5

			// Loss gradient at this pixel (L1).
			cRend := res.Color.Pix[pix]
			cGT := target.Color.Pix[pix]
			dRend := res.Depth.D[pix]
			sil := res.Silhouette[pix]
			dGT := target.Depth.At(x, y)
			diff := cRend.Sub(cGT)
			*lossAcc += loss.ColorWeight * (math.Abs(diff.X) + math.Abs(diff.Y) + math.Abs(diff.Z)) * norm / 3
			dLdC := vecmath.Vec3{X: sign(diff.X), Y: sign(diff.Y), Z: sign(diff.Z)}.Scale(loss.ColorWeight * norm / 3)
			var dLdD, dLdS float64 // gradients w.r.t. raw depth D and silhouette S
			if dGT > 0 {
				if loss.NormalizeDepth {
					if sil > 1e-6 {
						dHat := dRend / sil
						*lossAcc += loss.DepthWeight * math.Abs(dHat-dGT) * norm
						dLdHat := sign(dHat-dGT) * loss.DepthWeight * norm
						dLdD = dLdHat / sil
						dLdS = -dLdHat * dRend / (sil * sil)
					}
				} else {
					*lossAcc += loss.DepthWeight * math.Abs(dRend-dGT) * norm
					dLdD = sign(dRend-dGT) * loss.DepthWeight * norm
				}
			}

			// Forward replay, recording each blending step.
			contribs := (*scratch)[:0]
			t := 1.0
			for li, si := range list {
				s := &splats[si]
				alpha, g := s.Alpha(px, py)
				if alpha < MinAlpha {
					continue
				}
				contribs = append(contribs, contribution{si: si, li: int32(li), alpha: alpha, g: g, t: t})
				t *= 1 - alpha
				if t < TransmittanceEps {
					break
				}
			}
			*scratch = contribs

			// Reverse walk with suffix accumulators:
			// dC/dalpha_i = T_i*c_i - S_i/(1-alpha_i), S_i = sum_{j>i} T_j*alpha_j*c_j,
			// and analogously for the depth and silhouette channels.
			var sColor vecmath.Vec3
			var sDepth, sSil float64
			for k := len(contribs) - 1; k >= 0; k-- {
				c := &contribs[k]
				s := &splats[c.si]
				wgt := c.t * c.alpha

				// Color gradient: dC/dcolor_i = T_i*alpha_i.
				if opts.GaussianGrads {
					gColor[c.li] = gColor[c.li].Add(dLdC.Scale(wgt))
				}

				inv := 1 / (1 - c.alpha)
				dCdA := s.Color.Scale(c.t).Sub(sColor.Scale(inv))
				dDdA := c.t*s.Depth - sDepth*inv
				dSdA := c.t - sSil*inv
				dLdA := dLdC.Dot(dCdA) + dLdD*dDdA + dLdS*dSdA

				sColor = sColor.Add(s.Color.Scale(wgt))
				sDepth += wgt * s.Depth
				sSil += wgt

				// Through the alpha clamp: no gradient when saturated.
				if c.alpha >= MaxAlpha {
					continue
				}

				if opts.GaussianGrads {
					// d(alpha)/d(logit) = g * sigmoid'(logit).
					gLogit[c.li] += dLdA * c.g * gauss.SigmoidGrad(s.Opacity)
				}

				// d(alpha)/d(mean2D) = alpha * CovInv * (pix - mean2D),
				// through the precomputed conic (== the symmetric inverse
				// covariance, see Splat).
				dx := px - s.Mean2D.X
				dy := py - s.Mean2D.Y
				sdx := s.ConA*dx + s.ConB*dy
				sdy := s.ConB*dx + s.ConC*dy
				dAdMu := vecmath.Vec2{X: c.alpha * sdx, Y: c.alpha * sdy}
				gMu := dAdMu.Scale(dLdA)

				// Into camera space through the projection Jacobian rows
				// (d(mean2D)/d(camPt) = J), plus the depth-render dependence
				// on the camera-space Z.
				gpc := s.DU.Scale(gMu.X).Add(s.DV.Scale(gMu.Y))
				gpc.Z += dLdD * wgt // dD/d(depth_i) = T_i*alpha_i

				if opts.GaussianGrads {
					gMean[c.li] = gMean[c.li].Add(viewRT.MulVec(gpc))
					// Isotropic scale gradient through the 2D covariance:
					// d(alpha)/d(log s) = alpha * s^2 * (CovInv d)^T JJT (CovInv d).
					sc := cloud.At(s.ID).Scale()
					s2 := (sc.X*sc.X + sc.Y*sc.Y + sc.Z*sc.Z) / 3
					quad := sdx*(s.JJT.M00*sdx+s.JJT.M01*sdy) + sdy*(s.JJT.M10*sdx+s.JJT.M11*sdy)
					gLogScale[c.li] += dLdA * c.alpha * s2 * quad
				}
				if opts.PoseGrads {
					gPose.V = gPose.V.Add(gpc)
					gPose.W = gPose.W.Add(s.CamPt.Cross(gpc))
				}
			}
		}
	}
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
