// Package ags_test holds the repository-level benchmarks: one benchmark per
// paper table/figure, each timing the computational kernel that experiment
// stresses (the full row generators live in cmd/ags-bench; these benchmarks
// keep per-iteration cost small so `go test -bench=.` finishes quickly).
package ags_test

import (
	"io"
	"runtime"
	"sync"
	"testing"

	"ags/internal/bench"
	"ags/internal/camera"
	"ags/internal/codec"
	"ags/internal/covis"
	"ags/internal/gauss"
	"ags/internal/hw/area"
	"ags/internal/hw/dram"
	"ags/internal/hw/engines"
	"ags/internal/hw/gpe"
	"ags/internal/hw/platform"
	"ags/internal/metrics"
	"ags/internal/nnlite"
	"ags/internal/scene"
	"ags/internal/slam"
	"ags/internal/splat"
	"ags/internal/tracker"
	"ags/internal/vecmath"
)

// Shared fixtures, built once.
var (
	fixOnce  sync.Once
	fixSeq   *scene.Sequence
	fixCloud *gauss.Cloud
	fixCam   camera.Camera
	fixRes   *splat.Result
	fixTrace *sharedTraces
)

type sharedTraces struct {
	base *slam.Result
	ags  *slam.Result
}

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixSeq = scene.MustGenerate("Desk", scene.Config{Width: 64, Height: 48, Frames: 8, Seed: 1})
		cfg := slam.DefaultConfig(64, 48)
		cfg.TrackIters = 10
		cfg.Mapper.MapIters = 5
		cfg.Mapper.DensifyStride = 2
		base, err := slam.Run(cfg, fixSeq)
		if err != nil {
			panic(err)
		}
		acfg := cfg
		acfg.EnableMAT, acfg.EnableGCM = true, true
		ags, err := slam.Run(acfg, fixSeq)
		if err != nil {
			panic(err)
		}
		fixTrace = &sharedTraces{base: base, ags: ags}
		fixCloud = base.Cloud
		fixCam = camera.Camera{Intr: fixSeq.Intr, Pose: base.Poses[4]}
		fixRes = splat.Render(fixCloud, fixCam, splat.Options{Workers: 1})
	})
}

// BenchmarkTable1Categories times one end-to-end frame step of the AGS
// pipeline — the per-frame latency Table 1 compares across SLAM categories.
func BenchmarkTable1Categories(b *testing.B) {
	fixtures(b)
	cfg := slam.AGSConfig(64, 48)
	cfg.Mapper.DensifyStride = 2
	cfg.Mapper.MapIters = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := slam.New(cfg, fixSeq.Intr)
		for f := 0; f < 2; f++ {
			if err := sys.ProcessFrame(fixSeq.Frames[f]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3Breakdown times the baseline tracking kernel whose dominance
// Fig. 3 profiles: one render+pose-backward iteration.
func BenchmarkFig3Breakdown(b *testing.B) {
	fixtures(b)
	lc := splat.DefaultTrackingLoss()
	target := fixSeq.Frames[4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := splat.Render(fixCloud, fixCam, splat.Options{Workers: 1})
		splat.Backward(fixCloud, fixCam, res, target, lc, splat.BackwardOptions{PoseGrads: true, Workers: 1})
	}
}

// BenchmarkFig3BreakdownContexted is BenchmarkFig3Breakdown through a
// frame-persistent RenderContext — the allocation-free steady state the
// tracker's refinement loop actually runs (compare allocs/op against the
// one-shot benchmark above).
func BenchmarkFig3BreakdownContexted(b *testing.B) {
	fixtures(b)
	lc := splat.DefaultTrackingLoss()
	target := fixSeq.Frames[4]
	ctx := splat.NewRenderContext()
	res := ctx.Render(fixCloud, fixCam, splat.Options{Workers: 1})
	ctx.Backward(fixCloud, fixCam, res, target, lc, splat.BackwardOptions{PoseGrads: true, Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ctx.Render(fixCloud, fixCam, splat.Options{Workers: 1})
		ctx.Backward(fixCloud, fixCam, res, target, lc, splat.BackwardOptions{PoseGrads: true, Workers: 1})
	}
}

// BenchmarkFig4IterSweep times one fine-grained refinement iteration (the
// unit Fig. 4 sweeps).
func BenchmarkFig4IterSweep(b *testing.B) {
	fixtures(b)
	ref := tracker.NewGSRefiner()
	ref.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Refine(fixCloud, fixSeq.Intr, fixSeq.Frames[4], fixCam.Pose, 1)
	}
}

// BenchmarkFig5Contribution times a contribution-logged render (the
// measurement behind Fig. 5).
func BenchmarkFig5Contribution(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		splat.Render(fixCloud, fixCam, splat.Options{
			LogContribution: true, ThreshAlpha: 1.0 / 255, Workers: 1,
		})
	}
}

// BenchmarkFig6Similarity times the covisibility comparison underlying the
// per-level grouping of Fig. 6.
func BenchmarkFig6Similarity(b *testing.B) {
	fixtures(b)
	det := covis.NewDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Compare(fixSeq.Frames[0].Color, fixSeq.Frames[1].Color); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ATE times trajectory evaluation (alignment + RMSE).
func BenchmarkTable2ATE(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.ATERMSE(fixTrace.base.Poses, fixTrace.base.GT); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14PSNR times rendering + PSNR evaluation of one frame.
func BenchmarkFig14PSNR(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := splat.Render(fixCloud, fixCam, splat.Options{Workers: 1})
		if _, err := metrics.PSNR(res.Color, fixSeq.Frames[4].Color); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Speedup times the platform models consuming a full run trace
// (the computation behind both halves of Fig. 15).
func BenchmarkFig15Speedup(b *testing.B) {
	fixtures(b)
	pls := []platform.Platform{platform.A100(), platform.GSCoreServer(), platform.AGSServer()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pl := range pls {
			platform.RunTotal(pl, fixTrace.ags.Trace)
		}
	}
}

// BenchmarkTable3Area times the area model (trivial, kept for completeness).
func BenchmarkTable3Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if area.Total(area.Edge()) <= 0 || area.Total(area.Server()) <= 0 {
			b.Fatal("bad area")
		}
	}
}

// BenchmarkFig16Energy times energy accounting over a trace.
func BenchmarkFig16Energy(b *testing.B) {
	fixtures(b)
	pl := platform.AGSEdge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tot := platform.RunTotal(pl, fixTrace.ags.Trace)
		if tot.EnergyJ <= 0 {
			b.Fatal("no energy")
		}
	}
}

// BenchmarkFig17TaskSplit times per-task breakdown extraction.
func BenchmarkFig17TaskSplit(b *testing.B) {
	fixtures(b)
	gpu := platform.A100()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tot := platform.RunTotal(gpu, fixTrace.base.Trace)
		_ = tot.TrackNs / (tot.TrackNs + tot.MapNs)
	}
}

// BenchmarkFig18Ablation times the GPE scheduler comparison at the heart of
// the AGS-Full ablation step.
func BenchmarkFig18Ablation(b *testing.B) {
	fixtures(b)
	f := &fixTrace.ags.Trace.Frames[0]
	if f.Map.RepPerPixelAlpha == nil {
		b.Skip("no representative workload")
	}
	p := gpe.DefaultParams(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpe.FrameCycles(f.Map.RepPerPixelAlpha, f.Map.RepPerPixelBlend, f.Map.Width, f.Map.Height, p, false)
		gpe.FrameCycles(f.Map.RepPerPixelAlpha, f.Map.RepPerPixelBlend, f.Map.Width, f.Map.Height, p, true)
	}
}

// BenchmarkTable4CoarsePose times the coarse RGB-D alignment used by the
// Droid+SplaTAM comparison.
func BenchmarkTable4CoarsePose(b *testing.B) {
	fixtures(b)
	al := tracker.NewCoarseAligner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.EstimateRelative(fixSeq.Frames[3], fixSeq.Frames[4], fixSeq.Intr, vecmath.PoseIdentity())
	}
}

// BenchmarkFig19IterT times the backbone workload estimate per resolution
// (the cost model behind the Iter_T trade-off).
func BenchmarkFig19IterT(b *testing.B) {
	bb := nnlite.NewPoseBackbone(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bb.Workload(96, 72) <= 0 {
			b.Fatal("bad workload")
		}
	}
}

// BenchmarkFig20LoggingTable times the GS logging table hot/cold replay.
func BenchmarkFig20LoggingTable(b *testing.B) {
	fixtures(b)
	var tiles [][]int32
	for _, f := range fixTrace.base.Trace.Frames {
		if f.LoggingIDs != nil {
			tiles = f.LoggingIDs
			break
		}
	}
	if tiles == nil {
		b.Skip("no logging stream in trace")
	}
	p := engines.DefaultTableParams(true)
	spec := dram.HBM2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines.SimulateLogging(tiles, p, spec)
	}
}

// BenchmarkFig21SkippingTable times the GS skipping table replay.
func BenchmarkFig21SkippingTable(b *testing.B) {
	fixtures(b)
	var tiles [][]int32
	for _, f := range fixTrace.ags.Trace.Frames {
		if f.Map.RepTileLists != nil {
			tiles = f.Map.RepTileLists
			break
		}
	}
	if tiles == nil {
		b.Skip("no tile lists in trace")
	}
	p := engines.DefaultTableParams(false)
	spec := dram.LPDDR4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines.SimulateSkipping(tiles, 4000, p, spec)
	}
}

// BenchmarkFig22FCLevels times full-frame motion estimation (the CODEC work
// behind the covisibility distribution).
func BenchmarkFig22FCLevels(b *testing.B) {
	fixtures(b)
	cfg := codec.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.MotionEstimate(fixSeq.Frames[0].Color, fixSeq.Frames[1].Color, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9MEParallel times frame motion estimation with the row-parallel
// worker pool and encoder early termination — the CODEC stage the pipelined
// frontend overlaps with tracking/mapping (Fig. 9's timing model).
func BenchmarkFig9MEParallel(b *testing.B) {
	fixtures(b)
	cfg := codec.DefaultConfig()
	cfg.Workers = runtime.GOMAXPROCS(0)
	cfg.EarlyTerm = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.MotionEstimate(fixSeq.Frames[0].Color, fixSeq.Frames[1].Color, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9PipelinedFrontend times two AGS frame steps with ME prefetch
// running concurrently with tracking/mapping (vs BenchmarkTable1Categories'
// serial frontend).
func BenchmarkFig9PipelinedFrontend(b *testing.B) {
	fixtures(b)
	cfg := slam.AGSConfig(64, 48)
	cfg.Mapper.DensifyStride = 2
	cfg.Mapper.MapIters = 5
	cfg.PipelineME = true
	cfg.CodecWorkers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := slam.New(cfg, fixSeq.Intr)
		for f := 0; f < 2; f++ {
			sys.Prefetch(fixSeq.Frames[f], fixSeq.Frames[f+1])
			if err := sys.ProcessFrame(fixSeq.Frames[f]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchPlan times spec collection + dedup across the whole
// experiment registry — the scheduler's planning overhead per batch.
func BenchmarkBatchPlan(b *testing.B) {
	exps := bench.Experiments()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(bench.PlanSpecs(exps)) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// Batch-scheduler fixture: a tiny warmed suite shared across iterations so
// the benchmark times the warm/render machinery, not the SLAM pipelines.
var (
	batchOnce  sync.Once
	batchSuite *bench.Suite
	batchExps  []bench.Experiment
)

func batchFixture(b *testing.B) {
	b.Helper()
	batchOnce.Do(func() {
		batchSuite = bench.NewSuite(bench.Config{
			Width: 40, Height: 32, Frames: 6,
			TrackIters: 8, IterT: 3, MapIters: 4,
			DensifyStride: 2, Seed: 1,
		})
		for _, id := range []string{"table3", "fig22"} {
			e, err := bench.Find(id)
			if err != nil {
				panic(err)
			}
			batchExps = append(batchExps, e)
		}
		if _, err := bench.RunBatch(batchSuite, batchExps, 2, io.Discard); err != nil {
			panic(err)
		}
	})
}

// BenchmarkBatchRenderWarm times a full RunBatch over a warmed cache: the
// per-batch cost of the scheduler + renderers once every spec is a hit.
func BenchmarkBatchRenderWarm(b *testing.B) {
	batchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunBatch(batchSuite, batchExps, 2, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig23Mapping times one full-mapping optimization iteration (the
// workload AGS accelerates on the Gaussian-SLAM backbone too).
func BenchmarkFig23Mapping(b *testing.B) {
	fixtures(b)
	lc := splat.DefaultMappingLoss()
	target := fixSeq.Frames[4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := splat.Render(fixCloud, fixCam, splat.Options{Workers: 1})
		splat.Backward(fixCloud, fixCam, res, target, lc, splat.BackwardOptions{GaussianGrads: true, Workers: 1})
	}
}
