package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecNear(a, b Vec3, tol float64) bool {
	return near(a.X, b.X, tol) && near(a.Y, b.Y, tol) && near(a.Z, b.Z, tol)
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); !vecNear(got, Vec3{-3, 7, 3.5}, eps) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecNear(got, Vec3{5, -3, 2.5}, eps) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); !near(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); !vecNear(got, Vec3{2, 4, 6}, eps) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); !vecNear(got, Vec3{-4, 10, 1.5}, eps) {
		t.Errorf("Mul = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -1, 2}
	c := a.Cross(b)
	if !near(c.Dot(a), 0, eps) || !near(c.Dot(b), 0, eps) {
		t.Fatalf("cross product not orthogonal: %v", c)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); !vecNear(got, Vec3{0, 0, 1}, eps) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestVec3Normalized(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalized()
	if !near(v.Norm(), 1, eps) {
		t.Errorf("norm = %v", v.Norm())
	}
	zero := (Vec3{}).Normalized()
	if !vecNear(zero, Vec3{}, 0) {
		t.Errorf("normalized zero = %v", zero)
	}
}

func TestVec3LerpEndpoints(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{-1, 0, 7}
	if got := a.Lerp(b, 0); !vecNear(got, a, eps) {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !vecNear(got, b, eps) {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecNear(got, Vec3{0, 1, 5}, eps) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.25, 0, 1); got != 0.25 {
		t.Errorf("Clamp(0.25,0,1) = %v", got)
	}
	v := Vec3{-2, 0.5, 9}.Clamp(0, 1)
	if !vecNear(v, Vec3{0, 0.5, 1}, 0) {
		t.Errorf("Vec3.Clamp = %v", v)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVec2Basics(t *testing.T) {
	a := Vec2{3, 4}
	if !near(a.Norm(), 5, eps) {
		t.Errorf("norm = %v", a.Norm())
	}
	if got := a.Add(Vec2{1, 1}).Sub(Vec2{1, 1}); !near(got.X, 3, eps) || !near(got.Y, 4, eps) {
		t.Errorf("add/sub roundtrip = %v", got)
	}
	if got := a.Dot(Vec2{-4, 3}); !near(got, 0, eps) {
		t.Errorf("dot = %v", got)
	}
}

func TestPropertyCrossAnticommutative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		return vecNear(a.Cross(b), b.Cross(a).Neg(), 1e-6*(1+a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyDotCauchySchwarz(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		return math.Abs(a.Dot(b)) <= a.Norm()*b.Norm()+1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// quickCfg returns a quick.Config whose float64 values are bounded so
// property tests exercise realistic magnitudes instead of overflow regimes.
func quickCfg() *quick.Config {
	r := rand.New(rand.NewSource(7))
	return &quick.Config{
		MaxCount: 200,
		Rand:     r,
		Values: func(vals []reflectValue, r *rand.Rand) {
			for i := range vals {
				vals[i] = valueOf(r.NormFloat64() * 10)
			}
		},
	}
}
