package scene

import (
	"runtime"
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/vecmath"
)

// World is a collection of objects with simple directional lighting.
type World struct {
	Objects    []Object
	Background vecmath.Vec3
	// Lights are directions TO the light (unit vectors) with intensities.
	Lights []Light
	// Ambient is the base illumination applied to every surface.
	Ambient float64
}

// Light is a directional light source.
type Light struct {
	Dir       vecmath.Vec3
	Intensity float64
}

// defaultLights gives mild two-source lighting so geometry reads without
// harsh shadows (no shadow rays are traced; SLAM does not need them).
func defaultLights() []Light {
	return []Light{
		{Dir: vecmath.Vec3{X: 0.4, Y: 0.8, Z: -0.45}.Normalized(), Intensity: 0.45},
		{Dir: vecmath.Vec3{X: -0.6, Y: 0.5, Z: 0.6}.Normalized(), Intensity: 0.25},
	}
}

// traceHit returns the nearest hit along the ray.
func (w *World) traceHit(origin, dir vecmath.Vec3) (Hit, bool) {
	const tMax = 100.0
	best := Hit{T: tMax}
	found := false
	for _, obj := range w.Objects {
		if h, ok := obj.Intersect(origin, dir, 1e-6, best.T); ok {
			best = h
			found = true
		}
	}
	return best, found
}

// shade applies ambient plus Lambertian lighting to a hit.
func (w *World) shade(h Hit) vecmath.Vec3 {
	s := w.Ambient
	for _, l := range w.Lights {
		if d := h.Normal.Dot(l.Dir); d > 0 {
			s += d * l.Intensity
		}
	}
	return h.Albedo.Scale(s).Clamp(0, 1)
}

// Trace returns the shaded color and hit distance of the nearest surface
// along the ray, or (Background, 0, false) on a miss.
func (w *World) Trace(origin, dir vecmath.Vec3) (vecmath.Vec3, float64, bool) {
	h, ok := w.traceHit(origin, dir)
	if !ok {
		return w.Background, 0, false
	}
	return w.shade(h), h.T, true
}

// RenderFrame ray-traces an RGB-D frame from the given camera. Depth is the
// camera-space Z of the hit point — the convention RGB-D sensors (and the
// splatting renderer) use.
func (w *World) RenderFrame(cam camera.Camera) (*frame.Image, *frame.DepthMap) {
	img := frame.NewImage(cam.Intr.W, cam.Intr.H)
	depth := frame.NewDepthMap(cam.Intr.W, cam.Intr.H)
	workers := runtime.GOMAXPROCS(0)
	if workers > cam.Intr.H {
		workers = cam.Intr.H
	}
	var wg sync.WaitGroup
	rows := make(chan int, cam.Intr.H)
	for y := 0; y < cam.Intr.H; y++ {
		rows <- y
	}
	close(rows)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for y := range rows {
				for x := 0; x < cam.Intr.W; x++ {
					origin, dir := cam.Ray(x, y)
					h, ok := w.traceHit(origin, dir)
					if !ok {
						img.Set(x, y, w.Background)
						continue
					}
					img.Set(x, y, w.shade(h))
					depth.Set(x, y, cam.Pose.Apply(h.Point).Z)
				}
			}
		}()
	}
	wg.Wait()
	return img, depth
}
