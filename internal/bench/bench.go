// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation (§3 motivation profiles and §6), each
// printing the same rows/series the paper reports.
//
// The harness follows the paper's methodology — collect SLAM traces once,
// evaluate every table and figure on them — as a declarative plan:
//
//  1. Every experiment is a value implementing Experiment. Needs() declares
//     the RunSpecs — (sequence, variant, key, override) bundles — the
//     experiment consumes; Render(suite, w) formats its text artifact from
//     the suite's cache.
//  2. RunBatch collects the specs of every selected experiment, deduplicates
//     them, and executes the union across a bounded worker pool, sharing
//     dataset generation and running each unique spec exactly once
//     (singleflight).
//  3. Each experiment then renders in paper order from the warmed cache, so
//     the text output is byte-identical for every worker count.
//
// Direct Suite.Run calls go through the same singleflight cache, so ad-hoc
// use (tests, single experiments) is race-free too.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ags/internal/camera"
	"ags/internal/grid"
	"ags/internal/mapper"
	"ags/internal/metrics"
	"ags/internal/scene"
	"ags/internal/slam"
	"ags/internal/splat"
)

// Config scales the whole experiment suite.
type Config struct {
	Width, Height int
	Frames        int
	TrackIters    int // baseline N_T
	IterT         int // AGS refinement iterations
	MapIters      int // N_M
	DensifyStride int
	Workers       int
	Seed          int64
	// CodecWorkers, PipelineME and CodecEarlyTerm select the concurrent
	// CODEC frontend for every SLAM run in the suite (see package slam).
	// None of them changes trajectories or covisibility scores, but
	// CodecEarlyTerm lowers the traced SADOps, so op-count tables are only
	// comparable across runs that agree on it.
	CodecWorkers   int
	PipelineME     bool
	CodecEarlyTerm bool
}

// Quick returns the configuration used by default: small enough that the
// full suite completes in minutes on a laptop CPU, large enough that every
// effect the paper reports is visible.
func Quick() Config {
	return Config{
		Width: 64, Height: 48, Frames: 16,
		TrackIters: 24, IterT: 5, MapIters: 8,
		DensifyStride: 2, Seed: 1,
	}
}

// Full returns the larger configuration (closer to the paper's per-frame
// workload shape; several times slower).
func Full() Config {
	return Config{
		Width: 96, Height: 72, Frames: 40,
		TrackIters: 60, IterT: 6, MapIters: 15,
		DensifyStride: 2, Seed: 1,
	}
}

// Variant names a pipeline configuration.
type Variant string

// Pipeline variants shared by the experiments.
const (
	VarBaseline  Variant = "baseline"   // SplaTAM-style
	VarAGS       Variant = "ags"        // MAT + GCM
	VarMATOnly   Variant = "mat"        // movement-adaptive tracking only
	VarGCMOnly   Variant = "gcm"        // contribution-aware mapping only
	VarDroid     Variant = "droid"      // coarse-only tracking (Table 4)
	VarGSLAMBase Variant = "gslam-base" // Gaussian-SLAM backbone, baseline
	VarGSLAMAGS  Variant = "gslam-ags"  // Gaussian-SLAM backbone + AGS
)

// RunSpec names one (sequence, variant, key, override) bundle an experiment
// consumes. Key distinguishes parameter sweeps sharing a variant; Override,
// if non-nil, further mutates the derived slam.Config and must be a pure
// function of the key so that equal IDs describe equal pipelines. A zero
// Variant marks a dataset-only spec: the scheduler generates the sequence
// but executes no pipeline (experiments that only read frames, or that time
// deliberately uncached runs, use this to share dataset generation).
type RunSpec struct {
	Seq      string
	Variant  Variant
	Key      string
	Override func(*slam.Config)
}

// Spec returns the RunSpec of a plain (sequence, variant) run.
func Spec(seq string, v Variant) RunSpec { return RunSpec{Seq: seq, Variant: v} }

// SeqSpec returns a dataset-only RunSpec: generate the sequence, run nothing.
func SeqSpec(seq string) RunSpec { return RunSpec{Seq: seq} }

// DatasetOnly reports whether the spec names a dataset with no pipeline run.
func (r RunSpec) DatasetOnly() bool { return r.Variant == "" }

// ID is the cache identity of the spec: sequence/variant/key.
func (r RunSpec) ID() string { return r.Seq + "/" + string(r.Variant) + "/" + r.Key }

// Bundle is one cached SLAM run plus its dataset.
type Bundle struct {
	Seq    *scene.Sequence
	Result *slam.Result

	psnrOnce sync.Once
	psnr     float64
	psnrErr  error
}

// PSNR lazily evaluates (and caches) the run's mean rendering quality.
func (b *Bundle) PSNR() (float64, error) {
	b.psnrOnce.Do(func() {
		b.psnr, b.psnrErr = slam.EvaluatePSNR(b.Result, b.Seq, 2)
	})
	return b.psnr, b.psnrErr
}

// flight is one singleflight cell: the first caller executes, everyone else
// blocks on done and shares the result. Successful cells stay in the map as
// the cache; failed cells are forgotten so later callers retry.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Executor runs one resolved spec somewhere other than this process. The grid
// scheduler is the one real implementation; a nil Executor means local
// execution via slam.Run. The suite hands the executor a fully resolved
// grid.Job (variant and override already applied — RunSpec overrides are
// functions and cannot cross a wire) plus its own copy of the dataset for
// sampled replay verification.
type Executor interface {
	ExecuteSpec(job grid.Job, seq *scene.Sequence) (*slam.Result, grid.ExecInfo, error)
}

// execRecord attributes one pipeline execution: how long it took, which
// worker ran it ("local" for in-process runs), and — for remote runs — bytes
// over the wire and whether a sampled local replay confirmed it.
type execRecord struct {
	dur      time.Duration
	worker   string
	wire     int64
	verified bool
}

// Suite owns the run cache. Experiment text goes to the writer passed to
// Render/RunBatch; the suite itself only writes progress lines to Log.
type Suite struct {
	Cfg Config
	// Log, if non-nil, receives cache-miss progress lines ("# running ...");
	// runs take seconds to minutes. It is never interleaved with experiment
	// text, so batch output stays byte-identical for every worker count.
	Log io.Writer

	mu    sync.Mutex
	seqs  map[string]*flight
	runs  map[string]*flight
	execs map[string]execRecord
	logMu sync.Mutex
}

// NewSuite returns an empty suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:   cfg,
		seqs:  make(map[string]*flight),
		runs:  make(map[string]*flight),
		execs: make(map[string]execRecord),
	}
}

func (s *Suite) logf(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.Log, format, args...)
	s.logMu.Unlock()
}

// doOnce executes fn for id exactly once among concurrent callers, caches a
// successful value forever, and forgets failures so they can be retried.
// fn runs without s.mu held, so it may nest doOnce calls on other maps.
func (s *Suite) doOnce(m map[string]*flight, id string, fn func() (any, error)) (any, error) {
	s.mu.Lock()
	f, ok := m[id]
	if ok {
		s.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f = &flight{done: make(chan struct{})}
	m[id] = f
	s.mu.Unlock()

	f.val, f.err = fn()
	s.mu.Lock()
	if f.err != nil {
		delete(m, id) // allow retries; waiters still see this error
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// sceneConfig is the dataset recipe every suite sequence is generated from.
// Grid jobs ship this exact recipe, so workers regenerate frames
// bit-identical to the coordinator's own copy.
func (s *Suite) sceneConfig() scene.Config {
	return scene.Config{
		Width: s.Cfg.Width, Height: s.Cfg.Height, Frames: s.Cfg.Frames, Seed: s.Cfg.Seed,
	}
}

// sequence returns (generating on first use) the named dataset. Generation
// is singleflighted: concurrent callers share one build.
func (s *Suite) sequence(name string) (*scene.Sequence, error) {
	v, err := s.doOnce(s.seqs, name, func() (any, error) {
		return scene.Generate(name, s.sceneConfig())
	})
	if err != nil {
		return nil, err
	}
	return v.(*scene.Sequence), nil
}

// Sequence returns the named dataset, panicking on unknown names (experiment
// code only ever asks for the registry's own sequence names).
func (s *Suite) Sequence(name string) *scene.Sequence {
	seq, err := s.sequence(name)
	if err != nil {
		panic(err)
	}
	return seq
}

// slamConfig builds the pipeline configuration for a variant. override, if
// non-nil, may further mutate the config (parameter sweeps).
func (s *Suite) slamConfig(v Variant, override func(*slam.Config)) slam.Config {
	cfg := slam.DefaultConfig(s.Cfg.Width, s.Cfg.Height)
	cfg.TrackIters = s.Cfg.TrackIters
	cfg.IterT = s.Cfg.IterT
	cfg.Mapper.MapIters = s.Cfg.MapIters
	cfg.Mapper.DensifyStride = s.Cfg.DensifyStride
	cfg.Workers = s.Cfg.Workers
	cfg.CodecWorkers = s.Cfg.CodecWorkers
	cfg.PipelineME = s.Cfg.PipelineME
	cfg.CodecEarlyTerm = s.Cfg.CodecEarlyTerm
	switch v {
	case VarBaseline:
	case VarAGS:
		cfg.EnableMAT, cfg.EnableGCM = true, true
	case VarMATOnly:
		cfg.EnableMAT = true
	case VarGCMOnly:
		cfg.EnableGCM = true
	case VarDroid:
		cfg.ForceCoarseOnly = true
	case VarGSLAMBase:
		cfg.Backbone = slam.BackboneGaussianSLAM
	case VarGSLAMAGS:
		cfg.Backbone = slam.BackboneGaussianSLAM
		cfg.EnableGCM = true
	}
	if override != nil {
		override(&cfg)
	}
	return cfg
}

// Run returns the cached bundle for the spec, executing the pipeline locally
// on first use. Concurrent callers of one spec share a single execution
// (singleflight), so the batch scheduler and direct calls can overlap freely.
func (s *Suite) Run(spec RunSpec) (*Bundle, error) { return s.runVia(nil, spec) }

// runVia is Run with an execution venue: nil runs the pipeline in-process,
// a non-nil Executor ships the resolved job out (the grid path). Both venues
// share one cache — whichever materializes a spec first wins, and the
// determinism contract makes the cached bundle identical either way.
func (s *Suite) runVia(x Executor, spec RunSpec) (*Bundle, error) {
	if spec.DatasetOnly() {
		return nil, fmt.Errorf("bench: run %s: dataset-only spec has no pipeline", spec.ID())
	}
	if spec.Override != nil && spec.Key == "" {
		// An unkeyed override would silently share a cache slot with the
		// plain (sequence, variant) run: whichever executed first would
		// poison the other's numbers. Refuse instead.
		return nil, fmt.Errorf("bench: run %s: override requires a distinguishing key", spec.ID())
	}
	id := spec.ID()
	v, err := s.doOnce(s.runs, id, func() (any, error) {
		seq, err := s.sequence(spec.Seq)
		if err != nil {
			return nil, fmt.Errorf("bench: run %s: %w", id, err)
		}
		start := wallNow()
		var res *slam.Result
		rec := execRecord{worker: "local"}
		if x == nil {
			s.logf("# running %s ...\n", id)
			res, err = slam.Run(s.slamConfig(spec.Variant, spec.Override), seq)
		} else {
			var info grid.ExecInfo
			res, info, err = x.ExecuteSpec(grid.Job{
				ID:    id,
				Seq:   spec.Seq,
				Scene: s.sceneConfig(),
				Cfg:   s.slamConfig(spec.Variant, spec.Override),
			}, seq)
			rec = execRecord{worker: info.Worker, wire: info.WireBytes, verified: info.Verified}
			if err == nil {
				// Worker attribution is only known after placement, so the
				// grid progress line trails the run instead of leading it.
				s.logf("# [%s] %s done (%.1f KB over wire)\n", info.Worker, id, float64(info.WireBytes)/1024)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("bench: run %s: %w", id, err)
		}
		rec.dur = wallSince(start)
		s.mu.Lock()
		s.execs[id] = rec
		s.mu.Unlock()
		return &Bundle{Seq: seq, Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Bundle), nil
}

// MustRun is Run for experiment code where errors are fatal to the harness.
func (s *Suite) MustRun(spec RunSpec) *Bundle {
	b, err := s.Run(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// warmVia materializes a spec without returning its value: the batch
// scheduler's per-spec unit of work. Dataset-only specs always materialize
// locally (workers regenerate their own copies from the job recipe).
func (s *Suite) warmVia(x Executor, spec RunSpec) error {
	if spec.DatasetOnly() {
		_, err := s.sequence(spec.Seq)
		return err
	}
	_, err := s.runVia(x, spec)
	return err
}

// Timings returns a copy of the wall time of every pipeline execution this
// suite performed, keyed by RunSpec ID. Cache hits and singleflight waiters
// do not add entries, so len(Timings()) counts actual executions.
func (s *Suite) Timings() map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.execs))
	for id, rec := range s.execs {
		out[id] = rec.dur
	}
	return out
}

// execRecords returns a copy of the per-execution attribution map, keyed by
// RunSpec ID (the batch report reads worker names and wire bytes from it).
func (s *Suite) execRecords() map[string]execRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]execRecord, len(s.execs))
	for id, rec := range s.execs {
		out[id] = rec
	}
	return out
}

// contributionStats renders frame fi of the bundle at its estimated pose
// with contribution logging and returns (nonContributory, total) Gaussian
// counts under the mapper's thresholds.
func contributionStats(b *Bundle, fi int, mcfg mapper.Config) (nonContrib, total int, ids map[int]bool) {
	cam := camera.Camera{Intr: b.Seq.Intr, Pose: b.Result.Poses[fi]}
	res := splat.Render(b.Result.Cloud, cam, splat.Options{
		LogContribution: true,
		ThreshAlpha:     mcfg.ThreshAlpha,
	})
	ids = make(map[int]bool)
	for id := range res.Touched {
		if res.Touched[id] == 0 {
			continue // culled before the Gaussian tables; not in any table
		}
		total++
		if res.Touched[id]-res.NonContrib[id] <= int32(mcfg.ContribPixMax) {
			nonContrib++
			ids[id] = true
		}
	}
	return nonContrib, total, ids
}

// geoMeanOf orders a named float per sequence and appends its GeoMean.
func geoMeanOf(vals map[string]float64, order []string) []float64 {
	out := make([]float64, 0, len(order)+1)
	var list []float64
	for _, name := range order {
		out = append(out, vals[name])
		list = append(list, vals[name])
	}
	out = append(out, metrics.GeoMean(list))
	return out
}
