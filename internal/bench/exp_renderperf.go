package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ags/internal/camera"
	"ags/internal/splat"
)

func expPerfRender() Experiment {
	return expDef{
		id: "perf-render", paper: "Perf: splat render+backward — worker sharding and frame-persistent contexts",
		needs:  []RunSpec{Spec("Desk", VarBaseline)},
		render: (*Suite).PerfRender,
	}
}

// PerfRender is the perf experiment behind the splat hot path: it times the
// forward and backward passes serial vs sharded on a mapped cloud, asserts
// that every worker count reproduces the serial output bit for bit, and A/Bs
// the frame-persistent RenderContext against the one-shot entry points —
// reporting ns/op and allocs/op for both and asserting (Result.Digest /
// Grads.Digest, which cover the images, AlphaOps/BlendOps traces, the
// contribution log and all gradient buffers) that a warm context is bitwise
// identical to the context-free path at Workers ∈ {1, 2, GOMAXPROCS}.
func (s *Suite) PerfRender(w io.Writer) error {
	b, err := s.Run(Spec("Desk", VarBaseline))
	if err != nil {
		return err
	}
	cloud := b.Result.Cloud
	mid := len(b.Result.Poses) / 2
	cam := camera.Camera{Intr: b.Seq.Intr, Pose: b.Result.Poses[mid]}
	target := b.Seq.Frames[mid]
	lc := splat.DefaultMappingLoss()
	const reps = 4
	cores := runtime.GOMAXPROCS(0)

	renderOpts := func(workers int) splat.Options {
		return splat.Options{Workers: workers, LogContribution: true, ThreshAlpha: 1.0 / 255}
	}
	backOpts := func(workers int) splat.BackwardOptions {
		return splat.BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: workers}
	}

	// --- Worker-sharding wall time (one-shot path), verified bit-identical. ---
	type sample struct {
		workers        int
		renderT, backT time.Duration
		res            *splat.Result
		grads          *splat.Grads
	}
	run := func(workers int) sample {
		sm := sample{workers: workers}
		// Untimed warm-up so first-touch costs are not attributed to the
		// first configuration measured.
		sm.res = splat.Render(cloud, cam, renderOpts(workers))
		sm.grads = splat.Backward(cloud, cam, sm.res, target, lc, backOpts(workers))
		start := wallNow()
		for r := 0; r < reps; r++ {
			sm.res = splat.Render(cloud, cam, renderOpts(workers))
		}
		sm.renderT = wallSince(start) / reps
		start = wallNow()
		for r := 0; r < reps; r++ {
			sm.grads = splat.Backward(cloud, cam, sm.res, target, lc, backOpts(workers))
		}
		sm.backT = wallSince(start) / reps
		return sm
	}

	workerSet := []int{1}
	for _, wkr := range []int{2, cores} {
		if wkr > 1 && wkr != workerSet[len(workerSet)-1] {
			workerSet = append(workerSet, wkr)
		}
	}
	serial := run(1)
	refRes, refGrads := serial.res.Digest(), serial.grads.Digest()
	samples := []sample{serial}
	for _, wkr := range workerSet[1:] {
		sm := run(wkr)
		if sm.res.Digest() != refRes {
			return fmt.Errorf("bench: sharded render (workers=%d) diverged from serial output", wkr)
		}
		if sm.grads.Digest() != refGrads {
			return fmt.Errorf("bench: sharded backward (workers=%d) diverged from serial gradients", wkr)
		}
		samples = append(samples, sm)
	}

	t := NewTable(fmt.Sprintf("Perf: splat render+backward wall-time (%dx%d, %d gaussians, %d cores)",
		b.Seq.Intr.W, b.Seq.Intr.H, cloud.NumActive(), cores),
		"Workers", "Render ms", "Backward ms", "Speedup")
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }
	serialTotal := serial.renderT + serial.backT
	for _, sm := range samples {
		total := sm.renderT + sm.backT
		t.AddRow(sm.workers, ms(sm.renderT), ms(sm.backT), float64(serialTotal)/float64(total))
	}
	t.AddNote("all worker counts verified byte-identical to serial (images, counters, gradients)")
	t.Write(w)

	// --- Frame-persistent context vs one-shot entry points. ---
	// Digest gate first: a warm context (reused across every call below) must
	// reproduce the context-free output bit for bit at every worker count.
	ctx := splat.NewRenderContext()
	for _, wkr := range workerSet {
		res := ctx.Render(cloud, cam, renderOpts(wkr))
		if res.Digest() != refRes {
			return fmt.Errorf("bench: contexted render (workers=%d) diverged from context-free output", wkr)
		}
		g := ctx.Backward(cloud, cam, res, target, lc, backOpts(wkr))
		if g.Digest() != refGrads {
			return fmt.Errorf("bench: contexted backward (workers=%d) diverged from context-free gradients", wkr)
		}
	}

	// Allocation/time A/B at Workers=1 (the per-core steady state of the
	// tracker/mapper loops). measure reports ns/op and allocs/op of one
	// render+backward iteration.
	measure := func(render func() *splat.Result, back func(*splat.Result) *splat.Grads) (renderNs, backNs, renderAllocs, backAllocs float64, err error) {
		res := render() // warm-up: prime pools / size context buffers
		g := back(res)
		wantRes, wantG := res.Digest(), g.Digest()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := wallNow()
		for r := 0; r < reps; r++ {
			res = render()
		}
		renderNs = float64(wallSince(start).Nanoseconds()) / reps
		runtime.ReadMemStats(&m1)
		renderAllocs = float64(m1.Mallocs-m0.Mallocs) / reps

		runtime.ReadMemStats(&m0)
		start = wallNow()
		for r := 0; r < reps; r++ {
			g = back(res)
		}
		backNs = float64(wallSince(start).Nanoseconds()) / reps
		runtime.ReadMemStats(&m1)
		backAllocs = float64(m1.Mallocs-m0.Mallocs) / reps
		if res.Digest() != wantRes || g.Digest() != wantG {
			return 0, 0, 0, 0, fmt.Errorf("bench: output changed across repeats")
		}
		if wantRes != refRes || wantG != refGrads {
			return 0, 0, 0, 0, fmt.Errorf("bench: A/B mode diverged from reference output")
		}
		return renderNs, backNs, renderAllocs, backAllocs, nil
	}

	type mode struct {
		name   string
		render func() *splat.Result
		back   func(*splat.Result) *splat.Grads
	}
	modes := []mode{
		{"contexted (warm)",
			func() *splat.Result { return ctx.Render(cloud, cam, renderOpts(1)) },
			func(res *splat.Result) *splat.Grads { return ctx.Backward(cloud, cam, res, target, lc, backOpts(1)) }},
		{"one-shot (pooled scratch)",
			func() *splat.Result { return splat.Render(cloud, cam, renderOpts(1)) },
			func(res *splat.Result) *splat.Grads { return splat.Backward(cloud, cam, res, target, lc, backOpts(1)) }},
		{"one-shot (NoPool)",
			func() *splat.Result {
				o := renderOpts(1)
				o.NoPool = true
				return splat.Render(cloud, cam, o)
			},
			func(res *splat.Result) *splat.Grads {
				o := backOpts(1)
				o.NoPool = true
				return splat.Backward(cloud, cam, res, target, lc, o)
			}},
	}
	ct := NewTable("Perf: frame-persistent RenderContext vs one-shot entry points (workers=1)",
		"Mode", "Render us/op", "Backward us/op", "Render allocs/op", "Backward allocs/op")
	var ctxAllocs, freeAllocs float64
	for i, md := range modes {
		rNs, bNs, rAl, bAl, err := measure(md.render, md.back)
		if err != nil {
			return err
		}
		switch i {
		case 0:
			ctxAllocs = rAl + bAl
		case 1:
			freeAllocs = rAl + bAl
		}
		ct.AddRow(md.name, fmt.Sprintf("%.1f", rNs/1e3), fmt.Sprintf("%.1f", bNs/1e3),
			fmt.Sprintf("%.1f", rAl), fmt.Sprintf("%.1f", bAl))
	}
	// The acceptance gate: warm contexted iterations must stay at <= 10% of
	// the context-free allocation rate (+1 alloc of headroom so a stray
	// mid-measurement GC cannot flake the run; steady state measures 0).
	if ctxAllocs > freeAllocs/10+1 {
		return fmt.Errorf("bench: warm context allocates %.1f/op vs %.1f one-shot (gate: <=10%%) — context reuse regressed", ctxAllocs, freeAllocs)
	}
	ct.AddNote("contexted output verified bitwise identical to context-free at workers ∈ %v", workerSet)
	ct.AddNote("NoPool bypasses the scratch-context pool (fresh buffers every call) for apples-to-apples A/Bs")
	ct.Write(w)
	return nil
}
