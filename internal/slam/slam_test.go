package slam

import (
	"testing"

	"ags/internal/scene"
)

// fastCfg shrinks iteration counts so pipeline tests stay quick.
func fastCfg(w, h int) Config {
	cfg := DefaultConfig(w, h)
	cfg.TrackIters = 12
	cfg.IterT = 4
	cfg.Mapper.MapIters = 6
	cfg.Mapper.DensifyStride = 2
	cfg.Workers = 4
	return cfg
}

func fastAGS(w, h int) Config {
	cfg := fastCfg(w, h)
	cfg.EnableMAT = true
	cfg.EnableGCM = true
	return cfg
}

const tw, th = 48, 36

func testSeq(t *testing.T, name string, frames int) *scene.Sequence {
	t.Helper()
	return scene.MustGenerate(name, scene.Config{Width: tw, Height: th, Frames: frames, Seed: 1})
}

func TestBaselineRunTracksSequence(t *testing.T) {
	seq := testSeq(t, "Xyz", 10)
	cfg := fastCfg(tw, th)
	cfg.TrackIters = 30
	cfg.Mapper.DensifyStride = 1
	cfg.Mapper.MapIters = 8
	res, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Poses) != 10 || len(res.GT) != 10 {
		t.Fatalf("poses %d gt %d", len(res.Poses), len(res.GT))
	}
	ate, err := res.ATERMSECm()
	if err != nil {
		t.Fatal(err)
	}
	// One pixel at this resolution is ~6.5 cm at 2 m depth; the baseline
	// must stay within about 1.5 px of trajectory error.
	if ate > 10 {
		t.Errorf("baseline ATE = %.2f cm", ate)
	}
	if err := res.Cloud.Validate(); err != nil {
		t.Fatal(err)
	}
	// Baseline: every frame is a key frame, none coarse-only.
	for i, inf := range res.Info {
		if !inf.IsKeyFrame {
			t.Errorf("baseline frame %d not a key frame", i)
		}
		if inf.CoarseOnly {
			t.Errorf("baseline frame %d coarse-only", i)
		}
	}
}

func TestAGSRunSkipsWorkOnHighCovisibility(t *testing.T) {
	seq := testSeq(t, "Xyz", 10)
	cfg := fastAGS(tw, th)
	cfg.Mapper.DensifyStride = 1
	cfg.Mapper.MapIters = 8
	// The short 10-frame test sequence moves faster per frame than the
	// experiment-scale datasets; open the gate correspondingly.
	cfg.ThreshT = 0.82
	res, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Trace.Totals()
	// On the high-covisibility Xyz sequence AGS must skip refinement on
	// most frames and designate few key frames.
	if tot.CoarseOnly == 0 {
		t.Error("AGS never used coarse-only tracking on Xyz")
	}
	if tot.KeyFrames >= len(seq.Frames) {
		t.Error("AGS made every frame a key frame on Xyz")
	}
	// And still track acceptably (the coarse aligner is sub-pixel).
	ate, err := res.ATERMSECm()
	if err != nil {
		t.Fatal(err)
	}
	if ate > 7 {
		t.Errorf("AGS ATE = %.2f cm", ate)
	}
}

func TestAGSDoesLessTrackingWorkThanBaseline(t *testing.T) {
	seq := testSeq(t, "Xyz", 6)
	base, err := Run(fastCfg(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	ags, err := Run(fastAGS(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	bt := base.Trace.Totals()
	at := ags.Trace.Totals()
	if at.TrackIters >= bt.TrackIters {
		t.Errorf("AGS tracking iterations %d >= baseline %d", at.TrackIters, bt.TrackIters)
	}
	if at.BlendOps+at.AlphaOps >= bt.BlendOps+bt.AlphaOps {
		t.Errorf("AGS splat ops %d >= baseline %d", at.BlendOps+at.AlphaOps, bt.BlendOps+bt.AlphaOps)
	}
}

func TestForceCoarseOnlyNeverRefines(t *testing.T) {
	seq := testSeq(t, "Desk", 5)
	cfg := fastCfg(tw, th)
	cfg.ForceCoarseOnly = true
	res, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i, inf := range res.Info[1:] {
		if !inf.CoarseOnly {
			t.Errorf("frame %d refined despite ForceCoarseOnly", i+1)
		}
		if inf.RefineIters != 0 {
			t.Errorf("frame %d has refine iters", i+1)
		}
	}
	if res.Trace.Totals().TrackIters != 0 {
		t.Error("trace records tracking iterations")
	}
}

func TestTraceRecordsCodecAndCoarseWork(t *testing.T) {
	seq := testSeq(t, "Desk", 4)
	res, err := Run(fastAGS(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Trace.Totals()
	if tot.SADOps == 0 {
		t.Error("no CODEC work recorded")
	}
	if tot.CoarseMACs == 0 {
		t.Error("no coarse-tracking MACs recorded")
	}
	// Key frames carry logging-table access streams.
	foundLog := false
	for _, f := range res.Trace.Frames {
		if f.IsKeyFrame && f.LoggingIDs != nil {
			foundLog = true
		}
		if !f.IsKeyFrame && f.LoggingIDs != nil {
			t.Error("non-key frame has logging IDs")
		}
	}
	if !foundLog {
		t.Error("no key frame logging streams in trace")
	}
}

func TestFrameSizeMismatchRejected(t *testing.T) {
	seq := testSeq(t, "Desk", 1)
	other := scene.MustGenerate("Desk", scene.Config{Width: 32, Height: 24, Frames: 1, Seed: 1})
	sys := New(fastCfg(tw, th), seq.Intr)
	if err := sys.ProcessFrame(other.Frames[0]); err == nil {
		t.Error("mismatched frame size accepted")
	}
}

func TestEvaluatePSNRReasonable(t *testing.T) {
	seq := testSeq(t, "Desk", 4)
	res, err := Run(fastCfg(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := EvaluatePSNR(res, seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Even the fast test config must reconstruct something recognizable.
	if psnr < 15 {
		t.Errorf("PSNR = %.2f dB", psnr)
	}
}

func TestFPRateMeasurement(t *testing.T) {
	seq := testSeq(t, "Xyz", 6)
	cfg := fastAGS(tw, th)
	cfg.EvalFPRate = true
	res, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	var seen bool
	for _, inf := range res.Info {
		if inf.FPValid {
			seen = true
			if inf.FPRate < 0 || inf.FPRate > 1 {
				t.Errorf("FP rate %v out of range", inf.FPRate)
			}
		}
	}
	if !seen {
		t.Skip("no non-key frames in this short run")
	}
}

func TestGaussianSLAMBackboneDoesMoreMapping(t *testing.T) {
	seq := testSeq(t, "Desk", 3)
	base, err := Run(fastCfg(tw, th), seq)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(tw, th)
	cfg.Backbone = BackboneGaussianSLAM
	gs, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Trace.Totals().MapIters <= base.Trace.Totals().MapIters {
		t.Error("Gaussian-SLAM backbone did not increase mapping work")
	}
}

func TestScaleThreshN(t *testing.T) {
	// Thresh_N counts per-Gaussian wasted pixels, which are bounded by the
	// tile footprint and independent of image resolution, so the paper value
	// passes through unscaled at every frame size.
	if got := scaleThreshN(450); got != 450 {
		t.Errorf("paper ThreshN = %d", got)
	}
	if got := scaleThreshN(0); got < 2 {
		t.Errorf("floor ThreshN = %d", got)
	}
	for _, dims := range [][2]int{{640, 480}, {96, 72}, {8, 8}} {
		if got := DefaultConfig(dims[0], dims[1]).Mapper.ThreshN; got != 450 {
			t.Errorf("DefaultConfig(%dx%d).Mapper.ThreshN = %d, want 450", dims[0], dims[1], got)
		}
	}
}
