package slam

import (
	"slices"
	"testing"

	"ags/internal/hw/trace"
)

// assertSameRun checks that two runs are indistinguishable in everything the
// CODEC frontend influences: poses, per-frame covisibility decisions, and
// the modeled CODEC work in the trace.
func assertSameRun(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Poses) != len(got.Poses) {
		t.Fatalf("pose count %d != %d", len(got.Poses), len(want.Poses))
	}
	for i := range want.Poses {
		if want.Poses[i] != got.Poses[i] {
			t.Errorf("frame %d: pose %+v != %+v", i, got.Poses[i], want.Poses[i])
		}
	}
	for i := range want.Info {
		w, g := want.Info[i], got.Info[i]
		if w.Covisibility != g.Covisibility || w.KeyCovisibility != g.KeyCovisibility ||
			w.IsKeyFrame != g.IsKeyFrame || w.CoarseOnly != g.CoarseOnly || w.RefineIters != g.RefineIters {
			t.Errorf("frame %d: info %+v != %+v", i, g, w)
		}
	}
	for i := range want.Trace.Frames {
		if want.Trace.Frames[i].CodecSADOps != got.Trace.Frames[i].CodecSADOps {
			t.Errorf("frame %d: CodecSADOps %d != %d", i,
				got.Trace.Frames[i].CodecSADOps, want.Trace.Frames[i].CodecSADOps)
		}
	}
}

// These equivalence tests run the splat renderer fully parallel: its tile
// sharding is deterministic (static tile ranges + ordered merge, see package
// splat), so any Workers/CodecWorkers combination must reproduce the serial
// reference bit for bit — no Workers=1 pin needed.

func TestPipelinedFrontendMatchesSerial(t *testing.T) {
	seq := testSeq(t, "Desk", 8)
	cfg := fastAGS(tw, th)
	serial, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.PipelineME = true
	pcfg.CodecWorkers = 4
	pipelined, err := Run(pcfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, serial, pipelined)
}

// TestRenderContextMatchesOneShot: the frame-persistent render context must
// not change a single bit of a run — poses, per-frame decisions, and the
// full splat workload trace (including the representative per-pixel buffers,
// which the context path snapshots by copy) all match the context-free path.
func TestRenderContextMatchesOneShot(t *testing.T) {
	seq := testSeq(t, "Desk", 8)
	cfg := fastAGS(tw, th)
	cfg.EvalFPRate = true // exercise the contexted FP-rate render too
	contexted, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	ncfg := cfg
	ncfg.NoRenderCtx = true
	oneShot, err := Run(ncfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, oneShot, contexted)
	for i := range oneShot.Trace.Frames {
		w, g := &oneShot.Trace.Frames[i], &contexted.Trace.Frames[i]
		for _, s := range []struct {
			name      string
			want, got *trace.RenderStats
		}{{"track", &w.Track, &g.Track}, {"map", &w.Map, &g.Map}} {
			if s.want.AlphaOps != s.got.AlphaOps || s.want.BlendOps != s.got.BlendOps ||
				s.want.TileEntries != s.got.TileEntries || s.want.Splats != s.got.Splats {
				t.Errorf("frame %d %s: workload counters diverged (%+v vs %+v)", i, s.name, s.got, s.want)
			}
			if !slices.Equal(s.want.RepPerPixelAlpha, s.got.RepPerPixelAlpha) ||
				!slices.Equal(s.want.RepPerPixelBlend, s.got.RepPerPixelBlend) {
				t.Errorf("frame %d %s: representative per-pixel trace diverged", i, s.name)
			}
		}
		if w.SkippedGaussians != g.SkippedGaussians || w.NumGaussians != g.NumGaussians {
			t.Errorf("frame %d: gaussian counts diverged", i)
		}
	}
	for i := range oneShot.Info {
		if oneShot.Info[i].FPValid != contexted.Info[i].FPValid ||
			oneShot.Info[i].FPRate != contexted.Info[i].FPRate {
			t.Errorf("frame %d: FP-rate evaluation diverged", i)
		}
	}
}

func TestPipelinedBaselineMatchesSerial(t *testing.T) {
	// The baseline pipeline also consumes covisibility (key-frame anchoring),
	// so the prefetch path must be equivalent there too.
	seq := testSeq(t, "Xyz", 6)
	cfg := fastCfg(tw, th)
	serial, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.PipelineME = true
	pcfg.CodecWorkers = 3
	pipelined, err := Run(pcfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, serial, pipelined)
}

func TestMismatchedPrefetchFallsBack(t *testing.T) {
	// A speculative prefetch for a frame that never arrives must be ignored
	// and the synchronous path must produce the usual result.
	seq := testSeq(t, "Desk", 4)
	cfg := fastAGS(tw, th)
	want, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(cfg, seq.Intr)
	// Wrong successor: ME(f0, f2) is launched but ProcessFrame(f1) needs
	// ME(f0, f1); then a matching prefetch for the last step.
	sys.Prefetch(seq.Frames[0], seq.Frames[2])
	if err := sys.ProcessFrame(seq.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.ProcessFrame(seq.Frames[1]); err != nil {
		t.Fatal(err)
	}
	sys.Prefetch(seq.Frames[2], seq.Frames[3])
	if err := sys.ProcessFrame(seq.Frames[2]); err != nil {
		t.Fatal(err)
	}
	if err := sys.ProcessFrame(seq.Frames[3]); err != nil {
		t.Fatal(err)
	}
	got := sys.Finish(seq.Name)
	assertSameRun(t, want, got)
}

// TestPipelineDeterminismFullParallel is the system-level regression test for
// the deterministic sharding contract: a pipelined-prefetch run with a
// multi-worker CODEC pool *and* a multi-worker renderer must be bit-identical
// to the synchronous run — and the render worker count itself (3 vs 7 here)
// must not leak into poses, decisions, or the trace.
func TestPipelineDeterminismFullParallel(t *testing.T) {
	seq := testSeq(t, "Desk", 8)
	cfg := fastAGS(tw, th)
	cfg.Workers = 3
	sync, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.PipelineME = true
	pcfg.CodecWorkers = 4
	pcfg.Workers = 7
	pipelined, err := Run(pcfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, sync, pipelined)
}

func TestPrefetchNilFramesAreNoOps(t *testing.T) {
	seq := testSeq(t, "Desk", 2)
	sys := New(fastAGS(tw, th), seq.Intr)
	sys.Prefetch(nil, seq.Frames[1])
	sys.Prefetch(seq.Frames[0], nil)
	if len(sys.pending) != 0 {
		t.Errorf("nil prefetch queued %d jobs", len(sys.pending))
	}
}
