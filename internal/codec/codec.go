// Package codec models the motion-estimation (ME) stage of a hardware video
// CODEC (paper §2.3): the current frame is divided into macro-blocks (MBs),
// each matched against a search window in the previous frame by minimizing
// the Sum of Absolute Differences (SAD). AGS repurposes the per-MB minimum
// SADs — accumulated over the frame — as a frame-covisibility metric, so this
// package exposes exactly that intermediate data, plus the motion vectors a
// real encoder would use, and the operation counts the hardware model charges.
package codec

import (
	"fmt"

	"ags/internal/frame"
)

// Config selects the ME parameters.
type Config struct {
	// BlockSize is the macro-block edge in pixels (paper example: 8x8).
	BlockSize int
	// SearchRange is the half-width of the search window in pixels.
	SearchRange int
	// ThreeStep selects the logarithmic three-step search a real-time
	// encoder uses instead of exhaustive full search.
	ThreeStep bool
}

// DefaultConfig matches the paper's description: 8x8 macro-blocks with a
// hardware-typical +-8 pixel three-step search.
func DefaultConfig() Config {
	return Config{BlockSize: 8, SearchRange: 8, ThreeStep: true}
}

// MotionVector is the displacement of one macro-block between frames.
type MotionVector struct{ DX, DY int }

// Result holds the ME outputs for one frame pair.
type Result struct {
	Cfg      Config
	MBW, MBH int            // macro-block grid size
	MinSAD   []uint32       // per-MB minimum SAD (the AGS covisibility input)
	MV       []MotionVector // per-MB best displacement
	// SADOps counts absolute-difference operations performed — the work the
	// CODEC IP does anyway for compression, which AGS gets for free.
	SADOps int64
}

// SumMinSAD returns the accumulated minimum SAD over all macro-blocks
// (Σ_i SAD_min^i in §4.1). Larger means less covisibility.
func (r *Result) SumMinSAD() uint64 {
	var s uint64
	for _, v := range r.MinSAD {
		s += uint64(v)
	}
	return s
}

// MaxPossibleSAD returns the worst-case accumulated SAD (every pixel differs
// by the full 8-bit range), used to normalize covisibility to [0,1].
func (r *Result) MaxPossibleSAD() uint64 {
	block := uint64(r.Cfg.BlockSize * r.Cfg.BlockSize)
	return uint64(len(r.MinSAD)) * block * 255
}

// MotionEstimate runs ME of cur against prev (the reference frame).
// Both images must have identical dimensions.
func MotionEstimate(prev, cur *frame.Image, cfg Config) (*Result, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("codec: frame size mismatch %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	if cfg.BlockSize <= 0 || cfg.SearchRange < 0 {
		return nil, fmt.Errorf("codec: invalid config %+v", cfg)
	}
	pl := prev.Luma8()
	cl := cur.Luma8()
	w, h := cur.W, cur.H
	bs := cfg.BlockSize
	mbw := w / bs
	mbh := h / bs
	if mbw == 0 || mbh == 0 {
		return nil, fmt.Errorf("codec: image %dx%d smaller than block %d", w, h, bs)
	}
	res := &Result{
		Cfg: cfg, MBW: mbw, MBH: mbh,
		MinSAD: make([]uint32, mbw*mbh),
		MV:     make([]MotionVector, mbw*mbh),
	}
	for by := 0; by < mbh; by++ {
		for bx := 0; bx < mbw; bx++ {
			x0, y0 := bx*bs, by*bs
			var best uint32
			var bestMV MotionVector
			if cfg.ThreeStep {
				best, bestMV = threeStepSearch(cl, pl, w, h, x0, y0, bs, cfg.SearchRange, &res.SADOps)
			} else {
				best, bestMV = fullSearch(cl, pl, w, h, x0, y0, bs, cfg.SearchRange, &res.SADOps)
			}
			res.MinSAD[by*mbw+bx] = best
			res.MV[by*mbw+bx] = bestMV
		}
	}
	return res, nil
}

// sad computes the SAD between the current block at (x0,y0) and the
// reference block displaced by (dx,dy). Out-of-frame reference pixels are
// clamped to the border (encoder padding behavior).
func sad(cur, ref []uint8, w, h, x0, y0, bs, dx, dy int, ops *int64) uint32 {
	var acc uint32
	for y := 0; y < bs; y++ {
		cy := y0 + y
		ry := clampInt(cy+dy, 0, h-1)
		rowC := cy * w
		rowR := ry * w
		for x := 0; x < bs; x++ {
			cx := x0 + x
			rx := clampInt(cx+dx, 0, w-1)
			c := int32(cur[rowC+cx])
			r := int32(ref[rowR+rx])
			d := c - r
			if d < 0 {
				d = -d
			}
			acc += uint32(d)
		}
	}
	*ops += int64(bs * bs)
	return acc
}

func fullSearch(cur, ref []uint8, w, h, x0, y0, bs, sr int, ops *int64) (uint32, MotionVector) {
	best := ^uint32(0)
	var mv MotionVector
	for dy := -sr; dy <= sr; dy++ {
		for dx := -sr; dx <= sr; dx++ {
			s := sad(cur, ref, w, h, x0, y0, bs, dx, dy, ops)
			if s < best || (s == best && absInt(dx)+absInt(dy) < absInt(mv.DX)+absInt(mv.DY)) {
				best = s
				mv = MotionVector{dx, dy}
			}
		}
	}
	return best, mv
}

// threeStepSearch is the New Three-Step Search (NTSS) used by real-time
// encoders: the classical logarithmic pattern, plus a unit-ring probe around
// the origin in the first pass. Streaming video — and SLAM capture in
// particular — is dominated by small motions, where plain TSS's large first
// step can jump into a false SAD basin; NTSS short-circuits to a fine search
// when the best first-pass candidate is adjacent to the origin.
func threeStepSearch(cur, ref []uint8, w, h, x0, y0, bs, sr int, ops *int64) (uint32, MotionVector) {
	cx, cy := 0, 0
	best := sad(cur, ref, w, h, x0, y0, bs, 0, 0, ops)

	scanRing := func(centerX, centerY, step int) (int, int, bool) {
		bx, by := centerX, centerY
		improved := false
		for dy := -step; dy <= step; dy += step {
			for dx := -step; dx <= step; dx += step {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := centerX+dx, centerY+dy
				if absInt(nx) > sr || absInt(ny) > sr {
					continue
				}
				if s := sad(cur, ref, w, h, x0, y0, bs, nx, ny, ops); s < best {
					best = s
					bx, by = nx, ny
					improved = true
				}
			}
		}
		return bx, by, improved
	}

	step := 1
	for step*2 <= sr {
		step *= 2
	}
	// First pass: coarse ring and unit ring around the origin.
	coarseX, coarseY, _ := scanRing(0, 0, step)
	fineX, fineY, fineImproved := scanRing(0, 0, 1)
	if fineImproved {
		// The unit ring beat every coarse candidate: small-motion fast path,
		// refine once more around the unit-ring winner and stop.
		cx, cy, _ = scanRing(fineX, fineY, 1)
		return best, MotionVector{cx, cy}
	}
	cx, cy = coarseX, coarseY
	step /= 2
	for step >= 1 {
		cx, cy, _ = scanRing(cx, cy, step)
		step /= 2
	}
	return best, MotionVector{cx, cy}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
