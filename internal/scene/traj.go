package scene

import (
	"math"
	"math/rand"

	"ags/internal/vecmath"
)

// LookAt builds a world-to-camera pose for a camera at eye looking toward
// target, with the image x axis horizontal relative to world up (+Y).
func LookAt(eye, target vecmath.Vec3) vecmath.Pose {
	up := vecmath.Vec3{Y: 1}
	zc := target.Sub(eye).Normalized()
	if math.Abs(zc.Dot(up)) > 0.999 {
		up = vecmath.Vec3{X: 1} // forward (anti)parallel to up: pick another
	}
	xc := zc.Cross(up).Normalized()
	yc := zc.Cross(xc).Normalized()
	r := vecmath.Mat3{
		xc.X, xc.Y, xc.Z,
		yc.X, yc.Y, yc.Z,
		zc.X, zc.Y, zc.Z,
	}
	q := vecmath.QuatFromMat3(r)
	return vecmath.Pose{R: q, T: q.Rotate(eye).Neg()}
}

// Trajectory is a sequence of world-to-camera poses.
type Trajectory []vecmath.Pose

// MotionScript parameterizes a camera path: eye and look-at target as
// functions of normalized time u in [0,1], plus per-frame pose jitter that
// emulates hand-held / platform vibration.
type MotionScript struct {
	Eye         func(u float64) vecmath.Vec3
	Target      func(u float64) vecmath.Vec3
	JitterTrans float64 // stddev of per-frame translation noise (meters)
	JitterAngle float64 // stddev of per-frame rotation noise (radians)
	Seed        int64
	// Span limits the fraction of the path covered (0 or 1 = whole path).
	// Dataset generation sets Span = n/RefFrames for short sequences so the
	// per-frame motion matches a full-length capture instead of compressing
	// the entire trajectory into a handful of frames.
	Span float64
}

// RefFrames is the reference sequence length: a full-length capture covers
// the whole scripted path in this many frames.
const RefFrames = 40

// Build samples n poses from the script.
func (ms MotionScript) Build(n int) Trajectory {
	rng := rand.New(rand.NewSource(ms.Seed))
	span := ms.Span
	if span <= 0 || span > 1 {
		span = 1
	}
	traj := make(Trajectory, n)
	for i := 0; i < n; i++ {
		u := 0.0
		if n > 1 {
			u = span * float64(i) / float64(n-1)
		}
		pose := LookAt(ms.Eye(u), ms.Target(u))
		if ms.JitterTrans > 0 || ms.JitterAngle > 0 {
			tw := vecmath.Twist{
				V: vecmath.Vec3{
					X: rng.NormFloat64() * ms.JitterTrans,
					Y: rng.NormFloat64() * ms.JitterTrans,
					Z: rng.NormFloat64() * ms.JitterTrans,
				},
				W: vecmath.Vec3{
					X: rng.NormFloat64() * ms.JitterAngle,
					Y: rng.NormFloat64() * ms.JitterAngle,
					Z: rng.NormFloat64() * ms.JitterAngle,
				},
			}
			pose = pose.Retract(tw)
		}
		traj[i] = pose
	}
	return traj
}

// Stats summarizes inter-frame motion: mean translation (m/frame) and mean
// rotation (rad/frame). The experiment scripts use this to verify each named
// sequence has the motion profile its TUM/Replica counterpart is known for.
func (t Trajectory) Stats() (meanTrans, meanRot float64) {
	if len(t) < 2 {
		return 0, 0
	}
	for i := 1; i < len(t); i++ {
		meanTrans += t[i].TranslationTo(t[i-1])
		meanRot += t[i].R.AngleTo(t[i-1].R)
	}
	n := float64(len(t) - 1)
	return meanTrans / n, meanRot / n
}

// orbit returns an eye function circling center at the given radius/height,
// sweeping totalAngle radians.
func orbit(center vecmath.Vec3, radius, height, startAngle, totalAngle float64) func(float64) vecmath.Vec3 {
	return func(u float64) vecmath.Vec3 {
		a := startAngle + u*totalAngle
		return vecmath.Vec3{
			X: center.X + radius*math.Cos(a),
			Y: center.Y + height,
			Z: center.Z + radius*math.Sin(a),
		}
	}
}

// waypoints returns a piecewise-linear path through the points with
// Catmull-Rom-style smoothing disabled (linear is fine at SLAM frame rates).
func waypoints(pts ...vecmath.Vec3) func(float64) vecmath.Vec3 {
	return func(u float64) vecmath.Vec3 {
		if len(pts) == 1 {
			return pts[0]
		}
		s := u * float64(len(pts)-1)
		i := int(s)
		if i >= len(pts)-1 {
			return pts[len(pts)-1]
		}
		f := s - float64(i)
		return pts[i].Lerp(pts[i+1], f)
	}
}

// fixed returns a constant position.
func fixed(p vecmath.Vec3) func(float64) vecmath.Vec3 {
	return func(float64) vecmath.Vec3 { return p }
}
