package optim

import (
	"math"
	"testing"
)

// fakeGrads returns a deterministic gradient vector for one step.
func fakeGrads(step, n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = math.Sin(float64(step*31+i)) * 0.1
	}
	return g
}

// TestAdamRemapContinuesSurvivors is the bit-transparency property compaction
// rests on: after remapping moments through a permutation that drops a block,
// the surviving blocks' next update is bitwise the update the full-length
// optimizer would have given them.
func TestAdamRemapContinuesSurvivors(t *testing.T) {
	const n, stride, warm = 5, 2, 3
	full := NewAdam(1e-2)
	packed := NewAdam(1e-2)
	pFull := make([]float64, n*stride)
	pPacked := make([]float64, n*stride)
	for i := range pFull {
		pFull[i] = float64(i) * 0.01
		pPacked[i] = pFull[i]
	}
	for s := 0; s < warm; s++ {
		g := fakeGrads(s, n*stride)
		full.Step(pFull, g)
		packed.Step(pPacked, g)
	}

	// Drop block 2: survivors 0,1,3,4 pack to 0,1,2,3; the dead block maps to
	// the out-of-range sentinel newN.
	remap := []int32{0, 1, 4, 2, 3}
	const newN = 4
	survivors := []int{0, 1, 3, 4}
	packed.Remap(stride, remap, newN)

	pk := make([]float64, newN*stride)
	for nw, old := range survivors {
		copy(pk[nw*stride:(nw+1)*stride], pPacked[old*stride:(old+1)*stride])
	}
	gFull := fakeGrads(warm, n*stride)
	gk := make([]float64, newN*stride)
	for nw, old := range survivors {
		copy(gk[nw*stride:(nw+1)*stride], gFull[old*stride:(old+1)*stride])
	}
	full.Step(pFull, gFull)
	packed.Step(pk, gk)
	for nw, old := range survivors {
		for j := 0; j < stride; j++ {
			if pk[nw*stride+j] != pFull[old*stride+j] {
				t.Fatalf("survivor block %d elem %d: packed %v != full %v",
					old, j, pk[nw*stride+j], pFull[old*stride+j])
			}
		}
	}
}

// TestAdamRemapStaleLengthResets: when the parameter vector grew since the
// last Step, the un-remapped timeline's next Step would reinitialize the
// moments — Remap must mirror that instead of remapping stale state.
func TestAdamRemapStaleLengthResets(t *testing.T) {
	a := NewAdam(1e-2)
	p := []float64{1, 2, 3}
	a.Step(p, []float64{0.1, 0.2, 0.3})
	// Moments cover 3 blocks of stride 1; pretend the cloud grew to 4.
	a.Remap(1, []int32{0, 1, 2, 3}, 4)
	m, v, step := a.State()
	if m != nil || v != nil || step != 0 {
		t.Fatalf("stale remap kept state: m=%v v=%v step=%d", m, v, step)
	}
}

func TestGroupAdamStateRoundTrip(t *testing.T) {
	g := NewGroupAdam(map[string]float64{"mean": 1e-3, "color": 5e-3})
	p := []float64{1, 2}
	g.Step("mean", p, []float64{0.1, -0.1})
	g.Step("mean", p, []float64{0.05, 0.2})

	names := g.GroupNames()
	if len(names) != 1 || names[0] != "mean" {
		t.Fatalf("GroupNames = %v, want [mean]", names)
	}
	m, v, step, ok := g.GroupState("mean")
	if !ok || step != 2 {
		t.Fatalf("GroupState: ok=%v step=%d", ok, step)
	}
	if _, _, _, ok := g.GroupState("color"); ok {
		t.Fatal("never-stepped group reported state")
	}

	// SetGroupState adopts the slices, and g keeps stepping its own — copy so
	// the two optimizers don't share moment storage.
	g2 := NewGroupAdam(map[string]float64{"mean": 1e-3, "color": 5e-3})
	g2.SetGroupState("mean", append([]float64(nil), m...), append([]float64(nil), v...), step)
	pa, pb := []float64{3, 4}, []float64{3, 4}
	grad := []float64{-0.2, 0.3}
	g.Step("mean", pa, grad)
	g2.Step("mean", pb, grad)
	if pa[0] != pb[0] || pa[1] != pb[1] {
		t.Fatalf("restored group diverged: %v vs %v", pa, pb)
	}
}
