package vecmath

import "reflect"

// Helpers shared by the property-based tests: testing/quick generates values
// via reflection, and we want bounded, realistic float magnitudes.

type reflectValue = reflect.Value

func valueOf(v interface{}) reflect.Value { return reflect.ValueOf(v) }
