// Package metrics implements the evaluation metrics of the paper: ATE RMSE
// (absolute trajectory error after rigid alignment, Table 2), PSNR (mapping
// quality, Fig. 14), and the false-positive rate of contribution prediction
// (§6.2). Alignment uses Horn's closed-form quaternion method.
package metrics

import (
	"fmt"
	"math"

	"ags/internal/frame"
	"ags/internal/vecmath"
)

// PSNR returns the peak signal-to-noise ratio in dB between two images.
// Identical images return +Inf.
func PSNR(a, b *frame.Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("metrics: image size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := a.Pix[i].Sub(b.Pix[i])
		mse += d.X*d.X + d.Y*d.Y + d.Z*d.Z
	}
	mse /= float64(3 * len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(1/mse), nil
}

// AlignRigid returns the rigid transform (applied to src points) that best
// maps src onto dst in the least-squares sense (Horn's quaternion method,
// no scale — the SE(3) alignment standard for RGB-D ATE evaluation).
func AlignRigid(src, dst []vecmath.Vec3) (vecmath.Pose, error) {
	if len(src) != len(dst) || len(src) == 0 {
		return vecmath.PoseIdentity(), fmt.Errorf("metrics: bad correspondence count %d vs %d", len(src), len(dst))
	}
	n := float64(len(src))
	var cs, cd vecmath.Vec3
	for i := range src {
		cs = cs.Add(src[i])
		cd = cd.Add(dst[i])
	}
	cs = cs.Scale(1 / n)
	cd = cd.Scale(1 / n)

	// Cross-covariance S = sum (src-cs)(dst-cd)^T.
	var s vecmath.Mat3
	for i := range src {
		s = s.Add(vecmath.OuterProduct(src[i].Sub(cs), dst[i].Sub(cd)))
	}
	// Horn's symmetric 4x4 matrix N.
	var nmat [16]float64
	tr := s[0] + s[4] + s[8]
	nmat[0] = tr
	nmat[1], nmat[4] = s[5]-s[7], s[5]-s[7]
	nmat[2], nmat[8] = s[6]-s[2], s[6]-s[2]
	nmat[3], nmat[12] = s[1]-s[3], s[1]-s[3]
	nmat[5] = s[0] - s[4] - s[8]
	nmat[6], nmat[9] = s[1]+s[3], s[1]+s[3]
	nmat[7], nmat[13] = s[2]+s[6], s[2]+s[6]
	nmat[10] = -s[0] + s[4] - s[8]
	nmat[11], nmat[14] = s[5]+s[7], s[5]+s[7]
	nmat[15] = -s[0] - s[4] + s[8]

	q := maxEigenvector4(nmat)
	rot := vecmath.Quat{W: q[0], X: q[1], Y: q[2], Z: q[3]}.Normalized()
	t := cd.Sub(rot.Rotate(cs))
	return vecmath.Pose{R: rot, T: t}, nil
}

// maxEigenvector4 returns the eigenvector of the dominant eigenvalue of a
// symmetric 4x4 matrix via shifted power iteration.
func maxEigenvector4(m [16]float64) [4]float64 {
	// Shift to make the target eigenvalue the largest in magnitude.
	var shift float64
	for i := 0; i < 4; i++ {
		var row float64
		for j := 0; j < 4; j++ {
			row += math.Abs(m[4*i+j])
		}
		shift = math.Max(shift, row)
	}
	for i := 0; i < 4; i++ {
		m[4*i+i] += shift
	}
	v := [4]float64{1, 0.3, -0.2, 0.5} // arbitrary non-degenerate start
	for iter := 0; iter < 128; iter++ {
		var nv [4]float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				nv[i] += m[4*i+j] * v[j]
			}
		}
		var norm float64
		for i := 0; i < 4; i++ {
			norm += nv[i] * nv[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := 0; i < 4; i++ {
			v[i] = nv[i] / norm
		}
	}
	return v
}

// ATERMSE computes the absolute trajectory error (RMSE over camera centers,
// in the same units as the scene — meters here; the experiment harness
// reports centimeters) between estimated and ground-truth world-to-camera
// poses, after rigid alignment of the estimated trajectory.
func ATERMSE(est, gt []vecmath.Pose) (float64, error) {
	if len(est) != len(gt) || len(est) == 0 {
		return 0, fmt.Errorf("metrics: trajectory length mismatch %d vs %d", len(est), len(gt))
	}
	src := make([]vecmath.Vec3, len(est))
	dst := make([]vecmath.Vec3, len(gt))
	for i := range est {
		src[i] = est[i].Center()
		dst[i] = gt[i].Center()
	}
	align := vecmath.PoseIdentity()
	if len(est) >= 3 {
		a, err := AlignRigid(src, dst)
		if err != nil {
			return 0, err
		}
		align = a
	}
	var sq float64
	for i := range src {
		d := align.Apply(src[i]).Sub(dst[i])
		sq += d.NormSq()
	}
	return math.Sqrt(sq / float64(len(src))), nil
}

// FalsePositiveRate compares predicted non-contributory Gaussian IDs against
// the ground-truth non-contributory set: FP cases are contributory Gaussians
// (not in truth) wrongly predicted as non-contributory. The rate is FP
// divided by the number of predictions, as in §6.2.
func FalsePositiveRate(predicted, truth map[int]bool) float64 {
	if len(predicted) == 0 {
		return 0
	}
	fp := 0
	for id := range predicted {
		if !truth[id] {
			fp++
		}
	}
	return float64(fp) / float64(len(predicted))
}

// GeoMean returns the geometric mean of positive values; zero and negative
// entries are skipped.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
