// Package vecmath provides the small fixed-size linear algebra used across
// the AGS reproduction: 2/3/4-component vectors, 2x2/3x3/4x4 matrices,
// quaternions, rigid-body transforms on SE(3), and a Jacobi eigensolver for
// symmetric matrices. Everything is allocation-free value math so it can sit
// in the inner loops of the splatting renderer.
package vecmath

import "math"

// Vec2 is a 2-component vector.
type Vec2 struct{ X, Y float64 }

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Vec4 is a 4-component vector.
type Vec4 struct{ X, Y, Z, W float64 }

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v - u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns v * s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and u.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Dot returns the dot product of v and u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Clamp returns v with every component clamped to [lo, hi].
func (v Vec3) Clamp(lo, hi float64) Vec3 {
	return Vec3{clamp(v.X, lo, hi), clamp(v.Y, lo, hi), clamp(v.Z, lo, hi)}
}

// Lerp returns the linear interpolation (1-t)*v + t*u.
func (v Vec3) Lerp(u Vec3, t float64) Vec3 {
	return v.Scale(1 - t).Add(u.Scale(t))
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// Abs returns the component-wise absolute value.
func (v Vec3) Abs() Vec3 { return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// IsFinite reports whether every component is finite.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// XY returns the first two components as a Vec2.
func (v Vec4) XY() Vec2 { return Vec2{v.X, v.Y} }

// XYZ returns the first three components as a Vec3.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp returns x clamped to [lo, hi].
func Clamp(x, lo, hi float64) float64 { return clamp(x, lo, hi) }
