package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
)

// recvWire wraps raw bytes as the read side of a wire, no conn needed.
func recvWire(data []byte) *wire {
	return &wire{r: bufio.NewReader(bytes.NewReader(data))}
}

func TestMessageRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello fleet"),
		nil,
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	verbs := []verb{vOpen, vStats, vPush}
	var stream []byte
	for i, p := range payloads {
		stream = appendMessage(stream, verbs[i], p)
	}
	w := recvWire(stream)
	for i, want := range payloads {
		v, got, err := w.recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if v != verbs[i] {
			t.Errorf("message %d: verb %s, want %s", i, v, verbs[i])
		}
		if !bytes.Equal(got, want) {
			t.Errorf("message %d: payload %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, _, err := w.recv(); err != io.EOF {
		t.Errorf("after last message: err = %v, want io.EOF", err)
	}
}

// reframe recomputes the trailing checksum after a deliberate header or
// payload mutation, so the test reaches the validation step it aims at
// instead of tripping the checksum first.
func reframe(msg []byte) []byte {
	body := msg[:len(msg)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}

// damageModes is the per-frame corruption catalogue: each mode mutates one
// clean frame and names the single sentinel the reader must land on. Modes
// marked needsPayload only apply to frames that carry bytes (payload
// corruption on an empty payload is a no-op).
var damageModes = []struct {
	name         string
	needsPayload bool
	mut          func([]byte) []byte
	want         error
}{
	{"bad magic", false, func(m []byte) []byte {
		m[0] = 'X'
		return m
	}, ErrBadMagic},
	{"version skew", false, func(m []byte) []byte {
		m[4] = ProtocolVersion + 1
		return reframe(m) // valid checksum: version is rejected on its own
	}, ErrVersionSkew},
	{"oversized length prefix", false, func(m []byte) []byte {
		binary.LittleEndian.PutUint64(m[6:14], MaxPayload+1)
		return m
	}, ErrOversized},
	{"truncated header", false, func(m []byte) []byte {
		return m[:headerSize-3]
	}, ErrTruncated},
	{"truncated body", false, func(m []byte) []byte {
		return m[:len(m)-5]
	}, ErrTruncated},
	{"payload corruption", true, func(m []byte) []byte {
		m[headerSize+2] ^= 0x40
		return m
	}, ErrChecksum},
	{"checksum corruption", false, func(m []byte) []byte {
		m[len(m)-1] ^= 0x01
		return m
	}, ErrChecksum},
	{"verb corruption", false, func(m []byte) []byte {
		m[5] = 0x7F
		return reframe(m) // checksum-valid frame carrying a verb we don't speak
	}, ErrUnknownVerb},
}

// TestRecvDamageEveryVerb drives every damage mode over every registered wire
// verb, payload-less and payload-carrying — the fleet mirror of the snapshot
// damage contract. Ranging over the verb registry means a newly added verb
// gets per-damage-mode sentinel coverage the moment it exists, with no table
// to remember to extend.
func TestRecvDamageEveryVerb(t *testing.T) {
	payloads := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"payload", []byte("frame bytes go here")},
	}
	for _, v := range registeredVerbs() {
		for _, pl := range payloads {
			base := appendMessage(nil, v, pl.p)
			// The undamaged frame must decode cleanly before damaging it:
			// a mode that "fails" on an already-broken frame proves nothing.
			if rv, rp, err := recvWire(base).recv(); err != nil || rv != v || !bytes.Equal(rp, pl.p) {
				t.Fatalf("clean %s/%s frame: verb %s payload %d err %v", v, pl.name, rv, len(rp), err)
			}
			for _, mode := range damageModes {
				if mode.needsPayload && len(pl.p) == 0 {
					continue
				}
				t.Run(fmt.Sprintf("%s/%s/%s", v, pl.name, mode.name), func(t *testing.T) {
					msg := mode.mut(append([]byte(nil), base...))
					_, _, err := recvWire(msg).recv()
					if !errors.Is(err, mode.want) {
						t.Fatalf("recv = %v, want %v", err, mode.want)
					}
					// Each failure mode must keep its distinct identity: no
					// other sentinel may match.
					for _, other := range []error{ErrBadMagic, ErrVersionSkew, ErrOversized, ErrTruncated, ErrChecksum, ErrUnknownVerb} {
						if other != mode.want && errors.Is(err, other) {
							t.Errorf("error %v also matches %v", err, other)
						}
					}
				})
			}
		}
	}
}

// TestVerbNamesComplete pins the registry itself: every registered verb must
// render a real name (an unnamed verb means verbNames lagged a new verb
// constant, and with it every name-keyed diagnostic).
func TestVerbNamesComplete(t *testing.T) {
	seen := make(map[string]verb)
	for _, v := range registeredVerbs() {
		name := v.String()
		if name == "" || name == fmt.Sprintf("verb(0x%02x)", byte(v)) {
			t.Errorf("verb %d has no entry in verbNames", byte(v))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("verbs %d and %d share the name %q", byte(prev), byte(v), name)
		}
		seen[name] = v
	}
	if verb(0).String() == "" {
		t.Error("verb 0 should render a placeholder name, not empty")
	}
}

// TestErrorClassification pins the recovery layer's transport/application
// split: a reply from a live node (remote error, placement bounce) must
// never be classified as node loss, and genuine transport damage must be.
func TestErrorClassification(t *testing.T) {
	alive := []error{
		decodeErrReply(encodeErrReply(nil, codeInternal, "boom")),
		decodeErrReply(encodeErrReply(nil, codeProto, "bad request")),
		decodeErrReply(encodeErrReply(nil, codeAdmission, "full")),
		decodeErrReply(encodeErrReply(nil, codeDraining, "draining")),
	}
	for _, err := range alive {
		if isNodeLoss(err) {
			t.Errorf("reply from a live node classified as node loss: %v", err)
		}
	}
	dead := []error{
		io.EOF,
		ErrTruncated,
		ErrChecksum,
		fmt.Errorf("write tcp 127.0.0.1: broken pipe"),
	}
	for _, err := range dead {
		if !isNodeLoss(err) {
			t.Errorf("transport failure not classified as node loss: %v", err)
		}
	}
}

func TestRecvCleanEOF(t *testing.T) {
	if _, _, err := recvWire(nil).recv(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// FuzzRecv feeds arbitrary bytes to the frame reader: it must never panic
// and never return a valid message unless the checksum genuinely holds.
// Every registered verb seeds the corpus, empty and payload-carrying, so new
// verbs are fuzzed from their first run.
func FuzzRecv(f *testing.F) {
	for _, v := range registeredVerbs() {
		f.Add(appendMessage(nil, v, nil))
		f.Add(appendMessage(nil, v, []byte("seed")))
	}
	f.Add([]byte("AGSF garbage that is not a frame"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, payload, err := recvWire(data).recv()
		if err != nil {
			return
		}
		// recv accepted the frame: re-encoding its content must reproduce a
		// prefix of the input bit for bit.
		re := appendMessage(nil, v, payload)
		if len(data) < len(re) || !bytes.Equal(data[:len(re)], re) {
			t.Fatalf("accepted frame does not round-trip: verb %s, %d byte payload", v, len(payload))
		}
	})
}

func TestErrReplyCodes(t *testing.T) {
	cases := []struct {
		code byte
		want error
	}{
		{codeAdmission, ErrAdmission},
		{codeDraining, ErrDraining},
	}
	for _, tc := range cases {
		err := decodeErrReply(encodeErrReply(nil, tc.code, "node x is busy"))
		if !errors.Is(err, tc.want) {
			t.Errorf("code %d: decoded %v, want %v", tc.code, err, tc.want)
		}
	}
	if err := decodeErrReply(encodeErrReply(nil, codeInternal, "boom")); err == nil {
		t.Error("internal code decoded to nil error")
	}
}

func TestPayloadDecodeRejectsTrailingBytes(t *testing.T) {
	p := encodeOpen(nil, "desk", []byte{1, 2}, []byte{3})
	p = append(p, 0xFF) // one stray byte
	if _, _, _, err := decodeOpen(p); err == nil {
		t.Fatal("decodeOpen accepted trailing bytes")
	}
}

func TestPayloadDecodeRejectsOverlongSlice(t *testing.T) {
	var e wireEnc
	e.u64(1 << 40) // declared slice length far beyond the payload
	if _, _, _, err := decodeOpen(e.buf); err == nil {
		t.Fatal("decodeOpen accepted slice length beyond payload")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := NodeStats{Name: "node-a", OpenSessions: 3, Draining: true, MaxSessions: 8, MaxResidentBytes: 1 << 20}
	in.Pool.Capacity = 4
	in.Pool.Hits = 17
	in.Pool.ResidentBytes = 12345
	out, err := decodeStats(encodeStats(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round-trip: got %+v, want %+v", out, in)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := ResultSummary{Frames: 16, NumGaussians: 900, ATECm: 3.25, PrunedGaussians: 4, CompactedSlots: 2, ReclaimedBytes: 512, DroppedUpdates: 1}
	for i := range in.Digest {
		in.Digest[i] = byte(i * 7)
	}
	out, err := decodeResult(encodeResult(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("result round-trip: got %+v, want %+v", out, in)
	}
}
