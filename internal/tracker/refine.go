package tracker

import (
	"slices"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/hw/trace"
	"ags/internal/optim"
	"ags/internal/splat"
	"ags/internal/vecmath"
)

// GSRefiner performs pose optimization by differentiable rendering: N
// iterations of render → loss → pose gradient → Adam step, with the
// Gaussians held fixed (paper §2.2, tracking). With N = N_T (e.g. 200 scaled)
// this is the SplaTAM baseline tracker; with N = Iter_T (e.g. 20) it is
// AGS's fine-grained pose refinement.
type GSRefiner struct {
	LR      float64
	Loss    splat.LossConfig
	Workers int
	// Ctx, when non-nil, is the reusable render context every iteration
	// renders through, making the refinement loop allocation-free (nil falls
	// back to one-shot renders; outputs are bit-identical either way). The
	// refiner borrows the context only for the duration of a call — callers
	// may share one context across the tracker and mapper of a pipeline, but
	// not across goroutines. slam threads it per frame-step: the system
	// attaches a context from its server's splat.ContextPool before the
	// step and (in session mode) detaches it after, so the field may change
	// identity between frames.
	Ctx *splat.RenderContext
}

// NewGSRefiner returns a refiner with SplaTAM-style settings.
func NewGSRefiner() *GSRefiner {
	return &GSRefiner{LR: 2e-3, Loss: splat.DefaultTrackingLoss()}
}

// RefineBest evaluates the loss at each candidate initialization (one
// forward render each) and refines from the best one. SplaTAM-style trackers
// use a constant-velocity initialization that overshoots badly at motion
// reversals; keeping the previous pose as a fallback candidate caps the
// initial error at the true inter-frame motion.
//
//ags:hotpath
func (r *GSRefiner) RefineBest(cloud *gauss.Cloud, intr camera.Intrinsics, f *frame.Frame, inits []vecmath.Pose, iters int) (vecmath.Pose, trace.RenderStats) {
	if len(inits) == 0 {
		return vecmath.PoseIdentity(), trace.RenderStats{}
	}
	best := inits[0]
	if len(inits) > 1 {
		bestLoss := -1.0
		for _, init := range inits {
			cam := camera.Camera{Intr: intr, Pose: init}
			res := r.Ctx.Render(cloud, cam, splat.Options{Workers: r.Workers})
			grads := r.Ctx.Backward(cloud, cam, res, f, r.Loss, splat.BackwardOptions{Workers: r.Workers})
			if bestLoss < 0 || grads.Loss < bestLoss {
				bestLoss = grads.Loss
				best = init
			}
		}
	}
	return r.Refine(cloud, intr, f, best, iters)
}

// Refine optimizes the camera pose for the frame, starting from init, for
// the given number of iterations. It returns the refined pose and the
// splatting workload stats (accumulated into a trace.RenderStats). The
// twist parameter/gradient vectors are fixed-size stack arrays: the
// per-iteration loop allocates nothing of its own.
//
//ags:hotpath
func (r *GSRefiner) Refine(cloud *gauss.Cloud, intr camera.Intrinsics, f *frame.Frame, init vecmath.Pose, iters int) (vecmath.Pose, trace.RenderStats) {
	var stats trace.RenderStats
	pose := init
	adam := optim.NewAdam(r.LR)
	var params, prev [6]float64
	best := init
	bestLoss := -1.0
	for i := 0; i < iters; i++ {
		cam := camera.Camera{Intr: intr, Pose: pose}
		res := r.Ctx.Render(cloud, cam, splat.Options{Workers: r.Workers})
		grads := r.Ctx.Backward(cloud, cam, res, f, r.Loss, splat.BackwardOptions{PoseGrads: true, Workers: r.Workers})
		stats.Accumulate(res.AlphaOps, res.BlendOps, 2*res.BlendOps,
			int64(len(res.Splats)), int64(res.Tiles.TotalEntries()), int64(intr.W*intr.H))
		if i == iters-1 {
			// The trace snapshot outlives this iteration, while a contexted
			// res is only valid until the next render — copy, don't alias.
			stats.RepPerPixelBlend = slices.Clone(res.PerPixelBlend)
			stats.RepPerPixelAlpha = slices.Clone(res.PerPixelAlpha)
			stats.RepTileLists = res.TileIDLists()
			stats.Width, stats.Height = intr.W, intr.H
		}
		if bestLoss < 0 || grads.Loss < bestLoss {
			bestLoss = grads.Loss
			best = pose
		}
		g := [6]float64{grads.Pose.V.X, grads.Pose.V.Y, grads.Pose.V.Z, grads.Pose.W.X, grads.Pose.W.Y, grads.Pose.W.Z}
		prev = params
		adam.Step(params[:], g[:])
		step := vecmath.Twist{
			V: vecmath.Vec3{X: params[0] - prev[0], Y: params[1] - prev[1], Z: params[2] - prev[2]},
			W: vecmath.Vec3{X: params[3] - prev[3], Y: params[4] - prev[4], Z: params[5] - prev[5]},
		}
		pose = pose.Retract(step)
	}
	// Evaluate the final pose too, so the best-seen pose is returned.
	if iters > 0 {
		cam := camera.Camera{Intr: intr, Pose: pose}
		res := r.Ctx.Render(cloud, cam, splat.Options{Workers: r.Workers})
		grads := r.Ctx.Backward(cloud, cam, res, f, r.Loss, splat.BackwardOptions{Workers: r.Workers})
		if grads.Loss < bestLoss {
			best = pose
		}
	}
	return best, stats
}
