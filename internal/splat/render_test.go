package splat

import (
	"math"
	"testing"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

func testCam(w, h int) camera.Camera {
	return camera.Camera{
		Intr: camera.NewIntrinsics(w, h, math.Pi/3),
		Pose: vecmath.PoseIdentity(),
	}
}

// centeredGaussian returns a Gaussian on the optical axis at depth z.
func centeredGaussian(z, scale, opacity float64, color vecmath.Vec3) gauss.Gaussian {
	g := gauss.Gaussian{
		Mean:  vecmath.Vec3{Z: z},
		Rot:   vecmath.QuatIdentity(),
		Color: color,
	}
	g.SetScale(vecmath.Vec3{X: scale, Y: scale, Z: scale})
	g.SetOpacity(opacity)
	return g
}

func TestProjectGaussianCenter(t *testing.T) {
	cam := testCam(64, 48)
	g := centeredGaussian(2, 0.1, 0.8, vecmath.Vec3{X: 1})
	s, ok := ProjectGaussian(&g, cam)
	if !ok {
		t.Fatal("projection failed")
	}
	if math.Abs(s.Mean2D.X-cam.Intr.Cx) > 1e-9 || math.Abs(s.Mean2D.Y-cam.Intr.Cy) > 1e-9 {
		t.Errorf("center splat at %v", s.Mean2D)
	}
	if math.Abs(s.Depth-2) > 1e-12 {
		t.Errorf("depth = %v", s.Depth)
	}
	// Expected pixel sigma = fx * scale / z; radius = 3*sigma (plus blur).
	sigma := cam.Intr.Fx * 0.1 / 2
	wantR := 3 * math.Sqrt(sigma*sigma+covBlur)
	if math.Abs(s.Radius-wantR) > 0.05*wantR {
		t.Errorf("radius = %v, want about %v", s.Radius, wantR)
	}
}

func TestProjectGaussianBehindCamera(t *testing.T) {
	cam := testCam(64, 48)
	g := centeredGaussian(-1, 0.1, 0.8, vecmath.Vec3{})
	if _, ok := ProjectGaussian(&g, cam); ok {
		t.Error("gaussian behind camera projected")
	}
}

func TestSplatEvalPeakAtCenter(t *testing.T) {
	cam := testCam(64, 48)
	g := centeredGaussian(2, 0.1, 0.8, vecmath.Vec3{X: 1})
	s, _ := ProjectGaussian(&g, cam)
	peak := s.Eval(s.Mean2D.X, s.Mean2D.Y)
	if math.Abs(peak-1) > 1e-12 {
		t.Errorf("peak falloff = %v", peak)
	}
	if off := s.Eval(s.Mean2D.X+s.Radius, s.Mean2D.Y); off >= peak {
		t.Error("falloff did not decay with distance")
	}
}

func TestRenderSingleGaussianColor(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(1)
	cloud.Add(centeredGaussian(2, 0.3, 0.999, vecmath.Vec3{X: 0.8, Y: 0.2, Z: 0.1}))
	res := Render(cloud, cam, Options{})
	c := res.Color.At(32, 24)
	// Alpha clamps at MaxAlpha, so the center pixel is ~0.99 * color.
	want := vecmath.Vec3{X: 0.8, Y: 0.2, Z: 0.1}.Scale(MaxAlpha)
	if c.Sub(want).Norm() > 0.02 {
		t.Errorf("center color = %v, want about %v", c, want)
	}
	if d := res.Depth.At(32, 24); math.Abs(d-2*MaxAlpha) > 0.05 {
		t.Errorf("center depth = %v", d)
	}
	if sil := res.Silhouette[24*64+32]; math.Abs(sil-MaxAlpha) > 0.01 {
		t.Errorf("silhouette = %v", sil)
	}
	// A corner pixel far outside 3 sigma must be black.
	if c := res.Color.At(0, 0); c.Norm() > 1e-6 {
		t.Errorf("corner color = %v", c)
	}
}

func TestRenderDepthOrderOcclusion(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(2)
	// Back gaussian added first to verify sorting is by depth, not insertion.
	cloud.Add(centeredGaussian(4, 0.5, 0.999, vecmath.Vec3{Z: 1})) // blue, far
	cloud.Add(centeredGaussian(2, 0.3, 0.999, vecmath.Vec3{X: 1})) // red, near
	res := Render(cloud, cam, Options{})
	c := res.Color.At(32, 24)
	if c.X < 0.9 || c.Z > 0.05 {
		t.Errorf("near gaussian did not occlude: %v", c)
	}
}

func TestRenderEarlyTermination(t *testing.T) {
	cam := testCam(32, 32)
	cloud := gauss.NewCloud(30)
	for i := 0; i < 30; i++ {
		cloud.Add(centeredGaussian(1+0.1*float64(i), 0.5, 0.9, vecmath.Vec3{X: 0.5}))
	}
	res := Render(cloud, cam, Options{})
	pix := 16*32 + 16
	if res.FinalT[pix] >= TransmittanceEps {
		t.Fatalf("transmittance %v did not terminate", res.FinalT[pix])
	}
	// Early termination: far fewer blends than 30 per center pixel.
	if res.PerPixelBlend[pix] >= 30 {
		t.Errorf("blend count %d, early termination ineffective", res.PerPixelBlend[pix])
	}
}

func TestRenderSkipList(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(2)
	id0 := cloud.Add(centeredGaussian(2, 0.3, 0.999, vecmath.Vec3{X: 1}))
	cloud.Add(centeredGaussian(4, 0.5, 0.999, vecmath.Vec3{Z: 1}))
	skip := make([]bool, cloud.Len())
	skip[id0] = true
	res := Render(cloud, cam, Options{Skip: skip})
	if len(res.Splats) != 1 {
		t.Fatalf("splats after skip = %d", len(res.Splats))
	}
	c := res.Color.At(32, 24)
	if c.Z < 0.5 || c.X > 0.05 {
		t.Errorf("skip did not remove foreground gaussian: %v", c)
	}
}

func TestRenderInactiveGaussiansExcluded(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(1)
	id := cloud.Add(centeredGaussian(2, 0.3, 0.999, vecmath.Vec3{X: 1}))
	cloud.Prune(id)
	res := Render(cloud, cam, Options{})
	if len(res.Splats) != 0 {
		t.Errorf("pruned gaussian rendered")
	}
}

func TestContributionLogging(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(2)
	big := cloud.Add(centeredGaussian(2, 0.4, 0.999, vecmath.Vec3{X: 1}))
	// A tiny, nearly transparent gaussian: almost every pixel it touches sees
	// alpha below threshold.
	faint := centeredGaussian(2, 0.01, 0.002, vecmath.Vec3{Y: 1})
	faintID := cloud.Add(faint)
	res := Render(cloud, cam, Options{LogContribution: true, ThreshAlpha: 1.0 / 255})
	if res.NonContrib == nil {
		t.Fatal("contribution log missing")
	}
	if res.Touched[big] == 0 {
		t.Fatal("big gaussian not touched")
	}
	// The opaque center gaussian must contribute to at least its core pixels.
	if res.NonContrib[big] >= res.Touched[big] {
		t.Error("opaque gaussian logged as fully non-contributory")
	}
	// The faint gaussian must be non-contributory almost everywhere.
	if res.Touched[faintID] > 0 && float64(res.NonContrib[faintID]) < 0.9*float64(res.Touched[faintID]) {
		t.Errorf("faint gaussian: %d/%d non-contributory", res.NonContrib[faintID], res.Touched[faintID])
	}
}

func TestRenderDeterministicAcrossWorkers(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(20)
	for i := 0; i < 20; i++ {
		g := centeredGaussian(1.5+0.2*float64(i), 0.15, 0.7, vecmath.Vec3{X: float64(i) / 20, Y: 0.3, Z: 0.5})
		g.Mean.X = 0.3 * math.Sin(float64(i))
		g.Mean.Y = 0.2 * math.Cos(float64(i)*1.7)
		cloud.Add(g)
	}
	r1 := Render(cloud, cam, Options{Workers: 1})
	r8 := Render(cloud, cam, Options{Workers: 8})
	if d := frame.MeanAbsDiff(r1.Color, r8.Color); d != 0 {
		t.Errorf("worker count changed output by %v", d)
	}
	if r1.BlendOps != r8.BlendOps || r1.AlphaOps != r8.AlphaOps {
		t.Errorf("op counts differ: %d/%d vs %d/%d", r1.BlendOps, r1.AlphaOps, r8.BlendOps, r8.AlphaOps)
	}
}

func TestBuildTilesAssignsAndSorts(t *testing.T) {
	cam := testCam(64, 48) // 4x3 tile grid
	cloud := gauss.NewCloud(2)
	cloud.Add(centeredGaussian(2, 0.05, 0.9, vecmath.Vec3{X: 1}))
	cloud.Add(centeredGaussian(3, 0.05, 0.9, vecmath.Vec3{Y: 1}))
	splats := Preprocess(cloud, cam, nil)
	tiles := BuildTiles(splats, cam.Intr)
	if tiles.TW != 4 || tiles.TH != 3 {
		t.Fatalf("tile grid %dx%d", tiles.TW, tiles.TH)
	}
	// Both project near the center: the tile containing (32,24) is (2,1).
	list := tiles.List(2, 1)
	if len(list) != 2 {
		t.Fatalf("center tile has %d entries", len(list))
	}
	if splats[list[0]].Depth > splats[list[1]].Depth {
		t.Error("tile list not depth sorted")
	}
	if tiles.TotalEntries() < 2 {
		t.Error("TotalEntries undercounts")
	}
}

func TestBuildTilesCullsOffscreenSplats(t *testing.T) {
	intr := camera.NewIntrinsics(64, 48, math.Pi/3)
	// All four 3-sigma boxes miss the image entirely; clamping would have
	// charged each to a border tile.
	off := []Splat{
		{Mean2D: vecmath.Vec2{X: -40, Y: 20}, Radius: 6, Depth: 1},
		{Mean2D: vecmath.Vec2{X: 120, Y: 20}, Radius: 10, Depth: 1},
		{Mean2D: vecmath.Vec2{X: 30, Y: -25}, Radius: 4, Depth: 2},
		{Mean2D: vecmath.Vec2{X: 30, Y: 90}, Radius: 8, Depth: 2},
	}
	tiles := BuildTiles(off, intr)
	if n := tiles.TotalEntries(); n != 0 {
		t.Errorf("off-screen splats produced %d table entries, want 0", n)
	}
	// A splat straddling the left border must keep its on-screen tile.
	border := []Splat{{Mean2D: vecmath.Vec2{X: -2, Y: 8}, Radius: 5, Depth: 1}}
	tiles = BuildTiles(border, intr)
	if n := tiles.TotalEntries(); n != 1 {
		t.Fatalf("border splat has %d table entries, want 1", n)
	}
	if len(tiles.List(0, 0)) != 1 {
		t.Error("border splat missing from tile (0,0)")
	}
}

func TestTileCoverageMatchesRadius(t *testing.T) {
	cam := testCam(64, 48)
	cloud := gauss.NewCloud(1)
	// Large gaussian covering the whole image: all tiles get it.
	cloud.Add(centeredGaussian(1.2, 1.5, 0.9, vecmath.Vec3{X: 1}))
	splats := Preprocess(cloud, cam, nil)
	tiles := BuildTiles(splats, cam.Intr)
	for i := 0; i < tiles.NumTiles(); i++ {
		if len(tiles.ListAt(i)) != 1 {
			t.Fatalf("tile %d missing the full-screen gaussian", i)
		}
	}
}
