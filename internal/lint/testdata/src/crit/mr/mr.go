// Package mr is the maprange golden corpus: each function is a positive,
// negative, or suppressed case for range-over-map determinism analysis.
// "// want <check>" markers name the findings the harness expects on that
// line; lines without markers must stay clean.
package mr

import "sort"

func observe(string) {}

// CountValues is order-insensitive: only commutative integer reductions.
func CountValues(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// CollectSorted appends keys and imposes a total order after the loop.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectUnsorted leaks map iteration order into the returned slice.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	return keys
}

// Copy writes through the range key, so every visit order builds the same map.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Invert indexes by the range VALUE: duplicate values collide and the winner
// depends on iteration order.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // want maprange
		out[v] = k
	}
	return out
}

// AdmissionGuard is the pre-fix hot-set shape: the capacity condition reads
// state written inside the loop, so which keys are admitted depends on order.
func AdmissionGuard(freq map[int32]int, capN int) map[int32]bool {
	hot := make(map[int32]bool, capN)
	for id, f := range freq { // want maprange
		if f >= 2 && len(hot) < capN {
			hot[id] = true
		}
	}
	return hot
}

// FloatSum accumulates floats, which is not associative.
func FloatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want maprange
		s += v
	}
	return s
}

// CallInLoop calls out of the loop body; the callee may observe order.
func CallInLoop(m map[string]int) {
	for k := range m { // want maprange
		observe(k)
	}
}

// EarlyBreak stops after an order-dependent number of iterations.
func EarlyBreak(m map[string]int) {
	n := 0
	for k := range m { // want maprange
		if k == "stop" {
			break
		}
		n++
	}
	_ = n
}

// FirstPositive returns whichever positive entry the runtime visits first.
func FirstPositive(m map[string]int) string {
	for k, v := range m { // want maprange
		if v > 0 {
			return k
		}
	}
	return ""
}

// PruneZero deletes through the range key, which the spec guarantees is safe
// and order-independent.
func PruneZero(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// AnyNegative breaks only out of the inner slice loop; the outer map loop
// still visits every entry, and the count is a commutative reduction.
func AnyNegative(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				n++
				break
			}
		}
	}
	return n
}

// MaxValue is genuinely order-insensitive, but the heuristic cannot prove
// min/max reductions, so it carries a written justification.
func MaxValue(m map[string]int) int {
	best := 0
	//ags:allow(maprange, max reduction over ints: every visit order yields the same maximum)
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
