// Fleet recover: serve live streams across a 3-node fleet over loopback TCP
// and kill one node uncleanly mid-stream — listener and every connection torn
// down at once, no drain, no snapshot handoff. Streams opened with
// checkpoint-replay recovery re-place themselves on a surviving node, restore
// their last over-the-wire checkpoint, replay the buffered tail, and finish
// with digests bit-identical to sequential in-process runs.
//
// The demo boots three in-process fleet.Nodes behind deterministic fault
// injectors (fleet/chaos), routes three streams across them with
// CheckpointEvery=2, then kills whichever node serves the first stream
// halfway through. It then shows the router's health check evicting the dead
// node from the ring, starts a replacement on the same address, and shows the
// next health check re-admitting it.
//
//	go run -race ./examples/fleet_recover
package main

import (
	"fmt"
	"log"
	"net"

	"ags/internal/fleet"
	"ags/internal/fleet/chaos"
	"ags/internal/scene"
	"ags/internal/slam"
)

const (
	width, height = 48, 36
	frames        = 6
)

func main() {
	cfg := slam.AGSConfig(width, height)
	cfg.TrackIters = 12 // scaled-down N_T for a quick demo
	cfg.IterT = 4
	cfg.Mapper.MapIters = 6
	cfg.Mapper.DensifyStride = 2

	// 1. Sequential references: the digests recovery must reproduce.
	names := []string{"Desk", "Xyz", "Room"}
	seqs := make([]*scene.Sequence, len(names))
	refs := make([][32]byte, len(names))
	for i, name := range names {
		seq, err := scene.Generate(name, scene.Config{
			Width: width, Height: height, Frames: frames, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs[i] = seq
		res, err := slam.NewServer(slam.ServerConfig{}).Run(cfg, seq)
		if err != nil {
			log.Fatal(err)
		}
		refs[i] = res.Digest()
	}

	// 2. Three nodes over loopback, each behind a fault injector.
	router := fleet.NewRouter()
	nodeNames := []string{"node-a", "node-b", "node-c"}
	nodes := make(map[string]*fleet.Node, len(nodeNames))
	injs := make(map[string]*chaos.Injector, len(nodeNames))
	addrs := make(map[string]string, len(nodeNames))
	for i, name := range nodeNames {
		in := chaos.New(chaos.Config{Seed: 0xFEE7 + uint64(i)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		n := fleet.NewNode(fleet.NodeConfig{Name: name})
		addr, err := n.StartOn(in.Listen(ln))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s listening on %s (fault injector armed)\n", name, addr)
		nodes[name], injs[name], addrs[name] = n, in, addr
		if err := router.AddNode(addr); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Open the streams with recovery enabled: every 2 acked frames the
	// router snapshots the remote session (its checkpoint) and buffers the
	// frames pushed since (its replay tail).
	streams := make([]*fleet.Stream, len(seqs))
	for i, seq := range seqs {
		st, err := router.OpenWith(seq.Name, cfg, seq.Intr, fleet.StreamOptions{CheckpointEvery: 2})
		if err != nil {
			log.Fatal(err)
		}
		streams[i] = st
		fmt.Printf("stream %-5s placed on %s\n", seq.Name, st.Node())
	}

	// 4. Push round-robin; halfway through, kill the first stream's node
	// uncleanly — no drain, no goodbye. The injector closes the listener and
	// severs every live connection at once.
	var victim string
	for f := 0; f < frames; f++ {
		if f == frames/2 {
			victim = streams[0].Node()
			fmt.Printf("killing %s uncleanly at frame %d\n", victim, f)
			injs[victim].Kill()
		}
		for i, seq := range seqs {
			if err := streams[i].Push(seq.Frames[f]); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 5. The health check sees the corpse and evicts it from the ring.
	evicted := 0
	for _, h := range router.CheckHealth() {
		if h.Evicted {
			evicted++
			fmt.Printf("health check: %s unreachable, evicted from the ring\n", h.Name)
		}
	}
	if evicted != 1 {
		log.Fatalf("health check evicted %d node(s), want exactly 1", evicted)
	}

	// 6. Close and verify: digests must match the sequential runs exactly,
	// node death notwithstanding.
	recoveries, replayed := 0, 0
	for i, st := range streams {
		sum, err := st.Close()
		if err != nil {
			log.Fatal(err)
		}
		recoveries += st.Recoveries()
		replayed += st.Replayed()
		if sum.Digest != refs[i] {
			log.Fatalf("stream %s: digest diverged after recovery", names[i])
		}
		fmt.Printf("stream %-5s finished on %-6s after %d recovery(ies), %d frame(s) replayed: digest %x identical to sequential run\n",
			names[i], st.Node(), st.Recoveries(), st.Replayed(), sum.Digest[:8])
	}
	if recoveries == 0 {
		log.Fatal("expected at least one checkpoint-replay recovery")
	}
	if replayed == 0 {
		log.Fatal("expected at least one replayed frame")
	}

	// 7. A replacement node comes up on the dead node's address; the next
	// health check re-admits it into the ring.
	repl := fleet.NewNode(fleet.NodeConfig{Name: victim})
	if _, err := repl.Start(addrs[victim]); err != nil {
		log.Fatal(err)
	}
	for _, h := range router.CheckHealth() {
		if h.Readmitted {
			fmt.Printf("health check: %s back, re-admitted into the ring\n", h.Name)
		}
	}

	m := router.Metrics()
	fmt.Printf("router: %d recovery(ies) replaying %d frame(s) — all digests bit-identical\n",
		m.Recoveries, m.ReplayedFrames)

	router.Close()
	for _, name := range nodeNames {
		if name == victim {
			continue // killed uncleanly; its process state is gone
		}
		if err := nodes[name].Close(); err != nil {
			log.Fatal(err)
		}
	}
	if err := repl.Close(); err != nil {
		log.Fatal(err)
	}
}
