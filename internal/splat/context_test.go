package splat

import (
	"fmt"
	"math/rand"
	"testing"

	"ags/internal/frame"
)

// TestRenderContextAllocationFree pins the point of the tentpole: once a
// context is warm, the serial render and backward hot path allocates nothing.
// The budget is deliberately tiny and fixed — any regression (a buffer that
// stopped being reused, a closure that started escaping) fails loudly.
func TestRenderContextAllocationFree(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	lc := DefaultMappingLoss()
	opts := Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255}
	bopts := BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1}

	ctx := NewRenderContext()
	res := ctx.Render(cloud, cam, opts)
	ctx.Backward(cloud, cam, res, target, lc, bopts)

	const budget = 1.0 // allocs/op; steady state measures 0
	if allocs := testing.AllocsPerRun(20, func() {
		res = ctx.Render(cloud, cam, opts)
	}); allocs > budget {
		t.Errorf("warm contexted render: %.1f allocs/op, budget %.0f", allocs, budget)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		ctx.Backward(cloud, cam, res, target, lc, bopts)
	}); allocs > budget {
		t.Errorf("warm contexted backward: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestRenderContextMixedSizeReuse drives one context through 50 renders of
// mixed frame sizes and clouds, asserting every output (and its backward
// gradients) is bitwise identical to a fresh, unpooled one-shot call — i.e.
// context reuse never leaks state between frames, including across buffer
// shrinks and regrowths.
func TestRenderContextMixedSizeReuse(t *testing.T) {
	big, _ := determinismScene()
	cams := []struct{ w, h int }{{96, 64}, {32, 32}, {144, 96}, {48, 24}, {64, 48}}
	rng := rand.New(rand.NewSource(11))
	small := randomCloud(rng, 7)
	lc := DefaultMappingLoss()

	ctx := NewRenderContext()
	for i := 0; i < 50; i++ {
		cam := testCam(cams[i%len(cams)].w, cams[i%len(cams)].h)
		cloud := big
		if i%3 == 1 {
			cloud = small
		}
		opts := Options{Workers: 1 + i%3}
		if i%2 == 0 {
			opts.LogContribution = true
			opts.ThreshAlpha = 1.0 / 255
		}
		bopts := BackwardOptions{GaussianGrads: i%2 == 0, PoseGrads: i%2 == 1, Workers: 1 + i%3, NoPool: true}

		res := ctx.Render(cloud, cam, opts)
		gotRes := res.Digest()

		freshOpts := opts
		freshOpts.NoPool = true
		ref := Render(cloud, cam, freshOpts)
		if gotRes != ref.Digest() {
			t.Fatalf("render %d (%dx%d): contexted digest diverged from fresh one-shot", i, cam.Intr.W, cam.Intr.H)
		}

		target := &frame.Frame{Color: ref.Color, Depth: ref.NormalizedDepth()}
		gotG := ctx.Backward(cloud, cam, res, target, lc, bopts).Digest()
		wantG := Backward(cloud, cam, ref, target, lc, bopts).Digest()
		if gotG != wantG {
			t.Fatalf("backward %d (%dx%d): contexted digest diverged from fresh one-shot", i, cam.Intr.W, cam.Intr.H)
		}
	}
}

// TestOneShotResultsAreCallerOwned asserts the one-shot wrappers detach
// their outputs from the pooled scratch contexts: later renders (which may
// reuse the same pooled context) must never mutate an earlier Result or
// Grads retained by the caller.
func TestOneShotResultsAreCallerOwned(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	lc := DefaultMappingLoss()
	opts := Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255}
	bopts := BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1}

	res := Render(cloud, cam, opts)
	grads := Backward(cloud, cam, res, target, lc, bopts)
	wantRes, wantG := res.Digest(), grads.Digest()

	// Churn the context pool with differently-sized work.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		c := randomCloud(rng, 5+i)
		cam2 := testCam(24+8*i, 24)
		r := Render(c, cam2, opts)
		Backward(c, cam2, r, &frame.Frame{Color: r.Color, Depth: r.NormalizedDepth()}, lc, bopts)
	}

	if res.Digest() != wantRes {
		t.Error("retained one-shot Result was mutated by later renders")
	}
	if grads.Digest() != wantG {
		t.Error("retained one-shot Grads was mutated by later backward passes")
	}
}

// TestRenderContextDeterminismAcrossWorkerCounts mirrors the one-shot
// determinism suite for the contexted path: one warm context must reproduce
// the serial one-shot reference bit for bit at every worker count.
func TestRenderContextDeterminismAcrossWorkerCounts(t *testing.T) {
	cloud, cam := determinismScene()
	target := determinismTarget(cloud, cam)
	lc := DefaultMappingLoss()
	opts := Options{Workers: 1, LogContribution: true, ThreshAlpha: 1.0 / 255}
	ref := Render(cloud, cam, opts)
	refG := Backward(cloud, cam, ref, target, lc, BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: 1})
	wantRes, wantG := ref.Digest(), refG.Digest()

	ctx := NewRenderContext()
	for _, wkr := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", wkr), func(t *testing.T) {
			o := opts
			o.Workers = wkr
			res := ctx.Render(cloud, cam, o)
			if res.Digest() != wantRes {
				t.Errorf("contexted render digest differs from one-shot Workers=1 reference")
			}
			g := ctx.Backward(cloud, cam, res, target, lc,
				BackwardOptions{GaussianGrads: true, PoseGrads: true, Workers: wkr})
			if g.Digest() != wantG {
				t.Errorf("contexted backward digest differs from one-shot Workers=1 reference")
			}
		})
	}
}

// TestRenderContextReset asserts Reset drops state without breaking
// subsequent use.
func TestRenderContextReset(t *testing.T) {
	cloud, cam := determinismScene()
	ctx := NewRenderContext()
	want := ctx.Render(cloud, cam, Options{Workers: 1}).Digest()
	ctx.Reset()
	if got := ctx.Render(cloud, cam, Options{Workers: 1}).Digest(); got != want {
		t.Error("render after Reset diverged")
	}
}
