package codec

import (
	"math"
	"math/rand"
	"testing"

	"ags/internal/frame"
	"ags/internal/vecmath"
)

// noiseImage builds a reproducible random image (rich texture for ME).
func noiseImage(w, h int, seed int64) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	im := frame.NewImage(w, h)
	for i := range im.Pix {
		v := rng.Float64()
		im.Pix[i] = vecmath.Vec3{X: v, Y: v, Z: v}
	}
	return im
}

// shiftImage translates the image by (dx, dy), clamping at borders.
func shiftImage(src *frame.Image, dx, dy int) *frame.Image {
	out := frame.NewImage(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Set(x, y, src.At(x-dx, y-dy))
		}
	}
	return out
}

func TestIdenticalFramesZeroSAD(t *testing.T) {
	im := noiseImage(32, 32, 1)
	res, err := MotionEstimate(im, im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SumMinSAD() != 0 {
		t.Errorf("identical frames SAD = %d", res.SumMinSAD())
	}
	for _, mv := range res.MV {
		if mv.DX != 0 || mv.DY != 0 {
			t.Fatalf("identical frames produced motion vector %+v", mv)
		}
	}
}

func TestFullSearchRecoversGlobalShift(t *testing.T) {
	im := noiseImage(48, 48, 2)
	shifted := shiftImage(im, 3, -2)
	cfg := Config{BlockSize: 8, SearchRange: 6, ThreeStep: false}
	res, err := MotionEstimate(im, shifted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interior macro-blocks must find the exact displacement: the block
	// content moved by (3,-2), so the best reference offset is (-3, 2).
	interior := 0
	correct := 0
	for by := 1; by < res.MBH-1; by++ {
		for bx := 1; bx < res.MBW-1; bx++ {
			interior++
			mv := res.MV[by*res.MBW+bx]
			if mv.DX == -3 && mv.DY == 2 {
				correct++
			}
		}
	}
	if correct < interior {
		t.Errorf("full search: %d/%d interior blocks found the shift", correct, interior)
	}
}

// smoothImage builds a low-frequency image; three-step search assumes the
// SAD surface is smooth, which natural video (unlike white noise) satisfies.
func smoothImage(w, h int, seed int64) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	p0, p1, p2 := rng.Float64()*6, rng.Float64()*6, rng.Float64()*6
	im := frame.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 0.5 + 0.2*math.Sin(5*fx*math.Pi+p0) + 0.2*math.Cos(4*fy*math.Pi+p1) + 0.1*math.Sin(7*(fx+fy)*math.Pi+p2)
			im.Set(x, y, vecmath.Vec3{X: v, Y: v, Z: v})
		}
	}
	return im
}

func TestThreeStepApproximatesFullSearch(t *testing.T) {
	im := smoothImage(48, 48, 3)
	shifted := shiftImage(im, 2, 1)
	full, err := MotionEstimate(im, shifted, Config{BlockSize: 8, SearchRange: 8, ThreeStep: false})
	if err != nil {
		t.Fatal(err)
	}
	tss, err := MotionEstimate(im, shifted, Config{BlockSize: 8, SearchRange: 8, ThreeStep: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three-step is an approximation: allow some slack but not much on a
	// clean global shift of a smooth image.
	if tss.SumMinSAD() > full.SumMinSAD()*3/2+1000 {
		t.Errorf("three-step SAD %d much worse than full %d", tss.SumMinSAD(), full.SumMinSAD())
	}
	// And it must be far cheaper.
	if tss.SADOps >= full.SADOps/3 {
		t.Errorf("three-step ops %d not much cheaper than full %d", tss.SADOps, full.SADOps)
	}
}

func TestSADMonotoneInDifference(t *testing.T) {
	im := noiseImage(32, 32, 4)
	slightlyOff := im.Clone()
	veryOff := noiseImage(32, 32, 99)
	for i := range slightlyOff.Pix {
		if i%7 == 0 {
			slightlyOff.Pix[i] = vecmath.Vec3{X: 1, Y: 1, Z: 1}.Sub(slightlyOff.Pix[i])
		}
	}
	cfg := DefaultConfig()
	rSlight, _ := MotionEstimate(im, slightlyOff, cfg)
	rVery, _ := MotionEstimate(im, veryOff, cfg)
	if rSlight.SumMinSAD() >= rVery.SumMinSAD() {
		t.Errorf("SAD not monotone: slight %d >= unrelated %d", rSlight.SumMinSAD(), rVery.SumMinSAD())
	}
}

func TestMotionEstimateErrors(t *testing.T) {
	a := noiseImage(32, 32, 5)
	b := noiseImage(16, 16, 5)
	if _, err := MotionEstimate(a, b, DefaultConfig()); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MotionEstimate(a, a, Config{BlockSize: 0, SearchRange: 4}); err == nil {
		t.Error("zero block size accepted")
	}
	tiny := noiseImage(4, 4, 6)
	if _, err := MotionEstimate(tiny, tiny, DefaultConfig()); err == nil {
		t.Error("image smaller than block accepted")
	}
}

func TestMaxPossibleSAD(t *testing.T) {
	white := frame.NewImage(16, 16)
	black := frame.NewImage(16, 16)
	for i := range white.Pix {
		white.Pix[i] = vecmath.Vec3{X: 1, Y: 1, Z: 1}
	}
	res, err := MotionEstimate(white, black, Config{BlockSize: 8, SearchRange: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.SumMinSAD() != res.MaxPossibleSAD() {
		t.Errorf("black-vs-white SAD %d != max %d", res.SumMinSAD(), res.MaxPossibleSAD())
	}
}

func TestSADOpsCounted(t *testing.T) {
	im := noiseImage(32, 32, 7)
	res, err := MotionEstimate(im, im, Config{BlockSize: 8, SearchRange: 2, ThreeStep: false})
	if err != nil {
		t.Fatal(err)
	}
	// 16 blocks * 25 candidates * 64 pixels.
	want := int64(16 * 25 * 64)
	if res.SADOps != want {
		t.Errorf("SADOps = %d, want %d", res.SADOps, want)
	}
}
