package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// echoRunner is a JobRunner returning a deterministic transform of the
// payload, or an error when told to.
type echoRunner struct {
	fail error
	runs int
}

func (r *echoRunner) RunJob(payload []byte) ([]byte, error) {
	r.runs++
	if r.fail != nil {
		return nil, r.fail
	}
	return append([]byte("echo:"), payload...), nil
}

func startJobNode(t *testing.T, cfg NodeConfig) (*Node, string) {
	t.Helper()
	n := NewNode(cfg)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, addr
}

func TestJobRoundTrip(t *testing.T) {
	run := &echoRunner{}
	_, addr := startJobNode(t, NodeConfig{Name: "job-node", Jobs: run})
	c, err := DialJob(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Name() != "job-node" {
		t.Fatalf("conn learned name %q, want the node's self-declared identity", c.Name())
	}
	afterDial := c.WireBytes()
	if afterDial <= 0 {
		t.Fatal("dial handshake moved no accounted bytes")
	}
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf("job %d", i))
		reply, err := c.Run(payload)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if want := append([]byte("echo:"), payload...); !bytes.Equal(reply, want) {
			t.Fatalf("job %d: reply %q, want %q", i, reply, want)
		}
	}
	if run.runs != 3 {
		t.Fatalf("runner executed %d jobs, want 3", run.runs)
	}
	// Each round trip moves at least its frames' worth of bytes: header +
	// checksum both directions, plus both payloads.
	if got := c.WireBytes() - afterDial; got < 3*2*(headerSize+32) {
		t.Fatalf("3 round trips accounted only %d bytes", got)
	}
}

// TestJobReplyIsACopy pins Run's contract that replies survive later round
// trips even though the wire's receive scratch is reused.
func TestJobReplyIsACopy(t *testing.T) {
	_, addr := startJobNode(t, NodeConfig{Name: "copy-node", Jobs: &echoRunner{}})
	c, err := DialJob(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first, err := c.Run([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]byte("a longer second payload overwriting scratch")); err != nil {
		t.Fatal(err)
	}
	if string(first) != "echo:alpha" {
		t.Fatalf("first reply mutated by second round trip: %q", first)
	}
}

// TestJobWithoutRunner pins the no-runner contract: a node built without a
// JobRunner answers vJob with a protocol-level remote error — the node is
// alive, so the failure must not classify as node loss.
func TestJobWithoutRunner(t *testing.T) {
	_, addr := startJobNode(t, NodeConfig{Name: "stream-only"})
	c, err := DialJob(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Run([]byte("anything"))
	if err == nil {
		t.Fatal("runner-less node accepted a job")
	}
	if IsNodeLoss(err) {
		t.Fatalf("live node's job refusal classified as node loss: %v", err)
	}
	if !strings.Contains(err.Error(), "stream-only") {
		t.Fatalf("refusal should name the node: %v", err)
	}
}

// TestJobRunnerError pins the remote-application-error path: the runner's
// error text crosses the wire, the connection survives for further jobs, and
// the failure never classifies as node loss (re-running the same job on
// another worker would fail identically).
func TestJobRunnerError(t *testing.T) {
	run := &echoRunner{fail: errors.New("dataset exploded")}
	_, addr := startJobNode(t, NodeConfig{Name: "flaky", Jobs: run})
	c, err := DialJob(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Run([]byte("doomed"))
	if err == nil {
		t.Fatal("failing runner returned no error")
	}
	if IsNodeLoss(err) {
		t.Fatalf("remote application error classified as node loss: %v", err)
	}
	if !strings.Contains(err.Error(), "dataset exploded") {
		t.Fatalf("runner error text lost in transit: %v", err)
	}
	run.fail = nil
	if reply, err := c.Run([]byte("retry")); err != nil || string(reply) != "echo:retry" {
		t.Fatalf("connection unusable after remote error: %q, %v", reply, err)
	}
}

func TestJobDialRefusedIsNodeLoss(t *testing.T) {
	_, err := DialJob("127.0.0.1:1") // nothing listens there
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !IsNodeLoss(err) {
		t.Fatalf("refused dial not classified as node loss: %v", err)
	}
}
