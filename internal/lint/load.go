package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked module package as the checks see it.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, parsed with comments
	Info  *types.Info
	Types *types.Package

	modRoot string // module root, for root-relative finding paths
}

// Position resolves a token.Pos to a module-root-relative file path plus
// line and column, the coordinates findings are reported in.
func (p *Package) Position(pos token.Pos) (file string, line, col int) {
	ps := p.Fset.Position(pos)
	file = ps.Filename
	if rel, err := filepath.Rel(p.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return filepath.ToSlash(file), ps.Line, ps.Column
}

// load parses and type-checks every package in the module rooted at cfg.Dir,
// returning them sorted by import path along with the module path.
//
// The walk skips testdata, vendor, hidden and underscore directories and
// _test.go files. Type-checking resolves module-internal imports from the
// freshly checked packages (in dependency order) and everything else through
// the compiler's source importer, so the loader needs no toolchain
// invocation and no network — go/parser + go/types end to end.
func load(cfg *Config) ([]*Package, string, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, "", err
	}
	module := cfg.Module
	if module == "" {
		module, err = modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, "", err
		}
	}

	fset := token.NewFileSet()
	type srcPkg struct {
		path, dir string
		files     []*ast.File
		imports   []string
	}
	byPath := make(map[string]*srcPkg)

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		sp := byPath[importPath]
		if sp == nil {
			sp = &srcPkg{path: importPath, dir: dir}
			byPath[importPath] = sp
		}
		sp.files = append(sp.files, file)
		for _, imp := range file.Imports {
			if v, err := strconv.Unquote(imp.Path.Value); err == nil {
				sp.imports = append(sp.imports, v)
			}
		}
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	// Topologically order module packages so each type-checks after its
	// module-internal dependencies.
	var order []*srcPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(sp *srcPkg) error
	visit = func(sp *srcPkg) error {
		switch state[sp.path] {
		case 1:
			return fmt.Errorf("import cycle through %s", sp.path)
		case 2:
			return nil
		}
		state[sp.path] = 1
		deps := append([]string(nil), sp.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if d := byPath[dep]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[sp.path] = 2
		order = append(order, sp)
		return nil
	}
	roots := make([]string, 0, len(byPath))
	for p := range byPath {
		roots = append(roots, p)
	}
	sort.Strings(roots)
	for _, p := range roots {
		if err := visit(byPath[p]); err != nil {
			return nil, "", err
		}
	}

	imp := &moduleImporter{
		checked: make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, sp := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tc := types.Config{Importer: imp}
		tpkg, err := tc.Check(sp.path, fset, sp.files, info)
		if err != nil {
			return nil, "", fmt.Errorf("typecheck %s: %w", sp.path, err)
		}
		imp.checked[sp.path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:    sp.path,
			Dir:     sp.dir,
			Fset:    fset,
			Files:   sp.files,
			Info:    info,
			Types:   tpkg,
			modRoot: root,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, module, nil
}

// moduleImporter resolves module-internal imports from the already-checked
// set and delegates everything else (the standard library) to the source
// importer. unsafe is special-cased per the go/types contract.
type moduleImporter struct {
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w (pass Config.Dir = module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}
