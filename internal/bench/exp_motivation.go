package bench

import (
	"io"

	"ags/internal/covis"
	"ags/internal/hw/platform"
	"ags/internal/scene"
	"ags/internal/tracker"
	"ags/internal/vecmath"
)

func expFig3() Experiment {
	return expDef{
		id: "fig3", paper: "Fig. 3 (tracking vs mapping time)",
		needs:  specsFor(scene.TUMNames(), VarBaseline),
		render: (*Suite).Fig3,
	}
}

func expFig4() Experiment {
	return expDef{
		id: "fig4", paper: "Fig. 4 (accuracy vs iterations by FC)",
		needs:  specsFor([]string{"Desk"}, VarBaseline),
		render: (*Suite).Fig4,
	}
}

func expFig5() Experiment {
	return expDef{
		id: "fig5", paper: "Fig. 5 (non-contributory Gaussians)",
		needs:  specsFor(scene.TUMNames(), VarBaseline),
		render: (*Suite).Fig5,
	}
}

func expFig6() Experiment {
	return expDef{
		id: "fig6", paper: "Fig. 6 (contribution similarity by FC level)",
		needs:  specsFor([]string{"Desk", "Desk2"}, VarBaseline),
		render: (*Suite).Fig6,
	}
}

func expFig22() Experiment {
	return expDef{
		id: "fig22", paper: "Fig. 22 (FC distribution)",
		needs:  seqSpecs(scene.TUMNames()),
		render: (*Suite).Fig22,
	}
}

// Fig3 reproduces Fig. 3: baseline execution-time split between tracking and
// mapping per frame (GPU model on the baseline trace).
func (s *Suite) Fig3(w io.Writer) error {
	t := NewTable("Fig. 3: Baseline time per frame, tracking vs mapping (A100 model, ms)",
		"Sequence", "Tracking", "Mapping", "Tracking share %")
	names := scene.TUMNames()
	var shares []float64
	for _, name := range names {
		b, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		tot := platform.RunTotal(platform.A100(), b.Result.Trace)
		n := float64(len(b.Result.Poses))
		trackMs := tot.TrackNs / n * 1e-6
		mapMs := tot.MapNs / n * 1e-6
		share := 100 * tot.TrackNs / (tot.TrackNs + tot.MapNs)
		shares = append(shares, share)
		t.AddRow(name, trackMs, mapMs, share)
	}
	var mean float64
	for _, v := range shares {
		mean += v
	}
	t.AddRow("Mean", "", "", mean/float64(len(shares)))
	t.AddNote("paper: tracking consumes 83%% of baseline time")
	t.Write(w)
	return nil
}

// Fig4 reproduces Fig. 4: tracking accuracy as training iterations shrink,
// split by frame covisibility. For each frame of the Desk baseline run we
// re-track from the same initialization with reduced iteration budgets and
// report accuracy relative to the full budget.
func (s *Suite) Fig4(w io.Writer) error {
	b := s.MustRun(Spec("Desk", VarBaseline))
	seq := b.Seq
	det := covis.NewDetector()
	ref := tracker.NewGSRefiner()
	ref.Workers = s.Cfg.Workers

	// Classify frames by adjacent covisibility (median split).
	type frameCase struct {
		idx  int
		high bool
	}
	var cases []frameCase
	var scores []float64
	for i := 1; i < len(seq.Frames); i++ {
		sc, err := det.Compare(seq.Frames[i-1].Color, seq.Frames[i].Color)
		if err != nil {
			return err
		}
		scores = append(scores, float64(sc))
	}
	med := median(scores)
	// Subsample frames: the sweep re-tracks each case at 5 budgets.
	for i := 1; i < len(seq.Frames); i += 2 {
		cases = append(cases, frameCase{idx: i, high: scores[i-1] >= med})
	}

	// The budget must reach down to where incomplete convergence shows: the
	// last points give only 1-2 optimizer steps to cover the inter-frame
	// motion (larger on low-covisibility frames).
	iterSet := []int{s.Cfg.TrackIters, 6, 3, 2, 1}
	t := NewTable("Fig. 4: Accuracy (%) vs tracking iterations, by frame covisibility",
		"Iterations", "High-FC frames", "Low-FC frames")

	// Per-frame full-budget error is the accuracy reference.
	errAt := func(idx, iters int) float64 {
		f := seq.Frames[idx]
		init := b.Result.Poses[idx-1] // previous estimated pose
		pose, _ := ref.Refine(b.Result.Cloud, seq.Intr, f, init, iters)
		return pose.TranslationTo(f.GTPose)
	}
	fullErr := map[int]float64{}
	for _, c := range cases {
		fullErr[c.idx] = errAt(c.idx, iterSet[0])
	}
	for _, iters := range iterSet {
		var accHigh, accLow, nHigh, nLow float64
		for _, c := range cases {
			e := errAt(c.idx, iters)
			acc := 100.0
			if e > fullErr[c.idx]+1e-9 {
				acc = 100 * (fullErr[c.idx] + 1e-4) / (e + 1e-4)
			}
			if c.high {
				accHigh += acc
				nHigh++
			} else {
				accLow += acc
				nLow++
			}
		}
		t.AddRow(iters, accHigh/maxf(nHigh, 1), accLow/maxf(nLow, 1))
	}
	t.AddNote("paper: low-FC frames lose up to 6.7%% accuracy; high-FC frames barely degrade")
	t.Write(w)
	return nil
}

// Fig5 reproduces Fig. 5: the fraction of Gaussians in the Gaussian tables
// that contribute to no pixel.
func (s *Suite) Fig5(w io.Writer) error {
	t := NewTable("Fig. 5: Gaussian contribution during rendering (%)",
		"Sequence", "Non-contributory", "Contributory")
	names := scene.TUMNames()
	var fracs []float64
	for _, name := range names {
		b, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		mcfg := b.Result.Mapper.Cfg
		var nc, tot int
		for fi := len(b.Seq.Frames) / 2; fi < len(b.Seq.Frames); fi += 4 {
			n, ttl, _ := contributionStats(b, fi, mcfg)
			nc += n
			tot += ttl
		}
		frac := 100 * float64(nc) / maxf(float64(tot), 1)
		fracs = append(fracs, frac)
		t.AddRow(name, frac, 100-frac)
	}
	var mean float64
	for _, v := range fracs {
		mean += v
	}
	t.AddRow("Mean", mean/float64(len(fracs)), 100-mean/float64(len(fracs)))
	t.AddNote("paper: 85.1%% of table-assigned Gaussians do not affect any pixel")
	t.Write(w)
	return nil
}

// Fig6 reproduces Fig. 6: how similar the non-contributory sets of adjacent
// frames are, grouped by covisibility level.
func (s *Suite) Fig6(w io.Writer) error {
	t := NewTable("Fig. 6: Contribution similarity between adjacent frames (%) by FC level",
		"Level", "Desk", "Desk2")
	det := covis.NewDetector()
	type acc struct{ sum, n float64 }
	sims := map[string]map[covis.Level]*acc{}
	for _, name := range []string{"Desk", "Desk2"} {
		b, err := s.Run(Spec(name, VarBaseline))
		if err != nil {
			return err
		}
		mcfg := b.Result.Mapper.Cfg
		sims[name] = map[covis.Level]*acc{}
		// Frame pairs at several gaps populate the whole covisibility range
		// (adjacent pairs cluster at the top levels).
		for _, gap := range []int{1, 2, 4, 8, 12} {
			for fi := gap; fi < len(b.Seq.Frames); fi += maxInt(gap, 3) {
				sc, err := det.Compare(b.Seq.Frames[fi-gap].Color, b.Seq.Frames[fi].Color)
				if err != nil {
					return err
				}
				lvl := covis.LevelOf(sc)
				_, _, prevIDs := contributionStats(b, fi-gap, mcfg)
				_, _, curIDs := contributionStats(b, fi, mcfg)
				if len(prevIDs) == 0 {
					continue
				}
				inter := 0
				for id := range prevIDs {
					if curIDs[id] {
						inter++
					}
				}
				a := sims[name][lvl]
				if a == nil {
					a = &acc{}
					sims[name][lvl] = a
				}
				a.sum += 100 * float64(inter) / float64(len(prevIDs))
				a.n++
			}
		}
	}
	for lvl := covis.Level(1); lvl <= 5; lvl++ {
		row := []interface{}{int(lvl)}
		for _, name := range []string{"Desk", "Desk2"} {
			if a := sims[name][lvl]; a != nil && a.n > 0 {
				row = append(row, a.sum/a.n)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: level-5 FC keeps >80%% of non-contributory Gaussians unchanged")
	t.Write(w)
	return nil
}

// Fig22 reproduces Fig. 22: the distribution of adjacent-frame covisibility
// bands per sequence (the headroom AGS exploits).
func (s *Suite) Fig22(w io.Writer) error {
	t := NewTable("Fig. 22: Adjacent-frame covisibility distribution (%)",
		"Sequence", "High", "Medium", "Low")
	det := covis.NewDetector()
	names := scene.TUMNames()
	var highShare []float64
	for _, name := range names {
		seq := s.Sequence(name)
		counts := map[string]int{}
		for i := 1; i < len(seq.Frames); i++ {
			sc, err := det.Compare(seq.Frames[i-1].Color, seq.Frames[i].Color)
			if err != nil {
				return err
			}
			counts[covis.Band(sc)]++
		}
		n := float64(len(seq.Frames) - 1)
		h := 100 * float64(counts["High"]) / n
		m := 100 * float64(counts["Medium"]) / n
		l := 100 * float64(counts["Low"]) / n
		highShare = append(highShare, h)
		t.AddRow(name, h, m, l)
	}
	var mean float64
	for _, v := range highShare {
		mean += v
	}
	t.AddRow("Mean high", mean/float64(len(highShare)), "", "")
	t.AddNote("paper: 63.8%% of adjacent frames exhibit high covisibility")
	t.Write(w)
	return nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := append([]float64(nil), v...)
	for i := 0; i < len(cp); i++ {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = vecmath.Clamp
