package bench

import "time"

// wallNow and wallSince are the package's only wall-clock reads. Bench
// timings are operator-facing measurements — they never feed a digest, a
// report's Determinism fields, or any other byte-compared output, so reading
// the clock here cannot violate the reproducibility contract (the digest
// gates in the perf experiments prove it every run). Funnelling every
// experiment and the scheduler through these two wrappers keeps that
// argument in one place: a time.Now anywhere else in a critical package is
// an ags-vet finding.

// wallNow returns the current wall-clock instant for duration measurement.
func wallNow() time.Time {
	return time.Now() //ags:allow(nondetsource, wall-clock timing is reported, never digested; sole sanctioned clock read)
}

// wallSince returns the elapsed wall-clock time since start.
func wallSince(start time.Time) time.Duration {
	return time.Since(start) //ags:allow(nondetsource, wall-clock timing is reported, never digested; sole sanctioned clock read)
}
