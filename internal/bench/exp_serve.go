package bench

import (
	"fmt"
	"io"
	"sync"

	"ags/internal/scene"
	"ags/internal/slam"
)

// serveSeqs are the sequences perf-serve streams through the server. They
// are deliberately sequences other experiments already warm, so the
// sequential reference digests come from the shared cache.
func serveSeqs() []string { return []string{"Desk", "Xyz"} }

func expPerfServe() Experiment {
	return expDef{
		id: "perf-serve", paper: "Perf: streaming multi-session server — throughput + context-pool hit rate vs sessions",
		needs:  specsFor(serveSeqs(), VarAGS),
		render: (*Suite).PerfServe,
	}
}

// PerfServe measures the streaming Server/Session surface: it replays the
// suite's sequences through one slam.Server at increasing session
// concurrency, reporting throughput and the shared context pool's
// hit/miss/eviction counters — and asserts, row by row, that every
// session's Result digest is bitwise identical to the cached sequential
// slam.Run of the same (sequence, variant), i.e. that multi-tenant
// interleaving never leaks into outputs. The final row caps the pool below
// the session count to exercise LRU eviction under pressure; the bound
// itself (idle <= capacity) is asserted too.
func (s *Suite) PerfServe(w io.Writer) error {
	names := serveSeqs()
	type ref struct {
		seq    *scene.Sequence
		digest [32]byte
	}
	refs := make([]ref, len(names))
	var pruned, reclaimed int
	var reclaimedBytes int64
	for i, name := range names {
		b, err := s.Run(Spec(name, VarAGS))
		if err != nil {
			return err
		}
		refs[i] = ref{seq: b.Seq, digest: b.Result.Digest()}
		tot := b.Result.Trace.Totals()
		pruned += tot.PrunedGaussians
		reclaimed += tot.CompactedSlots
		reclaimedBytes += tot.ReclaimedBytes
	}
	cfg := s.slamConfig(VarAGS, nil)

	rows := []struct{ sessions, capacity int }{
		{1, 1},
		{2, 2},
		{2, 1}, // capacity under-provisioned: misses + LRU evictions, same digests
	}
	t := NewTable(fmt.Sprintf("Perf: slam.Server streaming sessions (%dx%d, %d frames x %d sequences)",
		s.Cfg.Width, s.Cfg.Height, s.Cfg.Frames, len(names)),
		"Sessions", "Pool cap", "Wall ms", "Frames/s", "Hits", "Misses", "Evict", "Hit rate", "Resident KB")
	for _, row := range rows {
		srv := slam.NewServer(slam.ServerConfig{ContextCapacity: row.capacity})
		sem := make(chan struct{}, row.sessions)
		results := make([]*slam.Result, len(refs))
		errs := make([]error, len(refs))
		frames := 0
		start := wallNow()
		var wg sync.WaitGroup
		for i, r := range refs {
			frames += len(r.seq.Frames)
			wg.Add(1)
			//ags:allow(goroutine-site, measurement fan-out: each session writes only its own results/errs slot and every digest is checked against the sequential reference below)
			go func(i int, seq *scene.Sequence) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = srv.Run(cfg, seq)
			}(i, r.seq)
		}
		wg.Wait()
		wall := wallSince(start)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("bench: perf-serve session %s: %w", names[i], err)
			}
			if results[i].Digest() != refs[i].digest {
				return fmt.Errorf("bench: perf-serve: session %s (sessions=%d, cap=%d) diverged from sequential run",
					names[i], row.sessions, row.capacity)
			}
		}
		st := srv.PoolStats()
		if st.Idle > st.Capacity {
			return fmt.Errorf("bench: perf-serve: pool idle %d exceeds capacity %d", st.Idle, st.Capacity)
		}
		if err := srv.Close(); err != nil {
			return fmt.Errorf("bench: perf-serve: %w", err)
		}
		t.AddRow(row.sessions, row.capacity,
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
			fmt.Sprintf("%.2f", float64(frames)/wall.Seconds()),
			st.Hits, st.Misses, st.Evictions,
			fmt.Sprintf("%.2f", st.HitRate()),
			fmt.Sprintf("%.1f", float64(st.ResidentBytes)/1024))
	}
	t.AddNote("every session's Result digest asserted bitwise identical to the cached sequential slam.Run")
	t.AddNote("map lifecycle across the sequential references: %d Gaussians pruned, %d slots compacted (%.1f KB reclaimed); see perf-compact",
		pruned, reclaimed, float64(reclaimedBytes)/1024)
	t.AddNote("last row under-provisions the pool (cap < sessions) to exercise LRU eviction; outputs unchanged")
	t.Write(w)
	return nil
}
