package fleet

import (
	"fmt"
)

// Mid-stream migration: when a node drains, its live streams move to peers
// without losing a frame or perturbing a single output bit. The move runs
// lazily, at each stream's next Push, on the stream's own producer goroutine
// — so the session's one-producer contract holds through the hand-off and no
// cross-goroutine coordination touches pipeline state. The sequence:
//
//  1. snapshot: the draining node brings the session to a between-frames
//     point (every pushed frame processed, ME lookahead flushed) and ships
//     the AGSSNAP bytes — themselves versioned and checksummed — back.
//  2. close: the old session is closed and its partial Result discarded;
//     the snapshot already captured everything that matters.
//  3. restore: a placement-ordered peer rebuilds the session from the
//     snapshot and reports its processed-frame count, which must equal the
//     frames pushed so far — the continuity check that turns a silent
//     half-restored stream into a loud error.
//
// Because the snapshot codec is the determinism contract (see slam's
// snapshot tests), the migrated stream's Close digest is bit-identical to an
// uninterrupted run — asserted end-to-end by the fleet tests and the
// perf-fleet experiment.

// migrate moves the stream off its (draining) current node onto the best
// admitting peer. On failure the stream is left closed-over — its connection
// torn down — because the old session's continuation point is unrecoverable
// once the snapshot conversation fails midway; the producer sees the error
// from Push.
func (s *Stream) migrate() error {
	// 1. Snapshot on the draining node. The payload aliases the wire's
	// receive scratch, so copy it before reusing the connection.
	rv, payload, err := s.w.roundTrip(vSnapshot, nil)
	if err != nil {
		s.teardown()
		return fmt.Errorf("snapshot: %w", err)
	}
	if rv != vSnapData {
		s.teardown()
		return fmt.Errorf("snapshot reply verb %s", rv)
	}
	snap := append([]byte(nil), payload...)
	if s.recoveryEnabled() {
		// The drain snapshot is as good as a scheduled checkpoint: adopt it
		// so a node death later in the hand-off (or any time after) recovers
		// from this exact point with an empty replay buffer.
		s.setCheckpoint(snap, s.pushed)
	}

	// 2. Close the old session; its partial Result is superseded by the
	// snapshot. A failure here still leaves the snapshot usable, so only a
	// transport error aborts.
	if _, _, err := s.w.roundTrip(vClose, nil); err != nil {
		s.teardown()
		return fmt.Errorf("close after snapshot: %w", err)
	}
	s.teardown()

	// 3. Restore on the best admitting peer, placement order.
	nodes, loads, err := s.r.reachableLoads()
	if err != nil {
		return err
	}
	order := Candidates(s.sizeW, s.sizeH, loads)
	if len(order) == 0 {
		return fmt.Errorf("no admitting peer (all draining or down)")
	}
	restorePayload := encodeRestore(nil, s.name, snap)
	var lastErr error
	for _, idx := range order {
		w, frames, err := restoreOn(nodes[idx].addr, restorePayload)
		if err != nil {
			if isPlacementBounce(err) {
				lastErr = err
				continue
			}
			if isNodeLoss(err) {
				// The peer died between the load poll and the restore; evict
				// it and keep walking the candidate order.
				nodes[idx].markUnreachable()
				lastErr = err
				continue
			}
			return fmt.Errorf("restore on %q: %w", nodes[idx].name, err)
		}
		if frames != s.pushed {
			// The restored system disagrees about where the stream stands;
			// pushing from here would corrupt the output, so fail loudly.
			w.roundTrip(vClose, nil)
			w.Close()
			return fmt.Errorf("restore on %q: continuity check failed: node at frame %d, producer at %d",
				nodes[idx].name, frames, s.pushed)
		}
		s.w, s.node = w, nodes[idx]
		s.migrations++
		s.r.mu.Lock()
		s.r.migrations++
		s.r.mu.Unlock()
		return nil
	}
	return fmt.Errorf("every peer refused the restore: %w", lastErr)
}

// teardown closes the stream's current connection and detaches it.
func (s *Stream) teardown() {
	if s.w != nil {
		s.w.Close()
		s.w = nil
	}
}

// restoreOn dials a fresh stream connection and restores a session from a
// snapshot over it, returning the bound wire and the restored system's
// processed-frame count.
func restoreOn(addr string, restorePayload []byte) (*wire, int, error) {
	w, err := dialWire(addr)
	if err != nil {
		return nil, 0, err
	}
	rv, reply, err := w.roundTrip(vRestore, restorePayload)
	if err != nil {
		w.Close()
		return nil, 0, err
	}
	if rv != vOK {
		w.Close()
		return nil, 0, fmt.Errorf("fleet: restore reply verb %s", rv)
	}
	frames, err := decodeOK(reply)
	if err != nil {
		w.Close()
		return nil, 0, err
	}
	return w, frames, nil
}
