package splat

import (
	"sync"

	"ags/internal/camera"
	"ags/internal/frame"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

// Options controls a render pass.
type Options struct {
	// Skip suppresses Gaussians by ID during preprocessing (selective
	// mapping for non-key frames).
	Skip []bool
	// LogContribution records, per Gaussian ID, how many evaluated pixels
	// saw alpha below ThreshAlpha (full mapping on key frames).
	LogContribution bool
	// ThreshAlpha is the contribution threshold (paper: 1/255).
	ThreshAlpha float64
	// Workers bounds render parallelism; 0 means GOMAXPROCS.
	Workers int
	// NoPool makes the one-shot Render allocate its scratch context fresh
	// instead of drawing it from the package pool. Output is bitwise
	// identical either way; perf experiments use it to A/B allocation
	// counts. Ignored by (*RenderContext).Render, which owns its buffers.
	NoPool bool
}

// Result is the output of a forward render.
type Result struct {
	Color      *frame.Image
	Depth      *frame.DepthMap
	Silhouette []float64 // accumulated alpha per pixel in [0,1]
	FinalT     []float64 // final transmittance per pixel

	Splats []Splat
	Tiles  *Tiles

	// Contribution log (nil unless Options.LogContribution):
	NonContrib []int32 // per Gaussian ID: pixels with alpha < ThreshAlpha
	Touched    []int32 // per Gaussian ID: pixels where alpha was evaluated

	// Workload trace for the hardware simulator:
	PerPixelBlend []int32 // stage-2 blending operations per pixel
	PerPixelAlpha []int32 // stage-1 alpha evaluations per pixel
	AlphaOps      int64   // total alpha (stage-1) evaluations
	BlendOps      int64   // total color-blend (stage-2) operations
}

// Render runs the full forward pipeline (steps 1-3 of Fig. 2) for the cloud
// viewed through cam. It is the one-shot entry point: the returned Result
// owns its buffers. Hot loops that render every iteration should hold a
// RenderContext and call its Render instead.
func Render(cloud *gauss.Cloud, cam camera.Camera, opts Options) *Result {
	ctx := acquireContext(opts.NoPool)
	ctx.Render(cloud, cam, opts)
	res := ctx.detachResult()
	releaseContext(ctx, opts.NoPool)
	return res
}

// Render runs the forward pipeline into the context's buffers. The returned
// Result aliases the context and is valid until its next Render or Reset
// call (Backward reads it but never writes it); see the package doc for the
// full aliasing rules. A nil context falls back to the one-shot package
// function.
//
//ags:hotpath
func (ctx *RenderContext) Render(cloud *gauss.Cloud, cam camera.Camera, opts Options) *Result {
	if ctx == nil {
		return Render(cloud, cam, opts)
	}
	ctx.splats = preprocessInto(ctx.splats[:0], cloud, cam, opts.Skip)
	buildTilesInto(&ctx.tiles, &ctx.tileCursor, ctx.splats, cam.Intr)
	return ctx.renderTiles(cloud, cam, opts)
}

// renderTiles runs steps 3 of Fig. 2 over the context's prepared splats and
// tiles. Static sharding: each worker owns a contiguous tile range and walks
// it in ascending order. Pixel buffers are disjoint across tiles, and the
// cross-tile reductions (op counters, contribution log) are integers (exact
// under any association) merged in fixed worker order, so every Workers
// value produces byte-identical Results.
//
//ags:hotpath
func (ctx *RenderContext) renderTiles(cloud *gauss.Cloud, cam camera.Camera, opts Options) *Result {
	w, h := cam.Intr.W, cam.Intr.H
	// The four assigned pixel planes are fully overwritten (every pixel
	// belongs to exactly one tile), so they are resized without clearing;
	// the accumulated counters are re-zeroed.
	ctx.color = frame.Image{W: w, H: h, Pix: resized(ctx.color.Pix, w*h)}
	ctx.depth = frame.DepthMap{W: w, H: h, D: resized(ctx.depth.D, w*h)}
	res := &ctx.result
	res.Color = &ctx.color
	res.Depth = &ctx.depth
	res.Silhouette = resized(res.Silhouette, w*h)
	res.FinalT = resized(res.FinalT, w*h)
	res.Splats = ctx.splats
	res.Tiles = &ctx.tiles
	res.PerPixelBlend = zeroed(res.PerPixelBlend, w*h)
	res.PerPixelAlpha = zeroed(res.PerPixelAlpha, w*h)
	res.AlphaOps, res.BlendOps = 0, 0
	if opts.LogContribution {
		res.NonContrib = zeroed(res.NonContrib, cloud.Len())
		res.Touched = zeroed(res.Touched, cloud.Len())
	} else {
		res.NonContrib, res.Touched = nil, nil
	}

	ctx.ranges = shardRangesInto(ctx.ranges[:0], ctx.tiles.NumTiles(), opts.Workers)
	ranges := ctx.ranges
	if len(ranges) == 1 {
		// Serial fast path: accumulate straight into the Result. The
		// reductions are integers, so this is bit-identical to the
		// scratch-and-merge parallel path — and it spawns nothing, keeping
		// warm contexted renders allocation-free.
		renderShard(res, ctx.splats, &ctx.tiles, ranges[0], w, h, opts,
			res.NonContrib, res.Touched, &res.AlphaOps, &res.BlendOps)
		return res
	}

	nw := len(ranges)
	n := cloud.Len()
	var nonContribAll, touchedAll []int32
	if opts.LogContribution {
		ctx.contrib = zeroed(ctx.contrib, 2*nw*n)
		nonContribAll = ctx.contrib[:nw*n]
		touchedAll = ctx.contrib[nw*n:]
	}
	ctx.ops = zeroed(ctx.ops, 2*nw)
	var wg sync.WaitGroup
	for wi := range ranges {
		wg.Add(1)
		//ags:allow(hotalloc, worker closures exist only on the multi-worker path; the Workers=1 path above is the one the perf-render allocation gate measures allocation-free)
		go func(wi int) {
			defer wg.Done()
			var nc, tc []int32
			if opts.LogContribution {
				nc = nonContribAll[wi*n : (wi+1)*n]
				tc = touchedAll[wi*n : (wi+1)*n]
			}
			renderShard(res, ctx.splats, &ctx.tiles, ranges[wi], w, h, opts,
				nc, tc, &ctx.ops[2*wi], &ctx.ops[2*wi+1])
		}(wi)
	}
	wg.Wait()

	// Fixed-order merge (worker 0, 1, ...).
	for wi := 0; wi < nw; wi++ {
		res.AlphaOps += ctx.ops[2*wi]
		res.BlendOps += ctx.ops[2*wi+1]
		if opts.LogContribution {
			for id, v := range nonContribAll[wi*n : (wi+1)*n] {
				res.NonContrib[id] += v
			}
			for id, v := range touchedAll[wi*n : (wi+1)*n] {
				res.Touched[id] += v
			}
		}
	}
	return res
}

// renderShard renders one worker's contiguous tile span in ascending order.
// Op counters accumulate in locals and are stored to the shared slots once
// per shard: workers' slots in ctx.ops are adjacent, and incrementing them
// per (pixel, splat) through the pointer would false-share cache lines on
// the hottest increment of the pipeline.
//
//ags:hotpath
func renderShard(res *Result, splats []Splat, tiles *Tiles, span [2]int, w, h int, opts Options,
	nonContrib, touched []int32, alphaOps, blendOps *int64) {
	var alpha, blend int64
	for tileIdx := span[0]; tileIdx < span[1]; tileIdx++ {
		renderOneTile(res, splats, tiles, tileIdx, w, h, opts, nonContrib, touched, &alpha, &blend)
	}
	*alphaOps = alpha
	*blendOps = blend
}

// renderOneTile alpha-blends one tile's pixels front-to-back with early
// termination — the innermost forward kernel.
//
//ags:hotpath
func renderOneTile(res *Result, splats []Splat, tiles *Tiles, tileIdx, w, h int, opts Options,
	nonContrib, touched []int32, alphaOps, blendOps *int64) {

	tx := tileIdx % tiles.TW
	ty := tileIdx / tiles.TW
	list := tiles.ListAt(tileIdx)
	x0, y0 := tx*TileSize, ty*TileSize
	x1 := min(x0+TileSize, w)
	y1 := min(y0+TileSize, h)

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			px := float64(x) + 0.5
			py := float64(y) + 0.5
			t := 1.0
			var color vecmath.Vec3
			var depth, sil float64
			pix := y*w + x
			li := 0
			for ; li < len(list); li++ {
				s := &splats[list[li]]
				(*alphaOps)++
				res.PerPixelAlpha[pix]++
				alpha, _ := s.Alpha(px, py)
				if nonContrib != nil {
					touched[s.ID]++
					if alpha < opts.ThreshAlpha {
						nonContrib[s.ID]++
					}
				}
				if alpha < MinAlpha {
					continue
				}
				(*blendOps)++
				res.PerPixelBlend[pix]++
				wgt := t * alpha
				color = color.Add(s.Color.Scale(wgt))
				depth += wgt * s.Depth
				sil += wgt
				t *= 1 - alpha
				if t < TransmittanceEps {
					li++
					break
				}
			}
			if nonContrib != nil {
				// Table entries past the early-termination point were never
				// blended, so they contributed nothing to this pixel. The
				// hardware gets this information for free (the loop index at
				// termination); it is where the bulk of Fig. 5's
				// non-contributory Gaussians come from.
				for ; li < len(list); li++ {
					id := splats[list[li]].ID
					touched[id]++
					nonContrib[id]++
				}
			}
			res.Color.Pix[pix] = color
			res.Depth.D[pix] = depth
			res.Silhouette[pix] = sil
			res.FinalT[pix] = t
		}
	}
}

// TileIDLists converts the per-tile splat-index tables into stable
// Gaussian-ID lists (the paper's "Gaussian tables", which the hardware
// model's logging/skipping tables replay). The returned lists are freshly
// allocated — safe to retain even when the Result came from a RenderContext.
func (r *Result) TileIDLists() [][]int32 {
	nt := r.Tiles.NumTiles()
	out := make([][]int32, nt)
	backing := make([]int32, r.Tiles.TotalEntries())
	for i := 0; i < nt; i++ {
		lo, hi := r.Tiles.Offsets[i], r.Tiles.Offsets[i+1]
		ids := backing[lo:hi:hi]
		for j, si := range r.Tiles.Entries[lo:hi] {
			ids[j] = int32(r.Splats[si].ID)
		}
		out[i] = ids
	}
	return out
}

// NormalizedDepth returns the rendered depth divided by the silhouette
// (expected depth rather than alpha-weighted depth); pixels with silhouette
// below 1e-6 stay zero (invalid).
func (r *Result) NormalizedDepth() *frame.DepthMap {
	out := frame.NewDepthMap(r.Depth.W, r.Depth.H)
	for i, d := range r.Depth.D {
		if s := r.Silhouette[i]; s > 1e-6 {
			out.D[i] = d / s
		}
	}
	return out
}
