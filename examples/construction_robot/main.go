// Construction robot: the paper's motivating scenario (§1) — an autonomous
// robot must finish scene modeling quickly before it can start delivering
// materials. This example runs the baseline and AGS pipelines over the same
// warehouse-style walkthrough, models both on edge hardware (Jetson-class GPU
// vs AGS-Edge), and reports when each would finish mapping the site.
//
//	go run ./examples/construction_robot
package main

import (
	"fmt"
	"log"

	"ags/internal/hw/platform"
	"ags/internal/scene"
	"ags/internal/slam"
)

func main() {
	const w, h, frames = 64, 48, 20
	seq, err := scene.Generate("House", scene.Config{Width: w, Height: h, Frames: frames, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, cfg slam.Config) *slam.Result {
		res, err := slam.Run(cfg, seq)
		if err != nil {
			log.Fatal(err)
		}
		ate, _ := res.ATERMSECm()
		psnr, _ := slam.EvaluatePSNR(res, seq, 4)
		fmt.Printf("%-9s ATE %.2f cm, PSNR %.2f dB, %d Gaussians\n",
			name, ate, psnr, res.Cloud.NumActive())
		return res
	}

	baseCfg := slam.DefaultConfig(w, h)
	baseCfg.TrackIters = 30
	base := run("baseline", baseCfg)

	agsCfg := slam.AGSConfig(w, h)
	agsCfg.TrackIters = 30
	ags := run("AGS", agsCfg)

	fmt.Println("\ntime to finish modeling the site (edge hardware, modeled):")
	gpu := platform.RunTotal(platform.Xavier(), base.Trace)
	acc := platform.RunTotal(platform.AGSEdge(), ags.Trace)
	fmt.Printf("  Jetson-class GPU: %7.1f ms  (%.2f J)\n", gpu.TotalNs*1e-6, gpu.EnergyJ)
	fmt.Printf("  AGS-Edge:         %7.1f ms  (%.2f J)  -> %.1fx faster, robot starts delivering sooner\n",
		acc.TotalNs*1e-6, acc.EnergyJ, gpu.TotalNs/acc.TotalNs)
}
