// Package gridsched mirrors the grid scheduler's concurrency shape in the
// golden corpus: a method-valued allowlist entry ((*Scheduler).dialAll, the
// joined dial fan-out) must be clean, while an unregistered launch on the
// same receiver still trips goroutine-site.
package gridsched

import "sync"

// Scheduler is the corpus stand-in for the grid coordinator.
type Scheduler struct {
	addrs []string
}

// dialAll is on the test allowlist: one goroutine per worker address, joined
// before returning — the reviewed fan-out shape.
func (s *Scheduler) dialAll() []error {
	errs := make([]error, len(s.addrs))
	var wg sync.WaitGroup
	for i := range s.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = nil
		}(i)
	}
	wg.Wait()
	return errs
}

// retryLoose spawns from an unregistered method on the same receiver: being
// a Scheduler method is not enough, the allowlist is per launch site.
func (s *Scheduler) retryLoose(done chan struct{}) {
	go close(done) // want goroutine-site
}
