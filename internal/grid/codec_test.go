package grid

import (
	"bytes"
	"testing"

	"ags/internal/scene"
	"ags/internal/slam"
)

func testJob() Job {
	cfg := slam.DefaultConfig(40, 32)
	cfg.EnableMAT, cfg.EnableGCM = true, true
	cfg.TrackIters = 8
	cfg.IterT = 3
	return Job{
		ID:    "Desk/ags/",
		Seq:   "Desk",
		Scene: scene.Config{Width: 40, Height: 32, Frames: 6, Seed: 1, VFoV: 0.9},
		Cfg:   cfg,
	}
}

func TestJobRoundTrip(t *testing.T) {
	in := testJob()
	out, err := decodeJob(encodeJob(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Seq != in.Seq || out.Scene != in.Scene {
		t.Fatalf("job round-trip: got %+v, want %+v", out, in)
	}
	// The pipeline config must cross bit-exactly: re-encoding both sides
	// through the snapshot codec compares every float by its bits.
	if !bytes.Equal(slam.AppendConfig(nil, &out.Cfg), slam.AppendConfig(nil, &in.Cfg)) {
		t.Fatal("slam.Config did not round-trip bit-exactly")
	}
}

func TestJobDecodeRejectsTrailingBytes(t *testing.T) {
	in := testJob()
	p := append(encodeJob(nil, &in), 0xFF)
	if _, err := decodeJob(p); err == nil {
		t.Fatal("decodeJob accepted a trailing byte")
	}
}

func TestJobDecodeRejectsTruncation(t *testing.T) {
	in := testJob()
	p := encodeJob(nil, &in)
	for _, n := range []int{0, 1, 7, 8, len(p) / 2, len(p) - 1} {
		if _, err := decodeJob(p[:n]); err == nil {
			t.Fatalf("decodeJob accepted a %d-byte truncation of %d", n, len(p))
		}
	}
}

func TestJobDecodeRejectsOverlongSlice(t *testing.T) {
	var e enc
	e.u64(1 << 40) // declared string length far beyond the payload
	if _, err := decodeJob(e.buf); err == nil {
		t.Fatal("decodeJob accepted slice length beyond payload")
	}
}

func TestJobResultRoundTrip(t *testing.T) {
	in := jobResult{Snap: []byte("AGSSNAP pretend bytes")}
	for i := range in.Digest {
		in.Digest[i] = byte(i * 3)
	}
	out, err := decodeJobResult(encodeJobResult(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Digest != in.Digest || !bytes.Equal(out.Snap, in.Snap) {
		t.Fatalf("job-result round-trip: got %+v, want %+v", out, in)
	}
}

func TestJobResultDecodeRejectsDamage(t *testing.T) {
	in := jobResult{Snap: []byte("snap")}
	p := encodeJobResult(nil, &in)
	if _, err := decodeJobResult(p[:len(p)-1]); err == nil {
		t.Fatal("decodeJobResult accepted a truncated payload")
	}
	if _, err := decodeJobResult(append(append([]byte(nil), p...), 0x00)); err == nil {
		t.Fatal("decodeJobResult accepted a trailing byte")
	}
	if _, err := decodeJobResult(nil); err == nil {
		t.Fatal("decodeJobResult accepted an empty payload")
	}
}
