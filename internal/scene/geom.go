package scene

import (
	"math"

	"ags/internal/vecmath"
)

// Hit records a ray/surface intersection.
type Hit struct {
	T      float64 // ray parameter (distance along unit direction)
	Point  vecmath.Vec3
	Normal vecmath.Vec3
	Albedo vecmath.Vec3
}

// Object is anything a ray can hit.
type Object interface {
	// Intersect returns the nearest hit with t in (tMin, tMax).
	Intersect(origin, dir vecmath.Vec3, tMin, tMax float64) (Hit, bool)
}

// Box is an axis-aligned box with a texture.
type Box struct {
	Min, Max vecmath.Vec3
	Tex      Texture
}

// Intersect implements Object via the slab method.
func (b *Box) Intersect(origin, dir vecmath.Vec3, tMin, tMax float64) (Hit, bool) {
	t0, t1 := tMin, tMax
	axisIn := -1
	for axis := 0; axis < 3; axis++ {
		var o, d, lo, hi float64
		switch axis {
		case 0:
			o, d, lo, hi = origin.X, dir.X, b.Min.X, b.Max.X
		case 1:
			o, d, lo, hi = origin.Y, dir.Y, b.Min.Y, b.Max.Y
		default:
			o, d, lo, hi = origin.Z, dir.Z, b.Min.Z, b.Max.Z
		}
		if math.Abs(d) < 1e-12 {
			if o < lo || o > hi {
				return Hit{}, false
			}
			continue
		}
		inv := 1 / d
		ta := (lo - o) * inv
		tb := (hi - o) * inv
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
			axisIn = axis
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1 {
			return Hit{}, false
		}
	}
	t := t0
	entering := true
	if axisIn == -1 || t <= tMin {
		// Ray starts inside the box: hit the exit face instead.
		t = t1
		entering = false
		if t <= tMin || t >= tMax {
			return Hit{}, false
		}
	}
	p := origin.Add(dir.Scale(t))
	n := b.normalAt(p, entering)
	return Hit{T: t, Point: p, Normal: n, Albedo: b.Tex(p)}, true
}

func (b *Box) normalAt(p vecmath.Vec3, entering bool) vecmath.Vec3 {
	// Pick the face whose plane is closest to p.
	best := math.Inf(1)
	var n vecmath.Vec3
	check := func(d float64, cand vecmath.Vec3) {
		if ad := math.Abs(d); ad < best {
			best = ad
			n = cand
		}
	}
	check(p.X-b.Min.X, vecmath.Vec3{X: -1})
	check(b.Max.X-p.X, vecmath.Vec3{X: 1})
	check(p.Y-b.Min.Y, vecmath.Vec3{Y: -1})
	check(b.Max.Y-p.Y, vecmath.Vec3{Y: 1})
	check(p.Z-b.Min.Z, vecmath.Vec3{Z: -1})
	check(b.Max.Z-p.Z, vecmath.Vec3{Z: 1})
	if !entering {
		n = n.Neg()
	}
	return n
}

// Sphere is a textured sphere.
type Sphere struct {
	Center vecmath.Vec3
	Radius float64
	Tex    Texture
}

// Intersect implements Object.
func (s *Sphere) Intersect(origin, dir vecmath.Vec3, tMin, tMax float64) (Hit, bool) {
	oc := origin.Sub(s.Center)
	b := oc.Dot(dir)
	c := oc.NormSq() - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return Hit{}, false
	}
	sq := math.Sqrt(disc)
	t := -b - sq
	if t <= tMin {
		t = -b + sq
	}
	if t <= tMin || t >= tMax {
		return Hit{}, false
	}
	p := origin.Add(dir.Scale(t))
	n := p.Sub(s.Center).Scale(1 / s.Radius)
	return Hit{T: t, Point: p, Normal: n, Albedo: s.Tex(p)}, true
}

// RoomShell is an inward-facing axis-aligned box (floor, ceiling and walls)
// that rays hit from the inside.
type RoomShell struct {
	Min, Max vecmath.Vec3
	Tex      Texture
}

// Intersect implements Object: the nearest exit face of the enclosing box.
func (r *RoomShell) Intersect(origin, dir vecmath.Vec3, tMin, tMax float64) (Hit, bool) {
	t1 := tMax
	for axis := 0; axis < 3; axis++ {
		var o, d, lo, hi float64
		switch axis {
		case 0:
			o, d, lo, hi = origin.X, dir.X, r.Min.X, r.Max.X
		case 1:
			o, d, lo, hi = origin.Y, dir.Y, r.Min.Y, r.Max.Y
		default:
			o, d, lo, hi = origin.Z, dir.Z, r.Min.Z, r.Max.Z
		}
		if math.Abs(d) < 1e-12 {
			continue
		}
		inv := 1 / d
		ta := (lo - o) * inv
		tb := (hi - o) * inv
		if ta > tb {
			ta, tb = tb, ta
		}
		if tb < t1 {
			t1 = tb
		}
	}
	if t1 <= tMin || t1 >= tMax {
		return Hit{}, false
	}
	p := origin.Add(dir.Scale(t1))
	// Inward normal: the face plane nearest to p, pointing into the room.
	box := Box{Min: r.Min, Max: r.Max}
	n := box.normalAt(p, true).Neg()
	return Hit{T: t1, Point: p, Normal: n, Albedo: r.Tex(p)}, true
}
