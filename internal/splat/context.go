package splat

import (
	"sync"

	"ags/internal/frame"
)

// RenderContext owns every buffer the forward and backward passes touch: the
// Result pixel planes, the contribution log and its per-worker scratch, the
// projected-splat slice, the CSR tile tables, the backward partial-reduction
// arena, and the gradient outputs. Reusing one context across frames makes
// the steady-state render/backward hot path allocation-free — the property
// the tracker's IterT refinement loop and the mapper's MapIters training
// loop run on (see the package doc's lifecycle and aliasing rules).
//
// A RenderContext is not safe for concurrent use. A nil *RenderContext is
// valid: its Render and Backward fall back to the one-shot package functions,
// so callers can thread an optional context without branching.
type RenderContext struct {
	// Forward-pass state.
	splats     []Splat
	tiles      Tiles
	tileCursor []int32 // per-tile write cursor of the CSR build
	color      frame.Image
	depth      frame.DepthMap
	result     Result
	ranges     [][2]int
	ops        []int64 // per-worker {alphaOps, blendOps} pairs
	contrib    []int32 // per-worker contribution scratch (nonContrib ++ touched)

	// Backward-pass state.
	arena     backwardArena
	grads     Grads
	bwScratch [][]contribution // per-worker blend-replay scratch
}

// NewRenderContext returns an empty context; buffers are sized lazily from
// the intrinsics and cloud of each call.
func NewRenderContext() *RenderContext {
	return &RenderContext{}
}

// Reset drops every internal buffer, returning the context to its zero
// footprint. Results and gradients previously returned by this context are
// invalidated. Reset is never required for correctness — buffers re-size
// automatically — it only releases memory early.
func (ctx *RenderContext) Reset() {
	ctx.splats = nil
	ctx.tiles = Tiles{}
	ctx.tileCursor = nil
	ctx.color = frame.Image{}
	ctx.depth = frame.DepthMap{}
	ctx.result = Result{}
	ctx.ranges = nil
	ctx.ops = nil
	ctx.contrib = nil
	ctx.arena.reset()
	ctx.grads = Grads{}
	ctx.bwScratch = nil
}

// contextPool recycles the scratch contexts behind the one-shot Render and
// Backward wrappers. Outputs are detached before a context is pooled, so
// pooled contexts never alias caller-visible buffers.
var contextPool = sync.Pool{New: func() any { return NewRenderContext() }}

// acquireContext returns a scratch context for a one-shot call. noPool
// (Options.NoPool / BackwardOptions.NoPool) bypasses the pool and allocates
// fresh — the escape hatch perf experiments use for apples-to-apples
// allocation A/Bs.
func acquireContext(noPool bool) *RenderContext {
	if noPool {
		return NewRenderContext()
	}
	return contextPool.Get().(*RenderContext)
}

// releaseContext returns a scratch context to the pool (a no-op under
// noPool, matching acquireContext).
func releaseContext(ctx *RenderContext, noPool bool) {
	if !noPool {
		contextPool.Put(ctx)
	}
}

// detachResult hands the context's forward output to the caller: the
// returned Result owns its buffers outright, and the context forgets them so
// its next use re-allocates instead of aliasing. Internal scratch that never
// escapes (shard ranges, op counters, contribution scratch, the CSR build
// cursor, the backward arena) stays with the context for reuse.
func (ctx *RenderContext) detachResult() *Result {
	out := ctx.result
	out.Color = &frame.Image{W: ctx.color.W, H: ctx.color.H, Pix: ctx.color.Pix}
	out.Depth = &frame.DepthMap{W: ctx.depth.W, H: ctx.depth.H, D: ctx.depth.D}
	out.Tiles = &Tiles{TW: ctx.tiles.TW, TH: ctx.tiles.TH, Offsets: ctx.tiles.Offsets, Entries: ctx.tiles.Entries}
	ctx.color = frame.Image{}
	ctx.depth = frame.DepthMap{}
	ctx.tiles = Tiles{}
	ctx.splats = nil
	ctx.result = Result{}
	return &out
}

// detachGrads hands the context's backward output to the caller, forgetting
// the gradient buffers so the next use re-allocates instead of aliasing.
func (ctx *RenderContext) detachGrads() *Grads {
	out := ctx.grads
	ctx.grads = Grads{}
	return &out
}
