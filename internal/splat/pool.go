package splat

import (
	"sync"
	"unsafe"

	"ags/internal/vecmath"
)

// PoolStats is a snapshot of a ContextPool's counters.
type PoolStats struct {
	// Capacity is the configured bound on retained idle contexts.
	Capacity int
	// Idle is how many contexts the pool currently retains (always <= Capacity).
	Idle int
	// Hits counts Acquire calls served by a retained context of the requested
	// size class; Misses counts Acquire calls that allocated a fresh context.
	Hits, Misses uint64
	// Evictions counts contexts dropped to keep Idle within Capacity.
	Evictions uint64
	// ResidentBytes estimates the heap bytes held by the retained idle
	// contexts (see RenderContext.FootprintBytes). In-use contexts are the
	// borrower's to account for.
	ResidentBytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before the first Acquire.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// sizeClass keys pooled contexts by the frame size their buffers are sized
// for, so a stream acquiring for its own resolution gets warm buffers back
// instead of re-growing another stream's.
type sizeClass struct{ W, H int }

// pooledCtx is one retained idle context with its accounting.
type pooledCtx struct {
	ctx   *RenderContext
	bytes int64
	seq   uint64 // release order; the global minimum is the LRU entry
}

// ContextPool is a bounded, size-keyed set of RenderContexts shared by many
// streams: the per-host resource a multi-session SLAM server pins render
// state in without unbounded memory growth. Acquire never blocks — a miss
// allocates a fresh context — and Release retains at most Capacity idle
// contexts, evicting the least-recently-used one (across all size classes)
// beyond that. Within a size class, Acquire returns the most recently
// released context (warmest caches first).
//
// A ContextPool is safe for concurrent use; the contexts it hands out are
// not — each borrower owns its context exclusively until Release. Contexts
// carry no state between borrowers that affects outputs (every buffer is
// re-zeroed or fully overwritten per call), so pooled and fresh contexts are
// byte-identical to render through.
type ContextPool struct {
	mu        sync.Mutex
	capacity  int
	seq       uint64
	idle      map[sizeClass][]pooledCtx // per-class LIFO stacks, oldest at [0]
	nIdle     int
	hits      uint64
	misses    uint64
	evictions uint64
	resident  int64
}

// NewContextPool returns a pool retaining at most capacity idle contexts
// (minimum 1).
func NewContextPool(capacity int) *ContextPool {
	if capacity < 1 {
		capacity = 1
	}
	return &ContextPool{capacity: capacity, idle: make(map[sizeClass][]pooledCtx)}
}

// Capacity returns the configured idle-context bound.
func (p *ContextPool) Capacity() int { return p.capacity }

// Acquire returns a context for rendering w x h frames: a retained context of
// that size class when one is idle (hit), a fresh one otherwise (miss). The
// caller owns the context exclusively until Release.
func (p *ContextPool) Acquire(w, h int) *RenderContext {
	key := sizeClass{W: w, H: h}
	p.mu.Lock()
	if stack := p.idle[key]; len(stack) > 0 {
		e := stack[len(stack)-1]
		p.idle[key] = stack[:len(stack)-1]
		p.nIdle--
		p.hits++
		p.resident -= e.bytes
		p.mu.Unlock()
		return e.ctx
	}
	p.misses++
	p.mu.Unlock()
	return NewRenderContext()
}

// Release returns a context to the pool, keyed by the frame size its buffers
// are currently sized for. If the pool is at capacity, the least-recently-
// used idle context (of any size class) is evicted and left to the garbage
// collector. Results and gradients previously returned by ctx are
// invalidated: the next borrower will overwrite them. A nil ctx is a no-op.
func (p *ContextPool) Release(ctx *RenderContext) {
	if p == nil || ctx == nil {
		return
	}
	key := sizeClass{W: ctx.color.W, H: ctx.color.H}
	bytes := ctx.FootprintBytes()
	p.mu.Lock()
	p.seq++
	p.idle[key] = append(p.idle[key], pooledCtx{ctx: ctx, bytes: bytes, seq: p.seq})
	p.nIdle++
	p.resident += bytes
	for p.nIdle > p.capacity {
		p.evictLRULocked()
	}
	p.mu.Unlock()
}

// evictLRULocked drops the globally least-recently-used idle context. Each
// class stack is pushed in release order and popped LIFO, so its [0] entry is
// that class's oldest; the global LRU is the minimum seq among stack bottoms.
func (p *ContextPool) evictLRULocked() {
	var victimKey sizeClass
	var victimSeq uint64
	found := false
	//ags:allow(maprange, min-reduction over globally unique seq values: every visit order selects the same victim)
	for key, stack := range p.idle {
		if len(stack) == 0 {
			continue
		}
		if !found || stack[0].seq < victimSeq {
			victimKey, victimSeq, found = key, stack[0].seq, true
		}
	}
	if !found {
		return
	}
	stack := p.idle[victimKey]
	p.resident -= stack[0].bytes
	if len(stack) == 1 {
		delete(p.idle, victimKey)
	} else {
		p.idle[victimKey] = append(stack[:0], stack[1:]...)
	}
	p.nIdle--
	p.evictions++
}

// Stats returns a snapshot of the pool's counters.
func (p *ContextPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Capacity:      p.capacity,
		Idle:          p.nIdle,
		Hits:          p.hits,
		Misses:        p.misses,
		Evictions:     p.evictions,
		ResidentBytes: p.resident,
	}
}

// FootprintBytes estimates the heap bytes retained by the context's buffers
// (slice capacities times element sizes; the fixed-size struct header is not
// counted). The pool uses it for its resident-bytes metric.
func (ctx *RenderContext) FootprintBytes() int64 {
	if ctx == nil {
		return 0
	}
	b := sliceBytes[Splat](cap(ctx.splats)) +
		sliceBytes[int32](cap(ctx.tiles.Offsets)) +
		sliceBytes[int32](cap(ctx.tiles.Entries)) +
		sliceBytes[int32](cap(ctx.tileCursor)) +
		sliceBytes[vecmath.Vec3](cap(ctx.color.Pix)) +
		sliceBytes[float64](cap(ctx.depth.D)) +
		sliceBytes[float64](cap(ctx.result.Silhouette)) +
		sliceBytes[float64](cap(ctx.result.FinalT)) +
		sliceBytes[int32](cap(ctx.result.PerPixelBlend)) +
		sliceBytes[int32](cap(ctx.result.PerPixelAlpha)) +
		sliceBytes[int32](cap(ctx.result.NonContrib)) +
		sliceBytes[int32](cap(ctx.result.Touched)) +
		sliceBytes[[2]int](cap(ctx.ranges)) +
		sliceBytes[int64](cap(ctx.ops)) +
		sliceBytes[int32](cap(ctx.contrib)) +
		sliceBytes[float64](cap(ctx.arena.lossByTile)) +
		sliceBytes[vecmath.Twist](cap(ctx.arena.poseByTile)) +
		sliceBytes[vecmath.Vec3](cap(ctx.arena.mean)) +
		sliceBytes[vecmath.Vec3](cap(ctx.arena.color)) +
		sliceBytes[float64](cap(ctx.arena.logit)) +
		sliceBytes[float64](cap(ctx.arena.logScale)) +
		sliceBytes[vecmath.Vec3](cap(ctx.grads.Mean)) +
		sliceBytes[vecmath.Vec3](cap(ctx.grads.Color)) +
		sliceBytes[float64](cap(ctx.grads.Logit)) +
		sliceBytes[float64](cap(ctx.grads.LogScale)) +
		sliceBytes[[]contribution](cap(ctx.bwScratch))
	for _, sc := range ctx.bwScratch {
		b += sliceBytes[contribution](cap(sc))
	}
	return b
}

// sliceBytes returns the heap bytes of a slice with capacity n of T.
func sliceBytes[T any](n int) int64 {
	var t T
	return int64(n) * int64(unsafe.Sizeof(t))
}
