// Package frame defines the image containers shared by the renderer, the
// CODEC model, the tracker and the dataset generator: float RGB images,
// metric depth maps, and the RGB-D frames streamed through the SLAM pipeline.
package frame

import (
	"fmt"
	"math"

	"ags/internal/vecmath"
)

// Image is a dense RGB image with float64 channels in [0,1], row-major.
type Image struct {
	W, H int
	Pix  []vecmath.Vec3 // Pix[y*W+x] = (R,G,B)
}

// NewImage returns a black image of the given size.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]vecmath.Vec3, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds coordinates are clamped.
func (im *Image) At(x, y int) vecmath.Vec3 {
	x = min(max(x, 0), im.W-1)
	y = min(max(y, 0), im.H-1)
	return im.Pix[y*im.W+x]
}

// Set stores c at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, c vecmath.Vec3) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = c
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Luma returns the per-pixel luminance (Rec.601 weights) as a flat slice.
func (im *Image) Luma() []float64 {
	out := make([]float64, len(im.Pix))
	for i, p := range im.Pix {
		out[i] = 0.299*p.X + 0.587*p.Y + 0.114*p.Z
	}
	return out
}

// Luma8 returns the luminance quantized to 8-bit values, matching what a
// hardware CODEC's motion-estimation block consumes.
func (im *Image) Luma8() []uint8 {
	out := make([]uint8, len(im.Pix))
	for i, p := range im.Pix {
		y := 0.299*p.X + 0.587*p.Y + 0.114*p.Z
		out[i] = uint8(vecmath.Clamp(y, 0, 1)*255 + 0.5)
	}
	return out
}

// Downsample returns the image reduced by 2x using 2x2 box averaging.
func (im *Image) Downsample() *Image {
	w, h := im.W/2, im.H/2
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := im.At(2*x, 2*y).
				Add(im.At(2*x+1, 2*y)).
				Add(im.At(2*x, 2*y+1)).
				Add(im.At(2*x+1, 2*y+1))
			out.Pix[y*w+x] = sum.Scale(0.25)
		}
	}
	return out
}

// Bilinear samples the image at continuous coordinates with bilinear
// interpolation; coordinates are clamped to the image border.
func (im *Image) Bilinear(x, y float64) vecmath.Vec3 {
	x = vecmath.Clamp(x, 0, float64(im.W-1))
	y = vecmath.Clamp(y, 0, float64(im.H-1))
	x0, y0 := int(x), int(y)
	fx, fy := x-float64(x0), y-float64(y0)
	c00 := im.At(x0, y0)
	c10 := im.At(x0+1, y0)
	c01 := im.At(x0, y0+1)
	c11 := im.At(x0+1, y0+1)
	top := c00.Lerp(c10, fx)
	bot := c01.Lerp(c11, fx)
	return top.Lerp(bot, fy)
}

// DepthMap is a dense metric depth image; zero means "no measurement".
type DepthMap struct {
	W, H int
	D    []float64
}

// NewDepthMap returns an all-zero (invalid) depth map.
func NewDepthMap(w, h int) *DepthMap {
	return &DepthMap{W: w, H: h, D: make([]float64, w*h)}
}

// At returns the depth at (x, y) with border clamping.
func (dm *DepthMap) At(x, y int) float64 {
	x = min(max(x, 0), dm.W-1)
	y = min(max(y, 0), dm.H-1)
	return dm.D[y*dm.W+x]
}

// Set stores d at (x, y); out-of-bounds writes are ignored.
func (dm *DepthMap) Set(x, y int, d float64) {
	if x < 0 || y < 0 || x >= dm.W || y >= dm.H {
		return
	}
	dm.D[y*dm.W+x] = d
}

// Clone returns a deep copy.
func (dm *DepthMap) Clone() *DepthMap {
	out := NewDepthMap(dm.W, dm.H)
	copy(out.D, dm.D)
	return out
}

// Downsample reduces the map by 2x, averaging only valid (non-zero) samples.
func (dm *DepthMap) Downsample() *DepthMap {
	w, h := dm.W/2, dm.H/2
	out := NewDepthMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float64
			var n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if d := dm.At(2*x+dx, 2*y+dy); d > 0 {
						sum += d
						n++
					}
				}
			}
			if n > 0 {
				out.D[y*w+x] = sum / float64(n)
			}
		}
	}
	return out
}

// Frame is one RGB-D observation streamed into the SLAM system.
type Frame struct {
	Index  int
	Color  *Image
	Depth  *DepthMap
	GTPose vecmath.Pose // ground-truth world->camera pose (evaluation only)
}

// Validate reports whether the frame's buffers are consistent.
func (f *Frame) Validate() error {
	if f.Color == nil || f.Depth == nil {
		return fmt.Errorf("frame %d: missing color or depth", f.Index)
	}
	if f.Color.W != f.Depth.W || f.Color.H != f.Depth.H {
		return fmt.Errorf("frame %d: color %dx%d vs depth %dx%d",
			f.Index, f.Color.W, f.Color.H, f.Depth.W, f.Depth.H)
	}
	return nil
}

// MeanAbsDiff returns the mean absolute per-channel difference between two
// images of identical size; it returns +Inf on size mismatch.
func MeanAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		return math.Inf(1)
	}
	var sum float64
	for i := range a.Pix {
		d := a.Pix[i].Sub(b.Pix[i]).Abs()
		sum += d.X + d.Y + d.Z
	}
	return sum / float64(3*len(a.Pix))
}
