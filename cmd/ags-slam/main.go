// Command ags-slam runs one SLAM configuration over one synthetic sequence
// and reports accuracy, reconstruction quality and modeled platform times.
//
// Usage:
//
//	ags-slam -seq Desk -algo ags
//	ags-slam -seq Room -algo baseline -frames 60 -w 96 -h 72
//	ags-slam -seq Desk -algo ags -sessions 4   # concurrent streams, one server
//	ags-slam -seq Desk -snapshot run.snap -snapshot-at 12   # serialize mid-stream
//	ags-slam -seq Desk -resume run.snap                     # continue it; digests match
//	ags-slam -seq Desk -prune-opacity 0.25 -prune-lr-logit 0.2   # real prune pressure
//	        (the default threshold never fires: Gaussians are seeded at 0.999 opacity)
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ags/internal/hw/platform"
	"ags/internal/scene"
	"ags/internal/slam"
)

func main() {
	var (
		seqName  = flag.String("seq", "Desk", "sequence name (see -listseq)")
		algo     = flag.String("algo", "ags", "baseline | ags | mat | gcm | droid")
		width    = flag.Int("w", 64, "frame width")
		height   = flag.Int("h", 48, "frame height")
		frames   = flag.Int("frames", 24, "frames in the sequence")
		iters    = flag.Int("iters", 30, "baseline tracking iterations (N_T)")
		workers  = flag.Int("workers", 0, "splat render worker goroutines (0 = all cores; results are bit-identical for every value)")
		noCtx    = flag.Bool("no-render-ctx", false, "disable the frame-persistent render context (one-shot buffers every render; bit-identical, for allocation A/Bs)")
		listSeq  = flag.Bool("listseq", false, "list sequence names and exit")
		traceOut = flag.String("trace", "", "write the run's operation trace as JSON to this file")
		sessions = flag.Int("sessions", 1, "run N copies of the sequence as concurrent slam.Server sessions (digest-asserted against a sequential run)")

		pipelineME   = flag.Bool("pipeline-me", false, "prefetch next frame's motion estimation concurrently with tracking/mapping")
		codecWorkers = flag.Int("codec-workers", 0, "ME worker goroutines per frame (0 = serial)")
		meEarlyTerm  = flag.Bool("me-early-term", false, "encoder early termination in ME SAD accumulation")

		compactEvery = flag.Int("compact-every", slam.DefaultConfig(1, 1).CompactEvery, "re-pack the Gaussian map every k frames (0 = never; bit-transparent either way)")
		pruneOpacity = flag.Float64("prune-opacity", slam.DefaultConfig(1, 1).Mapper.PruneOpacity, "deactivate Gaussians whose opacity falls below this; the default never fires against opacities seeded at 0.999 — raise it (e.g. 0.25, with -prune-lr-logit 0.2) for real prune pressure")
		pruneLRLogit = flag.Float64("prune-lr-logit", slam.DefaultConfig(1, 1).Mapper.LRLogit, "opacity-logit learning rate; turn up alongside -prune-opacity so opacities can actually collapse within short runs")
		snapPath     = flag.String("snapshot", "", "write a binary session snapshot to this file")
		snapAt       = flag.Int("snapshot-at", 0, "take the snapshot after this many frames (0 = after the last frame)")
		resumePath   = flag.String("resume", "", "restore the run from this snapshot and process the remaining frames (config flags come from the snapshot)")
	)
	flag.Parse()

	if *listSeq {
		for _, n := range scene.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := slam.DefaultConfig(*width, *height)
	cfg.TrackIters = *iters
	cfg.Workers = *workers
	cfg.NoRenderCtx = *noCtx
	cfg.PipelineME = *pipelineME
	cfg.CodecWorkers = *codecWorkers
	cfg.CodecEarlyTerm = *meEarlyTerm
	cfg.CompactEvery = *compactEvery
	cfg.Mapper.PruneOpacity = *pruneOpacity
	cfg.Mapper.LRLogit = *pruneLRLogit
	switch *algo {
	case "baseline":
	case "ags":
		cfg.EnableMAT, cfg.EnableGCM = true, true
	case "mat":
		cfg.EnableMAT = true
	case "gcm":
		cfg.EnableGCM = true
	case "droid":
		cfg.ForceCoarseOnly = true
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("generating %s (%dx%d, %d frames)...\n", *seqName, *width, *height, *frames)
	seq, err := scene.Generate(*seqName, scene.Config{Width: *width, Height: *height, Frames: *frames, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *sessions > 1 {
		if err := runSessions(cfg, seq, *sessions, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("running %s pipeline...\n", *algo)
	start := time.Now()
	var sys *slam.System
	startIdx := 0
	if *resumePath != "" {
		sf, err := os.Open(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys, err = slam.Restore(sf)
		sf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		startIdx = sys.FrameCount()
		cfg = sys.Cfg // the snapshot's config governs the continuation
		fmt.Printf("  restored %s at frame %d\n", *resumePath, startIdx)
		if startIdx > len(seq.Frames) {
			fmt.Fprintf(os.Stderr, "snapshot holds %d frames but the sequence has %d\n", startIdx, len(seq.Frames))
			os.Exit(1)
		}
	} else {
		sys = slam.New(cfg, seq.Intr)
	}
	writeSnapshot := func() {
		sf, err := os.Create(*snapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sys.Snapshot(sf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  snapshot written to %s at frame %d\n", *snapPath, sys.FrameCount())
	}
	for i := startIdx; i < len(seq.Frames); i++ {
		f := seq.Frames[i]
		if cfg.PipelineME && i+1 < len(seq.Frames) {
			sys.Prefetch(f, seq.Frames[i+1])
		}
		if err := sys.ProcessFrame(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inf := ""
		res := sys.Finish(*seqName) // cheap: snapshots accumulated state
		last := res.Info[len(res.Info)-1]
		if last.CoarseOnly {
			inf += " coarse-only"
		}
		if last.IsKeyFrame {
			inf += " keyframe"
		}
		fmt.Printf("  frame %2d: FC %.2f%s\n", f.Index, float64(last.Covisibility), inf)
		if *snapPath != "" && *snapAt > 0 && sys.FrameCount() == *snapAt {
			writeSnapshot()
		}
	}
	if *snapPath != "" && *snapAt <= 0 {
		writeSnapshot()
	}
	res := sys.Finish(*seqName)
	sys.Close() // return the render context to the pool; PSNR below reuses it
	elapsed := time.Since(start)

	ate, err := res.ATERMSECm()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	psnr, err := slam.EvaluatePSNR(res, seq, 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tot := res.Trace.Totals()
	fmt.Printf("\nresults for %s / %s:\n", *seqName, *algo)
	fmt.Printf("  ATE RMSE           %.2f cm\n", ate)
	fmt.Printf("  PSNR               %.2f dB\n", psnr)
	dig := res.Digest()
	fmt.Printf("  gaussians          %d active (%d slots resident)\n", res.Cloud.NumActive(), res.Cloud.Len())
	fmt.Printf("  pruned/compacted   %d pruned, %d slots reclaimed (%.1f KB)\n",
		tot.PrunedGaussians, tot.CompactedSlots, float64(tot.ReclaimedBytes)/1024)
	fmt.Printf("  digest             %x\n", dig[:8])
	fmt.Printf("  key frames         %d / %d\n", tot.KeyFrames, tot.Frames)
	fmt.Printf("  coarse-only frames %d\n", tot.CoarseOnly)
	fmt.Printf("  track iterations   %d\n", tot.TrackIters)
	fmt.Printf("  map iterations     %d\n", tot.MapIters)
	fmt.Printf("  wall time          %s (%.2f s/frame in Go)\n", elapsed.Round(time.Millisecond), elapsed.Seconds()/float64(tot.Frames))

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Trace.WriteJSON(tf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *traceOut)
	}

	fmt.Printf("\nmodeled per-frame latency:\n")
	for _, pl := range []platform.Platform{platform.A100(), platform.Xavier(), platform.AGSServer(), platform.AGSEdge()} {
		b := platform.RunTotal(pl, res.Trace)
		fmt.Printf("  %-12s %8.3f ms/frame  (%.2f J total)\n", pl.Name(), b.TotalNs/float64(tot.Frames)*1e-6, b.EnergyJ)
	}
}

// runSessions streams n copies of the sequence as concurrent sessions on one
// slam.Server and checks every session's Result digest against a sequential
// slam.Run — the multi-tenant serving mode, with the bounded context pool
// shared across streams. traceOut, if non-empty, receives the reference
// run's operation trace (the sessions' traces are digest-identical to it).
func runSessions(cfg slam.Config, seq *scene.Sequence, n int, traceOut string) error {
	fmt.Printf("sequential reference run...\n")
	ref, err := slam.Run(cfg, seq)
	if err != nil {
		return err
	}
	refDigest := ref.Digest()

	fmt.Printf("running %d concurrent sessions on one server...\n", n)
	srv := slam.NewServer(slam.ServerConfig{ContextCapacity: n})
	results := make([]*slam.Result, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// All sessions carry the sequence's name: the Result label names
			// the data, and the digest (which covers it) stays comparable.
			results[i], errs[i] = srv.Run(cfg, seq)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return fmt.Errorf("session %d: %w", i, errs[i])
		}
		if results[i].Digest() != refDigest {
			return fmt.Errorf("session %d: result diverged from the sequential run", i)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}

	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := ref.Trace.WriteJSON(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace written to %s\n", traceOut)
	}

	ate, err := ref.ATERMSECm()
	if err != nil {
		return err
	}
	st := srv.PoolStats()
	frames := n * len(seq.Frames)
	fmt.Printf("\nresults for %d sessions over %s:\n", n, seq.Name)
	fmt.Printf("  digests            all %d sessions identical to sequential run\n", n)
	fmt.Printf("  ATE RMSE           %.2f cm (per stream)\n", ate)
	fmt.Printf("  throughput         %.2f frames/s (%d frames in %s)\n",
		float64(frames)/elapsed.Seconds(), frames, elapsed.Round(time.Millisecond))
	fmt.Printf("  context pool       %d cap, %d hits / %d misses (%.0f%% hit rate), %d evictions, %.1f KB resident\n",
		st.Capacity, st.Hits, st.Misses, 100*st.HitRate(), st.Evictions, float64(st.ResidentBytes)/1024)
	return nil
}
