package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ags/internal/scene"
	"ags/internal/slam"
)

// tinyCfg keeps bench tests fast; experiment correctness at scale is
// exercised by cmd/ags-bench and the repository-level benchmarks.
func tinyCfg() Config {
	return Config{
		Width: 40, Height: 32, Frames: 6,
		TrackIters: 8, IterT: 3, MapIters: 4,
		DensifyStride: 2, Workers: 4, Seed: 1,
	}
}

func TestRunCacheReuses(t *testing.T) {
	s := NewSuite(tinyCfg())
	b1 := s.MustRun(Spec("Desk", VarBaseline))
	b2 := s.MustRun(Spec("Desk", VarBaseline))
	if b1 != b2 {
		t.Error("cache returned different bundles for same key")
	}
	b3 := s.MustRun(Spec("Desk", VarAGS))
	if b3 == b1 {
		t.Error("different variants shared a bundle")
	}
	if n := len(s.Timings()); n != 2 {
		t.Errorf("suite executed %d pipelines, want 2", n)
	}
}

// TestRunSingleflight is the check-then-act regression test: N concurrent
// callers of one spec must trigger exactly one pipeline execution and all
// receive the same bundle.
func TestRunSingleflight(t *testing.T) {
	s := NewSuite(tinyCfg())
	const callers = 16
	bundles := make([]*Bundle, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bundles[i], errs[i] = s.Run(Spec("Desk", VarBaseline))
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if bundles[i] != bundles[0] {
			t.Fatalf("caller %d received a different bundle", i)
		}
	}
	if n := len(s.Timings()); n != 1 {
		t.Errorf("%d concurrent callers triggered %d executions, want 1", callers, n)
	}
}

// TestSequenceSingleflight checks dataset generation is shared the same way.
func TestSequenceSingleflight(t *testing.T) {
	s := NewSuite(tinyCfg())
	const callers = 8
	seqs := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqs[i] = s.Sequence("Desk")
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if seqs[i] != seqs[0] {
			t.Fatalf("caller %d generated a distinct sequence", i)
		}
	}
}

func TestRunRejectsDatasetOnlySpec(t *testing.T) {
	s := NewSuite(tinyCfg())
	if _, err := s.Run(SeqSpec("Desk")); err == nil {
		t.Error("dataset-only spec accepted by Run")
	}
}

func TestRunUnknownSequence(t *testing.T) {
	s := NewSuite(tinyCfg())
	if _, err := s.Run(Spec("NoSuchSeq", VarBaseline)); err == nil ||
		!strings.Contains(err.Error(), "unknown sequence") {
		t.Errorf("unknown sequence error = %v", err)
	}
	// The failure must not poison the cache: a valid spec still runs.
	if _, err := s.Run(Spec("Desk", VarBaseline)); err != nil {
		t.Fatal(err)
	}
}

func TestFindExperiment(t *testing.T) {
	e, err := Find("fig15a")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID() != "fig15a" || e.Paper() == "" {
		t.Errorf("bad experiment identity: %q / %q", e.ID(), e.Paper())
	}
	if len(e.Needs()) == 0 {
		t.Error("fig15a declares no needs")
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Experiments()) != 30 {
		t.Errorf("registry has %d experiments, want 30", len(Experiments()))
	}
}

// TestNeedsAreWellFormed: every declared spec names a known sequence, keyed
// specs carry an override, and — critically — no override ships without a
// key: ID() ignores Override, so an unkeyed override would collide with the
// plain (sequence, variant) cache slot and poison other experiments.
func TestNeedsAreWellFormed(t *testing.T) {
	known := map[string]bool{}
	for _, name := range scene.Names() {
		known[name] = true
	}
	for _, e := range Experiments() {
		for _, spec := range e.Needs() {
			if !known[spec.Seq] {
				t.Errorf("%s: spec names unknown sequence %q", e.ID(), spec.Seq)
			}
			if spec.Key != "" && spec.Override == nil {
				t.Errorf("%s: keyed spec %s without override", e.ID(), spec.ID())
			}
			if spec.Key == "" && spec.Override != nil {
				t.Errorf("%s: spec %s has an override but no key (cache collision)", e.ID(), spec.ID())
			}
			if spec.DatasetOnly() && spec.Key != "" {
				t.Errorf("%s: dataset-only spec %s with key", e.ID(), spec.ID())
			}
		}
	}
}

// TestRunRejectsUnkeyedOverride pins the cache-collision guard.
func TestRunRejectsUnkeyedOverride(t *testing.T) {
	s := NewSuite(tinyCfg())
	spec := RunSpec{Seq: "Desk", Variant: VarAGS, Override: func(*slam.Config) {}}
	if _, err := s.Run(spec); err == nil || !strings.Contains(err.Error(), "key") {
		t.Errorf("unkeyed override accepted: %v", err)
	}
}

func TestTable3RunsWithoutSlam(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tinyCfg())
	if err := s.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "FC Detection Engine", "GS Array", "7.", "14."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig22RunsOnSequencesOnly(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tinyCfg())
	if err := s.Fig22(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "High") {
		t.Errorf("fig22 output malformed:\n%s", buf.String())
	}
	if n := len(s.Timings()); n != 0 {
		t.Errorf("fig22 executed %d pipelines, want 0 (dataset-only)", n)
	}
}

func TestSpeedupExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg())
	// Restrict to one sequence by running the underlying pieces directly:
	// Fig. 15 needs all nine sequences, which is too slow here; instead
	// exercise Table 1, which needs three variants on Desk.
	if err := s.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AGS (this work)", "SplaTAM-style baseline", "ATE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPerfMEExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg())
	// PerfME verifies parallel/serial equivalence internally and errors on
	// divergence, so a clean return is the main assertion.
	if err := s.PerfME(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CODEC ME wall-time", "Parallel", "Pipelined ME"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-me output missing %q:\n%s", want, out)
		}
	}
}

func TestPerfRenderExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slam runs in short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tinyCfg())
	// PerfRender asserts bitwise serial/sharded and pooled/unpooled
	// equivalence internally and errors on divergence, so a clean return is
	// the main assertion.
	if err := s.PerfRender(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"splat render+backward", "byte-identical", "allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("T", "A", "LongColumn")
	tab.AddRow("x", 1.5)
	tab.AddRow("yyyy", "z")
	tab.AddNote("n=%d", 2)
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "1.50") || !strings.Contains(out, "note: n=2") {
		t.Errorf("bad table output:\n%s", out)
	}
	// Header and separator align.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTimingsReturnsACopy(t *testing.T) {
	s := NewSuite(tinyCfg())
	got := s.Timings()
	got["intruder"] = 1
	if _, ok := s.Timings()["intruder"]; ok {
		t.Error("mutating the returned map leaked into the suite's internal timings")
	}
}
