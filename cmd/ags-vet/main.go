// Command ags-vet runs the repo-specific static checks in internal/lint over
// every package in the module: maprange, nondetsource, hotalloc and
// goroutine-site (see that package's documentation for what each enforces
// and the //ags:hotpath / //ags:allow directives that drive them).
//
// Usage:
//
//	ags-vet [-checks maprange,hotalloc] [-json] [./...]
//
// The package pattern is accepted for familiarity but the tool always
// analyzes the whole module containing the working directory — the checks
// are module-wide contracts, not per-package style rules.
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 when the module failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ags/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AllChecks(), ",")+")")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ags-vet [-checks c1,c2] [-json] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ags-vet:", err)
		os.Exit(2)
	}

	cfg := lint.Config{Dir: root}
	if *checksFlag != "" {
		for _, c := range strings.Split(*checksFlag, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cfg.Checks = append(cfg.Checks, c)
			}
		}
	}

	findings, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ags-vet:", err)
		os.Exit(2)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "ags-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(os.Stderr, "ags-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
// Package-pattern arguments (./...) are tolerated but do not narrow the
// analysis; anything else is rejected to avoid pretending to support it.
func moduleRoot() (string, error) {
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." && arg != "all" {
			return "", fmt.Errorf("unsupported package pattern %q (ags-vet always analyzes the enclosing module; run with ./... or no argument)", arg)
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
