// Package splat implements the tile-based 3D Gaussian Splatting pipeline of
// the paper's §2.1: preprocessing (EWA projection of 3D Gaussians to 2D
// splats and tile intersection), per-tile depth sorting into Gaussian tables,
// front-to-back alpha-blended rendering with early termination, and the
// backward pass producing analytic gradients for Gaussian parameters and the
// camera pose. The renderer also captures the per-Gaussian contribution
// statistics (alpha values below Thresh_alpha) that drive AGS's
// contribution-aware mapping, and the per-pixel/per-tile workload traces the
// hardware simulator replays.
//
// # Determinism contract
//
// Render and Backward are bit-reproducible: the tile grid is partitioned into
// static contiguous per-worker shards, and every cross-tile reduction runs
// over a fixed tree — raster order within a tile, ascending tile order across
// tiles (per-tile float partials in Backward), fixed worker order for the
// integer workload counters. Color/depth/silhouette/transmittance images, the
// contribution log, AlphaOps/BlendOps, and all gradient buffers are therefore
// byte-identical for every Options.Workers / BackwardOptions.Workers value,
// including the serial Workers=1 path. Callers may rely on this for exact A/B
// comparisons at full parallelism; Result.Digest and Grads.Digest exist to
// assert it cheaply.
//
// # Render contexts
//
// Both passes run inside a RenderContext, which owns every buffer they touch:
// the Result pixel planes, the contribution log and its per-worker scratch,
// the projected-splat slice, the CSR tile tables, and the backward pass's
// partial-reduction arena plus gradient outputs. A long-lived context makes
// the steady-state hot path allocation-free; the package-level Render and
// Backward functions remain as one-shot wrappers that borrow a context from
// an internal pool (bypassed by Options.NoPool / BackwardOptions.NoPool) and
// hand the output buffers to the caller before returning it.
//
// Multi-stream hosts share contexts through a ContextPool: a bounded set
// keyed by (W, H) size class with LRU eviction and hit/miss/eviction/
// resident-bytes metrics. Acquire never blocks (a miss allocates fresh),
// Release retains at most Capacity idle contexts, and pooled contexts carry
// nothing between borrowers that affects outputs — rendering through a
// recycled context is byte-identical to a fresh one, which is what lets many
// SLAM sessions interleave on one pool without perturbing each other (see
// package slam's Server).
//
// Lifecycle and aliasing rules:
//
//   - A context is NOT safe for concurrent use. One goroutine, one context;
//     the parallelism knob is Options.Workers inside a call, not contexts.
//   - (*RenderContext).Render returns a *Result whose buffers are owned by
//     the context and valid until its next Render or Reset call. Backward
//     only reads the Result — it never writes a Result-aliased buffer, and
//     is contractually barred from doing so — so the render→backward→read
//     pattern of the tracker/mapper loops is safe. Callers that retain any
//     Result buffer across renders must copy it first.
//   - (*RenderContext).Backward likewise returns a *Grads owned by the
//     context, valid until its next Backward or Reset call.
//   - The one-shot package functions return caller-owned buffers with no
//     aliasing: they detach the output from the scratch context before
//     pooling it.
//   - Reset drops every internal buffer, returning the context to its
//     zero footprint. A context re-sizes itself lazily from the intrinsics
//     and cloud of each call, so mixed frame sizes are safe (and tested);
//     Reset is only useful to release memory early.
//   - Contexted and one-shot calls are byte-identical to each other — the
//     determinism contract above holds across both, for every Workers value.
package splat

import (
	"math"

	"ags/internal/camera"
	"ags/internal/gauss"
	"ags/internal/vecmath"
)

const (
	// TileSize is the pixel width/height of one rendering tile, matching the
	// 4x4-GPE-array granularity of the AGS mapping engine (each array covers
	// a 4x4 block; a 16x16 tile is 16 array passes).
	TileSize = 16
	// TransmittanceEps is the early-termination threshold on accumulated
	// transmittance (paper §2.1: rendering stops when T < 1e-4).
	TransmittanceEps = 1e-4
	// MinAlpha is the smallest alpha that participates in blending; the
	// standard 3DGS kernel discards fainter contributions (1/255).
	MinAlpha = 1.0 / 255.0
	// MaxAlpha clamps the occlusion factor, as in the reference 3DGS kernel.
	MaxAlpha = 0.99
	// covBlur is the screen-space dilation added to the 2D covariance
	// diagonal (anti-aliasing floor, 0.3 px^2 in the reference kernel).
	covBlur = 0.3
)

// Splat is a Gaussian projected to the image plane (a "2D Gaussian splat").
// The 2D covariance itself is not stored: everything the render and backward
// hot loops need from it is folded into the conic coefficients and Radius at
// projection time, keeping the per-frame splat array lean.
type Splat struct {
	ID      int          // stable Gaussian ID in the cloud
	Mean2D  vecmath.Vec2 // pixel-space center
	Depth   float64      // camera-space depth
	Color   vecmath.Vec3
	Opacity float64
	Radius  float64      // conservative pixel radius (3 sigma)
	CamPt   vecmath.Vec3 // camera-space center (for pose gradients)
	DU, DV  vecmath.Vec3 // projection Jacobian rows at CamPt
	JJT     vecmath.Mat2 // J*J^T term (for isotropic scale gradients)

	// Conic coefficients of the inverse 2D covariance (with blur): for
	// inverse [a b; b c], ConA = a, ConB = b, ConC = c. The covariance is
	// symmetrized before inversion, so its inverse is symmetric bitwise and
	// the conic loses nothing; the per-pixel falloff becomes straight-line
	// arithmetic with no matrix indirection.
	ConA, ConB, ConC float64
}

// ProjectGaussian projects one Gaussian through the camera. ok is false when
// the Gaussian is behind the near plane or degenerate.
//
//ags:hotpath
func ProjectGaussian(g *gauss.Gaussian, cam camera.Camera) (Splat, bool) {
	pc := cam.Pose.Apply(g.Mean)
	if pc.Z < 0.05 {
		return Splat{}, false
	}
	mean2, ok := cam.Intr.Project(pc)
	if !ok {
		return Splat{}, false
	}
	du, dv := cam.Intr.ProjectionJacobian(pc)
	// Sigma2D = J W Sigma3D W^T J^T where W is the view rotation and J the
	// 2x3 projection Jacobian.
	w := cam.Pose.R.Mat3()
	covCam := w.Mul(g.Cov3()).Mul(w.Transpose())
	a := covCam.MulVec(du)
	b := covCam.MulVec(dv)
	cov := vecmath.Mat2{
		M00: du.Dot(a) + covBlur,
		M01: du.Dot(b),
		M10: dv.Dot(a),
		M11: dv.Dot(b) + covBlur,
	}
	// Numerical symmetry.
	sym := 0.5 * (cov.M01 + cov.M10)
	cov.M01, cov.M10 = sym, sym
	inv, invertible := cov.Inverse()
	if !invertible {
		return Splat{}, false
	}
	l1, _ := cov.Eigenvalues()
	radius := 3 * math.Sqrt(math.Max(l1, 0))
	jjt := vecmath.Mat2{
		M00: du.Dot(du), M01: du.Dot(dv),
		M10: dv.Dot(du), M11: dv.Dot(dv),
	}
	return Splat{
		ID:      -1,
		Mean2D:  mean2,
		Depth:   pc.Z,
		Color:   g.Color,
		Opacity: g.Opacity(),
		Radius:  radius,
		CamPt:   pc,
		DU:      du,
		DV:      dv,
		JJT:     jjt,
		ConA:    inv.M00,
		ConB:    inv.M01,
		ConC:    inv.M11,
	}, true
}

// Preprocess projects every active Gaussian in the cloud (step 1 of Fig. 2),
// culling those that fall outside the image or behind the camera. skip, when
// non-nil, suppresses Gaussians whose ID is flagged (selective mapping).
func Preprocess(cloud *gauss.Cloud, cam camera.Camera, skip []bool) []Splat {
	return preprocessInto(make([]Splat, 0, cloud.Len()), cloud, cam, skip)
}

// preprocessInto is Preprocess appending into dst (reusing its capacity — the
// RenderContext's per-frame projection path). When the cloud is dense (every
// slot active — the steady state under map compaction), the per-slot
// active-flag walk is skipped entirely, so projection work scales with the
// live map rather than with lifetime allocations; sparse clouds take the
// flag-checking path and produce bit-identical output.
//
//ags:hotpath
func preprocessInto(splats []Splat, cloud *gauss.Cloud, cam camera.Camera, skip []bool) []Splat {
	dense := cloud.NumActive() == len(cloud.Gaussians)
	for id := range cloud.Gaussians {
		if !dense && !cloud.IsActive(id) {
			continue
		}
		if skip != nil && id < len(skip) && skip[id] {
			continue
		}
		s, ok := ProjectGaussian(cloud.At(id), cam)
		if !ok {
			continue
		}
		// Cull splats entirely outside the image (with radius margin).
		if s.Mean2D.X+s.Radius < 0 || s.Mean2D.Y+s.Radius < 0 ||
			s.Mean2D.X-s.Radius >= float64(cam.Intr.W) ||
			s.Mean2D.Y-s.Radius >= float64(cam.Intr.H) {
			continue
		}
		s.ID = id
		splats = append(splats, s)
	}
	return splats
}

// Eval returns the unnormalized Gaussian falloff G = exp(-0.5 d^T CovInv d)
// at pixel coordinates (x, y), evaluated through the precomputed conic
// coefficients. Falloffs small enough that alpha must land below MinAlpha
// for any opacity (q > 12.5 => G < MinAlpha/2) return 0 without evaluating
// the exponential; blending skips them either way, so behavior is unchanged
// and the hot loop avoids most exp calls.
//
//ags:hotpath
func (s *Splat) Eval(x, y float64) float64 {
	dx := x - s.Mean2D.X
	dy := y - s.Mean2D.Y
	q := dx*(s.ConA*dx+s.ConB*dy) + dy*(s.ConB*dx+s.ConC*dy)
	if q < 0 {
		return 1 // numerical guard: q is a Mahalanobis distance, >= 0
	}
	if q > 12.5 {
		return 0
	}
	return math.Exp(-0.5 * q)
}

// Alpha returns the clamped occlusion factor at (x, y) together with the
// falloff G (callers need G for gradients).
//
//ags:hotpath
func (s *Splat) Alpha(x, y float64) (alpha, g float64) {
	g = s.Eval(x, y)
	alpha = s.Opacity * g
	if alpha > MaxAlpha {
		alpha = MaxAlpha
	}
	return alpha, g
}
