// Package gpe models the Gaussian processing element (GPE) arrays of the AGS
// pose tracking and mapping engines (paper §5.3-5.4). Each 4x4 GPE array
// renders a 4x4 pixel block; rendering is disassembled into the
// order-independent alpha computation (stage 1) and the sequential
// alpha-blending (stage 2). The model replays the renderer's per-pixel
// workload in two modes: naive (each GPE runs its pixel to completion, array
// time = slowest pixel) and scheduled (idle GPEs execute other pixels' stage-1
// work through the workload table / alpha buffer, Fig. 13).
package gpe

// Params configures a GPE array model.
type Params struct {
	// AlphaCycles is the pipeline cost of one stage-1 alpha evaluation.
	AlphaCycles int
	// BlendCycles is the cost of one stage-2 blend step.
	BlendCycles int
	// Arrays is the number of 4x4 GPE arrays working in parallel.
	Arrays int
	// SchedulerOverheadPct models workload-table lookups and alpha-buffer
	// tag checks as a percentage penalty on the scheduled makespan.
	SchedulerOverheadPct float64
}

// DefaultParams matches the paper's GPE pipeline (one alpha evaluation needs
// the 2x2 covariance product and an exponential; blending is a short MAC
// chain).
func DefaultParams(arrays int) Params {
	return Params{AlphaCycles: 4, BlendCycles: 2, Arrays: arrays, SchedulerOverheadPct: 3}
}

const blockDim = 4 // a GPE array covers 4x4 pixels

// BlockCycles returns the cycles a single 4x4 array spends on one pixel
// block, given each pixel's stage-1 and stage-2 op counts.
func BlockCycles(alpha, blend []int32, p Params, scheduled bool) int64 {
	if !scheduled {
		// Naive: every GPE finishes its own pixel; the array waits for the
		// slowest one (Fig. 13a).
		var worst int64
		for i := range alpha {
			c := int64(alpha[i])*int64(p.AlphaCycles) + int64(blend[i])*int64(p.BlendCycles)
			if c > worst {
				worst = c
			}
		}
		return worst
	}
	// Scheduled: stage-1 work migrates to idle GPEs, stage-2 stays bound to
	// its pixel. The makespan is bounded below by the throughput bound
	// (total work over 16 GPEs) and by the longest per-pixel blend chain.
	var total, worstBlend int64
	for i := range alpha {
		total += int64(alpha[i])*int64(p.AlphaCycles) + int64(blend[i])*int64(p.BlendCycles)
		if c := int64(blend[i]) * int64(p.BlendCycles); c > worstBlend {
			worstBlend = c
		}
	}
	gpes := int64(blockDim * blockDim)
	span := (total + gpes - 1) / gpes
	if worstBlend > span {
		span = worstBlend
	}
	return span + span*int64(p.SchedulerOverheadPct)/100
}

// FrameCycles replays a frame's per-pixel workload (one render iteration)
// through the GPE arrays and returns the busiest array's cycle count.
//
// Without the scheduler, blocks are statically assigned round-robin and each
// GPE runs its own pixel to completion. With the scheduler (workload table +
// alpha buffer), blocks drain from a shared queue (least-loaded dispatch) and
// stage-1 work migrates between GPEs within a block.
func FrameCycles(perPixelAlpha, perPixelBlend []int32, w, h int, p Params, scheduled bool) int64 {
	if len(perPixelAlpha) != w*h || len(perPixelBlend) != w*h {
		return 0
	}
	if p.Arrays < 1 {
		p.Arrays = 1
	}
	arrayLoad := make([]int64, p.Arrays)
	var a16, b16 [blockDim * blockDim]int32
	bi := 0
	for by := 0; by < h; by += blockDim {
		for bx := 0; bx < w; bx += blockDim {
			n := 0
			for dy := 0; dy < blockDim && by+dy < h; dy++ {
				for dx := 0; dx < blockDim && bx+dx < w; dx++ {
					pix := (by+dy)*w + bx + dx
					a16[n] = perPixelAlpha[pix]
					b16[n] = perPixelBlend[pix]
					n++
				}
			}
			target := bi % p.Arrays // static round-robin
			if scheduled {
				for ai := 0; ai < p.Arrays; ai++ {
					if arrayLoad[ai] < arrayLoad[target] {
						target = ai
					}
				}
			}
			arrayLoad[target] += BlockCycles(a16[:n], b16[:n], p, scheduled)
			bi++
		}
	}
	var worst int64
	for _, l := range arrayLoad {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// Utilization returns the fraction of GPE-cycles doing useful work for the
// given workload and mode, in [0,1].
func Utilization(perPixelAlpha, perPixelBlend []int32, w, h int, p Params, scheduled bool) float64 {
	cycles := FrameCycles(perPixelAlpha, perPixelBlend, w, h, p, scheduled)
	if cycles == 0 {
		return 0
	}
	var useful int64
	for i := range perPixelAlpha {
		useful += int64(perPixelAlpha[i])*int64(p.AlphaCycles) + int64(perPixelBlend[i])*int64(p.BlendCycles)
	}
	capacity := cycles * int64(p.Arrays) * blockDim * blockDim
	u := float64(useful) / float64(capacity)
	if u > 1 {
		u = 1
	}
	return u
}
