// Command ags-dataset generates a synthetic RGB-D sequence and writes it to
// disk as PPM images, PGM depth maps (millimeters) and a TUM-format
// ground-truth trajectory, for inspection or for use by external tools.
//
// Usage:
//
//	ags-dataset -seq Desk -out /tmp/desk -frames 20 -w 128 -h 96
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ags/internal/frame"
	"ags/internal/scene"
	"ags/internal/vecmath"
)

func main() {
	var (
		seqName = flag.String("seq", "Desk", "sequence name")
		out     = flag.String("out", "dataset-out", "output directory")
		width   = flag.Int("w", 96, "frame width")
		height  = flag.Int("h", 72, "frame height")
		frames  = flag.Int("frames", 20, "frame count")
		seed    = flag.Int64("seed", 1, "jitter seed")
	)
	flag.Parse()

	seq, err := scene.Generate(*seqName, scene.Config{Width: *width, Height: *height, Frames: *frames, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	traj, err := os.Create(filepath.Join(*out, "groundtruth.txt"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer traj.Close()
	tw := bufio.NewWriter(traj)
	fmt.Fprintln(tw, "# timestamp tx ty tz qx qy qz qw   (camera center, world frame)")

	for _, f := range seq.Frames {
		if err := writePPM(filepath.Join(*out, fmt.Sprintf("rgb_%04d.ppm", f.Index)), f.Color); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := writeDepthPGM(filepath.Join(*out, fmt.Sprintf("depth_%04d.pgm", f.Index)), f.Depth); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// TUM convention: camera-to-world pose.
		c2w := f.GTPose.Inverse()
		fmt.Fprintf(tw, "%.4f %.6f %.6f %.6f %.6f %.6f %.6f %.6f\n",
			float64(f.Index)/30.0, c2w.T.X, c2w.T.Y, c2w.T.Z,
			c2w.R.X, c2w.R.Y, c2w.R.Z, c2w.R.W)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d frames of %s to %s (fx=%.2f fy=%.2f cx=%.2f cy=%.2f)\n",
		len(seq.Frames), *seqName, *out, seq.Intr.Fx, seq.Intr.Fy, seq.Intr.Cx, seq.Intr.Cy)
}

func writePPM(path string, im *frame.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H)
	for _, p := range im.Pix {
		c := p.Clamp(0, 1)
		w.WriteByte(byte(c.X*255 + 0.5))
		w.WriteByte(byte(c.Y*255 + 0.5))
		w.WriteByte(byte(c.Z*255 + 0.5))
	}
	return w.Flush()
}

func writeDepthPGM(path string, dm *frame.DepthMap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P5\n%d %d\n65535\n", dm.W, dm.H)
	for _, d := range dm.D {
		mm := int(vecmath.Clamp(d*1000, 0, 65535))
		w.WriteByte(byte(mm >> 8))
		w.WriteByte(byte(mm & 0xFF))
	}
	return w.Flush()
}
