package metrics

import (
	"math"
	"math/rand"
	"testing"

	"ags/internal/frame"
	"ags/internal/vecmath"
)

func TestPSNRIdenticalInfinite(t *testing.T) {
	a := frame.NewImage(8, 8)
	p, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("identical PSNR = %v", p)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := frame.NewImage(4, 4)
	b := frame.NewImage(4, 4)
	for i := range b.Pix {
		b.Pix[i] = vecmath.Vec3{X: 0.1, Y: 0.1, Z: 0.1}
	}
	// MSE = 0.01 -> PSNR = 20 dB.
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %v, want 20", p)
	}
}

func TestPSNRSizeMismatch(t *testing.T) {
	if _, err := PSNR(frame.NewImage(4, 4), frame.NewImage(5, 4)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPSNRMonotone(t *testing.T) {
	a := frame.NewImage(8, 8)
	small := frame.NewImage(8, 8)
	big := frame.NewImage(8, 8)
	for i := range a.Pix {
		small.Pix[i] = vecmath.Vec3{X: 0.05}
		big.Pix[i] = vecmath.Vec3{X: 0.3}
	}
	ps, _ := PSNR(a, small)
	pb, _ := PSNR(a, big)
	if ps <= pb {
		t.Errorf("PSNR not monotone: small-err %v <= big-err %v", ps, pb)
	}
}

func TestAlignRigidRecoversTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := vecmath.Pose{
		R: vecmath.QuatFromAxisAngle(vecmath.Vec3{X: 0.3, Y: 1, Z: -0.2}, 0.7),
		T: vecmath.Vec3{X: 1.5, Y: -0.5, Z: 2},
	}
	var src, dst []vecmath.Vec3
	for i := 0; i < 30; i++ {
		p := vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		src = append(src, p)
		dst = append(dst, truth.Apply(p))
	}
	got, err := AlignRigid(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got.Apply(src[i]).Sub(dst[i]).Norm() > 1e-6 {
			t.Fatalf("alignment residual too large at %d", i)
		}
	}
}

func TestAlignRigidDegenerate(t *testing.T) {
	if _, err := AlignRigid(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := AlignRigid(make([]vecmath.Vec3, 2), make([]vecmath.Vec3, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestATERMSEPerfectTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var traj []vecmath.Pose
	for i := 0; i < 10; i++ {
		traj = append(traj, vecmath.Pose{
			R: vecmath.QuatFromAxisAngle(vecmath.Vec3{Y: 1}, rng.Float64()),
			T: vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
		})
	}
	ate, err := ATERMSE(traj, traj)
	if err != nil {
		t.Fatal(err)
	}
	if ate > 1e-9 {
		t.Errorf("perfect trajectory ATE = %v", ate)
	}
}

func TestATERMSEInvariantToRigidOffset(t *testing.T) {
	// ATE aligns before measuring: a globally transformed estimate of a
	// perfect trajectory must still score ~0.
	rng := rand.New(rand.NewSource(3))
	var gt, est []vecmath.Pose
	offset := vecmath.Pose{
		R: vecmath.QuatFromAxisAngle(vecmath.Vec3{X: 1, Y: 0.5}, 0.4),
		T: vecmath.Vec3{X: 3, Y: 1, Z: -2},
	}
	for i := 0; i < 12; i++ {
		p := vecmath.Pose{
			R: vecmath.QuatFromAxisAngle(vecmath.Vec3{Y: 1}, rng.Float64()*2),
			T: vecmath.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
		}
		gt = append(gt, p)
		est = append(est, p.Compose(offset))
	}
	ate, err := ATERMSE(est, gt)
	if err != nil {
		t.Fatal(err)
	}
	if ate > 1e-6 {
		t.Errorf("rigidly offset trajectory ATE = %v", ate)
	}
}

func TestATERMSEKnownError(t *testing.T) {
	// Trajectory with symmetric +/- d perturbations around a straight line;
	// alignment cannot remove them, RMSE ~ d.
	var gt, est []vecmath.Pose
	d := 0.05
	for i := 0; i < 20; i++ {
		p := vecmath.Pose{R: vecmath.QuatIdentity(), T: vecmath.Vec3{X: float64(i) * 0.1}}
		gt = append(gt, p)
		e := p
		if i%2 == 0 {
			e.T.Y += d
		} else {
			e.T.Y -= d
		}
		est = append(est, e)
	}
	ate, err := ATERMSE(est, gt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ate-d) > 0.01 {
		t.Errorf("ATE = %v, want about %v", ate, d)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	truth := map[int]bool{1: true, 2: true, 3: true}
	pred := map[int]bool{1: true, 2: true, 9: true, 10: true}
	// 2 of 4 predictions are wrong.
	if got := FalsePositiveRate(pred, truth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FP rate = %v", got)
	}
	if got := FalsePositiveRate(nil, truth); got != 0 {
		t.Errorf("empty predictions FP = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{5, 0, -3}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean with non-positive entries = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}
