// Multistream: serve several live camera streams from one slam.Server.
//
// Each stream is a Session: frames go in with Push (which blocks when the
// stream outruns its pipeline — backpressure, not buffering), per-frame
// outcomes come back on Results, and Close drains the queue and returns the
// final Result. All sessions render through the server's bounded, size-keyed
// context pool, so N streams share render state instead of each pinning
// their own forever.
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"
	"sync"

	"ags/internal/scene"
	"ags/internal/slam"
)

const (
	width, height = 48, 36
	frames        = 8
)

func main() {
	// 1. One server per host: it owns the shared render-context pool.
	srv := slam.NewServer(slam.ServerConfig{ContextCapacity: 2})

	// 2. Two synthetic RGB-D streams (stand-ins for live cameras).
	names := []string{"Desk", "Room"}
	var wg sync.WaitGroup
	results := make([]*slam.Result, len(names))
	for i, name := range names {
		seq, err := scene.Generate(name, scene.Config{
			Width: width, Height: height, Frames: frames, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}

		cfg := slam.AGSConfig(width, height)
		cfg.TrackIters = 20 // scaled-down N_T for a quick demo
		cfg.PipelineME = true

		sess, err := srv.Open(name, cfg, seq.Intr)
		if err != nil {
			log.Fatal(err)
		}

		// 3a. Consume the live per-frame updates of this stream.
		wg.Add(1)
		go func(name string, sess *slam.Session) {
			defer wg.Done()
			for upd := range sess.Results() {
				tag := ""
				if upd.Info.IsKeyFrame {
					tag = " [keyframe]"
				}
				if upd.Info.CoarseOnly {
					tag += " [coarse-only]"
				}
				fmt.Printf("%-5s frame %2d: FC %.2f, %4d gaussians%s\n",
					name, upd.Index, float64(upd.Info.Covisibility), upd.NumGaussians, tag)
			}
		}(name, sess)

		// 3b. Produce the stream's frames.
		wg.Add(1)
		go func(i int, sess *slam.Session, seq *scene.Sequence) {
			defer wg.Done()
			for _, f := range seq.Frames {
				if err := sess.Push(f); err != nil {
					log.Fatal(err)
				}
			}
			res, err := sess.Close()
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}(i, sess, seq)
	}
	wg.Wait()

	// 4. Final per-stream accuracy plus the shared pool's economics.
	fmt.Println()
	for i, name := range names {
		ate, err := results[i].ATERMSECm()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s ATE RMSE %.2f cm over %d frames\n", name, ate, len(results[i].Poses))
	}
	st := srv.PoolStats()
	fmt.Printf("pool  %d/%d contexts resident (%.1f KB), %d hits / %d misses / %d evictions\n",
		st.Idle, st.Capacity, float64(st.ResidentBytes)/1024, st.Hits, st.Misses, st.Evictions)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
