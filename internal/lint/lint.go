// Package lint is the repo-specific static-analysis framework behind the
// ags-vet CLI. It loads every package in the module with the standard
// library's go/parser + go/types toolchain (no external dependencies) and
// enforces the two contracts the rest of the tree is built on:
//
//   - Determinism: every output — trajectories, digests, bench tables,
//     hardware-model numbers — must be byte-identical at every
//     Workers/CodecWorkers/-jobs/-sessions value. The maprange check flags
//     `range` over a map in determinism-critical packages unless the loop
//     body provably accumulates order-insensitively; the nondetsource check
//     flags wall-clock reads (time.Now and friends), the unseeded global
//     math/rand source, and select statements that let the runtime pick
//     between multiple ready cases; the goroutine-site check flags `go`
//     statements outside the approved worker-pool launch sites, so new
//     concurrency cannot bypass the static-shard/ordered-reduction design.
//   - Zero allocation on the hot path: functions marked //ags:hotpath (the
//     splat render/backward/projection/tile kernels and the tracker/mapper
//     inner loops) must not allocate in steady state. The hotalloc check
//     flags make calls, slice/map composite literals, closures, and
//     append growth of function-local slices inside them.
//
// # Directives
//
// Findings are suppressed with source directives only — there is no baseline
// file, so the tree is always clean and every suppression carries a written
// justification next to the code it excuses:
//
//	//ags:allow(check, reason)  — on the finding's line or the line above,
//	                              suppresses that check there. The reason is
//	                              mandatory and should say why the flagged
//	                              construct cannot perturb outputs.
//	//ags:hotpath               — in a function's doc comment, opts the
//	                              function into the hotalloc check.
//
// Malformed //ags: comments and suppressions that no longer match a finding
// are themselves reported (check "directive"), so stale or typoed
// suppressions cannot silently disable enforcement.
//
// # What the checks do NOT see
//
// The analysis is intraprocedural: a call into another function is trusted
// (hotalloc does not follow calls; maprange conservatively rejects calls it
// cannot prove harmless). The dynamic gates — digest equality in the bench
// experiments, the -race suite, the allocation-ratio gate in perf-render —
// remain the ground truth; ags-vet exists to catch the regression classes
// they historically caught (map-iteration-order nondeterminism in
// engines.SimulateLogging, allocation creep in the splat kernels) before a
// run ever happens.
package lint

import (
	"fmt"
	"sort"
)

// Finding is one reported violation, formatted "file:line:col: [check] msg".
type Finding struct {
	File    string `json:"file"` // module-root-relative, forward slashes
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Check names, in report order.
const (
	CheckMapRange  = "maprange"
	CheckNondet    = "nondetsource"
	CheckHotAlloc  = "hotalloc"
	CheckGoroutine = "goroutine-site"
	checkDirective = "directive" // internal: malformed/stale //ags: comments
)

// AllChecks lists every selectable check in stable order.
func AllChecks() []string {
	return []string{CheckMapRange, CheckNondet, CheckHotAlloc, CheckGoroutine}
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Module overrides the module path; empty reads it from Dir/go.mod.
	Module string
	// Checks restricts the run to a subset of AllChecks; nil runs all of
	// them. Directive validation (stale-suppression detection) only runs
	// when all checks are enabled, since a suppression for a disabled check
	// legitimately matches nothing.
	Checks []string
	// CriticalPrefixes are the import-path prefixes of determinism-critical
	// packages — the scope of maprange, nondetsource and goroutine-site
	// (hotalloc follows //ags:hotpath annotations anywhere). Nil defaults to
	// "<module>/internal/": every internal package feeds the digests.
	CriticalPrefixes []string
	// GoroutineSites is the allowlist of approved `go` launch sites, keyed
	// "importpath.FuncName" or "importpath.(*Type).Method". Nil defaults to
	// DefaultGoroutineSites. New sites either join the list here (reviewed
	// worker pools) or carry an //ags:allow(goroutine-site, reason).
	GoroutineSites map[string]bool
}

// DefaultGoroutineSites returns the approved worker-pool launch sites: the
// places whose goroutines are part of the reviewed deterministic designs
// (static shards with ordered reductions, row-ticket ME pool, session
// workers, the bounded batch scheduler, ray-traced dataset generation).
func DefaultGoroutineSites(module string) map[string]bool {
	return map[string]bool{
		module + "/internal/codec.MotionEstimate":               true, // row-ticket ME worker pool, row-order reduction
		module + "/internal/splat.(*RenderContext).renderTiles": true, // static tile shards, fixed-order merge
		module + "/internal/splat.(*RenderContext).Backward":    true, // static tile shards, ascending-tile merge
		module + "/internal/slam.(*Server).Open":                true, // one worker per session, frames in queue order
		module + "/internal/slam.(*Server).RestoreSession":      true, // same session worker, restored from a snapshot
		module + "/internal/slam.(*System).Prefetch":            true, // single ME job, consumed by identity match
		module + "/internal/scene.(*World).RenderFrame":         true, // per-row ray tracing, disjoint pixel writes
		module + "/internal/bench.RunBatchWith":                 true, // bounded warm pool (RunBatch delegates here), render in plan order
		module + "/internal/fleet.(*Node).StartOn":              true, // single accept-loop goroutine (Start delegates here), joined by Close
		module + "/internal/fleet.(*Node).Serve":                true, // one handler per connection; each session's frames arrive in push order on its own connection
		module + "/internal/grid.(*Scheduler).dialAll":          true, // one dial per configured worker, joined before New returns
	}
}

// pass bundles what every check needs for one package.
type pass struct {
	cfg      *Config
	pkg      *Package
	critical bool
	report   func(Finding)
}

// Run loads every package under cfg.Dir and applies the enabled checks,
// returning the surviving findings sorted by (file, line, col, check).
// Directive-suppressed findings are dropped; malformed or stale directives
// become findings themselves.
func Run(cfg Config) ([]Finding, error) {
	pkgs, module, err := load(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Module == "" {
		cfg.Module = module
	}
	if cfg.CriticalPrefixes == nil {
		cfg.CriticalPrefixes = []string{cfg.Module + "/internal/"}
	}
	if cfg.GoroutineSites == nil {
		cfg.GoroutineSites = DefaultGoroutineSites(cfg.Module)
	}
	enabled := make(map[string]bool)
	if len(cfg.Checks) == 0 {
		for _, c := range AllChecks() {
			enabled[c] = true
		}
	} else {
		known := make(map[string]bool)
		for _, c := range AllChecks() {
			known[c] = true
		}
		for _, c := range cfg.Checks {
			if !known[c] {
				return nil, fmt.Errorf("lint: unknown check %q (known: %v)", c, AllChecks())
			}
			enabled[c] = true
		}
	}

	var raw []Finding
	for _, pkg := range pkgs {
		p := &pass{
			cfg:      &cfg,
			pkg:      pkg,
			critical: hasPrefix(pkg.Path, cfg.CriticalPrefixes),
			report:   func(f Finding) { raw = append(raw, f) },
		}
		if enabled[CheckMapRange] && p.critical {
			checkMapRange(p)
		}
		if enabled[CheckNondet] && p.critical {
			checkNondetSource(p)
		}
		if enabled[CheckGoroutine] && p.critical {
			checkGoroutineSite(p)
		}
		if enabled[CheckHotAlloc] {
			checkHotAlloc(p)
		}
	}

	findings := applyDirectives(pkgs, raw, len(cfg.Checks) == 0)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings, nil
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || (len(path) >= len(p) && path[:len(p)] == p) {
			return true
		}
	}
	return false
}
